// Offline analysis workflow: a production host records the raw marker and
// sample streams to a trace file (what the paper's prototype writes to
// SSD); an analysis host loads it later — possibly days later, long after
// the non-functional state is gone — and integrates, which is the whole
// point of the method: the fluctuation was captured at its single
// occurrence, so nothing needs reproducing.
//
// Usage: ./examples/offline_analysis [trace-path]
//        (default: a temp file; the example records, saves, loads,
//        integrates, and prints the per-item diagnosis)
#include <cstdio>
#include <cstdlib>

#include "fluxtrace/apps/query_cache_app.hpp"
#include "fluxtrace/core/integrator.hpp"
#include "fluxtrace/io/symbols_file.hpp"
#include "fluxtrace/io/trace_reader.hpp"

using namespace fluxtrace;

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : std::string("/tmp/fluxtrace_example.trace");

  // ---- "production host": run traced, dump the raw streams ------------
  SymbolTable symtab;
  apps::QueryCacheApp app(symtab);
  {
    sim::Machine machine(symtab);
    sim::PebsConfig pebs;
    pebs.reset = 8000;
    machine.cpu(1).enable_pebs(pebs);
    app.submit(apps::QueryCacheApp::paper_queries());
    app.attach(machine, 0, 1);
    machine.run();
    machine.flush_samples();

    io::TraceData data;
    data.markers = machine.marker_log().markers();
    data.samples = machine.pebs_driver().samples();
    io::save_trace(path, data);
    // The symbol table travels with the trace so the analysis host (or
    // the flxt_* tools, e.g. in the CI telemetry smoke job) can resolve
    // instruction pointers without re-running anything.
    io::save_symbols(path + ".syms", symtab);
    std::printf("recorded %zu markers + %zu samples -> %s (+ .syms)\n",
                data.markers.size(), data.samples.size(), path.c_str());
  }

  // ---- "analysis host": load and integrate, no live system needed -----
  const io::TraceData loaded = io::open_trace(path).read();
  core::TraceIntegrator integrator(symtab);
  const core::TraceTable trace =
      integrator.integrate(loaded.markers, loaded.samples);

  const CpuSpec spec; // must match the recording host's clock
  std::printf("\nper-query diagnosis (from the file alone):\n");
  std::printf("query | total [us] | f3 [us]\n");
  for (const ItemId item : trace.items()) {
    std::printf("  #%-3llu | %10.2f | %7.2f\n",
                static_cast<unsigned long long>(item),
                spec.us(trace.item_window_total(item)),
                spec.us(trace.elapsed(item, app.f3())));
  }
  std::printf("\nqueries 1 and 5 fluctuated; f3 (the recompute path) is\n"
              "responsible — diagnosed entirely from the stored trace.\n");
  if (argc <= 1) {
    // Default temp files are cleaned up; an explicit path is kept so
    // scripts (CI) can hand the trace to the flxt_* tools afterwards.
    std::remove(path.c_str());
    std::remove((path + ".syms").c_str());
  }
  return 0;
}
