// The §V-A extension as a runnable example: trace a preemptive
// user-level-threaded server where marker windows are useless, by reading
// the data-item id out of the sampled R13 register.
//
// Usage: ./examples/timer_switching [timeslice_cycles]   (default 2500)
#include <cstdio>
#include <cstdlib>

#include "fluxtrace/core/integrator.hpp"
#include "fluxtrace/core/regid.hpp"
#include "fluxtrace/rt/ulthread.hpp"

using namespace fluxtrace;

int main(int argc, char** argv) {
  const Tsc timeslice =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2500;

  SymbolTable symtab;
  const SymbolId handle = symtab.add("handle_request", 0x1000);
  const SymbolId render = symtab.add("render_response", 0x1000);
  const SymbolId sched = symtab.add("ul_context_switch", 0x100);

  sim::Machine machine(symtab);
  sim::PebsConfig pebs;
  pebs.reset = 1000;
  machine.cpu(0).enable_pebs(pebs);

  rt::UlSchedulerConfig cfg;
  cfg.timeslice = timeslice;
  cfg.scheduler_symbol = sched;
  rt::UlScheduler scheduler(cfg);
  // Six requests of varying weight; the scheduler interleaves them, so a
  // light request can finish while a heavy one is still in flight — the
  // defining property of the timer-switching architecture (§III-C).
  for (ItemId id = 1; id <= 6; ++id) {
    const std::uint64_t weight = (id % 3 == 1) ? 90000 : 20000;
    scheduler.submit(rt::UlWork{
        id,
        {sim::ExecBlock{handle, weight, 0, {}},
         sim::ExecBlock{render, weight / 2, 0, {}}}});
  }
  machine.attach(0, scheduler);
  machine.run();
  machine.flush_samples();

  std::printf("timeslice %llu cycles -> %llu context switches\n\n",
              static_cast<unsigned long long>(timeslice),
              static_cast<unsigned long long>(scheduler.context_switches()));

  // Window-based mapping breaks under preemption:
  core::RegisterIdMapper mapper;
  const auto cmp = mapper.compare_with_windows(
      machine.pebs_driver().samples(), machine.marker_log().markers());
  std::printf("window mapping disagrees with the register-carried id on "
              "%llu of %llu samples (%.0f%%)\n\n",
              static_cast<unsigned long long>(cmp.disagree),
              static_cast<unsigned long long>(cmp.total),
              100.0 * static_cast<double>(cmp.disagree) /
                  static_cast<double>(cmp.total));

  // Register-based integration recovers correct per-item traces anyway:
  core::TraceIntegrator integrator(symtab, core::IntegratorConfig{true});
  const core::TraceTable trace =
      integrator.integrate({}, machine.pebs_driver().samples());
  const CpuSpec& spec = machine.spec();
  std::printf("item | handle_request [us] | render_response [us]\n");
  for (const ItemId id : trace.items()) {
    std::printf("  #%llu |               %5.1f |                %5.1f\n",
                static_cast<unsigned long long>(id),
                spec.us(trace.elapsed(id, handle)),
                spec.us(trace.elapsed(id, render)));
  }
  std::printf("\n(note: spans of preempted items include time other items\n"
              "ran — they upper-bound the item's own work)\n");
  return 0;
}
