// Waiting-dependency graphs end to end (ISSUE 8): run the RSS firewall
// with round-robin dispatch and shallow worker rings so head-of-line
// blocking actually stalls the dispatcher, record the wait edges the
// probed channels capture alongside the markers and samples, save the
// FLXT v2 container, and answer "why was item X slow" from the file
// alone with the `critical_path` and `blocked_by` query stages.
//
// The run is fully deterministic (virtual time), which is why the CI
// query-smoke job byte-diffs this demo's query output against golden
// CSVs (scripts/query_smoke.sh).
//
// Usage: ./examples/waitgraph_demo [trace-path]
//        (default: a temp file, deleted afterwards; an explicit path is
//        kept so scripts can hand the trace to the flxt_* tools)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "fluxtrace/acl/ruleset.hpp"
#include "fluxtrace/apps/rss_firewall_app.hpp"
#include "fluxtrace/io/chunked.hpp"
#include "fluxtrace/io/symbols_file.hpp"
#include "fluxtrace/net/trafficgen.hpp"
#include "fluxtrace/query/engine.hpp"
#include "fluxtrace/query/render.hpp"

#include <iostream>

using namespace fluxtrace;

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : std::string("/tmp/fluxtrace_waitgraph.flxt");

  // ---- record: heavy type-A packets all land on worker 0 --------------
  SymbolTable symtab;
  const acl::RuleSet rules = acl::make_paper_ruleset();
  apps::RssFirewallConfig cfg;
  cfg.num_workers = 2;
  cfg.dispatch = apps::RssDispatch::RoundRobin;
  // Shallow worker rings: the RX dispatcher's head-of-line stalls show
  // up as ring-full wait edges instead of invisible queue slack.
  cfg.worker_ring_depth = 1;
  apps::RssFirewallApp app(symtab, rules, cfg);

  sim::MachineConfig mc;
  mc.spec.num_cores = 4 + cfg.num_workers;
  sim::Machine m(symtab, mc);
  for (const std::uint32_t core : {2u, 3u}) {
    sim::PebsConfig pc;
    pc.reset = 8000;
    m.cpu(core).enable_pebs(pc);
  }

  net::TrafficGenConfig tgc;
  tgc.total_packets = 400;
  tgc.inter_packet_gap_ns = 2000; // above worker 0's A+C service rate
  const acl::PaperPackets pk;
  net::TrafficGen tg(tgc, app.rx_nic(), app.tx_nic(),
                     {pk.type_a, pk.type_c, pk.type_c, pk.type_c});
  app.expect_packets(tgc.total_packets);
  m.attach(0, tg);
  app.attach(m, /*rx=*/1, /*first_acl=*/2, /*tx=*/4);
  m.run();
  m.flush_samples();

  io::TraceData data;
  data.markers = m.marker_log().markers();
  data.samples = m.pebs_driver().samples();
  data.wait_edges = m.wait_log().edges();
  io::save_trace_v2(path, data, /*records_per_chunk=*/256);
  io::save_symbols(path + ".syms", symtab);
  std::printf("recorded %zu markers + %zu samples + %zu wait edges -> %s\n",
              data.markers.size(), data.samples.size(),
              data.wait_edges.size(), path.c_str());

  // ---- diagnose, from the file alone ----------------------------------
  query::QueryEngine eng =
      query::QueryEngine::open(path, symtab, query::EngineOptions{});

  std::printf("\n$ flxt_query %s 'filter item >= 0 | critical_path | "
              "top 5 by blocked'\n",
              path.c_str());
  query::print_table(
      std::cout, eng.run("filter item >= 0 | critical_path | top 5 by blocked"));

  std::printf("\n$ flxt_query %s 'filter item >= 0 | blocked_by'\n",
              path.c_str());
  query::print_table(std::cout, eng.run("filter item >= 0 | blocked_by"));

  std::printf("\nEvery top item was blocked ring-full on resource 10 —\n"
              "worker 0's input ring, held by core 2 — because round-robin\n"
              "dispatch queues heavy type-A classifications there. The\n"
              "trace alone names the ring and the holder core; no\n"
              "reproduction, no guesswork.\n");
  if (argc <= 1) {
    std::remove(path.c_str());
    std::remove((path + ".syms").c_str());
    std::remove(query::flxi_path(path).c_str());
  }
  return 0;
}
