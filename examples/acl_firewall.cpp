// The DPDK ACL case study (§IV-C) as a runnable example: build the
// Table III rule set, run the RX/ACL/TX firewall pipeline under a
// GNET-style tester, trace the ACL thread with the hybrid method, and
// print per-packet-type classify times with their baseline.
//
// Usage: ./examples/acl_firewall [reset_value] [packets]
//        defaults: reset 16000 (the paper's sweet spot), 600 packets
#include <cstdio>
#include <cstdlib>
#include <map>
#include <vector>

#include "fluxtrace/acl/ruleset.hpp"
#include "fluxtrace/apps/acl_firewall_app.hpp"
#include "fluxtrace/core/integrator.hpp"
#include "fluxtrace/net/trafficgen.hpp"

using namespace fluxtrace;

int main(int argc, char** argv) {
  const std::uint64_t reset =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 16000;
  const std::uint64_t packets =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 600;

  std::printf("building Table III rule set...\n");
  const acl::RuleSet rules = acl::make_paper_ruleset();

  SymbolTable symtab;
  apps::AclFirewallApp app(symtab, rules);
  std::printf("%zu rules in %u tries\n\n", rules.size(),
              app.classifier().num_tries());

  sim::Machine machine(symtab);
  net::TrafficGenConfig tgc;
  tgc.total_packets = packets;
  tgc.inter_packet_gap_ns = 20000;
  const acl::PaperPackets pk;
  net::TrafficGen tester(tgc, app.rx_nic(), app.tx_nic(),
                         {pk.type_a, pk.type_b, pk.type_c});

  if (reset > 0) {
    sim::PebsConfig pebs;
    pebs.reset = reset;
    machine.cpu(2).enable_pebs(pebs); // the ACL thread's core
  }
  app.expect_packets(packets);
  machine.attach(0, tester);
  app.attach(machine, /*rx=*/1, /*acl=*/2, /*tx=*/3);
  machine.run();
  machine.flush_samples();

  core::TraceIntegrator integrator(symtab);
  const core::TraceTable trace = integrator.integrate(
      machine.marker_log().markers(), machine.pebs_driver().samples());

  const CpuSpec& spec = machine.spec();
  std::map<std::uint32_t, std::vector<double>> est, win, lat;
  for (const auto& rec : tester.records()) {
    est[rec.flow_idx].push_back(
        spec.us(trace.elapsed(rec.id, app.classify_symbol())));
    win[rec.flow_idx].push_back(spec.us(trace.item_window_total(rec.id)));
    lat[rec.flow_idx].push_back(spec.us(rec.latency()));
  }
  const auto mean = [](const std::vector<double>& v) {
    double s = 0;
    for (const double x : v) s += x;
    return v.empty() ? 0.0 : s / static_cast<double>(v.size());
  };

  std::printf("type | est. classify [us] | baseline [us] | e2e latency [us]\n");
  const char* names[3] = {"A", "B", "C"};
  for (std::uint32_t f = 0; f < 3; ++f) {
    std::printf("   %s |              %6.2f |        %6.2f |           %6.2f\n",
                names[f], mean(est[f]), mean(win[f]), mean(lat[f]));
  }
  std::printf(
      "\nPackets differing only in how deep the ACL tries must be walked\n"
      "(src / src+dst / full key) fluctuate by >100%% inside\n"
      "rte_acl_classify; the hybrid trace shows it per packet, online.\n"
      "PEBS samples collected: %zu (%.1f per packet), %llu lost to drains.\n",
      machine.pebs_driver().samples().size(),
      static_cast<double>(machine.pebs_driver().samples().size()) /
          static_cast<double>(packets),
      static_cast<unsigned long long>(machine.cpu(2).pebs().samples_lost()));
  return 0;
}
