// Diagnosing a database tail: run a mixed workload on the mini storage
// engine with the hybrid tracer, find the slowest queries, and print each
// one's per-function breakdown — distinguishing the three tail causes
// (evicted buffer-pool page, group-commit flush, index splits) that all
// look identical in a service-level latency log.
//
// Usage: ./examples/db_diagnosis [n_queries]   (default 1500)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "fluxtrace/apps/minidb_app.hpp"
#include "fluxtrace/core/integrator.hpp"

using namespace fluxtrace;

int main(int argc, char** argv) {
  const std::size_t n =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1500;

  SymbolTable symtab;
  apps::MiniDbApp db(symtab);
  db.preload(4096);
  db.submit(apps::MiniDbApp::make_mixed_workload(n, 23, 4096));

  sim::Machine machine(symtab);
  sim::PebsConfig pebs;
  pebs.reset = 2000;
  pebs.buffer_capacity = 1u << 16;
  machine.cpu(1).enable_pebs(pebs);
  db.attach(machine, 0, 1);
  machine.run();
  machine.flush_samples();

  core::TraceIntegrator integrator(symtab);
  const core::TraceTable trace = integrator.integrate(
      machine.marker_log().markers(), machine.pebs_driver().samples());

  // The five slowest queries, with full breakdowns.
  std::vector<std::pair<Tsc, ItemId>> by_latency;
  for (const ItemId item : trace.items()) {
    by_latency.emplace_back(trace.item_window_total(item), item);
  }
  std::sort(by_latency.rbegin(), by_latency.rend());

  const CpuSpec& spec = machine.spec();
  std::printf("%zu queries processed; the 5 slowest, diagnosed:\n\n", n);
  for (std::size_t i = 0; i < 5 && i < by_latency.size(); ++i) {
    const auto [t, item] = by_latency[i];
    std::printf("query #%llu — %.1f us total\n",
                static_cast<unsigned long long>(item), spec.us(t));
    for (const SymbolId fn : trace.functions(item)) {
      const double us = spec.us(trace.elapsed(item, fn));
      if (us <= 0.0) continue;
      std::printf("    %-28s %8.1f us\n",
                  std::string(symtab.name(fn)).c_str(), us);
    }
    // Automated verdict, the way an operator would read it.
    const double fetch = spec.us(trace.elapsed(item, db.fetch_rows()));
    const double flush = spec.us(trace.elapsed(item, db.wal_flush()));
    const char* verdict =
        flush > 5.0   ? "group-commit flush (this insert paid the fsync)"
        : fetch > 5.0 ? "storage reads (pool pages evicted or large scan)"
                      : "CPU-bound work";
    std::printf("    -> cause: %s\n\n", verdict);
  }

  std::printf("buffer pool: %llu hits / %llu misses; WAL: %llu flushes\n",
              static_cast<unsigned long long>(db.pool().hits()),
              static_cast<unsigned long long>(db.pool().misses()),
              static_cast<unsigned long long>(db.wal().flushes()));
  return 0;
}
