// Tracing a timer-switching web server (NGINX's architecture, per
// §III-C): a keepalive connection streaming a big file shares the worker
// with cheap requests; the user-level scheduler interleaves them, so
// marker windows overlap and only the §V-A register-carried request ids
// attribute samples correctly.
//
// Usage: ./examples/nginx_timer_tracing [timeslice_cycles]  (default 9000)
#include <cstdio>
#include <cstdlib>

#include "fluxtrace/apps/timer_web_server.hpp"
#include "fluxtrace/core/integrator.hpp"
#include "fluxtrace/core/regid.hpp"

using namespace fluxtrace;

int main(int argc, char** argv) {
  SymbolTable symtab;
  apps::TimerWebServerConfig cfg;
  if (argc > 1) cfg.timeslice = std::strtoull(argv[1], nullptr, 10);
  cfg.requests = 40;
  apps::TimerWebServer server(symtab, cfg);

  sim::Machine machine(symtab);
  sim::PebsConfig pebs;
  pebs.reset = 2000;
  pebs.buffer_capacity = 1u << 16;
  machine.cpu(0).enable_pebs(pebs);
  server.attach(machine, 0);
  machine.run();
  machine.flush_samples();

  std::printf("requests: %llu, user-level context switches: %llu\n\n",
              static_cast<unsigned long long>(cfg.requests),
              static_cast<unsigned long long>(
                  server.scheduler().context_switches()));

  // How broken window mapping is here:
  core::RegisterIdMapper mapper;
  const auto cmp = mapper.compare_with_windows(
      machine.pebs_driver().samples(), machine.marker_log().markers());
  std::printf("window-based mapping disagrees with R13 on %.0f%% of "
              "samples under this interleaving\n\n",
              100.0 * static_cast<double>(cmp.disagree) /
                  static_cast<double>(cmp.total));

  // Correct attribution via the register ids.
  core::TraceIntegrator integ(symtab, core::IntegratorConfig{true});
  const core::TraceTable trace =
      integ.integrate({}, machine.pebs_driver().samples());

  // Under preemption, first-to-last spans measure *residency* (they
  // include time other requests ran). The per-item WORK is better read
  // from sample counts: work ≈ samples × R µops.
  const CpuSpec& spec = machine.spec();
  const auto work_us = [&](ItemId id, SymbolId fn) {
    return spec.us(spec.uop_cycles(trace.sample_count(id, fn) * pebs.reset));
  };
  std::printf("request | kind  | handler work [us] | sendfile work [us] | "
              "residency [us]\n");
  for (ItemId id = 1; id <= 12; ++id) {
    std::printf("   #%-3llu | %-5s | %17.1f | %18.1f | %14.1f\n",
                static_cast<unsigned long long>(id),
                server.is_heavy(id) ? "heavy" : "light",
                work_us(id, server.run_handler()),
                work_us(id, server.sendfile()),
                spec.us(trace.item_estimated_total(id)));
  }
  std::printf(
      "\nHeavy requests show ~80 us of work in ngx_sendfile_stream; light\n"
      "requests ~4 us in ngx_http_run_handler — per request, even though\n"
      "the scheduler interleaved everything on one core. The residency\n"
      "column (first-to-last sample span) shows how long each request was\n"
      "in flight, which under timer-switching far exceeds its own work.\n");
  return 0;
}
