// Quickstart: trace a tiny two-function worker with the hybrid method.
//
//   1. Describe the traced binary's functions in a SymbolTable.
//   2. Run the program on the simulated machine with PEBS enabled and
//      the marking function called at every data-item switch.
//   3. Integrate markers + samples + symbols into a TraceTable and query
//      per-item, per-function elapsed times.
//
// Build & run:   ./examples/quickstart
#include <cstdio>

#include "fluxtrace/core/integrator.hpp"
#include "fluxtrace/sim/machine.hpp"

using namespace fluxtrace;

namespace {

/// A worker processing 5 data-items; item 3 hits a slow path in `decode`.
class Worker final : public sim::Task {
 public:
  Worker(SymbolId parse, SymbolId decode) : parse_(parse), decode_(decode) {}

  sim::StepStatus step(sim::Cpu& cpu) override {
    if (next_ > 5) return sim::StepStatus::Done;
    const ItemId item = next_++;
    cpu.mark_enter(item); // the instrumented data-item switch
    cpu.exec(parse_, 30000);                           // ~4 us
    cpu.exec(decode_, item == 3 ? 300000 : 60000);     // ~40 us vs ~8 us
    cpu.mark_leave(item);
    return sim::StepStatus::Progress;
  }

 private:
  SymbolId parse_, decode_;
  ItemId next_ = 1;
};

} // namespace

int main() {
  // 1. The "binary": two functions with their code sizes.
  SymbolTable symtab;
  const SymbolId parse = symtab.add("parse", 0x800);
  const SymbolId decode = symtab.add("decode", 0x2000);

  // 2. A machine; PEBS on core 0 sampling every 8000 retired uops.
  sim::Machine machine(symtab);
  sim::PebsConfig pebs;
  pebs.event = HwEvent::UopsRetired;
  pebs.reset = 8000;
  machine.cpu(0).enable_pebs(pebs);

  Worker worker(parse, decode);
  machine.attach(0, worker);
  machine.run();
  machine.flush_samples();

  // 3. Integrate and inspect.
  core::TraceIntegrator integrator(symtab);
  const core::TraceTable trace = integrator.integrate(
      machine.marker_log().markers(), machine.pebs_driver().samples());

  const CpuSpec& spec = machine.spec();
  std::printf("item | parse [us] | decode [us]\n");
  for (const ItemId item : trace.items()) {
    std::printf("  #%llu |      %5.1f |       %5.1f\n",
                static_cast<unsigned long long>(item),
                spec.us(trace.elapsed(item, parse)),
                spec.us(trace.elapsed(item, decode)));
  }
  std::printf("\nitem #3 fluctuates, and the per-function trace shows the\n"
              "time went into `decode` — without instrumenting `decode`.\n");
  return 0;
}
