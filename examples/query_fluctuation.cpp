// The paper's sample application (§IV-B) with *online* fluctuation
// detection: per-query function times are streamed into the
// FluctuationDetector, which flags queries whose f2/f3 time deviates by
// more than k sigma — the trigger on which a production deployment would
// dump the raw PEBS samples for offline analysis instead of dumping
// everything (§IV-C3's cost-amortization idea).
//
// Usage: ./examples/query_fluctuation [n1 n2 n3 ...]   (default: paper's
// sequence 3 3 4 3 5 4 5 3 5 4)
#include <cstdio>
#include <cstdlib>

#include "fluxtrace/apps/query_cache_app.hpp"
#include "fluxtrace/core/detector.hpp"
#include "fluxtrace/core/integrator.hpp"

using namespace fluxtrace;

int main(int argc, char** argv) {
  std::vector<apps::Query> queries;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      queries.push_back(apps::Query{static_cast<ItemId>(i),
                                    static_cast<std::uint32_t>(
                                        std::strtoul(argv[i], nullptr, 10))});
    }
  } else {
    queries = apps::QueryCacheApp::paper_queries();
    // Repeat the warm tail so the detector has statistics to learn from...
    for (int rep = 0; rep < 4; ++rep) {
      for (const std::uint32_t n : {3u, 4u, 5u, 3u, 5u, 4u}) {
        queries.push_back(
            apps::Query{static_cast<ItemId>(queries.size() + 1), n});
      }
    }
    // ...then inject a query beyond the cache high-water mark: a cold-path
    // fluctuation occurring mid-production, which the detector must catch.
    queries.push_back(apps::Query{static_cast<ItemId>(queries.size() + 1), 8});
    for (const std::uint32_t n : {4u, 8u, 5u}) {
      queries.push_back(
          apps::Query{static_cast<ItemId>(queries.size() + 1), n});
    }
  }

  SymbolTable symtab;
  apps::QueryCacheApp app(symtab);
  sim::Machine machine(symtab);
  sim::PebsConfig pebs;
  pebs.reset = 8000;
  machine.cpu(1).enable_pebs(pebs);
  app.submit(queries);
  app.attach(machine, /*rx_core=*/0, /*worker_core=*/1);
  machine.run();
  machine.flush_samples();

  core::TraceIntegrator integrator(symtab);
  const core::TraceTable trace = integrator.integrate(
      machine.marker_log().markers(), machine.pebs_driver().samples());

  // Stream per-query window lengths into the online detector.
  core::FluctuationDetector detector(core::DetectorConfig{3.0, 6});
  const SymbolId whole = symtab.find("sample_app::worker_loop").value();
  const CpuSpec& spec = machine.spec();
  std::printf("query    n   total [us]   f3 [us]   anomalous?\n");
  for (const apps::Query& q : queries) {
    const Tsc total = trace.item_window_total(q.id);
    const bool flagged = detector.observe(q.id, whole, total);
    std::printf("  #%-4llu %2u   %10.2f  %8.2f   %s\n",
                static_cast<unsigned long long>(q.id), q.n, spec.us(total),
                spec.us(trace.elapsed(q.id, app.f3())),
                flagged ? "<-- dump raw samples" : "");
  }

  std::printf("\n%zu anomalies flagged; in a deployment only these queries'\n"
              "raw PEBS buffers would be written to storage.\n",
              detector.anomalies().size());
  return 0;
}
