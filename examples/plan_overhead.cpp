// Choosing a reset value for an overhead budget (§V-C) as a workflow:
// calibrate with three short traced runs of *your own* workload, fit the
// interval(R) line, and ask the planner for the smallest R that stays
// under the budget.
//
// Usage: ./examples/plan_overhead [budget_percent]   (default 5)
#include <cstdio>
#include <cstdlib>

#include "fluxtrace/core/planner.hpp"
#include "fluxtrace/prog/workload.hpp"

using namespace fluxtrace;

int main(int argc, char** argv) {
  const double budget =
      (argc > 1 ? std::strtod(argv[1], nullptr) : 5.0) / 100.0;

  // The workload to be traced in production — here the gcc-like kernel.
  SymbolTable symtab;
  const prog::Workload wl = prog::make_gcc(symtab);
  const CpuSpec spec;

  core::ResetValuePlanner planner;
  std::printf("calibrating on '%s'...\n", wl.name.c_str());
  for (const std::uint64_t reset : {4000u, 12000u, 32000u}) {
    sim::Machine machine(symtab);
    sim::PebsConfig pebs;
    pebs.reset = reset;
    pebs.buffer_capacity = 1u << 16;
    machine.cpu(0).enable_pebs(pebs);
    prog::WorkloadTask task(wl, 1200);
    machine.attach(0, task);
    const auto run = machine.run();
    machine.flush_samples();
    const double interval_ns =
        spec.ns(run.end_tsc) /
        static_cast<double>(machine.pebs_driver().samples().size());
    planner.add(reset, interval_ns);
    std::printf("  R = %6llu -> interval %.2f us (%zu samples)\n",
                static_cast<unsigned long long>(reset), interval_ns / 1000.0,
                machine.pebs_driver().samples().size());
  }

  const core::LinearFit fit = planner.fit();
  std::printf("\nfit: interval(R) = %.4f ns x R + %.1f ns (R^2 = %.5f)\n",
              fit.a, fit.b, fit.r2);

  const std::uint64_t reset = planner.recommend_for_overhead(budget);
  std::printf("\nfor a %.1f%% overhead budget: use reset value %llu\n",
              budget * 100.0, static_cast<unsigned long long>(reset));
  std::printf("predicted interval: %.2f us, predicted overhead: %.2f%%\n",
              planner.predict_interval_ns(reset) / 1000.0,
              planner.predict_overhead(reset) * 100.0);
  std::printf(
      "\ncaveat (§V-B1): functions shorter than the interval above cannot\n"
      "be estimated per data-item at this rate — check your bottleneck\n"
      "candidates' lengths before committing to the budget.\n");
  return 0;
}
