#!/usr/bin/env bash
# CI query smoke (ISSUE 5): record the deterministic example trace,
# convert it to a multi-chunk FLXT v2 container, run the canned
# flxt_query pipelines, and byte-diff each against its golden CSV in
# tests/golden/. A second pass re-runs one selective query so the FLXI
# sidecar written by the first pass must actually prune chunks — and
# must not change a single output byte.
#
# Usage: scripts/query_smoke.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
GOLDEN=tests/golden
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

"$BUILD/examples/offline_analysis" "$TMP/smoke.flxt" > /dev/null
"$BUILD/tools/flxt_convert" "$TMP/smoke.flxt" "$TMP/smoke_v2.flxt" \
  --to-v2 --chunk-records 16 > /dev/null
TRACE="$TMP/smoke_v2.flxt"
SYMS="$TMP/smoke.flxt.syms"

declare -A QUERIES=(
  [group_func]='group func: count, sum(dur), p95(dur)'
  [filter_item]='filter item == 1 | group func: count'
  [topk_items]='group item: count, max(ts) | top 3 by count'
  [select_rows]='filter func == "sample_app::f3_transform" && core == 1 | select item, ts | limit 5'
  [outliers]='outliers k=1.0 warmup=3'
)

fail=0
for name in group_func filter_item topk_items select_rows outliers; do
  "$BUILD/tools/flxt_query" "$TRACE" "$SYMS" "${QUERIES[$name]}" --csv \
    > "$TMP/$name.csv"
  if ! diff -u "$GOLDEN/query_$name.csv" "$TMP/$name.csv"; then
    echo "FAIL: $name diverges from $GOLDEN/query_$name.csv" >&2
    fail=1
  else
    echo "ok: $name"
  fi
done

# Wait-graph leg (ISSUE 8): the deterministic head-of-line demo records
# wait edges into a v2 container; critical_path must name the injected
# blocker (ring 10 held by core 2) byte-identically to the goldens.
"$BUILD/examples/waitgraph_demo" "$TMP/wait.flxt" > /dev/null
declare -A WAIT_QUERIES=(
  [critical_path]='filter item >= 0 | critical_path | top 5 by blocked'
  [blocked_by]='filter item >= 0 | blocked_by'
)
for name in critical_path blocked_by; do
  "$BUILD/tools/flxt_query" "$TMP/wait.flxt" "$TMP/wait.flxt.syms" \
    "${WAIT_QUERIES[$name]}" --csv > "$TMP/$name.csv"
  if ! diff -u "$GOLDEN/query_$name.csv" "$TMP/$name.csv"; then
    echo "FAIL: $name diverges from $GOLDEN/query_$name.csv" >&2
    fail=1
  else
    echo "ok: $name"
  fi
done
"$BUILD/tools/flxt_query" "$TMP/wait.flxt" "$TMP/wait.flxt.syms" \
  "${WAIT_QUERIES[critical_path]}" --csv --stats 2>&1 >/dev/null \
  | grep -q 'wait edges' || {
  echo "FAIL: --stats did not report the wait-edge scan" >&2
  fail=1
}

# Second pass: the sidecar from the first pass must prune, and pruned
# output must be byte-identical to the golden (i.e. to the full scan).
"$BUILD/tools/flxt_query" "$TRACE" "$SYMS" "${QUERIES[filter_item]}" \
  --csv --stats > "$TMP/pruned.csv" 2> "$TMP/pruned.stats"
grep -q 'pruned [1-9]' "$TMP/pruned.stats" || {
  echo "FAIL: second pass did not prune: $(cat "$TMP/pruned.stats")" >&2
  fail=1
}
diff -u "$GOLDEN/query_filter_item.csv" "$TMP/pruned.csv" || {
  echo "FAIL: pruned scan changed the output" >&2
  fail=1
}
grep -q 'index' "$TMP/pruned.stats" && echo "ok: pruned pass ($(cat "$TMP/pruned.stats"))"

exit "$fail"
