#!/usr/bin/env bash
# CI catalog smoke (ISSUE 9): ingest the deterministic example trace
# into a fresh catalog and run the canned flxt_query pipelines through
# --catalog federation. Every answer must be byte-identical to the
# single-trace goldens in tests/golden/ — federation must never change
# a byte — and the ledger must account every member as ok.
#
# Usage: scripts/catalog_smoke.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
GOLDEN=tests/golden
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

"$BUILD/examples/offline_analysis" "$TMP/smoke.flxt" > /dev/null
SYMS="$TMP/smoke.flxt.syms"
CAT="$TMP/catalog"
mkdir "$CAT"
"$BUILD/tools/flxt_convert" "$TMP/smoke.flxt" "$CAT/member.flxt" \
  --to-v2 --chunk-records 16 > /dev/null

"$BUILD/tools/flxt_hub" ingest "$CAT" "$SYMS" | tee "$TMP/ingest.out"
grep -q '1 registered' "$TMP/ingest.out"
"$BUILD/tools/flxt_hub" verify "$CAT" "$SYMS"

declare -A QUERIES=(
  [group_func]='group func: count, sum(dur), p95(dur)'
  [filter_item]='filter item == 1 | group func: count'
  [topk_items]='group item: count, max(ts) | top 3 by count'
  [select_rows]='filter func == "sample_app::f3_transform" && core == 1 | select item, ts | limit 5'
  [outliers]='outliers k=1.0 warmup=3'
)

fail=0
for name in group_func filter_item topk_items select_rows outliers; do
  "$BUILD/tools/flxt_query" "$CAT" "$SYMS" "${QUERIES[$name]}" \
    --catalog --csv > "$TMP/$name.csv" 2> "$TMP/$name.ledger"
  if ! diff -u "$GOLDEN/query_$name.csv" "$TMP/$name.csv"; then
    echo "FAIL: federated $name diverges from $GOLDEN/query_$name.csv" >&2
    fail=1
  elif ! grep -q 'traces: 1 ok, 0 salvaged, 0 quarantined, 0 skipped' \
      "$TMP/$name.ledger"; then
    echo "FAIL: $name ledger: $(cat "$TMP/$name.ledger")" >&2
    fail=1
  else
    echo "ok: federated $name"
  fi
done

exit "$fail"
