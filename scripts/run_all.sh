#!/usr/bin/env bash
# Build everything, run the full test suite, and regenerate every
# reproduced table/figure into results/.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

mkdir -p results
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    name="$(basename "$b")"
    echo "=== $name ==="
    "$b" | tee "results/${name}.txt"
  fi
done
echo "done: results/ holds one file per reproduced table/figure"
