// Shared argv parsing for the flxt_* tools. Each tool used to hand-roll
// the same strcmp/strtoull loop; this keeps the conventions in one place:
//
//   * positionals first (validated count), then --flags in any order;
//   * value flags consume the next argv entry;
//   * an unknown flag or wrong positional count silently fails parse()
//     (the tool prints usage and exits 2, as before);
//   * a malformed value prints "error: --flag expects ..." first, so the
//     user learns *why* before the usage text.
//
// Header-only on purpose: the tools are single-file programs and this is
// their only shared code.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "fluxtrace/base/version.hpp"
#include "fluxtrace/obs/export.hpp"
#include "fluxtrace/obs/metrics.hpp"
#include "fluxtrace/obs/span.hpp"

namespace fluxtrace::tools {

class Cli {
 public:
  /// `usage_text` is the full "usage: ..." line, without trailing newline.
  Cli(int argc, char** argv, std::string usage_text)
      : argc_(argc), argv_(argv), usage_(std::move(usage_text)) {}

  /// Boolean switch: presence sets *out to true.
  void flag(const char* name, bool* out) {
    flags_.push_back({name, Kind::Bool, out});
  }
  /// --name N, unsigned decimal (zero allowed; e.g. --threads 0 = auto).
  void flag_count(const char* name, std::size_t* out) {
    flags_.push_back({name, Kind::Count, out});
  }
  void flag_uint(const char* name, unsigned* out) {
    flags_.push_back({name, Kind::Uint, out});
  }
  /// --name N, strictly positive decimal (zero is rejected with a clear
  /// error; use for sizes/rates where 0 is meaningless).
  void flag_count_pos(const char* name, std::size_t* out) {
    flags_.push_back({name, Kind::CountPos, out});
  }
  void flag_uint_pos(const char* name, unsigned* out) {
    flags_.push_back({name, Kind::UintPos, out});
  }
  /// --name X, double in [0, 1] (probabilities/rates).
  void flag_rate(const char* name, double* out) {
    flags_.push_back({name, Kind::Rate, out});
  }
  /// --name BYTES: an unsigned byte count with an optional binary-scale
  /// suffix (K/M/G/T, case-insensitive, optionally followed by 'B' or
  /// 'iB': `512M`, `4G`, `64KiB`). The scaled value is overflow-checked,
  /// so `99999999999G` is rejected, never silently wrapped.
  void flag_bytes(const char* name, std::uint64_t* out) {
    flags_.push_back({name, Kind::Bytes, out});
  }
  /// --name GHZ, strictly positive double.
  void flag_ghz(const char* name, double* out) {
    flags_.push_back({name, Kind::Ghz, out});
  }
  /// --name VALUE, raw string.
  void flag_str(const char* name, const char** out) {
    flags_.push_back({name, Kind::Str, out});
  }

  /// Consume argv. False on any problem; the caller should then
  /// `return usage();`. Positional args (non-flag leading args) must
  /// number within [min_pos, max_pos].
  ///
  /// `--version` anywhere in argv prints "<tool> <version>" (the version
  /// is base/version.hpp, the one source of truth) and exits 0 — checked
  /// first so it works without the otherwise-required positionals.
  [[nodiscard]] bool parse(std::size_t min_pos, std::size_t max_pos) {
    for (int v = 1; v < argc_; ++v) {
      if (std::strcmp(argv_[v], "--version") == 0) {
        const char* prog = argv_[0];
        if (const char* slash = std::strrchr(prog, '/')) prog = slash + 1;
        std::printf("%s %.*s\n", prog,
                    static_cast<int>(kVersionString.size()),
                    kVersionString.data());
        std::exit(0);
      }
    }
    int i = 1;
    while (i < argc_ && std::strncmp(argv_[i], "--", 2) != 0) {
      pos_.push_back(argv_[i]);
      ++i;
    }
    if (pos_.size() < min_pos || pos_.size() > max_pos) return false;
    for (; i < argc_; ++i) {
      Flag* f = find(argv_[i]);
      if (f == nullptr) return false;
      if (f->kind == Kind::Bool) {
        *static_cast<bool*>(f->out) = true;
        continue;
      }
      if (i + 1 >= argc_) return false;
      const char* value = argv_[++i];
      if (!set_value(*f, value)) return false;
    }
    return true;
  }

  /// Print the usage line to stderr; returns the conventional exit code 2.
  int usage() const {
    std::fprintf(stderr, "%s\n", usage_.c_str());
    return 2;
  }

  [[nodiscard]] std::size_t n_pos() const { return pos_.size(); }
  [[nodiscard]] const char* pos(std::size_t i) const { return pos_[i]; }

 private:
  enum class Kind { Bool, Count, CountPos, Uint, UintPos, Ghz, Rate, Bytes, Str };
  struct Flag {
    const char* name;
    Kind kind;
    void* out;
  };

  Flag* find(const char* arg) {
    for (Flag& f : flags_) {
      if (std::strcmp(arg, f.name) == 0) return &f;
    }
    return nullptr;
  }

  /// Strict unsigned decimal: digits only. strtoull on its own silently
  /// *accepts* "-1" (it wraps to ULLONG_MAX — a --threads 18446744073...
  /// time bomb), leading '+', and embedded whitespace; none of those are
  /// numbers a tool flag should take.
  enum class NumErr { Ok, Malformed, Overflow };
  static NumErr parse_ull(const char* arg, unsigned long long& out) {
    if (*arg == '\0') return NumErr::Malformed;
    for (const char* p = arg; *p != '\0'; ++p) {
      if (*p < '0' || *p > '9') return NumErr::Malformed;
    }
    char* end = nullptr;
    errno = 0;
    out = std::strtoull(arg, &end, 10);
    if (errno == ERANGE) return NumErr::Overflow;
    return NumErr::Ok;
  }

  /// Byte count with an optional binary-scale suffix. Digits first (the
  /// same strict rules as parse_ull), then at most one of K/M/G/T (either
  /// case), optionally followed by "B" or "iB" ("512M" == "512MB" ==
  /// "512MiB"). The shift is overflow-checked against the pre-scale
  /// value, so an out-of-range product reports Overflow, never wraps.
  static NumErr parse_bytes(const char* arg, std::uint64_t& out) {
    const char* p = arg;
    while (*p >= '0' && *p <= '9') ++p;
    if (p == arg) return NumErr::Malformed;
    unsigned shift = 0;
    if (*p != '\0') {
      switch (*p) {
        case 'k': case 'K': shift = 10; break;
        case 'm': case 'M': shift = 20; break;
        case 'g': case 'G': shift = 30; break;
        case 't': case 'T': shift = 40; break;
        default: return NumErr::Malformed;
      }
      ++p;
      if ((*p == 'i' || *p == 'I') && (p[1] == 'b' || p[1] == 'B')) p += 2;
      else if (*p == 'b' || *p == 'B') ++p;
      if (*p != '\0') return NumErr::Malformed;
    }
    const std::string digits(arg, std::strspn(arg, "0123456789"));
    unsigned long long v = 0;
    const NumErr err = parse_ull(digits.c_str(), v);
    if (err != NumErr::Ok) return err;
    if (shift != 0 &&
        v > (std::numeric_limits<std::uint64_t>::max() >> shift)) {
      return NumErr::Overflow;
    }
    out = static_cast<std::uint64_t>(v) << shift;
    return NumErr::Ok;
  }

  /// One-line diagnostics naming the flag, the expectation, and the
  /// offending value — printed before the usage text.
  bool fail_num(const Flag& f, const char* value, NumErr err,
                bool need_pos) const {
    if (err == NumErr::Overflow) {
      std::fprintf(stderr, "error: %s value out of range: '%s'\n", f.name,
                   value);
    } else if (need_pos) {
      std::fprintf(stderr,
                   "error: %s expects a positive whole number, got '%s'\n",
                   f.name, value);
    } else {
      std::fprintf(stderr,
                   "error: %s expects an unsigned whole number, got '%s'\n",
                   f.name, value);
    }
    return false;
  }

  bool set_value(Flag& f, const char* value) {
    switch (f.kind) {
      case Kind::Bool: return false; // unreachable: handled in parse()
      case Kind::Count:
      case Kind::CountPos: {
        const bool pos = f.kind == Kind::CountPos;
        unsigned long long v = 0;
        const NumErr err = parse_ull(value, v);
        if (err != NumErr::Ok) return fail_num(f, value, err, pos);
        if (v > std::numeric_limits<std::size_t>::max()) {
          return fail_num(f, value, NumErr::Overflow, pos);
        }
        if (pos && v == 0) return fail_num(f, value, NumErr::Malformed, pos);
        *static_cast<std::size_t*>(f.out) = static_cast<std::size_t>(v);
        return true;
      }
      case Kind::Uint:
      case Kind::UintPos: {
        const bool pos = f.kind == Kind::UintPos;
        unsigned long long v = 0;
        const NumErr err = parse_ull(value, v);
        if (err != NumErr::Ok) return fail_num(f, value, err, pos);
        if (v > 0xffffffffull) {
          return fail_num(f, value, NumErr::Overflow, pos);
        }
        if (pos && v == 0) return fail_num(f, value, NumErr::Malformed, pos);
        *static_cast<unsigned*>(f.out) = static_cast<unsigned>(v);
        return true;
      }
      case Kind::Bytes: {
        std::uint64_t v = 0;
        const NumErr err = parse_bytes(value, v);
        if (err == NumErr::Overflow) {
          std::fprintf(stderr, "error: %s value out of range: '%s'\n", f.name,
                       value);
          return false;
        }
        if (err != NumErr::Ok) {
          std::fprintf(stderr,
                       "error: %s expects a byte count (digits with an "
                       "optional K/M/G/T suffix), got '%s'\n",
                       f.name, value);
          return false;
        }
        *static_cast<std::uint64_t*>(f.out) = v;
        return true;
      }
      case Kind::Ghz: {
        char* end = nullptr;
        errno = 0;
        const double v = std::strtod(value, &end);
        if (end == value || *end != '\0' || errno == ERANGE || v <= 0.0) {
          std::fprintf(stderr,
                       "error: %s expects a positive GHz value, got '%s'\n",
                       f.name, value);
          return false;
        }
        *static_cast<double*>(f.out) = v;
        return true;
      }
      case Kind::Rate: {
        char* end = nullptr;
        errno = 0;
        const double v = std::strtod(value, &end);
        if (end == value || *end != '\0' || errno == ERANGE || v < 0.0 ||
            v > 1.0) {
          std::fprintf(stderr,
                       "error: %s expects a rate in [0, 1], got '%s'\n",
                       f.name, value);
          return false;
        }
        *static_cast<double*>(f.out) = v;
        return true;
      }
      case Kind::Str:
        *static_cast<const char**>(f.out) = value;
        return true;
    }
    return false;
  }

  int argc_;
  char** argv_;
  std::string usage_;
  std::vector<Flag> flags_;
  std::vector<const char*> pos_;
};

/// Shared self-telemetry flags for every flxt_* tool:
///
///   --telemetry FILE   enable span tracing; write Chrome trace-event
///                      JSON (Perfetto / chrome://tracing loadable) to
///                      FILE on exit
///   --metrics          enable telemetry; dump the metrics registry as
///                      Prometheus text to stderr on exit
///
/// Usage: attach(cli) before parse(); start() after a successful parse;
/// `return tel.finish();` at every success exit (it returns 0, or 1 if
/// the telemetry file cannot be written).
class Telemetry {
 public:
  void attach(Cli& cli) {
    cli.flag_str("--telemetry", &out_);
    cli.flag("--metrics", &metrics_);
  }

  void start() {
    if (out_ != nullptr || metrics_) obs::set_enabled(true);
  }

  [[nodiscard]] int finish() {
    if (out_ != nullptr) {
      std::ofstream os(out_);
      if (!os) {
        std::fprintf(stderr, "error: cannot write telemetry file: %s\n", out_);
        return 1;
      }
      obs::write_chrome_trace(os, obs::SpanLog::global().drain());
      if (!os) {
        std::fprintf(stderr, "error: telemetry write failed: %s\n", out_);
        return 1;
      }
    }
    if (metrics_) {
      obs::write_prometheus(std::cerr, obs::metrics().snapshot());
    }
    return 0;
  }

 private:
  const char* out_ = nullptr;
  bool metrics_ = false;
};

} // namespace fluxtrace::tools
