// flxt_session — run a workload under a supervised capture session
// (core::SessionSupervisor + io::ResilientWriter) and print the session
// report: state transitions, retries, spool failovers, records shed vs
// R-shed. This is the chaos-soak entry point: --drain-loss / --sink-*
// flags drive a deterministic sim::FaultPlan, so a CI sweep can assert
// that the session heals without operator action and that every
// unrecorded sample is attributed to a counted cause.
//
//   flxt_session <spool-out> [--secondary PATH] [--queries N] [--seed S]
//     [--reset R] [--queue N] [--policy block|drop-oldest|drop-newest]
//     [--chunk-records N] [--shed-backlog N] [--drain-loss P]
//     [--sink-transient P] [--stuck-at N] [--stuck-for N]
//     [--enospc-bytes N] [--crash-after N] [--telemetry FILE] [--metrics]
//
// --crash-after N simulates kill -9 (immediate _Exit, no close, no eof
// sentinel) once N chunks have committed — the fsynced prefix must then
// salvage cleanly with flxt_recover.
//
// Exit status: 0 when the session ended in a non-halted state AND the
// record ledger reconciled exactly; 1 otherwise; 2 on bad usage;
// 137 after a --crash-after "kill".
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cli.hpp"
#include "fluxtrace/apps/query_cache_app.hpp"
#include "fluxtrace/core/adaptive.hpp"
#include "fluxtrace/core/session.hpp"
#include "fluxtrace/io/resilient.hpp"
#include "fluxtrace/sim/fault.hpp"
#include "fluxtrace/sim/machine.hpp"

using namespace fluxtrace;

int main(int argc, char** argv) try {
  tools::Cli cli(argc, argv,
                 std::string("usage: ") + argv[0] +
                     " <spool-out> [--secondary PATH] [--queries N]"
                     " [--seed S] [--reset R] [--queue N]"
                     " [--policy block|drop-oldest|drop-newest]"
                     " [--chunk-records N] [--shed-backlog N]"
                     " [--drain-loss P] [--sink-transient P]"
                     " [--stuck-at N] [--stuck-for N] [--enospc-bytes N]"
                     " [--crash-after N] [--telemetry FILE] [--metrics] [--version]");
  const char* secondary = nullptr;
  std::size_t queries = 300;
  std::size_t seed = 1;
  std::size_t reset = 4000;
  std::size_t queue = 64;
  const char* policy = "block";
  std::size_t chunk_records = 64;
  std::size_t shed_backlog = 32;
  double drain_loss = 0.0;
  double sink_transient = 0.0;
  std::size_t stuck_at = 0;
  std::size_t stuck_for = 0;
  std::uint64_t enospc_bytes = 0;
  std::size_t crash_after = 0;
  cli.flag_str("--secondary", &secondary);
  cli.flag_count_pos("--queries", &queries);
  cli.flag_count("--seed", &seed);
  cli.flag_count_pos("--reset", &reset);
  cli.flag_count_pos("--queue", &queue);
  cli.flag_str("--policy", &policy);
  cli.flag_count_pos("--chunk-records", &chunk_records);
  cli.flag_count_pos("--shed-backlog", &shed_backlog);
  cli.flag_rate("--drain-loss", &drain_loss);
  cli.flag_rate("--sink-transient", &sink_transient);
  cli.flag_count("--stuck-at", &stuck_at);
  cli.flag_count("--stuck-for", &stuck_for);
  cli.flag_bytes("--enospc-bytes", &enospc_bytes);
  cli.flag_count("--crash-after", &crash_after);
  tools::Telemetry tel;
  tel.attach(cli);
  if (!cli.parse(1, 1)) return cli.usage();

  io::OverflowPolicy overflow;
  if (std::strcmp(policy, "block") == 0) {
    overflow = io::OverflowPolicy::Block;
  } else if (std::strcmp(policy, "drop-oldest") == 0) {
    overflow = io::OverflowPolicy::DropOldest;
  } else if (std::strcmp(policy, "drop-newest") == 0) {
    overflow = io::OverflowPolicy::DropNewest;
  } else {
    std::fprintf(stderr, "error: --policy expects block|drop-oldest|"
                         "drop-newest, got '%s'\n", policy);
    return cli.usage();
  }
  tel.start();

  // --- workload + machine ------------------------------------------------
  SymbolTable symtab;
  apps::QueryCacheApp app(symtab);
  sim::Machine m(symtab);
  sim::PebsConfig pc;
  pc.reset = reset;
  pc.buffer_capacity = 64;
  m.cpu(1).enable_pebs(pc);

  // Mostly warm traffic with a periodic cold query (new chunks) so the
  // online detector has genuine anomalies to dump into the spool.
  std::vector<apps::Query> qs;
  ItemId id = 0;
  std::uint32_t cold_max = 4;
  qs.push_back(apps::Query{++id, cold_max}); // warm-up
  for (std::size_t i = 1; i < queries; ++i) {
    if (i % 24 == 0) {
      cold_max += 2; // touches chunks never seen before: a cold outlier
      qs.push_back(apps::Query{++id, cold_max});
    } else {
      qs.push_back(
          apps::Query{++id, 2 + static_cast<std::uint32_t>(i % 3)});
    }
  }
  app.submit(qs);
  app.attach(m, 0, 1);

  // --- fault plan --------------------------------------------------------
  sim::FaultPlanConfig fcfg;
  fcfg.seed = seed;
  fcfg.sample_loss_rate = drain_loss;
  fcfg.sink_transient_rate = sink_transient;
  if (stuck_for > 0) fcfg.sink_stuck.push_back({stuck_at, stuck_for});
  if (enospc_bytes > 0) fcfg.sink_enospc_after_bytes = enospc_bytes;
  sim::FaultPlan plan(fcfg);
  plan.attach(m);

  // --- resilient spool ---------------------------------------------------
  // Faults are injected on the *primary* spool only; --secondary is the
  // clean failover path a real deployment would point at another device.
  const auto fault_fn = [&plan](std::size_t bytes) {
    switch (plan.sink_fault(bytes)) {
      case sim::SinkFaultKind::None: return io::SinkFault::None;
      case sim::SinkFaultKind::Transient: return io::SinkFault::Transient;
      case sim::SinkFaultKind::Stuck: return io::SinkFault::Stuck;
      case sim::SinkFaultKind::NoSpace: return io::SinkFault::NoSpace;
    }
    return io::SinkFault::None;
  };
  io::ResilientWriterConfig wcfg;
  wcfg.queue_chunks = queue;
  wcfg.overflow = overflow;
  wcfg.records_per_chunk = chunk_records;
  wcfg.jitter_seed = seed;
  auto primary = std::make_unique<io::FaultableSink>(
      std::make_unique<io::FileSpoolSink>(cli.pos(0)), fault_fn);
  std::unique_ptr<io::SpoolSink> second;
  if (secondary != nullptr) {
    second = std::make_unique<io::FileSpoolSink>(secondary);
  }
  io::ResilientWriter writer(wcfg, std::move(primary), std::move(second));

  // --- adaptive reset (the §V-C knob the watchdog sheds with) ------------
  core::AdaptiveResetConfig acfg;
  acfg.target_interval_ns = m.spec().ns(reset); // ~1 event/cycle workload
  acfg.min_reset = 64;
  acfg.max_reset = 1u << 22;
  core::AdaptiveReset ar(acfg, reset, m.spec(), [&m](std::uint64_t r) {
    m.cpu(1).pebs().set_reset(r);
  });

  // --- supervised session ------------------------------------------------
  core::OnlineTracerConfig ocfg;
  ocfg.synthesize_markers = true;
  ocfg.shed_backlog = shed_backlog;
  core::OnlineTracer online(symtab, ocfg);
  core::SessionSupervisorConfig scfg;
  scfg.backlog_high = shed_backlog;
  scfg.backlog_low = shed_backlog / 4 + 1;
  scfg.queue_high = queue - queue / 4;
  scfg.queue_low = queue / 8 + 1;
  core::SessionSupervisor sup(online, writer, scfg, &ar);

  const CpuSpec spec = m.spec();
  const auto to_ns = [&spec](Tsc tsc) {
    return static_cast<std::uint64_t>(spec.ns(tsc));
  };
  std::uint64_t last_ns = 0;
  m.marker_log().set_sink([&](const Marker& mk) {
    last_ns = to_ns(mk.tsc);
    sup.on_marker(mk, last_ns);
  });
  m.pebs_driver().set_loss_sink([&](const SampleLoss& l) {
    last_ns = to_ns(l.tsc);
    sup.on_sample_lost(l, last_ns);
  });
  m.pebs_driver().set_sink([&](const PebsSample& s) {
    last_ns = to_ns(s.tsc);
    sup.on_sample(s, last_ns);
    sup.tick(last_ns);
    if (crash_after > 0 &&
        writer.stats().chunks_committed >= crash_after) {
      // Simulated kill -9: no close(), no eof sentinel, no destructors —
      // the spool must salvage up to the last fsynced chunk.
      std::fprintf(stderr, "crash-after reached (%zu chunks): _Exit\n",
                   crash_after);
      std::fflush(stderr);
      std::_Exit(137);
    }
  });

  m.run();
  m.flush_samples();
  // Settle phase: with the workload done (backlog draining, no new
  // pressure) a few calm watchdog ticks let the supervisor restore R —
  // the bounded de-escalation the acceptance criteria ask for.
  for (int i = 0; i < 20 && sup.shed_steps() > 0; ++i) {
    last_ns += scfg.calm_hold_ns + 1;
    sup.tick(last_ns);
  }
  const auto report = sup.finish(last_ns + 1);

  std::printf("%s", report.summary().c_str());
  std::printf("faults: drain-lost=%llu sink-transients=%llu "
              "sink-stuck-hits=%llu sink-enospc-hits=%llu\n",
              static_cast<unsigned long long>(plan.samples_dropped()),
              static_cast<unsigned long long>(plan.sink_transients()),
              static_cast<unsigned long long>(plan.sink_stuck_hits()),
              static_cast<unsigned long long>(plan.sink_enospc_hits()));
  std::printf("reset: initial=%zu final=%llu adjustments=%llu\n", reset,
              static_cast<unsigned long long>(ar.current_reset()),
              static_cast<unsigned long long>(ar.adjustments()));
  std::printf("spool: active=%s\n", writer.active_sink_name().c_str());

  const int tel_rc = tel.finish();
  if (tel_rc != 0) return tel_rc;
  const bool ok = report.final_state != core::SessionState::Halted &&
                  report.reconciled;
  if (!ok) {
    std::fprintf(stderr, "session FAILED: state=%s reconciled=%s\n",
                 core::to_string(report.final_state),
                 report.reconciled ? "yes" : "no");
  }
  return ok ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
