// flxt_dump — inspect a fluxtrace binary trace file. Any container the
// io::TraceReader facade understands (FLXT v1/v2, FLXZ compact) works.
//
//   flxt_dump <trace>                  summary + first records
//   flxt_dump <trace> --head N         show N records of each stream
//   flxt_dump <trace> --csv markers    full marker stream as CSV
//   flxt_dump <trace> --csv samples    full sample stream as CSV
//   flxt_dump <trace> --salvage        best-effort read of a damaged
//                                      file (recovers intact chunks)
//   flxt_dump <trace> --threads N      decode on N threads (0 = all)
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "cli.hpp"
#include "fluxtrace/io/trace_reader.hpp"

using namespace fluxtrace;

int main(int argc, char** argv) try {
  tools::Cli cli(argc, argv,
                 std::string("usage: ") + argv[0] +
                     " <trace-file> [--head N] [--csv markers|samples] "
                     "[--salvage] [--threads N]");
  std::size_t head = 10;
  const char* csv = nullptr;
  bool salvage = false;
  unsigned threads = 1;
  cli.flag_count("--head", &head);
  cli.flag_str("--csv", &csv);
  cli.flag("--salvage", &salvage);
  cli.flag_uint("--threads", &threads);
  if (!cli.parse(1, 1)) return cli.usage();
  const char* path = cli.pos(0);

  io::TraceData data;
  try {
    const io::TraceReader reader = io::open_trace(path);
    if (salvage) {
      io::SalvageReport rep = reader.salvage();
      std::fprintf(stderr,
                   "salvage: %zu chunks ok, %zu corrupt, %zu resynced, "
                   "%llu bytes skipped, %llu bytes truncated%s\n",
                   rep.chunks_ok, rep.chunks_corrupt, rep.chunks_resynced,
                   static_cast<unsigned long long>(rep.bytes_skipped),
                   static_cast<unsigned long long>(rep.bytes_truncated),
                   rep.clean() ? " (file was clean)" : "");
      data = std::move(rep.data);
    } else {
      data = reader.read_parallel(threads);
    }
  } catch (const io::TraceIoError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  if (csv != nullptr) {
    if (std::strcmp(csv, "markers") == 0) {
      io::write_markers_csv(std::cout, data.markers);
    } else if (std::strcmp(csv, "samples") == 0) {
      io::write_samples_csv(std::cout, data.samples);
    } else {
      return cli.usage();
    }
    return 0;
  }

  std::printf("%s: %zu markers, %zu samples (%zu bytes of records)\n\n",
              path, data.markers.size(), data.samples.size(),
              data.samples.size() * kPebsRecordBytes);

  std::printf("markers (first %zu):\n  %-16s %-12s %-4s %s\n", head, "tsc",
              "item", "core", "kind");
  for (std::size_t i = 0; i < data.markers.size() && i < head; ++i) {
    const Marker& m = data.markers[i];
    std::printf("  %-16llu %-12llu %-4u %s\n",
                static_cast<unsigned long long>(m.tsc),
                static_cast<unsigned long long>(m.item), m.core,
                m.kind == MarkerKind::Enter ? "enter" : "leave");
  }

  std::printf("\nsamples (first %zu):\n  %-16s %-12s %-4s %s\n", head, "tsc",
              "ip", "core", "r13");
  for (std::size_t i = 0; i < data.samples.size() && i < head; ++i) {
    const PebsSample& s = data.samples[i];
    std::printf("  %-16llu 0x%-10llx %-4u %llu\n",
                static_cast<unsigned long long>(s.tsc),
                static_cast<unsigned long long>(s.ip), s.core,
                static_cast<unsigned long long>(s.regs.get(Reg::R13)));
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
