// flxt_dump — inspect a fluxtrace binary trace file. Any container the
// io::TraceReader facade understands (FLXT v1/v2/v3, FLXZ compact)
// works. For a v3 compressed-columnar trace the footer also reports
// per-column raw vs. encoded bytes and which codec carried each column
// (docs/format.md).
//
//   flxt_dump <trace>                  summary + first records
//   flxt_dump <trace> --head N         show N records of each stream
//   flxt_dump <trace> --csv markers    full marker stream as CSV
//   flxt_dump <trace> --csv samples    full sample stream as CSV
//   flxt_dump <trace> --salvage        best-effort read of a damaged
//                                      file (recovers intact chunks)
//   flxt_dump <trace> --threads N      decode on N threads (0 = all)
//
// Every mode ends with a per-trace summary footer: item count with a
// pairing/confidence breakdown, sample coverage, and the trace's TSC
// span — the quick "is this capture healthy?" read.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "cli.hpp"
#include "fluxtrace/io/trace_reader.hpp"
#include "fluxtrace/io/v3.hpp"

using namespace fluxtrace;

namespace {

// Pair Enter -> Leave per core, the way the strict integrator does, and
// classify everything that does not pair. An item is "clean" when every
// one of its edges paired; any unterminated Enter or orphan Leave means
// a degraded-mode read would have to synthesize the missing edge.
void print_summary_footer(const io::TraceData& data) {
  std::map<std::uint32_t, std::vector<const Marker*>> per_core;
  for (const Marker& m : data.markers) per_core[m.core].push_back(&m);

  struct Window {
    Tsc enter, leave;
  };
  std::map<std::uint32_t, std::vector<Window>> windows;
  std::set<ItemId> items, dirty_items;
  std::size_t paired = 0, unterminated = 0, orphan_leaves = 0;
  for (auto& [core, ms] : per_core) {
    std::stable_sort(ms.begin(), ms.end(),
                     [](const Marker* a, const Marker* b) {
                       return a->tsc < b->tsc;
                     });
    std::map<ItemId, Tsc> open;
    for (const Marker* m : ms) {
      items.insert(m->item);
      if (m->kind == MarkerKind::Enter) {
        open[m->item] = m->tsc;
      } else {
        auto oit = open.find(m->item);
        if (oit != open.end()) {
          windows[core].push_back(Window{oit->second, m->tsc});
          open.erase(oit);
          ++paired;
        } else {
          ++orphan_leaves;
          dirty_items.insert(m->item);
        }
      }
    }
    unterminated += open.size();
    for (const auto& [item, enter] : open) dirty_items.insert(item);
  }

  std::size_t covered = 0;
  for (const PebsSample& s : data.samples) {
    auto wit = windows.find(s.core);
    if (wit == windows.end()) continue;
    for (const Window& w : wit->second) {
      if (s.tsc >= w.enter && s.tsc <= w.leave) {
        ++covered;
        break;
      }
    }
  }
  const std::size_t uncovered = data.samples.size() - covered;

  Tsc t_min = ~Tsc{0}, t_max = 0;
  for (const Marker& m : data.markers) {
    t_min = std::min(t_min, m.tsc);
    t_max = std::max(t_max, m.tsc);
  }
  for (const PebsSample& s : data.samples) {
    t_min = std::min(t_min, s.tsc);
    t_max = std::max(t_max, s.tsc);
  }

  std::printf("\nsummary:\n");
  std::printf("  items:    %zu (%zu windows paired, %zu enters unterminated, "
              "%zu orphan leaves)\n",
              items.size(), paired, unterminated, orphan_leaves);
  std::printf("  quality:  %zu clean, %zu would need edge synthesis "
              "(--degraded)\n",
              items.size() - dirty_items.size(), dirty_items.size());
  std::printf("  samples:  %zu inside item windows, %zu outside (loss "
              "suspects)\n",
              covered, uncovered);
  if (t_max >= t_min && (!data.markers.empty() || !data.samples.empty())) {
    std::printf("  tsc span: %llu .. %llu (%llu cycles)\n",
                static_cast<unsigned long long>(t_min),
                static_cast<unsigned long long>(t_max),
                static_cast<unsigned long long>(t_max - t_min));
  }

  // Wait-edge summary (ISSUE 8): how much of the trace's story is
  // blocking rather than work, and what mostly caused it.
  if (!data.wait_edges.empty()) {
    std::uint64_t by_cause[kNumWaitCauses] = {};
    std::uint64_t total_blocked = 0;
    for (const WaitEdge& e : data.wait_edges) {
      by_cause[static_cast<std::uint8_t>(e.cause)] += e.blocked();
      total_blocked += e.blocked();
    }
    std::uint8_t top = 0;
    for (std::uint8_t c = 1; c < kNumWaitCauses; ++c) {
      if (by_cause[c] > by_cause[top]) top = c;
    }
    std::printf("  waits:    %zu edges, top cause %s (%llu of %llu blocked "
                "tsc)\n",
                data.wait_edges.size(),
                std::string(to_string(static_cast<WaitCause>(top))).c_str(),
                static_cast<unsigned long long>(by_cause[top]),
                static_cast<unsigned long long>(total_blocked));
  }
}

// Per-column compression accounting for a v3 trace: raw fixed-width
// bytes vs. encoded bytes, the ratio, and the codec that carried most
// chunks of the column. Appended after the health footer so `flxt_dump
// trace.flxt3` answers "what is the compression actually doing?".
void print_compression_footer(const std::vector<io::V3ColumnSummary>& cols) {
  if (cols.empty()) return;
  std::printf("\ncompression (v3 columns):\n");
  std::printf("  %-16s %12s %12s %8s  %s\n", "column", "raw", "encoded",
              "ratio", "codec");
  std::uint64_t raw_total = 0, enc_total = 0;
  for (const io::V3ColumnSummary& c : cols) {
    raw_total += c.raw_bytes;
    enc_total += c.enc_bytes;
    std::uint8_t top = 0;
    for (std::uint8_t k = 1; k < codec::kNumColumnCodecs; ++k) {
      if (c.codec_chunks[k] > c.codec_chunks[top]) top = k;
    }
    std::printf("  %-16s %12llu %12llu %7.2fx  %s\n", c.name.c_str(),
                static_cast<unsigned long long>(c.raw_bytes),
                static_cast<unsigned long long>(c.enc_bytes),
                c.enc_bytes > 0 ? static_cast<double>(c.raw_bytes) /
                                      static_cast<double>(c.enc_bytes)
                                : 0.0,
                std::string(codec::column_codec_name(
                                static_cast<codec::ColumnCodec>(top)))
                    .c_str());
  }
  std::printf("  %-16s %12llu %12llu %7.2fx\n", "total",
              static_cast<unsigned long long>(raw_total),
              static_cast<unsigned long long>(enc_total),
              enc_total > 0 ? static_cast<double>(raw_total) /
                                  static_cast<double>(enc_total)
                            : 0.0);
}

} // namespace

int main(int argc, char** argv) try {
  tools::Cli cli(argc, argv,
                 std::string("usage: ") + argv[0] +
                     " <trace-file> [--head N] [--csv markers|samples] "
                     "[--salvage] [--threads N] [--telemetry FILE] "
                     "[--metrics] [--version]");
  std::size_t head = 10;
  const char* csv = nullptr;
  bool salvage = false;
  unsigned threads = 1;
  cli.flag_count("--head", &head);
  cli.flag_str("--csv", &csv);
  cli.flag("--salvage", &salvage);
  cli.flag_uint("--threads", &threads);
  tools::Telemetry tel;
  tel.attach(cli);
  if (!cli.parse(1, 1)) return cli.usage();
  tel.start();
  const char* path = cli.pos(0);

  io::TraceData data;
  std::vector<io::V3ColumnSummary> comp;
  try {
    const io::TraceReader reader = io::open_trace(path);
    if (reader.format() == io::TraceFormat::FlxtV3) {
      try {
        comp = io::v3_compression_stats(reader.bytes());
      } catch (const io::TraceIoError&) {
        // damaged image: the summary below still covers what was read
      }
    }
    if (salvage) {
      io::SalvageReport rep = reader.salvage();
      std::fprintf(stderr,
                   "salvage: %zu chunks ok, %zu corrupt, %zu resynced, "
                   "%llu bytes skipped, %llu bytes truncated%s\n",
                   rep.chunks_ok, rep.chunks_corrupt, rep.chunks_resynced,
                   static_cast<unsigned long long>(rep.bytes_skipped),
                   static_cast<unsigned long long>(rep.bytes_truncated),
                   rep.clean() ? " (file was clean)" : "");
      data = std::move(rep.data);
    } else {
      data = reader.read_parallel(threads);
    }
  } catch (const io::TraceIoError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  if (csv != nullptr) {
    if (std::strcmp(csv, "markers") == 0) {
      io::write_markers_csv(std::cout, data.markers);
    } else if (std::strcmp(csv, "samples") == 0) {
      io::write_samples_csv(std::cout, data.samples);
    } else {
      return cli.usage();
    }
    return tel.finish();
  }

  std::printf("%s: %zu markers, %zu samples (%zu bytes of records)\n\n",
              path, data.markers.size(), data.samples.size(),
              data.samples.size() * kPebsRecordBytes);

  std::printf("markers (first %zu):\n  %-16s %-12s %-4s %s\n", head, "tsc",
              "item", "core", "kind");
  for (std::size_t i = 0; i < data.markers.size() && i < head; ++i) {
    const Marker& m = data.markers[i];
    std::printf("  %-16llu %-12llu %-4u %s\n",
                static_cast<unsigned long long>(m.tsc),
                static_cast<unsigned long long>(m.item), m.core,
                m.kind == MarkerKind::Enter ? "enter" : "leave");
  }

  std::printf("\nsamples (first %zu):\n  %-16s %-12s %-4s %s\n", head, "tsc",
              "ip", "core", "r13");
  for (std::size_t i = 0; i < data.samples.size() && i < head; ++i) {
    const PebsSample& s = data.samples[i];
    std::printf("  %-16llu 0x%-10llx %-4u %llu\n",
                static_cast<unsigned long long>(s.tsc),
                static_cast<unsigned long long>(s.ip), s.core,
                static_cast<unsigned long long>(s.regs.get(Reg::R13)));
  }
  print_summary_footer(data);
  print_compression_footer(comp);
  return tel.finish();
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
