// flxt_dump — inspect a fluxtrace binary trace file.
//
//   flxt_dump <trace>                  summary + first records
//   flxt_dump <trace> --head N         show N records of each stream
//   flxt_dump <trace> --csv markers    full marker stream as CSV
//   flxt_dump <trace> --csv samples    full sample stream as CSV
//   flxt_dump <trace> --salvage        best-effort read of a damaged v2
//                                      file (recovers intact chunks)
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "fluxtrace/io/chunked.hpp"
#include "fluxtrace/io/trace_file.hpp"

using namespace fluxtrace;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <trace-file> [--head N] [--csv markers|samples] "
               "[--salvage]\n",
               argv0);
  return 2;
}

bool parse_count(const char* arg, std::size_t& out) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(arg, &end, 10);
  if (end == arg || *end != '\0' || errno == ERANGE) return false;
  out = static_cast<std::size_t>(v);
  return true;
}

} // namespace

int main(int argc, char** argv) try {
  if (argc < 2) return usage(argv[0]);
  const char* path = argv[1];
  std::size_t head = 10;
  const char* csv = nullptr;
  bool salvage = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--head") == 0 && i + 1 < argc) {
      if (!parse_count(argv[++i], head)) {
        std::fprintf(stderr, "error: --head expects a number, got '%s'\n",
                     argv[i]);
        return usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      csv = argv[++i];
    } else if (std::strcmp(argv[i], "--salvage") == 0) {
      salvage = true;
    } else {
      return usage(argv[0]);
    }
  }

  io::TraceData data;
  try {
    if (salvage) {
      io::SalvageReport rep = io::salvage_trace_file(path);
      std::fprintf(stderr,
                   "salvage: %zu chunks ok, %zu corrupt, %zu resynced, "
                   "%llu bytes skipped, %llu bytes truncated%s\n",
                   rep.chunks_ok, rep.chunks_corrupt, rep.chunks_resynced,
                   static_cast<unsigned long long>(rep.bytes_skipped),
                   static_cast<unsigned long long>(rep.bytes_truncated),
                   rep.clean() ? " (file was clean)" : "");
      data = std::move(rep.data);
    } else {
      data = io::load_trace(path);
    }
  } catch (const io::TraceIoError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  if (csv != nullptr) {
    if (std::strcmp(csv, "markers") == 0) {
      io::write_markers_csv(std::cout, data.markers);
    } else if (std::strcmp(csv, "samples") == 0) {
      io::write_samples_csv(std::cout, data.samples);
    } else {
      return usage(argv[0]);
    }
    return 0;
  }

  std::printf("%s: %zu markers, %zu samples (%zu bytes of records)\n\n",
              path, data.markers.size(), data.samples.size(),
              data.samples.size() * kPebsRecordBytes);

  std::printf("markers (first %zu):\n  %-16s %-12s %-4s %s\n", head, "tsc",
              "item", "core", "kind");
  for (std::size_t i = 0; i < data.markers.size() && i < head; ++i) {
    const Marker& m = data.markers[i];
    std::printf("  %-16llu %-12llu %-4u %s\n",
                static_cast<unsigned long long>(m.tsc),
                static_cast<unsigned long long>(m.item), m.core,
                m.kind == MarkerKind::Enter ? "enter" : "leave");
  }

  std::printf("\nsamples (first %zu):\n  %-16s %-12s %-4s %s\n", head, "tsc",
              "ip", "core", "r13");
  for (std::size_t i = 0; i < data.samples.size() && i < head; ++i) {
    const PebsSample& s = data.samples[i];
    std::printf("  %-16llu 0x%-10llx %-4u %llu\n",
                static_cast<unsigned long long>(s.tsc),
                static_cast<unsigned long long>(s.ip), s.core,
                static_cast<unsigned long long>(s.regs.get(Reg::R13)));
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
