// flxt_report — offline integration of a recorded trace (step 2+3 of the
// paper's procedure, as a standalone analysis tool).
//
//   flxt_report <trace> <symbols>              per-item per-function table
//   flxt_report <trace> <symbols> --profile    averaged profile instead
//   flxt_report <trace> <symbols> --folded     flamegraph folded stacks
//   flxt_report <trace> <symbols> --gantt      per-core item timeline
//   flxt_report <trace> <symbols> --diagnose   outlier report
//   flxt_report <trace> <symbols> --table-csv  integrated table as CSV
//   flxt_report <trace> <symbols> --freq GHZ   TSC frequency (default 3.0)
//   flxt_report <trace> <symbols> --regs       map items via R13 (§V-A)
//   flxt_report <trace> <symbols> --degraded   salvage orphan samples,
//                                              synthesize lost markers,
//                                              flag degraded items
//   flxt_report <trace> <symbols> --threads N  decode + integrate on N
//                                              threads (0 = all cores);
//                                              the result is identical
//   flxt_report <trace> <symbols> --filter E   keep only buckets matching
//                                              a query predicate over
//                                              item/func/dur (query/expr);
//                                              --gantt filters windows
//                                              over item/core
//   flxt_report <trace> <symbols> --item N     alias for
//                                              --filter 'item == N'
//   flxt_report <trace> <symbols> --func NAME  alias for
//                                              --filter 'func == "NAME"'
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "cli.hpp"
#include "fluxtrace/core/diagnosis.hpp"
#include "fluxtrace/core/parallel_integrator.hpp"
#include "fluxtrace/core/profile.hpp"
#include "fluxtrace/io/folded.hpp"
#include "fluxtrace/query/expr.hpp"
#include "fluxtrace/query/waitgraph.hpp"
#include "fluxtrace/report/gantt.hpp"
#include "fluxtrace/io/symbols_file.hpp"
#include "fluxtrace/io/trace_reader.hpp"
#include "fluxtrace/report/table.hpp"

using namespace fluxtrace;

int main(int argc, char** argv) try {
  tools::Cli cli(argc, argv,
                 std::string("usage: ") + argv[0] +
                     " <trace-file> <symbols-file> [--profile] [--folded] "
                     "[--gantt] [--diagnose] [--table-csv] [--regs] "
                     "[--degraded] [--freq GHZ] [--threads N] "
                     "[--filter EXPR] [--item N] [--func NAME] "
                     "[--telemetry FILE] [--metrics] [--version]");
  bool profile_mode = false;
  bool folded_mode = false;
  bool gantt_mode = false;
  bool diagnose_mode = false;
  bool table_csv_mode = false;
  bool regs_mode = false;
  bool degraded_mode = false;
  unsigned threads = 1;
  CpuSpec spec;
  cli.flag("--profile", &profile_mode);
  cli.flag("--folded", &folded_mode);
  cli.flag("--gantt", &gantt_mode);
  cli.flag("--diagnose", &diagnose_mode);
  cli.flag("--table-csv", &table_csv_mode);
  cli.flag("--regs", &regs_mode);
  cli.flag("--degraded", &degraded_mode);
  cli.flag_ghz("--freq", &spec.freq_ghz);
  cli.flag_uint("--threads", &threads);
  const char* filter_text = nullptr;
  const char* item_sel = nullptr;
  const char* func_sel = nullptr;
  cli.flag_str("--filter", &filter_text);
  cli.flag_str("--item", &item_sel);
  cli.flag_str("--func", &func_sel);
  tools::Telemetry tel;
  tel.attach(cli);
  if (!cli.parse(2, 2)) return cli.usage();
  tel.start();

  io::TraceData data;
  SymbolTable symtab;
  try {
    // Damaged traces degrade to the salvaged subset instead of aborting
    // the whole report — the same fallback the query engine applies.
    io::TraceReader::ReadResult rr =
        io::open_trace(cli.pos(0)).read_or_salvage(threads);
    data = std::move(rr.data);
    if (rr.salvaged) {
      if (data.samples.empty() && data.markers.empty()) {
        // Nothing salvageable: not a trace at all, not a damaged one.
        std::fprintf(stderr, "error: unrecognized trace file: %s\n",
                     cli.pos(0));
        return 1;
      }
      std::fprintf(stderr,
                   "warning: trace damaged; reporting over the salvaged "
                   "subset (%zu samples)\n",
                   data.samples.size());
    }
    symtab = io::load_symbols(cli.pos(1));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  // --item/--func are sugar for --filter conjuncts; everything composes
  // into one predicate compiled by the query expression parser.
  std::unique_ptr<query::Expr> filter;
  {
    std::string ftxt;
    const auto conj = [&ftxt](const std::string& c) {
      if (!ftxt.empty()) ftxt += " && ";
      ftxt += "(" + c + ")";
    };
    if (item_sel != nullptr) conj(std::string("item == ") + item_sel);
    if (func_sel != nullptr) {
      std::string esc;
      for (const char c : std::string(func_sel)) {
        if (c == '"' || c == '\\') esc += '\\';
        esc += c;
      }
      conj("func == \"" + esc + "\"");
    }
    if (filter_text != nullptr) conj(filter_text);
    if (!ftxt.empty()) {
      if (profile_mode || diagnose_mode) {
        std::fprintf(stderr, "error: --filter/--item/--func do not apply to "
                             "--profile or --diagnose\n");
        return 2;
      }
      try {
        filter = query::parse_expr(ftxt, &symtab);
        if (gantt_mode) {
          filter->bind_check(query::field_bit(query::Field::Item) |
                                 query::field_bit(query::Field::Core),
                             "the gantt filter (have: item core)");
        } else {
          filter->bind_check(query::field_bit(query::Field::Item) |
                                 query::field_bit(query::Field::Func) |
                                 query::field_bit(query::Field::Dur),
                             "the report filter (have: item func dur)");
        }
      } catch (const query::ParseError& e) {
        std::fprintf(stderr, "error: bad filter: %s\n", e.what());
        return 2;
      }
    }
  }

  if (profile_mode) {
    Tsc t_min = ~Tsc{0}, t_max = 0;
    for (const PebsSample& s : data.samples) {
      t_min = std::min(t_min, s.tsc);
      t_max = std::max(t_max, s.tsc);
    }
    const core::Profile prof = core::Profile::from_samples(
        symtab, data.samples, t_max > t_min ? t_max - t_min : 0);
    report::Table tab({"function", "samples", "share", "time [us]"});
    for (const auto& e : prof.entries()) {
      tab.row({std::string(symtab.name(e.fn)), report::Table::num(e.samples),
               report::Table::num(e.share * 100.0, 1) + "%",
               report::Table::num(spec.us(e.est_time))});
    }
    tab.print(std::cout);
    return tel.finish();
  }

  core::IntegratorConfig icfg;
  icfg.use_register_ids = regs_mode;
  icfg.degraded = degraded_mode;
  const core::ParallelIntegrator integ(symtab, icfg, threads);
  const core::TraceTable table = integ.integrate(data.markers, data.samples);

  io::BucketFilter keep;
  if (filter && !gantt_mode) {
    keep = [&filter, &table](ItemId item, SymbolId fn) {
      query::FieldVals vals;
      vals.set(query::Field::Item, static_cast<std::int64_t>(item));
      vals.set(query::Field::Func, static_cast<std::int64_t>(fn));
      vals.set(query::Field::Dur,
               static_cast<std::int64_t>(table.elapsed(item, fn)));
      return filter->test(vals);
    };
  }

  if (folded_mode) {
    io::write_folded(std::cout, table, symtab, 1, keep);
    return tel.finish();
  }

  if (table_csv_mode) {
    io::write_table_csv(std::cout, table, symtab, spec, keep);
    return tel.finish();
  }

  if (diagnose_mode) {
    const core::DiagnosisReport rep = core::diagnose(table, spec);
    rep.print(std::cout, symtab);
    // Wait-edge root causes (ISSUE 8): when the trace carries wait edges,
    // say *why* the slow items were slow in pipeline terms — which ring
    // was full or empty, and which core held the other end.
    if (!data.wait_edges.empty()) {
      query::WaitGraph graph;
      std::uint64_t total_blocked = 0;
      for (const WaitEdge& e : data.wait_edges) {
        graph.observe(e);
        total_blocked += e.blocked();
      }
      const query::QueryResult cp = query::finish_critical_path(graph);
      std::printf("\nwait diagnosis: %zu edges, %llu tsc spent blocked\n",
                  data.wait_edges.size(),
                  static_cast<unsigned long long>(total_blocked));
      const std::size_t shown = std::min<std::size_t>(cp.rows.size(), 8);
      for (std::size_t i = 0; i < shown; ++i) {
        // finish_critical_path columns: item blocked edges cause resource
        // holder (blocked-descending).
        const auto& row = cp.rows[i];
        const std::int64_t item = row[0].i;
        const std::string who = item < 0 ? std::string("(no item)")
                                         : "item " + std::to_string(item);
        const std::string& cause = row[3].s;
        std::string why;
        if (cause == "ring-full") {
          why = "ring " + std::to_string(row[4].i) + " full";
        } else if (cause == "ring-empty") {
          why = "ring " + std::to_string(row[4].i) + " empty";
        } else {
          why = cause + " on resource " + std::to_string(row[4].i);
        }
        std::printf("  %s slow because %s, held by core %lld "
                    "(%lld tsc blocked over %lld edges)\n",
                    who.c_str(), why.c_str(),
                    static_cast<long long>(row[5].i),
                    static_cast<long long>(row[1].i),
                    static_cast<long long>(row[2].i));
      }
      if (cp.rows.size() > shown) {
        std::printf("  ... and %zu more blocked items\n",
                    cp.rows.size() - shown);
      }
    }
    return tel.finish();
  }

  if (gantt_mode) {
    report::Gantt gantt(80);
    const char glyphs[] = "#=@%*o+x";
    for (const core::ItemWindow& w : table.windows()) {
      if (filter) {
        query::FieldVals vals;
        vals.set(query::Field::Item, static_cast<std::int64_t>(w.item));
        vals.set(query::Field::Core, static_cast<std::int64_t>(w.core));
        if (!filter->test(vals)) continue;
      }
      gantt.span("core" + std::to_string(w.core), w.enter, w.leave,
                 glyphs[w.item % 8], "i" + std::to_string(w.item));
    }
    gantt.print(std::cout);
    return tel.finish();
  }

  report::Table tab({"item", "function", "samples", "elapsed [us]",
                     "confidence"});
  for (const ItemId item : table.items()) {
    const core::ItemQuality& q = table.quality(item);
    for (const SymbolId fn : table.functions(item)) {
      if (keep && !keep(item, fn)) continue;
      tab.row({"#" + std::to_string(item), std::string(symtab.name(fn)),
               report::Table::num(table.sample_count(item, fn)),
               report::Table::num(spec.us(table.elapsed(item, fn))),
               std::string(core::to_string(q.confidence))});
    }
  }
  tab.print(std::cout);
  std::printf("\n%llu samples outside any item window, %llu outside any "
              "symbol\n",
              static_cast<unsigned long long>(table.unmatched_item()),
              static_cast<unsigned long long>(table.unmatched_symbol()));
  if (degraded_mode) {
    std::uint64_t lost = table.unattributed_loss();
    for (const ItemId item : table.items()) {
      lost += table.quality(item).samples_lost;
    }
    std::printf("%zu degraded items, %llu samples lost, %llu markers "
                "synthesized, %llu losses unattributed\n",
                table.degraded_items().size(),
                static_cast<unsigned long long>(lost),
                static_cast<unsigned long long>(table.windows_synthesized()),
                static_cast<unsigned long long>(table.unattributed_loss()));
  }
  return tel.finish();
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
