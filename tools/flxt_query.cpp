// flxt_query — ad-hoc queries over a recorded trace (ISSUE 5).
//
//   flxt_query <trace> <symbols> 'filter item == 7 | group func: count'
//   flxt_query <trace> <symbols> --repl         interactive session
//
// The query is a pipeline of stages over the attributed sample columns
// (item, func, core, ts, dur, ip):
//
//   filter <predicate> | select cols | group keys: aggs
//   | outliers k=3 warmup=8 | top N by col | limit N
//
// Flags:
//   --csv / --json   machine-readable output (default: aligned table)
//   --stats          scan statistics (rows, chunks pruned) to stderr
//   --no-index       ignore and do not write the FLXI sidecar
//   --threads N      scan worker threads (0 = all cores; the result is
//                    bit-identical regardless)
//   --regs           attribute items via the sampled R13 register (§V-A)
//                    instead of marker windows
//
// Results are identical with and without the index, and identical for
// any thread count — the sidecar and the pool only change how much work
// the scan does, never what it returns.
#include <cstdio>
#include <iostream>
#include <string>

#include "cli.hpp"
#include "fluxtrace/io/symbols_file.hpp"
#include "fluxtrace/query/engine.hpp"
#include "fluxtrace/query/render.hpp"

using namespace fluxtrace;

namespace {

enum class Shape : std::uint8_t { Table, Csv, Json };

int run_one(query::QueryEngine& engine, const std::string& text, Shape shape,
            bool stats) {
  query::QueryResult res;
  try {
    res = engine.run(text);
  } catch (const query::ParseError& e) {
    std::fprintf(stderr, "error: %s (at offset %zu)\n", e.what(), e.pos());
    return 2;
  }
  switch (shape) {
    case Shape::Table: query::print_table(std::cout, res); break;
    case Shape::Csv: query::print_csv(std::cout, res); break;
    case Shape::Json: query::print_json(std::cout, res); break;
  }
  if (stats) query::print_stats(std::cerr, res.stats);
  return 0;
}

} // namespace

int main(int argc, char** argv) try {
  tools::Cli cli(argc, argv,
                 std::string("usage: ") + argv[0] +
                     " <trace-file> <symbols-file> [QUERY] [--repl] "
                     "[--csv] [--json] [--stats] [--no-index] "
                     "[--threads N] [--regs] [--telemetry FILE] "
                     "[--metrics] [--version]");
  bool repl = false;
  bool csv = false;
  bool json = false;
  bool stats = false;
  bool no_index = false;
  bool regs = false;
  unsigned threads = 0;
  cli.flag("--repl", &repl);
  cli.flag("--csv", &csv);
  cli.flag("--json", &json);
  cli.flag("--stats", &stats);
  cli.flag("--no-index", &no_index);
  cli.flag("--regs", &regs);
  cli.flag_uint("--threads", &threads);
  tools::Telemetry tel;
  tel.attach(cli);
  if (!cli.parse(2, 3)) return cli.usage();
  if (csv && json) {
    std::fprintf(stderr, "error: --csv and --json are exclusive\n");
    return 2;
  }
  if ((cli.n_pos() == 3) == repl) {
    // Exactly one of: a one-shot query, or --repl.
    return cli.usage();
  }
  tel.start();
  const Shape shape = csv ? Shape::Csv : json ? Shape::Json : Shape::Table;

  query::EngineOptions opts;
  opts.threads = threads;
  opts.use_register_ids = regs;
  opts.use_index = !no_index;
  opts.write_index = !no_index;

  SymbolTable symtab;
  std::optional<query::QueryEngine> engine;
  try {
    symtab = io::load_symbols(cli.pos(1));
    engine = query::QueryEngine::open(cli.pos(0), std::move(symtab), opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  if (!repl) {
    const int rc = run_one(*engine, cli.pos(2), shape, stats);
    if (rc != 0) return rc;
    return tel.finish();
  }

  // REPL: one query per line; the engine caches the decoded trace, so
  // follow-up queries only pay the scan. Prompt on stderr so piped
  // sessions produce clean output.
  std::string line;
  for (;;) {
    std::fputs("flxt> ", stderr);
    std::fflush(stderr);
    if (!std::getline(std::cin, line)) break;
    const std::size_t a = line.find_first_not_of(" \t\r");
    if (a == std::string::npos) continue;
    const std::string trimmed = line.substr(a);
    if (trimmed == "quit" || trimmed == "exit" || trimmed == ".quit") break;
    run_one(*engine, trimmed, shape, stats); // errors keep the session alive
  }
  return tel.finish();
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
