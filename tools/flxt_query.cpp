// flxt_query — ad-hoc queries over a recorded trace (ISSUE 5), plus live
// trace following with continuous fluctuation alerting (ISSUE 6).
//
//   flxt_query <trace> <symbols> 'filter item == 7 | group func: count'
//   flxt_query <trace> <symbols> --repl         interactive session
//   flxt_query <trace> <symbols> 'outliers' --follow
//                                               tail a live capture
//   flxt_query <catalog-dir> <symbols> 'group func: count' --catalog
//                                               federate over a hub
//                                               catalog (ISSUE 9): the
//                                               merged answer to stdout,
//                                               the per-trace ok/salvaged
//                                               /quarantined/skipped
//                                               ledger to stderr
//
// The query is a pipeline of stages over the attributed sample columns
// (item, func, core, ts, dur, ip):
//
//   filter <predicate> | select cols | group keys: aggs
//   | outliers k=3 warmup=8 | top N by col | limit N
//
// Flags:
//   --csv / --json   machine-readable output (default: aligned table)
//   --stats          scan statistics (rows, chunks pruned) to stderr
//   --no-index       ignore and do not write the FLXI sidecar
//   --threads N      scan worker threads (0 = all cores; the result is
//                    bit-identical regardless)
//   --regs           attribute items via the sampled R13 register (§V-A)
//                    instead of marker windows
//
// Follow mode (io::TraceFollower + query::StreamingQuery):
//   --follow         tail the trace while a writer is still appending;
//                    each closed marker window prints one line, alerts
//                    from a continuous `outliers` stage print as they
//                    fire, and the final snapshot + chunk ledger print
//                    on exit. Exits 0 on the writer's clean eof, on
//                    producer death (kill -9 degrades into a salvage
//                    pass), and on Ctrl-C; 1 only when the source fails
//                    fatally or the ledger does not reconcile.
//   --poll-ms N      poll interval (default 50)
//   --death-timeout-ms N   producer-death watchdog (default 2000)
//   --pidfile FILE   liveness probe: while `kill(pid, 0)` succeeds for
//                    the pid in FILE, the watchdog never fires
//   --max-polls N    stop after N polls (0 = until eof/death; testing)
//
// SIGINT anywhere (long scan, REPL, --follow) exits cleanly: tables are
// rendered to a buffer and written atomically, and follow mode prints
// the partial-window ledger before exiting — never a half-written table.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include <unistd.h>

#include "cli.hpp"
#include "fluxtrace/hub/catalog.hpp"
#include "fluxtrace/io/follower.hpp"
#include "fluxtrace/io/symbols_file.hpp"
#include "fluxtrace/query/engine.hpp"
#include "fluxtrace/query/federated.hpp"
#include "fluxtrace/query/render.hpp"
#include "fluxtrace/query/stream.hpp"

using namespace fluxtrace;

namespace {

volatile std::sig_atomic_t g_interrupted = 0;

void on_sigint(int) { g_interrupted = 1; }

/// No SA_RESTART: a Ctrl-C must interrupt getline/nanosleep, not be
/// swallowed by a restarted syscall.
void install_sigint() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = on_sigint;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  sigaction(SIGINT, &sa, nullptr);
}

std::uint64_t now_ns() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

void sleep_ms(std::uint64_t ms) {
  struct timespec ts;
  ts.tv_sec = static_cast<time_t>(ms / 1000);
  ts.tv_nsec = static_cast<long>((ms % 1000) * 1'000'000);
  nanosleep(&ts, nullptr); // EINTR on Ctrl-C is exactly what we want
}

enum class Shape : std::uint8_t { Table, Csv, Json };

/// Render to a buffer, then write atomically: an interrupt mid-render
/// discards the buffer instead of leaving a half-written table.
void print_result(const query::QueryResult& res, Shape shape) {
  std::ostringstream buf;
  switch (shape) {
    case Shape::Table: query::print_table(buf, res); break;
    case Shape::Csv: query::print_csv(buf, res); break;
    case Shape::Json: query::print_json(buf, res); break;
  }
  const std::string s = buf.str();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

int run_one(query::QueryEngine& engine, const std::string& text, Shape shape,
            bool stats) {
  query::QueryResult res;
  try {
    res = engine.run(text);
  } catch (const query::ParseError& e) {
    std::fprintf(stderr, "error: %s (at offset %zu)\n", e.what(), e.pos());
    return 2;
  }
  if (g_interrupted) {
    std::fprintf(stderr, "interrupted: result discarded\n");
    return 130;
  }
  print_result(res, shape);
  if (stats) query::print_stats(std::cerr, res.stats);
  return 0;
}

/// Federated mode (--catalog): evaluate one pipeline over every live
/// trace a hub catalog knows about, as if over their concatenation. The
/// per-trace ledger goes to stderr; the merged table to stdout.
int run_catalog(const std::string& dir, const SymbolTable& symtab,
                const std::string& text, Shape shape, bool stats,
                unsigned threads, bool regs, bool no_index) {
  hub::Catalog cat = [&] {
    try {
      return hub::Catalog::open(dir, symtab);
    } catch (const hub::ManifestError& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      std::exit(1);
    }
  }();

  query::FederatedOptions fopts;
  fopts.engine.threads = threads;
  fopts.engine.use_register_ids = regs;
  fopts.engine.use_index = !no_index;
  fopts.engine.write_index = false; // sidecars are the hub's to refresh
  fopts.fanout_threads = threads;

  query::FederatedResult fr;
  try {
    fr = query::run_federated(cat.query_members(), symtab, text, fopts);
  } catch (const query::ParseError& e) {
    std::fprintf(stderr, "error: %s (at offset %zu)\n", e.what(), e.pos());
    return 2;
  }
  if (g_interrupted) {
    std::fprintf(stderr, "interrupted: result discarded\n");
    return 130;
  }
  print_result(fr.result, shape);
  std::fprintf(stderr, "%s\n", fr.ledger.summary().c_str());
  if (stats) {
    for (const query::TraceLedgerEntry& e : fr.ledger.traces) {
      std::fprintf(stderr, "  %-11s %s%s%s\n",
                   std::string(to_string(e.state)).c_str(), e.path.c_str(),
                   e.detail.empty() ? "" : ": ", e.detail.c_str());
    }
    query::print_stats(std::cerr, fr.result.stats);
  }
  return 0;
}

/// Liveness probe from a pidfile: true while the pid exists.
bool pidfile_alive(const std::string& path) {
  std::ifstream is(path);
  long pid = 0;
  if (!(is >> pid) || pid <= 0) return false;
  return ::kill(static_cast<pid_t>(pid), 0) == 0;
}

void print_ledger(const io::TraceFollower& follower,
                  const query::StreamingQuery& sq) {
  const auto& fs = follower.stats();
  const auto& ss = sq.stats();
  std::fprintf(stderr,
               "follow: finish=%s polls=%llu eof=%s header=%s\n",
               to_string(follower.finish_reason()),
               static_cast<unsigned long long>(fs.polls),
               fs.eof_seen ? "yes" : "no", fs.header_seen ? "yes" : "no");
  std::fprintf(stderr,
               "ledger: observed=%llu = consumed=%llu + salvaged=%llu + "
               "torn=%llu (%s)\n",
               static_cast<unsigned long long>(fs.chunks_observed),
               static_cast<unsigned long long>(fs.chunks_consumed),
               static_cast<unsigned long long>(fs.chunks_salvaged),
               static_cast<unsigned long long>(fs.chunks_torn),
               fs.reconciled() ? "exact" : "MISMATCH");
  std::fprintf(stderr,
               "bytes: consumed=%llu torn=%llu skipped=%llu "
               "transients=%llu short-reads=%llu resyncs=%llu\n",
               static_cast<unsigned long long>(fs.bytes_consumed),
               static_cast<unsigned long long>(fs.bytes_torn),
               static_cast<unsigned long long>(fs.bytes_skipped),
               static_cast<unsigned long long>(fs.read_transients),
               static_cast<unsigned long long>(fs.short_reads),
               static_cast<unsigned long long>(fs.resyncs));
  std::fprintf(stderr,
               "stream: windows=%llu rows-matched=%llu alerts=%llu "
               "unattributed=%llu wait-edges=%llu\n",
               static_cast<unsigned long long>(ss.windows_closed),
               static_cast<unsigned long long>(ss.rows_matched),
               static_cast<unsigned long long>(ss.alerts),
               static_cast<unsigned long long>(ss.rows_unattributed),
               static_cast<unsigned long long>(ss.wait_edges));
}

void print_windows(const std::vector<query::WindowResult>& windows,
                   const SymbolTable& symtab) {
  for (const query::WindowResult& w : windows) {
    std::printf("window item=%llu core=%u enter=%llu leave=%llu rows=%llu "
                "matched=%llu\n",
                static_cast<unsigned long long>(w.item), w.core,
                static_cast<unsigned long long>(w.enter),
                static_cast<unsigned long long>(w.leave),
                static_cast<unsigned long long>(w.rows),
                static_cast<unsigned long long>(w.rows_matched));
    for (const query::StreamAlert& a : w.alerts) {
      const std::string fn =
          a.func < symtab.size()
              ? std::string(symtab.name(static_cast<SymbolId>(a.func)))
              : std::to_string(a.func);
      std::printf("ALERT item=%llu func=%s elapsed=%llu mean=%.6g "
                  "sigma=%.6g sigmas=%.2f\n",
                  static_cast<unsigned long long>(a.item), fn.c_str(),
                  static_cast<unsigned long long>(a.elapsed), a.mean,
                  a.sigma, a.sigmas);
    }
  }
  if (!windows.empty()) std::fflush(stdout);
}

int run_follow(const std::string& trace_path, SymbolTable symtab,
               const std::string& text, Shape shape, std::uint64_t poll_ms,
               std::uint64_t death_timeout_ms, const char* pidfile,
               std::size_t max_polls) {
  query::Query q;
  try {
    q = query::parse_query(text, &symtab);
  } catch (const query::ParseError& e) {
    std::fprintf(stderr, "error: %s (at offset %zu)\n", e.what(), e.pos());
    return 2;
  }

  io::TraceFollowerConfig fcfg;
  fcfg.liveness_timeout_ns = death_timeout_ms * 1'000'000ull;
  if (pidfile != nullptr) {
    const std::string pf = pidfile;
    fcfg.producer_alive = [pf]() { return pidfile_alive(pf); };
  }
  io::TraceFollower follower = io::TraceFollower::open(trace_path, fcfg);
  // A poll can end between a window's sample chunks and its marker
  // chunk; keep samples pending long enough (in trace time) for the
  // markers to arrive in a later poll instead of aging them out.
  query::StreamOptions sopts;
  sopts.attribution_slack = 50'000'000;
  query::StreamingQuery sq(std::move(q), symtab, sopts);

  std::size_t polls = 0;
  while (!follower.finished()) {
    if (g_interrupted) {
      auto fin = follower.stop(now_ns());
      print_windows(sq.ingest(fin.data), sq.symtab());
      break;
    }
    auto pr = follower.poll(now_ns());
    ++polls;
    if (!pr.data.markers.empty() || !pr.data.samples.empty()) {
      print_windows(sq.ingest(pr.data), sq.symtab());
    }
    if (pr.finished) break;
    if (max_polls > 0 && polls >= max_polls) {
      auto fin = follower.stop(now_ns());
      print_windows(sq.ingest(fin.data), sq.symtab());
      break;
    }
    sleep_ms(poll_ms);
  }

  // Close every still-open window and print the final snapshot + ledger.
  print_windows(sq.flush(), sq.symtab());
  print_result(sq.snapshot(), shape);
  print_ledger(follower, sq);

  if (follower.finish_reason() == io::FollowFinish::SourceFatal) return 1;
  if (!follower.stats().reconciled()) return 1;
  return 0;
}

} // namespace

int main(int argc, char** argv) try {
  tools::Cli cli(argc, argv,
                 std::string("usage: ") + argv[0] +
                     " <trace-file> <symbols-file> [QUERY] [--repl] "
                     "[--follow] [--poll-ms N] [--death-timeout-ms N] "
                     "[--pidfile FILE] [--max-polls N] "
                     "[--catalog] "
                     "[--csv] [--json] [--stats] [--no-index] "
                     "[--threads N] [--regs] [--telemetry FILE] "
                     "[--metrics] [--version]");
  bool repl = false;
  bool follow = false;
  bool catalog = false;
  bool csv = false;
  bool json = false;
  bool stats = false;
  bool no_index = false;
  bool regs = false;
  unsigned threads = 0;
  std::size_t poll_ms = 50;
  std::size_t death_timeout_ms = 2000;
  std::size_t max_polls = 0;
  const char* pidfile = nullptr;
  cli.flag("--repl", &repl);
  cli.flag("--follow", &follow);
  cli.flag("--catalog", &catalog);
  cli.flag("--csv", &csv);
  cli.flag("--json", &json);
  cli.flag("--stats", &stats);
  cli.flag("--no-index", &no_index);
  cli.flag("--regs", &regs);
  cli.flag_uint("--threads", &threads);
  cli.flag_count_pos("--poll-ms", &poll_ms);
  cli.flag_count_pos("--death-timeout-ms", &death_timeout_ms);
  cli.flag_count("--max-polls", &max_polls);
  cli.flag_str("--pidfile", &pidfile);
  tools::Telemetry tel;
  tel.attach(cli);
  if (!cli.parse(2, 3)) return cli.usage();
  if (csv && json) {
    std::fprintf(stderr, "error: --csv and --json are exclusive\n");
    return 2;
  }
  if (repl && follow) {
    std::fprintf(stderr, "error: --repl and --follow are exclusive\n");
    return 2;
  }
  if (catalog && (repl || follow)) {
    std::fprintf(stderr,
                 "error: --catalog is one-shot (no --repl / --follow)\n");
    return 2;
  }
  if ((cli.n_pos() == 3) == repl) {
    // Exactly one of: a query (one-shot or --follow), or --repl.
    return cli.usage();
  }
  install_sigint();
  tel.start();
  const Shape shape = csv ? Shape::Csv : json ? Shape::Json : Shape::Table;

  SymbolTable symtab;
  try {
    symtab = io::load_symbols(cli.pos(1));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  if (catalog) {
    const int rc = run_catalog(cli.pos(0), symtab, cli.pos(2), shape, stats,
                               threads, regs, no_index);
    const int trc = tel.finish();
    return rc != 0 ? rc : trc;
  }

  if (follow) {
    const int rc =
        run_follow(cli.pos(0), std::move(symtab), cli.pos(2), shape, poll_ms,
                   death_timeout_ms, pidfile, max_polls);
    const int trc = tel.finish();
    return rc != 0 ? rc : trc;
  }

  query::EngineOptions opts;
  opts.threads = threads;
  opts.use_register_ids = regs;
  opts.use_index = !no_index;
  opts.write_index = !no_index;

  std::optional<query::QueryEngine> engine;
  try {
    engine = query::QueryEngine::open(cli.pos(0), std::move(symtab), opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  if (!repl) {
    const int rc = run_one(*engine, cli.pos(2), shape, stats);
    if (rc != 0) return rc;
    return tel.finish();
  }

  // REPL: one query per line; the engine caches the decoded trace, so
  // follow-up queries only pay the scan. Prompt on stderr so piped
  // sessions produce clean output.
  std::string line;
  for (;;) {
    if (g_interrupted) {
      std::fputs("\ninterrupted\n", stderr);
      break;
    }
    std::fputs("flxt> ", stderr);
    std::fflush(stderr);
    if (!std::getline(std::cin, line)) {
      if (g_interrupted) {
        std::fputs("\ninterrupted\n", stderr);
      }
      break;
    }
    const std::size_t a = line.find_first_not_of(" \t\r");
    if (a == std::string::npos) continue;
    const std::string trimmed = line.substr(a);
    if (trimmed == "quit" || trimmed == "exit" || trimmed == ".quit") break;
    run_one(*engine, trimmed, shape, stats); // errors keep the session alive
  }
  return tel.finish();
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
