// flxt_convert — convert between the fluxtrace trace containers,
// printing the size ratio. Input format is autodetected (FLXT v1, FLXT
// v2 chunked, FLXZ compact); the output format is chosen by flag. The
// compact format keeps everything the analyses read (timestamps, ips,
// cores, R13) at a fraction of the bytes — the practical answer to
// §IV-C3's data-volume concern when raw streams must be retained.
//
//   flxt_convert <in> <out> --to-compact        any input -> FLXZ
//   flxt_convert <in> <out> --to-full           any input -> FLXT v1
//   flxt_convert <in> <out> --to-v2             any input -> FLXT v2
//   flxt_convert <in> <out> --to-v3             any input -> FLXT v3
//                                               (compressed columnar
//                                               chunks, docs/format.md)
//   flxt_convert <in> <out> --to-v2 --chunk-records N
//                                               v2/v3 with N records per
//                                               chunk (smaller chunks =
//                                               finer flxt_query pruning)
//   flxt_convert <in> <out> --to-full --salvage damaged input: convert
//                                               whatever is recoverable
#include <cstdio>
#include <fstream>
#include <string>

#include "cli.hpp"
#include "fluxtrace/io/chunked.hpp"
#include "fluxtrace/io/compact.hpp"
#include "fluxtrace/io/v3.hpp"
#include "fluxtrace/io/trace_reader.hpp"

using namespace fluxtrace;

namespace {

std::uint64_t file_size(const char* path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  return f ? static_cast<std::uint64_t>(f.tellg()) : 0;
}

} // namespace

int main(int argc, char** argv) try {
  tools::Cli cli(argc, argv,
                 std::string("usage: ") + argv[0] +
                     " <in> <out> --to-compact|--to-full|--to-v2|--to-v3 "
                     "[--chunk-records N] [--salvage] [--telemetry FILE] "
                     "[--metrics] [--version]");
  bool to_compact = false;
  bool to_full = false;
  bool to_v2 = false;
  bool to_v3 = false;
  bool salvage = false;
  unsigned chunk_records = 0;
  cli.flag("--to-compact", &to_compact);
  cli.flag("--to-full", &to_full);
  cli.flag("--to-v2", &to_v2);
  cli.flag("--to-v3", &to_v3);
  cli.flag("--salvage", &salvage);
  cli.flag_uint("--chunk-records", &chunk_records);
  tools::Telemetry tel;
  tel.attach(cli);
  if (!cli.parse(2, 2)) return cli.usage();
  if (static_cast<int>(to_compact) + static_cast<int>(to_full) +
          static_cast<int>(to_v2) + static_cast<int>(to_v3) !=
      1) {
    return cli.usage();
  }
  tel.start();
  const char* in = cli.pos(0);
  const char* out = cli.pos(1);

  try {
    const io::TraceReader reader = io::open_trace(in);
    io::TraceData data;
    if (salvage) {
      io::SalvageReport rep = reader.salvage();
      std::printf("salvage: %zu chunks ok, %zu corrupt, %zu resynced, "
                  "%llu bytes skipped, %llu bytes truncated%s\n",
                  rep.chunks_ok, rep.chunks_corrupt, rep.chunks_resynced,
                  static_cast<unsigned long long>(rep.bytes_skipped),
                  static_cast<unsigned long long>(rep.bytes_truncated),
                  rep.clean() ? " (file was clean)" : "");
      data = std::move(rep.data);
    } else {
      data = reader.read();
    }
    if (to_compact) {
      io::save_compact(out, data);
    } else if (to_v2) {
      io::save_trace_v2(out, data,
                        chunk_records > 0 ? chunk_records
                                          : io::kDefaultChunkRecords);
    } else if (to_v3) {
      io::save_trace_v3(out, data,
                        chunk_records > 0 ? chunk_records
                                          : io::kDefaultChunkRecordsV3);
    } else {
      io::save_trace(out, data);
    }
    const std::uint64_t in_sz = file_size(in);
    const std::uint64_t out_sz = file_size(out);
    std::printf("%s (%llu bytes) -> %s (%llu bytes), ratio %.2fx\n", in,
                static_cast<unsigned long long>(in_sz), out,
                static_cast<unsigned long long>(out_sz),
                out_sz > 0 ? static_cast<double>(in_sz) /
                                 static_cast<double>(out_sz)
                           : 0.0);
    std::printf("%zu markers, %zu samples\n", data.markers.size(),
                data.samples.size());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return tel.finish();
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
