// flxt_convert — convert between the full ("FLXT") and compact ("FLXZ")
// trace containers, printing the size ratio. The compact format keeps
// everything the analyses read (timestamps, ips, cores, R13) at a
// fraction of the bytes — the practical answer to §IV-C3's data-volume
// concern when raw streams must be retained.
//
//   flxt_convert <in> <out> --to-compact
//   flxt_convert <in> <out> --to-full
#include <cstdio>
#include <cstring>
#include <fstream>

#include "fluxtrace/io/compact.hpp"
#include "fluxtrace/io/trace_file.hpp"

using namespace fluxtrace;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s <in> <out> --to-compact|--to-full\n",
               argv0);
  return 2;
}

std::uint64_t file_size(const char* path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  return f ? static_cast<std::uint64_t>(f.tellg()) : 0;
}

} // namespace

int main(int argc, char** argv) {
  if (argc != 4) return usage(argv[0]);
  const bool to_compact = std::strcmp(argv[3], "--to-compact") == 0;
  const bool to_full = std::strcmp(argv[3], "--to-full") == 0;
  if (!to_compact && !to_full) return usage(argv[0]);

  try {
    io::TraceData data;
    if (to_compact) {
      data = io::load_trace(argv[1]);
      io::save_compact(argv[2], data);
    } else {
      data = io::load_compact(argv[1]);
      io::save_trace(argv[2], data);
    }
    const std::uint64_t in_sz = file_size(argv[1]);
    const std::uint64_t out_sz = file_size(argv[2]);
    std::printf("%s (%llu bytes) -> %s (%llu bytes), ratio %.2fx\n", argv[1],
                static_cast<unsigned long long>(in_sz), argv[2],
                static_cast<unsigned long long>(out_sz),
                out_sz > 0 ? static_cast<double>(in_sz) /
                                 static_cast<double>(out_sz)
                           : 0.0);
    std::printf("%zu markers, %zu samples\n", data.markers.size(),
                data.samples.size());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
