// flxt_recover — salvage a damaged trace (a crash mid-dump, a bit-rotted
// sector). Chunked input (FLXT v2 raw or v3 compressed — one chunk
// family) recovers every chunk whose header, payload, and per-column
// CRCs check out — even when the file header itself is destroyed — and
// rewrites them as a clean v2 file; damage is reported, never silently
// returned as data, and a damaged compressed column costs only its own
// chunk. Monolithic formats (v1, FLXZ) recover all-or-nothing.
//
//   flxt_recover <damaged> [<out>]     report only, or also write <out>
//   flxt_recover <trace> <symbols> --rebuild-index [--regs]
//                                      rebuild the FLXI sidecar (the same
//                                      refresh path hub ingest runs)
//
// Exit status: 0 when at least one chunk was recovered (or the sidecar
// was refreshed), 1 when nothing was recoverable / the trace is not
// indexable (or on error), 2 on bad usage.
#include <cstdio>
#include <iostream>
#include <string>

#include "cli.hpp"
#include "fluxtrace/io/symbols_file.hpp"
#include "fluxtrace/io/trace_reader.hpp"
#include "fluxtrace/query/flxi.hpp"

using namespace fluxtrace;

int main(int argc, char** argv) try {
  tools::Cli cli(argc, argv,
                 std::string("usage: ") + argv[0] +
                     " <damaged-trace> [<recovered-out>] "
                     "| <trace> <symbols> --rebuild-index [--regs] "
                     "[--telemetry FILE] [--metrics] [--version]");
  bool rebuild_index = false;
  bool regs = false;
  cli.flag("--rebuild-index", &rebuild_index);
  cli.flag("--regs", &regs);
  tools::Telemetry tel;
  tel.attach(cli);
  if (!cli.parse(1, 2)) return cli.usage();
  tel.start();
  const char* path = cli.pos(0);

  if (rebuild_index) {
    if (cli.n_pos() != 2) return cli.usage();
    SymbolTable symtab;
    try {
      symtab = io::load_symbols(cli.pos(1));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    query::SidecarStatus status;
    try {
      status = query::refresh_sidecar(path, symtab, regs);
    } catch (const io::TraceIoError& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    std::printf("%s: %s\n", query::flxi_path(path).c_str(),
                query::to_string(status));
    const bool ok = status == query::SidecarStatus::Fresh ||
                    status == query::SidecarStatus::Rebuilt;
    if (!ok) return 1;
    return tel.finish();
  }

  io::SalvageReport rep;
  try {
    rep = io::open_trace(path).salvage();
  } catch (const io::TraceIoError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  std::printf("%s: %s header; %zu chunks ok, %zu corrupt, %zu resynced, "
              "%llu bytes skipped, %llu bytes truncated\n",
              path, rep.header_ok ? "intact" : "damaged", rep.chunks_ok,
              rep.chunks_corrupt, rep.chunks_resynced,
              static_cast<unsigned long long>(rep.bytes_skipped),
              static_cast<unsigned long long>(rep.bytes_truncated));
  std::printf("recovered %zu markers, %zu samples, %zu wait edges%s\n",
              rep.data.markers.size(), rep.data.samples.size(),
              rep.data.wait_edges.size(),
              rep.clean() ? " (file was already clean)" : "");

  if (rep.chunks_ok == 0 && rep.data.markers.empty() &&
      rep.data.samples.empty()) {
    std::fprintf(stderr, "nothing recoverable\n");
    return 1;
  }

  if (cli.n_pos() == 2) {
    try {
      io::save_trace_v2(cli.pos(1), rep.data);
    } catch (const io::TraceIoError& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    std::printf("wrote %s\n", cli.pos(1));
  }
  return tel.finish();
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
