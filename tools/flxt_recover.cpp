// flxt_recover — salvage a damaged FLXT v2 trace (a crash mid-dump, a
// bit-rotted sector). Recovers every chunk whose header and payload CRCs
// check out and rewrites them as a clean v2 file; damage is reported,
// never silently returned as data.
//
//   flxt_recover <damaged> [<out>]     report only, or also write <out>
//
// Exit status: 0 when at least one chunk was recovered, 1 when nothing
// was recoverable (or on error), 2 on bad usage.
#include <cstdio>
#include <cstring>
#include <iostream>

#include "fluxtrace/io/chunked.hpp"

using namespace fluxtrace;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s <damaged-trace> [<recovered-out>]\n",
               argv0);
  return 2;
}

} // namespace

int main(int argc, char** argv) try {
  if (argc < 2 || argc > 3) return usage(argv[0]);

  io::SalvageReport rep;
  try {
    rep = io::salvage_trace_file(argv[1]);
  } catch (const io::TraceIoError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  std::printf("%s: %s header; %zu chunks ok, %zu corrupt, %zu resynced, "
              "%llu bytes skipped, %llu bytes truncated\n",
              argv[1], rep.header_ok ? "intact" : "damaged", rep.chunks_ok,
              rep.chunks_corrupt, rep.chunks_resynced,
              static_cast<unsigned long long>(rep.bytes_skipped),
              static_cast<unsigned long long>(rep.bytes_truncated));
  std::printf("recovered %zu markers, %zu samples%s\n",
              rep.data.markers.size(), rep.data.samples.size(),
              rep.clean() ? " (file was already clean)" : "");

  if (rep.chunks_ok == 0 && rep.data.markers.empty() &&
      rep.data.samples.empty()) {
    std::fprintf(stderr, "nothing recoverable\n");
    return 1;
  }

  if (argc == 3) {
    try {
      io::save_trace_v2(argv[2], rep.data);
    } catch (const io::TraceIoError& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    std::printf("wrote %s\n", argv[2]);
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
