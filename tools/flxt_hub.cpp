// flxt_hub — administer a fleet-scale trace catalog (ISSUE 9).
//
//   flxt_hub status  <catalog-dir> <symbols>   replay + per-state counts
//   flxt_hub ingest  <catalog-dir> <symbols>   scan tree, triage, register
//   flxt_hub retain  <catalog-dir> <symbols> --retain-age-ms N --retain-bytes B
//   flxt_hub compact <catalog-dir> <symbols> --compact-under B
//   flxt_hub verify  <catalog-dir> <symbols>   audit manifest against disk
//
// Flags:
//   --threads N          ingest shards (0 = all cores)
//   --regs               FLXI sidecars attribute via R13 (§V-A)
//   --retain-age-ms N    expire traces ingested more than N ms ago
//   --retain-bytes B     expire oldest until live bytes <= B (512M, 4G…)
//   --compact-under B    merge clean traces smaller than B into a segment
//
// Chaos flags (the kill-9 / ENOSPC sweep in CI):
//   --crash-after N      _Exit(137) at the Nth durability checkpoint
//   --read-transient N   inject N transient read faults during ingest
//   --seed S             offset where the injected read faults land
//   --enospc-bytes B     manifest writes fail after B journal bytes
//
// Exit status: 0 on success (ingest reports failures in its summary but
// still exits 0 — a fleet ingest is incremental by design), 1 when
// verify finds problems or the catalog cannot be opened, 2 on bad usage.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cli.hpp"
#include "fluxtrace/hub/catalog.hpp"
#include "fluxtrace/io/symbols_file.hpp"

using namespace fluxtrace;

namespace {

void print_errors(const std::vector<std::string>& errors) {
  for (const std::string& e : errors) std::fprintf(stderr, "  %s\n", e.c_str());
}

int cmd_status(hub::Catalog& cat) {
  const hub::OpenReport& orep = cat.open_report();
  std::size_t ok = 0, salvaged = 0, quarantined = 0, expired = 0;
  for (const auto& [path, e] : cat.manifest().entries()) {
    switch (e.state) {
      case hub::TraceState::Ok: ++ok; break;
      case hub::TraceState::Salvaged: ++salvaged; break;
      case hub::TraceState::Quarantined: ++quarantined; break;
      case hub::TraceState::Expired: ++expired; break;
    }
  }
  std::printf("catalog %s: %zu ok, %zu salvaged, %zu quarantined, "
              "%zu expired\n",
              cat.dir().c_str(), ok, salvaged, quarantined, expired);
  std::printf("journal: %zu records, %zu replayed%s%s%s\n",
              cat.manifest().journal_records(),
              orep.replay.records_applied,
              orep.replay.truncated ? ", tail repaired" : "",
              orep.replay.recreated ? ", header recreated" : "",
              orep.rolled_back_compaction ? ", compaction rolled back" : "");
  if (orep.swept_files > 0) {
    std::printf("swept %zu expired leftover file(s)\n", orep.swept_files);
  }
  for (const auto& [path, e] : cat.manifest().entries()) {
    const std::string detail = e.detail.empty() ? "" : ", " + e.detail;
    std::printf("  %-12s %s (%llu bytes, %llu rows%s%s)\n",
                hub::to_string(e.state), path.c_str(),
                static_cast<unsigned long long>(e.size_bytes),
                static_cast<unsigned long long>(e.rows),
                e.sidecar ? ", indexed" : "", detail.c_str());
  }
  return 0;
}

int cmd_ingest(hub::Catalog& cat) {
  const hub::IngestReport rep = cat.ingest();
  std::printf("ingest: %zu scanned, %zu registered, %zu salvaged, "
              "%zu quarantined, %zu unchanged, %zu failed\n",
              rep.scanned, rep.registered, rep.salvaged, rep.quarantined,
              rep.unchanged, rep.failed);
  const hub::CatalogStats& st = cat.stats();
  if (st.retries + st.breaker_opens + st.breaker_rejects > 0) {
    std::printf("resilience: %llu retries, %llu breaker opens, "
                "%llu rejects\n",
                static_cast<unsigned long long>(st.retries),
                static_cast<unsigned long long>(st.breaker_opens),
                static_cast<unsigned long long>(st.breaker_rejects));
  }
  print_errors(rep.errors);
  return 0;
}

int cmd_retain(hub::Catalog& cat, std::uint64_t age_ms,
               std::uint64_t bytes) {
  const hub::RetainReport rep =
      cat.retain(age_ms * 1'000'000ull, bytes);
  std::printf("retain: %zu expired, %llu bytes reclaimed\n", rep.expired,
              static_cast<unsigned long long>(rep.bytes_reclaimed));
  print_errors(rep.errors);
  return 0;
}

int cmd_compact(hub::Catalog& cat, std::uint64_t under_bytes) {
  const hub::CompactReport rep = cat.compact(under_bytes);
  if (rep.segments_written > 0) {
    std::printf("compact: merged %zu traces into %s\n", rep.members_merged,
                rep.segment_path.c_str());
  } else {
    std::printf("compact: nothing to merge\n");
  }
  print_errors(rep.errors);
  return rep.errors.empty() ? 0 : 1;
}

int cmd_verify(hub::Catalog& cat) {
  const hub::VerifyReport rep = cat.verify();
  std::printf("verify: %zu checked, %zu missing, %zu drifted, "
              "%zu stale sidecars\n",
              rep.checked, rep.missing, rep.drifted, rep.sidecars_stale);
  print_errors(rep.problems);
  return rep.clean() ? 0 : 1;
}

} // namespace

int main(int argc, char** argv) try {
  tools::Cli cli(argc, argv,
                 std::string("usage: ") + argv[0] +
                     " <status|ingest|retain|compact|verify>"
                     " <catalog-dir> <symbols-file>"
                     " [--threads N] [--regs]"
                     " [--retain-age-ms N] [--retain-bytes B]"
                     " [--compact-under B]"
                     " [--crash-after N] [--read-transient N] [--seed S]"
                     " [--enospc-bytes B] [--telemetry FILE] [--metrics]"
                     " [--version]");
  unsigned threads = 0;
  bool regs = false;
  std::size_t retain_age_ms = 0;
  std::uint64_t retain_bytes = 0;
  std::uint64_t compact_under = 1u << 20;
  std::size_t crash_after = 0;
  std::size_t read_transient = 0;
  std::size_t seed = 0;
  std::uint64_t enospc_bytes = 0;
  cli.flag_uint("--threads", &threads);
  cli.flag("--regs", &regs);
  cli.flag_count("--retain-age-ms", &retain_age_ms);
  cli.flag_bytes("--retain-bytes", &retain_bytes);
  cli.flag_bytes("--compact-under", &compact_under);
  cli.flag_count("--crash-after", &crash_after);
  cli.flag_count("--read-transient", &read_transient);
  cli.flag_count("--seed", &seed);
  cli.flag_bytes("--enospc-bytes", &enospc_bytes);
  tools::Telemetry tel;
  tel.attach(cli);
  if (!cli.parse(3, 3)) return cli.usage();
  const std::string cmd = cli.pos(0);
  if (cmd != "status" && cmd != "ingest" && cmd != "retain" &&
      cmd != "compact" && cmd != "verify") {
    std::fprintf(stderr, "error: unknown command '%s'\n", cmd.c_str());
    return cli.usage();
  }
  tel.start();

  SymbolTable symtab;
  try {
    symtab = io::load_symbols(cli.pos(2));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  hub::CatalogOptions opts;
  opts.threads = threads;
  opts.use_register_ids = regs;

  // Chaos seams. All counters are process-global and deterministic:
  // the sweep re-runs the same command line with --crash-after 1..N and
  // replays the journal after each kill.
  static std::atomic<std::size_t> checkpoints{0};
  static std::atomic<std::size_t> read_attempts{0};
  static std::atomic<std::uint64_t> journal_bytes{0};
  if (crash_after > 0) {
    const std::size_t at = crash_after;
    opts.checkpoint = [at](const char*) {
      if (checkpoints.fetch_add(1) + 1 >= at) {
        std::fflush(stdout);
        std::_Exit(137);
      }
    };
  }
  if (read_transient > 0) {
    const std::size_t lo = seed;
    const std::size_t hi = seed + read_transient;
    opts.read_fault = [lo, hi](const std::string&) {
      const std::size_t i = read_attempts.fetch_add(1);
      return i >= lo && i < hi;
    };
  }
  if (enospc_bytes > 0) {
    const std::uint64_t budget = enospc_bytes;
    opts.manifest_fault = [budget](std::size_t bytes) {
      return journal_bytes.fetch_add(bytes) + bytes > budget;
    };
  }

  hub::Catalog cat = [&] {
    try {
      return hub::Catalog::open(cli.pos(1), symtab, std::move(opts));
    } catch (const hub::ManifestError& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      std::exit(1);
    }
  }();

  int rc = 0;
  if (cmd == "status") rc = cmd_status(cat);
  else if (cmd == "ingest") rc = cmd_ingest(cat);
  else if (cmd == "retain") rc = cmd_retain(cat, retain_age_ms, retain_bytes);
  else if (cmd == "compact") rc = cmd_compact(cat, compact_under);
  else rc = cmd_verify(cat);

  const int trc = tel.finish();
  return rc != 0 ? rc : trc;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
