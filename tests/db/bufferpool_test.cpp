#include "fluxtrace/db/bufferpool.hpp"

#include <gtest/gtest.h>

namespace fluxtrace::db {
namespace {

TEST(BufferPool, MissThenHit) {
  BufferPool p(4);
  EXPECT_FALSE(p.fetch(1).hit);
  EXPECT_TRUE(p.fetch(1).hit);
  EXPECT_EQ(p.misses(), 1u);
  EXPECT_EQ(p.hits(), 1u);
}

TEST(BufferPool, LruEviction) {
  BufferPool p(2);
  p.fetch(1);
  p.fetch(2);
  p.fetch(3); // evicts 1
  EXPECT_FALSE(p.contains(1));
  EXPECT_TRUE(p.contains(2));
  EXPECT_TRUE(p.contains(3));
  EXPECT_EQ(p.size(), 2u);
}

TEST(BufferPool, TouchUpdatesRecency) {
  BufferPool p(2);
  p.fetch(1);
  p.fetch(2);
  p.fetch(1); // 1 becomes MRU
  p.fetch(3); // evicts 2
  EXPECT_TRUE(p.contains(1));
  EXPECT_FALSE(p.contains(2));
}

TEST(BufferPool, DirtyEvictionCostsWriteback) {
  BufferPool p(1);
  p.fetch(1, /*mark_dirty=*/true);
  const auto r = p.fetch(2);
  EXPECT_TRUE(r.evicted_dirty);
  EXPECT_EQ(p.writebacks(), 1u);
}

TEST(BufferPool, CleanEvictionIsFree) {
  BufferPool p(1);
  p.fetch(1);
  const auto r = p.fetch(2);
  EXPECT_FALSE(r.evicted_dirty);
  EXPECT_EQ(p.writebacks(), 0u);
}

TEST(BufferPool, DirtyBitSticksAcrossTouches) {
  BufferPool p(2);
  p.fetch(1, true);
  p.fetch(1, false); // a later clean touch must not launder the dirt
  EXPECT_TRUE(p.dirty(1));
}

TEST(BufferPool, FlushAllCleansEverything) {
  BufferPool p(4);
  p.fetch(1, true);
  p.fetch(2, true);
  p.fetch(3, false);
  EXPECT_EQ(p.flush_all(), 2u);
  EXPECT_FALSE(p.dirty(1));
  EXPECT_FALSE(p.dirty(2));
  // A subsequent eviction of a flushed page is clean.
  p.fetch(4);
  p.fetch(5); // evicts LRU (1)
  EXPECT_EQ(p.writebacks(), 2u) << "only the flush wrote";
}

TEST(BufferPool, ScanThrashingEvictsHotPage) {
  // The DB fluctuation mechanism in miniature: a hot page stays resident
  // under point lookups, then one large scan flushes it out.
  BufferPool p(8);
  p.fetch(100); // the hot page
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(p.fetch(100).hit);
  for (std::uint64_t scan_page = 0; scan_page < 8; ++scan_page) {
    p.fetch(200 + scan_page);
  }
  EXPECT_FALSE(p.contains(100)) << "scan evicted the hot page";
  EXPECT_FALSE(p.fetch(100).hit) << "identical lookup now misses";
}

} // namespace
} // namespace fluxtrace::db
