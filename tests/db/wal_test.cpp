#include "fluxtrace/db/wal.hpp"

#include <gtest/gtest.h>

namespace fluxtrace::db {
namespace {

TEST(Wal, BuffersUntilGroupSize) {
  Wal w(4);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(w.append().flushed);
  }
  EXPECT_EQ(w.pending(), 3u);
  const auto r = w.append(); // 4th record fills the group
  EXPECT_TRUE(r.flushed);
  EXPECT_EQ(r.records_flushed, 4u);
  EXPECT_EQ(w.pending(), 0u);
  EXPECT_EQ(w.flushes(), 1u);
}

TEST(Wal, ExactlyOneAppendPerGroupPaysTheFlush) {
  Wal w(16);
  int flushed = 0;
  for (int i = 0; i < 160; ++i) {
    if (w.append().flushed) ++flushed;
  }
  EXPECT_EQ(flushed, 10);
  EXPECT_EQ(w.records(), 160u);
}

TEST(Wal, ForceFlushDrainsPending) {
  Wal w(100);
  w.append();
  w.append();
  EXPECT_EQ(w.force_flush(), 2u);
  EXPECT_EQ(w.pending(), 0u);
  EXPECT_EQ(w.flushes(), 1u);
  EXPECT_EQ(w.force_flush(), 0u) << "empty flush is a no-op";
  EXPECT_EQ(w.flushes(), 1u);
}

TEST(Wal, GroupSizeOneFlushesEveryAppend) {
  Wal w(1);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(w.append().flushed);
  }
  EXPECT_EQ(w.flushes(), 5u);
}

} // namespace
} // namespace fluxtrace::db
