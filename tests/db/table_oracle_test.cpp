// Model-based fuzz of the Table layer: semantics (found/rows) against a
// std::set oracle, and pool-accounting conservation laws.
#include <gtest/gtest.h>

#include <set>

#include "fluxtrace/db/table.hpp"

namespace fluxtrace::db {
namespace {

class TableOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TableOracle, MatchesSetSemantics) {
  std::uint64_t state = GetParam();
  auto rnd = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 16;
  };

  BufferPool pool(8); // tiny pool: constant eviction churn
  TableConfig cfg;
  cfg.rows_per_page = 4;
  Table table(pool, cfg);
  std::set<std::uint64_t> oracle;

  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t key = rnd() % 900;
    switch (rnd() % 3) {
      case 0: { // insert
        const OpStats st = table.insert(key);
        const bool fresh = oracle.insert(key).second;
        EXPECT_EQ(st.found, !fresh) << key;
        EXPECT_EQ(st.rows, fresh ? 1u : 0u);
        break;
      }
      case 1: { // point
        const OpStats st = table.point(key);
        EXPECT_EQ(st.found, oracle.count(key) == 1) << key;
        if (st.found) {
          EXPECT_EQ(st.page_hits + st.page_misses, 1u)
              << "point touches exactly one heap page";
        }
        break;
      }
      default: { // range
        const std::size_t limit = rnd() % 30;
        const OpStats st = table.range(key, limit);
        std::size_t expect = 0;
        for (auto it = oracle.lower_bound(key);
             it != oracle.end() && expect < limit; ++it) {
          ++expect;
        }
        EXPECT_EQ(st.rows, expect) << "range from " << key;
        break;
      }
    }
    EXPECT_EQ(table.rows(), oracle.size());
  }
  EXPECT_TRUE(table.index().check_invariants());
  // Pool accounting: the pool never exceeds its frame budget.
  EXPECT_LE(pool.size(), pool.capacity());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TableOracle,
                         ::testing::Values(10, 20, 30, 40));

TEST(TablePoolAccounting, HitsPlusMissesEqualsTouches) {
  BufferPool pool(16);
  Table t(pool);
  std::uint64_t touches = 0;
  for (std::uint64_t k = 0; k < 200; ++k) {
    const OpStats st = t.insert(k);
    touches += st.page_hits + st.page_misses;
  }
  for (std::uint64_t k = 0; k < 200; k += 3) {
    const OpStats st = t.point(k);
    touches += st.page_hits + st.page_misses;
  }
  EXPECT_EQ(pool.hits() + pool.misses(), touches);
}

} // namespace
} // namespace fluxtrace::db
