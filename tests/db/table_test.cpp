#include "fluxtrace/db/table.hpp"

#include <gtest/gtest.h>

namespace fluxtrace::db {
namespace {

TEST(Table, InsertThenPoint) {
  BufferPool pool(16);
  Table t(pool);
  const OpStats ins = t.insert(42);
  EXPECT_FALSE(ins.found);
  EXPECT_EQ(ins.rows, 1u);
  EXPECT_GT(ins.index_nodes, 0u);

  const OpStats pt = t.point(42);
  EXPECT_TRUE(pt.found);
  EXPECT_EQ(pt.rows, 1u);
  EXPECT_EQ(pt.page_hits, 1u) << "just-written page is pooled";
}

TEST(Table, PointMissingKey) {
  BufferPool pool(16);
  Table t(pool);
  t.insert(1);
  const OpStats st = t.point(99);
  EXPECT_FALSE(st.found);
  EXPECT_EQ(st.rows, 0u);
  EXPECT_EQ(st.page_hits + st.page_misses, 0u) << "no heap access on miss";
}

TEST(Table, DuplicateInsertTouchesNothing) {
  BufferPool pool(16);
  Table t(pool);
  t.insert(5);
  const std::size_t rows_before = t.rows();
  const OpStats st = t.insert(5);
  EXPECT_TRUE(st.found);
  EXPECT_EQ(st.rows, 0u);
  EXPECT_EQ(t.rows(), rows_before);
}

TEST(Table, RowsPackIntoPages) {
  BufferPool pool(64);
  TableConfig cfg;
  cfg.rows_per_page = 8;
  Table t(pool, cfg);
  for (std::uint64_t k = 0; k < 64; ++k) t.insert(k);
  EXPECT_EQ(t.rows(), 64u);
  EXPECT_EQ(t.heap_pages(), 64u / 8 + 1);
}

TEST(Table, RangeSharesPages) {
  BufferPool pool(64);
  TableConfig cfg;
  cfg.rows_per_page = 8;
  Table t(pool, cfg);
  for (std::uint64_t k = 0; k < 64; ++k) t.insert(k);
  // Sequential keys land on sequential pages: 16 rows span 2-3 pages.
  const OpStats st = t.range(8, 16);
  EXPECT_EQ(st.rows, 16u);
  EXPECT_LE(st.page_hits + st.page_misses, 3u);
}

TEST(Table, EvictedPageCostsAMissOnIdenticalQuery) {
  // The core DB fluctuation: same query, different non-functional state.
  BufferPool pool(4);
  TableConfig cfg;
  cfg.rows_per_page = 4;
  Table t(pool, cfg);
  for (std::uint64_t k = 0; k < 64; ++k) t.insert(k); // 16 pages, pool of 4

  const OpStats warm_setup = t.point(0); // brings page 0 in
  (void)warm_setup;
  const OpStats warm = t.point(0);
  EXPECT_EQ(warm.page_hits, 1u);
  EXPECT_EQ(warm.page_misses, 0u);

  (void)t.range(32, 32); // scan thrashes the pool

  const OpStats cold = t.point(0); // identical query, now a storage read
  EXPECT_EQ(cold.page_hits, 0u);
  EXPECT_EQ(cold.page_misses, 1u);
}

TEST(Table, DirtyEvictionReported) {
  BufferPool pool(1);
  TableConfig cfg;
  cfg.rows_per_page = 1; // every insert dirties a fresh page
  Table t(pool, cfg);
  t.insert(1);
  const OpStats st = t.insert(2); // evicts page of row 1, dirty
  EXPECT_EQ(st.dirty_evictions, 1u);
}

TEST(Table, SplitWorkSurfacesInStats) {
  BufferPool pool(256);
  Table t(pool);
  std::uint32_t with_split = 0;
  for (std::uint64_t k = 0; k < 2000; ++k) {
    if (t.insert(k).index_splits > 0) ++with_split;
  }
  EXPECT_GT(with_split, 0u);
  EXPECT_LT(with_split, 200u);
  EXPECT_TRUE(t.index().check_invariants());
}

} // namespace
} // namespace fluxtrace::db
