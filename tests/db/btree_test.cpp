#include "fluxtrace/db/btree.hpp"

#include <gtest/gtest.h>

#include <map>

namespace fluxtrace::db {
namespace {

TEST(BTree, EmptyTree) {
  BTree t;
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.height(), 1u);
  EXPECT_FALSE(t.find(42).value.has_value());
  EXPECT_TRUE(t.scan(0, 10).rows.empty());
  EXPECT_TRUE(t.check_invariants());
}

TEST(BTree, InsertAndFind) {
  BTree t(4);
  EXPECT_TRUE(t.insert(10, 100).inserted);
  EXPECT_TRUE(t.insert(5, 50).inserted);
  EXPECT_TRUE(t.insert(20, 200).inserted);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.find(5).value, 50u);
  EXPECT_EQ(t.find(10).value, 100u);
  EXPECT_EQ(t.find(20).value, 200u);
  EXPECT_FALSE(t.find(7).value.has_value());
}

TEST(BTree, DuplicateInsertRejected) {
  BTree t(4);
  EXPECT_TRUE(t.insert(1, 10).inserted);
  const auto r = t.insert(1, 99);
  EXPECT_FALSE(r.inserted);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.find(1).value, 10u); // original value kept
}

TEST(BTree, SplitsGrowHeightAndStayValid) {
  BTree t(4); // small order → frequent splits
  for (std::uint64_t k = 0; k < 100; ++k) {
    const auto r = t.insert(k, k * 10);
    EXPECT_TRUE(r.inserted);
    ASSERT_TRUE(t.check_invariants()) << "after key " << k;
  }
  EXPECT_EQ(t.size(), 100u);
  EXPECT_GT(t.height(), 2u);
  EXPECT_GT(t.total_splits(), 10u);
  for (std::uint64_t k = 0; k < 100; ++k) {
    EXPECT_EQ(t.find(k).value, k * 10) << k;
  }
}

TEST(BTree, InsertReportsSplitWork) {
  BTree t(4);
  std::uint32_t with_split = 0;
  for (std::uint64_t k = 0; k < 50; ++k) {
    if (t.insert(k, k).splits > 0) ++with_split;
  }
  // Some inserts split, most do not — the fluctuation the DB case study
  // charges per query.
  EXPECT_GT(with_split, 0u);
  EXPECT_LT(with_split, 50u);
}

TEST(BTree, NodesVisitedMatchesHeightForFind) {
  BTree t(8);
  for (std::uint64_t k = 0; k < 1000; ++k) t.insert(k, k);
  const auto r = t.find(500);
  EXPECT_EQ(r.nodes_visited, t.height());
}

TEST(BTree, ScanReturnsOrderedRange) {
  BTree t(4);
  for (std::uint64_t k = 0; k < 100; k += 2) t.insert(k, k + 1); // evens
  const auto r = t.scan(31, 5);
  ASSERT_EQ(r.rows.size(), 5u);
  EXPECT_EQ(r.rows[0].first, 32u);
  EXPECT_EQ(r.rows[4].first, 40u);
  for (std::size_t i = 1; i < r.rows.size(); ++i) {
    EXPECT_GT(r.rows[i].first, r.rows[i - 1].first);
  }
}

TEST(BTree, ScanAcrossLeafBoundaries) {
  BTree t(4); // tiny leaves → the scan must hop the chain
  for (std::uint64_t k = 0; k < 64; ++k) t.insert(k, k);
  const auto r = t.scan(0, 64);
  ASSERT_EQ(r.rows.size(), 64u);
  EXPECT_GT(r.nodes_visited, 10u); // many leaf hops
}

TEST(BTree, ScanPastEndTruncates) {
  BTree t(4);
  for (std::uint64_t k = 0; k < 10; ++k) t.insert(k, k);
  EXPECT_EQ(t.scan(7, 100).rows.size(), 3u);
  EXPECT_TRUE(t.scan(100, 5).rows.empty());
}

// Property test: random operations against a std::map oracle.
struct OracleParam {
  std::uint64_t seed;
  std::uint32_t order;
};

class BTreeOracleTest : public ::testing::TestWithParam<OracleParam> {};

TEST_P(BTreeOracleTest, MatchesMapOracle) {
  const auto [seed, order] = GetParam();
  std::uint64_t state = seed;
  auto rnd = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 17;
  };

  BTree tree(order);
  std::map<std::uint64_t, std::uint64_t> oracle;
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t key = rnd() % 1500; // collisions guaranteed
    const std::uint64_t val = rnd();
    const bool fresh = oracle.emplace(key, val).second;
    EXPECT_EQ(tree.insert(key, val).inserted, fresh);
  }
  ASSERT_TRUE(tree.check_invariants());
  EXPECT_EQ(tree.size(), oracle.size());

  // Point queries.
  for (std::uint64_t key = 0; key < 1500; ++key) {
    const auto got = tree.find(key).value;
    const auto it = oracle.find(key);
    if (it == oracle.end()) {
      EXPECT_FALSE(got.has_value()) << key;
    } else {
      ASSERT_TRUE(got.has_value()) << key;
      EXPECT_EQ(*got, it->second) << key;
    }
  }

  // Range scans.
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t from = rnd() % 1600;
    const std::size_t limit = rnd() % 40;
    const auto got = tree.scan(from, limit).rows;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> want;
    for (auto it = oracle.lower_bound(from);
         it != oracle.end() && want.size() < limit; ++it) {
      want.emplace_back(it->first, it->second);
    }
    EXPECT_EQ(got, want) << "from=" << from << " limit=" << limit;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BTreeOracleTest,
    ::testing::Values(OracleParam{1, 3}, OracleParam{2, 4},
                      OracleParam{3, 8}, OracleParam{4, 64},
                      OracleParam{5, 5}, OracleParam{42, 16}));

} // namespace
} // namespace fluxtrace::db
