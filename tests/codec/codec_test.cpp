// Column codecs (FLXT v3): per-codec round trips including extreme
// values, best-codec selection, and the hostile-input contract — a
// crafted payload (overlong varint, forged dictionary, truncation, any
// single bit flipped) must decode to false, never crash, read out of
// bounds, or allocate unboundedly.
#include "fluxtrace/codec/column.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <vector>

#include "fluxtrace/codec/varint.hpp"

namespace fluxtrace::codec {
namespace {

std::vector<std::int64_t> decode_ok(ColumnCodec c, std::string_view payload,
                                    std::size_t n) {
  std::vector<std::int64_t> out(n, -12345);
  EXPECT_TRUE(decode_column(c, payload, n, out.data()));
  return out;
}

void expect_round_trip(const std::vector<std::int64_t>& vals,
                       ColumnCodec codec) {
  const std::string bytes = encode_column(vals, codec);
  EXPECT_EQ(decode_ok(codec, bytes, vals.size()), vals)
      << "codec " << column_codec_name(codec);
}

std::vector<std::int64_t> extreme_values() {
  return {0,
          1,
          -1,
          std::numeric_limits<std::int64_t>::max(),
          std::numeric_limits<std::int64_t>::min(),
          std::numeric_limits<std::int64_t>::min() + 1,
          42,
          -42,
          1ll << 62,
          -(1ll << 62)};
}

TEST(ColumnCodec, EveryCodecRoundTripsTypicalData) {
  std::vector<std::int64_t> vals;
  std::uint64_t state = 7;
  for (int i = 0; i < 1000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    vals.push_back(static_cast<std::int64_t>(state >> 40)); // small-ish
  }
  for (const ColumnCodec c : {ColumnCodec::Raw64, ColumnCodec::Varint,
                              ColumnCodec::DeltaVarint, ColumnCodec::Dict,
                              ColumnCodec::ForPack}) {
    expect_round_trip(vals, c);
  }
}

TEST(ColumnCodec, ExtremeValuesRoundTrip) {
  // Dict/ForPack/Varint/Delta must survive the full int64 range
  // (wrapping delta arithmetic, 64-bit pack widths).
  const std::vector<std::int64_t> vals = extreme_values();
  for (const ColumnCodec c : {ColumnCodec::Raw64, ColumnCodec::Varint,
                              ColumnCodec::DeltaVarint, ColumnCodec::Dict,
                              ColumnCodec::ForPack}) {
    expect_round_trip(vals, c);
  }
}

TEST(ColumnCodec, ConstRoundTrip) {
  for (const std::int64_t v :
       {std::int64_t{0}, std::int64_t{-1},
        std::numeric_limits<std::int64_t>::min(),
        std::numeric_limits<std::int64_t>::max()}) {
    expect_round_trip(std::vector<std::int64_t>(257, v), ColumnCodec::Const);
  }
  EXPECT_THROW((void)encode_column({{1, 2}}, ColumnCodec::Const),
               std::invalid_argument);
}

TEST(ColumnCodec, EmptyColumn) {
  const EncodedColumn e = encode_column_best({});
  EXPECT_EQ(e.codec, ColumnCodec::Raw64);
  EXPECT_TRUE(e.bytes.empty());
  EXPECT_TRUE(decode_column(ColumnCodec::Raw64, "", 0, nullptr));
}

TEST(ColumnCodec, BestPicksConstForIdleColumn) {
  const std::vector<std::int64_t> vals(4096, 0);
  const EncodedColumn e = encode_column_best(vals);
  EXPECT_EQ(e.codec, ColumnCodec::Const);
  EXPECT_LE(e.bytes.size(), std::size_t{1});
  EXPECT_EQ(decode_ok(e.codec, e.bytes, vals.size()), vals);
}

TEST(ColumnCodec, BestBeatsRawOnMonotonicTimestamps) {
  std::vector<std::int64_t> ts;
  std::int64_t t = 1'000'000'000;
  std::uint64_t state = 3;
  for (int i = 0; i < 4096; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    t += 100 + static_cast<std::int64_t>(state % 64);
    ts.push_back(t);
  }
  const EncodedColumn e = encode_column_best(ts);
  EXPECT_LT(e.bytes.size(), ts.size() * 8 / 3) << "codec "
      << column_codec_name(e.codec);
  EXPECT_EQ(decode_ok(e.codec, e.bytes, ts.size()), ts);
}

TEST(ColumnCodec, BestNeverLargerThanRaw) {
  std::vector<std::int64_t> vals;
  std::uint64_t state = 99;
  for (int i = 0; i < 512; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    vals.push_back(static_cast<std::int64_t>(state)); // full-width noise
  }
  const EncodedColumn e = encode_column_best(vals);
  EXPECT_LE(e.bytes.size(), vals.size() * 8);
  EXPECT_EQ(decode_ok(e.codec, e.bytes, vals.size()), vals);
}

// --- hostile input ------------------------------------------------------

TEST(ColumnCodec, RejectsUnknownCodec) {
  std::int64_t out[4];
  EXPECT_FALSE(decode_column(static_cast<ColumnCodec>(kNumColumnCodecs),
                             "\x01\x02", 1, out));
  EXPECT_FALSE(decode_column(static_cast<ColumnCodec>(0xff), "", 1, out));
}

TEST(ColumnCodec, RejectsOverlongVarint) {
  // 0x80 0x00 is a non-canonical encoding of 0: redundant continuation.
  std::int64_t out[1];
  EXPECT_FALSE(
      decode_column(ColumnCodec::Varint, std::string("\x80\x00", 2), 1, out));
  // 11 bytes of continuation exceeds the 10-byte u64 varint cap.
  EXPECT_FALSE(decode_column(
      ColumnCodec::Varint,
      std::string("\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01", 11), 1,
      out));
}

TEST(ColumnCodec, RejectsTruncationAndTrailingBytes) {
  const std::vector<std::int64_t> vals = {5, 6, 7, 8};
  for (const ColumnCodec c : {ColumnCodec::Raw64, ColumnCodec::Varint,
                              ColumnCodec::DeltaVarint, ColumnCodec::Dict,
                              ColumnCodec::ForPack}) {
    const std::string bytes = encode_column(vals, c);
    std::int64_t out[4];
    // Truncated at every prefix length.
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      EXPECT_FALSE(decode_column(c, bytes.substr(0, cut), 4, out))
          << column_codec_name(c) << " cut at " << cut;
    }
    // One trailing byte must also be rejected: every byte is consumed.
    EXPECT_FALSE(decode_column(c, bytes + '\0', 4, out))
        << column_codec_name(c);
  }
}

TEST(ColumnCodec, RejectsForgedDictionary) {
  const std::vector<std::int64_t> vals = {10, 20, 10, 30};
  std::string bytes = encode_column(vals, ColumnCodec::Dict);
  std::int64_t out[4];
  ASSERT_TRUE(decode_column(ColumnCodec::Dict, bytes, 4, out));

  // The payload opens with a varint dictionary size; forging it larger
  // than n must fail before any allocation keyed on it.
  {
    std::string forged = bytes;
    forged[0] = '\x7f'; // claim 127 entries for a 4-row column
    EXPECT_FALSE(decode_column(ColumnCodec::Dict, forged, 4, out));
  }
  // Gap-minus-1 encoding makes an unsorted dictionary inexpressible
  // directly — the only forgery left is a gap that wraps past int64
  // max, and the wrap check must catch it.
  {
    std::string forged;
    put_varint(forged, 2); // n_dict = 2
    put_varint(forged, zigzag(std::numeric_limits<std::int64_t>::max()));
    put_varint(forged, 0); // d[1] = max + 1: wraps to int64 min
    forged.push_back('\0'); // 4 indices bit-packed at width 1
    std::int64_t tmp[4];
    EXPECT_FALSE(decode_column(ColumnCodec::Dict, forged, 4, tmp));
  }
}

TEST(ColumnCodec, RejectsOutOfRangeDictIndex) {
  // A 3-entry dictionary packs indices at width 2, so the bit stream
  // can express index 3 — one past the dictionary. Decode must reject
  // it, not read d[3].
  std::string forged;
  put_varint(forged, 3);          // n_dict = 3
  put_varint(forged, zigzag(0));  // d = {0, 1, 2}
  put_varint(forged, 0);
  put_varint(forged, 0);
  forged.push_back('\xff'); // 4 indices, all 0b11 == 3
  std::int64_t tmp[4];
  EXPECT_FALSE(decode_column(ColumnCodec::Dict, forged, 4, tmp));
}

TEST(ColumnCodec, BitFlipFuzzNeverCrashes) {
  std::vector<std::int64_t> vals;
  std::uint64_t state = 1234;
  for (int i = 0; i < 64; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    vals.push_back(static_cast<std::int64_t>(state % 1000));
  }
  for (const ColumnCodec c : {ColumnCodec::Raw64, ColumnCodec::Varint,
                              ColumnCodec::DeltaVarint, ColumnCodec::Dict,
                              ColumnCodec::ForPack}) {
    const std::string bytes = encode_column(vals, c);
    std::vector<std::int64_t> out(vals.size());
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      for (int bit = 0; bit < 8; ++bit) {
        std::string mut = bytes;
        mut[i] = static_cast<char>(mut[i] ^ (1 << bit));
        (void)decode_column(c, mut, vals.size(), out.data());
      }
    }
  }
}

TEST(ColumnCodec, RandomPayloadFuzzNeverCrashes) {
  // Pure noise against every codec and several claimed row counts —
  // the bounded-allocation contract under forged lengths.
  std::uint64_t state = 42;
  auto rnd = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  for (int iter = 0; iter < 200; ++iter) {
    std::string noise(rnd() % 128, '\0');
    for (char& ch : noise) ch = static_cast<char>(rnd());
    for (std::uint8_t c = 0; c < kNumColumnCodecs + 2; ++c) {
      for (const std::size_t n : {std::size_t{0}, std::size_t{1},
                                  std::size_t{63}, std::size_t{4096}}) {
        std::vector<std::int64_t> out(n);
        (void)decode_column(static_cast<ColumnCodec>(c), noise, n,
                            out.data());
      }
    }
  }
}

TEST(Varint, CanonicalRoundTrip) {
  std::string buf;
  const std::uint64_t cases[] = {
      0, 1, 127, 128, 16383, 16384,
      std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t v : cases) {
    buf.clear();
    put_varint(buf, v);
    EXPECT_EQ(buf.size(), varint_len(v));
    std::uint64_t got = 0;
    std::size_t at = 0;
    ASSERT_TRUE(get_varint(buf, at, got));
    EXPECT_EQ(got, v);
    EXPECT_EQ(at, buf.size());
  }
}

TEST(Varint, ZigzagRoundTrip) {
  for (const std::int64_t v :
       {std::int64_t{0}, std::int64_t{-1}, std::int64_t{1},
        std::numeric_limits<std::int64_t>::min(),
        std::numeric_limits<std::int64_t>::max()}) {
    EXPECT_EQ(unzigzag(zigzag(v)), v);
  }
}

} // namespace
} // namespace fluxtrace::codec
