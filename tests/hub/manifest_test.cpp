// Crash consistency of the hub manifest journal: torn tails self-repair,
// bit-flipped records stop the replay at the last good byte, a destroyed
// header restarts the journal, the composite compaction commit applies
// atomically, and snapshot() survives being interrupted (old xor new).
#include "fluxtrace/hub/manifest.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include <unistd.h>

namespace fluxtrace::hub {
namespace {

std::string unique_path(const char* tag) {
  static int n = 0;
  return ::testing::TempDir() + "/manifest_" + tag + "_" +
         std::to_string(::getpid()) + "_" + std::to_string(n++) + ".flxh";
}

TraceEntry entry(const std::string& path, TraceState state = TraceState::Ok,
                 std::uint64_t size = 100) {
  TraceEntry e;
  e.path = path;
  e.state = state;
  e.size_bytes = size;
  e.crc = 0xdeadbeef;
  e.ingested_at_ns = 42;
  e.rows = 7;
  e.chunks_ok = 3;
  e.chunks_corrupt = 1;
  e.bytes_lost = 11;
  e.sidecar = true;
  e.detail = "detail for " + path;
  return e;
}

std::string file_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream buf;
  buf << is.rdbuf();
  return std::move(buf).str();
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(Manifest, RoundTripsEntriesThroughReplay) {
  const std::string path = unique_path("roundtrip");
  {
    Manifest m = Manifest::open(path);
    m.upsert(entry("a.flxt"));
    m.upsert(entry("b.flxt", TraceState::Salvaged));
    m.upsert(entry("c.flxt", TraceState::Quarantined));
    m.remove("a.flxt");
  }
  Manifest m = Manifest::open(path);
  EXPECT_EQ(m.replay_stats().records_applied, 4u);
  EXPECT_FALSE(m.replay_stats().truncated);
  EXPECT_FALSE(m.replay_stats().recreated);
  ASSERT_EQ(m.entries().size(), 2u);
  EXPECT_EQ(m.entries().at("b.flxt"), entry("b.flxt", TraceState::Salvaged));
  EXPECT_EQ(m.entries().at("c.flxt"),
            entry("c.flxt", TraceState::Quarantined));
}

TEST(Manifest, UpsertReplacesPriorEntry) {
  const std::string path = unique_path("upsert");
  Manifest m = Manifest::open(path);
  m.upsert(entry("a.flxt"));
  TraceEntry e2 = entry("a.flxt", TraceState::Expired);
  e2.detail = "expired by age";
  m.upsert(e2);
  ASSERT_EQ(m.entries().size(), 1u);
  EXPECT_EQ(m.entries().at("a.flxt").state, TraceState::Expired);
  EXPECT_EQ(m.entries().at("a.flxt").detail, "expired by age");
}

TEST(Manifest, TornTailTruncatesAndSelfRepairs) {
  const std::string path = unique_path("torn");
  {
    Manifest m = Manifest::open(path);
    m.upsert(entry("a.flxt"));
    m.upsert(entry("b.flxt"));
  }
  const std::string whole = file_bytes(path);
  // The two records encode identical-length entries, so the first ends
  // exactly halfway through the body. Cut at bytes inside the second:
  // replay must keep exactly the first entry and repair the file.
  const std::size_t rec1_end = 8 + (whole.size() - 8) / 2;
  for (std::size_t keep = whole.size() - 1; keep > rec1_end; keep -= 7) {
    write_bytes(path, whole.substr(0, keep));
    Manifest m = Manifest::open(path);
    EXPECT_TRUE(m.replay_stats().truncated) << "keep=" << keep;
    EXPECT_GE(m.entries().size(), 1u) << "keep=" << keep;
    EXPECT_TRUE(m.entries().count("a.flxt")) << "keep=" << keep;
    EXPECT_FALSE(m.entries().count("b.flxt")) << "keep=" << keep;
    // The repair is durable: a second open sees a clean journal.
    Manifest again = Manifest::open(path);
    EXPECT_FALSE(again.replay_stats().truncated) << "keep=" << keep;
  }
}

TEST(Manifest, BitFlippedRecordDiscardsSuffix) {
  const std::string path = unique_path("flip");
  {
    Manifest m = Manifest::open(path);
    m.upsert(entry("a.flxt"));
    m.upsert(entry("b.flxt"));
    m.upsert(entry("c.flxt"));
  }
  const std::string whole = file_bytes(path);
  // Flip one byte somewhere in the middle record's bytes: everything
  // from that record on is discarded, the prefix survives.
  const std::size_t at = 8 + (whole.size() - 8) / 2;
  std::string mutated = whole;
  mutated[at] = static_cast<char>(
      static_cast<unsigned char>(mutated[at]) ^ 0xff);
  write_bytes(path, mutated);
  Manifest m = Manifest::open(path);
  EXPECT_TRUE(m.replay_stats().truncated);
  EXPECT_LT(m.entries().size(), 3u);
  EXPECT_GT(m.replay_stats().bytes_truncated, 0u);
}

TEST(Manifest, DestroyedHeaderRecreatesEmptyJournal) {
  const std::string path = unique_path("header");
  {
    Manifest m = Manifest::open(path);
    m.upsert(entry("a.flxt"));
  }
  std::string mutated = file_bytes(path);
  mutated[0] = 'X';
  write_bytes(path, mutated);
  Manifest m = Manifest::open(path);
  EXPECT_TRUE(m.replay_stats().recreated);
  EXPECT_TRUE(m.entries().empty());
  // And the recreated journal accepts appends + replays normally.
  m.upsert(entry("fresh.flxt"));
  Manifest again = Manifest::open(path);
  EXPECT_EQ(again.entries().size(), 1u);
}

TEST(Manifest, CompactCommitAppliesAtomically) {
  const std::string path = unique_path("commit");
  {
    Manifest m = Manifest::open(path);
    m.upsert(entry("m1.flxt"));
    m.upsert(entry("m2.flxt"));
    m.compact_intent({"seg.flxt", {"m1.flxt", "m2.flxt"}});
    EXPECT_TRUE(m.pending_intent().has_value());
    m.compact_commit(entry("seg.flxt"), {"m1.flxt", "m2.flxt"});
    EXPECT_FALSE(m.pending_intent().has_value());
  }
  Manifest m = Manifest::open(path);
  EXPECT_FALSE(m.pending_intent().has_value());
  ASSERT_EQ(m.entries().size(), 3u);
  EXPECT_EQ(m.entries().at("seg.flxt").state, TraceState::Ok);
  EXPECT_EQ(m.entries().at("m1.flxt").state, TraceState::Expired);
  EXPECT_EQ(m.entries().at("m1.flxt").detail, "compacted into seg.flxt");
  EXPECT_EQ(m.entries().at("m2.flxt").state, TraceState::Expired);
}

TEST(Manifest, DanglingIntentSurvivesReplay) {
  const std::string path = unique_path("intent");
  {
    Manifest m = Manifest::open(path);
    m.upsert(entry("m1.flxt"));
    m.compact_intent({"seg.flxt", {"m1.flxt"}});
    // "crash" before commit: just drop the object.
  }
  Manifest m = Manifest::open(path);
  ASSERT_TRUE(m.pending_intent().has_value());
  EXPECT_EQ(m.pending_intent()->segment_path, "seg.flxt");
  ASSERT_EQ(m.pending_intent()->members.size(), 1u);
  m.compact_abort("seg.flxt");
  EXPECT_FALSE(m.pending_intent().has_value());
  Manifest again = Manifest::open(path);
  EXPECT_FALSE(again.pending_intent().has_value());
  EXPECT_EQ(again.entries().at("m1.flxt").state, TraceState::Ok);
}

TEST(Manifest, SnapshotCompactsAndPreservesState) {
  const std::string path = unique_path("snapshot");
  Manifest m = Manifest::open(path);
  for (int round = 0; round < 10; ++round) {
    m.upsert(entry("a.flxt", TraceState::Ok,
                   static_cast<std::uint64_t>(round)));
    m.upsert(entry("b.flxt", TraceState::Salvaged,
                   static_cast<std::uint64_t>(round)));
  }
  EXPECT_TRUE(m.wants_snapshot());
  const std::size_t before = file_bytes(path).size();
  m.snapshot();
  EXPECT_FALSE(m.wants_snapshot());
  EXPECT_EQ(m.journal_records(), 2u);
  EXPECT_LT(file_bytes(path).size(), before);
  // Appends after a snapshot land in the new journal.
  m.upsert(entry("c.flxt"));
  Manifest again = Manifest::open(path);
  EXPECT_EQ(again.entries().size(), 3u);
  EXPECT_EQ(again.entries().at("a.flxt").size_bytes, 9u);
}

TEST(Manifest, SnapshotPreservesPendingIntent) {
  const std::string path = unique_path("snapintent");
  Manifest m = Manifest::open(path);
  m.upsert(entry("m1.flxt"));
  m.compact_intent({"seg.flxt", {"m1.flxt"}});
  m.snapshot();
  Manifest again = Manifest::open(path);
  ASSERT_TRUE(again.pending_intent().has_value());
  EXPECT_EQ(again.pending_intent()->segment_path, "seg.flxt");
}

TEST(Manifest, InjectedFaultThrowsAndLeavesMemoryUnchanged) {
  const std::string path = unique_path("fault");
  bool arm = false;
  Manifest m = Manifest::open(
      path, [&arm](std::size_t) { return arm; });
  m.upsert(entry("a.flxt"));
  arm = true;
  EXPECT_THROW(m.upsert(entry("b.flxt")), ManifestError);
  EXPECT_THROW(m.remove("a.flxt"), ManifestError);
  EXPECT_EQ(m.entries().size(), 1u);
  EXPECT_TRUE(m.entries().count("a.flxt"));
  arm = false;
  m.upsert(entry("b.flxt"));
  Manifest again = Manifest::open(path);
  EXPECT_EQ(again.entries().size(), 2u);
}

TEST(Manifest, HostileLengthFieldStopsReplay) {
  const std::string path = unique_path("hostile");
  {
    Manifest m = Manifest::open(path);
    m.upsert(entry("a.flxt"));
  }
  // Append a record claiming a payload far past eof: replay must stop
  // cleanly at the last good record, not read out of bounds.
  std::string bytes = file_bytes(path);
  const char rec[] = {'H', 'R', 'E', 'C', 1, '\xff', '\xff', '\xff', '\x7f',
                      0, 0, 0, 0};
  bytes.append(rec, sizeof rec);
  write_bytes(path, bytes);
  Manifest m = Manifest::open(path);
  EXPECT_TRUE(m.replay_stats().truncated);
  EXPECT_EQ(m.entries().size(), 1u);
}

} // namespace
} // namespace fluxtrace::hub
