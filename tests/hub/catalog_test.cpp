// hub::Catalog end to end: sharded ingest with triage (clean / salvaged
// / quarantined), double-ingest idempotence, hostile-directory scans
// that report and continue, retention and compaction with their crash
// windows (simulated by a checkpoint hook that throws), the sweep that
// finishes interrupted deletes on the next open, and the read-side
// retry/breaker discipline.
#include "fluxtrace/hub/catalog.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <set>

#include <sys/stat.h>
#include <unistd.h>

#include "fluxtrace/io/chunked.hpp"
#include "fluxtrace/io/trace_reader.hpp"
#include "fluxtrace/io/v3.hpp"
#include "fluxtrace/query/flxi.hpp"

namespace fluxtrace::hub {
namespace {

/// Deterministic capture session: items [base, base+n) on two cores,
/// disjoint time ranges per session (like real per-session captures).
struct Session {
  SymbolTable symtab;
  io::TraceData data;
};

Session make_session(std::size_t base_item, std::size_t n_items,
                     std::uint64_t seed = 1) {
  Session s;
  const SymbolId f0 = s.symtab.add("app::parse", 0x400);
  const SymbolId f1 = s.symtab.add("app::lookup", 0x400);
  const SymbolId f2 = s.symtab.add("app::transform", 0x400);
  const SymbolId fns[3] = {f0, f1, f2};
  auto rnd = [state = seed]() mutable {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 11;
  };
  for (std::size_t i = 0; i < n_items; ++i) {
    const std::size_t item = base_item + i;
    const std::uint32_t core = static_cast<std::uint32_t>(i % 2);
    const Tsc t0 = 1'000'000 * (item + 1);
    const Tsc t1 = t0 + 8000;
    s.data.markers.push_back({t0, item, core, MarkerKind::Enter});
    for (std::size_t k = 0; k < 6; ++k) {
      PebsSample smp;
      smp.tsc = t0 + 1 + (k * 7900) / 6;
      smp.core = core;
      smp.ip = s.symtab.ip_at(fns[rnd() % 3], 0.5);
      s.data.samples.push_back(smp);
    }
    s.data.markers.push_back({t1, item, core, MarkerKind::Leave});
  }
  return s;
}

struct CatalogFixture : ::testing::Test {
  void SetUp() override {
    static int n = 0;
    dir = ::testing::TempDir() + "/hub_cat_" + std::to_string(::getpid()) +
          "_" + std::to_string(n++);
    ::mkdir(dir.c_str(), 0755);
    symtab = make_session(0, 1).symtab; // shared symbol universe
  }

  std::string write_session(const char* name, std::size_t base_item,
                            std::size_t n_items, std::uint64_t seed = 1) {
    const std::string path = dir + "/" + name;
    io::save_trace_v2(path, make_session(base_item, n_items, seed).data, 8);
    return path;
  }

  CatalogOptions opts() {
    CatalogOptions o;
    o.threads = 1;
    o.now_ns = [this] { return clock_ns; };
    return o;
  }

  std::string dir;
  SymbolTable symtab;
  std::uint64_t clock_ns = 1'000;
};

std::set<std::string> state_of(const Catalog& cat, TraceState s) {
  std::set<std::string> out;
  for (const auto& [path, e] : cat.manifest().entries()) {
    if (e.state == s) out.insert(path);
  }
  return out;
}

/// The "zero unaccounted traces" invariant: every path ever handed to
/// the catalog is in exactly one state.
void expect_accounted(const Catalog& cat,
                      const std::set<std::string>& all_paths) {
  std::set<std::string> seen;
  for (const auto& [path, e] : cat.manifest().entries()) {
    EXPECT_TRUE(seen.insert(path).second) << path;
  }
  for (const std::string& p : all_paths) {
    EXPECT_TRUE(cat.manifest().entries().count(p) ||
                cat.manifest().entries().count(
                    p.substr(0, p.size())) != 0)
        << "unaccounted: " << p;
  }
}

TEST_F(CatalogFixture, IngestRegistersCleanTracesWithSidecars) {
  write_session("a.flxt", 0, 4);
  write_session("b.flxt", 100, 4);
  Catalog cat = Catalog::open(dir, symtab, opts());
  const IngestReport rep = cat.ingest();
  EXPECT_EQ(rep.scanned, 2u);
  EXPECT_EQ(rep.registered, 2u);
  EXPECT_EQ(rep.failed, 0u);
  for (const auto& [path, e] : cat.manifest().entries()) {
    EXPECT_EQ(e.state, TraceState::Ok);
    EXPECT_TRUE(e.sidecar);
    EXPECT_EQ(e.rows, 24u);
    EXPECT_GT(e.size_bytes, 0u);
    struct stat st{};
    EXPECT_EQ(::stat(query::flxi_path(path).c_str(), &st), 0) << path;
  }
}

TEST_F(CatalogFixture, DoubleIngestIsIdempotent) {
  write_session("a.flxt", 0, 4);
  Catalog cat = Catalog::open(dir, symtab, opts());
  EXPECT_EQ(cat.ingest().registered, 1u);
  const IngestReport second = cat.ingest();
  EXPECT_EQ(second.registered, 0u);
  EXPECT_EQ(second.unchanged, 1u);
  // And across a journal replay too.
  Catalog reopened = Catalog::open(dir, symtab, opts());
  const IngestReport third = reopened.ingest();
  EXPECT_EQ(third.registered, 0u);
  EXPECT_EQ(third.unchanged, 1u);
}

TEST_F(CatalogFixture, ChangedFileIsReingested) {
  const std::string path = write_session("a.flxt", 0, 4);
  Catalog cat = Catalog::open(dir, symtab, opts());
  cat.ingest();
  io::save_trace_v2(path, make_session(0, 8).data, 8);
  const IngestReport rep = cat.ingest();
  EXPECT_EQ(rep.registered, 1u);
  EXPECT_EQ(rep.unchanged, 0u);
  EXPECT_EQ(cat.manifest().entries().at(path).rows, 48u);
}

TEST_F(CatalogFixture, DamagedTraceSalvagesWithLossAccounting) {
  const std::string path = write_session("dmg.flxt", 0, 6);
  // Flip one byte inside a chunk payload: that chunk is lost, the rest
  // salvage.
  std::string bytes;
  {
    std::ifstream is(path, std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    bytes = std::move(buf).str();
  }
  bytes[bytes.size() / 2] ^= '\x01';
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  Catalog cat = Catalog::open(dir, symtab, opts());
  const IngestReport rep = cat.ingest();
  EXPECT_EQ(rep.salvaged, 1u);
  const TraceEntry& e = cat.manifest().entries().at(path);
  EXPECT_EQ(e.state, TraceState::Salvaged);
  EXPECT_GE(e.chunks_corrupt, 1u);
  EXPECT_GT(e.chunks_ok, 0u);
  EXPECT_NE(e.detail.find("corrupt"), std::string::npos);
}

TEST_F(CatalogFixture, GarbageFileIsQuarantinedAndNeverQueried) {
  const std::string path = dir + "/hostile.flxt";
  {
    std::ofstream os(path, std::ios::binary);
    for (int i = 0; i < 4096; ++i) os.put(static_cast<char>(i * 37));
  }
  Catalog cat = Catalog::open(dir, symtab, opts());
  const IngestReport rep = cat.ingest();
  EXPECT_EQ(rep.quarantined, 1u);
  const TraceEntry& e = cat.manifest().entries().at(path);
  EXPECT_EQ(e.state, TraceState::Quarantined);
  EXPECT_FALSE(e.sidecar);
  EXPECT_NE(e.detail.find("unrecoverable"), std::string::npos);
  // The query layer counts it without opening it.
  const auto members = cat.query_members();
  ASSERT_EQ(members.size(), 1u);
  EXPECT_TRUE(members[0].quarantined);
}

TEST_F(CatalogFixture, HostileDirectoryReportsAndContinues) {
  write_session("good.flxt", 0, 4);
  ::mkdir((dir + "/sub").c_str(), 0755);
  write_session("sub/nested.flxt", 100, 4);
  // A broken symlink is unreadable for everyone — including root, which
  // chmod-000 files are not.
  ASSERT_EQ(::symlink("/nonexistent/void", (dir + "/broken.flxt").c_str()),
            0);
  Catalog cat = Catalog::open(dir, symtab, opts());
  const ScanResult sr = cat.scan();
  EXPECT_EQ(sr.traces.size(), 2u);
  ASSERT_EQ(sr.errors.size(), 1u);
  EXPECT_NE(sr.errors[0].find(dir + "/broken.flxt"), std::string::npos);
  EXPECT_NE(sr.errors[0].find("No such file"), std::string::npos);
  const IngestReport rep = cat.ingest();
  EXPECT_EQ(rep.registered, 2u);
  EXPECT_EQ(rep.failed, 1u); // the broken symlink, reported not fatal
}

TEST_F(CatalogFixture, RetainExpiresByAgeAndDeletesFiles) {
  const std::string old_path = write_session("old.flxt", 0, 4);
  Catalog cat = Catalog::open(dir, symtab, opts());
  cat.ingest();
  clock_ns += 10'000'000;
  const std::string new_path = write_session("new.flxt", 100, 4);
  cat.ingest();
  clock_ns += 5'000'000; // old is 15ms old, new is 5ms old
  const RetainReport rep = cat.retain(/*max_age_ns=*/8'000'000, 0);
  EXPECT_EQ(rep.expired, 1u);
  EXPECT_GT(rep.bytes_reclaimed, 0u);
  EXPECT_EQ(cat.manifest().entries().at(old_path).state,
            TraceState::Expired);
  EXPECT_EQ(cat.manifest().entries().at(new_path).state, TraceState::Ok);
  struct stat st{};
  EXPECT_NE(::stat(old_path.c_str(), &st), 0);
  EXPECT_EQ(::stat(new_path.c_str(), &st), 0);
}

TEST_F(CatalogFixture, RetainEnforcesSizeBudgetOldestFirst) {
  const std::string a = write_session("a.flxt", 0, 4);
  Catalog cat = Catalog::open(dir, symtab, opts());
  cat.ingest();
  clock_ns += 1000;
  const std::string b = write_session("b.flxt", 100, 4);
  cat.ingest();
  const std::uint64_t one =
      cat.manifest().entries().at(b).size_bytes;
  const RetainReport rep = cat.retain(0, /*max_total_bytes=*/one + 10);
  EXPECT_EQ(rep.expired, 1u);
  EXPECT_EQ(cat.manifest().entries().at(a).state, TraceState::Expired);
  EXPECT_EQ(cat.manifest().entries().at(b).state, TraceState::Ok);
}

struct Crash {};

TEST_F(CatalogFixture, CrashBetweenExpiryCommitAndDeleteIsSweptOnOpen) {
  const std::string path = write_session("a.flxt", 0, 4);
  {
    CatalogOptions o = opts();
    o.checkpoint = [](const char* cp) {
      if (std::string_view(cp) == "retain.committed") throw Crash{};
    };
    Catalog cat = Catalog::open(dir, symtab, o);
    cat.ingest();
    clock_ns += 100;
    EXPECT_THROW(cat.retain(/*max_age_ns=*/1, 0), Crash);
    // Journal says expired; the file is still on disk.
    struct stat st{};
    EXPECT_EQ(::stat(path.c_str(), &st), 0);
  }
  Catalog reopened = Catalog::open(dir, symtab, opts());
  EXPECT_EQ(reopened.open_report().swept_files, 1u);
  struct stat st{};
  EXPECT_NE(::stat(path.c_str(), &st), 0);
  EXPECT_EQ(reopened.manifest().entries().at(path).state,
            TraceState::Expired);
}

TEST_F(CatalogFixture, CompactMergesSmallTracesAndPreservesRows) {
  const std::string a = write_session("a.flxt", 0, 4);
  const std::string b = write_session("b.flxt", 100, 4);
  Catalog cat = Catalog::open(dir, symtab, opts());
  cat.ingest();
  const CompactReport rep = cat.compact(/*threshold_bytes=*/1u << 20);
  EXPECT_EQ(rep.segments_written, 1u);
  EXPECT_EQ(rep.members_merged, 2u);
  const TraceEntry& seg = cat.manifest().entries().at(rep.segment_path);
  EXPECT_EQ(seg.state, TraceState::Ok);
  EXPECT_EQ(seg.rows, 48u);
  EXPECT_TRUE(seg.sidecar);
  EXPECT_EQ(cat.manifest().entries().at(a).state, TraceState::Expired);
  EXPECT_EQ(cat.manifest().entries().at(b).state, TraceState::Expired);
  struct stat st{};
  EXPECT_NE(::stat(a.c_str(), &st), 0); // members deleted
  EXPECT_EQ(::stat(rep.segment_path.c_str(), &st), 0);
  // The merged segment strict-reads to the concatenation.
  const io::TraceData d = io::open_trace(rep.segment_path).read();
  EXPECT_EQ(d.samples.size(), 48u);
  EXPECT_EQ(d.markers.size(), 16u);
  EXPECT_TRUE(cat.verify().clean());
}

TEST_F(CatalogFixture, CompactCrashBeforeCommitRollsBackOnOpen) {
  for (const char* window : {"compact.intent", "compact.segment"}) {
    SetUp(); // fresh dir per window
    const std::string a = write_session("a.flxt", 0, 4);
    const std::string b = write_session("b.flxt", 100, 4);
    std::string seg_path;
    {
      CatalogOptions o = opts();
      const std::string_view at = window;
      o.checkpoint = [at](const char* cp) {
        if (std::string_view(cp) == at) throw Crash{};
      };
      Catalog cat = Catalog::open(dir, symtab, o);
      cat.ingest();
      EXPECT_THROW(cat.compact(1u << 20), Crash) << window;
    }
    Catalog reopened = Catalog::open(dir, symtab, opts());
    EXPECT_TRUE(reopened.open_report().rolled_back_compaction) << window;
    EXPECT_FALSE(reopened.manifest().pending_intent().has_value());
    // Members untouched and still Ok; no segment anywhere.
    EXPECT_EQ(reopened.manifest().entries().at(a).state, TraceState::Ok)
        << window;
    EXPECT_EQ(reopened.manifest().entries().at(b).state, TraceState::Ok)
        << window;
    EXPECT_EQ(state_of(reopened, TraceState::Ok).size(), 2u) << window;
    EXPECT_TRUE(reopened.verify().clean()) << window;
  }
}

TEST_F(CatalogFixture, CompactCrashAfterCommitSweepsMembersOnOpen) {
  const std::string a = write_session("a.flxt", 0, 4);
  const std::string b = write_session("b.flxt", 100, 4);
  {
    CatalogOptions o = opts();
    o.checkpoint = [](const char* cp) {
      if (std::string_view(cp) == "compact.commit") throw Crash{};
    };
    Catalog cat = Catalog::open(dir, symtab, o);
    cat.ingest();
    EXPECT_THROW(cat.compact(1u << 20), Crash);
    // Committed: members expired in the journal, files still on disk.
    struct stat st{};
    EXPECT_EQ(::stat(a.c_str(), &st), 0);
  }
  Catalog reopened = Catalog::open(dir, symtab, opts());
  EXPECT_EQ(reopened.open_report().swept_files, 2u);
  struct stat st{};
  EXPECT_NE(::stat(a.c_str(), &st), 0);
  EXPECT_NE(::stat(b.c_str(), &st), 0);
  EXPECT_EQ(state_of(reopened, TraceState::Ok).size(), 1u); // the segment
  EXPECT_EQ(state_of(reopened, TraceState::Expired).size(), 2u);
  EXPECT_TRUE(reopened.verify().clean());
}

TEST_F(CatalogFixture, TransientReadFaultsRetryThenSucceed) {
  write_session("a.flxt", 0, 4);
  CatalogOptions o = opts();
  int faults = 2; // under max_attempts (3): retries absorb them
  o.read_fault = [&faults](const std::string&) { return faults-- > 0; };
  Catalog cat = Catalog::open(dir, symtab, o);
  const IngestReport rep = cat.ingest();
  EXPECT_EQ(rep.registered, 1u);
  EXPECT_EQ(rep.failed, 0u);
  EXPECT_EQ(cat.stats().retries, 2u);
  EXPECT_GT(cat.stats().backoff_ns, 0u);
}

TEST_F(CatalogFixture, PersistentFaultsOpenTheBreakerThenRecover) {
  for (int i = 0; i < 6; ++i) {
    write_session(("t" + std::to_string(i) + ".flxt").c_str(),
                  static_cast<std::size_t>(i) * 100, 2);
  }
  CatalogOptions o = opts();
  o.breaker_cooldown_ns = 1'000'000;
  bool faulting = true;
  o.read_fault = [&faulting](const std::string&) { return faulting; };
  Catalog cat = Catalog::open(dir, symtab, o);
  const IngestReport rep = cat.ingest();
  EXPECT_EQ(rep.registered, 0u);
  EXPECT_EQ(rep.failed, 6u);
  EXPECT_GE(cat.stats().breaker_opens, 1u);
  EXPECT_GE(cat.stats().breaker_rejects, 1u); // post-open fast failures
  // Cooldown passes, the fault clears: everything ingests.
  faulting = false;
  clock_ns += 2'000'000;
  const IngestReport again = cat.ingest();
  EXPECT_EQ(again.registered, 6u);
  EXPECT_EQ(again.failed, 0u);
}

TEST_F(CatalogFixture, ManifestEnospcFailsIngestButJournalStaysSound) {
  write_session("a.flxt", 0, 4);
  write_session("b.flxt", 100, 4);
  CatalogOptions o = opts();
  // A byte budget that admits exactly the first entry record: the disk
  // "fills" mid-ingest.
  std::uint64_t written = 0;
  std::uint64_t budget = 0;
  o.manifest_fault = [&written, &budget](std::size_t bytes) {
    if (budget == 0) budget = bytes; // first record sets the budget
    written += bytes;
    return written > budget;
  };
  Catalog cat = Catalog::open(dir, symtab, o);
  const IngestReport rep = cat.ingest();
  EXPECT_EQ(rep.registered + rep.failed, 2u);
  EXPECT_GE(rep.failed, 1u);
  // The journal that did get written replays cleanly.
  Catalog reopened = Catalog::open(dir, symtab, opts());
  EXPECT_FALSE(reopened.open_report().replay.recreated);
  EXPECT_EQ(reopened.manifest().entries().size(), rep.registered);
  // And the failed trace ingests on the next pass.
  const IngestReport again = reopened.ingest();
  EXPECT_EQ(reopened.manifest().entries().size(), 2u);
  EXPECT_EQ(again.failed, 0u);
}

TEST_F(CatalogFixture, EveryTraceIsAccountedAfterChaos) {
  // Compose the whole lifecycle, then assert the ledger invariant.
  std::set<std::string> all;
  all.insert(write_session("a.flxt", 0, 4));
  all.insert(write_session("b.flxt", 100, 4));
  const std::string hostile = dir + "/evil.flxt";
  {
    std::ofstream os(hostile, std::ios::binary);
    os << "not a trace at all";
  }
  all.insert(hostile);
  Catalog cat = Catalog::open(dir, symtab, opts());
  cat.ingest();
  const CompactReport crep = cat.compact(1u << 20);
  if (!crep.segment_path.empty()) all.insert(crep.segment_path);
  clock_ns += 1'000'000'000;
  cat.retain(/*max_age_ns=*/1, 0);
  expect_accounted(cat, all);
  for (const std::string& p : all) {
    ASSERT_TRUE(cat.manifest().entries().count(p)) << p;
  }
  // After retention everything user-visible is expired or quarantined.
  EXPECT_EQ(state_of(cat, TraceState::Ok).size(), 0u);
  EXPECT_EQ(state_of(cat, TraceState::Quarantined).size(), 0u);
}

TEST_F(CatalogFixture, V3MemberIngestsCleanWithSidecar) {
  const std::string path = dir + "/c.flxt3";
  io::save_trace_v3(path, make_session(0, 6).data, 8);
  write_session("a.flxt", 100, 6); // mixed-format directory
  Catalog cat = Catalog::open(dir, symtab, opts());
  const IngestReport rep = cat.ingest();
  EXPECT_EQ(rep.scanned, 2u);
  EXPECT_EQ(rep.registered, 2u);
  EXPECT_EQ(rep.failed, 0u);
  const TraceEntry& e = cat.manifest().entries().at(path);
  EXPECT_EQ(e.state, TraceState::Ok);
  EXPECT_TRUE(e.sidecar); // FLXI builds over v3 compressed chunks too
  EXPECT_EQ(e.rows, 36u);
}

TEST_F(CatalogFixture, DamagedV3MemberSalvagesWithLossAccounting) {
  const std::string path = dir + "/dmg.flxt3";
  io::save_trace_v3(path, make_session(0, 8, 3).data, 8);
  std::string bytes;
  {
    std::ifstream is(path, std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    bytes = std::move(buf).str();
  }
  // Flip one byte inside a compressed chunk payload: triage must lose
  // only that chunk and keep the member queryable as Salvaged.
  const auto refs = io::index_trace_v2(bytes);
  std::size_t victim = 0;
  for (std::size_t i = 0; i < refs.size(); ++i) {
    if (io::is_sample_chunk_type(refs[i].type)) victim = i;
  }
  bytes[static_cast<std::size_t>(refs[victim].offset) + 21 +
        refs[victim].payload_bytes / 2] ^= '\x01';
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  Catalog cat = Catalog::open(dir, symtab, opts());
  const IngestReport rep = cat.ingest();
  EXPECT_EQ(rep.salvaged, 1u);
  const TraceEntry& e = cat.manifest().entries().at(path);
  EXPECT_EQ(e.state, TraceState::Salvaged);
  EXPECT_EQ(e.chunks_corrupt, 1u);
  EXPECT_GT(e.chunks_ok, 0u);
  // Loss accounted to exactly that chunk: every other sample survives.
  EXPECT_EQ(e.rows, 48u - refs[victim].n_records);
}

} // namespace
} // namespace fluxtrace::hub
