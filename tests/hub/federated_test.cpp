// Federated query correctness: for members that are distinct capture
// sessions, run_federated over the member set must be bit-identical to
// a single QueryEngine evaluation of the concatenated records — for
// every pipeline shape, at any fan-out thread count — and per-member
// failures must degrade into the ledger, never into the answer.
#include "fluxtrace/query/federated.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include <sys/stat.h>
#include <unistd.h>

#include "fluxtrace/io/chunked.hpp"
#include "fluxtrace/query/render.hpp"

namespace fluxtrace::query {
namespace {

struct Fleet {
  SymbolTable symtab;
  std::vector<std::string> paths;
  io::TraceData concat; ///< member records in member (path) order
};

/// n_members distinct sessions: disjoint item ids and time ranges, like
/// real per-session captures — the precondition for merge identity.
Fleet make_fleet(const std::string& dir, std::size_t n_members,
                 std::size_t items_per_member, std::uint64_t seed) {
  Fleet f;
  const SymbolId f0 = f.symtab.add("app::parse", 0x400);
  const SymbolId f1 = f.symtab.add("app::lookup", 0x400);
  const SymbolId f2 = f.symtab.add("app::transform", 0x400);
  const SymbolId fns[3] = {f0, f1, f2};
  auto rnd = [state = seed]() mutable {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 11;
  };
  for (std::size_t m = 0; m < n_members; ++m) {
    io::TraceData d;
    for (std::size_t i = 0; i < items_per_member; ++i) {
      const std::size_t item = m * 1000 + i;
      const std::uint32_t core = static_cast<std::uint32_t>(i % 2);
      const Tsc t0 = 10'000'000 * (m + 1) + 20'000 * i;
      const Tsc t1 = t0 + 8000;
      d.markers.push_back({t0, item, core, MarkerKind::Enter});
      const std::size_t n_samples = 3 + rnd() % 6;
      for (std::size_t k = 0; k < n_samples; ++k) {
        PebsSample s;
        s.tsc = t0 + 1 + (k * 7900) / n_samples;
        s.core = core;
        s.ip = f.symtab.ip_at(fns[rnd() % 3], 0.5);
        d.samples.push_back(s);
      }
      d.markers.push_back({t1, item, core, MarkerKind::Leave});
    }
    char name[32];
    std::snprintf(name, sizeof name, "/member_%02zu.flxt", m);
    const std::string path = dir + name;
    io::save_trace_v2(path, d, 8);
    f.paths.push_back(path);
    f.concat.markers.insert(f.concat.markers.end(), d.markers.begin(),
                            d.markers.end());
    f.concat.samples.insert(f.concat.samples.end(), d.samples.begin(),
                            d.samples.end());
  }
  return f;
}

std::string fresh_dir(const char* tag) {
  static int n = 0;
  const std::string dir = ::testing::TempDir() + "/fed_" + tag + "_" +
                          std::to_string(::getpid()) + "_" +
                          std::to_string(n++);
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

std::vector<FederatedTrace> members_of(const Fleet& f) {
  std::vector<FederatedTrace> ms;
  for (const std::string& p : f.paths) ms.push_back({p, false});
  return ms;
}

std::string csv_of(const QueryResult& r) {
  std::ostringstream os;
  print_csv(os, r);
  return std::move(os).str();
}

const char* const kPipelines[] = {
    "group func: count, sum(dur), p95(dur)",
    "filter item % 2 == 0 | group func, core: count, max(ts)",
    "filter func == \"app::transform\" | select item, ts, core",
    "group item: count | top 5 by count",
    "filter dur > 0 | group core: count, p50(dur) | limit 2",
    "select ts, item | limit 7",
    "outliers k=1.0 warmup=3",
};

TEST(Federated, MatchesConcatenatedEvaluationForEveryPipeline) {
  const std::string dir = fresh_dir("identity");
  const Fleet f = make_fleet(dir, 3, 5, 42);
  EngineOptions eo;
  eo.threads = 1;
  QueryEngine whole = QueryEngine::from_data(f.concat, f.symtab, eo);
  for (const char* pipeline : kPipelines) {
    const QueryResult expected = whole.run(pipeline);
    FederatedOptions fo;
    fo.engine.threads = 1;
    fo.fanout_threads = 1;
    const FederatedResult fr =
        run_federated(members_of(f), f.symtab, pipeline, fo);
    EXPECT_EQ(csv_of(fr.result), csv_of(expected)) << pipeline;
    EXPECT_EQ(fr.ledger.count(TraceDisposition::Ok), 3u) << pipeline;
  }
}

TEST(Federated, FanoutThreadCountIsNeverObservable) {
  const std::string dir = fresh_dir("fanout");
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Fleet f = make_fleet(dir, 4, 4, seed * 977);
    for (const char* pipeline : kPipelines) {
      FederatedOptions seq;
      seq.fanout_threads = 1;
      seq.engine.threads = 1;
      const std::string a =
          csv_of(run_federated(members_of(f), f.symtab, pipeline, seq)
                     .result);
      FederatedOptions par;
      par.fanout_threads = 4;
      const std::string b =
          csv_of(run_federated(members_of(f), f.symtab, pipeline, par)
                     .result);
      EXPECT_EQ(a, b) << "seed=" << seed << " pipeline=" << pipeline;
    }
  }
}

TEST(Federated, DamagedMemberDegradesIntoLedger) {
  const std::string dir = fresh_dir("degrade");
  const Fleet f = make_fleet(dir, 3, 4, 7);
  // Corrupt one chunk of member 1: it contributes its salvaged subset.
  {
    std::ifstream is(f.paths[1], std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    std::string bytes = std::move(buf).str();
    bytes[bytes.size() / 2] ^= '\x01';
    std::ofstream os(f.paths[1], std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  const FederatedResult fr = run_federated(
      members_of(f), f.symtab, "group func: count", FederatedOptions{});
  EXPECT_EQ(fr.ledger.count(TraceDisposition::Ok), 2u);
  EXPECT_EQ(fr.ledger.count(TraceDisposition::Salvaged), 1u);
  EXPECT_EQ(fr.ledger.traces[1].state, TraceDisposition::Salvaged);
  EXPECT_EQ(fr.ledger.summary(),
            "traces: 2 ok, 1 salvaged, 0 quarantined, 0 skipped");
}

TEST(Federated, MissingAndQuarantinedMembersAreCountedNotFatal) {
  const std::string dir = fresh_dir("missing");
  const Fleet f = make_fleet(dir, 3, 4, 9);
  std::vector<FederatedTrace> ms = members_of(f);
  ms.push_back({dir + "/gone.flxt", false});   // unreadable -> skipped
  ms.push_back({f.paths[0], true});            // condemned -> quarantined
  const FederatedResult fr =
      run_federated(ms, f.symtab, "group func: count", FederatedOptions{});
  EXPECT_EQ(fr.ledger.count(TraceDisposition::Ok), 3u);
  EXPECT_EQ(fr.ledger.count(TraceDisposition::Skipped), 1u);
  EXPECT_EQ(fr.ledger.count(TraceDisposition::Quarantined), 1u);
  // The skip reason carries path + errno context.
  const TraceLedgerEntry& skipped = fr.ledger.traces[3];
  EXPECT_NE(skipped.detail.find("gone.flxt"), std::string::npos);
  EXPECT_NE(skipped.detail.find("No such file"), std::string::npos);
  // Exactly one state per member.
  EXPECT_EQ(fr.ledger.count(TraceDisposition::Ok) +
                fr.ledger.count(TraceDisposition::Salvaged) +
                fr.ledger.count(TraceDisposition::Quarantined) +
                fr.ledger.count(TraceDisposition::Skipped),
            ms.size());
}

TEST(Federated, EmptyMemberSetYieldsEmptyResult) {
  SymbolTable symtab;
  symtab.add("f", 0x10);
  const FederatedResult fr = run_federated(
      {}, symtab, "group func: count", FederatedOptions{});
  EXPECT_TRUE(fr.result.rows.empty());
  EXPECT_TRUE(fr.ledger.traces.empty());
  EXPECT_EQ(fr.ledger.summary(),
            "traces: 0 ok, 0 salvaged, 0 quarantined, 0 skipped");
}

TEST(Federated, BadPipelineThrowsParseError) {
  SymbolTable symtab;
  EXPECT_THROW((void)run_federated({}, symtab, "frobnicate all",
                                   FederatedOptions{}),
               ParseError);
}

} // namespace
} // namespace fluxtrace::query
