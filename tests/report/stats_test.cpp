#include "fluxtrace/report/stats.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace fluxtrace::report {
namespace {

TEST(Distribution, BasicMoments) {
  Distribution d;
  for (const double x : {10.0, 20.0, 30.0, 40.0, 50.0}) d.add(x);
  EXPECT_DOUBLE_EQ(d.mean(), 30.0);
  EXPECT_NEAR(d.stddev(), 15.811, 1e-3);
  EXPECT_DOUBLE_EQ(d.min(), 10.0);
  EXPECT_DOUBLE_EQ(d.max(), 50.0);
  EXPECT_EQ(d.count(), 5u);
}

TEST(Distribution, EmptyIsZero) {
  Distribution d;
  EXPECT_EQ(d.mean(), 0.0);
  EXPECT_EQ(d.stddev(), 0.0);
  EXPECT_EQ(d.percentile(50), 0.0);
  EXPECT_EQ(d.percentile(0), 0.0);
  EXPECT_EQ(d.percentile(-5), 0.0);
  EXPECT_EQ(d.percentile(200), 0.0);
  EXPECT_EQ(d.p99_over_mean(), 0.0);
}

TEST(Distribution, SingleSampleEveryPercentile) {
  Distribution d;
  d.add(42.0);
  for (const double p : {0.001, 1.0, 50.0, 99.0, 99.9, 100.0}) {
    EXPECT_DOUBLE_EQ(d.percentile(p), 42.0) << "p=" << p;
  }
  EXPECT_EQ(d.stddev(), 0.0);
}

TEST(Distribution, AllEqualSeries) {
  Distribution d;
  for (int i = 0; i < 1000; ++i) d.add(7.5);
  for (const double p : {0.1, 50.0, 99.9, 100.0}) {
    EXPECT_DOUBLE_EQ(d.percentile(p), 7.5) << "p=" << p;
  }
  EXPECT_DOUBLE_EQ(d.p99_over_mean(), 1.0);
}

TEST(Distribution, OutOfDomainPClampsInsteadOfUb) {
  Distribution d;
  for (int i = 1; i <= 10; ++i) d.add(i);
  // p <= 0 lands on the minimum (the old assert let these through in
  // NDEBUG builds and cast a negative ceil() to size_t — UB).
  EXPECT_DOUBLE_EQ(d.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(d.percentile(-3.0), 1.0);
  // p >= 100 lands on the maximum.
  EXPECT_DOUBLE_EQ(d.percentile(100.0), 10.0);
  EXPECT_DOUBLE_EQ(d.percentile(150.0), 10.0);
  // NaN never orders above 0, so it lands on the minimum too.
  EXPECT_DOUBLE_EQ(d.percentile(std::nan("")), 1.0);
}

TEST(Distribution, InexactPercentileHitsIntendedRank) {
  // 99.9 is stored as 99.9000000000000057; the naive rank computation
  // ceils 999.00000000000006 to 1000 and silently returns the maximum.
  // Nearest-rank p99.9 over exactly 1000 samples must be rank 999.
  Distribution d;
  for (int i = 1; i <= 1000; ++i) d.add(i);
  EXPECT_DOUBLE_EQ(d.percentile(99.9), 999.0);
  EXPECT_DOUBLE_EQ(d.percentile(50.0), 500.0);
  EXPECT_DOUBLE_EQ(d.percentile(0.1), 1.0);
  EXPECT_DOUBLE_EQ(d.percentile(100.0), 1000.0);
}

TEST(Distribution, NearestRankPercentiles) {
  Distribution d;
  for (int i = 1; i <= 100; ++i) d.add(i);
  EXPECT_DOUBLE_EQ(d.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(d.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(d.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(d.percentile(1), 1.0);
  EXPECT_DOUBLE_EQ(d.percentile(99.9), 100.0); // ceil(99.9) rank
}

TEST(Distribution, PercentileUnsortedInsertOrder) {
  Distribution d;
  for (const double x : {5.0, 1.0, 4.0, 2.0, 3.0}) d.add(x);
  EXPECT_DOUBLE_EQ(d.percentile(50), 3.0);
  d.add(0.5); // interleave add after query
  EXPECT_DOUBLE_EQ(d.min(), 0.5);
}

TEST(Distribution, TailAmplification) {
  Distribution d;
  for (int i = 0; i < 99; ++i) d.add(1.0);
  d.add(100.0);
  // mean ≈ 1.99, p99 = 1, p100 = 100.
  EXPECT_NEAR(d.p99_over_mean(), 1.0 / 1.99, 0.01);
  EXPECT_DOUBLE_EQ(d.percentile(100), 100.0);
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);  // bucket 0
  h.add(1.9);  // bucket 0
  h.add(2.0);  // bucket 1
  h.add(9.99); // bucket 4
  h.add(10.0); // overflow
  h.add(-1.0); // underflow
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(4), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.underflow(), 1u);
}

TEST(Histogram, RendersRows) {
  Histogram h(0.0, 4.0, 2);
  h.add(1.0);
  h.add(1.5);
  h.add(3.0);
  const std::string s = h.str();
  EXPECT_NE(s.find("##"), std::string::npos);
  EXPECT_NE(s.find(" 2"), std::string::npos);
}

} // namespace
} // namespace fluxtrace::report
