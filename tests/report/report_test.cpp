#include <gtest/gtest.h>

#include <sstream>

#include "fluxtrace/report/chart.hpp"
#include "fluxtrace/report/csv.hpp"
#include "fluxtrace/report/table.hpp"

namespace fluxtrace::report {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.row({"a", "1"});
  t.row({"longer", "22"});
  const std::string s = t.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  // Right-aligned numeric column: "22" ends at the same offset as "value".
  std::istringstream is(s);
  std::string header, sep, r1, r2;
  std::getline(is, header);
  std::getline(is, sep);
  std::getline(is, r1);
  std::getline(is, r2);
  EXPECT_EQ(header.size(), r2.size());
  EXPECT_EQ(sep.find_first_not_of('-'), std::string::npos);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.0, 0), "3");
  EXPECT_EQ(Table::num(std::uint64_t{42}), "42");
}

TEST(BarChart, ScalesToMaxWidth) {
  BarChart c("us", 10);
  c.bar("big", 100.0);
  c.bar("half", 50.0);
  const std::string s = c.str();
  // The 100-value bar renders 10 '#'; the 50-value bar 5.
  EXPECT_NE(s.find("##########"), std::string::npos);
  EXPECT_NE(s.find("#####"), std::string::npos);
  EXPECT_NE(s.find("us"), std::string::npos);
}

TEST(BarChart, EmptyChartPrintsNothing) {
  BarChart c;
  EXPECT_TRUE(c.str().empty());
}

TEST(StackedBarChart, LegendAndSegments) {
  StackedBarChart c("us", 20);
  c.series("f1");
  c.series("f2");
  c.bar("q1", {10.0, 10.0});
  const std::string s = c.str();
  EXPECT_NE(s.find("legend:"), std::string::npos);
  EXPECT_NE(s.find("# = f1"), std::string::npos);
  EXPECT_NE(s.find("= = f2"), std::string::npos);
  EXPECT_NE(s.find("20.00 us"), std::string::npos);
}

TEST(Csv, EscapesSpecialCells) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WritesRows) {
  std::ostringstream os;
  CsvWriter w(os);
  w.header({"reset", "interval_us"});
  w.row({"8000", "1.07"});
  EXPECT_EQ(os.str(), "reset,interval_us\n8000,1.07\n");
}

} // namespace
} // namespace fluxtrace::report
