#include "fluxtrace/report/gantt.hpp"

#include <gtest/gtest.h>

namespace fluxtrace::report {
namespace {

TEST(Gantt, RendersSpansAtScaledPositions) {
  Gantt g(10);
  g.set_range(0, 100);
  g.span("core0", 0, 49, '#');
  g.span("core0", 50, 100, '=');
  const std::string s = g.str();
  EXPECT_EQ(s, "core0 |#####=====|\n");
}

TEST(Gantt, RowsAlignAndKeepCreationOrder) {
  Gantt g(8);
  g.set_range(0, 80);
  g.span("rx", 0, 39, 'r');
  g.span("acl-core", 40, 80, 'a');
  const std::string s = g.str();
  EXPECT_EQ(s,
            "rx       |rrrr....|\n"
            "acl-core |....aaaa|\n");
}

TEST(Gantt, AutoRangeFitsSpans) {
  Gantt g(10);
  g.span("x", 1000, 1999, '#');
  const std::string s = g.str();
  EXPECT_EQ(s, "x |##########|\n");
}

TEST(Gantt, LabelsOverlayWideSpans) {
  Gantt g(20);
  g.set_range(0, 20);
  g.span("w", 0, 20, '#', "job1");
  const std::string s = g.str();
  EXPECT_NE(s.find("job1"), std::string::npos);
  // Narrow spans skip the label rather than corrupt neighbours.
  Gantt n(20);
  n.set_range(0, 200);
  n.span("w", 0, 10, '#', "verylonglabel");
  EXPECT_EQ(n.str().find("verylong"), std::string::npos);
}

TEST(Gantt, SpansOutsideExplicitRangeClippedOrDropped) {
  Gantt g(10);
  g.set_range(100, 200);
  g.span("x", 0, 50, '!');    // entirely before: dropped
  g.span("x", 150, 300, '#'); // clipped at the right edge
  const std::string s = g.str();
  EXPECT_EQ(s.find('!'), std::string::npos);
  EXPECT_NE(s.find('#'), std::string::npos);
}

TEST(Gantt, EmptyPrintsNothing) {
  Gantt g;
  EXPECT_TRUE(g.str().empty());
}

} // namespace
} // namespace fluxtrace::report
