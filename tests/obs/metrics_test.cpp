// Metrics registry: bucket boundaries, exact quantiles on synthetic
// distributions, sharded correctness under threads, and the registry's
// name/kind contract.
#include "fluxtrace/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace fluxtrace::obs {
namespace {

TEST(HistBucket, BoundariesArePowersOfTwo) {
  // Bucket 0 holds the value 0; bucket k (k >= 1) holds [2^(k-1), 2^k-1].
  EXPECT_EQ(hist_bucket(0), 0u);
  EXPECT_EQ(hist_bucket(1), 1u);
  EXPECT_EQ(hist_bucket(2), 2u);
  EXPECT_EQ(hist_bucket(3), 2u);
  EXPECT_EQ(hist_bucket(4), 3u);
  EXPECT_EQ(hist_bucket(7), 3u);
  EXPECT_EQ(hist_bucket(8), 4u);
  EXPECT_EQ(hist_bucket(~std::uint64_t{0}), 64u);

  for (std::size_t i = 0; i < kHistBuckets; ++i) {
    EXPECT_EQ(hist_bucket(hist_bucket_lo(i)), i) << "bucket " << i;
    EXPECT_EQ(hist_bucket(hist_bucket_hi(i)), i) << "bucket " << i;
  }
  EXPECT_EQ(hist_bucket_lo(0), 0u);
  EXPECT_EQ(hist_bucket_hi(0), 0u);
  EXPECT_EQ(hist_bucket_lo(4), 8u);
  EXPECT_EQ(hist_bucket_hi(4), 15u);
  EXPECT_EQ(hist_bucket_hi(64), ~std::uint64_t{0});
}

TEST(Histogram, ObserveFillsExpectedBuckets) {
  Histogram h;
  for (const std::uint64_t v : {0, 1, 2, 3, 4, 7, 8}) h.observe(v);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 7u);
  EXPECT_EQ(s.sum, 25u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 8u);
  EXPECT_EQ(s.buckets[0], 1u); // {0}
  EXPECT_EQ(s.buckets[1], 1u); // {1}
  EXPECT_EQ(s.buckets[2], 2u); // {2, 3}
  EXPECT_EQ(s.buckets[3], 2u); // {4, 7}
  EXPECT_EQ(s.buckets[4], 1u); // {8}
}

TEST(Histogram, EmptySnapshotIsZero) {
  const HistogramSnapshot s = Histogram{}.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.quantile(0.5), 0.0);
}

TEST(Histogram, AllEqualDistributionHasExactQuantiles) {
  // min/max clamping makes every quantile of a constant exact even
  // though the value sits inside a wide bucket.
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.observe(777);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.quantile(0.0), 777.0);
  EXPECT_EQ(s.quantile(0.5), 777.0);
  EXPECT_EQ(s.quantile(0.99), 777.0);
  EXPECT_EQ(s.quantile(1.0), 777.0);
  EXPECT_EQ(s.mean(), 777.0);
}

TEST(Histogram, UniformPowerQuantilesAreExact) {
  // {1..8}, one observation per value. Documented formula:
  //   target rank t = q*count clamped to [1, count];
  //   first bucket whose cumulative count reaches t;
  //   lo + (t - cum_before)/n * (hi - lo + 1), clamped to [min, max].
  // p50: t = 4 -> bucket [4,7] (4 obs, cum_before = 3):
  //   4 + (4-3)/4 * 4 = 5.
  Histogram h;
  for (std::uint64_t v = 1; v <= 8; ++v) h.observe(v);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 5.0);
  // p100 = max exactly.
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 8.0);
  // p0 is the minimum by definition.
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
}

TEST(Histogram, BimodalTailQuantiles) {
  // 90 observations of 10 and 10 of 1000.
  //   bucket(10) = 4 ([8,15], 90 obs); bucket(1000) = 10 ([512,1023], 10).
  //   p50: t = 50 -> bucket 4: 8 + (50-0)/90 * 8 = 8 + 400/90.
  //   p95: t = 95 -> bucket 10: 512 + (95-90)/10 * 512 = 768.
  //   p99: t = 99 -> bucket 10: 512 + (99-90)/10 * 512 = 972.8.
  Histogram h;
  for (int i = 0; i < 90; ++i) h.observe(10);
  for (int i = 0; i < 10; ++i) h.observe(1000);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 8.0 + 400.0 / 90.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.95), 768.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.99), 972.8);
  EXPECT_EQ(s.min, 10u);
  EXPECT_EQ(s.max, 1000u);
}

TEST(Counter, SumsAcrossThreads) {
  Registry reg;
  Counter& c = reg.counter("test.counter");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (std::thread& t : ts) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Gauge, AddAndSubOnDifferentThreadsStillBalance) {
  Registry reg;
  Gauge& g = reg.gauge("test.gauge");
  std::thread up([&g] {
    for (int i = 0; i < 5000; ++i) g.add(2);
  });
  std::thread down([&g] {
    for (int i = 0; i < 5000; ++i) g.sub(1);
  });
  up.join();
  down.join();
  EXPECT_EQ(g.value(), 5000);
}

TEST(Histogram, ConcurrentObserversSumExactly) {
  Registry reg;
  Histogram& h = reg.histogram("test.hist");
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 5000;
  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h.observe(static_cast<std::uint64_t>(t) + 1);
      }
    });
  }
  for (std::thread& t : ts) t.join();
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, kThreads * kPerThread);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 4u);
  EXPECT_EQ(s.sum, (1u + 2u + 3u + 4u) * kPerThread);
}

TEST(Registry, SameNameReturnsSameMetric) {
  Registry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(Registry, NameOwnsOneKind) {
  Registry reg;
  (void)reg.counter("taken");
  EXPECT_THROW((void)reg.gauge("taken"), std::logic_error);
  EXPECT_THROW((void)reg.histogram("taken"), std::logic_error);
  (void)reg.counter("taken"); // same kind is fine
}

TEST(Registry, SnapshotIsNameSortedAndComplete) {
  Registry reg;
  reg.counter("b.count").inc(2);
  reg.counter("a.count").inc(1);
  reg.gauge("depth").add(-4);
  reg.histogram("lat").observe(16);
  const Registry::Snapshot s = reg.snapshot();
  ASSERT_EQ(s.counters.size(), 2u);
  EXPECT_EQ(s.counters[0].first, "a.count");
  EXPECT_EQ(s.counters[0].second, 1u);
  EXPECT_EQ(s.counters[1].first, "b.count");
  EXPECT_EQ(s.counters[1].second, 2u);
  ASSERT_EQ(s.gauges.size(), 1u);
  EXPECT_EQ(s.gauges[0].second, -4);
  ASSERT_EQ(s.histograms.size(), 1u);
  EXPECT_EQ(s.histograms[0].second.count, 1u);
  EXPECT_EQ(s.histograms[0].second.sum, 16u);
}

TEST(Registry, GlobalIsStable) {
  EXPECT_EQ(&Registry::global(), &Registry::global());
  EXPECT_EQ(&metrics(), &Registry::global());
}

} // namespace
} // namespace fluxtrace::obs
