// End-to-end wiring: the instrumented subsystems must move the global
// registry's counters when exercised through their public APIs. Deltas
// (not absolutes) are asserted — the registry is process-wide and other
// tests in this binary touch the same metrics.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "fluxtrace/base/wait.hpp"
#include "fluxtrace/core/integrator.hpp"
#include "fluxtrace/core/online.hpp"
#include "fluxtrace/io/chunked.hpp"
#include "fluxtrace/io/trace_reader.hpp"
#include "fluxtrace/obs/export.hpp"
#include "fluxtrace/obs/metrics.hpp"
#include "fluxtrace/obs/span.hpp"
#include "fluxtrace/rt/spsc_ring.hpp"
#include "fluxtrace/rt/thread_pool.hpp"
#include "fluxtrace/sim/pebs.hpp"

namespace fluxtrace {
namespace {

std::uint64_t counter_value(const char* name) {
  return obs::metrics().counter(name).value();
}

io::TraceData tiny_trace() {
  io::TraceData d;
  Tsc t = 100;
  for (ItemId item = 1; item <= 4; ++item) {
    d.markers.push_back(Marker{t, item, 0, MarkerKind::Enter});
    for (int s = 0; s < 3; ++s) {
      PebsSample smp;
      smp.tsc = t + 10 + static_cast<Tsc>(s) * 20;
      smp.core = 0;
      smp.ip = 0x1000;
      d.samples.push_back(smp);
    }
    t += 100;
    d.markers.push_back(Marker{t, item, 0, MarkerKind::Leave});
    t += 20;
  }
  return d;
}

TEST(ObsIntegration, ThreadPoolCountsTasksAndDrainsDepth) {
  const std::uint64_t tasks_before = counter_value("rt.pool.tasks_executed");
  {
    rt::ThreadPool pool(2);
    pool.parallel_for(32, [](std::size_t) {});
  }
  EXPECT_EQ(counter_value("rt.pool.tasks_executed") - tasks_before, 32u);
  // Every enqueue was matched by a take: the level gauge is back to 0.
  EXPECT_EQ(obs::metrics().gauge("rt.pool.queue_depth").value(), 0);
}

TEST(ObsIntegration, ThreadPoolTimesTasksWhenEnabled) {
  const obs::HistogramSnapshot before =
      obs::metrics().histogram("rt.pool.task_ns").snapshot();
  obs::set_enabled(true);
  {
    rt::ThreadPool pool(2);
    pool.parallel_for(8, [](std::size_t) {});
  }
  obs::set_enabled(false);
  const obs::HistogramSnapshot after =
      obs::metrics().histogram("rt.pool.task_ns").snapshot();
  EXPECT_EQ(after.count - before.count, 8u);
}

TEST(ObsIntegration, TraceReaderCountsReadsBytesAndChunks) {
  const io::TraceData d = tiny_trace();
  std::ostringstream os;
  io::write_trace_v2(os, d, /*records_per_chunk=*/4);
  const std::string bytes = std::move(os).str();

  const std::uint64_t reads_before = counter_value("io.reads");
  const std::uint64_t bytes_before = counter_value("io.bytes_decoded");
  const std::uint64_t chunks_before = counter_value("io.v2.chunks_decoded");
  const io::TraceData rt = io::open_trace_bytes(std::string(bytes)).read();
  EXPECT_EQ(rt, d);
  EXPECT_EQ(counter_value("io.reads") - reads_before, 1u);
  EXPECT_EQ(counter_value("io.bytes_decoded") - bytes_before, bytes.size());
  // Sequential read never takes the parallel chunk path.
  EXPECT_EQ(counter_value("io.v2.chunks_decoded"), chunks_before);

  const io::TraceData par =
      io::open_trace_bytes(std::string(bytes)).read_parallel(2);
  EXPECT_EQ(par, d);
  EXPECT_EQ(counter_value("io.reads") - reads_before, 2u);
  // 8 markers / 4 per chunk + 12 samples / 4 per chunk = 2 + 3 chunks.
  EXPECT_EQ(counter_value("io.v2.chunks_decoded") - chunks_before, 5u);
}

TEST(ObsIntegration, CorruptParallelReadCountsFallback) {
  const io::TraceData d = tiny_trace();
  std::ostringstream os;
  io::write_trace_v2(os, d, /*records_per_chunk=*/4);
  std::string bytes = std::move(os).str();
  bytes.resize(bytes.size() - 1); // torn eof chunk -> index pass bails

  const std::uint64_t fb_before = counter_value("io.v2.parallel_fallbacks");
  try {
    (void)io::open_trace_bytes(std::move(bytes)).read_parallel(2);
  } catch (const io::TraceIoError&) {
    // the strict sequential parser may reject the torn file; the
    // fallback was still taken first
  }
  EXPECT_EQ(counter_value("io.v2.parallel_fallbacks") - fb_before, 1u);
}

TEST(ObsIntegration, IntegratorCountsItems) {
  const io::TraceData d = tiny_trace();
  SymbolTable symtab;
  (void)symtab.add("fn", 0x4000);
  const std::uint64_t items_before = counter_value("core.integrate.items");
  const core::TraceTable table =
      core::TraceIntegrator(symtab).integrate(d.markers, d.samples);
  EXPECT_EQ(table.items().size(), 4u);
  EXPECT_EQ(counter_value("core.integrate.items") - items_before, 4u);
}

TEST(ObsIntegration, OnlineTracerCountsFinalizedItems) {
  SymbolTable symtab;
  (void)symtab.add("fn", 0x4000);
  const std::uint64_t items_before = counter_value("core.online.items");
  const std::uint64_t lost_before = counter_value("core.online.samples_lost");
  core::OnlineTracer ot(symtab);
  const io::TraceData d = tiny_trace();
  std::size_t si = 0;
  for (const Marker& m : d.markers) {
    ot.on_marker(m);
    while (si < d.samples.size() && d.samples[si].tsc <= m.tsc) {
      ot.on_sample(d.samples[si++]);
    }
  }
  ot.on_sample_lost(SampleLoss{0, 99999});
  ot.finish();
  EXPECT_EQ(counter_value("core.online.items") - items_before, 4u);
  EXPECT_EQ(counter_value("core.online.samples_lost") - lost_before, 1u);
}

TEST(ObsIntegration, PebsDriverCountsDrainsAndEmitsVirtualSpan) {
  const std::uint64_t drains_before = counter_value("sim.pebs.drains");
  const std::uint64_t samples_before = counter_value("sim.pebs.samples");
  obs::set_enabled(true);
  (void)obs::SpanLog::global().drain();

  const CpuSpec spec;
  sim::PebsUnit unit;
  sim::PebsConfig cfg;
  cfg.buffer_capacity = 4;
  unit.configure(cfg);
  RegisterFile regs;
  bool full = false;
  for (Tsc t = 1; !full; ++t) full = unit.take_sample(t, 0x1000, regs);
  sim::PebsDriver driver(spec);
  driver.on_buffer_full(unit, /*core=*/2, /*now=*/1000);

  obs::set_enabled(false);
  EXPECT_EQ(counter_value("sim.pebs.drains") - drains_before, 1u);
  EXPECT_EQ(counter_value("sim.pebs.samples") - samples_before, 4u);
  const std::vector<obs::SpanEvent> spans = obs::SpanLog::global().drain();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(std::string(spans[0].name), "sim.pebs.drain");
  EXPECT_EQ(spans[0].clock, obs::SpanClock::VirtualTsc);
  EXPECT_EQ(spans[0].track, 2u);
  EXPECT_EQ(spans[0].begin, 1000u);
  EXPECT_GT(spans[0].end, spans[0].begin);
}

TEST(ObsIntegration, WaitEdgeHookCountsStallsByCause) {
  const std::uint64_t full0 = counter_value("rt.ring.full_stalls");
  const std::uint64_t empty0 = counter_value("rt.ring.empty_stalls");
  const std::uint64_t bp0 = counter_value("session.backpressure_waits");

  // The seam layered systems use: base::WaitLog records, the obs hook
  // (installed by sim::Machine, here directly) buckets by cause.
  WaitLog log;
  log.set_hook(&obs::count_wait_edge);
  WaitEdge e;
  e.cause = WaitCause::RingFull;
  log.record(e);
  e.cause = WaitCause::RingEmpty;
  log.record(e);
  log.record(e);
  e.cause = WaitCause::SinkBackpressure;
  log.record(e);
  e.cause = WaitCause::Shed; // shedding is backpressure that gave up
  log.record(e);

  EXPECT_EQ(counter_value("rt.ring.full_stalls") - full0, 1u);
  EXPECT_EQ(counter_value("rt.ring.empty_stalls") - empty0, 2u);
  EXPECT_EQ(counter_value("session.backpressure_waits") - bp0, 2u);

  // The counters ride the ordinary registry: every exporter sees them.
  std::ostringstream prom;
  obs::write_prometheus(prom, obs::metrics().snapshot());
  const std::string text = prom.str();
  EXPECT_NE(text.find("rt_ring_full_stalls"), std::string::npos);
  EXPECT_NE(text.find("rt_ring_empty_stalls"), std::string::npos);
  EXPECT_NE(text.find("session_backpressure_waits"), std::string::npos);
}

// A probed ring inside an instrumented run moves the same counters
// end-to-end: stall the producer side once and the full-stall counter
// steps by exactly one.
TEST(ObsIntegration, RingWaitProbeStepsCountersEndToEnd) {
  const std::uint64_t full0 = counter_value("rt.ring.full_stalls");
  WaitLog log;
  log.set_hook(&obs::count_wait_edge);
  rt::SpscRing<int> ring(2);
  ring.set_wait_probe(rt::RingWaitProbe{&log, nullptr, 1, 0, 1});
  while (ring.push(7)) {
  }
  ASSERT_TRUE(ring.pop().has_value());
  ASSERT_TRUE(ring.push(7));
  EXPECT_EQ(counter_value("rt.ring.full_stalls") - full0, 1u);
}

} // namespace
} // namespace fluxtrace
