// Span self-tracing and the Chrome trace-event export. The export test
// is the contract check the header promises: parse the JSON back with a
// minimal recursive-descent parser and assert every "B" has a matching
// "E" (same name, same pid/tid, properly nested) and that timestamps are
// monotone per track.
#include "fluxtrace/obs/export.hpp"
#include "fluxtrace/obs/metrics.hpp"
#include "fluxtrace/obs/span.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace fluxtrace::obs {
namespace {

// --- minimal JSON parser (objects, arrays, strings, numbers, literals) -

struct Json {
  enum class Type { Null, Bool, Num, Str, Arr, Obj } type = Type::Null;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<Json> arr;
  std::map<std::string, Json> obj;

  const Json& at(const std::string& key) const {
    static const Json null;
    auto it = obj.find(key);
    return it == obj.end() ? null : it->second;
  }
  bool has(const std::string& key) const { return obj.count(key) > 0; }
};

class Parser {
 public:
  explicit Parser(const std::string& s) : s_(s) {}

  Json parse() {
    const Json v = value();
    skip_ws();
    EXPECT_EQ(pos_, s_.size()) << "trailing bytes after JSON value";
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }
  char peek() {
    skip_ws();
    EXPECT_LT(pos_, s_.size()) << "unexpected end of JSON";
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }
  void expect(char c) {
    EXPECT_EQ(peek(), c);
    ++pos_;
  }

  Json value() {
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (c == 't' || c == 'f') return literal_bool();
    if (c == 'n') return literal_null();
    return number();
  }

  Json object() {
    Json v;
    v.type = Json::Type::Obj;
    expect('{');
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      Json key = string_value();
      expect(':');
      v.obj.emplace(std::move(key.str), value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Json array() {
    Json v;
    v.type = Json::Type::Arr;
    expect('[');
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.arr.push_back(value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  Json string_value() {
    Json v;
    v.type = Json::Type::Str;
    expect('"');
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        EXPECT_LT(pos_, s_.size());
        if (s_[pos_] == 'u') {
          pos_ += 4; // \uXXXX — tests only assert presence, not value
          v.str += '?';
        } else {
          v.str += s_[pos_];
        }
      } else {
        v.str += s_[pos_];
      }
      ++pos_;
    }
    expect('"');
    return v;
  }

  Json literal_bool() {
    Json v;
    v.type = Json::Type::Bool;
    if (s_.compare(pos_, 4, "true") == 0) {
      v.b = true;
      pos_ += 4;
    } else {
      EXPECT_EQ(s_.compare(pos_, 5, "false"), 0);
      pos_ += 5;
    }
    return v;
  }

  Json literal_null() {
    EXPECT_EQ(s_.compare(pos_, 4, "null"), 0);
    pos_ += 4;
    return Json{};
  }

  Json number() {
    Json v;
    v.type = Json::Type::Num;
    std::size_t end = pos_;
    while (end < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[end])) != 0 ||
            s_[end] == '-' || s_[end] == '+' || s_[end] == '.' ||
            s_[end] == 'e' || s_[end] == 'E')) {
      ++end;
    }
    EXPECT_GT(end, pos_) << "not a number at byte " << pos_;
    v.num = std::stod(s_.substr(pos_, end - pos_));
    pos_ = end;
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

/// Parse an export and assert the trace-event contract: per (pid, tid),
/// B/E events pair up stack-wise with matching names and non-decreasing
/// timestamps. Returns duration-event count per (pid, tid).
std::map<std::pair<int, int>, int> check_chrome_contract(
    const std::string& json_text) {
  Parser parser(json_text);
  const Json root = parser.parse();
  EXPECT_EQ(root.type, Json::Type::Obj);
  EXPECT_TRUE(root.has("traceEvents"));
  const Json& events = root.at("traceEvents");
  EXPECT_EQ(events.type, Json::Type::Arr);

  struct Open {
    std::string name;
    double ts;
  };
  std::map<std::pair<int, int>, std::vector<Open>> stacks;
  std::map<std::pair<int, int>, double> last_ts;
  std::map<std::pair<int, int>, int> n_events;
  for (const Json& e : events.arr) {
    EXPECT_EQ(e.type, Json::Type::Obj);
    const std::string ph = e.at("ph").str;
    if (ph == "M") continue; // metadata carries no timestamp
    EXPECT_TRUE(ph == "B" || ph == "E") << "unexpected phase " << ph;
    const std::pair<int, int> key{static_cast<int>(e.at("pid").num),
                                  static_cast<int>(e.at("tid").num)};
    const double ts = e.at("ts").num;
    auto lit = last_ts.find(key);
    if (lit != last_ts.end()) {
      EXPECT_GE(ts, lit->second) << "ts must be monotone per track";
    }
    last_ts[key] = ts;
    ++n_events[key];
    std::vector<Open>& stack = stacks[key];
    if (ph == "B") {
      stack.push_back(Open{e.at("name").str, ts});
    } else {
      EXPECT_FALSE(stack.empty()) << "E without open B";
      if (stack.empty()) continue; // ASSERT needs void; bail per-event
      EXPECT_EQ(stack.back().name, e.at("name").str)
          << "E must close the innermost open B";
      EXPECT_GE(ts, stack.back().ts);
      stack.pop_back();
    }
  }
  for (const auto& [key, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << "unclosed B events on pid " << key.first
                               << " tid " << key.second;
  }
  return n_events;
}

std::string export_to_string(std::vector<SpanEvent> spans) {
  std::ostringstream os;
  write_chrome_trace(os, std::move(spans));
  return os.str();
}

TEST(ChromeExport, EmptyTraceIsValidJson) {
  const std::string out = export_to_string({});
  EXPECT_TRUE(check_chrome_contract(out).empty());
}

TEST(ChromeExport, NestedAndDisjointSpansPairCorrectly) {
  // One track: outer [0,100] containing inner [10,40] and inner2
  // [50,60], then a disjoint tail [200,300]. Another track overlaps in
  // time — tracks must be validated independently.
  std::vector<SpanEvent> spans;
  spans.push_back(SpanEvent{"outer", 0, 100000, 0, SpanClock::Steady});
  spans.push_back(SpanEvent{"inner", 10000, 40000, 0, SpanClock::Steady});
  spans.push_back(SpanEvent{"inner2", 50000, 60000, 0, SpanClock::Steady});
  spans.push_back(SpanEvent{"tail", 200000, 300000, 0, SpanClock::Steady});
  spans.push_back(SpanEvent{"other_thread", 5000, 250000, 1,
                            SpanClock::Steady});
  const auto n = check_chrome_contract(export_to_string(std::move(spans)));
  EXPECT_EQ(n.at({1, 0}), 8); // 4 spans -> 4 B + 4 E
  EXPECT_EQ(n.at({1, 1}), 2);
}

TEST(ChromeExport, ShuffledInputStillNestsPerTrack) {
  // The exporter must sort; hand it spans in adversarial order.
  std::vector<SpanEvent> spans;
  spans.push_back(SpanEvent{"c", 50000, 60000, 0, SpanClock::Steady});
  spans.push_back(SpanEvent{"a", 0, 100000, 0, SpanClock::Steady});
  spans.push_back(SpanEvent{"b", 10000, 40000, 0, SpanClock::Steady});
  const auto n = check_chrome_contract(export_to_string(std::move(spans)));
  EXPECT_EQ(n.at({1, 0}), 6);
}

TEST(ChromeExport, VirtualSpansLiveInSeparateProcess) {
  std::vector<SpanEvent> spans;
  spans.push_back(SpanEvent{"io.read", 1000, 2000, 0, SpanClock::Steady});
  spans.push_back(
      SpanEvent{"sim.pebs.drain", 500, 900, 3, SpanClock::VirtualTsc});
  const std::string out = export_to_string(std::move(spans));
  const auto n = check_chrome_contract(out);
  EXPECT_EQ(n.at({1, 0}), 2); // steady clock -> pid 1
  EXPECT_EQ(n.at({2, 3}), 2); // virtual tsc -> pid 2, tid = core
  EXPECT_NE(out.find("fluxtrace sim (virtual tsc)"), std::string::npos);
  EXPECT_NE(out.find("core 3"), std::string::npos);
}

TEST(ChromeExport, EscapesNamesAndSurvivesReparse) {
  std::vector<SpanEvent> spans;
  spans.push_back(
      SpanEvent{"weird\"name\\with\nstuff", 0, 10, 0, SpanClock::Steady});
  const auto n = check_chrome_contract(export_to_string(std::move(spans)));
  EXPECT_EQ(n.at({1, 0}), 2);
}

// --- the live span log ------------------------------------------------

TEST(SpanLog, ScopedSpansRecordNestedIntervals) {
  set_enabled(true);
  (void)SpanLog::global().drain(); // clean slate
  {
    OBS_SPAN("outer");
    OBS_SPAN("inner"); // same scope: strictly inside outer's lifetime
  }
  set_enabled(false);
  const std::vector<SpanEvent> spans = SpanLog::global().drain();
  ASSERT_EQ(spans.size(), 2u);
  // Destruction order records inner first.
  const SpanEvent& inner =
      std::string(spans[0].name) == "inner" ? spans[0] : spans[1];
  const SpanEvent& outer =
      std::string(spans[0].name) == "inner" ? spans[1] : spans[0];
  EXPECT_EQ(std::string(outer.name), "outer");
  EXPECT_EQ(inner.clock, SpanClock::Steady);
  EXPECT_GE(inner.begin, outer.begin);
  EXPECT_LE(inner.end, outer.end);
  EXPECT_EQ(inner.track, outer.track);
  // And the export of the real recording passes the contract check.
  std::vector<SpanEvent> copy = {outer, inner};
  check_chrome_contract(export_to_string(std::move(copy)));
}

TEST(SpanLog, DisabledSpansRecordNothing) {
  set_enabled(false);
  (void)SpanLog::global().drain();
  {
    OBS_SPAN("should_not_appear");
  }
  EXPECT_TRUE(SpanLog::global().drain().empty());
}

TEST(SpanLog, FullRingDropsAndCounts) {
  set_enabled(true);
  (void)SpanLog::global().drain();
  // rt::SpscRing(min_capacity) rounds up to a power-of-two slot count
  // with one full/empty sentinel: min_capacity 4 -> 8 slots, 7 usable.
  SpanLog::global().set_thread_capacity(4);
  const std::uint64_t dropped_before = SpanLog::global().dropped();
  // A fresh thread registers a fresh (tiny) ring; nobody drains while
  // it floods, so all but the first 7 spans must be dropped — and
  // counted, never blocked on.
  std::thread flood([] {
    for (int i = 0; i < 100; ++i) {
      SpanLog::global().record("flood", 0, 1);
    }
  });
  flood.join();
  SpanLog::global().set_thread_capacity(8192); // restore for later tests
  set_enabled(false);
  const std::uint64_t dropped = SpanLog::global().dropped() - dropped_before;
  const std::vector<SpanEvent> spans = SpanLog::global().drain();
  EXPECT_EQ(dropped, 93u);
  EXPECT_EQ(spans.size(), 7u);
}

TEST(SpanLog, VirtualRecordKeepsCoreAsTrack) {
  set_enabled(true);
  (void)SpanLog::global().drain();
  SpanLog::global().record_virtual("drain", 100, 200, 7);
  set_enabled(false);
  const std::vector<SpanEvent> spans = SpanLog::global().drain();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].clock, SpanClock::VirtualTsc);
  EXPECT_EQ(spans[0].track, 7u);
  EXPECT_EQ(spans[0].begin, 100u);
  EXPECT_EQ(spans[0].end, 200u);
}

} // namespace
} // namespace fluxtrace::obs
