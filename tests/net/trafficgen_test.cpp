#include "fluxtrace/net/trafficgen.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "fluxtrace/net/nic.hpp"

namespace fluxtrace::net {
namespace {

/// A trivial device under test: polls NIC0, spends `uops` per packet,
/// forwards to NIC1.
class EchoDut final : public sim::Task {
 public:
  EchoDut(SymbolId fn, Nic& in, Nic& out, std::uint64_t uops,
          std::uint64_t expected)
      : fn_(fn), in_(in), out_(out), uops_(uops), expected_(expected) {}

  sim::StepStatus step(sim::Cpu& cpu) override {
    if (done_ >= expected_) return sim::StepStatus::Done;
    auto p = in_.rx_poll(cpu.now());
    if (!p.has_value()) return sim::StepStatus::Idle;
    cpu.exec(fn_, uops_);
    out_.tx_push(std::move(*p), cpu.now());
    ++done_;
    return sim::StepStatus::Progress;
  }

 private:
  SymbolId fn_;
  Nic& in_;
  Nic& out_;
  std::uint64_t uops_;
  std::uint64_t expected_;
  std::uint64_t done_ = 0;
};

struct TgFixture : ::testing::Test {
  TgFixture() { fn = symtab.add("dut_process"); }
  SymbolTable symtab;
  SymbolId fn;
  Nic nic0, nic1;
};

TEST_F(TgFixture, NicGatesDeliveryOnArrivalTime) {
  Packet p;
  p.id = 1;
  nic0.deliver(p, /*arrival=*/1000);
  EXPECT_FALSE(nic0.rx_poll(999).has_value());
  auto got = nic0.rx_poll(1000);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->id, 1u);
}

TEST_F(TgFixture, AllPacketsRoundTrip) {
  sim::Machine m(symtab);
  TrafficGenConfig cfg;
  cfg.total_packets = 50;
  cfg.inter_packet_gap_ns = 5000;
  TrafficGen tg(cfg, nic0, nic1, {FlowKey{1, 2, 3, 4}});
  EchoDut dut(fn, nic0, nic1, 3000, 50);
  m.attach(0, tg);
  m.attach(1, dut);
  const auto r = m.run();
  EXPECT_TRUE(r.all_done);
  EXPECT_TRUE(tg.complete());
  EXPECT_EQ(tg.records().size(), 50u);
}

TEST_F(TgFixture, LatencyIncludesWireAndProcessing) {
  sim::Machine m(symtab);
  TrafficGenConfig cfg;
  cfg.total_packets = 10;
  cfg.inter_packet_gap_ns = 50000; // no queueing
  cfg.wire_latency_ns = 500;
  TrafficGen tg(cfg, nic0, nic1, {FlowKey{1, 2, 3, 4}});
  EchoDut dut(fn, nic0, nic1, 7500, 10); // 3000 cycles = 1 us at 3 GHz
  m.attach(0, tg);
  m.attach(1, dut);
  m.run();

  const auto& spec = m.spec();
  for (const auto& rec : tg.records()) {
    const double us = spec.us(rec.latency());
    // 2 × 0.5 us wire + 1 us processing + up to one idle-grain of poll
    // delay on the DUT side.
    EXPECT_GE(us, 2.0);
    EXPECT_LE(us, 2.2);
  }
}

TEST_F(TgFixture, FlowsCycleRoundRobin) {
  sim::Machine m(symtab);
  TrafficGenConfig cfg;
  cfg.total_packets = 9;
  TrafficGen tg(cfg, nic0, nic1,
                {FlowKey{1, 0, 0, 0}, FlowKey{2, 0, 0, 0}, FlowKey{3, 0, 0, 0}});
  EchoDut dut(fn, nic0, nic1, 100, 9);
  m.attach(0, tg);
  m.attach(1, dut);
  m.run();
  ASSERT_EQ(tg.records().size(), 9u);
  std::size_t per_flow[3] = {0, 0, 0};
  for (const auto& rec : tg.records()) {
    ASSERT_LT(rec.flow_idx, 3u);
    ++per_flow[rec.flow_idx];
  }
  EXPECT_EQ(per_flow[0], 3u);
  EXPECT_EQ(per_flow[1], 3u);
  EXPECT_EQ(per_flow[2], 3u);
}

TEST_F(TgFixture, PacingSpacesSends) {
  sim::Machine m(symtab);
  TrafficGenConfig cfg;
  cfg.total_packets = 5;
  cfg.inter_packet_gap_ns = 10000;
  TrafficGen tg(cfg, nic0, nic1, {FlowKey{}});
  EchoDut dut(fn, nic0, nic1, 100, 5);
  m.attach(0, tg);
  m.attach(1, dut);
  m.run();
  ASSERT_EQ(tg.records().size(), 5u);
  // Sent timestamps are >= one gap apart.
  std::vector<Tsc> sends;
  for (const auto& rec : tg.records()) sends.push_back(rec.sent);
  std::sort(sends.begin(), sends.end());
  for (std::size_t i = 1; i < sends.size(); ++i) {
    EXPECT_GE(sends[i] - sends[i - 1], m.spec().cycles(10000.0));
  }
}

TEST_F(TgFixture, BurstsArriveBackToBack) {
  sim::Machine m(symtab);
  TrafficGenConfig cfg;
  cfg.total_packets = 12;
  cfg.burst_size = 4;
  cfg.inter_packet_gap_ns = 50000;
  cfg.intra_burst_gap_ns = 100;
  TrafficGen tg(cfg, nic0, nic1, {FlowKey{}});
  EchoDut dut(fn, nic0, nic1, 100, 12);
  m.attach(0, tg);
  m.attach(1, dut);
  m.run();
  ASSERT_EQ(tg.records().size(), 12u);
  std::vector<Tsc> sends;
  for (const auto& rec : tg.records()) sends.push_back(rec.sent);
  std::sort(sends.begin(), sends.end());
  // Within a burst: ~100 ns spacing; between bursts: >= 50 us.
  const Tsc intra = m.spec().cycles(100.0);
  const Tsc inter = m.spec().cycles(50000.0);
  for (std::size_t i = 1; i < sends.size(); ++i) {
    const Tsc gap = sends[i] - sends[i - 1];
    if (i % 4 == 0) {
      EXPECT_GE(gap, inter) << i;
    } else {
      EXPECT_EQ(gap, intra) << i;
    }
  }
}

TEST_F(TgFixture, BacklogBuildsWhenDutIsSlow) {
  sim::Machine m(symtab);
  TrafficGenConfig cfg;
  cfg.total_packets = 20;
  cfg.inter_packet_gap_ns = 1000;       // 1 us apart
  TrafficGen tg(cfg, nic0, nic1, {FlowKey{}});
  EchoDut dut(fn, nic0, nic1, 75000, 20); // 10 us per packet
  m.attach(0, tg);
  m.attach(1, dut);
  m.run();
  ASSERT_EQ(tg.records().size(), 20u);
  // Later packets queue behind earlier ones: latency grows monotonically
  // (modulo the first).
  const auto& recs = tg.records();
  EXPECT_GT(recs.back().latency(), 5 * recs.front().latency());
}

} // namespace
} // namespace fluxtrace::net
