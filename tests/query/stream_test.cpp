// Streaming query execution (stream.hpp): the `--follow` half of the
// engine. The contract under test: partials merged in any split agree
// with a single pass (the commutative algebra engine.cpp now shares);
// a StreamingQuery fed a trace batch-by-batch snapshots to the same
// group-mode table the batch engine computes; and the continuously
// evaluated `outliers` stage raises its alert in the very ingest() call
// that closes the offending marker window.
#include "fluxtrace/query/stream.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>

#include "fluxtrace/query/engine.hpp"

namespace fluxtrace::query {
namespace {

/// Same deterministic workload the engine tests use: `n_items` marker
/// windows alternating over two cores, three functions. Each item's work
/// lands in exactly one window, so the streamed per-window dur equals
/// the batch engine's cross-trace span.
struct Workload {
  SymbolTable symtab;
  io::TraceData data;
};

Workload make_workload(std::size_t n_items, std::size_t samples_per_item,
                       std::uint64_t seed = 1) {
  Workload w;
  const SymbolId f0 = w.symtab.add("app::parse", 0x400);
  const SymbolId f1 = w.symtab.add("app::lookup", 0x400);
  const SymbolId f2 = w.symtab.add("app::transform", 0x400);
  const SymbolId fns[3] = {f0, f1, f2};
  auto rnd = [state = seed]() mutable {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 11;
  };
  for (std::size_t i = 0; i < n_items; ++i) {
    const std::uint32_t core = static_cast<std::uint32_t>(i % 2);
    const Tsc t0 = 10000 * (i + 1);
    const Tsc t1 = t0 + 8000;
    w.data.markers.push_back({t0, i, core, MarkerKind::Enter});
    for (std::size_t s = 0; s < samples_per_item; ++s) {
      PebsSample smp;
      smp.tsc = t0 + 1 + (s * 7900) / samples_per_item;
      smp.core = core;
      smp.ip = w.symtab.ip_at(fns[rnd() % 3], 0.5);
      w.data.samples.push_back(smp);
    }
    w.data.markers.push_back({t1, i, core, MarkerKind::Leave});
  }
  return w;
}

/// Feed a workload to a StreamingQuery the way a follower delivers it:
/// in time order, one batch per item window (enter, samples, leave) —
/// the interleaving a chunked live file produces. Returns all windows.
std::vector<WindowResult> stream_by_window(StreamingQuery& sq,
                                           const Workload& w) {
  std::vector<WindowResult> all;
  std::size_t si = 0;
  for (std::size_t mi = 0; mi + 1 < w.data.markers.size(); mi += 2) {
    io::TraceData batch;
    batch.markers.push_back(w.data.markers[mi]); // enter
    const Tsc leave = w.data.markers[mi + 1].tsc;
    while (si < w.data.samples.size() && w.data.samples[si].tsc <= leave) {
      batch.samples.push_back(w.data.samples[si]);
      ++si;
    }
    batch.markers.push_back(w.data.markers[mi + 1]); // leave
    auto ws = sq.ingest(batch);
    all.insert(all.end(), std::make_move_iterator(ws.begin()),
               std::make_move_iterator(ws.end()));
  }
  auto ws = sq.flush();
  all.insert(all.end(), std::make_move_iterator(ws.begin()),
             std::make_move_iterator(ws.end()));
  return all;
}

// --- partials algebra --------------------------------------------------

TEST(AggPartial, SplitMergeMatchesSingleStream) {
  const std::int64_t vals[] = {5, -3, 17, 17, 0, 42, 9, 1, 30, -8, 6, 11};
  const Aggregate kinds[] = {
      {Aggregate::Kind::Sum, Field::Ts}, {Aggregate::Kind::Min, Field::Ts},
      {Aggregate::Kind::Max, Field::Ts}, {Aggregate::Kind::P50, Field::Ts},
      {Aggregate::Kind::P95, Field::Ts}, {Aggregate::Kind::P99, Field::Ts},
  };
  const std::size_t n = std::size(vals);
  for (const Aggregate& agg : kinds) {
    AggPartial whole;
    for (const std::int64_t v : vals) whole.observe(agg, v);
    const std::int64_t want = whole.finish(agg, n);
    // Every split point, including the empty prefix/suffix.
    for (std::size_t cut = 0; cut <= n; ++cut) {
      AggPartial lo;
      AggPartial hi;
      for (std::size_t i = 0; i < cut; ++i) lo.observe(agg, vals[i]);
      for (std::size_t i = cut; i < n; ++i) hi.observe(agg, vals[i]);
      lo.merge(agg, std::move(hi));
      EXPECT_EQ(lo.finish(agg, n), want)
          << "agg " << agg.name() << " cut " << cut;
    }
  }
}

TEST(AggPartial, MergeOrderIrrelevant) {
  const Aggregate agg{Aggregate::Kind::P95, Field::Dur};
  AggPartial a;
  AggPartial b;
  AggPartial c;
  for (std::int64_t v : {3, 1, 4}) a.observe(agg, v);
  for (std::int64_t v : {1, 5, 9, 2}) b.observe(agg, v);
  for (std::int64_t v : {6, 5}) c.observe(agg, v);

  AggPartial ab = a; // (a + b) + c
  {
    AggPartial tmp = b;
    ab.merge(agg, std::move(tmp));
    AggPartial tmp2 = c;
    ab.merge(agg, std::move(tmp2));
  }
  AggPartial cb = c; // (c + b) + a
  {
    AggPartial tmp = b;
    cb.merge(agg, std::move(tmp));
    AggPartial tmp2 = a;
    cb.merge(agg, std::move(tmp2));
  }
  EXPECT_EQ(ab.finish(agg, 9), cb.finish(agg, 9));
}

// --- streaming vs batch ------------------------------------------------

TEST(StreamingQuery, GroupSnapshotMatchesBatchEngine) {
  const Workload w = make_workload(6, 10);
  EngineOptions opts;
  opts.threads = 1;
  QueryEngine eng = QueryEngine::from_data(w.data, w.symtab, opts);
  const char* queries[] = {
      "group item: count, sum(ts), min(ts), max(ts), p50(ts)",
      "filter core == 1 | group item, func: count, sum(dur), p95(ts)",
      "group func: count | top 2 by count",
      "filter ts % 2 == 0 | group core: count, max(ts)",
  };
  for (const char* q : queries) {
    StreamingQuery sq(parse_query(q, &w.symtab), w.symtab);
    stream_by_window(sq, w);
    const QueryResult live = sq.snapshot();
    const QueryResult batch = eng.run(q);
    EXPECT_EQ(live.columns, batch.columns) << q;
    EXPECT_EQ(live.rows, batch.rows) << q;
  }
}

TEST(StreamingQuery, RowModeKeepsFilteredTail) {
  const Workload w = make_workload(4, 6);
  StreamOptions so;
  so.row_tail = 8;
  StreamingQuery sq(parse_query("filter core == 0 | select ts, core",
                                &w.symtab),
                    w.symtab, so);
  stream_by_window(sq, w);
  const QueryResult res = sq.snapshot();
  ASSERT_EQ(res.columns, (std::vector<std::string>{"ts", "core"}));
  EXPECT_EQ(res.rows.size(), 8u) << "tail capped at row_tail";
  for (const auto& row : res.rows) EXPECT_EQ(row[1], Cell::of_int(0));
  EXPECT_GT(sq.stats().rows_matched, 8u);
}

TEST(StreamingQuery, SnapshotIsNonDestructive) {
  const Workload w = make_workload(5, 8);
  StreamingQuery sq(parse_query("group item: count, p95(ts)", &w.symtab),
                    w.symtab);
  stream_by_window(sq, w);
  const QueryResult a = sq.snapshot();
  const QueryResult b = sq.snapshot(); // finish() must act on copies
  EXPECT_EQ(a.rows, b.rows);
  EXPECT_EQ(a.columns, b.columns);
}

// --- continuous outlier detection --------------------------------------

TEST(StreamingQuery, AlertRaisedInIngestThatClosesTheWindow) {
  // Seven ordinary windows of app::work, then one an order of magnitude
  // slower: the alert must ride on the ingest() call that delivers the
  // slow window's leave marker — not a later poll, not only at flush.
  SymbolTable symtab;
  const SymbolId fn = symtab.add("app::work", 0x400);
  StreamingQuery sq(parse_query("outliers k=2.0 warmup=3", &symtab), symtab);

  std::uint64_t alerts_before_slow = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    const bool slow = (i == 7);
    const Tsc t0 = 100000 * (i + 1);
    const Tsc span = slow ? 50000 : 1000 + 10 * static_cast<Tsc>(i);
    io::TraceData batch;
    batch.markers.push_back({t0, i, 0, MarkerKind::Enter});
    for (std::size_t s = 0; s < 4; ++s) {
      PebsSample smp;
      smp.tsc = t0 + 1 + (s * span) / 3;
      smp.core = 0;
      smp.ip = symtab.ip_at(fn, 0.5);
      batch.samples.push_back(smp);
    }
    batch.markers.push_back({t0 + span + 10, i, 0, MarkerKind::Leave});
    const auto windows = sq.ingest(batch);
    ASSERT_EQ(windows.size(), 1u) << "window " << i << " must seal in its "
                                  << "own ingest (leave advances watermark)";
    if (!slow) {
      alerts_before_slow += windows[0].alerts.size();
    } else {
      ASSERT_EQ(windows[0].alerts.size(), 1u)
          << "the slow window's alert must arrive with its close";
      const StreamAlert& a = windows[0].alerts[0];
      EXPECT_EQ(a.item, 7u);
      EXPECT_EQ(a.func, fn);
      EXPECT_GT(a.elapsed, 10000u);
      EXPECT_GT(a.sigmas, 2.0);
    }
  }
  EXPECT_EQ(alerts_before_slow, 0u) << "ordinary windows must not alert";
  EXPECT_EQ(sq.stats().alerts, 1u);

  // The snapshot reports the same anomaly in batch-engine columns.
  const QueryResult res = sq.snapshot();
  ASSERT_EQ(res.columns,
            (std::vector<std::string>{"item", "func", "elapsed", "mean",
                                      "sigma", "sigmas"}));
  ASSERT_EQ(res.rows.size(), 1u);
  EXPECT_EQ(res.rows[0][0], Cell::of_int(7));
  EXPECT_EQ(res.rows[0][1].s, "app::work");
}

// --- stream lifecycle ---------------------------------------------------

TEST(StreamingQuery, OutOfOrderSamplesWaitForWatermark) {
  // A window's leave arrives before its last sample (cross-chunk skew on
  // one core cannot happen — the writer encodes in order — but a sample
  // chunk can land in the batch *after* the marker chunk). The window
  // must not seal until the watermark passes its leave.
  SymbolTable symtab;
  const SymbolId fn = symtab.add("f", 0x100);
  StreamingQuery sq(parse_query("group item: count", &symtab), symtab);

  io::TraceData b1;
  b1.markers.push_back({100, 1, 0, MarkerKind::Enter});
  b1.markers.push_back({200, 1, 0, MarkerKind::Leave});
  auto w1 = sq.ingest(b1); // watermark = 200 = leave: seals immediately
  ASSERT_EQ(w1.size(), 1u);

  io::TraceData b2;
  b2.markers.push_back({300, 2, 0, MarkerKind::Enter});
  PebsSample s;
  s.tsc = 350;
  s.core = 0;
  s.ip = symtab.ip_at(fn, 0.5);
  b2.samples.push_back(s);
  auto w2 = sq.ingest(b2);
  EXPECT_TRUE(w2.empty()) << "no leave yet";

  io::TraceData b3;
  b3.markers.push_back({400, 2, 0, MarkerKind::Leave});
  auto w3 = sq.ingest(b3);
  ASSERT_EQ(w3.size(), 1u);
  EXPECT_EQ(w3[0].rows, 1u) << "the buffered sample attributed at seal";
}

TEST(StreamingQuery, FlushClosesOpenWindowsAtWatermark) {
  SymbolTable symtab;
  const SymbolId fn = symtab.add("f", 0x100);
  StreamingQuery sq(parse_query("group item: count", &symtab), symtab);

  io::TraceData b;
  b.markers.push_back({100, 9, 0, MarkerKind::Enter}); // never leaves
  for (std::size_t i = 0; i < 3; ++i) {
    PebsSample s;
    s.tsc = 150 + i * 10;
    s.core = 0;
    s.ip = symtab.ip_at(fn, 0.5);
    b.samples.push_back(s);
  }
  EXPECT_TRUE(sq.ingest(b).empty());

  const auto windows = sq.flush();
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].item, 9u);
  EXPECT_EQ(windows[0].rows, 3u);
  EXPECT_EQ(sq.stats().enters_unmatched, 1u);
  EXPECT_EQ(sq.stats().windows_closed, 1u);
}

} // namespace
} // namespace fluxtrace::query
