// Query engine: pipeline parsing, execution semantics against a
// hand-checkable reference (the columnar store itself), the bit-identity
// of parallel and sequential scans on fuzzed traces, and the FLXI
// pruning contract — pruned scans read fewer chunks and return exactly
// the full-scan result, and a hostile/stale/truncated sidecar silently
// falls back to the full scan.
#include "fluxtrace/query/engine.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>

#include "fluxtrace/io/chunked.hpp"
#include "fluxtrace/io/trace_file.hpp"

namespace fluxtrace::query {
namespace {

/// Deterministic synthetic workload: `n_items` marker windows on two
/// cores, each containing samples spread over three functions. The ips
/// and timestamps come from a seeded LCG, so every test run sees the
/// same trace for the same seed.
struct Workload {
  SymbolTable symtab;
  io::TraceData data;
};

Workload make_workload(std::size_t n_items, std::size_t samples_per_item,
                       std::uint64_t seed = 1) {
  Workload w;
  const SymbolId f0 = w.symtab.add("app::parse", 0x400);
  const SymbolId f1 = w.symtab.add("app::lookup", 0x400);
  const SymbolId f2 = w.symtab.add("app::transform", 0x400);
  const SymbolId fns[3] = {f0, f1, f2};
  auto rnd = [state = seed]() mutable {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 11;
  };
  for (std::size_t i = 0; i < n_items; ++i) {
    const std::uint32_t core = static_cast<std::uint32_t>(i % 2);
    const Tsc t0 = 10000 * (i + 1);
    const Tsc t1 = t0 + 8000;
    w.data.markers.push_back({t0, i, core, MarkerKind::Enter});
    for (std::size_t s = 0; s < samples_per_item; ++s) {
      PebsSample smp;
      smp.tsc = t0 + 1 + (s * 7900) / samples_per_item;
      smp.core = core;
      smp.ip = w.symtab.ip_at(fns[rnd() % 3], 0.5);
      w.data.samples.push_back(smp);
    }
    w.data.markers.push_back({t1, i, core, MarkerKind::Leave});
  }
  return w;
}

/// Reference row-counting straight off the columnar store, through the
/// scalar interpreter (not the batch kernels the engine scans with).
std::size_t count_matching(const Workload& w, const std::string& pred) {
  const ColumnarTrace t = ColumnarTrace::build(w.data, w.symtab);
  const auto e = parse_expr(pred, &w.symtab);
  std::size_t n = 0;
  FieldVals row;
  for (std::size_t i = 0; i < t.rows(); ++i) {
    for (std::size_t f = 0; f < kNumFields; ++f) {
      row.v[f] = t.col(static_cast<Field>(f))[i];
    }
    if (e->test(row)) ++n;
  }
  return n;
}

TEST(ParseQuery, EmptyQueryIsSelectAll) {
  const Query q = parse_query("", nullptr);
  EXPECT_EQ(q.filter, nullptr);
  EXPECT_TRUE(q.select.empty());
  EXPECT_TRUE(q.aggs.empty());
  EXPECT_FALSE(q.outliers.has_value());
}

TEST(ParseQuery, FullPipelineParses) {
  SymbolTable symtab;
  symtab.add("f");
  const Query q = parse_query(
      "filter item >= 0 && func == \"f\" | group item, func: "
      "count, sum(dur), p99(ts) | top 3 by count | limit 2",
      &symtab);
  ASSERT_NE(q.filter, nullptr);
  EXPECT_EQ(q.group_keys.size(), 2u);
  ASSERT_EQ(q.aggs.size(), 3u);
  EXPECT_EQ(q.aggs[0].name(), "count");
  EXPECT_EQ(q.aggs[1].name(), "sum_dur");
  EXPECT_EQ(q.aggs[2].name(), "p99_ts");
  ASSERT_TRUE(q.topk.has_value());
  EXPECT_EQ(q.topk->n, 3u);
  EXPECT_EQ(q.topk->by, "count");
  ASSERT_TRUE(q.limit.has_value());
  EXPECT_EQ(*q.limit, 2u);
  EXPECT_TRUE(q.references_dur());
}

TEST(ParseQuery, RejectsBadPipelines) {
  const char* bad[] = {
      "select item | select func",      // duplicate stage
      "limit 5 | filter item == 1",     // out of canonical order
      "top 3 by count | group item: count", // out of order
      "select item | group item: count",    // mutually exclusive
      "group item: count | outliers",       // mutually exclusive
      "group item: bogus(dur)",             // unknown aggregate
      "group item: sum",                    // sum needs (field)
      "group item count",                   // missing colon
      "outliers k",                         // missing = value
      "top by count",                       // missing N
      "top 3 count",                        // missing 'by'
      "frobnicate item",                    // unknown stage
      "filter item == 1 |",                 // trailing pipe
      "| filter item == 1",                 // leading pipe
  };
  for (const char* text : bad) {
    EXPECT_THROW((void)parse_query(text, nullptr), ParseError) << text;
  }
}

TEST(QueryEngineTest, RowModeProjectsInOrder) {
  const Workload w = make_workload(4, 6);
  EngineOptions opts;
  opts.threads = 1;
  QueryEngine eng = QueryEngine::from_data(w.data, w.symtab, opts);
  const QueryResult res = eng.run("select ts, core | limit 3");
  ASSERT_EQ(res.columns, (std::vector<std::string>{"ts", "core"}));
  ASSERT_EQ(res.rows.size(), 3u);
  const ColumnarTrace t = ColumnarTrace::build(w.data, w.symtab);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(res.rows[i][0], Cell::of_int(t.col(Field::Ts)[i]));
    EXPECT_EQ(res.rows[i][1], Cell::of_int(t.col(Field::Core)[i]));
  }
}

TEST(QueryEngineTest, OutOfEnumFieldThrowsInsteadOfReadingZeros) {
  const Workload w = make_workload(2, 4);
  const ColumnarTrace t = ColumnarTrace::build(w.data, w.symtab);
  // A forged or miscast Field must never silently alias a real column or
  // read zeros — the old per-row accessor's switch fell through to 0.
  EXPECT_THROW((void)t.col(static_cast<Field>(6)), std::out_of_range);
  EXPECT_THROW((void)t.col(static_cast<Field>(17)), std::out_of_range);
  EXPECT_THROW((void)t.col(static_cast<Field>(255)), std::out_of_range);
  // In-range fields still hand out full-length columns.
  for (std::size_t f = 0; f < kNumFields; ++f) {
    EXPECT_EQ(t.col(static_cast<Field>(f)).size(), t.rows());
  }
}

TEST(QueryEngineTest, FilterMatchesReferenceCount) {
  const Workload w = make_workload(6, 10);
  EngineOptions opts;
  opts.threads = 1;
  QueryEngine eng = QueryEngine::from_data(w.data, w.symtab, opts);
  for (const char* pred :
       {"item == 2", "core == 1", "ts % 2 == 0", "func == \"app::parse\"",
        "dur > 0 && item >= 0", "item == 1 || item == 4"}) {
    const QueryResult res =
        eng.run(std::string("filter ") + pred + " | select ts");
    EXPECT_EQ(res.rows.size(), count_matching(w, pred)) << pred;
    EXPECT_EQ(res.stats.rows_matched, res.rows.size()) << pred;
  }
}

TEST(QueryEngineTest, GroupByMatchesManualAggregation) {
  const Workload w = make_workload(5, 8);
  EngineOptions opts;
  opts.threads = 1;
  QueryEngine eng = QueryEngine::from_data(w.data, w.symtab, opts);
  const QueryResult res =
      eng.run("group item: count, sum(ts), min(ts), max(ts), p50(ts)");
  ASSERT_EQ(res.columns,
            (std::vector<std::string>{"item", "count", "sum_ts", "min_ts",
                                      "max_ts", "p50_ts"}));

  // Manual reference over the columnar rows.
  const ColumnarTrace t = ColumnarTrace::build(w.data, w.symtab);
  std::map<std::int64_t, std::vector<std::int64_t>> groups;
  for (std::size_t i = 0; i < t.rows(); ++i) {
    groups[t.col(Field::Item)[i]].push_back(t.col(Field::Ts)[i]);
  }
  ASSERT_EQ(res.rows.size(), groups.size());
  std::size_t r = 0;
  for (auto& [item, tss] : groups) {
    std::sort(tss.begin(), tss.end());
    std::int64_t sum = 0;
    for (const std::int64_t v : tss) sum += v;
    EXPECT_EQ(res.rows[r][0], Cell::of_int(item));
    EXPECT_EQ(res.rows[r][1], Cell::of_int(static_cast<std::int64_t>(
                                  tss.size())));
    EXPECT_EQ(res.rows[r][2], Cell::of_int(sum));
    EXPECT_EQ(res.rows[r][3], Cell::of_int(tss.front()));
    EXPECT_EQ(res.rows[r][4], Cell::of_int(tss.back()));
    // Nearest-rank p50 over the sorted values.
    EXPECT_EQ(res.rows[r][5],
              Cell::of_int(tss[(50 * tss.size() + 99) / 100 - 1]));
    ++r;
  }
}

TEST(QueryEngineTest, GroupByFuncRendersNames) {
  const Workload w = make_workload(3, 9);
  QueryEngine eng = QueryEngine::from_data(w.data, w.symtab);
  const QueryResult res = eng.run("group func: count");
  ASSERT_FALSE(res.rows.empty());
  bool saw_name = false;
  for (const auto& row : res.rows) {
    if (row[0].kind == Cell::Kind::Text) saw_name = true;
  }
  EXPECT_TRUE(saw_name);
}

TEST(QueryEngineTest, TopKSortsDescendingAndLimits) {
  const Workload w = make_workload(6, 12);
  QueryEngine eng = QueryEngine::from_data(w.data, w.symtab);
  const QueryResult all = eng.run("group item: count");
  const QueryResult top = eng.run("group item: count | top 3 by count");
  ASSERT_EQ(top.rows.size(), 3u);
  for (std::size_t i = 1; i < top.rows.size(); ++i) {
    EXPECT_FALSE(top.rows[i - 1][1].less(top.rows[i][1]));
  }
  EXPECT_LE(top.rows.size(), all.rows.size());
  // `top N by <missing column>` is a query error, not UB.
  EXPECT_THROW((void)eng.run("group item: count | top 2 by sum_ts"),
               ParseError);
}

TEST(QueryEngineTest, OutliersFindsThePlantedFluctuation) {
  // Nine ordinary items and one whose app::transform span is an order
  // of magnitude longer: the detector must flag exactly that bucket.
  Workload w = make_workload(10, 6, 7);
  const SymbolId f2 = *w.symtab.find("app::transform");
  // Stretch item 7's transform samples far beyond the others by adding
  // a second cluster of late samples inside a widened window.
  const Tsc base = 10000 * 8; // item 7's enter tsc
  for (std::size_t k = 0; k < 4; ++k) {
    PebsSample smp;
    smp.tsc = base + 60000 + 1000 * k;
    smp.core = 7 % 2;
    smp.ip = w.symtab.ip_at(f2, 0.25);
    w.data.samples.push_back(smp);
  }
  // Move item 7's leave marker past the late samples.
  for (Marker& m : w.data.markers) {
    if (m.item == 7 && m.kind == MarkerKind::Leave) m.tsc = base + 70000;
  }
  QueryEngine eng = QueryEngine::from_data(w.data, w.symtab);
  const QueryResult res = eng.run("outliers k=2.0 warmup=3");
  ASSERT_EQ(res.columns,
            (std::vector<std::string>{"item", "func", "elapsed", "mean",
                                      "sigma", "sigmas"}));
  bool found = false;
  for (const auto& row : res.rows) {
    if (row[0] == Cell::of_int(7) && row[1].s == "app::transform") {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "planted outlier not reported";
  // Pruning is off for outlier queries regardless of the index.
  EXPECT_EQ(res.stats.chunks_pruned, 0u);
}

TEST(QueryEngineTest, ParallelScanBitIdenticalToSequentialFuzzed) {
  const char* queries[] = {
      "",
      "select item, func, ts",
      "filter ts % 3 == 0 && item >= 0",
      "filter core == 1 | group item: count, sum(ts), p95(ts), p99(dur)",
      "group item, func: count, min(ts), max(ts) | top 5 by count",
      "group core: sum(dur), p50(ts) | limit 2",
      "outliers k=1.5 warmup=2",
  };
  for (const std::uint64_t seed : {1ull, 42ull, 99ull}) {
    const Workload w = make_workload(8, 20, seed);
    EngineOptions seq;
    seq.threads = 1;
    EngineOptions par;
    par.threads = 4;
    par.block_rows = 16; // force many blocks so merging really happens
    QueryEngine a = QueryEngine::from_data(w.data, w.symtab, seq);
    QueryEngine b = QueryEngine::from_data(w.data, w.symtab, par);
    for (const char* q : queries) {
      const QueryResult ra = a.run(q);
      const QueryResult rb = b.run(q);
      EXPECT_EQ(ra.columns, rb.columns) << "seed " << seed << " q " << q;
      EXPECT_EQ(ra.rows, rb.rows) << "seed " << seed << " q " << q;
    }
  }
}

// --- FLXI pruning ------------------------------------------------------

struct FlxiFixture : ::testing::Test {
  void SetUp() override {
    w = make_workload(16, 8, 3);
    path = ::testing::TempDir() + "/query_engine_test.flxt";
    io::save_trace_v2(path, w.data, /*records_per_chunk=*/16);
    std::remove(flxi_path(path).c_str());
  }
  void TearDown() override {
    std::remove(path.c_str());
    std::remove(flxi_path(path).c_str());
  }

  QueryResult run_fresh(const std::string& q, bool use_index = true) {
    EngineOptions opts;
    opts.threads = 1;
    opts.use_index = use_index;
    opts.write_index = use_index;
    QueryEngine eng = QueryEngine::open(path, w.symtab, opts);
    return eng.run(q);
  }

  Workload w;
  std::string path;
};

TEST_F(FlxiFixture, PrunedScanReadsFewerChunksSameResult) {
  const std::string q = "filter item == 3 | group func: count, sum(ts)";
  // First open: no sidecar yet — full scan, index written.
  const QueryResult first = run_fresh(q);
  EXPECT_FALSE(first.stats.index_used);
  EXPECT_TRUE(first.stats.index_written);
  ASSERT_TRUE(load_flxi(flxi_path(path)).has_value());

  // Reopen: the sidecar prunes, the result is identical.
  const QueryResult pruned = run_fresh(q);
  EXPECT_TRUE(pruned.stats.index_used);
  EXPECT_GT(pruned.stats.chunks_pruned, 0u);
  EXPECT_LT(pruned.stats.chunks_read, pruned.stats.chunks_total);
  EXPECT_LT(pruned.stats.rows_scanned, first.stats.rows_scanned);
  EXPECT_EQ(pruned.rows, first.rows);
  EXPECT_EQ(pruned.columns, first.columns);

  // And identical to an index-free engine, for several predicates.
  for (const char* pq :
       {"filter item <= 2 | select ts", "filter ts < 120000 | select ts",
        "filter func == \"app::parse\" | group item: count"}) {
    EXPECT_EQ(run_fresh(pq).rows, run_fresh(pq, false).rows) << pq;
  }
}

TEST_F(FlxiFixture, DurQueriesSkipTsPruningButStayCorrect) {
  (void)run_fresh(""); // write the sidecar
  const std::string q =
      "filter ts < 60000 && item >= 0 | group item: count, sum(dur)";
  const QueryResult pruned = run_fresh(q);
  const QueryResult full = run_fresh(q, false);
  // dur derives from first-to-last spans; a ts-sliced chunk set would
  // truncate them, so correctness beats pruning here.
  EXPECT_EQ(pruned.rows, full.rows);
}

TEST_F(FlxiFixture, HostileSidecarsFallBackToFullScan) {
  (void)run_fresh(""); // write a valid sidecar
  const std::string sidecar = flxi_path(path);
  std::string clean;
  {
    std::ifstream is(sidecar, std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    clean = std::move(buf).str();
  }
  const std::string q = "filter item == 5 | select ts";
  const QueryResult want = run_fresh(q, false);

  const auto write_sidecar = [&](const std::string& bytes) {
    std::ofstream os(sidecar, std::ios::binary);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  };

  // Truncated at several points, bit-flipped in the body, pure garbage,
  // and a stale-but-wellformed sidecar for a different trace.
  std::string flipped = clean;
  flipped[clean.size() / 2] = static_cast<char>(flipped[clean.size() / 2] ^ 1);
  FlxiIndex stale;
  stale.trace_size = 1; // wrong on purpose
  stale.trace_crc = 2;
  stale.symtab_crc = 3;
  const std::string variants[] = {
      clean.substr(0, 10),
      clean.substr(0, clean.size() - 3),
      flipped,
      std::string(200, '\x5a'),
      encode_flxi(stale),
  };
  for (const std::string& v : variants) {
    write_sidecar(v);
    const QueryResult got = run_fresh(q);
    EXPECT_FALSE(got.stats.index_used);
    EXPECT_EQ(got.rows, want.rows);
  }
}

TEST_F(FlxiFixture, StaleSidecarAfterTraceRewriteIsRejected) {
  (void)run_fresh(""); // sidecar for the original trace
  // Rewrite the trace with different content; the old sidecar now lies.
  const Workload w2 = make_workload(16, 8, 12345);
  io::save_trace_v2(path, w2.data, 16);
  EngineOptions opts;
  opts.threads = 1;
  QueryEngine eng = QueryEngine::open(path, w2.symtab, opts);
  const QueryResult got = eng.run("filter item == 3 | select ts");
  EXPECT_FALSE(got.stats.index_used);
  // Reference: a no-index engine over the same file.
  EXPECT_EQ(got.rows,
            run_fresh("filter item == 3 | select ts", false).rows);
}

TEST_F(FlxiFixture, SymtabChangeInvalidatesSidecar) {
  (void)run_fresh(""); // sidecar pinned to w.symtab
  SymbolTable other;
  other.add("totally::different", 0x1000);
  EngineOptions opts;
  opts.threads = 1;
  QueryEngine eng = QueryEngine::open(path, other, opts);
  const QueryResult got = eng.run("filter item == 3 | select ts");
  EXPECT_FALSE(got.stats.index_used);
}

TEST_F(FlxiFixture, AttributionModeMismatchInvalidatesSidecar) {
  // Both modes share the same <trace>.flxi path, but min/max item are
  // attributed ids — pruning with the other mode's sidecar would
  // silently drop matching rows. A mismatch must read as stale: full
  // scan, rewrite under the current mode.
  (void)run_fresh(""); // sidecar written under marker-window attribution
  const std::string q = "filter item == 3 | select ts";
  EngineOptions regs;
  regs.threads = 1;
  regs.use_register_ids = true;
  {
    QueryEngine eng = QueryEngine::open(path, w.symtab, regs);
    const QueryResult got = eng.run(q);
    EXPECT_FALSE(got.stats.index_used);
    EXPECT_TRUE(got.stats.index_written); // re-pinned to --regs
    EngineOptions noidx = regs;
    noidx.use_index = false;
    noidx.write_index = false;
    QueryEngine ref = QueryEngine::open(path, w.symtab, noidx);
    EXPECT_EQ(got.rows, ref.run(q).rows);
  }
  // And symmetrically: the --regs sidecar just written must not prune a
  // marker-window reopen.
  const QueryResult back = run_fresh(q);
  EXPECT_FALSE(back.stats.index_used);
  EXPECT_EQ(back.rows, run_fresh(q, false).rows);
}

TEST(QueryEngineTest, SalvagedTraceStillAnswers) {
  const Workload w = make_workload(8, 8, 5);
  const std::string path = ::testing::TempDir() + "/query_torn.flxt";
  io::save_trace_v2(path, w.data, 8);
  std::string bytes;
  {
    std::ifstream is(path, std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    bytes = std::move(buf).str();
  }
  {
    std::ofstream os(path, std::ios::binary);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  QueryEngine eng = QueryEngine::open(path, w.symtab);
  const QueryResult res = eng.run("group core: count");
  EXPECT_TRUE(res.stats.salvaged);
  std::size_t total = 0;
  for (const auto& row : res.rows) total += static_cast<std::size_t>(row[1].i);
  EXPECT_GT(total, 0u);
  EXPECT_LT(total, w.data.samples.size());
  std::remove(path.c_str());
  std::remove(flxi_path(path).c_str());
}

TEST(ColumnarOpenTest, OpenComposesReadAndBuild) {
  const Workload w = make_workload(4, 6);
  const std::string path = ::testing::TempDir() + "/columnar_open.flxt";
  io::save_trace_v2(path, w.data, 16);
  const ColumnarTrace t = ColumnarTrace::open(path, w.symtab);
  const ColumnarTrace ref = ColumnarTrace::build(w.data, w.symtab);
  ASSERT_EQ(t.rows(), ref.rows());
  EXPECT_FALSE(t.salvaged());
  for (std::size_t f = 0; f < kNumFields; ++f) {
    const auto a = t.col(static_cast<Field>(f));
    const auto b = ref.col(static_cast<Field>(f));
    for (std::size_t i = 0; i < t.rows(); ++i) {
      ASSERT_EQ(a[i], b[i]) << "col " << f << " row " << i;
    }
  }
  ASSERT_EQ(t.zones().size(),
            (t.rows() + t.zone_rows() - 1) / t.zone_rows());
  std::remove(path.c_str());
}

TEST(ColumnarOpenTest, OpenSalvagesDamagedFiles) {
  const Workload w = make_workload(8, 8, 9);
  const std::string path = ::testing::TempDir() + "/columnar_open_torn.flxt";
  io::save_trace_v2(path, w.data, 8);
  std::string bytes;
  {
    std::ifstream is(path, std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    bytes = std::move(buf).str();
  }
  {
    std::ofstream os(path, std::ios::binary);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  const ColumnarTrace t = ColumnarTrace::open(path, w.symtab);
  EXPECT_TRUE(t.salvaged());
  EXPECT_GT(t.rows(), 0u);
  EXPECT_LT(t.rows(), w.data.samples.size());
  std::remove(path.c_str());
}

TEST(QueryEngineTest, V1TracesQueryWithoutChunkStats) {
  const Workload w = make_workload(4, 6);
  const std::string path = ::testing::TempDir() + "/query_v1.flxt";
  io::save_trace(path, w.data);
  QueryEngine eng = QueryEngine::open(path, w.symtab);
  const QueryResult res = eng.run("group item: count");
  EXPECT_EQ(res.rows.size(), 4u);
  EXPECT_EQ(res.stats.chunks_total, 0u);
  EXPECT_FALSE(res.stats.index_used);
  std::remove(path.c_str());
  std::remove(flxi_path(path).c_str());
}

} // namespace
} // namespace fluxtrace::query
