// BatchEvaluator (ISSUE 7): the vectorized kernels must be bit-identical
// to the scalar interpreter — fuzzed over random expression trees and
// random column data salted with every nasty edge the int64 semantics
// define (INT64_MIN/MAX wrap, division by zero, INT64_MIN / -1, the
// kNoItem sentinel -1) — plus zone-map correctness on built stores.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "fluxtrace/query/columnar.hpp"
#include "fluxtrace/query/expr.hpp"

namespace fluxtrace::query {
namespace {

constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();

struct Lcg {
  std::uint64_t state;
  explicit Lcg(std::uint64_t seed) : state(seed) {}
  std::uint64_t operator()() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 11;
  }
};

/// Column data salted with edge values at the front, random after.
struct TestBlock {
  std::vector<std::int64_t> data[kNumFields];
  ColumnBlock block;

  explicit TestBlock(std::size_t rows, Lcg& rnd) {
    const std::int64_t edges[] = {0,    1,    -1,   kMin,     kMax,
                                  2,    -2,   100,  kMin + 1, kMax - 1,
                                  7,    -7,   63,   -64,      1000000};
    for (std::size_t f = 0; f < kNumFields; ++f) {
      data[f].resize(rows);
      for (std::size_t i = 0; i < rows; ++i) {
        if (i < std::size(edges)) {
          // Rotate the edge set per column so edge pairs meet each other.
          data[f][i] = edges[(i + f) % std::size(edges)];
        } else {
          switch (rnd() % 4) {
            case 0: data[f][i] = static_cast<std::int64_t>(rnd()); break;
            case 1: data[f][i] = static_cast<std::int64_t>(rnd() % 16) - 8;
                    break;
            case 2: data[f][i] = edges[rnd() % std::size(edges)]; break;
            default: data[f][i] = -1; break; // kNoItem as the store spells it
          }
        }
      }
      // func stays a plausible id so FuncMatch has something to match.
      if (f == static_cast<std::size_t>(Field::Func)) {
        for (std::size_t i = 0; i < rows; ++i) {
          data[f][i] = static_cast<std::int64_t>(rnd() % 6) - 1;
        }
      }
      block.col[f] = std::span<const std::int64_t>(data[f]);
    }
    block.rows = rows;
  }
};

std::unique_ptr<Expr> lit(std::int64_t v) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::Lit;
  e->lit = v;
  return e;
}

std::unique_ptr<Expr> field_ref(Field f) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::FieldRef;
  e->field = f;
  return e;
}

std::unique_ptr<Expr> func_match(std::vector<SymbolId> ids, bool negate) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::FuncMatch;
  e->func_ids = std::move(ids);
  e->negate = negate;
  return e;
}

/// Random expression tree of bounded depth over every operator.
std::unique_ptr<Expr> gen_expr(Lcg& rnd, int depth) {
  if (depth <= 0 || rnd() % 4 == 0) {
    switch (rnd() % 4) {
      case 0: return lit(static_cast<std::int64_t>(rnd() % 7) - 3);
      case 1: {
        const std::int64_t nasty[] = {0, -1, kMin, kMax, 2};
        return lit(nasty[rnd() % std::size(nasty)]);
      }
      case 2: return field_ref(static_cast<Field>(rnd() % kNumFields));
      default:
        return func_match({SymbolId(0), SymbolId(2), SymbolId(3)},
                          rnd() % 2 == 0);
    }
  }
  if (rnd() % 5 == 0) {
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::Unary;
    e->op = rnd() % 2 == 0 ? Expr::Op::Not : Expr::Op::Neg;
    e->lhs = gen_expr(rnd, depth - 1);
    return e;
  }
  static constexpr Expr::Op kBinOps[] = {
      Expr::Op::Add, Expr::Op::Sub, Expr::Op::Mul, Expr::Op::Div,
      Expr::Op::Mod, Expr::Op::Eq,  Expr::Op::Ne,  Expr::Op::Lt,
      Expr::Op::Le,  Expr::Op::Gt,  Expr::Op::Ge,  Expr::Op::And,
      Expr::Op::Or};
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::Binary;
  e->op = kBinOps[rnd() % std::size(kBinOps)];
  e->lhs = gen_expr(rnd, depth - 1);
  e->rhs = gen_expr(rnd, depth - 1);
  return e;
}

/// Evaluate `e` both ways over `tb` and require bit-identity, for eval()
/// and for select().
void expect_equivalent(const Expr& e, const TestBlock& tb) {
  const std::size_t n = tb.block.rows;

  std::vector<std::int64_t> vec_out(n), scalar_out(n);
  BatchEvaluator vec(e, /*portable=*/false);
  BatchEvaluator scalar(e, /*portable=*/true);
  vec.eval(tb.block, vec_out.data());
  scalar.eval(tb.block, scalar_out.data());

  FieldVals row;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t f = 0; f < kNumFields; ++f) {
      row.v[f] = tb.block.col[f][i];
    }
    const std::int64_t want = e.eval(row);
    ASSERT_EQ(vec_out[i], want) << "row " << i << " of " << to_string(e);
    ASSERT_EQ(scalar_out[i], want) << "row " << i << " of " << to_string(e);
  }

  std::vector<std::uint32_t> vec_sel(n), scalar_sel(n);
  const std::size_t mv = vec.select(tb.block, vec_sel.data());
  const std::size_t ms = scalar.select(tb.block, scalar_sel.data());
  ASSERT_EQ(mv, ms) << to_string(e);
  for (std::size_t k = 0; k < mv; ++k) {
    ASSERT_EQ(vec_sel[k], scalar_sel[k]) << to_string(e);
  }
}

TEST(BatchEvalTest, HandPickedEdgeExpressions) {
  SymbolTable symtab;
  symtab.add("f0", 0x100);
  symtab.add("f1", 0x100);
  symtab.add("f2", 0x100);
  const char* exprs[] = {
      "item + ts",
      "ts - dur * core",
      "item * item * item",          // wraps hard on kMin/kMax rows
      "ts / core",                   // division by zero rows
      "ts % core",
      "ts / -1",                     // INT64_MIN / -1 must not trap
      "ts % -1",
      "-item",                       // -INT64_MIN wraps
      "!(item == -1)",
      "item == -1 || func == -1",    // kNoItem / unresolved sentinels
      "ts % 5 != 0 && dur > 0",
      "(item + 1) * (item - 1) == item * item - 1",
      "func == \"f1\"",
      "func != \"f1\"",
      "func == \"f0\" || func == \"f2\"",
      "ip / (ts % 3)",
      "1 / 0 == 0 && 5 % 0 == 0",    // constant folding of the totals
      "(ts > dur) == (item < core)",
  };
  Lcg rnd(42);
  const TestBlock tb(512, rnd);
  for (const char* text : exprs) {
    const auto e = parse_expr(text, &symtab);
    expect_equivalent(*e, tb);
  }
}

TEST(BatchEvalTest, FuzzedTreesMatchScalarInterpreter) {
  for (const std::uint64_t seed : {1ull, 7ull, 1234ull, 987654321ull}) {
    Lcg rnd(seed);
    const TestBlock tb(256, rnd);
    for (int round = 0; round < 60; ++round) {
      const auto e = gen_expr(rnd, 5);
      expect_equivalent(*e, tb);
    }
  }
}

TEST(BatchEvalTest, OddBlockSizesIncludingEmpty) {
  SymbolTable symtab;
  const auto e = parse_expr("ts % 3 == 0 && item >= 0", &symtab);
  Lcg rnd(5);
  for (const std::size_t rows : {0u, 1u, 2u, 15u, 16u, 17u, 255u}) {
    const TestBlock tb(rows, rnd);
    expect_equivalent(*e, tb);
  }
}

TEST(BatchEvalTest, ConstantRootSelect) {
  SymbolTable symtab;
  Lcg rnd(11);
  const TestBlock tb(64, rnd);
  std::vector<std::uint32_t> sel(64);
  // The evaluator borrows the AST; keep it alive across the calls.
  const auto all = parse_expr("1 + 1", &symtab);
  BatchEvaluator everything(*all, false);
  EXPECT_EQ(everything.select(tb.block, sel.data()), 64u);
  EXPECT_EQ(sel[63], 63u);
  const auto none = parse_expr("2 - 2", &symtab);
  BatchEvaluator nothing(*none, false);
  EXPECT_EQ(nothing.select(tb.block, sel.data()), 0u);
}

// --- zone maps ----------------------------------------------------------

TEST(ZoneMapTest, BoundsMatchManualScanAtEveryGranularity) {
  SymbolTable symtab;
  const SymbolId f0 = symtab.add("z::a", 0x200);
  io::TraceData data;
  Lcg rnd(3);
  for (std::size_t i = 0; i < 10; ++i) {
    const Tsc t0 = 1000 * (i + 1);
    data.markers.push_back({t0, i, 0, MarkerKind::Enter});
    for (std::size_t s = 0; s < 20; ++s) {
      PebsSample smp;
      smp.tsc = t0 + 1 + s * 40;
      smp.core = 0;
      smp.ip = symtab.ip_at(f0, 0.5);
      data.samples.push_back(smp);
    }
    data.markers.push_back({t0 + 900, i, 0, MarkerKind::Leave});
  }

  for (const std::size_t zr : {16u, 64u, 65536u}) {
    BuildOptions opts;
    opts.zone_rows = zr;
    const ColumnarTrace t = ColumnarTrace::build(data, symtab, opts);
    ASSERT_EQ(t.zone_rows(), zr);
    ASSERT_EQ(t.zones().size(), (t.rows() + zr - 1) / zr);
    for (std::size_t z = 0; z < t.zones().size(); ++z) {
      const std::size_t begin = z * zr;
      const std::size_t end = std::min(t.rows(), begin + zr);
      for (std::size_t f = 0; f < kNumFields; ++f) {
        const auto col = t.col(static_cast<Field>(f));
        std::int64_t mn = col[begin], mx = col[begin];
        for (std::size_t i = begin + 1; i < end; ++i) {
          mn = std::min(mn, col[i]);
          mx = std::max(mx, col[i]);
        }
        EXPECT_EQ(t.zones()[z].min_of(static_cast<Field>(f)), mn);
        EXPECT_EQ(t.zones()[z].max_of(static_cast<Field>(f)), mx);
      }
    }
  }
}

} // namespace
} // namespace fluxtrace::query
