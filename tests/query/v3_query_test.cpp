// Query identity over FLXT v3: every pipeline shape (rows, group,
// outliers, top/limit, critical_path/blocked_by) over a v3 compressed
// trace must be bit-identical to the same query over the same records
// in v2 — pruned or not, with or without a FLXI sidecar, federated or
// single. Plus the v3-only stat: ts-selective scans prune compressed
// chunks via the in-payload zone hint without ever inflating them.
#include "fluxtrace/query/engine.hpp"

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <sstream>

#include "fluxtrace/io/chunked.hpp"
#include "fluxtrace/io/v3.hpp"
#include "fluxtrace/query/federated.hpp"
#include "fluxtrace/query/flxi.hpp"
#include "fluxtrace/query/render.hpp"

namespace fluxtrace::query {
namespace {

struct Workload {
  SymbolTable symtab;
  io::TraceData data;
};

Workload make_workload(std::size_t n_items, std::uint64_t seed = 1) {
  Workload w;
  const SymbolId f0 = w.symtab.add("app::parse", 0x400);
  const SymbolId f1 = w.symtab.add("app::lookup", 0x400);
  const SymbolId f2 = w.symtab.add("app::transform", 0x400);
  const SymbolId fns[3] = {f0, f1, f2};
  auto rnd = [state = seed]() mutable {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 11;
  };
  for (std::size_t i = 0; i < n_items; ++i) {
    const std::uint32_t core = static_cast<std::uint32_t>(i % 2);
    const Tsc t0 = 10000 * (i + 1);
    const Tsc t1 = t0 + 8000;
    w.data.markers.push_back({t0, i, core, MarkerKind::Enter});
    const std::size_t n_samples = 4 + rnd() % 5;
    for (std::size_t s = 0; s < n_samples; ++s) {
      PebsSample smp;
      smp.tsc = t0 + 1 + (s * 7900) / n_samples;
      smp.core = core;
      smp.ip = w.symtab.ip_at(fns[rnd() % 3], 0.5);
      w.data.samples.push_back(smp);
    }
    w.data.markers.push_back({t1, i, core, MarkerKind::Leave});
    if (i % 3 == 0) {
      WaitEdge e;
      e.enter = t0 + 100;
      e.leave = t0 + 300 + rnd() % 500;
      e.item = i;
      e.waiter_core = core;
      e.holder_core = 1 - core;
      e.resource = static_cast<std::uint32_t>(i % 4);
      e.cause = static_cast<WaitCause>(rnd() % kNumWaitCauses);
      w.data.wait_edges.push_back(e);
    }
  }
  return w;
}

std::string fresh_dir(const char* tag) {
  static int n = 0;
  const std::string dir = ::testing::TempDir() + "/v3q_" + tag + "_" +
                          std::to_string(::getpid()) + "_" +
                          std::to_string(n++);
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

std::string csv_of(const QueryResult& r) {
  std::ostringstream os;
  print_csv(os, r);
  return std::move(os).str();
}

const char* const kPipelines[] = {
    "select ts, item, core | limit 20",
    "filter item % 2 == 0 && core == 1 | select ts, func",
    "group func: count, sum(dur), p95(dur)",
    "filter ts >= 200000 && ts < 400000 | group item: count, max(ts)",
    "group item: count | top 5 by count",
    "outliers k=1.0 warmup=3",
    "critical_path",
    "blocked_by | top 3 by blocked",
};

TEST(QueryV3, EveryPipelineBitIdenticalToV2) {
  const std::string dir = fresh_dir("identity");
  const Workload w = make_workload(60, 42);
  const std::string p2 = dir + "/t.flxt2";
  const std::string p3 = dir + "/t.flxt3";
  io::save_trace_v2(p2, w.data, 64);
  io::save_trace_v3(p3, w.data, 64);

  for (const unsigned threads : {1u, 4u}) {
    EngineOptions opts;
    opts.threads = threads;
    opts.write_index = false;
    QueryEngine e2 = QueryEngine::open(p2, w.symtab, opts);
    QueryEngine e3 = QueryEngine::open(p3, w.symtab, opts);
    for (const char* pipeline : kPipelines) {
      EXPECT_EQ(csv_of(e3.run(pipeline)), csv_of(e2.run(pipeline)))
          << pipeline << " @" << threads << " threads";
    }
  }
  std::remove(p2.c_str());
  std::remove(p3.c_str());
}

TEST(QueryV3, ZoneHintPrunesCompressedChunksWithoutSidecar) {
  const std::string dir = fresh_dir("hintprune");
  const Workload w = make_workload(200, 7);
  const std::string p3 = dir + "/t.flxt3";
  io::save_trace_v3(p3, w.data, 64);

  EngineOptions opts;
  opts.threads = 1;
  opts.write_index = false; // no sidecar: only the in-payload hints
  QueryEngine eng = QueryEngine::open(p3, w.symtab, opts);
  const QueryResult res =
      eng.run("filter ts >= 100000 && ts < 200000 | select ts, item");
  EXPECT_GT(res.stats.chunks_pruned_compressed, 0u);
  EXPECT_EQ(res.stats.chunks_pruned, res.stats.chunks_pruned_compressed);
  EXPECT_FALSE(res.stats.index_used); // hint pruning needs no sidecar

  // Identity against the unpruned full scan.
  EngineOptions full;
  full.threads = 1;
  full.use_index = false;
  full.write_index = false;
  QueryEngine ref = QueryEngine::open(p3, w.symtab, full);
  const QueryResult want =
      ref.run("filter ts >= 100000 && ts < 200000 | select ts, item");
  EXPECT_EQ(csv_of(res), csv_of(want));
  EXPECT_EQ(want.stats.chunks_pruned_compressed, 0u);
  std::remove(p3.c_str());
}

TEST(QueryV3, DurQueriesNeverHintPrune) {
  // Durations attribute across chunk boundaries, so ts hints must not
  // prune a dur-referencing query (same soundness rule as FLXI).
  const std::string dir = fresh_dir("durprune");
  const Workload w = make_workload(100, 9);
  const std::string p3 = dir + "/t.flxt3";
  io::save_trace_v3(p3, w.data, 64);
  EngineOptions opts;
  opts.threads = 1;
  opts.write_index = false;
  QueryEngine eng = QueryEngine::open(p3, w.symtab, opts);
  const QueryResult res =
      eng.run("filter ts >= 100000 && dur > 0 | group item: count");
  EXPECT_EQ(res.stats.chunks_pruned_compressed, 0u);
  std::remove(p3.c_str());
}

TEST(QueryV3, FlxiSidecarBuildsAndPrunesOverV3) {
  const std::string dir = fresh_dir("flxi");
  const Workload w = make_workload(150, 11);
  const std::string p3 = dir + "/t.flxt3";
  io::save_trace_v3(p3, w.data, 64);

  // First engine: full scan, writes the sidecar.
  EngineOptions opts;
  opts.threads = 1;
  {
    QueryEngine eng = QueryEngine::open(p3, w.symtab, opts);
    const QueryResult res = eng.run("group func: count");
    EXPECT_TRUE(res.stats.index_written);
  }
  // Second engine: loads the sidecar, prunes an item-selective query
  // (beyond what ts hints alone could do), identical result.
  {
    QueryEngine eng = QueryEngine::open(p3, w.symtab, opts);
    const QueryResult res =
        eng.run("filter item >= 10 && item < 20 | group item: count");
    EXPECT_TRUE(res.stats.index_used);
    EXPECT_GT(res.stats.chunks_pruned, 0u);
    EXPECT_EQ(res.stats.chunks_pruned_compressed, res.stats.chunks_pruned);

    EngineOptions full;
    full.threads = 1;
    full.use_index = false;
    full.write_index = false;
    QueryEngine ref = QueryEngine::open(p3, w.symtab, full);
    EXPECT_EQ(csv_of(res),
              csv_of(ref.run(
                  "filter item >= 10 && item < 20 | group item: count")));
  }
  std::remove(flxi_path(p3).c_str());
  std::remove(p3.c_str());
}

TEST(QueryV3, RefreshSidecarWorksOnV3) {
  const std::string dir = fresh_dir("refresh");
  const Workload w = make_workload(40, 13);
  const std::string p3 = dir + "/t.flxt3";
  io::save_trace_v3(p3, w.data, 64);
  EXPECT_EQ(refresh_sidecar(p3, w.symtab, false), SidecarStatus::Rebuilt);
  EXPECT_EQ(refresh_sidecar(p3, w.symtab, false), SidecarStatus::Fresh);
  std::remove(flxi_path(p3).c_str());
  std::remove(p3.c_str());
}

TEST(QueryV3, FederatedMixedV2AndV3Members) {
  const std::string dir = fresh_dir("mixed");
  // Two disjoint sessions — one spooled as v2, one as v3.
  Workload a;
  Workload b;
  {
    const Workload tmp = make_workload(30, 21);
    a.symtab = tmp.symtab;
    a.data = tmp.data;
  }
  {
    Workload tmp = make_workload(30, 22);
    // Shift session b: disjoint items and times, same symbols.
    for (Marker& m : tmp.data.markers) {
      m.item += 1000;
      m.tsc += 50'000'000;
    }
    for (PebsSample& s : tmp.data.samples) s.tsc += 50'000'000;
    for (WaitEdge& e : tmp.data.wait_edges) {
      e.item += 1000;
      e.enter += 50'000'000;
      e.leave += 50'000'000;
    }
    b.symtab = tmp.symtab;
    b.data = tmp.data;
  }
  const std::string pa = dir + "/a.flxt2";
  const std::string pb = dir + "/b.flxt3";
  io::save_trace_v2(pa, a.data, 32);
  io::save_trace_v3(pb, b.data, 32);

  io::TraceData concat = a.data;
  concat.markers.insert(concat.markers.end(), b.data.markers.begin(),
                        b.data.markers.end());
  concat.samples.insert(concat.samples.end(), b.data.samples.begin(),
                        b.data.samples.end());
  concat.wait_edges.insert(concat.wait_edges.end(),
                           b.data.wait_edges.begin(),
                           b.data.wait_edges.end());

  EngineOptions eo;
  eo.threads = 1;
  QueryEngine whole = QueryEngine::from_data(concat, a.symtab, eo);
  const std::vector<FederatedTrace> members = {{pa, false}, {pb, false}};
  for (const char* pipeline :
       {"group func: count, sum(dur)", "select ts, item | limit 9",
        "outliers k=1.0 warmup=3"}) {
    FederatedOptions fo;
    fo.engine.threads = 1;
    fo.fanout_threads = 1;
    const FederatedResult fr =
        run_federated(members, a.symtab, pipeline, fo);
    EXPECT_EQ(fr.ledger.count(TraceDisposition::Ok), members.size())
        << pipeline;
    EXPECT_EQ(csv_of(fr.result), csv_of(whole.run(pipeline))) << pipeline;
  }
  std::remove(pa.c_str());
  std::remove(pb.c_str());
}

} // namespace
} // namespace fluxtrace::query
