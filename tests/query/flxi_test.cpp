// FLXI sidecar codec: byte-exact round-trip, and the detection contract —
// a truncated, bit-flipped, oversized, or hostile sidecar decodes to
// nullopt (full-scan fallback), never to a wrong index and never OOM.
#include "fluxtrace/query/flxi.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "fluxtrace/io/chunked.hpp" // io::crc32

namespace fluxtrace::query {
namespace {

// Little-endian appenders matching the on-disk FLXI encoding, for
// hand-built hostile sidecars.
void app_u32(std::string& b, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    b.push_back(static_cast<char>(static_cast<std::uint8_t>(v >> (8 * i))));
  }
}

void app_u64(std::string& b, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    b.push_back(static_cast<char>(static_cast<std::uint8_t>(v >> (8 * i))));
  }
}

FlxiIndex sample_index() {
  FlxiIndex idx;
  idx.trace_size = 123456;
  idx.trace_crc = 0xdeadbeef;
  idx.symtab_crc = 0x12345678;
  FlxiChunk a;
  a.offset = 8;
  a.n_records = 64;
  a.min_ts = 100;
  a.max_ts = 900;
  a.min_item = 0;
  a.max_item = 7;
  a.func_counts = {{0, 10}, {2, 54}};
  FlxiChunk b;
  b.offset = 9500;
  b.n_records = 3;
  b.min_ts = -5; // timestamps are signed in query space
  b.max_ts = 2;
  b.min_item = -1; // unattributed rows read as -1
  b.max_item = -1;
  b.func_counts = {};
  FlxiChunk empty;
  empty.offset = 12000;
  empty.n_records = 0;
  empty.min_ts = 0;
  empty.max_ts = -1; // min > max: nothing in the chunk
  empty.min_item = 0;
  empty.max_item = -1;
  idx.chunks = {a, b, empty};
  return idx;
}

TEST(Flxi, RoundTrip) {
  const FlxiIndex idx = sample_index();
  const std::string bytes = encode_flxi(idx);
  const auto back = decode_flxi(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, idx);
}

TEST(Flxi, EmptyIndexRoundTrips) {
  FlxiIndex idx;
  idx.trace_size = 8;
  idx.trace_crc = 1;
  idx.symtab_crc = 2;
  const auto back = decode_flxi(encode_flxi(idx));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, idx);
}

TEST(Flxi, EveryTruncationIsDetected) {
  const std::string bytes = encode_flxi(sample_index());
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    EXPECT_FALSE(decode_flxi(std::string_view(bytes).substr(0, n)))
        << "prefix of " << n << " bytes decoded";
  }
}

TEST(Flxi, TrailingGarbageIsDetected) {
  std::string bytes = encode_flxi(sample_index());
  bytes += '\x00';
  EXPECT_FALSE(decode_flxi(bytes));
}

TEST(Flxi, EveryBitFlipIsDetectedOrInvalidating) {
  const FlxiIndex idx = sample_index();
  const std::string clean = encode_flxi(idx);
  // Header layout: magic(4) version(4) trace_size(8) trace_crc(4)
  // symtab_crc(4) flags(4) n_chunks(4) body_crc(4) body. The pinning
  // fields (bytes 8..27) carry no CRC of their own — a flip there
  // either fails decode (unknown flag bits) or decodes to an index the
  // engine's trace/symtab/mode validation then rejects. Everything else
  // (magic, version, counts, body) must fail decode outright.
  constexpr std::size_t kPinLo = 8, kPinHi = 28;
  for (std::size_t byte = 0; byte < clean.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string bytes = clean;
      bytes[byte] = static_cast<char>(bytes[byte] ^ (1 << bit));
      const auto got = decode_flxi(bytes);
      if (byte >= kPinLo && byte < kPinHi) {
        // Decoding is fine; silently reproducing the ORIGINAL index
        // from flipped bytes would be the bug.
        if (got.has_value()) {
          EXPECT_NE(*got, idx) << "byte " << byte << " bit " << bit;
        }
      } else {
        EXPECT_FALSE(got.has_value())
            << "flip at byte " << byte << " bit " << bit << " decoded";
      }
    }
  }
}

TEST(Flxi, HostileChunkCountDoesNotAllocate) {
  // n_chunks is not covered by the body CRC, so a forged count over an
  // otherwise-valid sidecar is the cheapest allocation attack. Any
  // count exceeding body_bytes / 48 (the minimum encoded chunk) must
  // fail fast on the byte budget, not attempt the reserve.
  const std::string clean = encode_flxi(sample_index());
  // n_chunks lives at offset 28 (after magic, version, size, 2 CRCs,
  // flags).
  for (const std::uint32_t forged : {0x7fffffffu, 0x00010000u, 4u}) {
    std::string bytes = clean;
    for (int i = 0; i < 4; ++i) {
      bytes[28 + i] = static_cast<char>(forged >> (8 * i));
    }
    EXPECT_FALSE(decode_flxi(bytes)) << "n_chunks " << forged;
  }
}

TEST(Flxi, HostileFuncCountDoesNotAllocate) {
  // A self-consistent sidecar (valid header, matching body CRC) whose
  // single chunk claims millions of func entries but carries none: the
  // claimed count exceeds the remaining bytes / 8 and must be rejected
  // before func_counts.reserve.
  std::string body;
  app_u64(body, 8);          // offset
  app_u32(body, 1);          // n_records
  app_u64(body, 0);          // min_ts
  app_u64(body, 0);          // max_ts
  app_u64(body, 0);          // min_item
  app_u64(body, 0);          // max_item
  app_u32(body, 0x00800000); // n_funcs: 8M entries, zero bytes behind
  std::string bytes;
  app_u32(bytes, kFlxiMagic);
  app_u32(bytes, kFlxiVersion);
  app_u64(bytes, 123); // trace_size
  app_u32(bytes, 1);   // trace_crc
  app_u32(bytes, 2);   // symtab_crc
  app_u32(bytes, 0);   // flags
  app_u32(bytes, 1);   // n_chunks
  app_u32(bytes, io::crc32(body.data(), body.size()));
  bytes += body;
  EXPECT_FALSE(decode_flxi(bytes));
}

TEST(Flxi, AttributionModeRoundTripsAndDistinguishes) {
  FlxiIndex regs = sample_index();
  regs.flags = kFlxiFlagRegisterIds;
  const auto back = decode_flxi(encode_flxi(regs));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, regs);
  // The mode is part of identity: the same chunks under marker-window
  // attribution compare unequal.
  EXPECT_NE(*back, sample_index());
}

TEST(Flxi, UnknownFlagBitsAreRejected) {
  std::string bytes = encode_flxi(sample_index());
  bytes[24] = '\x02'; // flags: a bit this version does not define
  EXPECT_FALSE(decode_flxi(bytes));
}

TEST(Flxi, SaveLoadRoundTripAndMissingFile) {
  const std::string path = ::testing::TempDir() + "/flxi_test.flxi";
  const FlxiIndex idx = sample_index();
  ASSERT_TRUE(save_flxi(path, idx));
  const auto back = load_flxi(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, idx);
  std::remove(path.c_str());
  EXPECT_FALSE(load_flxi(path));
  // Unwritable paths report failure instead of throwing.
  EXPECT_FALSE(save_flxi("/nonexistent_dir/x.flxi", idx));
}

TEST(Flxi, DamagedFileLoadsAsNullopt) {
  const std::string path = ::testing::TempDir() + "/flxi_damaged.flxi";
  {
    std::ofstream os(path, std::ios::binary);
    os << "FLXI" << std::string(40, '\x3c');
  }
  EXPECT_FALSE(load_flxi(path));
  std::remove(path.c_str());
}

TEST(Flxi, SymtabCrcTracksNamesAndRanges) {
  SymbolTable a;
  a.add("f1", 0x100);
  a.add("f2", 0x100);
  SymbolTable b;
  b.add("f1", 0x100);
  b.add("f2", 0x100);
  EXPECT_EQ(symtab_crc(a), symtab_crc(b));
  SymbolTable c;
  c.add("f1", 0x100);
  c.add("f2_renamed", 0x100);
  EXPECT_NE(symtab_crc(a), symtab_crc(c));
  SymbolTable d;
  d.add("f1", 0x100);
  d.add("f2", 0x200); // same names, different layout
  EXPECT_NE(symtab_crc(a), symtab_crc(d));
  SymbolTable empty;
  EXPECT_NE(symtab_crc(a), symtab_crc(empty));
}

TEST(Flxi, FlxiPathConvention) {
  EXPECT_EQ(flxi_path("/tmp/t.flxt"), "/tmp/t.flxt.flxi");
}

} // namespace
} // namespace fluxtrace::query
