// Query expression language: evaluation semantics (total, wrapping,
// 0/1 comparisons), the to_string round-trip guarantee, rejection of
// malformed input, and the soundness of the mined prune hints.
#include "fluxtrace/query/expr.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace fluxtrace::query {
namespace {

std::int64_t eval(const std::string& text, const FieldVals& row,
                  const SymbolTable* symtab = nullptr) {
  return parse_expr(text, symtab)->eval(row);
}

FieldVals row_of(std::int64_t item, std::int64_t func, std::int64_t core,
                 std::int64_t ts, std::int64_t dur, std::int64_t ip) {
  FieldVals r;
  r.set(Field::Item, item);
  r.set(Field::Func, func);
  r.set(Field::Core, core);
  r.set(Field::Ts, ts);
  r.set(Field::Dur, dur);
  r.set(Field::Ip, ip);
  return r;
}

TEST(QueryExpr, ArithmeticAndPrecedence) {
  const FieldVals r = row_of(7, 2, 1, 1000, 50, 0x400000);
  EXPECT_EQ(eval("1 + 2 * 3", r), 7);
  EXPECT_EQ(eval("(1 + 2) * 3", r), 9);
  EXPECT_EQ(eval("10 - 4 - 3", r), 3); // left associative
  EXPECT_EQ(eval("17 % 5", r), 2);
  EXPECT_EQ(eval("-item", r), -7);
  EXPECT_EQ(eval("item * 2 + core", r), 15);
  EXPECT_EQ(eval("ts / 100", r), 10);
}

TEST(QueryExpr, TotalSemanticsNeverFault) {
  const FieldVals r = row_of(1, 0, 0, 0, 0, 0);
  // Division and modulo by zero evaluate to 0 — a query must never
  // fault on data.
  EXPECT_EQ(eval("5 / 0", r), 0);
  EXPECT_EQ(eval("5 % 0", r), 0);
  EXPECT_EQ(eval("5 / (item - 1)", r), 0);
  // INT64_MIN / -1 and overflowing arithmetic wrap instead of trapping.
  EXPECT_EQ(eval("(0 - 9223372036854775807 - 1) / (0 - 1)", r),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(eval("9223372036854775807 + 1", r),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(eval("-(0 - 9223372036854775807 - 1)", r),
            std::numeric_limits<std::int64_t>::min());
  // Decimal literals above INT64_MAX wrap like all query arithmetic —
  // the full uint64 range must stay spellable for ip constants.
  EXPECT_EQ(eval("9223372036854775808", r),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(eval("18446744073709551615", r), -1);
}

TEST(QueryExpr, ComparisonsYieldZeroOne) {
  const FieldVals r = row_of(7, 2, 1, 1000, 50, 0);
  EXPECT_EQ(eval("item == 7", r), 1);
  EXPECT_EQ(eval("item != 7", r), 0);
  EXPECT_EQ(eval("ts < 1000", r), 0);
  EXPECT_EQ(eval("ts <= 1000", r), 1);
  EXPECT_EQ(eval("dur > 49", r), 1);
  EXPECT_EQ(eval("dur >= 51", r), 0);
  // Comparison results are plain integers and compose arithmetically.
  EXPECT_EQ(eval("(item == 7) + (core == 1)", r), 2);
}

TEST(QueryExpr, LogicalOpsAndNot) {
  const FieldVals r = row_of(7, 2, 1, 1000, 50, 0);
  EXPECT_EQ(eval("item == 7 && core == 1", r), 1);
  EXPECT_EQ(eval("item == 8 || core == 1", r), 1);
  EXPECT_EQ(eval("item == 8 && core == 1", r), 0);
  EXPECT_EQ(eval("!(item == 8)", r), 1);
  EXPECT_EQ(eval("!!item", r), 1);
  // && / || normalize any nonzero operand to 0/1.
  EXPECT_EQ(eval("5 && 9", r), 1);
  EXPECT_EQ(eval("0 || 3", r), 1);
  // Short-circuit: the right side's division by zero is never reached,
  // but even if it were, it is total anyway.
  EXPECT_EQ(eval("0 && (1 / 0)", r), 0);
}

TEST(QueryExpr, FuncNameComparisonResolvesToIds) {
  SymbolTable symtab;
  const SymbolId parse = symtab.add("app::parse");
  symtab.add("app::lookup");
  FieldVals r = row_of(0, parse, 0, 0, 0, 0);
  EXPECT_EQ(eval("func == \"app::parse\"", r, &symtab), 1);
  EXPECT_EQ(eval("func != \"app::parse\"", r, &symtab), 0);
  r.set(Field::Func, parse + 1);
  EXPECT_EQ(eval("func == \"app::parse\"", r, &symtab), 0);
  EXPECT_EQ(eval("func != \"app::parse\"", r, &symtab), 1);
  // Unresolved rows (func == -1) never match ==, always match !=.
  r.set(Field::Func, -1);
  EXPECT_EQ(eval("func == \"app::parse\"", r, &symtab), 0);
  EXPECT_EQ(eval("func != \"app::parse\"", r, &symtab), 1);
  // An unknown name is an empty match set, not an error: matches no row.
  EXPECT_EQ(eval("func == \"no::such::fn\"", r, &symtab), 0);
}

TEST(QueryExpr, ToStringRoundTripsStructurally) {
  SymbolTable symtab;
  symtab.add("app::parse");
  const char* cases[] = {
      "1",
      "item",
      "-item + 3 * (ts - 7)",
      "item == 7 && (core == 1 || core == 2)",
      "!(dur > 100) || ip % 4096 == 0",
      "func == \"app::parse\"",
      "func != \"app::parse\"",
      "ts / 0 == 0",
  };
  for (const char* text : cases) {
    const auto e = parse_expr(text, &symtab);
    const std::string printed = to_string(*e);
    const auto reparsed = parse_expr(printed, &symtab);
    EXPECT_TRUE(e->equals(*reparsed))
        << text << " -> " << printed << " -> " << to_string(*reparsed);
  }
}

TEST(QueryExpr, CloneIsStructurallyEqual) {
  SymbolTable symtab;
  symtab.add("app::parse");
  const auto e =
      parse_expr("item == 3 && func == \"app::parse\" || ts > 10", &symtab);
  const auto c = e->clone();
  EXPECT_TRUE(e->equals(*c));
  EXPECT_EQ(to_string(*e), to_string(*c));
}

TEST(QueryExpr, RejectsMalformedInput) {
  const char* bad[] = {
      "",              // empty
      "item ==",       // missing rhs
      "(item == 1",    // unbalanced paren
      "item === 1",    // bad operator
      "1 < 2 < 3",     // chained comparison (ambiguous, rejected)
      "bogus == 1",    // unknown column
      "item & 1",      // lone & is not an operator
      "item == 1 extra", // trailing garbage
      "\"name\" == func", // strings only on the rhs of func comparisons
      "ts == \"name\"",   // strings never compare with other columns
      "func < \"name\"",  // only == / != for names
  };
  for (const char* text : bad) {
    EXPECT_THROW((void)parse_expr(text, nullptr), ParseError) << text;
  }
  // String comparison requires a symbol table.
  EXPECT_THROW((void)parse_expr("func == \"x\"", nullptr), ParseError);
}

TEST(QueryExpr, ParseErrorCarriesOffset) {
  try {
    (void)parse_expr("item == bogus", nullptr);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.pos(), 8u);
  }
}

TEST(QueryExpr, BindCheckRejectsUnavailableFields) {
  const auto e = parse_expr("item == 1 && dur > 5", nullptr);
  EXPECT_NO_THROW(e->bind_check(kAllFields, "test"));
  EXPECT_NO_THROW(e->bind_check(
      field_bit(Field::Item) | field_bit(Field::Dur), "test"));
  EXPECT_THROW(e->bind_check(field_bit(Field::Item), "test"), ParseError);
  EXPECT_EQ(e->fields_used(),
            field_bit(Field::Item) | field_bit(Field::Dur));
}

TEST(QueryExpr, PruneHintsFromConjuncts) {
  SymbolTable symtab;
  const SymbolId parse = symtab.add("app::parse");
  {
    const auto e = parse_expr("item == 5", nullptr);
    const PruneHints h = extract_prune_hints(*e);
    EXPECT_EQ(h.item.lo, 5);
    EXPECT_EQ(h.item.hi, 5);
    EXPECT_TRUE(h.ts.full());
    EXPECT_FALSE(h.funcs.has_value());
    EXPECT_TRUE(h.selective());
  }
  {
    const auto e =
        parse_expr("ts >= 100 && ts < 200 && item <= 3", nullptr);
    const PruneHints h = extract_prune_hints(*e);
    EXPECT_EQ(h.ts.lo, 100);
    EXPECT_EQ(h.ts.hi, 199);
    EXPECT_EQ(h.item.hi, 3);
  }
  {
    const auto e = parse_expr("func == \"app::parse\" && dur > 0", &symtab);
    const PruneHints h = extract_prune_hints(*e);
    ASSERT_TRUE(h.funcs.has_value());
    ASSERT_EQ(h.funcs->size(), 1u);
    EXPECT_EQ((*h.funcs)[0], parse);
  }
}

TEST(QueryExpr, PruneHintsWidenOnAnythingElse) {
  // OR chains, negations, and arithmetic must not narrow the hints —
  // pruning on them would be unsound.
  for (const char* text : {"item == 5 || ts > 10", "!(item == 5)",
                           "item + 1 == 5", "item != 5"}) {
    const auto e = parse_expr(text, nullptr);
    const PruneHints h = extract_prune_hints(*e);
    EXPECT_TRUE(h.ts.full()) << text;
    EXPECT_TRUE(h.item.full()) << text;
    EXPECT_FALSE(h.funcs.has_value()) << text;
    EXPECT_FALSE(h.selective()) << text;
  }
}

TEST(QueryExpr, ContradictoryConjunctsGiveEmptyInterval) {
  const auto e = parse_expr("item >= 10 && item <= 5", nullptr);
  const PruneHints h = extract_prune_hints(*e);
  EXPECT_TRUE(h.item.empty());
  EXPECT_TRUE(h.selective());
}

} // namespace
} // namespace fluxtrace::query
