// WaitGraph, the critical_path / blocked_by pipeline stages, and the
// golden head-of-line root-cause diagnosis (ISSUE 8). The bit-identity
// test is the load-bearing one: sequential scan, block-parallel scan and
// a StreamingQuery fed the same edges in dribs must render the same
// bytes, because CHANGES promises follow-mode answers match one-shot.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "fluxtrace/acl/ruleset.hpp"
#include "fluxtrace/apps/rss_firewall_app.hpp"
#include "fluxtrace/base/wait.hpp"
#include "fluxtrace/net/trafficgen.hpp"
#include "fluxtrace/query/engine.hpp"
#include "fluxtrace/query/stream.hpp"
#include "fluxtrace/query/waitgraph.hpp"

namespace fluxtrace::query {
namespace {

WaitEdge we(Tsc enter, Tsc leave, ItemId item, std::uint32_t waiter,
            std::uint32_t holder, std::uint32_t resource, WaitCause cause) {
  WaitEdge e;
  e.enter = enter;
  e.leave = leave;
  e.item = item;
  e.waiter_core = waiter;
  e.holder_core = holder;
  e.resource = resource;
  e.cause = cause;
  return e;
}

/// Deterministic fuzz edges (LCG, no libc rand state).
std::vector<WaitEdge> fuzz_edges(std::size_t n, std::uint64_t seed) {
  std::vector<WaitEdge> out;
  out.reserve(n);
  std::uint64_t s = seed * 2654435761u + 1;
  const auto next = [&s]() {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return s >> 33;
  };
  for (std::size_t i = 0; i < n; ++i) {
    const Tsc enter = next() % 100000;
    const ItemId item = next() % 5 == 0 ? kNoItem : next() % 32;
    out.push_back(we(enter, enter + 1 + next() % 500, item, next() % 8,
                     next() % 8, next() % 16,
                     static_cast<WaitCause>(next() % kNumWaitCauses)));
  }
  return out;
}

TEST(WaitGraph, CriticalPathUnionsOverlappingIntervals) {
  WaitGraph g;
  // Two overlapping episodes for item 5: raw durations 100 + 110, but
  // the item was only actually blocked over [100, 260) = 160 tsc.
  g.observe(we(100, 200, 5, 1, 2, 1, WaitCause::RingFull));
  g.observe(we(150, 260, 5, 1, 4, 3, WaitCause::RingFull));
  ASSERT_EQ(g.edges(), 2u);

  const QueryResult r = finish_critical_path(g);
  const std::vector<std::string> want_cols = {"item",  "blocked",  "edges",
                                              "cause", "resource", "holder"};
  EXPECT_EQ(r.columns, want_cols);
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].i, 5);
  EXPECT_EQ(r.rows[0][1].i, 160); // union, not 210
  EXPECT_EQ(r.rows[0][2].i, 2);
  // Dominant blocker is the larger summed duration (110 > 100).
  EXPECT_EQ(r.rows[0][3].s, "ring-full");
  EXPECT_EQ(r.rows[0][4].i, 3);
  EXPECT_EQ(r.rows[0][5].i, 4);
}

TEST(WaitGraph, DominantBlockerTieBreaksOnSmallestKey) {
  WaitGraph g;
  // Equal 50-tsc attributions; the smaller (cause, resource, holder)
  // key must win deterministically.
  g.observe(we(0, 50, 7, 1, 3, 9, WaitCause::RingFull));
  g.observe(we(100, 150, 7, 1, 8, 2, WaitCause::RingFull));
  const QueryResult r = finish_critical_path(g);
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][1].i, 100);
  EXPECT_EQ(r.rows[0][4].i, 2);
  EXPECT_EQ(r.rows[0][5].i, 8);
}

TEST(WaitGraph, NoItemEdgesGroupUnderMinusOne) {
  WaitGraph g;
  g.observe(we(10, 40, kNoItem, 2, 1, 6, WaitCause::RingEmpty));
  g.observe(we(50, 70, kNoItem, 2, 1, 6, WaitCause::RingEmpty));
  const QueryResult r = finish_critical_path(g);
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].i, -1);
  EXPECT_EQ(r.rows[0][1].i, 50);
  EXPECT_EQ(r.rows[0][3].s, "ring-empty");
}

TEST(WaitGraph, CriticalPathSortsBlockedDescThenItemAsc) {
  WaitGraph g;
  g.observe(we(0, 10, 3, 0, 1, 1, WaitCause::RingFull));
  g.observe(we(0, 90, 2, 0, 1, 1, WaitCause::RingFull));
  g.observe(we(20, 30, 1, 0, 1, 1, WaitCause::RingFull)); // ties item 3
  const QueryResult r = finish_critical_path(g);
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][0].i, 2);
  EXPECT_EQ(r.rows[1][0].i, 1);
  EXPECT_EQ(r.rows[2][0].i, 3);
}

TEST(WaitGraph, BlockedByAggregatesTotalsMaxAndKeyOrder) {
  WaitGraph g;
  g.observe(we(0, 30, 1, 1, 2, 10, WaitCause::RingFull));
  g.observe(we(50, 120, 2, 1, 2, 10, WaitCause::RingFull));
  g.observe(we(0, 5, kNoItem, 2, 1, 10, WaitCause::RingEmpty));
  const QueryResult r = finish_blocked_by(g);
  const std::vector<std::string> want_cols = {"cause",   "resource", "holder",
                                              "edges",   "blocked",  "max"};
  EXPECT_EQ(r.columns, want_cols);
  ASSERT_EQ(r.rows.size(), 2u);
  // Key order: RingFull (0) sorts before RingEmpty (1).
  EXPECT_EQ(r.rows[0][0].s, "ring-full");
  EXPECT_EQ(r.rows[0][1].i, 10);
  EXPECT_EQ(r.rows[0][2].i, 2);
  EXPECT_EQ(r.rows[0][3].i, 2);
  EXPECT_EQ(r.rows[0][4].i, 100);
  EXPECT_EQ(r.rows[0][5].i, 70);
  EXPECT_EQ(r.rows[1][0].s, "ring-empty");
  EXPECT_EQ(r.rows[1][4].i, 5);
}

TEST(WaitGraph, MergeMatchesSingleObserve) {
  const std::vector<WaitEdge> edges = fuzz_edges(300, 11);
  WaitGraph whole;
  for (const WaitEdge& e : edges) whole.observe(e);

  WaitGraph merged;
  for (std::size_t begin = 0; begin < edges.size(); begin += 77) {
    WaitGraph part;
    for (std::size_t i = begin; i < std::min(edges.size(), begin + 77); ++i) {
      part.observe(edges[i]);
    }
    merged.merge(std::move(part));
  }

  EXPECT_EQ(whole.edges(), merged.edges());
  EXPECT_EQ(finish_critical_path(whole).rows,
            finish_critical_path(merged).rows);
  EXPECT_EQ(finish_blocked_by(whole).rows, finish_blocked_by(merged).rows);
}

TEST(WaitGraph, ParserAcceptsWaitStagesWithFilterTopLimit) {
  const Query q = parse_query(
      "filter item >= 0 && dur > 10 | critical_path | top 3 by blocked | "
      "limit 2",
      nullptr);
  EXPECT_TRUE(q.critical_path);
  EXPECT_FALSE(q.blocked_by);
  ASSERT_NE(q.filter, nullptr);
  ASSERT_TRUE(q.topk.has_value());
  EXPECT_EQ(q.topk->n, 3u);
  EXPECT_EQ(q.topk->by, "blocked");
  ASSERT_TRUE(q.limit.has_value());
  EXPECT_EQ(*q.limit, 2u);

  const Query b = parse_query("blocked_by", nullptr);
  EXPECT_TRUE(b.blocked_by);
  EXPECT_FALSE(b.critical_path);
}

TEST(WaitGraph, ParserRejectsWaitStageCompositions) {
  // Same rank as select/group/outliers: any pairing is out of order.
  EXPECT_THROW((void)parse_query("critical_path | select item", nullptr),
               ParseError);
  EXPECT_THROW((void)parse_query("select item | critical_path", nullptr),
               ParseError);
  EXPECT_THROW((void)parse_query("critical_path | blocked_by", nullptr),
               ParseError);
  EXPECT_THROW((void)parse_query("group core : count | blocked_by", nullptr),
               ParseError);
  EXPECT_THROW((void)parse_query("outliers | critical_path", nullptr),
               ParseError);
}

TEST(WaitGraph, ParserRejectsSampleOnlyFieldsInWaitFilters) {
  SymbolTable symtab;
  (void)symtab.add("fn", 0x1000);
  // Wait edges carry item/core/ts/dur; func and ip never bind.
  EXPECT_THROW(
      (void)parse_query("filter func == \"fn\" | critical_path", &symtab),
      ParseError);
  EXPECT_THROW((void)parse_query("filter ip > 4096 | blocked_by", &symtab),
               ParseError);
  // The same fields are fine outside a wait stage.
  EXPECT_NO_THROW((void)parse_query("filter func == \"fn\"", &symtab));
}

TEST(WaitGraph, EngineCriticalPathMatchesHandComputation) {
  io::TraceData data;
  data.wait_edges = {
      we(100, 200, 5, 1, 2, 1, WaitCause::RingFull),
      we(150, 260, 5, 1, 4, 3, WaitCause::RingFull),
      we(300, 320, kNoItem, 2, 1, 6, WaitCause::RingEmpty),
  };
  EngineOptions opts;
  opts.threads = 1;
  QueryEngine eng = QueryEngine::from_data(data, SymbolTable{}, opts);

  QueryResult r = eng.run("filter item >= 0 | critical_path");
  EXPECT_TRUE(r.stats.wait_stage);
  EXPECT_EQ(r.stats.wait_edges, 3u);
  EXPECT_EQ(r.stats.rows_matched, 2u);
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].i, 5);
  EXPECT_EQ(r.rows[0][1].i, 160);

  // Unfiltered: the kNoItem row appears as item -1.
  r = eng.run("critical_path");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].i, 5);
  EXPECT_EQ(r.rows[1][0].i, -1);

  // dur binds to the blocked duration: only the 110-tsc edge survives.
  r = eng.run("filter dur >= 105 | blocked_by");
  EXPECT_EQ(r.stats.rows_matched, 1u);
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][1].i, 3);
  EXPECT_EQ(r.rows[0][2].i, 4);

  // top on an unknown output column throws like the sample path.
  EXPECT_THROW((void)eng.run("critical_path | top 2 by dur"), ParseError);
}

TEST(WaitGraph, BitIdenticalSequentialParallelAndStreaming) {
  io::TraceData data;
  data.wait_edges = fuzz_edges(4000, 23);

  const std::vector<std::string> queries = {
      "filter item >= 0 | critical_path",
      "critical_path | top 5 by blocked",
      "filter dur > 100 && core < 6 | blocked_by",
      "blocked_by | top 4 by blocked | limit 3",
  };
  for (const std::string& text : queries) {
    EngineOptions seq;
    seq.threads = 1;
    seq.block_rows = 64; // many blocks even sequentially
    EngineOptions par;
    par.threads = 4;
    par.block_rows = 64;
    QueryEngine e1 = QueryEngine::from_data(data, SymbolTable{}, seq);
    QueryEngine e4 = QueryEngine::from_data(data, SymbolTable{}, par);
    const QueryResult r1 = e1.run(text);
    const QueryResult r4 = e4.run(text);
    EXPECT_EQ(r1.columns, r4.columns) << text;
    EXPECT_EQ(r1.rows, r4.rows) << text;
    EXPECT_EQ(r4.stats.threads, 4u) << text;

    // Follow mode: the same edges dribbled in across seven batches must
    // snapshot to the same bytes as the one-shot scans.
    StreamingQuery sq(parse_query(text, nullptr), SymbolTable{});
    const std::size_t batch = data.wait_edges.size() / 7 + 1;
    for (std::size_t b = 0; b < data.wait_edges.size(); b += batch) {
      io::TraceData part;
      part.wait_edges.assign(
          data.wait_edges.begin() + static_cast<std::ptrdiff_t>(b),
          data.wait_edges.begin() +
              static_cast<std::ptrdiff_t>(
                  std::min(data.wait_edges.size(), b + batch)));
      // Wait-stage pipelines never open marker windows.
      EXPECT_TRUE(sq.ingest(part).empty()) << text;
    }
    const QueryResult rs = sq.snapshot();
    EXPECT_EQ(r1.columns, rs.columns) << text;
    EXPECT_EQ(r1.rows, rs.rows) << text;
    EXPECT_EQ(sq.stats().wait_edges, data.wait_edges.size()) << text;
    EXPECT_EQ(sq.stats().windows_closed, 0u) << text;
  }
}

// Golden root-cause test: the ext_rss_hol shape — round-robin dispatch
// puts every heavy type-A packet on worker 0, and with shallow worker
// rings the RX dispatcher visibly stalls against worker 0's input ring
// while an A classification holds it. From the trace alone,
// `critical_path` must name that exact blocker: ring-full on resource 10
// (worker 0's input ring) held by core 2 (worker 0).
TEST(WaitGraph, GoldenHeadOfLineRootCauseNamedFromTraceAlone) {
  SymbolTable symtab;
  const acl::RuleSet rules = acl::make_paper_ruleset();
  apps::RssFirewallConfig cfg;
  cfg.num_workers = 2;
  cfg.dispatch = apps::RssDispatch::RoundRobin;
  cfg.worker_ring_depth = 1; // capacity 1: head-of-line pressure is visible
  apps::RssFirewallApp app(symtab, rules, cfg);

  sim::MachineConfig mc;
  mc.spec.num_cores = 4 + cfg.num_workers;
  sim::Machine m(symtab, mc);

  const acl::PaperPackets pk;
  net::TrafficGenConfig tgc;
  tgc.total_packets = 400;
  // Offered load above worker 0's A+C service rate: the dispatcher must
  // stall against the shallow ring, not just queue politely. 400 packets
  // stay well under the 4096-deep NIC ring, so the wire never drops.
  tgc.inter_packet_gap_ns = 2000;
  net::TrafficGen tg(tgc, app.rx_nic(), app.tx_nic(),
                     {pk.type_a, pk.type_c, pk.type_c, pk.type_c});
  app.expect_packets(tgc.total_packets);
  m.attach(0, tg);
  app.attach(m, 1, 2, 2 + cfg.num_workers);
  const auto r = m.run();
  ASSERT_TRUE(r.all_done);
  m.flush_samples();

  io::TraceData data;
  data.markers = m.marker_log().markers();
  data.samples = m.pebs_driver().samples();
  data.wait_edges = m.wait_log().edges();
  ASSERT_FALSE(data.wait_edges.empty());

  // Ground truth from the capture layer: every ring-full edge on worker
  // 0's input ring names the dispatcher as waiter and worker 0 as holder.
  std::size_t ring10_full = 0;
  for (const WaitEdge& e : data.wait_edges) {
    if (e.cause != WaitCause::RingFull || e.resource != 10) continue;
    ++ring10_full;
    EXPECT_EQ(e.waiter_core, 1u);
    EXPECT_EQ(e.holder_core, 2u);
  }
  ASSERT_GT(ring10_full, 0u);

  // The diagnosis, from the serialized trace alone. Item-bound edges
  // only (ring-empty idle polling carries kNoItem and is filtered out).
  EngineOptions opts;
  opts.threads = 1;
  QueryEngine eng = QueryEngine::from_data(data, symtab, opts);
  const QueryResult cp = eng.run("filter item >= 0 | critical_path");
  ASSERT_FALSE(cp.rows.empty());
  EXPECT_EQ(cp.rows[0][3].s, "ring-full");
  EXPECT_EQ(cp.rows[0][4].i, 10); // worker 0's input ring
  EXPECT_EQ(cp.rows[0][5].i, 2);  // held by worker 0's core

  // blocked_by agrees: among item-bound edges the dominant blocker by
  // total blocked time is the same ring and holder.
  const QueryResult bb =
      eng.run("filter item >= 0 | blocked_by | top 1 by blocked");
  ASSERT_EQ(bb.rows.size(), 1u);
  EXPECT_EQ(bb.rows[0][0].s, "ring-full");
  EXPECT_EQ(bb.rows[0][1].i, 10);
  EXPECT_EQ(bb.rows[0][2].i, 2);
}

} // namespace
} // namespace fluxtrace::query
