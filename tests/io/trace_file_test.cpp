#include "fluxtrace/io/trace_file.hpp"

#include <gtest/gtest.h>

#include <sstream>

// These tests deliberately exercise the legacy read_trace()/load_trace()
// entry points, now io-internal plumbing (io/legacy.hpp) behind
// io::open_trace().
#include "fluxtrace/io/legacy.hpp"

namespace fluxtrace::io {
namespace {

TraceData sample_data(std::size_t n_markers, std::size_t n_samples,
                      std::uint64_t seed = 1) {
  auto rnd = [state = seed]() mutable {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 11;
  };
  TraceData d;
  for (std::size_t i = 0; i < n_markers; ++i) {
    Marker m;
    m.tsc = rnd();
    m.item = rnd();
    m.core = static_cast<std::uint32_t>(rnd() % 16);
    m.kind = (rnd() % 2 == 0) ? MarkerKind::Enter : MarkerKind::Leave;
    d.markers.push_back(m);
  }
  for (std::size_t i = 0; i < n_samples; ++i) {
    PebsSample s;
    s.tsc = rnd();
    s.ip = rnd();
    s.core = static_cast<std::uint32_t>(rnd() % 16);
    for (std::uint64_t& r : s.regs.v) r = rnd();
    d.samples.push_back(s);
  }
  return d;
}

TEST(TraceFile, EmptyRoundTrip) {
  std::stringstream ss;
  write_trace(ss, TraceData{});
  const TraceData back = read_trace(ss);
  EXPECT_TRUE(back.markers.empty());
  EXPECT_TRUE(back.samples.empty());
}

TEST(TraceFile, FieldFidelity) {
  TraceData d;
  Marker m;
  m.tsc = 0x0123456789abcdefull;
  m.item = 42;
  m.core = 3;
  m.kind = MarkerKind::Leave;
  d.markers.push_back(m);
  PebsSample s;
  s.tsc = 0xfedcba9876543210ull;
  s.ip = 0x400123;
  s.core = 2;
  s.regs.set(Reg::R13, 999);
  d.samples.push_back(s);

  std::stringstream ss;
  write_trace(ss, d);
  const TraceData back = read_trace(ss);
  EXPECT_EQ(back, d);
}

class TraceFileRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceFileRoundTrip, RandomDataSurvives) {
  const TraceData d = sample_data(200, 1000, GetParam());
  std::stringstream ss;
  write_trace(ss, d);
  EXPECT_EQ(read_trace(ss), d);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceFileRoundTrip,
                         ::testing::Values(1, 7, 42, 1234));

TEST(TraceFile, RejectsBadMagic) {
  std::stringstream ss;
  ss << "not a trace file at all";
  EXPECT_THROW((void)read_trace(ss), TraceIoError);
}

TEST(TraceFile, RejectsWrongVersion) {
  std::stringstream ss;
  write_trace(ss, TraceData{});
  std::string bytes = ss.str();
  bytes[4] = 99; // corrupt the version field
  std::stringstream corrupted(bytes);
  EXPECT_THROW((void)read_trace(corrupted), TraceIoError);
}

TEST(TraceFile, RejectsTruncation) {
  const TraceData d = sample_data(10, 50);
  std::stringstream ss;
  write_trace(ss, d);
  const std::string bytes = ss.str();
  // Truncate at several depths, including mid-record.
  for (const std::size_t keep :
       {std::size_t{3}, std::size_t{10}, bytes.size() / 2, bytes.size() - 1}) {
    std::stringstream cut(bytes.substr(0, keep));
    EXPECT_THROW((void)read_trace(cut), TraceIoError) << "keep=" << keep;
  }
}

TEST(TraceFile, RejectsInsaneCounts) {
  std::stringstream ss;
  write_trace(ss, TraceData{});
  std::string bytes = ss.str();
  bytes[8] = '\xff'; // marker count low byte
  for (int i = 9; i < 16; ++i) bytes[static_cast<std::size_t>(i)] = '\xff';
  std::stringstream corrupted(bytes);
  EXPECT_THROW((void)read_trace(corrupted), TraceIoError);
}

TEST(TraceFile, SaveAndLoadFile) {
  const TraceData d = sample_data(20, 100);
  const std::string path = ::testing::TempDir() + "/flxt_test.trace";
  save_trace(path, d);
  EXPECT_EQ(load_trace(path), d);
}

TEST(TraceFile, LoadMissingFileThrows) {
  EXPECT_THROW((void)load_trace("/nonexistent/dir/x.trace"), TraceIoError);
}

TEST(TraceFile, CsvExports) {
  TraceData d;
  d.markers.push_back(Marker{100, 7, 1, MarkerKind::Enter});
  PebsSample s;
  s.tsc = 123;
  s.ip = 0x400010;
  s.regs.set(Reg::R13, 5);
  d.samples.push_back(s);

  std::ostringstream ms;
  write_markers_csv(ms, d.markers);
  EXPECT_EQ(ms.str(), "tsc,item,core,kind\n100,7,1,enter\n");

  std::ostringstream ssp;
  write_samples_csv(ssp, d.samples);
  EXPECT_NE(ssp.str().find("123,4194320,0,5"), std::string::npos);
}

} // namespace
} // namespace fluxtrace::io

