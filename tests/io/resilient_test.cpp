// io::ResilientWriter: the crash-consistent spool. The contract under
// test is threefold: (1) every record handed in is accounted exactly
// once (committed / queue-dropped / sink-lost); (2) whatever reached the
// sink — even mid-crash, even across short writes and retries — salvages
// as intact v2 chunks with zero CRC failures; (3) persistent sink
// failure opens the circuit breaker and fails over instead of looping.
#include "fluxtrace/io/resilient.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "fluxtrace/io/chunked.hpp"

namespace fluxtrace::io {
namespace {

std::vector<Marker> make_markers(std::size_t n, std::uint64_t seed = 1) {
  std::vector<Marker> ms;
  for (std::size_t i = 0; i < n; ++i) {
    Marker m;
    m.tsc = seed + i * 10;
    m.item = i / 2 + 1;
    m.core = 1;
    m.kind = (i % 2 == 0) ? MarkerKind::Enter : MarkerKind::Leave;
    ms.push_back(m);
  }
  return ms;
}

SampleVec make_samples(std::size_t n, std::uint64_t seed = 1) {
  SampleVec ss;
  for (std::size_t i = 0; i < n; ++i) {
    PebsSample s;
    s.tsc = seed + i * 7;
    s.ip = 0x1000 + i;
    s.core = 1;
    for (std::uint64_t& r : s.regs.v) r = i;
    ss.push_back(s);
  }
  return ss;
}

/// In-memory sink driven by a per-call script; unscripted calls accept
/// everything. Captures the byte stream for salvage verification.
struct ScriptedSink final : SpoolSink {
  struct Step {
    SinkStatus status = SinkStatus::Ok;
    std::size_t cap = ~std::size_t{0}; ///< max bytes accepted when Ok
  };
  std::vector<Step> script;
  std::size_t calls = 0;
  std::string bytes;
  bool sync_ok = true;
  std::size_t syncs = 0;

  SinkResult write(const char* data, std::size_t len) override {
    const Step step = calls < script.size() ? script[calls] : Step{};
    ++calls;
    if (step.status != SinkStatus::Ok) return {step.status, 0};
    const std::size_t n = len < step.cap ? len : step.cap;
    bytes.append(data, n);
    return {SinkStatus::Ok, n};
  }
  bool sync() override {
    ++syncs;
    return sync_ok;
  }
  [[nodiscard]] std::string describe() const override { return "scripted"; }
};

/// Build a writer around scripted sinks, keeping raw observers.
struct Harness {
  ScriptedSink* primary = nullptr;
  ScriptedSink* secondary = nullptr;
  std::unique_ptr<ResilientWriter> w;

  explicit Harness(ResilientWriterConfig cfg, bool with_secondary = false) {
    auto p = std::make_unique<ScriptedSink>();
    primary = p.get();
    std::unique_ptr<ScriptedSink> s;
    if (with_secondary) {
      s = std::make_unique<ScriptedSink>();
      secondary = s.get();
    }
    w = std::make_unique<ResilientWriter>(cfg, std::move(p), std::move(s));
  }
};

TEST(ResilientWriter, CleanSpoolIsAByteExactV2File) {
  ResilientWriterConfig cfg;
  cfg.records_per_chunk = 8;
  Harness h(cfg);
  const auto ms = make_markers(20);
  const auto ss = make_samples(37);
  h.w->add_markers(ms.data(), ms.size(), 0);
  h.w->add_samples(ss.data(), ss.size(), 0);
  h.w->pump(1000);
  EXPECT_TRUE(h.w->close(2000));

  const auto& st = h.w->stats();
  EXPECT_EQ(st.records_enqueued, 57u);
  EXPECT_EQ(st.records_committed, 57u);
  EXPECT_TRUE(st.reconciled());
  EXPECT_TRUE(st.closed_clean);

  const SalvageReport rep = salvage_trace(std::string_view(h.primary->bytes));
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(rep.data.markers.size(), 20u);
  EXPECT_EQ(rep.data.samples.size(), 37u);
  // fsync on every chunk boundary plus the eof sentinel.
  EXPECT_GE(h.primary->syncs, st.chunks_committed);
}

TEST(ResilientWriter, ShortWritesResumeWithoutDuplication) {
  ResilientWriterConfig cfg;
  cfg.records_per_chunk = 4;
  Harness h(cfg);
  // Every write accepts at most 5 bytes: chunks land via many resumed
  // partial writes.
  h.primary->script.assign(10'000, {SinkStatus::Ok, 5});
  const auto ms = make_markers(16);
  h.w->add_markers(ms.data(), ms.size(), 0);
  h.w->pump(0);
  EXPECT_TRUE(h.w->close(1));

  const SalvageReport rep = salvage_trace(std::string_view(h.primary->bytes));
  EXPECT_TRUE(rep.clean());
  ASSERT_EQ(rep.data.markers.size(), 16u);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(rep.data.markers[i].tsc, ms[i].tsc) << i;
  }
  EXPECT_TRUE(h.w->stats().reconciled());
}

TEST(ResilientWriter, TransientFailuresRetryWithBackoff) {
  ResilientWriterConfig cfg;
  cfg.records_per_chunk = 4;
  cfg.backoff_base_ns = 100;
  Harness h(cfg);
  h.primary->script = {{SinkStatus::Transient, 0}, {SinkStatus::Transient, 0}};
  const auto ms = make_markers(4);
  h.w->add_markers(ms.data(), ms.size(), 0);

  EXPECT_EQ(h.w->pump(0), 0u); // first attempt fails, backoff armed
  EXPECT_TRUE(h.w->backing_off(0));
  EXPECT_EQ(h.w->pump(0), 0u); // still inside the backoff window: no call
  EXPECT_EQ(h.primary->calls, 1u);

  // Advance past the (capped, jittered) deadline until it commits.
  std::uint64_t now = 0;
  for (int i = 0; i < 10 && h.w->stats().chunks_committed == 0; ++i) {
    now += 1'000'000;
    h.w->pump(now);
  }
  const auto& st = h.w->stats();
  EXPECT_EQ(st.chunks_committed, 1u);
  EXPECT_EQ(st.retries, 2u);
  EXPECT_GT(st.backoff_ns, 0u);
  EXPECT_TRUE(h.w->close(now + 1));
  EXPECT_TRUE(salvage_trace(std::string_view(h.primary->bytes)).clean());
}

TEST(ResilientWriter, PersistentTransientsOpenBreakerAndFailOver) {
  ResilientWriterConfig cfg;
  cfg.records_per_chunk = 4;
  cfg.max_attempts = 2;
  cfg.breaker_strikes = 2;
  Harness h(cfg, /*with_secondary=*/true);
  h.primary->script.assign(1'000, {SinkStatus::Transient, 0});
  const auto ms = make_markers(8);
  h.w->add_markers(ms.data(), ms.size(), 0);

  std::uint64_t now = 0;
  while (h.w->stats().failovers == 0 && now < 1'000'000'000) {
    now += 100'000;
    h.w->pump(now);
  }
  const auto& st = h.w->stats();
  EXPECT_EQ(st.failovers, 1u);
  EXPECT_GE(st.breaker_opens, 1u);
  EXPECT_EQ(st.active_sink, 1u);
  EXPECT_TRUE(h.w->close(now + 1));

  // Everything (including both chunks and the sentinel) lives on the
  // secondary, as a clean file; the primary holds no intact chunk.
  const SalvageReport sec =
      salvage_trace(std::string_view(h.secondary->bytes));
  EXPECT_TRUE(sec.clean());
  EXPECT_EQ(sec.data.markers.size(), 8u);
  EXPECT_TRUE(st.reconciled());
}

TEST(ResilientWriter, FatalErrorFailsOverImmediately) {
  ResilientWriterConfig cfg;
  cfg.records_per_chunk = 2;
  Harness h(cfg, /*with_secondary=*/true);
  h.primary->script = {{SinkStatus::Fatal, 0}};
  const auto ms = make_markers(2);
  h.w->add_markers(ms.data(), ms.size(), 0);
  h.w->pump(0);
  h.w->pump(1);
  EXPECT_EQ(h.w->stats().failovers, 1u);
  EXPECT_TRUE(h.w->close(2));
  EXPECT_TRUE(
      salvage_trace(std::string_view(h.secondary->bytes)).clean());
}

TEST(ResilientWriter, DropNewestAccountsEveryOverflow) {
  ResilientWriterConfig cfg;
  cfg.records_per_chunk = 2;
  cfg.queue_chunks = 2;
  cfg.overflow = OverflowPolicy::DropNewest;
  Harness h(cfg);
  h.primary->script.assign(1'000, {SinkStatus::Transient, 0}); // sink wedged
  const auto ms = make_markers(20); // 10 chunks into a 2-chunk queue
  h.w->add_markers(ms.data(), ms.size(), 0);

  const auto& st = h.w->stats();
  EXPECT_EQ(st.chunks_enqueued, 10u);
  EXPECT_EQ(st.chunks_dropped_queue, 8u);
  EXPECT_EQ(st.records_dropped_queue, 16u);
  h.primary->script.clear(); // sink heals
  EXPECT_TRUE(h.w->close(1'000'000'000));
  EXPECT_TRUE(st.reconciled());
  EXPECT_EQ(st.records_committed, 4u);
}

TEST(ResilientWriter, DropOldestKeepsTheNewestData) {
  ResilientWriterConfig cfg;
  cfg.records_per_chunk = 2;
  cfg.queue_chunks = 2;
  cfg.overflow = OverflowPolicy::DropOldest;
  Harness h(cfg);
  h.primary->script.assign(1'000, {SinkStatus::Transient, 0});
  const auto ms = make_markers(12); // 6 chunks
  h.w->add_markers(ms.data(), ms.size(), 0);
  h.primary->script.clear();
  EXPECT_TRUE(h.w->close(1'000'000'000));

  const auto& st = h.w->stats();
  EXPECT_TRUE(st.reconciled());
  EXPECT_EQ(st.records_dropped_queue, 8u);
  // The survivors are the *last* two chunks (markers 8..11).
  const SalvageReport rep = salvage_trace(std::string_view(h.primary->bytes));
  ASSERT_EQ(rep.data.markers.size(), 4u);
  EXPECT_EQ(rep.data.markers[0].tsc, ms[8].tsc);
  EXPECT_EQ(rep.data.markers[3].tsc, ms[11].tsc);
}

TEST(ResilientWriter, DeadSinksCountLossesAndNeverReconcileSilently) {
  ResilientWriterConfig cfg;
  cfg.records_per_chunk = 2;
  cfg.max_attempts = 2;
  cfg.breaker_strikes = 1;
  Harness h(cfg);
  h.primary->script.assign(100'000, {SinkStatus::Fatal, 0});
  const auto ms = make_markers(6);
  h.w->add_markers(ms.data(), ms.size(), 0);
  EXPECT_FALSE(h.w->close(0)); // nothing placeable: not a clean close

  const auto& st = h.w->stats();
  EXPECT_TRUE(st.exhausted);
  EXPECT_FALSE(st.closed_clean);
  EXPECT_EQ(st.records_lost_sink, 6u);
  EXPECT_EQ(st.records_committed, 0u);
  EXPECT_TRUE(st.reconciled());
}

TEST(ResilientWriter, CrashMidStreamLeavesSalvageablePrefix) {
  ResilientWriterConfig cfg;
  cfg.records_per_chunk = 4;
  Harness h(cfg);
  const auto ms = make_markers(12);
  h.w->add_markers(ms.data(), ms.size(), 0);
  h.w->pump(0);
  // No close(): the "process" dies here. Every committed (fsynced) chunk
  // must salvage intact; only the eof sentinel is missing.
  const SalvageReport rep = salvage_trace(std::string_view(h.primary->bytes));
  EXPECT_TRUE(rep.header_ok);
  EXPECT_FALSE(rep.eof_ok);
  EXPECT_EQ(rep.chunks_corrupt, 0u);
  EXPECT_EQ(rep.chunks_ok, h.w->stats().chunks_committed);
  EXPECT_EQ(rep.data.markers.size(), 12u);
}

TEST(ResilientWriter, SyncFailureIsRetriedNotIgnored) {
  ResilientWriterConfig cfg;
  cfg.records_per_chunk = 2;
  Harness h(cfg);
  h.primary->sync_ok = false;
  const auto ms = make_markers(2);
  h.w->add_markers(ms.data(), ms.size(), 0);
  h.w->pump(0);
  EXPECT_EQ(h.w->stats().chunks_committed, 0u); // written but not durable
  EXPECT_GE(h.w->stats().sync_failures, 1u);
  h.primary->sync_ok = true;
  EXPECT_TRUE(h.w->close(1'000'000'000));
  EXPECT_TRUE(h.w->stats().reconciled());
}

TEST(ResilientWriter, FaultableSinkMapsVerdicts) {
  auto inner = std::make_unique<ScriptedSink>();
  ScriptedSink* raw = inner.get();
  std::vector<SinkFault> plan = {SinkFault::Transient, SinkFault::None,
                                 SinkFault::NoSpace};
  std::size_t at = 0;
  FaultableSink sink(std::move(inner), [&](std::size_t) {
    return at < plan.size() ? plan[at++] : SinkFault::None;
  });
  char buf[4] = {1, 2, 3, 4};
  EXPECT_EQ(sink.write(buf, 4).status, SinkStatus::Transient);
  EXPECT_FALSE(sink.sync()); // the faulted write's barrier fails too
  EXPECT_EQ(sink.write(buf, 4).status, SinkStatus::Ok);
  EXPECT_TRUE(sink.sync());
  EXPECT_EQ(sink.write(buf, 4).status, SinkStatus::Fatal);
  EXPECT_EQ(raw->bytes.size(), 4u); // only the clean write reached it
}

std::vector<WaitEdge> make_waits(std::size_t n, std::uint64_t seed = 1) {
  std::vector<WaitEdge> es;
  for (std::size_t i = 0; i < n; ++i) {
    WaitEdge e;
    e.enter = seed + i * 100;
    e.leave = e.enter + 40 + i;
    e.item = (i % 3 == 0) ? kNoItem : i;
    e.waiter_core = 1;
    e.holder_core = 2;
    e.resource = 10 + static_cast<std::uint32_t>(i % 2);
    e.cause = static_cast<WaitCause>(i % kNumWaitCauses);
    es.push_back(e);
  }
  return es;
}

TEST(WaitEdgeSpool, WaitEdgesSpoolChunkedAndSalvageBack) {
  ResilientWriterConfig cfg;
  cfg.records_per_chunk = 4;
  Harness h(cfg);
  const auto ms = make_markers(8);
  const auto es = make_waits(10); // 2 full chunks + a 2-record remainder
  h.w->add_markers(ms.data(), ms.size(), 0);
  h.w->add_wait_edges(es.data(), es.size(), 0);
  h.w->pump(1000);
  EXPECT_TRUE(h.w->close(2000)); // close flushes the partial wait chunk

  const auto& st = h.w->stats();
  EXPECT_EQ(st.records_enqueued, 18u);
  EXPECT_EQ(st.records_committed, 18u);
  EXPECT_TRUE(st.reconciled());

  const SalvageReport rep = salvage_trace(std::string_view(h.primary->bytes));
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(rep.data.markers, ms);
  EXPECT_EQ(rep.data.wait_edges, es);
}

TEST(WaitEdgeSpool, ReportsAfterCloseAreDroppedNotMisLedgered) {
  // core::SessionSupervisor reports its final backpressure interval while
  // winding down, after close() sealed the spool; the writer must drop it
  // (nowhere to put it) without disturbing the reconciled ledger.
  ResilientWriterConfig cfg;
  cfg.records_per_chunk = 4;
  Harness h(cfg);
  const auto es = make_waits(4);
  h.w->add_wait_edges(es.data(), es.size(), 0);
  h.w->pump(100);
  EXPECT_TRUE(h.w->close(200));
  const std::uint64_t enqueued = h.w->stats().records_enqueued;

  h.w->add_wait_edges(es.data(), es.size(), 300);
  EXPECT_EQ(h.w->stats().records_enqueued, enqueued);
  EXPECT_TRUE(h.w->stats().reconciled());
  const SalvageReport rep = salvage_trace(std::string_view(h.primary->bytes));
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(rep.data.wait_edges, es);
}

} // namespace
} // namespace fluxtrace::io
