// io::TraceReader facade: autodetection across all three containers,
// parallel == sequential reads, salvage behaviour per format, and the
// hostile-input contract — arbitrary bytes may fail read() with
// TraceIoError but must never crash, and salvage() never throws on
// content at all.
#include "fluxtrace/io/trace_reader.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "fluxtrace/io/compact.hpp"

namespace fluxtrace::io {
namespace {

TraceData sample_data(std::size_t n_markers, std::size_t n_samples,
                      std::uint64_t seed = 1) {
  auto rnd = [state = seed]() mutable {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 11;
  };
  TraceData d;
  for (std::size_t i = 0; i < n_markers; ++i) {
    Marker m;
    m.tsc = rnd();
    m.item = rnd();
    m.core = static_cast<std::uint32_t>(rnd() % 16);
    m.kind = (rnd() % 2 == 0) ? MarkerKind::Enter : MarkerKind::Leave;
    d.markers.push_back(m);
  }
  for (std::size_t i = 0; i < n_samples; ++i) {
    PebsSample s;
    s.tsc = rnd();
    s.ip = rnd();
    s.core = static_cast<std::uint32_t>(rnd() % 16);
    for (std::uint64_t& r : s.regs.v) r = rnd();
    d.samples.push_back(s);
  }
  return d;
}

std::string v1_bytes(const TraceData& d) {
  std::ostringstream os;
  write_trace(os, d);
  return std::move(os).str();
}

std::string v2_bytes(const TraceData& d, std::size_t per_chunk = 64) {
  std::ostringstream os;
  write_trace_v2(os, d, per_chunk);
  return std::move(os).str();
}

std::string flxz_bytes(const TraceData& d) {
  std::ostringstream os;
  write_compact(os, d);
  return std::move(os).str();
}

// --- autodetection ----------------------------------------------------

TEST(TraceReader, DetectsFlxtV1) {
  const TraceData d = sample_data(30, 100);
  const TraceReader r = open_trace_bytes(v1_bytes(d));
  EXPECT_EQ(r.format(), TraceFormat::FlxtV1);
  EXPECT_EQ(r.read(), d);
}

TEST(TraceReader, DetectsFlxtV2) {
  const TraceData d = sample_data(30, 100);
  const TraceReader r = open_trace_bytes(v2_bytes(d));
  EXPECT_EQ(r.format(), TraceFormat::FlxtV2);
  EXPECT_EQ(r.read(), d);
}

TEST(TraceReader, DetectsFlxz) {
  const TraceData d = sample_data(30, 100, 3);
  const TraceReader r = open_trace_bytes(flxz_bytes(d));
  EXPECT_EQ(r.format(), TraceFormat::Flxz);
  // Compact is lossy/re-sorting; counts must survive exactly.
  const TraceData back = r.read();
  EXPECT_EQ(back.markers.size(), d.markers.size());
  EXPECT_EQ(back.samples.size(), d.samples.size());
}

TEST(TraceReader, FormatNames) {
  EXPECT_EQ(to_string(TraceFormat::FlxtV1), "flxt-v1");
  EXPECT_EQ(to_string(TraceFormat::FlxtV2), "flxt-v2");
  EXPECT_EQ(to_string(TraceFormat::Flxz), "flxz");
  EXPECT_EQ(to_string(TraceFormat::Unknown), "unknown");
}

TEST(TraceReader, OpensFromFile) {
  const TraceData d = sample_data(10, 40);
  const std::string path = ::testing::TempDir() + "/reader_test.flxt";
  save_trace(path, d);
  const TraceReader r = open_trace(path);
  EXPECT_EQ(r.format(), TraceFormat::FlxtV1);
  EXPECT_EQ(r.path(), path);
  EXPECT_GT(r.size_bytes(), 0u);
  EXPECT_EQ(r.read(), d);
}

TEST(TraceReader, MissingFileThrowsWithPath) {
  try {
    (void)open_trace("/nonexistent/dir/x.trace");
    FAIL() << "expected TraceIoError";
  } catch (const TraceIoError& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/dir/x.trace"),
              std::string::npos);
  }
}

TEST(TraceReader, FileReadErrorsCarryThePath) {
  const std::string path = ::testing::TempDir() + "/reader_garbage.bin";
  {
    std::ofstream os(path, std::ios::binary);
    os << std::string(64, '\x11');
  }
  try {
    (void)open_trace(path).read();
    FAIL() << "expected TraceIoError";
  } catch (const TraceIoError& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
  }
}

// --- parallel == sequential -------------------------------------------

TEST(TraceReader, ParallelReadMatchesSequentialV1) {
  const TraceData d = sample_data(500, 3000, 7);
  const TraceReader r = open_trace_bytes(v1_bytes(d));
  for (const unsigned n : {0u, 1u, 2u, 4u}) {
    EXPECT_EQ(r.read_parallel(n), d) << "threads=" << n;
  }
}

TEST(TraceReader, ParallelReadMatchesSequentialV2) {
  const TraceData d = sample_data(500, 3000, 8);
  // Small chunks so the parallel path actually fans out.
  const TraceReader r = open_trace_bytes(v2_bytes(d, 128));
  for (const unsigned n : {0u, 1u, 2u, 4u}) {
    EXPECT_EQ(r.read_parallel(n), d) << "threads=" << n;
  }
}

TEST(TraceReader, ParallelReadFallsBackForFlxz) {
  const TraceData d = sample_data(50, 200, 9);
  const TraceReader r = open_trace_bytes(flxz_bytes(d));
  EXPECT_EQ(r.read_parallel(4), r.read());
}

TEST(TraceReader, ParallelReadOfDamagedV2ThrowsLikeSequential) {
  const TraceData d = sample_data(100, 400, 10);
  std::string bytes = v2_bytes(d, 32);
  bytes[bytes.size() / 2] ^= 0x40; // flip a payload byte mid-file
  const TraceReader r = open_trace_bytes(bytes);
  std::string seq_err;
  std::string par_err;
  try {
    (void)r.read();
  } catch (const TraceIoError& e) {
    seq_err = e.what();
  }
  try {
    (void)r.read_parallel(4);
  } catch (const TraceIoError& e) {
    par_err = e.what();
  }
  ASSERT_FALSE(seq_err.empty());
  EXPECT_EQ(par_err, seq_err) << "damage diagnostics must not depend on the "
                                 "thread count";
}

// --- salvage ----------------------------------------------------------

TEST(TraceReader, SalvageRecoversTornV2) {
  const TraceData d = sample_data(100, 400, 11);
  const std::string bytes = v2_bytes(d, 32);
  const TraceReader r =
      open_trace_bytes(bytes.substr(0, bytes.size() * 2 / 3));
  const SalvageReport rep = r.salvage();
  EXPECT_FALSE(rep.clean());
  EXPECT_GT(rep.chunks_ok, 0u);
  EXPECT_FALSE(rep.data.markers.empty());
  for (std::size_t i = 0; i < rep.data.markers.size(); ++i) {
    EXPECT_EQ(rep.data.markers[i], d.markers[i]);
  }
}

TEST(TraceReader, SalvageScansV2WithDestroyedHeader) {
  const TraceData d = sample_data(60, 200, 12);
  std::string bytes = v2_bytes(d, 32);
  for (int i = 0; i < 8; ++i) bytes[static_cast<std::size_t>(i)] = '\x5c';
  const TraceReader r = open_trace_bytes(bytes);
  EXPECT_EQ(r.format(), TraceFormat::Unknown);
  EXPECT_THROW((void)r.read(), TraceIoError);
  const SalvageReport rep = r.salvage();
  EXPECT_FALSE(rep.header_ok);
  EXPECT_EQ(rep.data.markers.size(), d.markers.size());
  EXPECT_EQ(rep.data.samples.size(), d.samples.size());
}

TEST(TraceReader, SalvageOfCleanV1IsAllOrNothing) {
  const TraceData d = sample_data(20, 80, 13);
  const TraceReader intact = open_trace_bytes(v1_bytes(d));
  const SalvageReport ok = intact.salvage();
  EXPECT_TRUE(ok.clean());
  EXPECT_EQ(ok.data, d);

  const std::string cut = v1_bytes(d).substr(0, v1_bytes(d).size() / 2);
  const SalvageReport bad = open_trace_bytes(cut).salvage();
  EXPECT_FALSE(bad.clean());
  EXPECT_TRUE(bad.data.markers.empty());
  EXPECT_TRUE(bad.data.samples.empty());
}

// --- hostile input ----------------------------------------------------

TEST(TraceReader, HostileInputsThrowButNeverCrash) {
  std::vector<std::string> inputs;
  inputs.emplace_back();                     // empty
  inputs.emplace_back("x");                  // shorter than any magic
  inputs.emplace_back("FLXT");               // magic alone, no version
  inputs.emplace_back(std::string(7, '\0')); // short zeros
  inputs.emplace_back("definitely not a trace, just text");
  {
    std::string bad_version = v1_bytes(sample_data(1, 1));
    bad_version[4] = 99;
    inputs.push_back(std::move(bad_version)); // FLXT magic, version 99
  }
  {
    const std::string whole = v1_bytes(sample_data(5, 5));
    inputs.push_back(whole.substr(0, whole.size() - 3)); // truncated v1
  }
  {
    const std::string whole = v2_bytes(sample_data(5, 5));
    inputs.push_back(whole.substr(0, whole.size() - 3)); // truncated v2
  }
  // Seeded random garbage, including high-bit runs that stress the
  // varint probe.
  std::uint64_t state = 0xdeadbeef;
  for (int round = 0; round < 8; ++round) {
    std::string garbage(257, '\0');
    for (char& c : garbage) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      c = static_cast<char>(state >> 33);
    }
    inputs.push_back(std::move(garbage));
  }
  inputs.emplace_back(300, '\xff'); // varint continuation-bit bomb

  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const TraceReader r = open_trace_bytes(std::string(inputs[i]));
    try {
      (void)r.read();
      // Some corrupt v1 bodies still parse (no checksums) — acceptable,
      // the contract is "throw TraceIoError or parse", never crash.
    } catch (const TraceIoError&) {
      // expected for most inputs
    }
    try {
      (void)r.read_parallel(4);
    } catch (const TraceIoError&) {
    }
    EXPECT_NO_THROW((void)r.salvage()) << "salvage must not throw, input " << i;
  }
}

TEST(TraceReader, UnknownFormatErrorsMatchLegacyReader) {
  try {
    (void)open_trace_bytes("garbage bytes here").read();
    FAIL() << "expected TraceIoError";
  } catch (const TraceIoError& e) {
    EXPECT_STREQ(e.what(), "not a fluxtrace file (bad magic)");
  }
  std::string bad_version = v1_bytes(TraceData{});
  bad_version[4] = 99;
  try {
    (void)open_trace_bytes(std::move(bad_version)).read();
    FAIL() << "expected TraceIoError";
  } catch (const TraceIoError& e) {
    EXPECT_STREQ(e.what(), "unsupported trace version 99");
  }
}

} // namespace
} // namespace fluxtrace::io
