// FLXT v3 compressed columnar container: bit-identical round trips,
// parallel == sequential decode, zone hints, compression accounting,
// follower tailing of a v3 spool, and the damage contract — a corrupted
// compressed column chunk costs exactly that chunk's records, nothing
// else.
#include "fluxtrace/io/v3.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "fluxtrace/io/chunked.hpp"
#include "fluxtrace/io/follower.hpp"
#include "fluxtrace/io/trace_reader.hpp"
#include "fluxtrace/rt/thread_pool.hpp"

namespace fluxtrace::io {
namespace {

TraceData rich_data(std::size_t n_markers, std::size_t n_samples,
                    std::size_t n_waits = 0, std::uint64_t seed = 1) {
  auto rnd = [state = seed]() mutable {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 11;
  };
  TraceData d;
  std::uint64_t t = 1'000'000;
  for (std::size_t i = 0; i < n_markers; ++i) {
    Marker m;
    t += 50 + rnd() % 200;
    m.tsc = t;
    m.item = i / 2 + 1;
    m.core = static_cast<std::uint32_t>(rnd() % 8);
    m.kind = (i % 2 == 0) ? MarkerKind::Enter : MarkerKind::Leave;
    d.markers.push_back(m);
  }
  t = 1'000'000;
  for (std::size_t i = 0; i < n_samples; ++i) {
    PebsSample s;
    t += 10 + rnd() % 30;
    s.tsc = t;
    s.ip = 0x400000 + rnd() % 4096; // clustered, like a code segment
    s.core = static_cast<std::uint32_t>(rnd() % 8);
    for (std::uint64_t& r : s.regs.v) r = 0; // idle GPRs, the usual case
    s.regs.v[13] = rnd() % 64;               // item-id register traffic
    d.samples.push_back(s);
  }
  for (std::size_t i = 0; i < n_waits; ++i) {
    WaitEdge e;
    e.enter = 1'000'000 + i * 100;
    e.leave = e.enter + 40 + rnd() % 60;
    e.item = i % 7 + 1;
    e.waiter_core = static_cast<std::uint32_t>(rnd() % 8);
    e.holder_core = static_cast<std::uint32_t>(rnd() % 8);
    e.resource = static_cast<std::uint32_t>(rnd() % 4);
    e.cause = static_cast<WaitCause>(rnd() % kNumWaitCauses);
    d.wait_edges.push_back(e);
  }
  return d;
}

std::string v3_image(const TraceData& d,
                     std::size_t per_chunk = kDefaultChunkRecordsV3) {
  std::ostringstream os;
  write_trace_v3(os, d, per_chunk);
  return std::move(os).str();
}

std::string v2_image(const TraceData& d,
                     std::size_t per_chunk = kDefaultChunkRecords) {
  std::ostringstream os;
  write_trace_v2(os, d, per_chunk);
  return std::move(os).str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(os.good());
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(TraceV3, EmptyRoundTrip) {
  const std::string image = v3_image(TraceData{});
  const TraceReader reader = open_trace_bytes(image);
  EXPECT_EQ(reader.format(), TraceFormat::FlxtV3);
  const TraceData got = reader.read();
  EXPECT_TRUE(got.markers.empty());
  EXPECT_TRUE(got.samples.empty());
  EXPECT_TRUE(got.wait_edges.empty());
}

TEST(TraceV3, RoundTripBitIdentical) {
  const TraceData data = rich_data(500, 3000, 120);
  const TraceData got = open_trace_bytes(v3_image(data, 256)).read();
  // Full equality: every register of every sample, every wait edge.
  EXPECT_EQ(got, data);
}

TEST(TraceV3, RoundTripNonIdleRegisters) {
  // Full-noise registers: codecs fall back to Raw64 but identity holds.
  TraceData data = rich_data(10, 300);
  std::uint64_t state = 9;
  for (PebsSample& s : data.samples) {
    for (std::uint64_t& r : s.regs.v) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      r = state;
    }
  }
  EXPECT_EQ(open_trace_bytes(v3_image(data, 128)).read(), data);
}

TEST(TraceV3, SmallerThanV2OnTypicalData) {
  const TraceData data = rich_data(2000, 20000, 500);
  const std::string v2 = v2_image(data);
  const std::string v3 = v3_image(data);
  // The 50% acceptance bar is asserted on the 1M-sample run in
  // bench/ext_codec; here a sanity margin on small data.
  EXPECT_LT(v3.size(), v2.size() / 2)
      << "v2 " << v2.size() << " bytes, v3 " << v3.size();
}

TEST(TraceV3, ParallelDecodeIdenticalToSequential) {
  const TraceData data = rich_data(800, 10000, 64);
  const std::string image = v3_image(data, 512);
  const TraceReader reader = open_trace_bytes(image);
  const TraceData seq = reader.read();
  for (const unsigned n : {2u, 4u, 8u}) {
    EXPECT_EQ(reader.read_parallel(n), seq) << n << " threads";
  }
  EXPECT_EQ(seq, data);
}

TEST(TraceV3, MixedChunkFamilyOneFile) {
  // v2 raw and v3 compressed chunks interleave freely: one chunk
  // family. A spool that upgraded codecs mid-run stays readable.
  const TraceData a = rich_data(0, 100, 0, 7);
  const TraceData b = rich_data(0, 100, 0, 8);
  std::string image = encode_v3_file_header();
  image += encode_sample_chunk(a.samples.data(), a.samples.size());
  image += encode_sample_chunk_v3(b.samples.data(), b.samples.size());
  image += encode_eof_chunk();
  const TraceData got = open_trace_bytes(image).read();
  ASSERT_EQ(got.samples.size(), 200u);
  TraceData want;
  want.samples = a.samples;
  want.samples.insert(want.samples.end(), b.samples.begin(),
                      b.samples.end());
  EXPECT_EQ(got.samples, want.samples);
}

TEST(TraceV3, ZoneHintMatchesChunkContents) {
  const TraceData data = rich_data(0, 2048);
  const std::string image = v3_image(data, 256);
  const auto refs = index_trace_v2(image);
  std::size_t row = 0;
  for (const V2ChunkRef& ref : refs) {
    if (!is_sample_chunk_type(ref.type)) continue;
    const V3ZoneHint hint = read_v3_zone_hint(image, ref);
    ASSERT_TRUE(hint.ok);
    std::int64_t lo = std::numeric_limits<std::int64_t>::max();
    std::int64_t hi = std::numeric_limits<std::int64_t>::min();
    for (std::uint32_t k = 0; k < ref.n_records; ++k, ++row) {
      const auto t = static_cast<std::int64_t>(data.samples[row].tsc);
      lo = std::min(lo, t);
      hi = std::max(hi, t);
    }
    EXPECT_EQ(hint.min_ts, lo);
    EXPECT_EQ(hint.max_ts, hi);
  }
  EXPECT_EQ(row, data.samples.size());
}

TEST(TraceV3, ZoneHintRefusesDamagedPayload) {
  const TraceData data = rich_data(0, 512);
  std::string image = v3_image(data, 256);
  const auto refs = index_trace_v2(image);
  ASSERT_FALSE(refs.empty());
  const V2ChunkRef& ref = refs[0];
  // Flip one payload byte *outside* the hint fields: the frame CRC
  // fails, so the (intact) hint bytes must not be trusted.
  image[static_cast<std::size_t>(ref.offset) + 21 + ref.payload_bytes - 1] ^=
      0x01;
  EXPECT_FALSE(read_v3_zone_hint(image, ref).ok);
}

TEST(TraceV3, SingleChunkDamageLossLocalizedToThatChunk) {
  const TraceData data = rich_data(200, 2000, 100);
  std::string image = v3_image(data, 256);
  const auto refs = index_trace_v2(image);
  std::size_t victim = 0;
  for (std::size_t i = 0; i < refs.size(); ++i) {
    if (is_sample_chunk_type(refs[i].type)) {
      victim = i; // damage the *last* sample chunk found
    }
  }
  const V2ChunkRef v = refs[victim];
  image[static_cast<std::size_t>(v.offset) + 21 + v.payload_bytes / 2] ^=
      0x40;

  // Strict read refuses; salvage recovers everything but that chunk.
  const TraceReader reader = open_trace_bytes(image);
  EXPECT_THROW((void)reader.read(), TraceIoError);
  EXPECT_THROW((void)reader.read_parallel(4), TraceIoError);
  const SalvageReport rep = reader.salvage();
  EXPECT_EQ(rep.chunks_corrupt, 1u);
  EXPECT_EQ(rep.data.samples.size(), data.samples.size() - v.n_records);
  EXPECT_EQ(rep.data.markers.size(), data.markers.size());
  EXPECT_EQ(rep.data.wait_edges.size(), data.wait_edges.size());

  // And the surviving samples are the original ones, in order.
  std::size_t row = 0, got_at = 0;
  for (const V2ChunkRef& ref : refs) {
    if (!is_sample_chunk_type(ref.type)) continue;
    if (ref.offset != v.offset) {
      for (std::uint32_t k = 0; k < ref.n_records; ++k) {
        ASSERT_EQ(rep.data.samples[got_at++], data.samples[row + k]);
      }
    }
    row += ref.n_records;
  }
}

TEST(TraceV3, TruncationSalvagesPriorChunks) {
  const TraceData data = rich_data(64, 1024);
  const std::string image = v3_image(data, 256);
  const auto refs = index_trace_v2(image);
  ASSERT_GE(refs.size(), 3u);
  // Cut mid-payload of the second-to-last chunk.
  const V2ChunkRef& cut_ref = refs[refs.size() - 2];
  const std::size_t cut =
      static_cast<std::size_t>(cut_ref.offset) + 21 + cut_ref.payload_bytes / 2;
  const SalvageReport rep =
      open_trace_bytes(image.substr(0, cut)).salvage();
  EXPECT_EQ(rep.chunks_ok, refs.size() - 2);
  EXPECT_GT(rep.bytes_truncated, 0u);
  EXPECT_FALSE(rep.eof_ok);
}

TEST(TraceV3, HostileBitFlipsNeverCrashReader) {
  const TraceData data = rich_data(32, 256, 16);
  const std::string image = v3_image(data, 64);
  std::uint64_t state = 5;
  for (int iter = 0; iter < 400; ++iter) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    std::string mut = image;
    mut[state % mut.size()] ^= static_cast<char>(1u << (state >> 32) % 8);
    const TraceReader reader = open_trace_bytes(mut);
    try {
      (void)reader.read();
    } catch (const TraceIoError&) {
      // expected for most flips
    }
    (void)reader.salvage(); // must never throw on in-memory bytes
  }
}

TEST(TraceV3, CompressionStatsAccountEveryColumn) {
  const TraceData data = rich_data(512, 4096, 128);
  const std::string image = v3_image(data, 512);
  const auto cols = v3_compression_stats(image);
  ASSERT_FALSE(cols.empty());
  std::uint64_t raw_total = 0, enc_total = 0;
  bool saw_ts = false;
  for (const V3ColumnSummary& c : cols) {
    raw_total += c.raw_bytes;
    enc_total += c.enc_bytes;
    if (c.name == "samples.ts") {
      saw_ts = true;
      EXPECT_LT(c.enc_bytes, c.raw_bytes / 2);
    }
  }
  EXPECT_TRUE(saw_ts);
  // Raw bytes must equal the v2 record footprint of the same streams.
  const std::uint64_t expect_raw = data.samples.size() * (8 + 8 + 4 + 16 * 8) +
                                   data.markers.size() * (8 + 8 + 4 + 1) +
                                   data.wait_edges.size() * (8 + 8 + 8 + 13);
  EXPECT_EQ(raw_total, expect_raw);
  EXPECT_LT(enc_total, raw_total);
}

TEST(TraceV3, FollowerTailsV3Spool) {
  const std::string path = temp_path("follower_v3.flxt3");
  const TraceData data = rich_data(40, 400, 20);
  write_file(path, encode_v3_file_header());
  TraceFollower f = TraceFollower::open(path, {});
  std::uint64_t now = 0;
  TraceData got;

  // Spool chunk-at-a-time, polling between appends, like a live writer.
  std::ofstream os(path, std::ios::binary | std::ios::app);
  const auto spool = [&](const std::string& chunk) {
    os.write(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    os.flush();
    for (int i = 0; i < 4; ++i) {
      auto pr = f.poll(now);
      now += 1'000'000;
      got.markers.insert(got.markers.end(), pr.data.markers.begin(),
                         pr.data.markers.end());
      got.samples.insert(got.samples.end(), pr.data.samples.begin(),
                         pr.data.samples.end());
      got.wait_edges.insert(got.wait_edges.end(), pr.data.wait_edges.begin(),
                            pr.data.wait_edges.end());
    }
  };
  for (std::size_t at = 0; at < data.samples.size(); at += 100) {
    spool(encode_sample_chunk_v3(data.samples.data() + at, 100));
  }
  spool(encode_marker_chunk_v3(data.markers.data(), data.markers.size()));
  spool(encode_wait_chunk_v3(data.wait_edges.data(), data.wait_edges.size()));
  spool(encode_eof_chunk());
  while (!f.finished()) {
    (void)f.poll(now);
    now += 1'000'000;
  }

  EXPECT_EQ(f.finish_reason(), FollowFinish::CleanEof);
  EXPECT_TRUE(f.stats().reconciled());
  EXPECT_EQ(f.stats().chunks_salvaged, 0u);
  EXPECT_EQ(got.samples, data.samples);
  EXPECT_EQ(got.markers, data.markers);
  EXPECT_EQ(got.wait_edges, data.wait_edges);
  std::remove(path.c_str());
}

TEST(TraceV3, FollowerCountsDamagedV3ChunkInLedger) {
  const std::string path = temp_path("follower_v3_damage.flxt3");
  const TraceData data = rich_data(0, 300);
  std::string image = v3_image(data, 100);
  const auto refs = index_trace_v2(image);
  // Corrupt the middle sample chunk's payload, keep enough bytes after
  // it that the follower declares damage instead of waiting on a tail.
  const V2ChunkRef& v = refs[1];
  image[static_cast<std::size_t>(v.offset) + 21 + 4] ^= 0x10;
  write_file(path, image + std::string(1u << 16, '\0'));

  TraceFollowerConfig cfg;
  cfg.resync_after_bytes = 1024;
  TraceFollower f = TraceFollower::open(path, cfg);
  std::uint64_t now = 0;
  TraceData got;
  for (int i = 0; i < 200 && !f.finished(); ++i) {
    auto pr = f.poll(now);
    now += 10'000'000;
    got.samples.insert(got.samples.end(), pr.data.samples.begin(),
                       pr.data.samples.end());
  }
  // Exactly one chunk of samples lost; the loss shows in the ledger.
  EXPECT_EQ(got.samples.size(), data.samples.size() - v.n_records);
  EXPECT_GE(f.stats().chunks_salvaged + f.stats().chunks_torn, 1u);
  std::remove(path.c_str());
}

TEST(TraceV3, SaveLoadFileRoundTrip) {
  const std::string path = temp_path("v3_roundtrip.flxt3");
  const TraceData data = rich_data(100, 1000, 30);
  save_trace_v3(path, data);
  const TraceReader reader = open_trace(path);
  EXPECT_EQ(reader.format(), TraceFormat::FlxtV3);
  EXPECT_EQ(reader.read(), data);
  std::remove(path.c_str());
}

} // namespace
} // namespace fluxtrace::io
