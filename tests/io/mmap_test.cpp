// mmap zero-copy open (io::open_trace): equality with the pread path,
// the empty-file and shrink edge cases, and fault-injected reads. The
// contract: mapped and slurped reads are byte-for-byte the same trace;
// a file truncated while mapped is a strict-read error and a clamped
// salvage, never a SIGBUS.
#include "fluxtrace/io/mmap_source.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "fluxtrace/io/chunked.hpp"
#include "fluxtrace/io/trace_reader.hpp"
#include "fluxtrace/io/v3.hpp"

namespace fluxtrace::io {
namespace {

TraceData small_data(std::size_t n_samples, std::uint64_t seed = 1) {
  auto rnd = [state = seed]() mutable {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 11;
  };
  TraceData d;
  for (std::size_t i = 0; i < n_samples; ++i) {
    PebsSample s;
    s.tsc = 1000 + i * 10;
    s.ip = 0x1000 + rnd() % 256;
    s.core = static_cast<std::uint32_t>(rnd() % 4);
    d.samples.push_back(s);
  }
  return d;
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(os.good());
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::string v2_file(const std::string& path, const TraceData& d,
                    std::size_t per_chunk = 64) {
  std::ostringstream os;
  write_trace_v2(os, d, per_chunk);
  const std::string image = std::move(os).str();
  write_file(path, image);
  return image;
}

TEST(MmapOpen, MmapAndPreadReadIdentically) {
  const std::string path = temp_path("mmap_eq.flxt2");
  const TraceData data = small_data(500);
  v2_file(path, data);

  const TraceReader mapped = open_trace(path);
  OpenOptions opts;
  opts.force_pread = true;
  const TraceReader slurped = open_trace(path, opts);

  EXPECT_TRUE(mapped.mapped());
  EXPECT_FALSE(slurped.mapped());
  EXPECT_EQ(mapped.bytes(), slurped.bytes());
  EXPECT_EQ(mapped.read(), slurped.read());
  EXPECT_EQ(mapped.read(), data);
  std::remove(path.c_str());
}

TEST(MmapOpen, EmptyFileFallsBackToPread) {
  const std::string path = temp_path("mmap_empty.flxt");
  write_file(path, "");
  // mmap of zero bytes is EINVAL; the facade must fall back, not fail.
  EXPECT_EQ(MmapByteSource::map(path), nullptr);
  const TraceReader reader = open_trace(path);
  EXPECT_FALSE(reader.mapped());
  EXPECT_EQ(reader.size_bytes(), 0u);
  EXPECT_EQ(reader.format(), TraceFormat::Unknown);
  std::remove(path.c_str());
}

TEST(MmapOpen, MissingFileThrows) {
  EXPECT_THROW((void)open_trace(temp_path("does_not_exist.flxt")),
               TraceIoError);
}

TEST(MmapOpen, TruncatedWhileMappedStrictReadThrows) {
  const std::string path = temp_path("mmap_shrink.flxt2");
  const TraceData data = small_data(800);
  const std::string image = v2_file(path, data);

  const TraceReader reader = open_trace(path);
  ASSERT_TRUE(reader.mapped());
  // Shrink the file under the live mapping: pages past the new size
  // would fault, so the reader must clamp, not touch them.
  ASSERT_EQ(::truncate(path.c_str(), static_cast<off_t>(image.size() / 2)),
            0);
  try {
    (void)reader.read();
    FAIL() << "strict read of a shrunk mapping must throw";
  } catch (const TraceIoError& e) {
    EXPECT_NE(std::string(e.what()).find("truncated while mapped"),
              std::string::npos)
        << e.what();
  }

  // Salvage clamps to the surviving prefix and accounts the lost tail.
  const SalvageReport rep = reader.salvage();
  EXPECT_GT(rep.chunks_ok, 0u);
  EXPECT_GT(rep.bytes_truncated, 0u);
  EXPECT_FALSE(rep.eof_ok);
  // Every salvaged sample is a prefix of the original stream.
  ASSERT_LE(rep.data.samples.size(), data.samples.size());
  for (std::size_t i = 0; i < rep.data.samples.size(); ++i) {
    EXPECT_EQ(rep.data.samples[i], data.samples[i]);
  }
  std::remove(path.c_str());
}

TEST(MmapOpen, V3TraceReadsViaMmap) {
  const std::string path = temp_path("mmap_v3.flxt3");
  const TraceData data = small_data(600);
  save_trace_v3(path, data, 128);
  const TraceReader reader = open_trace(path);
  EXPECT_TRUE(reader.mapped());
  EXPECT_EQ(reader.format(), TraceFormat::FlxtV3);
  EXPECT_EQ(reader.read(), data);
  std::remove(path.c_str());
}

TEST(MmapOpen, TransientFaultsRetryOnPreadPath) {
  const std::string path = temp_path("mmap_fault.flxt2");
  const TraceData data = small_data(300);
  v2_file(path, data);

  // Fail the first two reads, then succeed: the open must retry
  // through and produce the full trace via the pread path (a fault
  // hook implies pread — a live mapping has no per-read hook).
  int calls = 0;
  OpenOptions opts;
  opts.read_fault = [&calls]() {
    return ++calls <= 2 ? ReadFault::Transient : ReadFault::None;
  };
  const TraceReader reader = open_trace(path, opts);
  EXPECT_FALSE(reader.mapped());
  EXPECT_EQ(reader.read(), data);
  EXPECT_GE(calls, 3);
  std::remove(path.c_str());
}

TEST(MmapOpen, ShortReadsCompleteViaRetry) {
  const std::string path = temp_path("mmap_short.flxt2");
  const TraceData data = small_data(400);
  v2_file(path, data);

  OpenOptions opts;
  int calls = 0;
  opts.read_fault = [&calls]() {
    // Every other read is cut short; the loop must still assemble the
    // whole image.
    return (++calls % 2 == 0) ? ReadFault::Short : ReadFault::None;
  };
  const TraceReader reader = open_trace(path, opts);
  EXPECT_EQ(reader.read(), data);
  std::remove(path.c_str());
}

TEST(MmapOpen, PersistentFaultExhaustsAttemptsAndThrows) {
  const std::string path = temp_path("mmap_dead.flxt2");
  v2_file(path, small_data(100));

  OpenOptions opts;
  opts.max_read_attempts = 3;
  opts.read_fault = []() { return ReadFault::Transient; };
  EXPECT_THROW((void)open_trace(path, opts), TraceIoError);
  std::remove(path.c_str());
}

TEST(MmapByteSourceTest, ReadAtServesFromMapping) {
  const std::string path = temp_path("mmap_src.bin");
  const std::string payload = "0123456789abcdef";
  write_file(path, payload);
  const auto src = MmapByteSource::map(path);
  ASSERT_NE(src, nullptr);
  const auto sz = src->size();
  ASSERT_EQ(sz.status, ReadStatus::Ok);
  EXPECT_EQ(sz.size, payload.size());

  char buf[8] = {};
  const auto rr = src->read_at(4, buf, 8);
  ASSERT_EQ(rr.status, ReadStatus::Ok);
  EXPECT_EQ(rr.n, 8u);
  EXPECT_EQ(std::string(buf, 8), "456789ab");

  // Reads past the end are short, not errors.
  const auto tail = src->read_at(12, buf, 8);
  ASSERT_EQ(tail.status, ReadStatus::Ok);
  EXPECT_EQ(tail.n, 4u);
  std::remove(path.c_str());
}

} // namespace
} // namespace fluxtrace::io
