#include "fluxtrace/io/folded.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace fluxtrace::io {
namespace {

TEST(Folded, EmitsOneLinePerBucket) {
  SymbolTable symtab;
  const SymbolId fa = symtab.add("fa");
  const SymbolId fb = symtab.add("fb");
  core::TraceTable t;
  t.add_sample(1, fa, 0, 10);
  t.add_sample(1, fa, 0, 20);
  t.add_sample(1, fb, 0, 30);
  t.add_sample(2, fa, 0, 40);

  std::ostringstream os;
  write_folded(os, t, symtab);
  EXPECT_EQ(os.str(),
            "item_1;fa 2\n"
            "item_1;fb 1\n"
            "item_2;fa 1\n");
}

TEST(Folded, MinSamplesFilters) {
  SymbolTable symtab;
  const SymbolId fa = symtab.add("fa");
  core::TraceTable t;
  t.add_sample(1, fa, 0, 10);
  t.add_sample(2, fa, 0, 20);
  t.add_sample(2, fa, 0, 30);
  std::ostringstream os;
  write_folded(os, t, symtab, /*min_samples=*/2);
  EXPECT_EQ(os.str(), "item_2;fa 2\n");
}

TEST(TableCsv, EmitsPlottingReadyRows) {
  SymbolTable symtab;
  const SymbolId fa = symtab.add("fa");
  core::TraceTable t;
  t.add_sample(3, fa, 0, 3000);
  t.add_sample(3, fa, 0, 6000);
  t.add_window(core::ItemWindow{3, 0, 0, 9000});
  std::ostringstream os;
  write_table_csv(os, t, symtab, CpuSpec{}); // 3 GHz
  const std::string out = os.str();
  EXPECT_NE(out.find("item,function,samples,elapsed_us,window_us"),
            std::string::npos);
  EXPECT_NE(out.find("3,fa,2,1.000000,3.000000"), std::string::npos) << out;
}

TEST(Folded, EmptyTableEmitsNothing) {
  SymbolTable symtab;
  core::TraceTable t;
  std::ostringstream os;
  write_folded(os, t, symtab);
  EXPECT_TRUE(os.str().empty());
}

} // namespace
} // namespace fluxtrace::io
