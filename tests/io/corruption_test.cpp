// Robustness of the v1 ("FLXT") and compact ("FLXZ") parsers against
// damaged input: every prefix truncation must throw TraceIoError, and
// every single-byte corruption must either throw or return a parse —
// never crash, hang, or allocate absurdly. (Byte-flip *detection* needs
// checksums, which only the v2 chunked container has.)
#include <gtest/gtest.h>

#include <sstream>

#include "fluxtrace/io/compact.hpp"
#include "fluxtrace/io/trace_file.hpp"

// These tests deliberately exercise the legacy read_*()/load_*() entry
// points, now io-internal plumbing (io/legacy.hpp) behind
// io::open_trace().
#include "fluxtrace/io/legacy.hpp"

namespace fluxtrace::io {
namespace {

TraceData small_data(std::uint64_t seed = 1) {
  auto rnd = [state = seed]() mutable {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 11;
  };
  TraceData d;
  for (int i = 0; i < 8; ++i) {
    Marker m;
    m.tsc = rnd() % 100000;
    m.item = rnd() % 64;
    m.core = static_cast<std::uint32_t>(rnd() % 4);
    m.kind = (i % 2 == 0) ? MarkerKind::Enter : MarkerKind::Leave;
    d.markers.push_back(m);
  }
  for (int i = 0; i < 12; ++i) {
    PebsSample s;
    s.tsc = rnd() % 100000;
    s.ip = rnd();
    s.core = static_cast<std::uint32_t>(rnd() % 4);
    for (std::uint64_t& r : s.regs.v) r = rnd();
    d.samples.push_back(s);
  }
  return d;
}

std::string v1_bytes(const TraceData& d) {
  std::ostringstream os;
  write_trace(os, d);
  return std::move(os).str();
}

std::string compact_bytes(const TraceData& d) {
  std::ostringstream os;
  write_compact(os, d);
  return std::move(os).str();
}

TEST(TraceCorruption, V1EveryPrefixTruncationThrows) {
  const std::string bytes = v1_bytes(small_data());
  for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
    std::istringstream in(bytes.substr(0, keep));
    EXPECT_THROW((void)read_trace(in), TraceIoError) << "keep=" << keep;
  }
  std::istringstream whole(bytes);
  EXPECT_NO_THROW((void)read_trace(whole));
}

TEST(TraceCorruption, V1EveryByteFlipThrowsOrParses) {
  const TraceData d = small_data(3);
  const std::string bytes = v1_bytes(d);
  for (std::size_t at = 0; at < bytes.size(); ++at) {
    for (const unsigned char mask : {0x01, 0x80, 0xff}) {
      std::string mutated = bytes;
      mutated[at] = static_cast<char>(
          static_cast<unsigned char>(mutated[at]) ^ mask);
      std::istringstream in(mutated);
      try {
        const TraceData back = read_trace(in);
        // v1 has no checksums: a flip in a record body parses to altered
        // records. The parse must still be structurally bounded.
        EXPECT_LE(back.markers.size(), d.markers.size() + 1)
            << "at=" << at << " mask=" << int(mask);
        EXPECT_LE(back.samples.size(), d.samples.size() + 1)
            << "at=" << at << " mask=" << int(mask);
      } catch (const TraceIoError&) {
        // expected for flips in the header, counts, or marker kinds
      }
    }
  }
}

TEST(TraceCorruption, V1HugeCountsRejectedBeforeAllocating) {
  std::string bytes = v1_bytes(TraceData{});
  for (std::size_t i = 8; i < 16; ++i) bytes[i] = '\xff'; // marker count
  std::istringstream in(bytes);
  EXPECT_THROW((void)read_trace(in), TraceIoError);
}

TEST(TraceCorruption, CompactEveryPrefixTruncationThrows) {
  const std::string bytes = compact_bytes(small_data());
  for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
    std::istringstream in(bytes.substr(0, keep));
    EXPECT_THROW((void)read_compact(in), TraceIoError) << "keep=" << keep;
  }
  std::istringstream whole(bytes);
  EXPECT_NO_THROW((void)read_compact(whole));
}

TEST(TraceCorruption, CompactEveryByteFlipThrowsOrParses) {
  const std::string bytes = compact_bytes(small_data(7));
  for (std::size_t at = 0; at < bytes.size(); ++at) {
    for (const unsigned char mask : {0x01, 0x80, 0xff}) {
      std::string mutated = bytes;
      mutated[at] = static_cast<char>(
          static_cast<unsigned char>(mutated[at]) ^ mask);
      std::istringstream in(mutated);
      try {
        const TraceData back = read_compact(in);
        EXPECT_LT(back.markers.size() + back.samples.size(), 1u << 20)
            << "at=" << at << " mask=" << int(mask);
      } catch (const TraceIoError&) {
        // expected: bad magic/version, torn varint, bad kind…
      }
    }
  }
}

TEST(TraceCorruption, PathErrorsCarryContext) {
  try {
    (void)load_trace("/nonexistent/dir/x.trace");
    FAIL() << "expected TraceIoError";
  } catch (const TraceIoError& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/dir/x.trace"),
              std::string::npos);
  }
  try {
    save_trace("/nonexistent/dir/x.trace", TraceData{});
    FAIL() << "expected TraceIoError";
  } catch (const TraceIoError& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/dir/x.trace"),
              std::string::npos);
  }
  try {
    (void)load_compact("/nonexistent/dir/x.flxz");
    FAIL() << "expected TraceIoError";
  } catch (const TraceIoError& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/dir/x.flxz"),
              std::string::npos);
  }
  try {
    save_compact("/nonexistent/dir/x.flxz", TraceData{});
    FAIL() << "expected TraceIoError";
  } catch (const TraceIoError& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/dir/x.flxz"),
              std::string::npos);
  }
}

TEST(TraceCorruption, CompactSaveLoadRoundTrip) {
  const TraceData d = small_data(11);
  const std::string path = ::testing::TempDir() + "/flxz_test.flxz";
  save_compact(path, d);
  const TraceData back = load_compact(path);
  // Compact is lossy in GPRs other than R13 and re-sorts by (core, tsc);
  // counts survive exactly.
  EXPECT_EQ(back.markers.size(), d.markers.size());
  EXPECT_EQ(back.samples.size(), d.samples.size());
}

} // namespace
} // namespace fluxtrace::io

