#include "fluxtrace/io/compact.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "fluxtrace/core/integrator.hpp"

// These tests deliberately exercise the legacy read_compact()/
// load_compact() entry points, now io-internal plumbing (io/legacy.hpp)
// behind io::open_trace().
#include "fluxtrace/io/legacy.hpp"

namespace fluxtrace::io {
namespace {

TraceData realistic_stream(std::size_t items, std::uint64_t seed) {
  // Shaped like a real run: per-core monotone times, microsecond-scale
  // gaps, ips inside a small text segment, item ids in R13.
  auto rnd = [state = seed]() mutable {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 17;
  };
  TraceData d;
  Tsc t = 1000;
  for (std::size_t i = 0; i < items; ++i) {
    const auto core = static_cast<std::uint32_t>(i % 3);
    const Tsc enter = t;
    const Tsc leave = enter + 2000 + rnd() % 30000;
    d.markers.push_back(Marker{enter, i + 1, core, MarkerKind::Enter});
    d.markers.push_back(Marker{leave, i + 1, core, MarkerKind::Leave});
    Tsc st = enter;
    while ((st += 2500 + rnd() % 700) < leave) {
      PebsSample s;
      s.tsc = st;
      s.core = core;
      s.ip = 0x400000 + rnd() % 0x8000;
      s.regs.set(kItemIdReg, i + 1);
      d.samples.push_back(s);
    }
    t = leave + 500 + rnd() % 2000;
  }
  return d;
}

/// Equality modulo record order and the non-R13 registers the compact
/// format drops.
void expect_equivalent(const TraceData& a, TraceData b) {
  auto marker_key = [](const Marker& m) {
    return std::tuple(m.core, m.tsc, m.item, m.kind);
  };
  auto sample_key = [](const PebsSample& s) {
    return std::tuple(s.core, s.tsc, s.ip, s.regs.get(kItemIdReg));
  };
  auto ms_a = a.markers;
  auto ms_b = b.markers;
  std::sort(ms_a.begin(), ms_a.end(),
            [&](auto& x, auto& y) { return marker_key(x) < marker_key(y); });
  std::sort(ms_b.begin(), ms_b.end(),
            [&](auto& x, auto& y) { return marker_key(x) < marker_key(y); });
  ASSERT_EQ(ms_a.size(), ms_b.size());
  for (std::size_t i = 0; i < ms_a.size(); ++i) {
    EXPECT_EQ(marker_key(ms_a[i]), marker_key(ms_b[i])) << i;
  }
  auto ss_a = a.samples;
  auto ss_b = b.samples;
  std::sort(ss_a.begin(), ss_a.end(),
            [&](auto& x, auto& y) { return sample_key(x) < sample_key(y); });
  std::sort(ss_b.begin(), ss_b.end(),
            [&](auto& x, auto& y) { return sample_key(x) < sample_key(y); });
  ASSERT_EQ(ss_a.size(), ss_b.size());
  for (std::size_t i = 0; i < ss_a.size(); ++i) {
    EXPECT_EQ(sample_key(ss_a[i]), sample_key(ss_b[i])) << i;
  }
}

TEST(CompactTrace, EmptyRoundTrip) {
  std::stringstream ss;
  write_compact(ss, TraceData{});
  const TraceData back = read_compact(ss);
  EXPECT_TRUE(back.markers.empty());
  EXPECT_TRUE(back.samples.empty());
}

class CompactRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CompactRoundTrip, PreservesEverythingAnalysesRead) {
  const TraceData d = realistic_stream(60, GetParam());
  std::stringstream ss;
  write_compact(ss, d);
  expect_equivalent(d, read_compact(ss));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompactRoundTrip,
                         ::testing::Values(1, 2, 3, 42, 777));

TEST(CompactTrace, MuchSmallerThanFullContainer) {
  const TraceData d = realistic_stream(200, 9);
  std::stringstream full;
  write_trace(full, d);
  const std::uint64_t compact = compact_size(d);
  EXPECT_LT(compact * 6, full.str().size())
      << "compact " << compact << " vs full " << full.str().size();
}

TEST(CompactTrace, NoItemSentinelSurvives) {
  TraceData d;
  PebsSample s;
  s.tsc = 100;
  s.regs.set(kItemIdReg, kNoItem);
  d.samples.push_back(s);
  std::stringstream ss;
  write_compact(ss, d);
  const TraceData back = read_compact(ss);
  ASSERT_EQ(back.samples.size(), 1u);
  EXPECT_EQ(back.samples[0].regs.get(kItemIdReg), kNoItem);
}

TEST(CompactTrace, RejectsBadMagicAndTruncation) {
  std::stringstream bad("definitely not a trace");
  EXPECT_THROW((void)read_compact(bad), TraceIoError);

  const TraceData d = realistic_stream(10, 5);
  std::stringstream ss;
  write_compact(ss, d);
  const std::string bytes = ss.str();
  std::stringstream cut(bytes.substr(0, bytes.size() / 2));
  EXPECT_THROW((void)read_compact(cut), TraceIoError);
}

TEST(CompactTrace, RejectsVarintOverflow) {
  // Ten continuation bytes exceed 64 bits: must be an error, not UB.
  std::stringstream ss(std::string(12, '\xff'));
  EXPECT_THROW((void)read_compact(ss), TraceIoError);
}

TEST(CompactTrace, IntegratesIdenticallyToFullFormat) {
  // The analyses must not care which container the trace came through.
  const TraceData d = realistic_stream(40, 11);
  std::stringstream ss;
  write_compact(ss, d);
  const TraceData back = read_compact(ss);

  SymbolTable symtab;
  symtab.add("big_fn", 0x8000); // covers all generated ips
  core::TraceIntegrator integ(symtab);
  const auto t1 = integ.integrate(d.markers, d.samples);
  const auto t2 = integ.integrate(back.markers, back.samples);
  ASSERT_EQ(t1.items().size(), t2.items().size());
  for (const ItemId item : t1.items()) {
    EXPECT_EQ(t1.item_window_total(item), t2.item_window_total(item));
    EXPECT_EQ(t1.item_estimated_total(item), t2.item_estimated_total(item));
  }
}

} // namespace
} // namespace fluxtrace::io

