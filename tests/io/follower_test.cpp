// io::TraceFollower: the crash-consistent live reader. The contract
// under test: (1) a chunk is delivered only once its full CRC-framed
// bytes are durable — a torn tail is "not yet", never decoded; (2) the
// ledger `chunks_observed == consumed + salvaged + torn` holds at every
// finish, and reconciles against the writer's own chunk ledger; (3)
// transient read faults retry with capped backoff and never corrupt the
// stream; (4) producer death degrades into a final salvage pass, not a
// hang.
#include "fluxtrace/io/follower.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "fluxtrace/io/chunked.hpp"
#include "fluxtrace/io/resilient.hpp"
#include "fluxtrace/sim/fault.hpp"

namespace fluxtrace::io {
namespace {

std::vector<Marker> make_markers(std::size_t n, std::uint64_t seed = 1) {
  std::vector<Marker> ms;
  for (std::size_t i = 0; i < n; ++i) {
    Marker m;
    m.tsc = seed + i * 10;
    m.item = i / 2 + 1;
    m.core = 1;
    m.kind = (i % 2 == 0) ? MarkerKind::Enter : MarkerKind::Leave;
    ms.push_back(m);
  }
  return ms;
}

SampleVec make_samples(std::size_t n, std::uint64_t seed = 1) {
  SampleVec ss;
  for (std::size_t i = 0; i < n; ++i) {
    PebsSample s;
    s.tsc = seed + i * 7;
    s.ip = 0x1000 + i;
    s.core = 1;
    ss.push_back(s);
  }
  return ss;
}

std::string v2_image(const io::TraceData& data, std::size_t per_chunk = 8) {
  std::ostringstream os;
  write_trace_v2(os, data, per_chunk);
  return os.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(os.good());
}

void append_file(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::app);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(os.good());
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

/// Poll until finished or `max` polls, stepping the virtual clock.
TraceFollower::PollResult drain(TraceFollower& f, std::uint64_t& now,
                                TraceData& out, std::size_t max = 1000,
                                std::uint64_t step = 1'000'000) {
  TraceFollower::PollResult last;
  for (std::size_t i = 0; i < max && !f.finished(); ++i) {
    auto pr = f.poll(now);
    now += step;
    out.markers.insert(out.markers.end(), pr.data.markers.begin(),
                       pr.data.markers.end());
    out.samples.insert(out.samples.end(), pr.data.samples.begin(),
                       pr.data.samples.end());
    last = std::move(pr);
    if (last.finished) break;
  }
  return last;
}

TEST(TraceFollower, CleanFileFollowsToEof) {
  const std::string path = temp_path("follower_clean.flxt2");
  io::TraceData data{make_markers(20), make_samples(37)};
  write_file(path, v2_image(data));

  TraceFollowerConfig cfg;
  TraceFollower f = TraceFollower::open(path, cfg);
  std::uint64_t now = 0;
  TraceData got;
  auto last = drain(f, now, got);

  EXPECT_TRUE(last.finished);
  EXPECT_EQ(f.finish_reason(), FollowFinish::CleanEof);
  EXPECT_TRUE(f.stats().eof_seen);
  EXPECT_TRUE(f.stats().reconciled());
  EXPECT_EQ(f.stats().chunks_torn, 0u);
  EXPECT_EQ(f.stats().chunks_salvaged, 0u);
  EXPECT_EQ(got.markers.size(), data.markers.size());
  EXPECT_EQ(got.samples.size(), data.samples.size());
  EXPECT_EQ(got, data);
  std::remove(path.c_str());
}

TEST(TraceFollower, TornTailIsNotYetNeverDecoded) {
  const std::string path = temp_path("follower_torn.flxt2");
  io::TraceData data{make_markers(16), {}};
  const std::string image = v2_image(data, 8); // 2 marker chunks + eof
  const auto refs = index_trace_v2(image);
  ASSERT_EQ(refs.size(), 2u);
  // Cut mid-payload of the second chunk: a torn tail.
  const std::size_t cut = static_cast<std::size_t>(refs[1].offset) + 21 +
                          refs[1].payload_bytes / 2;
  write_file(path, image.substr(0, cut));

  TraceFollower f = TraceFollower::open(path, {});
  std::uint64_t now = 0;
  TraceData got;
  for (int i = 0; i < 5; ++i) {
    auto pr = f.poll(now);
    now += 1'000'000;
    got.markers.insert(got.markers.end(), pr.data.markers.begin(),
                       pr.data.markers.end());
  }
  // Only the first complete chunk was delivered; the torn tail waits.
  EXPECT_FALSE(f.finished());
  EXPECT_EQ(f.stats().chunks_consumed, 1u);
  EXPECT_EQ(got.markers.size(), 8u);

  // The writer finishes the chunk (and the eof sentinel): follow to end.
  append_file(path, image.substr(cut));
  auto last = drain(f, now, got);
  EXPECT_TRUE(last.finished);
  EXPECT_EQ(f.finish_reason(), FollowFinish::CleanEof);
  EXPECT_EQ(f.stats().chunks_consumed, 2u);
  EXPECT_EQ(f.stats().chunks_torn, 0u);
  EXPECT_TRUE(f.stats().reconciled());
  EXPECT_EQ(got.markers, data.markers);
  std::remove(path.c_str());
}

TEST(TraceFollower, ProducerDeathSalvagesAndReconciles) {
  const std::string path = temp_path("follower_death.flxt2");
  io::TraceData data{make_markers(16), {}};
  const std::string image = v2_image(data, 8);
  const auto refs = index_trace_v2(image);
  ASSERT_EQ(refs.size(), 2u);
  // The "kill -9": first chunk durable, second torn mid-payload, no eof.
  const std::size_t cut = static_cast<std::size_t>(refs[1].offset) + 21 +
                          refs[1].payload_bytes / 2;
  write_file(path, image.substr(0, cut));

  TraceFollowerConfig cfg;
  cfg.liveness_timeout_ns = 10'000'000;
  TraceFollower f = TraceFollower::open(path, cfg);
  std::uint64_t now = 0;
  TraceData got;
  auto last = drain(f, now, got, 1000, 1'000'000);

  EXPECT_TRUE(last.finished);
  EXPECT_EQ(f.finish_reason(), FollowFinish::ProducerDeath);
  EXPECT_EQ(f.stats().chunks_consumed, 1u);
  EXPECT_EQ(f.stats().chunks_torn, 1u);
  EXPECT_EQ(f.stats().chunks_salvaged, 0u);
  EXPECT_GT(f.stats().bytes_torn, 0u);
  EXPECT_TRUE(f.stats().reconciled());
  // The torn chunk was never decoded: only chunk 1's markers arrived.
  EXPECT_EQ(got.markers.size(), 8u);
  std::remove(path.c_str());
}

TEST(TraceFollower, ProducerAliveProbeDefersDeath) {
  const std::string path = temp_path("follower_probe.flxt2");
  io::TraceData data{make_markers(8), {}};
  const std::string image = v2_image(data, 8);
  write_file(path, image.substr(0, image.size() - 10)); // no eof yet

  bool alive = true;
  TraceFollowerConfig cfg;
  cfg.liveness_timeout_ns = 5'000'000;
  cfg.producer_alive = [&alive]() { return alive; };
  TraceFollower f = TraceFollower::open(path, cfg);
  std::uint64_t now = 0;
  TraceData got;
  for (int i = 0; i < 50 && !f.finished(); ++i) {
    f.poll(now);
    now += 1'000'000;
  }
  EXPECT_FALSE(f.finished()) << "probe vouched; watchdog must not fire";
  alive = false;
  auto last = drain(f, now, got, 50);
  EXPECT_TRUE(last.finished);
  EXPECT_EQ(f.finish_reason(), FollowFinish::ProducerDeath);
  std::remove(path.c_str());
}

TEST(TraceFollower, TransientReadFaultsRetryWithBackoff) {
  const std::string path = temp_path("follower_transient.flxt2");
  io::TraceData data{make_markers(24), make_samples(40)};
  write_file(path, v2_image(data));

  sim::FaultPlanConfig fcfg;
  fcfg.seed = 7;
  fcfg.read_transient_rate = 0.5;
  sim::FaultPlan plan(fcfg);

  TraceFollowerConfig cfg;
  cfg.max_read_attempts = 2; // force cross-poll backoff arming
  auto source = std::make_unique<FaultableByteSource>(
      std::make_unique<FileByteSource>(path),
      [&plan]() {
        switch (plan.read_fault()) {
          case sim::ReadFaultKind::Transient: return ReadFault::Transient;
          case sim::ReadFaultKind::Short: return ReadFault::Short;
          case sim::ReadFaultKind::None: break;
        }
        return ReadFault::None;
      },
      nullptr);
  TraceFollower f(cfg, std::move(source));

  std::uint64_t now = 0;
  TraceData got;
  auto last = drain(f, now, got, 5000, 2'000'000);
  EXPECT_TRUE(last.finished);
  EXPECT_EQ(f.finish_reason(), FollowFinish::CleanEof);
  EXPECT_TRUE(f.stats().reconciled());
  EXPECT_GT(f.stats().read_transients, 0u);
  EXPECT_GT(plan.read_transients(), 0u);
  EXPECT_EQ(got, data);
  std::remove(path.c_str());
}

TEST(TraceFollower, ShortReadsOnlySlowProgress) {
  const std::string path = temp_path("follower_short.flxt2");
  io::TraceData data{make_markers(24), make_samples(40)};
  write_file(path, v2_image(data));

  sim::FaultPlanConfig fcfg;
  fcfg.read_short.push_back({0, 20}); // first 20 reads are short
  sim::FaultPlan plan(fcfg);

  auto source = std::make_unique<FaultableByteSource>(
      std::make_unique<FileByteSource>(path),
      [&plan]() {
        return plan.read_fault() == sim::ReadFaultKind::Short
                   ? ReadFault::Short
                   : ReadFault::None;
      },
      nullptr);
  TraceFollower f(TraceFollowerConfig{}, std::move(source));

  std::uint64_t now = 0;
  TraceData got;
  auto last = drain(f, now, got);
  EXPECT_TRUE(last.finished);
  EXPECT_EQ(f.finish_reason(), FollowFinish::CleanEof);
  EXPECT_GT(f.stats().short_reads, 0u);
  EXPECT_EQ(f.stats().chunks_torn, 0u);
  EXPECT_EQ(got, data);
  std::remove(path.c_str());
}

TEST(TraceFollower, StaleSizeMetadataIsNotYet) {
  const std::string path = temp_path("follower_stale.flxt2");
  io::TraceData data{make_markers(16), {}};
  const std::string image = v2_image(data, 8);
  write_file(path, image);
  const auto refs = index_trace_v2(image);
  ASSERT_EQ(refs.size(), 2u);
  // Stale fstat: the first queries see the file cut mid-chunk-2.
  const std::uint64_t stale_size =
      refs[1].offset + 21 + refs[1].payload_bytes / 2;

  sim::FaultPlanConfig fcfg;
  fcfg.read_stale_queries = 3;
  fcfg.read_truncate_at = stale_size;
  sim::FaultPlan plan(fcfg);

  auto source = std::make_unique<FaultableByteSource>(
      std::make_unique<FileByteSource>(path), nullptr,
      [&plan]() { return plan.size_query_stale(); }, stale_size);
  TraceFollower f(TraceFollowerConfig{}, std::move(source));

  std::uint64_t now = 0;
  auto pr1 = f.poll(now);
  // Stale view ends mid-chunk: chunk 1 commits, the tail waits.
  EXPECT_EQ(f.stats().chunks_consumed, 1u);
  EXPECT_EQ(f.stats().chunks_torn, 0u);
  EXPECT_FALSE(pr1.finished);

  TraceData got;
  now += 1'000'000;
  auto last = drain(f, now, got);
  EXPECT_TRUE(last.finished);
  EXPECT_EQ(f.finish_reason(), FollowFinish::CleanEof);
  EXPECT_EQ(f.stats().chunks_consumed, 2u);
  EXPECT_TRUE(f.stats().reconciled());
  EXPECT_EQ(plan.stale_size_queries(), 3u);
  std::remove(path.c_str());
}

TEST(TraceFollower, MidFileDamageResyncsAndCounts) {
  const std::string path = temp_path("follower_damage.flxt2");
  io::TraceData data{make_markers(24), {}};
  std::string image = v2_image(data, 8); // 3 marker chunks + eof
  const auto refs = index_trace_v2(image);
  ASSERT_EQ(refs.size(), 3u);
  // Flip a payload byte of chunk 2: valid header, damaged payload.
  image[static_cast<std::size_t>(refs[1].offset) + 21 + 3] ^= 0x40;
  write_file(path, image);

  TraceFollower f = TraceFollower::open(path, {});
  std::uint64_t now = 0;
  TraceData got;
  auto last = drain(f, now, got);
  EXPECT_TRUE(last.finished);
  EXPECT_EQ(f.finish_reason(), FollowFinish::CleanEof);
  EXPECT_EQ(f.stats().chunks_consumed, 2u); // chunks 1 and 3
  EXPECT_EQ(f.stats().chunks_torn, 1u);     // the damaged one
  EXPECT_GT(f.stats().bytes_skipped, 0u);
  EXPECT_TRUE(f.stats().reconciled());
  EXPECT_EQ(got.markers.size(), 16u);
  std::remove(path.c_str());
}

// The ISSUE 6 satellite: a ResilientWriter appending under an active
// FaultPlan while a TraceFollower tails the same file. The follower must
// never decode a torn chunk, and the two ledgers must reconcile exactly:
// writer.chunks_committed == consumed + salvaged + eof.
TEST(TraceFollower, ConcurrentWriterReaderUnderFaultPlan) {
  const std::string path = temp_path("follower_concurrent.flxt2");
  std::remove(path.c_str());

  sim::FaultPlanConfig fcfg;
  fcfg.seed = 42;
  fcfg.sink_transient_rate = 0.2;
  fcfg.sink_stuck.push_back({5, 3});
  fcfg.read_transient_rate = 0.2;
  fcfg.read_short.push_back({3, 4});
  sim::FaultPlan plan(fcfg);

  ResilientWriterConfig wcfg;
  wcfg.records_per_chunk = 8;
  auto sink = std::make_unique<FaultableSink>(
      std::make_unique<FileSpoolSink>(path), [&plan](std::size_t bytes) {
        switch (plan.sink_fault(bytes)) {
          case sim::SinkFaultKind::Transient: return SinkFault::Transient;
          case sim::SinkFaultKind::Stuck: return SinkFault::Stuck;
          case sim::SinkFaultKind::NoSpace: return SinkFault::NoSpace;
          case sim::SinkFaultKind::None: break;
        }
        return SinkFault::None;
      });
  ResilientWriter writer(wcfg, std::move(sink));

  TraceFollowerConfig rcfg;
  rcfg.max_read_attempts = 2;
  // The writer idles once its records drain; the watchdog must outlast
  // that lull (the producer is alive, just quiet) until close().
  rcfg.liveness_timeout_ns = 1'000'000'000;
  auto source = std::make_unique<FaultableByteSource>(
      std::make_unique<FileByteSource>(path),
      [&plan]() {
        switch (plan.read_fault()) {
          case sim::ReadFaultKind::Transient: return ReadFault::Transient;
          case sim::ReadFaultKind::Short: return ReadFault::Short;
          case sim::ReadFaultKind::None: break;
        }
        return ReadFault::None;
      },
      nullptr);
  TraceFollower follower(rcfg, std::move(source));

  const auto ms = make_markers(64);
  const auto ss = make_samples(120);
  std::uint64_t now = 0;
  TraceData got;
  std::size_t mi = 0;
  std::size_t si = 0;
  for (int step = 0; step < 400; ++step) {
    if (mi < ms.size()) {
      writer.add_markers(ms.data() + mi, 4, now);
      mi += 4;
    }
    if (si < ss.size()) {
      writer.add_samples(ss.data() + si, 6, now);
      si += 6;
    }
    writer.pump(now);
    auto pr = follower.poll(now);
    got.markers.insert(got.markers.end(), pr.data.markers.begin(),
                       pr.data.markers.end());
    got.samples.insert(got.samples.end(), pr.data.samples.begin(),
                       pr.data.samples.end());
    now += 1'000'000;
  }
  writer.close(now);
  auto last = drain(follower, now, got, 2000);

  EXPECT_TRUE(last.finished);
  EXPECT_EQ(follower.finish_reason(), FollowFinish::CleanEof);
  const auto& fs = follower.stats();
  EXPECT_TRUE(fs.reconciled());
  EXPECT_EQ(fs.chunks_torn, 0u) << "a clean close leaves no torn chunks";

  // The two ledgers reconcile exactly (the writer's committed count
  // includes the eof sentinel; the follower tracks it as eof_seen).
  const auto& ws = writer.stats();
  EXPECT_TRUE(ws.reconciled());
  EXPECT_EQ(ws.chunks_committed,
            fs.chunks_consumed + fs.chunks_salvaged + (fs.eof_seen ? 1 : 0));

  // Every record the writer committed arrived, in order, exactly once.
  EXPECT_EQ(got.markers.size() + got.samples.size(), ws.records_committed);
  EXPECT_TRUE(std::equal(got.markers.begin(), got.markers.end(), ms.begin()));
  EXPECT_TRUE(std::equal(got.samples.begin(), got.samples.end(), ss.begin()));
  std::remove(path.c_str());
}

// Mid-write kill: the writer stops pumping without close() (its staged
// tail and eof never reach the file). The follower's watchdog fires and
// the final ledger attributes everything durable.
TEST(TraceFollower, WriterAbandonmentSalvagesDurableChunks) {
  const std::string path = temp_path("follower_abandon.flxt2");
  std::remove(path.c_str());

  ResilientWriterConfig wcfg;
  wcfg.records_per_chunk = 8;
  ResilientWriter writer(wcfg, std::make_unique<FileSpoolSink>(path));

  const auto ms = make_markers(40);
  std::uint64_t now = 0;
  writer.add_markers(ms.data(), ms.size(), now);
  writer.pump(now);
  const std::uint64_t committed = writer.stats().chunks_committed;
  ASSERT_GT(committed, 0u);
  // No close(): kill -9. The follower must detect death and settle.

  TraceFollowerConfig rcfg;
  rcfg.liveness_timeout_ns = 10'000'000;
  TraceFollower f = TraceFollower::open(path, rcfg);
  TraceData got;
  auto last = drain(f, now, got, 1000);
  EXPECT_TRUE(last.finished);
  EXPECT_EQ(f.finish_reason(), FollowFinish::ProducerDeath);
  const auto& fs = f.stats();
  EXPECT_TRUE(fs.reconciled());
  EXPECT_FALSE(fs.eof_seen);
  EXPECT_EQ(fs.chunks_consumed + fs.chunks_salvaged, committed);
  EXPECT_EQ(got.markers.size(), committed * 8);
  std::remove(path.c_str());
}

TEST(TraceFollower, StopMidStreamSettlesLedger) {
  const std::string path = temp_path("follower_stop.flxt2");
  io::TraceData data{make_markers(16), {}};
  const std::string image = v2_image(data, 8);
  const auto refs = index_trace_v2(image);
  const std::size_t cut = static_cast<std::size_t>(refs[1].offset) + 10;
  write_file(path, image.substr(0, cut)); // torn tail, no eof

  TraceFollower f = TraceFollower::open(path, {});
  std::uint64_t now = 0;
  f.poll(now);
  auto fin = f.stop(now + 1);
  EXPECT_TRUE(fin.finished);
  EXPECT_EQ(f.finish_reason(), FollowFinish::Stopped);
  EXPECT_TRUE(f.stats().reconciled());
  EXPECT_EQ(f.stats().chunks_consumed, 1u);
  EXPECT_EQ(f.stats().chunks_torn, 1u);
  // poll() and stop() after finish are inert.
  auto after = f.poll(now + 2);
  EXPECT_TRUE(after.finished);
  EXPECT_EQ(after.chunks, 0u);
  std::remove(path.c_str());
}

TEST(TraceFollower, WaitEdgeChunksFlowThroughTheLiveLedger) {
  const std::string path = temp_path("follower_waits.flxt2");
  io::TraceData data{make_markers(8), make_samples(12)};
  for (std::size_t i = 0; i < 9; ++i) {
    WaitEdge e;
    e.enter = 1000 + i * 50;
    e.leave = e.enter + 30;
    e.item = i;
    e.waiter_core = 1;
    e.holder_core = 2;
    e.resource = 10;
    e.cause = WaitCause::RingFull;
    data.wait_edges.push_back(e);
  }
  const std::string image = v2_image(data, 4);

  // Stream the file in two installments split mid-image, the way a live
  // writer would leave it: the torn tail is "not yet", then completes.
  write_file(path, image.substr(0, image.size() / 2));
  TraceFollower f = TraceFollower::open(path, {});
  std::uint64_t now = 0;
  TraceData got;
  for (int i = 0; i < 5; ++i) {
    auto pr = f.poll(now);
    now += 1'000'000;
    got.wait_edges.insert(got.wait_edges.end(), pr.data.wait_edges.begin(),
                          pr.data.wait_edges.end());
  }
  EXPECT_FALSE(f.finished());
  append_file(path, image.substr(image.size() / 2));
  while (!f.finished()) {
    auto pr = f.poll(now);
    now += 1'000'000;
    got.wait_edges.insert(got.wait_edges.end(), pr.data.wait_edges.begin(),
                          pr.data.wait_edges.end());
    if (pr.finished) break;
  }

  EXPECT_EQ(f.finish_reason(), FollowFinish::CleanEof);
  EXPECT_TRUE(f.stats().reconciled());
  EXPECT_EQ(f.stats().records_wait_edges, 9u);
  EXPECT_EQ(got.wait_edges, data.wait_edges);
  std::remove(path.c_str());
}

} // namespace
} // namespace fluxtrace::io
