#include "fluxtrace/io/symbols_file.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace fluxtrace::io {
namespace {

TEST(SymbolsFile, RoundTripPreservesRangesAndNames) {
  SymbolTable t;
  t.add("alpha", 0x100);
  t.add("beta::gamma", 0x237);
  t.add("rte_acl_classify", 0x1000);

  std::stringstream ss;
  write_symbols(ss, t);
  const SymbolTable back = read_symbols(ss);

  ASSERT_EQ(back.size(), t.size());
  for (SymbolId i = 0; i < t.size(); ++i) {
    EXPECT_EQ(back[i].name, t[i].name);
    EXPECT_EQ(back[i].lo, t[i].lo);
    EXPECT_EQ(back[i].hi, t[i].hi);
  }
  // Resolution behaves identically.
  EXPECT_EQ(back.resolve(t[1].lo + 5), t.resolve(t[1].lo + 5));
}

TEST(SymbolsFile, NamesWithSpacesSurvive) {
  SymbolTable t;
  t.add("operator new(unsigned long)", 0x40);
  std::stringstream ss;
  write_symbols(ss, t);
  const SymbolTable back = read_symbols(ss);
  EXPECT_EQ(back[0].name, "operator new(unsigned long)");
}

TEST(SymbolsFile, SkipsCommentsAndBlankLines) {
  std::stringstream ss;
  ss << "# a comment\n\n"
     << "0000000000400000 0000000000000100 T fn_a\n";
  const SymbolTable t = read_symbols(ss);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].name, "fn_a");
  EXPECT_EQ(t[0].lo, 0x400000u);
  EXPECT_EQ(t[0].size(), 0x100u);
}

TEST(SymbolsFile, RejectsMalformedLines) {
  for (const char* bad : {
           "garbage\n",
           "0000000000400000 0000000000000100 D data_sym\n", // not text
           "0000000000400000 0000000000000000 T empty\n",    // zero size
           "0000000000400000 0000000000000100 T\n",          // no name
       }) {
    std::stringstream ss;
    ss << bad;
    EXPECT_THROW((void)read_symbols(ss), TraceIoError) << bad;
  }
}

TEST(SymbolsFile, RejectsOverlappingRanges) {
  std::stringstream ss;
  ss << "0000000000400000 0000000000000100 T a\n"
     << "0000000000400080 0000000000000100 T b\n"; // overlaps a
  EXPECT_THROW((void)read_symbols(ss), TraceIoError);
}

TEST(SymbolsFile, AllowsGapsBetweenFunctions) {
  std::stringstream ss;
  ss << "0000000000400000 0000000000000100 T a\n"
     << "0000000000500000 0000000000000100 T b\n";
  const SymbolTable t = read_symbols(ss);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_FALSE(t.resolve(0x450000).has_value()) << "gap is unmapped";
  EXPECT_EQ(t.resolve(0x500000), SymbolId{1});
}

TEST(SymbolsFile, AddRangeThenAddContinues) {
  SymbolTable t;
  t.add_range("low", 0x1000, 0x2000);
  const SymbolId next = t.add("appended", 0x100);
  EXPECT_GE(t[next].lo, 0x2000u);
  EXPECT_EQ(t.resolve(t[next].lo), next);
}

} // namespace
} // namespace fluxtrace::io
