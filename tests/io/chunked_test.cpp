// FLXT v2 chunked container: round-trip, and the crash-safety contract —
// a file truncated at ANY byte offset salvages every complete prior
// chunk byte-identical; corrupted chunks are skipped and reported.
#include "fluxtrace/io/chunked.hpp"

#include <gtest/gtest.h>

#include <sstream>

// These tests deliberately exercise the legacy read_trace() dispatch,
// now io-internal plumbing (io/legacy.hpp) behind io::open_trace().
#include "fluxtrace/io/legacy.hpp"

namespace fluxtrace::io {
namespace {

TraceData sample_data(std::size_t n_markers, std::size_t n_samples,
                      std::uint64_t seed = 1) {
  auto rnd = [state = seed]() mutable {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 11;
  };
  TraceData d;
  for (std::size_t i = 0; i < n_markers; ++i) {
    Marker m;
    m.tsc = rnd();
    m.item = rnd();
    m.core = static_cast<std::uint32_t>(rnd() % 16);
    m.kind = (rnd() % 2 == 0) ? MarkerKind::Enter : MarkerKind::Leave;
    d.markers.push_back(m);
  }
  for (std::size_t i = 0; i < n_samples; ++i) {
    PebsSample s;
    s.tsc = rnd();
    s.ip = rnd();
    s.core = static_cast<std::uint32_t>(rnd() % 16);
    for (std::uint64_t& r : s.regs.v) r = rnd();
    d.samples.push_back(s);
  }
  return d;
}

std::string serialize_v2(const TraceData& d, std::size_t per_chunk) {
  std::ostringstream os;
  write_trace_v2(os, d, per_chunk);
  return std::move(os).str();
}

TEST(ChunkedTrace, Crc32KnownVectors) {
  // The zlib/IEEE polynomial check values.
  EXPECT_EQ(crc32("", 0), 0x00000000u);
  EXPECT_EQ(crc32("123456789", 9), 0xcbf43926u);
  EXPECT_EQ(crc32("a", 1), 0xe8b7be43u);
}

TEST(ChunkedTrace, EmptyRoundTrip) {
  std::stringstream ss;
  write_trace_v2(ss, TraceData{});
  const SalvageReport rep = salvage_trace(ss);
  EXPECT_TRUE(rep.clean());
  EXPECT_TRUE(rep.data.markers.empty());
  EXPECT_TRUE(rep.data.samples.empty());
}

TEST(ChunkedTrace, RoundTripThroughReadTrace) {
  // read_trace() dispatches on the version field: a v2 file parses
  // through the generic entry point.
  const TraceData d = sample_data(100, 300);
  std::stringstream ss;
  write_trace_v2(ss, d, 32);
  EXPECT_EQ(read_trace(ss), d);
}

TEST(ChunkedTrace, RoundTripAtVariousChunkSizes) {
  const TraceData d = sample_data(50, 120, 9);
  for (const std::size_t per_chunk : {std::size_t{1}, std::size_t{7},
                                      std::size_t{50}, std::size_t{10000}}) {
    std::stringstream ss(serialize_v2(d, per_chunk));
    const SalvageReport rep = salvage_trace(ss);
    EXPECT_TRUE(rep.clean()) << "per_chunk=" << per_chunk;
    EXPECT_EQ(rep.data, d) << "per_chunk=" << per_chunk;
  }
}

TEST(ChunkedTrace, SaveAndLoadFile) {
  const TraceData d = sample_data(30, 80);
  const std::string path = ::testing::TempDir() + "/flxt_v2_test.trace";
  save_trace_v2(path, d);
  const SalvageReport rep = salvage_trace_file(path);
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(rep.data, d);
}

TEST(ChunkedTrace, SalvageMissingFileThrows) {
  EXPECT_THROW((void)salvage_trace_file("/nonexistent/dir/x.trace"),
               TraceIoError);
}

TEST(ChunkedTrace, TruncationAtEveryByteSalvagesAllCompleteChunks) {
  // The acceptance criterion: whatever byte the crash cut at, every
  // complete prior chunk comes back byte-identical, and nothing else.
  const TraceData d = sample_data(20, 40, 3);
  const std::size_t per_chunk = 8;
  const std::string bytes = serialize_v2(d, per_chunk);

  for (std::size_t keep = 0; keep <= bytes.size(); ++keep) {
    std::istringstream cut(bytes.substr(0, keep));
    const SalvageReport rep = salvage_trace(cut);

    EXPECT_EQ(rep.chunks_corrupt, 0u) << "keep=" << keep;
    EXPECT_EQ(rep.bytes_skipped, 0u) << "keep=" << keep;
    if (keep == bytes.size()) {
      EXPECT_TRUE(rep.clean());
      EXPECT_EQ(rep.data, d);
      continue;
    }
    EXPECT_FALSE(rep.clean()) << "keep=" << keep;

    // Recovered records must be exact prefixes of the two streams, in
    // whole-chunk units.
    ASSERT_LE(rep.data.markers.size(), d.markers.size());
    ASSERT_LE(rep.data.samples.size(), d.samples.size());
    EXPECT_TRUE(rep.data.markers.size() % per_chunk == 0 ||
                rep.data.markers.size() == d.markers.size())
        << "keep=" << keep;
    for (std::size_t i = 0; i < rep.data.markers.size(); ++i) {
      ASSERT_EQ(rep.data.markers[i], d.markers[i]) << "keep=" << keep;
    }
    for (std::size_t i = 0; i < rep.data.samples.size(); ++i) {
      ASSERT_EQ(rep.data.samples[i], d.samples[i]) << "keep=" << keep;
    }
    // Samples only appear once every marker chunk was complete.
    if (!rep.data.samples.empty()) {
      EXPECT_EQ(rep.data.markers.size(), d.markers.size());
    }
  }
}

TEST(ChunkedTrace, SingleByteCorruptionNeverCrashesAndIsNeverSilent) {
  const TraceData d = sample_data(12, 24, 5);
  const std::string bytes = serialize_v2(d, 6);

  for (std::size_t at = 0; at < bytes.size(); ++at) {
    std::string mutated = bytes;
    mutated[at] = static_cast<char>(mutated[at] ^ 0x41);

    // Strict parse: throws or — if the flip landed in unread padding,
    // which this format has none of — returns identical data. It must
    // never return silently different data.
    std::istringstream strict_in(mutated);
    try {
      const TraceData back = read_trace(strict_in);
      EXPECT_EQ(back, d) << "silent corruption at byte " << at;
    } catch (const TraceIoError&) {
      // expected for most offsets
    }

    // Salvage: never throws, recovers every chunk the flip missed.
    std::istringstream salv_in(mutated);
    const SalvageReport rep = salvage_trace(salv_in);
    EXPECT_FALSE(rep.clean()) << "at=" << at;
    // At most one chunk's records are missing from each stream.
    EXPECT_GE(rep.data.markers.size() + rep.data.samples.size() + 6,
              d.markers.size() + d.samples.size())
        << "at=" << at;
    // Whatever was recovered matches the original records exactly.
    std::size_t mi = 0;
    for (const Marker& m : rep.data.markers) {
      while (mi < d.markers.size() && !(d.markers[mi] == m)) ++mi;
      ASSERT_LT(mi, d.markers.size()) << "alien marker at byte " << at;
      ++mi;
    }
    std::size_t si = 0;
    for (const PebsSample& s : rep.data.samples) {
      while (si < d.samples.size() && !(d.samples[si] == s)) ++si;
      ASSERT_LT(si, d.samples.size()) << "alien sample at byte " << at;
      ++si;
    }
  }
}

TEST(ChunkedTrace, HeaderResyncRecoversChunksAfterTheDamage) {
  const TraceData d = sample_data(30, 0, 11);
  const std::string bytes = serialize_v2(d, 10); // 3 marker chunks
  // Destroy the second chunk's magic: salvage must resync at chunk 3.
  const std::size_t chunk_bytes = 21 + 10 * 21; // header + 10 markers
  std::string mutated = bytes;
  const std::size_t second = 8 + chunk_bytes;
  mutated[second] = 'X';

  std::istringstream in(mutated);
  const SalvageReport rep = salvage_trace(in);
  EXPECT_EQ(rep.chunks_ok, 2u);
  EXPECT_GE(rep.chunks_resynced, 1u);
  EXPECT_GT(rep.bytes_skipped, 0u);
  ASSERT_EQ(rep.data.markers.size(), 20u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(rep.data.markers[i], d.markers[i]);
    EXPECT_EQ(rep.data.markers[10 + i], d.markers[20 + i]);
  }
}

TEST(ChunkedTrace, GarbageInputRecoversNothingWithoutThrowing) {
  std::istringstream in(std::string(4096, '\x5a'));
  const SalvageReport rep = salvage_trace(in);
  EXPECT_FALSE(rep.clean());
  EXPECT_FALSE(rep.header_ok);
  EXPECT_EQ(rep.chunks_ok, 0u);
  EXPECT_TRUE(rep.data.markers.empty());
  EXPECT_TRUE(rep.data.samples.empty());
}

TEST(ChunkedTrace, StrictReadOfDamagedFileThrows) {
  const TraceData d = sample_data(10, 10);
  std::string bytes = serialize_v2(d, 4);
  bytes.resize(bytes.size() - 5); // torn tail
  std::istringstream in(bytes);
  EXPECT_THROW((void)read_trace(in), TraceIoError);
}

// --- wait-edge chunks (type 3, ISSUE 8) -------------------------------

std::vector<WaitEdge> sample_waits(std::size_t n, std::uint64_t seed = 3) {
  auto rnd = [state = seed]() mutable {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 11;
  };
  std::vector<WaitEdge> es;
  for (std::size_t i = 0; i < n; ++i) {
    WaitEdge e;
    e.enter = rnd() % 1000000;
    e.leave = e.enter + rnd() % 5000;
    e.item = (rnd() % 4 == 0) ? kNoItem : rnd() % 64;
    e.waiter_core = static_cast<std::uint32_t>(rnd() % 8);
    e.holder_core = static_cast<std::uint32_t>(rnd() % 8);
    e.resource = static_cast<std::uint32_t>(rnd() % 32);
    e.cause = static_cast<WaitCause>(rnd() % kNumWaitCauses);
    es.push_back(e);
  }
  return es;
}

TEST(WaitEdgeChunk, RoundTripPreservesEveryField) {
  TraceData d = sample_data(20, 40);
  d.wait_edges = sample_waits(33);
  for (const std::size_t per_chunk :
       {std::size_t{1}, std::size_t{8}, std::size_t{10000}}) {
    std::stringstream ss(serialize_v2(d, per_chunk));
    EXPECT_EQ(read_trace(ss), d) << "per_chunk=" << per_chunk;
  }
}

TEST(WaitEdgeChunk, IndexWalkExposesTypeThreeChunks) {
  TraceData d;
  d.wait_edges = sample_waits(10);
  const std::string image = serialize_v2(d, 4);
  const auto refs = index_trace_v2(image);
  std::size_t n_waits = 0;
  TraceData got;
  for (const V2ChunkRef& ref : refs) {
    ASSERT_EQ(ref.type, kChunkTypeWaitEdges);
    n_waits += ref.n_records;
    decode_trace_v2_chunk(image, ref, got);
  }
  EXPECT_EQ(n_waits, 10u);
  EXPECT_EQ(got.wait_edges, d.wait_edges);
}

TEST(WaitEdgeChunk, CorruptWaitPayloadIsSkippedNotFatalToSalvage) {
  TraceData d = sample_data(8, 0);
  d.wait_edges = sample_waits(8);
  std::string image = serialize_v2(d, 4); // 2 marker + 2 wait chunks
  const auto refs = index_trace_v2(image);
  for (const V2ChunkRef& ref : refs) {
    if (ref.type != kChunkTypeWaitEdges) continue;
    image[static_cast<std::size_t>(ref.offset) + 21 + 5] ^= 0x40;
    break; // damage the first wait chunk's payload only
  }
  const SalvageReport rep = salvage_trace(std::string_view(image));
  EXPECT_FALSE(rep.clean());
  EXPECT_EQ(rep.chunks_corrupt, 1u);
  EXPECT_EQ(rep.data.markers.size(), 8u) << "marker chunks unaffected";
  ASSERT_EQ(rep.data.wait_edges.size(), 4u) << "intact wait chunk kept";
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(rep.data.wait_edges[i], d.wait_edges[4 + i]);
  }
  // The strict reader refuses the same damage outright.
  std::istringstream in(image);
  EXPECT_THROW((void)read_trace(in), TraceIoError);
}

TEST(WaitEdgeChunk, TruncationSalvagesCompleteWaitChunks) {
  TraceData d;
  d.wait_edges = sample_waits(12);
  const std::string image = serialize_v2(d, 4); // 3 wait chunks + eof
  const auto refs = index_trace_v2(image);
  ASSERT_EQ(refs.size(), 3u);
  // Cut mid-payload of the last chunk: the first two salvage intact.
  const std::string cut = image.substr(
      0, static_cast<std::size_t>(refs[2].offset) + 21 +
             refs[2].payload_bytes / 2);
  const SalvageReport rep = salvage_trace(std::string_view(cut));
  EXPECT_FALSE(rep.clean());
  ASSERT_EQ(rep.data.wait_edges.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(rep.data.wait_edges[i], d.wait_edges[i]);
  }
}

} // namespace
} // namespace fluxtrace::io

