#include "fluxtrace/sim/machine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace fluxtrace::sim {
namespace {

/// Runs `blocks` exec blocks of `uops` each, one per step.
class BurstTask final : public Task {
 public:
  BurstTask(SymbolId fn, std::uint64_t uops, int blocks)
      : fn_(fn), uops_(uops), blocks_(blocks) {}

  StepStatus step(Cpu& cpu) override {
    if (blocks_ == 0) return StepStatus::Done;
    cpu.exec(fn_, uops_);
    step_order.push_back(cpu.core_id());
    --blocks_;
    return blocks_ == 0 ? StepStatus::Done : StepStatus::Progress;
  }

  static inline std::vector<std::uint32_t> step_order;

 private:
  SymbolId fn_;
  std::uint64_t uops_;
  int blocks_;
};

/// Stays idle for `idles` steps, then finishes.
class IdlerTask final : public Task {
 public:
  explicit IdlerTask(int idles) : idles_(idles) {}
  StepStatus step(Cpu&) override {
    if (idles_ == 0) return StepStatus::Done;
    --idles_;
    return StepStatus::Idle;
  }

 private:
  int idles_;
};

struct MachineFixture : ::testing::Test {
  MachineFixture() {
    f = symtab.add("f");
    BurstTask::step_order.clear();
  }
  SymbolTable symtab;
  SymbolId f;
};

TEST_F(MachineFixture, RunsUntilAllDone) {
  Machine m(symtab);
  BurstTask t0(f, 100, 3);
  m.attach(0, t0);
  const RunResult r = m.run();
  EXPECT_TRUE(r.all_done);
  EXPECT_EQ(m.cpu(0).now(), 3 * 40u);
}

TEST_F(MachineFixture, SchedulesSmallestTscFirst) {
  Machine m(symtab);
  BurstTask slow(f, 1000, 2); // 400 cycles per step
  BurstTask fast(f, 100, 8);  // 40 cycles per step
  m.attach(0, slow);
  m.attach(1, fast);
  m.run();
  // The fast core must take several steps before the slow core's second:
  // order is min-TSC driven, not round-robin.
  const auto& order = BurstTask::step_order;
  ASSERT_GE(order.size(), 10u);
  int fast_steps_before_second_slow = 0;
  int slow_seen = 0;
  for (const std::uint32_t c : order) {
    if (c == 0) {
      ++slow_seen;
      if (slow_seen == 2) break;
    } else {
      ++fast_steps_before_second_slow;
    }
  }
  EXPECT_GE(fast_steps_before_second_slow, 8);
}

TEST_F(MachineFixture, IdleTasksAdvanceByIdleGrain) {
  MachineConfig cfg;
  cfg.idle_grain = 123;
  Machine m(symtab, cfg);
  IdlerTask t(5);
  m.attach(2, t);
  const RunResult r = m.run();
  EXPECT_TRUE(r.all_done);
  EXPECT_EQ(m.cpu(2).now(), 5 * 123u);
  EXPECT_EQ(m.cpu(2).stats().idle_cycles, 5 * 123u);
}

TEST_F(MachineFixture, RunUntilBoundsSimulatedTime) {
  Machine m(symtab);
  BurstTask t(f, 1000, 1000000); // would run ~400M cycles
  m.attach(0, t);
  const RunResult r = m.run(100000);
  EXPECT_FALSE(r.all_done);
  EXPECT_GE(r.end_tsc, 100000u);
  EXPECT_LT(r.end_tsc, 110000u);
}

TEST_F(MachineFixture, FlushSamplesCollectsFromAllCores) {
  Machine m(symtab);
  PebsConfig pc;
  pc.reset = 100;
  pc.sample_cost_ns = 0.0;
  m.cpu(0).enable_pebs(pc);
  m.cpu(1).enable_pebs(pc);
  BurstTask t0(f, 500, 1);
  BurstTask t1(f, 300, 1);
  m.attach(0, t0);
  m.attach(1, t1);
  m.run();
  m.flush_samples();
  EXPECT_EQ(m.pebs_driver().samples().size(), 5u + 3u);
}

TEST_F(MachineFixture, DeterministicAcrossRuns) {
  auto run_once = [&]() {
    Machine m(symtab);
    PebsConfig pc;
    pc.reset = 97;
    m.cpu(0).enable_pebs(pc);
    BurstTask a(f, 317, 20);
    BurstTask b(f, 111, 55);
    m.attach(0, a);
    m.attach(1, b);
    m.run();
    m.flush_samples();
    std::vector<Tsc> tss;
    for (const PebsSample& s : m.pebs_driver().samples()) {
      tss.push_back(s.tsc);
    }
    return tss;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST_F(MachineFixture, MarkerLogSharedAcrossCores) {
  Machine m(symtab);
  m.cpu(0).mark_enter(1);
  m.cpu(1).mark_enter(2);
  ASSERT_EQ(m.marker_log().size(), 2u);
  EXPECT_EQ(m.marker_log().for_core(0).size(), 1u);
  EXPECT_EQ(m.marker_log().for_core(1).size(), 1u);
}

TEST_F(MachineFixture, NumCoresFollowsSpec) {
  MachineConfig cfg;
  cfg.spec.num_cores = 7;
  Machine m(symtab, cfg);
  EXPECT_EQ(m.num_cores(), 7u);
}

} // namespace
} // namespace fluxtrace::sim
