// Exactness tests for the execution engine: event placement, sample
// timestamps/ips, overhead injection. The whole reproduction rests on
// these semantics, so they are asserted cycle-exactly.
#include "fluxtrace/sim/cpu.hpp"

#include <gtest/gtest.h>

namespace fluxtrace::sim {
namespace {

struct CpuFixture : ::testing::Test {
  CpuFixture() {
    spec.freq_ghz = 3.0;
    spec.cycles_per_uop = 0.4;
    f = symtab.add("f", 0x1000);
    g = symtab.add("g", 0x1000);
  }

  Cpu make_cpu(CpuConfig cfg = {}) {
    return Cpu(0, spec, symtab, log, CacheHierarchy(cache_cfg), &driver, cfg);
  }

  CpuSpec spec;
  SymbolTable symtab;
  MarkerLog log;
  CacheHierarchyConfig cache_cfg;
  PebsDriver driver{CpuSpec{}};
  SymbolId f, g;
};

TEST_F(CpuFixture, ExecAdvancesTscByUopCycles) {
  Cpu cpu = make_cpu();
  cpu.exec(f, 1000);
  EXPECT_EQ(cpu.now(), 400u); // 1000 uops × 0.4 cycles
  EXPECT_EQ(cpu.stats().busy_cycles, 400u);
  EXPECT_EQ(cpu.stats().fn_time(f), 400u);
  EXPECT_EQ(cpu.stats().events.get(HwEvent::UopsRetired), 1000u);
}

TEST_F(CpuFixture, FnCyclesAccumulatePerSymbol) {
  Cpu cpu = make_cpu();
  cpu.exec(f, 1000);
  cpu.exec(g, 500);
  cpu.exec(f, 1000);
  EXPECT_EQ(cpu.stats().fn_time(f), 800u);
  EXPECT_EQ(cpu.stats().fn_time(g), 200u);
  EXPECT_EQ(cpu.stats().blocks, 3u);
}

TEST_F(CpuFixture, BranchMissesStallThePipeline) {
  Cpu cpu = make_cpu();
  cpu.run(ExecBlock{f, 1000, 10, {}});
  EXPECT_EQ(cpu.now(), 400u + 10 * spec.branch_miss_penalty);
  EXPECT_EQ(cpu.stats().events.get(HwEvent::BranchMisses), 10u);
}

TEST_F(CpuFixture, PebsSamplePlacementIsExact) {
  Cpu cpu = make_cpu();
  PebsConfig pc;
  pc.reset = 100;
  pc.sample_cost_ns = 0.0; // isolate placement from overhead
  cpu.enable_pebs(pc);

  cpu.exec(f, 250); // duration 100 cycles; overflows at events 100, 200
  // Counter state checked before flushing (a drain re-arms the counter,
  // as the kernel module does when re-enabling PEBS).
  EXPECT_EQ(cpu.pebs().until_overflow(), 50u); // 250 − 200 events consumed
  driver.flush(cpu.pebs(), 0);
  const SampleVec& s = driver.samples();
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0].tsc, 40u); // event 100 of 250 → offset 100 × (100/250)
  EXPECT_EQ(s[1].tsc, 80u);
  // ip interpolates function progress: frac 0.4 and 0.8 through f's code.
  EXPECT_EQ(s[0].ip, symtab[f].lo + 0x1000 * 2 / 5);
  EXPECT_EQ(s[1].ip, symtab[f].lo + 0x1000 * 4 / 5);
  EXPECT_EQ(cpu.now(), 100u); // zero-cost samples: no shift
}

TEST_F(CpuFixture, PebsAssistShiftsLaterSamplesAndEndOfBlock) {
  Cpu cpu = make_cpu();
  PebsConfig pc;
  pc.reset = 100;
  pc.sample_cost_ns = 250.0; // 750 cycles at 3 GHz
  cpu.enable_pebs(pc);

  cpu.exec(f, 250);
  driver.flush(cpu.pebs(), 0);
  const SampleVec& s = driver.samples();
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0].tsc, 40u);        // first sample unshifted
  EXPECT_EQ(s[1].tsc, 80u + 750u); // second observes the first's assist
  EXPECT_EQ(cpu.now(), 100u + 2 * 750u);
  EXPECT_EQ(cpu.stats().pebs_assist, 2 * 750u);
  EXPECT_EQ(cpu.stats().busy_cycles, 100u) << "assists are not busy time";
}

TEST_F(CpuFixture, PebsSamplesResolveToTheRightFunction) {
  Cpu cpu = make_cpu();
  PebsConfig pc;
  pc.reset = 500;
  cpu.enable_pebs(pc);
  cpu.exec(f, 1000); // samples at events 500, 1000
  cpu.exec(g, 1000); // samples at events 500, 1000 (counter continues)
  driver.flush(cpu.pebs(), 0);
  const SampleVec& s = driver.samples();
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(symtab.resolve(s[0].ip), f);
  EXPECT_EQ(symtab.resolve(s[1].ip), f);
  EXPECT_EQ(symtab.resolve(s[2].ip), g);
  EXPECT_EQ(symtab.resolve(s[3].ip), g);
}

TEST_F(CpuFixture, PebsBufferFullInterruptsAndDisarms) {
  Cpu cpu = make_cpu();
  PebsConfig pc;
  pc.reset = 10;
  pc.buffer_capacity = 2;
  pc.sample_cost_ns = 0.0;
  cpu.enable_pebs(pc);

  // 3 overflows; the 2nd fills the buffer → IRQ stall on this core, and
  // the 3rd overflow lands inside the helper's save window → lost.
  cpu.exec(f, 30);
  EXPECT_EQ(driver.drains(), 1u);
  EXPECT_EQ(cpu.stats().drain_stall, spec.cycles(2000.0)); // IRQ only
  EXPECT_EQ(cpu.now(), 12u + cpu.stats().drain_stall);
  EXPECT_EQ(cpu.pebs().samples_lost(), 1u);
  driver.flush(cpu.pebs(), 0);
  EXPECT_EQ(driver.samples().size(), 2u);
}

TEST_F(CpuFixture, SamplingResumesAfterTheDisarmWindow) {
  Cpu cpu = make_cpu();
  PebsConfig pc;
  pc.reset = 10;
  pc.buffer_capacity = 2;
  pc.sample_cost_ns = 0.0;
  cpu.enable_pebs(pc);

  cpu.exec(f, 20);      // fills the buffer (2 samples), IRQ fires
  cpu.advance(100000);  // helper finishes well within this
  cpu.exec(f, 20);      // two fresh samples
  driver.flush(cpu.pebs(), 0);
  EXPECT_EQ(driver.samples().size(), 4u);
  EXPECT_EQ(cpu.pebs().samples_lost(), 0u);
}

TEST_F(CpuFixture, ColdLoadsStallWarmLoadsDoNot) {
  Cpu cpu = make_cpu();
  const MemPattern mem{0x10000, 4, 64};
  cpu.exec_mem(f, 100, mem); // 4 DRAM misses
  const Tsc cold = cpu.now();
  const Tsc expected_stall =
      4 * (cache_cfg.dram_latency - cache_cfg.l1.hit_latency);
  EXPECT_EQ(cold, 40u + expected_stall);
  EXPECT_EQ(cpu.stats().events.get(HwEvent::CacheMisses), 4u);
  EXPECT_EQ(cpu.stats().events.get(HwEvent::LoadsRetired), 4u);

  cpu.exec_mem(f, 100, mem); // warm: all L1 hits, no extra stall
  EXPECT_EQ(cpu.now(), cold + 40u);
  EXPECT_EQ(cpu.stats().events.get(HwEvent::CacheMisses), 4u);
}

TEST_F(CpuFixture, PebsOnCacheMissEventSamplesOnlyMisses) {
  Cpu cpu = make_cpu();
  PebsConfig pc;
  pc.event = HwEvent::CacheMisses;
  pc.reset = 2;
  pc.sample_cost_ns = 0.0;
  cpu.enable_pebs(pc);

  cpu.exec_mem(f, 100, MemPattern{0x20000, 4, 64}); // 4 misses → 2 samples
  cpu.exec_mem(f, 100, MemPattern{0x20000, 4, 64}); // warm → no samples
  driver.flush(cpu.pebs(), 0);
  EXPECT_EQ(driver.samples().size(), 2u);
}

TEST_F(CpuFixture, SwSamplerSuspendsTheProgram) {
  Cpu cpu = make_cpu();
  SwSamplerConfig sc;
  sc.reset = 100;
  sc.interrupt_cost_ns = 9500.0;
  cpu.enable_sw_sampler(sc);

  cpu.exec(f, 200); // overflows at events 100, 200
  const Tsc per_irq = spec.cycles(9500.0);
  EXPECT_EQ(cpu.now(), 80u + 2 * per_irq);
  EXPECT_EQ(cpu.stats().sw_stall, 2 * per_irq);
  ASSERT_EQ(cpu.sw_sampler().samples().size(), 2u);
  // Second sample observes the first interrupt's suspension.
  EXPECT_EQ(cpu.sw_sampler().samples()[0].tsc, 40u);
  EXPECT_EQ(cpu.sw_sampler().samples()[1].tsc, 80u + per_irq);
}

TEST_F(CpuFixture, MarkersRecordWindowsAndCostTime) {
  Cpu cpu = make_cpu();
  cpu.mark_enter(7);
  cpu.exec(f, 1000);
  cpu.mark_leave(7);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.markers()[0].item, 7u);
  EXPECT_EQ(log.markers()[0].kind, MarkerKind::Enter);
  EXPECT_EQ(log.markers()[1].kind, MarkerKind::Leave);
  EXPECT_LT(log.markers()[0].tsc, log.markers()[1].tsc);
  EXPECT_EQ(cpu.stats().marker_overhead, 2 * spec.cycles(150.0));
  EXPECT_EQ(cpu.stats().marker_count, 2u);
}

TEST_F(CpuFixture, MarkerSymbolMakesInstrumentationSampleable) {
  CpuConfig cc;
  cc.marker_symbol = symtab.add("fluxtrace_mark", 0x100);
  cc.marker_uops = 1000;
  Cpu cpu = make_cpu(cc);
  PebsConfig pc;
  pc.reset = 500;
  pc.sample_cost_ns = 0.0;
  cpu.enable_pebs(pc);

  cpu.mark_enter(1); // runs as an exec block on the marker symbol
  driver.flush(cpu.pebs(), 0);
  ASSERT_EQ(driver.samples().size(), 2u);
  EXPECT_EQ(symtab.resolve(driver.samples()[0].ip), cc.marker_symbol);
  EXPECT_EQ(cpu.stats().marker_overhead, spec.uop_cycles(1000));
}

TEST_F(CpuFixture, AdvanceIsIdleTime) {
  Cpu cpu = make_cpu();
  cpu.advance(500);
  EXPECT_EQ(cpu.now(), 500u);
  EXPECT_EQ(cpu.stats().idle_cycles, 500u);
  EXPECT_EQ(cpu.stats().busy_cycles, 0u);
}

TEST_F(CpuFixture, RegistersAreSampled) {
  Cpu cpu = make_cpu();
  PebsConfig pc;
  pc.reset = 50;
  cpu.enable_pebs(pc);
  cpu.set_reg(Reg::R13, 99);
  cpu.exec(f, 100);
  driver.flush(cpu.pebs(), 0);
  ASSERT_EQ(driver.samples().size(), 2u);
  EXPECT_EQ(driver.samples()[0].regs.get(Reg::R13), 99u);
}

TEST_F(CpuFixture, SpeedFactorStretchesDurations) {
  Cpu cpu = make_cpu();
  cpu.exec(f, 1000); // 400 cycles at full speed
  const Tsc full = cpu.now();
  cpu.set_speed(0.5); // throttled: same work, twice the TSC time
  cpu.exec(f, 1000);
  EXPECT_EQ(cpu.now() - full, 800u);
  cpu.set_speed(1.0);
  cpu.exec(f, 1000);
  EXPECT_EQ(cpu.now() - full - 800, 400u);
  // Event counts are unaffected: the work retired is identical.
  EXPECT_EQ(cpu.stats().events.get(HwEvent::UopsRetired), 3000u);
}

TEST_F(CpuFixture, ThrottledBlocksStillSampleCorrectly) {
  Cpu cpu = make_cpu();
  PebsConfig pc;
  pc.reset = 250;
  pc.sample_cost_ns = 0.0;
  cpu.enable_pebs(pc);
  cpu.set_speed(0.5);
  cpu.exec(f, 1000); // 4 samples over a stretched 800-cycle block
  driver.flush(cpu.pebs(), 0);
  ASSERT_EQ(driver.samples().size(), 4u);
  EXPECT_EQ(driver.samples()[0].tsc, 200u); // event 250/1000 × 800
  EXPECT_EQ(driver.samples()[3].tsc, 800u);
}

// Randomized execution property: arbitrary block sequences keep the
// engine's core invariants — monotone TSC, exact event totals, samples
// inside their blocks with monotone timestamps.
class CpuFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CpuFuzzTest, InvariantsHoldUnderRandomBlocks) {
  std::uint64_t state = GetParam();
  auto rnd = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 16;
  };

  CpuSpec spec;
  SymbolTable symtab;
  std::vector<SymbolId> fns;
  for (int i = 0; i < 5; ++i) {
    fns.push_back(symtab.add("fn" + std::to_string(i), 0x100 + (rnd() % 0x800)));
  }
  MarkerLog log;
  PebsDriver driver(spec);
  Cpu cpu(0, spec, symtab, log, CacheHierarchy(), &driver, {});
  PebsConfig pc;
  pc.reset = 500 + rnd() % 4000;
  pc.buffer_capacity = 64;
  cpu.enable_pebs(pc);

  std::uint64_t total_uops = 0, total_branches = 0, total_loads = 0;
  Tsc prev_tsc = 0;
  for (int i = 0; i < 300; ++i) {
    ExecBlock blk;
    blk.fn = fns[rnd() % fns.size()];
    blk.uops = 1 + rnd() % 20000;
    blk.branch_misses = rnd() % 50;
    if (rnd() % 3 == 0) {
      blk.mem = MemPattern{0x100000 + (rnd() % 64) * 0x1000,
                           static_cast<std::uint32_t>(rnd() % 64),
                           static_cast<std::uint32_t>(8 << (rnd() % 5))};
    }
    if (rnd() % 4 == 0) blk.extra_stall = rnd() % 5000;
    const Tsc before = cpu.now();
    cpu.run(blk);
    ASSERT_GE(cpu.now(), before) << "TSC must be monotone";
    total_uops += blk.uops;
    total_branches += blk.branch_misses;
    total_loads += blk.mem.count;
    prev_tsc = cpu.now();
  }
  (void)prev_tsc;

  EXPECT_EQ(cpu.stats().events.get(HwEvent::UopsRetired), total_uops);
  EXPECT_EQ(cpu.stats().events.get(HwEvent::BranchMisses), total_branches);
  EXPECT_EQ(cpu.stats().events.get(HwEvent::LoadsRetired), total_loads);
  EXPECT_LE(cpu.stats().busy_cycles, cpu.now());

  driver.flush(cpu.pebs(), 0);
  const SampleVec samples = driver.samples_sorted_by_time();
  // Sample count: every overflow either recorded or explicitly lost.
  EXPECT_EQ(samples.size() + cpu.pebs().samples_lost(),
            total_uops / pc.reset);
  Tsc prev = 0;
  for (const PebsSample& smp : samples) {
    EXPECT_GE(smp.tsc, prev);
    prev = smp.tsc;
    EXPECT_LE(smp.tsc, cpu.now());
    EXPECT_TRUE(symtab.resolve(smp.ip).has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CpuFuzzTest,
                         ::testing::Values(3, 17, 99, 1234, 98765));

// Property sweep: for any (reset, uops) the number of PEBS samples equals
// floor(total_events / reset) when starting from a freshly armed counter,
// and the counter residue is consistent.
struct SweepParam {
  std::uint64_t reset;
  std::uint64_t uops;
};

class PebsCountingSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PebsCountingSweep, SampleCountMatchesEventMath) {
  const auto [reset, uops] = GetParam();
  CpuSpec spec;
  SymbolTable symtab;
  const SymbolId f = symtab.add("f");
  MarkerLog log;
  PebsDriver driver(spec);
  Cpu cpu(0, spec, symtab, log, CacheHierarchy(), &driver, {});
  PebsConfig pc;
  pc.reset = reset;
  pc.sample_cost_ns = 0.0;
  pc.buffer_capacity = 1u << 20;
  cpu.enable_pebs(pc);

  // Split the work across blocks of varying size: counting must be
  // continuous across block boundaries.
  std::uint64_t left = uops;
  std::uint64_t chunk = 17;
  while (left > 0) {
    const std::uint64_t n = std::min(left, chunk);
    cpu.exec(f, n);
    left -= n;
    chunk = chunk * 3 + 1;
  }
  driver.flush(cpu.pebs(), 0);
  EXPECT_EQ(driver.samples().size(), uops / reset);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PebsCountingSweep,
    ::testing::Values(SweepParam{1, 100}, SweepParam{7, 1000},
                      SweepParam{100, 100}, SweepParam{100, 99},
                      SweepParam{8000, 100000}, SweepParam{24000, 1000000},
                      SweepParam{333, 12345}));

} // namespace
} // namespace fluxtrace::sim
