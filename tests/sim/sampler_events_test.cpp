// Sampling on the remaining event types (§V-D: "PEBS supports counting
// various metrics for each core including the number of branch
// mis-predictions and the number of load instructions"), and both
// samplers active at once.
#include <gtest/gtest.h>

#include "fluxtrace/sim/cpu.hpp"

namespace fluxtrace::sim {
namespace {

struct EventFixture : ::testing::Test {
  EventFixture() {
    f = symtab.add("f", 0x1000);
  }
  Cpu make_cpu() {
    return Cpu(0, spec, symtab, log, CacheHierarchy(), &driver, {});
  }
  CpuSpec spec;
  SymbolTable symtab;
  MarkerLog log;
  PebsDriver driver{CpuSpec{}};
  SymbolId f;
};

TEST_F(EventFixture, SamplesOnLoadsRetired) {
  Cpu cpu = make_cpu();
  PebsConfig pc;
  pc.event = HwEvent::LoadsRetired;
  pc.reset = 3;
  pc.sample_cost_ns = 0.0;
  cpu.enable_pebs(pc);
  cpu.exec_mem(f, 1000, MemPattern{0x1000, 9, 64}); // 9 loads → 3 samples
  driver.flush(cpu.pebs(), 0);
  EXPECT_EQ(driver.samples().size(), 3u);
  // A compute-only block adds no loads → no samples.
  cpu.exec(f, 100000);
  driver.flush(cpu.pebs(), 0);
  EXPECT_EQ(driver.samples().size(), 3u);
}

TEST_F(EventFixture, SamplesOnBranchMisses) {
  Cpu cpu = make_cpu();
  PebsConfig pc;
  pc.event = HwEvent::BranchMisses;
  pc.reset = 5;
  pc.sample_cost_ns = 0.0;
  cpu.enable_pebs(pc);
  cpu.run(ExecBlock{f, 1000, 20, {}}); // 20 misses → 4 samples
  driver.flush(cpu.pebs(), 0);
  ASSERT_EQ(driver.samples().size(), 4u);
  // Samples resolve into the block's function and lie inside the block.
  for (const PebsSample& s : driver.samples()) {
    EXPECT_EQ(symtab.resolve(s.ip), f);
    EXPECT_LE(s.tsc, cpu.now());
  }
}

TEST_F(EventFixture, LoadSamplesSitAtAccessOffsets) {
  Cpu cpu = make_cpu();
  PebsConfig pc;
  pc.event = HwEvent::LoadsRetired;
  pc.reset = 1; // sample every load
  pc.sample_cost_ns = 0.0;
  cpu.enable_pebs(pc);
  cpu.exec_mem(f, 1000, MemPattern{0x1000, 4, 64});
  driver.flush(cpu.pebs(), 0);
  ASSERT_EQ(driver.samples().size(), 4u);
  // Strictly increasing timestamps at distinct access points.
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_GT(driver.samples()[i].tsc, driver.samples()[i - 1].tsc);
  }
}

TEST_F(EventFixture, PebsAndSwSamplerCoexist) {
  Cpu cpu = make_cpu();
  PebsConfig pc;
  pc.reset = 1000;
  cpu.enable_pebs(pc);
  SwSamplerConfig sc;
  sc.reset = 2000;
  cpu.enable_sw_sampler(sc);

  cpu.exec(f, 10000);
  driver.flush(cpu.pebs(), 0);
  EXPECT_EQ(driver.samples().size(), 10u);
  EXPECT_EQ(cpu.sw_sampler().samples().size(), 5u);
  // Both overheads are charged.
  EXPECT_GT(cpu.stats().pebs_assist, 0u);
  EXPECT_GT(cpu.stats().sw_stall, cpu.stats().pebs_assist);
}

TEST_F(EventFixture, DisableStopsSampling) {
  Cpu cpu = make_cpu();
  PebsConfig pc;
  pc.reset = 100;
  pc.sample_cost_ns = 0.0;
  cpu.enable_pebs(pc);
  cpu.exec(f, 1000);
  cpu.disable_pebs();
  cpu.exec(f, 10000); // no samples while disabled
  driver.flush(cpu.pebs(), 0);
  EXPECT_EQ(driver.samples().size(), 10u);
}

TEST_F(EventFixture, ReconfigureChangesEventMidRun) {
  Cpu cpu = make_cpu();
  PebsConfig pc;
  pc.reset = 100;
  pc.sample_cost_ns = 0.0;
  cpu.enable_pebs(pc);
  cpu.exec(f, 500); // 5 uop samples
  driver.flush(cpu.pebs(), 0);
  const std::size_t first = driver.samples().size();
  EXPECT_EQ(first, 5u);

  pc.event = HwEvent::CacheMisses;
  pc.reset = 2;
  cpu.enable_pebs(pc); // reconfigure re-arms
  cpu.exec_mem(f, 100, MemPattern{0x90000, 4, 64}); // 4 misses → 2 samples
  driver.flush(cpu.pebs(), 0);
  EXPECT_EQ(driver.samples().size(), first + 2);
}

} // namespace
} // namespace fluxtrace::sim
