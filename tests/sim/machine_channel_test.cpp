// Causality of the discrete-event schedule: a consumer whose simulated
// clock lags a producer must never observe data "from the future", even
// though the machine steps whole exec blocks at a time.
#include <gtest/gtest.h>

#include "fluxtrace/rt/sim_channel.hpp"
#include "fluxtrace/sim/machine.hpp"

namespace fluxtrace::sim {
namespace {

struct Msg {
  int seq;
  Tsc sent_at;
};

/// Produces one message per step after a long exec block — its TSC jumps
/// far ahead of the consumer's.
class BigStepProducer final : public Task {
 public:
  BigStepProducer(SymbolId fn, rt::SimChannel<Msg>& ch, int count)
      : fn_(fn), ch_(ch), remaining_(count) {}

  StepStatus step(Cpu& cpu) override {
    if (remaining_ == 0) return StepStatus::Done;
    cpu.exec(fn_, 100000); // 40k cycles per step
    ch_.push(Msg{remaining_, cpu.now()}, cpu.now());
    --remaining_;
    return remaining_ == 0 ? StepStatus::Done : StepStatus::Progress;
  }

 private:
  SymbolId fn_;
  rt::SimChannel<Msg>& ch_;
  int remaining_;
};

class CheckingConsumer final : public Task {
 public:
  CheckingConsumer(SymbolId fn, rt::SimChannel<Msg>& ch, int count)
      : fn_(fn), ch_(ch), remaining_(count) {}

  StepStatus step(Cpu& cpu) override {
    if (remaining_ == 0) return StepStatus::Done;
    auto m = ch_.pop(cpu.now());
    if (!m.has_value()) {
      cpu.exec(fn_, 100); // cheap poll: consumer clock crawls
      return StepStatus::Idle;
    }
    EXPECT_GE(cpu.now(), m->sent_at)
        << "consumer observed a message before it was produced";
    violations_ += cpu.now() < m->sent_at ? 1 : 0;
    --remaining_;
    return remaining_ == 0 ? StepStatus::Done : StepStatus::Progress;
  }

  [[nodiscard]] int violations() const { return violations_; }

 private:
  SymbolId fn_;
  rt::SimChannel<Msg>& ch_;
  int remaining_;
  int violations_ = 0;
};

TEST(MachineChannel, ConsumerNeverTimeTravels) {
  SymbolTable symtab;
  const SymbolId pf = symtab.add("producer_fn");
  const SymbolId cf = symtab.add("consumer_fn");
  rt::SimChannel<Msg> ch(256);

  Machine m(symtab);
  BigStepProducer prod(pf, ch, 50);
  CheckingConsumer cons(cf, ch, 50);
  m.attach(0, prod);
  m.attach(1, cons);
  const auto r = m.run();
  EXPECT_TRUE(r.all_done);
  EXPECT_EQ(cons.violations(), 0);
}

TEST(MachineChannel, NoTasksIsImmediatelyDone) {
  SymbolTable symtab;
  Machine m(symtab);
  const auto r = m.run();
  EXPECT_TRUE(r.all_done);
  EXPECT_EQ(r.steps, 0u);
}

TEST(MachineChannel, LiveSinksSeeMarkersAndDrainedSamples) {
  // The OnlineTracer wiring contract: markers arrive at marking time,
  // samples only at drain time (buffer-full or final flush).
  SymbolTable symtab;
  const SymbolId fn = symtab.add("fn");
  MachineConfig mc;
  // Double buffering keeps the disarm window to a buffer swap, so no
  // overflow in this dense block is lost to the helper's save.
  mc.driver.double_buffering = true;
  Machine m(symtab, mc);

  std::size_t markers_seen = 0;
  std::size_t samples_seen = 0;
  m.marker_log().set_sink([&](const Marker&) { ++markers_seen; });
  m.pebs_driver().set_sink([&](const PebsSample&) { ++samples_seen; });

  sim::PebsConfig pc;
  pc.reset = 100;
  pc.buffer_capacity = 4; // drains every 4 samples
  pc.sample_cost_ns = 0.0;
  m.cpu(0).enable_pebs(pc);

  Cpu& cpu = m.cpu(0);
  cpu.mark_enter(1);
  cpu.exec(fn, 1000); // 10 samples → 2 drains of 4, 2 left buffered
  cpu.mark_leave(1);
  EXPECT_EQ(markers_seen, 2u);
  EXPECT_EQ(samples_seen, 8u) << "only drained samples are visible";
  m.flush_samples();
  EXPECT_EQ(samples_seen, 10u);
}

} // namespace
} // namespace fluxtrace::sim
