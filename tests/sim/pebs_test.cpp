#include "fluxtrace/sim/pebs.hpp"

#include <gtest/gtest.h>

namespace fluxtrace::sim {
namespace {

PebsConfig cfg(std::uint64_t reset, std::uint32_t cap = 512) {
  PebsConfig c;
  c.reset = reset;
  c.buffer_capacity = cap;
  return c;
}

TEST(PebsUnit, ArmedToMinusReset) {
  PebsUnit u;
  u.configure(cfg(8000));
  EXPECT_TRUE(u.enabled());
  EXPECT_EQ(u.until_overflow(), 8000u);
}

TEST(PebsUnit, CountAdvancesCounter) {
  PebsUnit u;
  u.configure(cfg(100));
  u.count(40);
  EXPECT_EQ(u.until_overflow(), 60u);
  u.count(59);
  EXPECT_EQ(u.until_overflow(), 1u);
}

TEST(PebsUnit, TakeSampleRearms) {
  PebsUnit u;
  u.configure(cfg(100));
  u.count(99);
  RegisterFile regs;
  EXPECT_FALSE(u.take_sample(1234, 0x400100, regs));
  EXPECT_EQ(u.until_overflow(), 100u);
  EXPECT_EQ(u.buffered(), 1u);
  EXPECT_EQ(u.total_samples(), 1u);
}

TEST(PebsUnit, SampleCarriesRegisterSnapshot) {
  PebsUnit u;
  u.configure(cfg(10));
  RegisterFile regs;
  regs.set(Reg::R13, 42); // the §V-A item-id register
  u.take_sample(5, 0x400000, regs);
  const SampleVec s = u.drain();
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0].regs.get(Reg::R13), 42u);
  EXPECT_EQ(s[0].tsc, 5u);
  EXPECT_EQ(s[0].ip, 0x400000u);
}

TEST(PebsUnit, BufferFullSignalledAtCapacity) {
  PebsUnit u;
  u.configure(cfg(10, /*cap=*/3));
  RegisterFile regs;
  EXPECT_FALSE(u.take_sample(1, 0, regs));
  EXPECT_FALSE(u.take_sample(2, 0, regs));
  EXPECT_TRUE(u.take_sample(3, 0, regs)); // buffer-full interrupt
  EXPECT_TRUE(u.buffer_full());
}

TEST(PebsUnit, DrainEmptiesAndRearms) {
  PebsUnit u;
  u.configure(cfg(10, 3));
  RegisterFile regs;
  u.count(4);
  u.take_sample(1, 0, regs);
  const SampleVec s = u.drain();
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(u.buffered(), 0u);
  EXPECT_FALSE(u.buffer_full());
  EXPECT_EQ(u.until_overflow(), 10u); // counter re-armed on drain
}

// ---- driver ---------------------------------------------------------------

TEST(PebsDriver, CollectsAndTagsCore) {
  CpuSpec spec;
  PebsDriver d(spec);
  PebsUnit u;
  u.configure(cfg(10, 2));
  RegisterFile regs;
  u.take_sample(1, 0x400000, regs);
  u.take_sample(2, 0x400001, regs);
  const Tsc stall = d.on_buffer_full(u, /*core=*/3, /*now=*/100);
  EXPECT_GT(stall, 0u);
  ASSERT_EQ(d.samples().size(), 2u);
  EXPECT_EQ(d.samples()[0].core, 3u);
  EXPECT_EQ(d.drains(), 1u);
  EXPECT_EQ(d.bytes_collected(), 2 * kPebsRecordBytes);
}

TEST(PebsDriver, StallIsOnlyTheInterruptDispatch) {
  // §III-E model: the traced core pays the IRQ; the copy + SSD dump run
  // in the helper program while the program continues.
  CpuSpec spec;
  PebsDriverConfig dcfg;
  PebsDriver d(spec, dcfg);
  PebsUnit u;
  u.configure(cfg(10, 256));
  RegisterFile regs;
  for (int i = 0; i < 256; ++i) u.take_sample(i, 0, regs);
  const Tsc stall = d.on_buffer_full(u, 0, /*now=*/1000);
  EXPECT_EQ(stall, spec.cycles(dcfg.irq_entry_ns));
}

TEST(PebsDriver, DisarmWindowCoversHelperWork) {
  CpuSpec spec;
  PebsDriver d(spec);
  PebsUnit u;
  u.configure(cfg(10, 256));
  RegisterFile regs;
  for (int i = 0; i < 256; ++i) u.take_sample(i, 0, regs);
  const Tsc now = 5000;
  const Tsc stall = d.on_buffer_full(u, 0, now);
  // Disarmed strictly beyond the stall: the helper's copy + SSD write.
  EXPECT_TRUE(u.disarmed_at(now + stall));
  // 256 records x 96 B at 0.5 GB/s is ~49 us; well before 1 ms it is over.
  EXPECT_FALSE(u.disarmed_at(now + spec.cycles(1e6)));
}

TEST(PebsUnit, LostSamplesCounted) {
  PebsUnit u;
  u.configure(cfg(10, 4));
  u.disarm_until(1000);
  EXPECT_TRUE(u.disarmed_at(999));
  EXPECT_FALSE(u.disarmed_at(1000));
  u.note_lost();
  EXPECT_EQ(u.samples_lost(), 1u);
  EXPECT_EQ(u.until_overflow(), 10u); // counter re-armed
  EXPECT_EQ(u.buffered(), 0u);        // nothing written
}

TEST(PebsDriver, DoubleBufferingShrinksTheDisarmWindow) {
  CpuSpec spec;
  PebsDriverConfig sync_cfg;           // helper dumps before re-enabling
  PebsDriverConfig db_cfg;
  db_cfg.double_buffering = true;      // §III-E future-work optimization

  const auto disarm_cycles = [&](const PebsDriverConfig& dcfg) {
    PebsDriver d(spec, dcfg);
    PebsUnit u;
    u.configure(cfg(10, 256));
    RegisterFile regs;
    for (int i = 0; i < 256; ++i) u.take_sample(i, 0, regs);
    (void)d.on_buffer_full(u, 0, /*now=*/0);
    // Find the first time the unit is armed again.
    Tsc t = 0;
    while (u.disarmed_at(t)) t += 100;
    return t;
  };
  const Tsc sync_window = disarm_cycles(sync_cfg);
  const Tsc db_window = disarm_cycles(db_cfg);
  EXPECT_LT(db_window, sync_window / 4);
}

TEST(PebsDriver, DisarmWindowScalesWithBytes) {
  CpuSpec spec;
  const auto window_for = [&](int n) {
    PebsDriver d(spec);
    PebsUnit u;
    u.configure(cfg(10, 512));
    RegisterFile regs;
    for (int i = 0; i < n; ++i) u.take_sample(i, 0, regs);
    (void)d.on_buffer_full(u, 0, 0);
    Tsc t = 0;
    while (u.disarmed_at(t)) t += 100;
    return t;
  };
  EXPECT_GT(window_for(512), window_for(64));
}

TEST(PebsDriver, FlushCollectsPartialBuffer) {
  CpuSpec spec;
  PebsDriver d(spec);
  PebsUnit u;
  u.configure(cfg(10, 512));
  RegisterFile regs;
  u.take_sample(7, 0, regs);
  d.flush(u, 1);
  ASSERT_EQ(d.samples().size(), 1u);
  EXPECT_EQ(d.samples()[0].core, 1u);
  EXPECT_EQ(d.total_stall(), 0u) << "flush happens after the run";
}

TEST(PebsDriver, SortedMergeAcrossCores) {
  CpuSpec spec;
  PebsDriver d(spec);
  PebsUnit u0, u1;
  u0.configure(cfg(10, 512));
  u1.configure(cfg(10, 512));
  RegisterFile regs;
  u0.take_sample(30, 0, regs);
  u1.take_sample(10, 0, regs);
  u1.take_sample(20, 0, regs);
  d.flush(u0, 0);
  d.flush(u1, 1);
  const SampleVec s = d.samples_sorted_by_time();
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0].tsc, 10u);
  EXPECT_EQ(s[1].tsc, 20u);
  EXPECT_EQ(s[2].tsc, 30u);
}

class PebsResetSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PebsResetSweep, ExactlyOneSampleEveryResetEvents) {
  const std::uint64_t reset = GetParam();
  PebsUnit u;
  u.configure(cfg(reset, 1u << 20));
  RegisterFile regs;
  // Feed events one by one like the hardware counter sees them.
  const std::uint64_t total = reset * 5 + reset / 2;
  std::uint64_t samples = 0;
  std::uint64_t fed = 0;
  while (fed < total) {
    const std::uint64_t u_next = u.until_overflow();
    if (fed + u_next <= total) {
      fed += u_next;
      u.take_sample(fed, 0, regs);
      ++samples;
    } else {
      u.count(total - fed);
      fed = total;
    }
  }
  EXPECT_EQ(samples, 5u);
  EXPECT_EQ(u.until_overflow(), reset - reset / 2);
}

INSTANTIATE_TEST_SUITE_P(Resets, PebsResetSweep,
                         ::testing::Values(1, 2, 100, 8000, 24000));

} // namespace
} // namespace fluxtrace::sim
