#include "fluxtrace/sim/cache.hpp"

#include <gtest/gtest.h>

namespace fluxtrace::sim {
namespace {

CacheLevelConfig tiny_l1() {
  // 4 sets × 2 ways × 64 B lines = 512 B.
  return CacheLevelConfig{512, 2, 64, 4};
}

TEST(CacheLevel, MissThenHit) {
  CacheLevel c(tiny_l1());
  EXPECT_FALSE(c.access(0x1000));
  EXPECT_TRUE(c.access(0x1000));
  EXPECT_TRUE(c.access(0x1010)); // same line
  EXPECT_EQ(c.misses(), 1u);
  EXPECT_EQ(c.hits(), 2u);
}

TEST(CacheLevel, GeometryDerivation) {
  CacheLevel c(tiny_l1());
  EXPECT_EQ(c.num_sets(), 4u);
  CacheLevel big({32 * 1024, 8, 64, 4});
  EXPECT_EQ(big.num_sets(), 64u);
}

TEST(CacheLevel, LruEviction) {
  CacheLevel c(tiny_l1()); // 2 ways, 4 sets
  // Three lines mapping to the same set (stride = sets*line = 256 B).
  EXPECT_FALSE(c.access(0x0000));
  EXPECT_FALSE(c.access(0x0100));
  EXPECT_FALSE(c.access(0x0200)); // evicts 0x0000 (LRU)
  EXPECT_FALSE(c.contains(0x0000));
  EXPECT_TRUE(c.contains(0x0100));
  EXPECT_TRUE(c.contains(0x0200));
}

TEST(CacheLevel, LruOrderUpdatedOnHit) {
  CacheLevel c(tiny_l1());
  c.access(0x0000);
  c.access(0x0100);
  c.access(0x0000);  // 0x0000 becomes MRU
  c.access(0x0200);  // evicts 0x0100 now
  EXPECT_TRUE(c.contains(0x0000));
  EXPECT_FALSE(c.contains(0x0100));
}

TEST(CacheLevel, SetsAreIndependent) {
  CacheLevel c(tiny_l1());
  // Different sets: consecutive lines.
  c.access(0x0000);
  c.access(0x0040);
  c.access(0x0080);
  c.access(0x00c0);
  EXPECT_TRUE(c.contains(0x0000));
  EXPECT_TRUE(c.contains(0x00c0));
}

TEST(CacheLevel, InvalidateAll) {
  CacheLevel c(tiny_l1());
  c.access(0x0000);
  c.invalidate_all();
  EXPECT_FALSE(c.contains(0x0000));
  EXPECT_EQ(c.hits(), 0u);
  EXPECT_EQ(c.misses(), 0u);
}

TEST(CacheHierarchy, LatenciesPerLevel) {
  CacheHierarchyConfig cfg;
  CacheHierarchy h(cfg);
  // Cold: DRAM.
  AccessResult r = h.access(0x5000);
  EXPECT_EQ(r.latency, cfg.dram_latency);
  EXPECT_TRUE(r.llc_miss);
  // Warm: L1.
  r = h.access(0x5000);
  EXPECT_EQ(r.latency, cfg.l1.hit_latency);
  EXPECT_FALSE(r.llc_miss);
}

TEST(CacheHierarchy, L2HitAfterL1Eviction) {
  CacheHierarchyConfig cfg;
  cfg.l1 = {512, 2, 64, 4};            // tiny L1
  cfg.l2 = {64 * 1024, 16, 64, 14};
  CacheHierarchy h(cfg);
  // Fill one L1 set beyond capacity; all lines stay in L2.
  h.access(0x0000);
  h.access(0x0100);
  h.access(0x0200); // 0x0000 leaves L1
  const AccessResult r = h.access(0x0000);
  EXPECT_EQ(r.latency, cfg.l2.hit_latency);
  EXPECT_FALSE(r.llc_miss);
}

TEST(CacheHierarchy, SharedL3BetweenCores) {
  CacheHierarchyConfig cfg;
  auto l3 = std::make_shared<CacheLevel>(cfg.l3);
  CacheHierarchy core0(cfg, l3);
  CacheHierarchy core1(cfg, l3);
  core0.access(0x9000); // fills shared L3 (and core0's L1/L2)
  const AccessResult r = core1.access(0x9000);
  EXPECT_EQ(r.latency, cfg.l3.hit_latency) << "expected shared-L3 hit";
  EXPECT_FALSE(r.llc_miss);
}

TEST(CacheHierarchy, NextLinePrefetchHelpsSequentialSweeps) {
  CacheHierarchyConfig base;
  CacheHierarchyConfig pf = base;
  pf.next_line_prefetch = true;

  const auto dram_misses = [](CacheHierarchyConfig cfg) {
    CacheHierarchy h(cfg);
    std::uint64_t misses = 0;
    for (std::uint64_t a = 0; a < 256 * 64; a += 64) {
      if (h.access(0x100000 + a).llc_miss) ++misses;
    }
    return misses;
  };
  const std::uint64_t plain = dram_misses(base);
  const std::uint64_t with_pf = dram_misses(pf);
  EXPECT_EQ(plain, 256u);
  EXPECT_LE(with_pf * 2, plain + 2) << "roughly every other line prefetched";
}

TEST(CacheHierarchy, PrefetchUselessForLargeStrides) {
  CacheHierarchyConfig pf;
  pf.next_line_prefetch = true;
  CacheHierarchy h(pf);
  std::uint64_t misses = 0;
  for (std::uint64_t i = 0; i < 128; ++i) {
    if (h.access(0x200000 + i * 4096).llc_miss) ++misses;
  }
  EXPECT_EQ(misses, 128u) << "4 KiB strides never touch the next line";
}

TEST(CacheHierarchy, PrefetchCounterTracksFills) {
  CacheHierarchyConfig pf;
  pf.next_line_prefetch = true;
  CacheHierarchy h(pf);
  h.access(0x300000);
  EXPECT_EQ(h.prefetches(), 1u);
  h.access(0x300000); // L1 hit: no prefetch
  EXPECT_EQ(h.prefetches(), 1u);
}

struct GeometryParam {
  std::uint64_t size;
  std::uint32_t ways;
};

class CacheGeometryTest : public ::testing::TestWithParam<GeometryParam> {};

TEST_P(CacheGeometryTest, WorkingSetWithinCapacityNeverEvicts) {
  const auto p = GetParam();
  CacheLevel c({p.size, p.ways, 64, 4});
  const std::uint64_t lines = p.size / 64;
  // Touch exactly `lines` distinct consecutive lines: fits by construction.
  for (std::uint64_t i = 0; i < lines; ++i) c.access(i * 64);
  for (std::uint64_t i = 0; i < lines; ++i) {
    EXPECT_TRUE(c.contains(i * 64)) << "line " << i;
  }
  // Second pass: all hits.
  const std::uint64_t misses_before = c.misses();
  for (std::uint64_t i = 0; i < lines; ++i) c.access(i * 64);
  EXPECT_EQ(c.misses(), misses_before);
}

TEST_P(CacheGeometryTest, WorkingSetBeyondCapacityThrashes) {
  const auto p = GetParam();
  CacheLevel c({p.size, p.ways, 64, 4});
  const std::uint64_t lines = 2 * p.size / 64;
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t i = 0; i < lines; ++i) c.access(i * 64);
  }
  // Sequential sweep over 2x capacity with LRU: every access misses.
  EXPECT_EQ(c.misses(), 2 * lines);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometryTest,
    ::testing::Values(GeometryParam{512, 2}, GeometryParam{4096, 4},
                      GeometryParam{32 * 1024, 8}, GeometryParam{64 * 1024, 16}));

} // namespace
} // namespace fluxtrace::sim
