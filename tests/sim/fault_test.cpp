// FaultPlan: deterministic injected loss across the capture pipeline.
#include "fluxtrace/sim/fault.hpp"

#include <gtest/gtest.h>

#include "fluxtrace/apps/query_cache_app.hpp"
#include "fluxtrace/sim/machine.hpp"

namespace fluxtrace::sim {
namespace {

PebsSample sample_at(Tsc tsc, std::uint32_t core = 0) {
  PebsSample s;
  s.tsc = tsc;
  s.core = core;
  return s;
}

Marker marker_at(Tsc tsc, std::uint32_t core = 0) {
  return Marker{tsc, 1, core, MarkerKind::Enter};
}

TEST(FaultPlan, ZeroConfigDropsNothing) {
  FaultPlan plan{FaultPlanConfig{}};
  for (Tsc t = 0; t < 1000; ++t) {
    EXPECT_FALSE(plan.lose_sample(sample_at(t)));
    EXPECT_FALSE(plan.lose_marker(marker_at(t)));
    EXPECT_EQ(plan.drain_delay_ns(16), 0.0);
  }
  EXPECT_EQ(plan.samples_dropped(), 0u);
  EXPECT_EQ(plan.markers_dropped(), 0u);
  EXPECT_EQ(plan.drains_delayed(), 0u);
}

TEST(FaultPlan, SameSeedSameDecisions) {
  FaultPlanConfig cfg;
  cfg.seed = 99;
  cfg.sample_loss_rate = 0.3;
  FaultPlan a{cfg}, b{cfg};
  for (Tsc t = 0; t < 2000; ++t) {
    EXPECT_EQ(a.lose_sample(sample_at(t)), b.lose_sample(sample_at(t)))
        << "t=" << t;
  }
}

TEST(FaultPlan, LossRateIsApproximatelyHonored) {
  FaultPlanConfig cfg;
  cfg.sample_loss_rate = 0.2;
  cfg.marker_loss_rate = 0.05;
  FaultPlan plan{cfg};
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    (void)plan.lose_sample(sample_at(static_cast<Tsc>(i)));
    (void)plan.lose_marker(marker_at(static_cast<Tsc>(i)));
  }
  EXPECT_NEAR(static_cast<double>(plan.samples_dropped()) / n, 0.2, 0.02);
  EXPECT_NEAR(static_cast<double>(plan.markers_dropped()) / n, 0.05, 0.01);
}

TEST(FaultPlan, IndependentStreams) {
  // Raising the sample rate must not change which markers drop.
  FaultPlanConfig low;
  low.marker_loss_rate = 0.1;
  FaultPlanConfig high = low;
  high.sample_loss_rate = 0.9;
  FaultPlan a{low}, b{high};
  for (Tsc t = 0; t < 2000; ++t) {
    (void)a.lose_sample(sample_at(t));
    (void)b.lose_sample(sample_at(t));
    EXPECT_EQ(a.lose_marker(marker_at(t)), b.lose_marker(marker_at(t)))
        << "t=" << t;
  }
}

TEST(FaultPlan, BurstLosesEverythingInWindowOnTargetCore) {
  FaultPlanConfig cfg;
  cfg.sample_bursts.push_back({/*core=*/1, /*begin=*/100, /*end=*/200});
  FaultPlan plan{cfg};
  for (Tsc t = 0; t < 300; ++t) {
    const bool in = t >= 100 && t < 200;
    EXPECT_EQ(plan.lose_sample(sample_at(t, 1)), in) << "t=" << t;
    EXPECT_FALSE(plan.lose_sample(sample_at(t, 2))) << "t=" << t;
  }
}

TEST(FaultPlan, AllCoresBurstMatchesAnyCore) {
  FaultPlanConfig cfg;
  cfg.marker_bursts.push_back(
      {FaultPlanConfig::kAllCores, /*begin=*/10, /*end=*/20});
  FaultPlan plan{cfg};
  EXPECT_TRUE(plan.lose_marker(marker_at(15, 0)));
  EXPECT_TRUE(plan.lose_marker(marker_at(15, 7)));
  EXPECT_FALSE(plan.lose_marker(marker_at(25, 7)));
}

TEST(FaultPlan, DrainDelays) {
  FaultPlanConfig cfg;
  cfg.extra_drain_ns = 500.0;
  FaultPlan plan{cfg};
  EXPECT_EQ(plan.drain_delay_ns(16), 500.0);

  FaultPlanConfig slow;
  slow.slow_drain_rate = 1.0;
  slow.slow_drain_ns = 2000.0;
  FaultPlan plan2{slow};
  EXPECT_EQ(plan2.drain_delay_ns(16), 2000.0);
  EXPECT_EQ(plan2.drains_delayed(), 1u);
}

TEST(FaultPlan, DumpTruncationAndCorruption) {
  FaultPlanConfig cfg;
  cfg.dump_truncate_at = 10;
  cfg.dump_corrupt_rate = 1.0;
  FaultPlan plan{cfg};
  std::string bytes(100, 'a');
  const std::size_t corrupted = plan.apply_dump_faults(bytes);
  EXPECT_EQ(bytes.size(), 10u);
  EXPECT_EQ(corrupted, 10u);
  for (char c : bytes) EXPECT_NE(c, 'a'); // every byte got a bit flip
}

TEST(FaultPlan, SinkFaultsOffByDefault) {
  FaultPlan plan{FaultPlanConfig{}};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(plan.sink_fault(64), SinkFaultKind::None);
  }
  EXPECT_EQ(plan.sink_transients(), 0u);
  EXPECT_EQ(plan.sink_stuck_hits(), 0u);
  EXPECT_EQ(plan.sink_enospc_hits(), 0u);
}

TEST(FaultPlan, SinkTransientsAreSeededAndApproximatelyRated) {
  FaultPlanConfig cfg;
  cfg.seed = 5;
  cfg.sink_transient_rate = 0.25;
  FaultPlan a{cfg}, b{cfg};
  const int n = 20000;
  int transients = 0;
  for (int i = 0; i < n; ++i) {
    const SinkFaultKind ka = a.sink_fault(64);
    EXPECT_EQ(ka, b.sink_fault(64)) << "i=" << i;
    transients += ka == SinkFaultKind::Transient ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(transients) / n, 0.25, 0.02);
  EXPECT_EQ(a.sink_transients(), static_cast<std::uint64_t>(transients));
}

TEST(FaultPlan, SinkStreamIsIndependentOfSampleStream) {
  // Raising the sample loss rate must not change which writes fault.
  FaultPlanConfig low;
  low.sink_transient_rate = 0.2;
  FaultPlanConfig high = low;
  high.sample_loss_rate = 0.9;
  FaultPlan a{low}, b{high};
  for (Tsc t = 0; t < 2000; ++t) {
    (void)a.lose_sample(sample_at(t));
    (void)b.lose_sample(sample_at(t));
    EXPECT_EQ(a.sink_fault(64), b.sink_fault(64)) << "t=" << t;
  }
}

TEST(FaultPlan, SinkStuckWindowIsIndexedByWriteAttempt) {
  // Attempts 3..6 wedge; retries advance the attempt index, so a real
  // writer retrying through the window eventually gets through.
  FaultPlanConfig cfg;
  cfg.sink_stuck.push_back({/*from_write=*/3, /*writes=*/4});
  FaultPlan plan{cfg};
  for (std::uint64_t i = 0; i < 10; ++i) {
    const bool in = i >= 3 && i < 7;
    EXPECT_EQ(plan.sink_fault(64),
              in ? SinkFaultKind::Stuck : SinkFaultKind::None)
        << "attempt " << i;
  }
  EXPECT_EQ(plan.sink_stuck_hits(), 4u);
}

TEST(FaultPlan, SinkRunsOutOfSpaceAfterByteBudget) {
  FaultPlanConfig cfg;
  cfg.sink_enospc_after_bytes = 256;
  FaultPlan plan{cfg};
  // 100-byte writes: two fit (200 accepted), the third crosses 256.
  EXPECT_EQ(plan.sink_fault(100), SinkFaultKind::None);
  EXPECT_EQ(plan.sink_fault(100), SinkFaultKind::None);
  EXPECT_EQ(plan.sink_fault(100), SinkFaultKind::None); // 300 > 256 accepted
  EXPECT_EQ(plan.sink_fault(100), SinkFaultKind::NoSpace);
  EXPECT_EQ(plan.sink_fault(1), SinkFaultKind::NoSpace); // it stays full
  EXPECT_EQ(plan.sink_enospc_hits(), 2u);
}

TEST(FaultPlan, ReadFaultsOffByDefault) {
  FaultPlan plan{FaultPlanConfig{}};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(plan.read_fault(), ReadFaultKind::None);
    EXPECT_FALSE(plan.size_query_stale());
  }
  EXPECT_EQ(plan.read_transients(), 0u);
  EXPECT_EQ(plan.read_short_hits(), 0u);
  EXPECT_EQ(plan.stale_size_queries(), 0u);
}

TEST(FaultPlan, ReadTransientsAreSeededAndApproximatelyRated) {
  FaultPlanConfig cfg;
  cfg.seed = 5;
  cfg.read_transient_rate = 0.25;
  FaultPlan a{cfg}, b{cfg};
  const int n = 20000;
  int transients = 0;
  for (int i = 0; i < n; ++i) {
    const ReadFaultKind ka = a.read_fault();
    EXPECT_EQ(ka, b.read_fault()) << "i=" << i;
    transients += ka == ReadFaultKind::Transient ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(transients) / n, 0.25, 0.02);
  EXPECT_EQ(a.read_transients(), static_cast<std::uint64_t>(transients));
}

TEST(FaultPlan, ReadStreamIsIndependentOfSinkStream) {
  // A follower and a writer driven by the same plan must not perturb
  // each other: which reads fault cannot depend on how many writes the
  // sink saw (they interleave differently every run).
  FaultPlanConfig cfg;
  cfg.read_transient_rate = 0.2;
  cfg.sink_transient_rate = 0.5;
  FaultPlan a{cfg}, b{cfg};
  for (int i = 0; i < 2000; ++i) {
    (void)b.sink_fault(64); // b's writer is much busier
    if (i % 3 == 0) (void)b.sink_fault(64);
    EXPECT_EQ(a.read_fault(), b.read_fault()) << "i=" << i;
  }
}

TEST(FaultPlan, ShortReadWindowIsIndexedByReadAttempt) {
  // Attempts 3..6 return short; retries advance the attempt index, so a
  // follower retrying through the window eventually reads in full.
  FaultPlanConfig cfg;
  cfg.read_short.push_back({/*from_read=*/3, /*reads=*/4});
  FaultPlan plan{cfg};
  for (std::uint64_t i = 0; i < 10; ++i) {
    const bool in = i >= 3 && i < 7;
    EXPECT_EQ(plan.read_fault(),
              in ? ReadFaultKind::Short : ReadFaultKind::None)
        << "attempt " << i;
  }
  EXPECT_EQ(plan.read_short_hits(), 4u);
}

TEST(FaultPlan, StaleSizeQueriesAreCountedDown) {
  FaultPlanConfig cfg;
  cfg.read_stale_queries = 3;
  cfg.read_truncate_at = 100;
  FaultPlan plan{cfg};
  EXPECT_TRUE(plan.size_query_stale());
  EXPECT_TRUE(plan.size_query_stale());
  EXPECT_TRUE(plan.size_query_stale());
  EXPECT_FALSE(plan.size_query_stale()); // metadata caught up
  EXPECT_FALSE(plan.size_query_stale());
  EXPECT_EQ(plan.stale_size_queries(), 3u);
}

struct FaultedRun {
  SymbolTable symtab;
  apps::QueryCacheApp app{symtab};
  Machine machine{symtab};
  FaultPlan plan;

  explicit FaultedRun(FaultPlanConfig cfg, std::uint32_t buffer_capacity = 512)
      : plan(cfg) {
    PebsConfig pc;
    pc.reset = 8000;
    pc.buffer_capacity = buffer_capacity;
    machine.cpu(1).enable_pebs(pc);
    plan.attach(machine);
    app.submit(apps::QueryCacheApp::paper_queries());
    app.attach(machine, /*rx_core=*/0, /*worker_core=*/1);
    EXPECT_TRUE(machine.run().all_done);
    machine.flush_samples();
  }
};

TEST(FaultPlanMachine, AttachedPlanDropsSamplesAndMarkers) {
  FaultPlanConfig cfg;
  cfg.sample_loss_rate = 0.5;
  cfg.marker_loss_rate = 0.3;
  FaultedRun faulted(cfg);
  FaultedRun clean(FaultPlanConfig{});

  EXPECT_GT(faulted.plan.samples_dropped(), 0u);
  EXPECT_GT(faulted.plan.markers_dropped(), 0u);
  EXPECT_EQ(faulted.machine.marker_log().dropped(),
            faulted.plan.markers_dropped());
  EXPECT_LT(faulted.machine.pebs_driver().samples().size(),
            clean.machine.pebs_driver().samples().size());
  EXPECT_LT(faulted.machine.marker_log().markers().size(),
            clean.machine.marker_log().markers().size());

  // Every injected drop produced a timestamped loss event.
  EXPECT_EQ(faulted.machine.pebs_driver().injected_losses(),
            faulted.plan.samples_dropped());
  EXPECT_GE(faulted.machine.pebs_driver().losses().size(),
            faulted.plan.samples_dropped());
}

TEST(FaultPlanMachine, AttachedRunsAreDeterministic) {
  FaultPlanConfig cfg;
  cfg.seed = 7;
  cfg.sample_loss_rate = 0.25;
  cfg.marker_loss_rate = 0.1;
  FaultedRun a(cfg), b(cfg);
  EXPECT_EQ(a.machine.pebs_driver().samples().size(),
            b.machine.pebs_driver().samples().size());
  EXPECT_EQ(a.machine.marker_log().markers().size(),
            b.machine.marker_log().markers().size());
  EXPECT_EQ(a.plan.samples_dropped(), b.plan.samples_dropped());
  EXPECT_EQ(a.plan.markers_dropped(), b.plan.markers_dropped());
}

TEST(FaultPlanMachine, DrainDelayLosesMoreOverflows) {
  // A slower drain stretches the disarm window, so more real overflows
  // are lost (§III-E) — visible as extra natural losses in the driver.
  // A small buffer forces several buffer-full drains on this workload
  // (the default 512-record buffer swallows the whole run in one flush).
  FaultPlanConfig slow;
  slow.extra_drain_ns = 50000.0;
  FaultedRun delayed(slow, /*buffer_capacity=*/32);
  FaultedRun clean(FaultPlanConfig{}, /*buffer_capacity=*/32);
  EXPECT_GT(delayed.plan.drains_delayed(), 0u);
  EXPECT_GT(delayed.machine.pebs_driver().losses().size(),
            clean.machine.pebs_driver().losses().size());
}

} // namespace
} // namespace fluxtrace::sim
