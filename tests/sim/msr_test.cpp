#include "fluxtrace/sim/msr.hpp"

#include <gtest/gtest.h>

#include "fluxtrace/sim/cpu.hpp"

namespace fluxtrace::sim {
namespace {

TEST(PerfEvtSel, EncodeDecodeRoundTrip) {
  PerfEvtSel s;
  s.event_select = 0xc2;
  s.umask = 0x01;
  s.usr = true;
  s.os = false;
  s.enable = true;
  EXPECT_EQ(PerfEvtSel::decode(s.encode()), s);
  // Known layout spot checks: EN is bit 22, USR bit 16.
  EXPECT_EQ(s.encode() & 0xff, 0xc2u);
  EXPECT_TRUE(s.encode() & (1ull << 22));
  EXPECT_TRUE(s.encode() & (1ull << 16));
  EXPECT_FALSE(s.encode() & (1ull << 17));
}

TEST(EventEncoding, SdmCodes) {
  EXPECT_EQ(encoding_of(HwEvent::UopsRetired).event_select, 0xc2);
  EXPECT_EQ(encoding_of(HwEvent::UopsRetired).umask, 0x01);
  EXPECT_EQ(encoding_of(HwEvent::CacheMisses).event_select, 0xd1);
  EXPECT_EQ(encoding_of(HwEvent::CacheMisses).umask, 0x20);
}

TEST(EventEncoding, ReverseLookup) {
  for (const HwEvent e : {HwEvent::UopsRetired, HwEvent::CacheMisses,
                          HwEvent::BranchMisses, HwEvent::LoadsRetired}) {
    const EventEncoding enc = encoding_of(e);
    EXPECT_EQ(event_from(enc.event_select, enc.umask), e);
  }
  EXPECT_FALSE(event_from(0x3c, 0x00).has_value()) << "unsupported event";
}

TEST(MsrFile, ReadsBackWrites) {
  MsrFile m;
  EXPECT_EQ(m.read(kIa32DsArea), 0u);
  m.write(kIa32DsArea, 0xffff880012345000ull);
  EXPECT_EQ(m.read(kIa32DsArea), 0xffff880012345000ull);
}

struct ModuleFixture : ::testing::Test {
  MsrFile msrs;
  PebsUnit unit;
  SimplePebsModule mod{msrs, unit};
};

TEST_F(ModuleFixture, SetupArmsTheUnit) {
  mod.setup(HwEvent::UopsRetired, 8000, 0xffff880000100000ull);
  EXPECT_TRUE(mod.armed());
  EXPECT_TRUE(unit.enabled());
  EXPECT_EQ(unit.config().event, HwEvent::UopsRetired);
  EXPECT_EQ(unit.config().reset, 8000u);
  EXPECT_EQ(unit.until_overflow(), 8000u);
  // The counter register really holds −R in 48-bit two's complement.
  EXPECT_EQ(msrs.read(kIa32Pmc0), ((1ull << 48) - 8000));
}

TEST_F(ModuleFixture, TeardownDisarms) {
  mod.setup(HwEvent::UopsRetired, 8000, 0x1000);
  mod.teardown();
  EXPECT_FALSE(mod.armed());
  EXPECT_FALSE(unit.enabled());
}

TEST_F(ModuleFixture, GlobalCtrlGatesEverything) {
  mod.setup(HwEvent::UopsRetired, 8000, 0x1000);
  msrs.write(kIa32PerfGlobalCtrl, 0); // OS clears the global enable
  mod.apply();
  EXPECT_FALSE(unit.enabled());
  msrs.write(kIa32PerfGlobalCtrl, 1);
  mod.apply();
  EXPECT_TRUE(unit.enabled());
}

TEST_F(ModuleFixture, PebsEnableBitGates) {
  mod.setup(HwEvent::CacheMisses, 64, 0x1000);
  msrs.write(kIa32PebsEnable, 0);
  mod.apply();
  EXPECT_FALSE(unit.enabled());
}

TEST_F(ModuleFixture, UnknownEventNeverArms) {
  mod.setup(HwEvent::UopsRetired, 100, 0x1000);
  PerfEvtSel sel;
  sel.event_select = 0x3c; // CPU_CLK_UNHALTED: not PEBS-capable here
  sel.umask = 0;
  sel.enable = true;
  msrs.write(kIa32PerfEvtSel0, sel.encode());
  mod.apply();
  EXPECT_FALSE(unit.enabled());
}

TEST_F(ModuleFixture, RewritingPmcChangesReset) {
  mod.setup(HwEvent::UopsRetired, 8000, 0x1000);
  msrs.write(kIa32Pmc0, ((1ull << 48) - 24000));
  mod.apply();
  EXPECT_EQ(unit.config().reset, 24000u);
}

TEST(ModuleEndToEnd, MsrProgrammedUnitDrivesRealSampling) {
  // The full path: wrmsr sequence → armed unit → exec blocks produce
  // samples at the programmed rate.
  SymbolTable symtab;
  const SymbolId f = symtab.add("f", 0x400);
  MarkerLog log;
  CpuSpec spec;
  PebsDriver driver(spec);
  Cpu cpu(0, spec, symtab, log, CacheHierarchy(), &driver, {});

  MsrFile msrs;
  SimplePebsModule mod(msrs, cpu.pebs());
  mod.setup(HwEvent::UopsRetired, 500, /*ds_area=*/0xffff880000100000ull,
            /*buffer_capacity=*/1u << 12);

  cpu.exec(f, 5000); // 10 overflows at R = 500
  driver.flush(cpu.pebs(), 0);
  EXPECT_EQ(driver.samples().size(), 10u);

  // Teardown stops sampling mid-run.
  mod.teardown();
  cpu.exec(f, 5000);
  driver.flush(cpu.pebs(), 0);
  EXPECT_EQ(driver.samples().size(), 10u);
}

TEST(ModuleEndToEnd, AdaptiveControllerReprogramsViaMsr) {
  // The closed-loop controller writing PMC0 through the module, exactly
  // as a kernel-side implementation would.
  MsrFile msrs;
  PebsUnit unit;
  SimplePebsModule mod(msrs, unit);
  mod.setup(HwEvent::UopsRetired, 8000, 0x1000);

  // "Controller" decides on a new R and performs the MSR write.
  msrs.write(kIa32Pmc0, ((1ull << 48) - 12345));
  mod.apply();
  EXPECT_EQ(unit.config().reset, 12345u);
  EXPECT_TRUE(unit.enabled());
}

} // namespace
} // namespace fluxtrace::sim
