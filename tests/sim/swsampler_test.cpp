#include "fluxtrace/sim/swsampler.hpp"

#include <gtest/gtest.h>

#include "fluxtrace/sim/pebs.hpp"

namespace fluxtrace::sim {
namespace {

TEST(SwSampler, ConfigureArms) {
  SwSampler s;
  CpuSpec spec;
  s.configure({HwEvent::UopsRetired, 5000, 9500.0}, spec);
  EXPECT_TRUE(s.enabled());
  EXPECT_EQ(s.until_overflow(), 5000u);
}

TEST(SwSampler, SampleCostsAFullInterrupt) {
  SwSampler s;
  CpuSpec spec; // 3 GHz
  s.configure({HwEvent::UopsRetired, 100, 9500.0}, spec);
  RegisterFile regs;
  const Tsc stall = s.take_sample(1000, 0x400000, 0, regs);
  EXPECT_EQ(stall, spec.cycles(9500.0)); // ~9.5 us: why perf floors at 10 us
  EXPECT_EQ(s.total_stall(), stall);
  ASSERT_EQ(s.samples().size(), 1u);
  EXPECT_EQ(s.samples()[0].tsc, 1000u);
}

TEST(SwSampler, InterruptIsOrdersOfMagnitudeAbovePebsAssist) {
  CpuSpec spec;
  SwSampler s;
  s.configure({}, spec);
  RegisterFile regs;
  const Tsc sw_cost = s.take_sample(0, 0, 0, regs);
  const Tsc pebs_cost = spec.cycles(PebsConfig{}.sample_cost_ns);
  EXPECT_GT(sw_cost, 30 * pebs_cost); // 9.5 us vs 250 ns
}

TEST(SwSampler, RearmsAfterSample) {
  SwSampler s;
  CpuSpec spec;
  s.configure({HwEvent::UopsRetired, 100, 9500.0}, spec);
  s.count(60);
  RegisterFile regs;
  s.take_sample(0, 0, 0, regs);
  EXPECT_EQ(s.until_overflow(), 100u);
}

TEST(SwSampler, ClearResets) {
  SwSampler s;
  CpuSpec spec;
  s.configure({HwEvent::UopsRetired, 100, 9500.0}, spec);
  RegisterFile regs;
  s.take_sample(0, 0, 0, regs);
  s.clear();
  EXPECT_TRUE(s.samples().empty());
  EXPECT_EQ(s.total_stall(), 0u);
  EXPECT_EQ(s.until_overflow(), 100u);
}

} // namespace
} // namespace fluxtrace::sim
