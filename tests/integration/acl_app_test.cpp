// End-to-end reproduction of the §IV-C case study: Table III rules,
// Table IV packets, RX/ACL/TX pipeline, GNET-style tester, PEBS on the
// ACL core, hybrid integration.
#include <gtest/gtest.h>

#include <map>

#include "fluxtrace/acl/ruleset.hpp"
#include "fluxtrace/apps/acl_firewall_app.hpp"
#include "fluxtrace/core/integrator.hpp"
#include "fluxtrace/net/trafficgen.hpp"

namespace fluxtrace {
namespace {

struct AclRun {
  SymbolTable symtab;
  std::unique_ptr<apps::AclFirewallApp> app;
  std::unique_ptr<net::TrafficGen> tg;
  std::unique_ptr<sim::Machine> machine;
  core::TraceTable table;
  // Mean estimated classify time (us) per packet type (0=A, 1=B, 2=C).
  std::map<std::uint32_t, double> mean_est_us;
  std::map<std::uint32_t, double> mean_latency_us;

  explicit AclRun(std::uint64_t reset, std::uint64_t packets = 150,
                  bool pebs = true, bool double_buffering = false) {
    const acl::RuleSet rules = acl::make_paper_ruleset();
    app = std::make_unique<apps::AclFirewallApp>(symtab, rules);
    sim::MachineConfig mc;
    mc.driver.double_buffering = double_buffering;
    machine = std::make_unique<sim::Machine>(symtab, mc);

    net::TrafficGenConfig tgc;
    tgc.total_packets = packets;
    tgc.inter_packet_gap_ns = 20000;
    const acl::PaperPackets pk;
    tg = std::make_unique<net::TrafficGen>(
        tgc, app->rx_nic(), app->tx_nic(),
        std::vector<FlowKey>{pk.type_a, pk.type_b, pk.type_c});

    if (pebs) {
      sim::PebsConfig pc;
      pc.reset = reset;
      machine->cpu(2).enable_pebs(pc); // the ACL core
    }
    app->expect_packets(packets);
    machine->attach(0, *tg);
    app->attach(*machine, /*rx=*/1, /*acl=*/2, /*tx=*/3);
    const auto r = machine->run();
    EXPECT_TRUE(r.all_done);
    machine->flush_samples();

    core::TraceIntegrator integ(symtab);
    table = integ.integrate(machine->marker_log().markers(),
                            machine->pebs_driver().samples());

    const SymbolId clf = app->classify_symbol();
    std::map<std::uint32_t, double> sum, cnt;
    for (const auto& rec : tg->records()) {
      sum[rec.flow_idx] +=
          machine->spec().us(table.elapsed(rec.id, clf));
      cnt[rec.flow_idx] += 1.0;
      mean_latency_us[rec.flow_idx] +=
          machine->spec().us(rec.latency());
    }
    for (auto& [flow, s] : sum) {
      mean_est_us[flow] = s / cnt[flow];
      mean_latency_us[flow] /= cnt[flow];
    }
  }
};

TEST(AclAppIntegration, AllPacketsForwardedAndMeasured) {
  AclRun run(8000);
  EXPECT_TRUE(run.tg->complete());
  EXPECT_EQ(run.app->classified(), 150u);
  EXPECT_EQ(run.app->dropped(), 0u); // Table IV packets pass the firewall
  EXPECT_EQ(run.tg->records().size(), 150u);
}

TEST(AclAppIntegration, EstimatedClassifyTimeOrdersTypes) {
  // Fig. 9's core claim: per-packet rte_acl_classify time fluctuates by
  // more than 100% between type A and type C.
  AclRun run(8000);
  const double a = run.mean_est_us.at(0);
  const double b = run.mean_est_us.at(1);
  const double c = run.mean_est_us.at(2);
  EXPECT_GT(a, b);
  EXPECT_GT(b, c);
  EXPECT_GT(a / c, 1.8) << "a=" << a << " c=" << c;
}

TEST(AclAppIntegration, EstimatesLandInPaperBand) {
  AclRun run(8000);
  // Type A ≈ 12–14 us, type C ≈ 6 us (allowing sampling truncation: the
  // first/last-sample estimator loses up to ~2 intervals).
  EXPECT_GT(run.mean_est_us.at(0), 9.0);
  EXPECT_LT(run.mean_est_us.at(0), 15.0);
  EXPECT_GT(run.mean_est_us.at(2), 3.5);
  EXPECT_LT(run.mean_est_us.at(2), 7.0);
}

TEST(AclAppIntegration, EstimateApproachesBaselineAsResetShrinks) {
  // The Fig. 9 trend: smaller reset values → estimates closer to the
  // instrumented baseline (the marker-window length). Double buffering
  // isolates the truncation effect from sync-SSD-dump sample loss, which
  // at R = 2000 would blind PEBS for whole packets at a time.
  AclRun fine(2000, 150, true, /*double_buffering=*/true);
  AclRun coarse(24000, 150, true, /*double_buffering=*/true);
  const SymbolId clf = fine.app->classify_symbol();

  auto mean_ratio = [&](AclRun& run) {
    double r = 0;
    std::size_t n = 0;
    for (const auto& rec : run.tg->records()) {
      const Tsc est = run.table.elapsed(rec.id, clf);
      const Tsc win = run.table.item_window_total(rec.id);
      if (win == 0) continue;
      r += static_cast<double>(est) / static_cast<double>(win);
      ++n;
    }
    return r / static_cast<double>(n);
  };
  const double fine_ratio = mean_ratio(fine);
  const double coarse_ratio = mean_ratio(coarse);
  EXPECT_GT(fine_ratio, coarse_ratio);
  EXPECT_GT(fine_ratio, 0.85);
}

TEST(AclAppIntegration, TesterLatencyOrdersTypes) {
  AclRun run(8000, 150, /*pebs=*/false);
  EXPECT_GT(run.mean_latency_us.at(0), run.mean_latency_us.at(2) + 4.0);
}

TEST(AclAppIntegration, TracingOverheadDecreasesWithReset) {
  // Fig. 10: overhead (latency increase vs untraced) falls as R grows.
  AclRun off(0, 150, /*pebs=*/false);
  AclRun heavy(2000);
  AclRun light(24000);
  auto overall = [](AclRun& run) {
    double s = 0;
    for (const auto& [flow, v] : run.mean_latency_us) s += v;
    return s / 3.0;
  };
  const double base = overall(off);
  const double oh_heavy = overall(heavy) - base;
  const double oh_light = overall(light) - base;
  EXPECT_GT(oh_heavy, oh_light);
  EXPECT_GT(oh_heavy, 0.0);
}

TEST(AclAppIntegration, DroppedPacketsNeverReachTx) {
  // A flow whose port pair is inside Table III must be dropped.
  SymbolTable symtab;
  const acl::RuleSet rules = acl::make_paper_ruleset();
  apps::AclFirewallApp app(symtab, rules);
  sim::Machine m(symtab);

  net::TrafficGenConfig tgc;
  tgc.total_packets = 10;
  const FlowKey dropped{ipv4("192.168.10.4"), ipv4("192.168.11.5"), 50, 300};
  net::TrafficGen tg(tgc, app.rx_nic(), app.tx_nic(), {dropped});
  tg.expect_drops(10); // a firewall's job: the tester must not wait forever
  app.expect_packets(10);
  m.attach(0, tg);
  app.attach(m, 1, 2, 3);
  const auto r = m.run();
  EXPECT_TRUE(r.all_done) << "drop accounting lets the run terminate";
  EXPECT_TRUE(tg.complete());
  EXPECT_EQ(app.dropped(), 10u);
  EXPECT_EQ(app.transmitted(), 0u);
  EXPECT_EQ(tg.received(), 0u);
}

} // namespace
} // namespace fluxtrace
