// End-to-end reproduction of the §IV-B proof of concept: run the sample
// app on the simulated machine with markers + PEBS, integrate, and check
// the Fig. 8 structure — queries 1 and 5 fluctuate although queries with
// the same n exist, and f3 is the function responsible.
#include <gtest/gtest.h>

#include "fluxtrace/apps/query_cache_app.hpp"
#include "fluxtrace/core/integrator.hpp"

namespace fluxtrace {
namespace {

struct QueryAppRun {
  SymbolTable symtab;
  std::unique_ptr<apps::QueryCacheApp> app;
  std::unique_ptr<sim::Machine> machine;
  core::TraceTable table;

  explicit QueryAppRun(std::uint64_t reset = 8000) {
    app = std::make_unique<apps::QueryCacheApp>(symtab);
    machine = std::make_unique<sim::Machine>(symtab);
    sim::PebsConfig pc;
    pc.reset = reset;
    machine->cpu(1).enable_pebs(pc); // Thread 1 = the worker core
    app->submit(apps::QueryCacheApp::paper_queries());
    app->attach(*machine, /*rx_core=*/0, /*worker_core=*/1);
    const auto r = machine->run();
    EXPECT_TRUE(r.all_done);
    machine->flush_samples();
    core::TraceIntegrator integ(symtab);
    table = integ.integrate(machine->marker_log().markers(),
                            machine->pebs_driver().samples());
  }
};

TEST(QueryAppIntegration, AllTenQueriesTraced) {
  QueryAppRun run;
  EXPECT_EQ(run.app->queries_processed(), 10u);
  const auto items = run.table.items();
  ASSERT_EQ(items.size(), 10u);
  EXPECT_EQ(items.front(), 1u);
  EXPECT_EQ(items.back(), 10u);
  // Every query has a closed marker window on the worker core.
  EXPECT_EQ(run.table.windows().size(), 10u);
}

TEST(QueryAppIntegration, FirstQueryFluctuatesAgainstSameN) {
  // Queries 1, 2, 4, 8 all have n = 3; query 1 hits a cold cache.
  QueryAppRun run;
  const Tsc q1 = run.table.item_window_total(1);
  const Tsc q2 = run.table.item_window_total(2);
  const Tsc q4 = run.table.item_window_total(4);
  const Tsc q8 = run.table.item_window_total(8);
  EXPECT_GT(q1, 5 * q2) << "cold query must be far slower";
  // Warm repeats are mutually similar (within 50%).
  EXPECT_LT(std::max({q2, q4, q8}), 2 * std::min({q2, q4, q8}));
}

TEST(QueryAppIntegration, FifthQueryFluctuatesAgainstSameN) {
  // Queries 5, 7, 9 have n = 5; query 5 must compute 2000 new points.
  QueryAppRun run;
  const Tsc q5 = run.table.item_window_total(5);
  const Tsc q7 = run.table.item_window_total(7);
  const Tsc q9 = run.table.item_window_total(9);
  EXPECT_GT(q5, 3 * q7);
  EXPECT_LT(std::max(q7, q9), 2 * std::min(q7, q9));
}

TEST(QueryAppIntegration, F3DominatesTheColdQuery) {
  // The knowledge only per-function traces give (§IV-B): when the cache
  // does not hit, it is f3 — not f1 — that takes the time.
  QueryAppRun run;
  const SymbolId f1 = run.app->f1();
  const SymbolId f3 = run.app->f3();
  const Tsc f3_cold = run.table.elapsed(1, f3);
  const Tsc f1_cold = run.table.elapsed(1, f1);
  EXPECT_GT(f3_cold, 0u);
  EXPECT_GT(f3_cold, 10 * std::max<Tsc>(f1_cold, 1));
}

TEST(QueryAppIntegration, WarmQueriesHaveNoF3Samples) {
  QueryAppRun run;
  const SymbolId f3 = run.app->f3();
  for (const ItemId warm : {2u, 4u, 8u, 7u, 9u}) {
    EXPECT_EQ(run.table.sample_count(warm, f3), 0u) << "item " << warm;
  }
}

TEST(QueryAppIntegration, EstimatesStayWithinWindows) {
  // The sum of per-function estimates can never exceed the instrumented
  // window (samples lie inside it by construction).
  QueryAppRun run;
  for (const ItemId item : run.table.items()) {
    EXPECT_LE(run.table.item_estimated_total(item),
              run.table.item_window_total(item))
        << "item " << item;
  }
}

TEST(QueryAppIntegration, ColdQueryEstimateIsAccurate) {
  // For the long cold query, dozens of samples land in f3: the estimate
  // must recover most of the window.
  QueryAppRun run;
  const double est = static_cast<double>(run.table.item_estimated_total(1));
  const double win = static_cast<double>(run.table.item_window_total(1));
  EXPECT_GT(est / win, 0.7) << "est=" << est << " win=" << win;
}

TEST(QueryAppIntegration, HigherResetValueMeansFewerSamples) {
  QueryAppRun fine(4000), coarse(24000);
  EXPECT_GT(fine.table.total_samples(), 2 * coarse.table.total_samples());
}

TEST(QueryAppIntegration, CacheHighWaterGrowsToMaxN) {
  QueryAppRun run;
  EXPECT_EQ(run.app->cache_high_water(), 5000u); // n=5 × 1000 points
}

TEST(QueryAppIntegration, BoundedCacheEvictsAndColdPathsRecur) {
  // With a 4-chunk LRU cache, an n=5 query cannot be fully cached: the
  // fluctuation recurs forever instead of vanishing after warm-up.
  SymbolTable symtab;
  apps::QueryCacheAppConfig cfg;
  cfg.cache_capacity_chunks = 4;
  apps::QueryCacheApp app(symtab, cfg);
  sim::Machine m(symtab);

  std::vector<apps::Query> queries;
  for (ItemId id = 1; id <= 12; ++id) {
    queries.push_back(apps::Query{id, 5}); // needs 5 chunks > capacity 4
  }
  app.submit(queries);
  app.attach(m, 0, 1);
  const auto r = m.run();
  EXPECT_TRUE(r.all_done);
  EXPECT_GT(app.cache_evictions(), 10u);

  // Every repeat stays slow: the LRU can never hold the whole working
  // set (chunk 0 is always the victim by the time it is needed again...
  // sequential access + LRU = worst case).
  const auto windows = core::TraceIntegrator::windows_from_markers(
      m.marker_log().markers());
  ASSERT_EQ(windows.size(), 12u);
  Tsc late_min = ~Tsc{0};
  for (std::size_t i = 6; i < windows.size(); ++i) {
    late_min = std::min(late_min, windows[i].length());
  }
  // Unbounded config for contrast: repeats are ~free.
  SymbolTable symtab2;
  apps::QueryCacheApp unbounded(symtab2);
  sim::Machine m2(symtab2);
  unbounded.submit(queries);
  unbounded.attach(m2, 0, 1);
  m2.run();
  const auto w2 = core::TraceIntegrator::windows_from_markers(
      m2.marker_log().markers());
  EXPECT_GT(late_min, 5 * w2.back().length())
      << "bounded-cache repeats stay cold; unbounded repeats are warm";
}

TEST(QueryAppIntegration, DeterministicEndToEnd) {
  QueryAppRun a, b;
  for (const ItemId item : a.table.items()) {
    EXPECT_EQ(a.table.item_window_total(item), b.table.item_window_total(item));
    EXPECT_EQ(a.table.item_estimated_total(item),
              b.table.item_estimated_total(item));
  }
}

} // namespace
} // namespace fluxtrace
