// The online pipeline wired to a live machine via the marker/driver
// sinks must reproduce the offline integration exactly — on a real
// workload, with real drain batching.
#include <gtest/gtest.h>

#include <algorithm>

#include "fluxtrace/apps/query_cache_app.hpp"
#include "fluxtrace/core/integrator.hpp"
#include "fluxtrace/core/online.hpp"

namespace fluxtrace {
namespace {

TEST(OnlineLive, MatchesOfflineOnTheQueryApp) {
  SymbolTable symtab;
  apps::QueryCacheApp app(symtab);
  sim::MachineConfig mc;
  mc.driver.double_buffering = true; // no sample loss: exact equivalence
  sim::Machine m(symtab, mc);

  sim::PebsConfig pc;
  pc.reset = 4000;
  pc.buffer_capacity = 32; // many small drains: stress the batching path
  m.cpu(1).enable_pebs(pc);

  core::OnlineTracerConfig ocfg;
  ocfg.keep_results = 64;
  core::OnlineTracer online(symtab, ocfg);
  m.marker_log().set_sink(
      [&online](const Marker& mk) { online.on_marker(mk); });
  m.pebs_driver().set_sink(
      [&online](const PebsSample& s) { online.on_sample(s); });

  app.submit(apps::QueryCacheApp::paper_queries());
  app.attach(m, 0, 1);
  m.run();
  m.flush_samples();
  online.finish();

  core::TraceIntegrator integ(symtab);
  const core::TraceTable offline = integ.integrate(
      m.marker_log().markers(), m.pebs_driver().samples());

  EXPECT_EQ(online.items_completed(), 10u);
  for (const core::OnlineResult& r : online.recent()) {
    EXPECT_EQ(r.window, offline.item_window_total(r.item)) << r.item;
    for (const SymbolId fn : {app.f1(), app.f2(), app.f3()}) {
      EXPECT_EQ(r.elapsed(fn), offline.elapsed(r.item, fn))
          << "item " << r.item << " fn " << symtab.name(fn);
    }
  }
}

TEST(OnlineLive, ColdQueriesFlaggedOnline) {
  // Stream a long warm workload with two injected cold queries; the
  // online detector must flag them as they complete.
  SymbolTable symtab;
  apps::QueryCacheAppConfig qcfg;
  apps::QueryCacheApp app(symtab, qcfg);
  sim::Machine m(symtab);
  sim::PebsConfig pc;
  pc.reset = 8000;
  pc.buffer_capacity = 64;
  m.cpu(1).enable_pebs(pc);

  core::OnlineTracerConfig ocfg;
  ocfg.detector = core::DetectorConfig{3.0, 8};
  core::OnlineTracer online(symtab, ocfg);
  std::vector<ItemId> flagged;
  online.set_dump_callback(
      [&flagged](const core::OnlineResult& r, const SampleVec&) {
        flagged.push_back(r.item);
      });
  m.marker_log().set_sink(
      [&online](const Marker& mk) { online.on_marker(mk); });
  m.pebs_driver().set_sink(
      [&online](const PebsSample& s) { online.on_sample(s); });

  std::vector<apps::Query> queries;
  ItemId id = 0;
  queries.push_back(apps::Query{++id, 4}); // warms chunks 1..4
  for (int i = 0; i < 30; ++i) {
    queries.push_back(apps::Query{++id, static_cast<std::uint32_t>(2 + i % 3)});
  }
  const ItemId cold1 = ++id;
  queries.push_back(apps::Query{cold1, 6}); // 2 new chunks
  for (int i = 0; i < 10; ++i) {
    queries.push_back(apps::Query{++id, 3});
  }
  const ItemId cold2 = ++id;
  queries.push_back(apps::Query{cold2, 8}); // 2 more new chunks
  app.submit(queries);
  app.attach(m, 0, 1);
  m.run();
  m.flush_samples();
  online.finish();

  EXPECT_EQ(std::count(flagged.begin(), flagged.end(), cold1), 1)
      << "first injected cold query flagged";
  EXPECT_EQ(std::count(flagged.begin(), flagged.end(), cold2), 1)
      << "second injected cold query flagged";
}

} // namespace
} // namespace fluxtrace
