// End-to-end: the hybrid method applied to the database engine — the
// paper's primary motivating domain (§I quotes database fluctuation
// studies first). Identical point queries fluctuate with buffer-pool
// state; group-commit spikes attribute to wal_flush.
#include <gtest/gtest.h>

#include <algorithm>

#include "fluxtrace/apps/minidb_app.hpp"
#include "fluxtrace/core/integrator.hpp"
#include "fluxtrace/core/online.hpp"

namespace fluxtrace {
namespace {

struct DbRun {
  SymbolTable symtab;
  std::unique_ptr<apps::MiniDbApp> app;
  std::unique_ptr<sim::Machine> machine;
  std::vector<apps::DbQuery> queries;
  core::TraceTable table;

  explicit DbRun(std::vector<apps::DbQuery> qs, std::uint64_t reset = 2000,
                 apps::MiniDbAppConfig cfg = {}) {
    app = std::make_unique<apps::MiniDbApp>(symtab, cfg);
    app->preload(4096);
    machine = std::make_unique<sim::Machine>(symtab);
    sim::PebsConfig pc;
    pc.reset = reset;
    pc.buffer_capacity = 1u << 16;
    machine->cpu(1).enable_pebs(pc);
    queries = std::move(qs);
    app->submit(queries);
    app->attach(*machine, 0, 1);
    const auto r = machine->run();
    EXPECT_TRUE(r.all_done);
    machine->flush_samples();
    core::TraceIntegrator integ(symtab);
    table = integ.integrate(machine->marker_log().markers(),
                            machine->pebs_driver().samples());
  }

  double us(Tsc t) const { return machine->spec().us(t); }
};

std::vector<apps::DbQuery> seq(std::initializer_list<apps::DbQuery> qs) {
  std::vector<apps::DbQuery> out;
  ItemId id = 1;
  for (apps::DbQuery q : qs) {
    q.id = id++;
    out.push_back(q);
  }
  return out;
}

TEST(MiniDbIntegration, IdenticalPointQueriesFluctuateWithPoolState) {
  // point(7) warm; a big scan evicts; point(7) again — same query, very
  // different time, and fetch_rows is where it went.
  // The scan touches keys 1024..4095 = 96 heap pages — exactly the pool
  // capacity — so every previously pooled page (including key 7's) is
  // evicted.
  DbRun run(seq({
      {0, apps::DbQueryType::Point, 7, 0},   // #1 cold-ish (first touch)
      {0, apps::DbQueryType::Point, 7, 0},   // #2 warm
      {0, apps::DbQueryType::Range, 1024, 3072}, // #3 pool-thrashing scan
      {0, apps::DbQueryType::Point, 7, 0},   // #4 identical to #2, now cold
      {0, apps::DbQueryType::Point, 7, 0},   // #5 warm again
  }));

  const Tsc warm = run.table.item_window_total(2);
  const Tsc cold = run.table.item_window_total(4);
  const Tsc rewarm = run.table.item_window_total(5);
  EXPECT_GT(cold, 3 * warm) << "evicted page must cost a storage read";
  EXPECT_LT(rewarm, cold / 3) << "second touch is warm again";

  // The per-function trace pins the difference on fetch_rows.
  const SymbolId fetch = run.app->fetch_rows();
  EXPECT_GT(run.table.elapsed(4, fetch), 2 * run.table.elapsed(2, fetch));
}

TEST(MiniDbIntegration, GroupCommitSpikesAttributeToWalFlush) {
  apps::MiniDbAppConfig cfg;
  cfg.wal_group = 8;
  std::vector<apps::DbQuery> qs;
  for (int i = 0; i < 24; ++i) {
    qs.push_back(apps::DbQuery{static_cast<ItemId>(i + 1),
                               apps::DbQueryType::Insert, 0, 0});
  }
  DbRun run(std::move(qs), 2000, cfg);

  const SymbolId flush = run.app->wal_flush();
  int flushing = 0;
  for (ItemId id = 1; id <= 24; ++id) {
    if (run.table.sample_count(id, flush) > 0) ++flushing;
  }
  EXPECT_EQ(flushing, 3) << "every 8th insert pays the group flush";
  EXPECT_EQ(run.app->wal().flushes(), 3u);

  // Flushing inserts are visibly slower than their neighbours.
  const Tsc spike = run.table.item_window_total(8);
  const Tsc plain = run.table.item_window_total(7);
  EXPECT_GT(spike, plain + run.machine->spec().cycles(20000.0));
}

TEST(MiniDbIntegration, CheckpointSpikesAttributeToCheckpointFn) {
  apps::MiniDbAppConfig cfg;
  cfg.checkpoint_every = 10;
  std::vector<apps::DbQuery> qs;
  for (int i = 0; i < 30; ++i) {
    // Inserts dirty pages, so each checkpoint has work to flush.
    qs.push_back(apps::DbQuery{static_cast<ItemId>(i + 1),
                               apps::DbQueryType::Insert, 0, 0});
  }
  DbRun run(std::move(qs), 2000, cfg);
  const SymbolId ckpt = run.app->checkpoint();
  int with_ckpt = 0;
  for (ItemId id = 1; id <= 30; ++id) {
    if (run.table.sample_count(id, ckpt) > 0) ++with_ckpt;
  }
  EXPECT_EQ(with_ckpt, 3) << "every 10th query pays the checkpoint";
  // The checkpointing query is visibly slower than its neighbour.
  EXPECT_GT(run.table.item_window_total(10),
            run.table.item_window_total(9) +
                run.machine->spec().cycles(10000.0));
  // And the pool is clean afterwards.
  EXPECT_EQ(run.app->pool().dirty(1000), false);
}

TEST(MiniDbIntegration, RangeScansCostScaleWithLimit) {
  DbRun run(seq({
      {0, apps::DbQueryType::Range, 100, 16},
      {0, apps::DbQueryType::Range, 100, 256},
  }));
  EXPECT_GT(run.table.item_window_total(2),
            3 * run.table.item_window_total(1));
}

TEST(MiniDbIntegration, AllQueriesTracedAndDeterministic) {
  const auto wl = apps::MiniDbApp::make_mixed_workload(200, 7, 4096);
  DbRun a(wl), b(wl);
  EXPECT_EQ(a.app->processed(), 200u);
  EXPECT_EQ(a.table.windows().size(), 200u);
  for (ItemId id = 1; id <= 200; ++id) {
    EXPECT_EQ(a.table.item_window_total(id), b.table.item_window_total(id));
  }
}

TEST(MiniDbIntegration, EstimatesStayWithinWindows) {
  const auto wl = apps::MiniDbApp::make_mixed_workload(150, 3, 4096);
  DbRun run(wl);
  for (const ItemId item : run.table.items()) {
    EXPECT_LE(run.table.item_estimated_total(item),
              run.table.item_window_total(item))
        << "item " << item;
  }
}

TEST(MiniDbIntegration, OnlineMonitoringFlagsGroupCommits) {
  // Production monitoring on the database: the online tracer, fed from
  // the live sinks, flags the group-commit inserts as they complete.
  SymbolTable symtab;
  apps::MiniDbAppConfig cfg;
  cfg.wal_group = 16;
  apps::MiniDbApp app(symtab, cfg);
  app.preload(4096);
  sim::MachineConfig mc;
  mc.driver.double_buffering = true;
  sim::Machine m(symtab, mc);
  sim::PebsConfig pc;
  pc.reset = 2000;
  pc.buffer_capacity = 64;
  m.cpu(1).enable_pebs(pc);

  core::OnlineTracerConfig ocfg;
  ocfg.detector = core::DetectorConfig{3.0, 12};
  core::OnlineTracer online(symtab, ocfg);
  std::vector<ItemId> flagged;
  online.set_dump_callback(
      [&flagged](const core::OnlineResult& r, const SampleVec&) {
        flagged.push_back(r.item);
      });
  m.marker_log().set_sink(
      [&online](const Marker& mk) { online.on_marker(mk); });
  m.pebs_driver().set_sink(
      [&online](const PebsSample& s) { online.on_sample(s); });

  std::vector<apps::DbQuery> qs;
  for (int i = 0; i < 64; ++i) {
    qs.push_back(apps::DbQuery{static_cast<ItemId>(i + 1),
                               apps::DbQueryType::Insert, 0, 0});
  }
  app.submit(qs);
  app.attach(m, 0, 1);
  m.run();
  m.flush_samples();
  online.finish();

  // Inserts 16, 32, 48, 64 pay the fsync; the post-warmup ones must all
  // be flagged. Other inserts may legitimately be flagged too — B+ tree
  // splits and pool misses are real fluctuations — so the assertion is
  // containment, not equality.
  for (const ItemId commit : {16u, 32u, 48u, 64u}) {
    EXPECT_EQ(std::count(flagged.begin(), flagged.end(), commit), 1)
        << "group-commit insert " << commit << " must be flagged";
  }
}

} // namespace
} // namespace fluxtrace
