// RSS multi-worker firewall: dispatch correctness and the head-of-line
// fluctuation the per-core trace diagnoses.
#include <gtest/gtest.h>

#include "fluxtrace/acl/ruleset.hpp"
#include "fluxtrace/apps/rss_firewall_app.hpp"
#include "fluxtrace/core/integrator.hpp"
#include "fluxtrace/net/trafficgen.hpp"

namespace fluxtrace {
namespace {

struct RssRun {
  SymbolTable symtab;
  std::unique_ptr<apps::RssFirewallApp> app;
  std::unique_ptr<net::TrafficGen> tg;
  std::unique_ptr<sim::Machine> machine;
  core::TraceTable table;

  RssRun(apps::RssFirewallConfig cfg, std::vector<FlowKey> flows,
         std::uint64_t packets, double gap_ns) {
    const acl::RuleSet rules = acl::make_paper_ruleset();
    app = std::make_unique<apps::RssFirewallApp>(symtab, rules, cfg);
    sim::MachineConfig mc;
    mc.spec.num_cores = 4 + cfg.num_workers;
    machine = std::make_unique<sim::Machine>(symtab, mc);
    net::TrafficGenConfig tgc;
    tgc.total_packets = packets;
    tgc.inter_packet_gap_ns = gap_ns;
    tg = std::make_unique<net::TrafficGen>(tgc, app->rx_nic(), app->tx_nic(),
                                           std::move(flows));
    app->expect_packets(packets);
    machine->attach(0, *tg);
    app->attach(*machine, 1, 2, 2 + cfg.num_workers);
    const auto r = machine->run();
    EXPECT_TRUE(r.all_done);
    machine->flush_samples();
    core::TraceIntegrator integ(symtab);
    table = integ.integrate(machine->marker_log().markers(),
                            machine->pebs_driver().samples());
  }
};

TEST(RssFirewall, RoundRobinSpreadsEvenly) {
  apps::RssFirewallConfig cfg;
  cfg.num_workers = 3;
  const acl::PaperPackets pk;
  RssRun run(cfg, {pk.type_c}, 90, 20000);
  EXPECT_TRUE(run.tg->complete());
  EXPECT_EQ(run.app->classified(0), 30u);
  EXPECT_EQ(run.app->classified(1), 30u);
  EXPECT_EQ(run.app->classified(2), 30u);
  // Dispatch record matches round-robin.
  for (ItemId id = 0; id < 90; ++id) {
    EXPECT_EQ(run.app->worker_of(id), id % 3) << id;
  }
}

TEST(RssFirewall, FlowHashKeepsFlowsTogether) {
  apps::RssFirewallConfig cfg;
  cfg.num_workers = 4;
  cfg.dispatch = apps::RssDispatch::FlowHash;
  const acl::PaperPackets pk;
  RssRun run(cfg, {pk.type_a, pk.type_b, pk.type_c}, 120, 20000);
  EXPECT_TRUE(run.tg->complete());
  // All packets of one flow land on one worker.
  for (std::uint32_t flow = 0; flow < 3; ++flow) {
    const std::uint32_t first = run.app->worker_of(flow);
    for (ItemId id = flow; id < 120; id += 3) {
      EXPECT_EQ(run.app->worker_of(id), first) << "packet " << id;
    }
  }
}

TEST(RssFirewall, EveryPacketGetsAWorkerWindow) {
  apps::RssFirewallConfig cfg;
  cfg.num_workers = 2;
  const acl::PaperPackets pk;
  RssRun run(cfg, {pk.type_a, pk.type_c}, 60, 25000);
  for (ItemId id = 0; id < 60; ++id) {
    const std::uint32_t w = run.app->worker_of(id);
    ASSERT_LT(w, 2u);
    EXPECT_NE(run.table.window_of(id, 2 + w), nullptr) << id;
    EXPECT_EQ(run.table.window_of(id, 2 + (1 - w)), nullptr) << id;
  }
}

TEST(RssFirewall, HeadOfLineBlockingShowsInWaitsNotWindows) {
  apps::RssFirewallConfig cfg;
  cfg.num_workers = 2;
  const acl::PaperPackets pk;
  // Round-robin puts every A on worker 0; C packets alternate workers.
  RssRun run(cfg, {pk.type_a, pk.type_c, pk.type_c, pk.type_c}, 400, 5500);

  const Tsc wire = run.machine->spec().cycles(500.0);
  double wait[2] = {0, 0}, win[2] = {0, 0};
  int n[2] = {0, 0};
  for (const auto& rec : run.tg->records()) {
    if (rec.flow_idx == 0) continue; // type A
    const std::uint32_t w = run.app->worker_of(rec.id);
    const core::ItemWindow* iw = run.table.window_of(rec.id, 2 + w);
    ASSERT_NE(iw, nullptr);
    wait[w] += static_cast<double>(iw->enter - rec.sent - wire);
    win[w] += static_cast<double>(iw->length());
    ++n[w];
  }
  for (int w = 0; w < 2; ++w) {
    wait[w] /= n[w];
    win[w] /= n[w];
  }
  EXPECT_GT(wait[0], 3 * wait[1]) << "worker 0's C packets queue behind A";
  EXPECT_NEAR(win[0] / win[1], 1.0, 0.1)
      << "classify windows identical across workers";
}

} // namespace
} // namespace fluxtrace
