// End-to-end check of the §V-A extension: under a preemptive user-level
// scheduler, marker-window mapping mis-attributes samples, while the
// register-carried item id (R13) recovers correct per-item traces.
#include <gtest/gtest.h>

#include "fluxtrace/core/integrator.hpp"
#include "fluxtrace/core/regid.hpp"
#include "fluxtrace/rt/ulthread.hpp"

namespace fluxtrace {
namespace {

struct TimerRun {
  SymbolTable symtab;
  SymbolId heavy_fn, light_fn, sched_fn;
  std::unique_ptr<sim::Machine> machine;
  std::unique_ptr<rt::UlScheduler> sched;

  TimerRun() {
    heavy_fn = symtab.add("process_heavy", 0x800);
    light_fn = symtab.add("process_light", 0x800);
    sched_fn = symtab.add("ul_switch", 0x100);

    machine = std::make_unique<sim::Machine>(symtab);
    sim::PebsConfig pc;
    pc.reset = 400;
    pc.sample_cost_ns = 0.0;
    machine->cpu(0).enable_pebs(pc);

    rt::UlSchedulerConfig cfg;
    cfg.timeslice = 2000;
    cfg.scheduler_symbol = sched_fn;
    sched = std::make_unique<rt::UlScheduler>(cfg);
    // Two heavy items interleave for their whole lifetime, so their
    // marker windows overlap almost completely — window-based mapping
    // must attribute many of item 1's samples to item 2. Item 1 runs
    // only heavy_fn; item 2 runs only light_fn.
    sched->submit(rt::UlWork{1, {sim::ExecBlock{heavy_fn, 80000, 0, {}}}});
    sched->submit(rt::UlWork{2, {sim::ExecBlock{light_fn, 80000, 0, {}}}});
    machine->attach(0, *sched);
    machine->run();
    machine->flush_samples();
  }
};

TEST(TimerSwitchingIntegration, WindowMappingMisattributes) {
  TimerRun run;
  core::RegisterIdMapper mapper;
  const auto cmp = mapper.compare_with_windows(
      run.machine->pebs_driver().samples(),
      run.machine->marker_log().markers());
  EXPECT_GT(cmp.disagree, 0u)
      << "preemption must cause window/register disagreement";
  EXPECT_GT(cmp.by_register, cmp.by_window - cmp.disagree)
      << "register mapping attributes at least as much, correctly";
}

TEST(TimerSwitchingIntegration, RegisterModeSeparatesItemsCorrectly) {
  TimerRun run;
  core::TraceIntegrator integ(run.symtab, core::IntegratorConfig{true});
  const core::TraceTable t = integ.integrate(
      run.machine->marker_log().markers(),
      run.machine->pebs_driver().samples());

  // Item 1 executed only heavy_fn; item 2 only light_fn.
  EXPECT_GT(t.sample_count(1, run.heavy_fn), 50u);
  EXPECT_EQ(t.sample_count(1, run.light_fn), 0u);
  EXPECT_GT(t.sample_count(2, run.light_fn), 50u);
  EXPECT_EQ(t.sample_count(2, run.heavy_fn), 0u);
}

TEST(TimerSwitchingIntegration, WindowModeBleedsWorkAcrossItems) {
  TimerRun run;
  core::TraceIntegrator window_mode(run.symtab);
  const core::TraceTable t = window_mode.integrate(
      run.machine->marker_log().markers(),
      run.machine->pebs_driver().samples());
  // Item 2's window covers item 1's later slices, so heavy_fn samples
  // (belonging to item 1) are wrongly attributed to item 2.
  EXPECT_GT(t.sample_count(2, run.heavy_fn), 0u);
}

TEST(TimerSwitchingIntegration, RegisterEstimateTracksTrueWork) {
  TimerRun run;
  core::TraceIntegrator integ(run.symtab, core::IntegratorConfig{true});
  const core::TraceTable t = integ.integrate(
      {}, run.machine->pebs_driver().samples());
  const auto& spec = run.machine->spec();
  // True heavy work: 80k uops = 32k cycles. The first-to-last-sample span
  // for a preempted item covers its whole lifetime — here roughly 2× the
  // true work, since an equally heavy item shares the core. The estimate
  // is an upper bound on the true work, bounded by the schedule length.
  const double est_us = spec.us(t.elapsed(1, run.heavy_fn));
  const double true_us = spec.us(spec.uop_cycles(80000));
  EXPECT_GE(est_us, 0.95 * true_us);
  EXPECT_LT(est_us, 2.5 * true_us);
}

} // namespace
} // namespace fluxtrace
