#include "fluxtrace/prog/builder.hpp"

#include <gtest/gtest.h>

#include "fluxtrace/sim/machine.hpp"

namespace fluxtrace::prog {
namespace {

TEST(ProgramBuilder, BuildsBlocksWithAttributes) {
  SymbolTable symtab;
  auto prog = ProgramBuilder(symtab)
                  .fn("a").uops(100).branch_misses(5)
                  .fn("b").uops(200).loads(0x1000, 8, 64)
                  .fn("c").uops(50).stall(77);
  const auto blocks = prog.blocks();
  ASSERT_EQ(blocks.size(), 3u);
  EXPECT_EQ(blocks[0].uops, 100u);
  EXPECT_EQ(blocks[0].branch_misses, 5u);
  EXPECT_EQ(blocks[1].mem.count, 8u);
  EXPECT_EQ(blocks[1].mem.base, 0x1000u);
  EXPECT_EQ(blocks[2].extra_stall, 77u);
  EXPECT_EQ(symtab.size(), 3u);
}

TEST(ProgramBuilder, ReusesSymbolsByName) {
  SymbolTable symtab;
  auto prog = ProgramBuilder(symtab)
                  .fn("loop").uops(10)
                  .fn("body").uops(20)
                  .fn("loop").uops(10);
  EXPECT_EQ(symtab.size(), 2u);
  const auto blocks = prog.blocks();
  EXPECT_EQ(blocks[0].fn, blocks[2].fn);
  EXPECT_EQ(prog.symbol("loop"), blocks[0].fn);
}

TEST(ProgramBuilder, RepeatDuplicatesTheGroup) {
  SymbolTable symtab;
  auto prog = ProgramBuilder(symtab)
                  .fn("x").uops(10)
                  .fn("y").uops(20)
                  .repeat(3);
  const auto blocks = prog.blocks();
  ASSERT_EQ(blocks.size(), 6u);
  EXPECT_EQ(blocks[4].uops, 10u);
  EXPECT_EQ(blocks[5].uops, 20u);
}

TEST(ProgramBuilder, RepeatGroupsAreIndependent) {
  SymbolTable symtab;
  auto prog = ProgramBuilder(symtab)
                  .fn("x").uops(10).repeat(2) // x x
                  .fn("y").uops(20).repeat(3); // y y y
  const auto blocks = prog.blocks();
  ASSERT_EQ(blocks.size(), 5u);
  EXPECT_EQ(blocks[1].uops, 10u);
  EXPECT_EQ(blocks[2].uops, 20u);
  EXPECT_EQ(blocks[4].uops, 20u);
}

TEST(ProgramBuilder, RunOnExecutesEverything) {
  SymbolTable symtab;
  auto prog = ProgramBuilder(symtab)
                  .fn("w").uops(1000).repeat(4);
  sim::Machine m(symtab);
  prog.run_on(m.cpu(0));
  EXPECT_EQ(m.cpu(0).stats().events.get(HwEvent::UopsRetired), 4000u);
  EXPECT_EQ(m.cpu(0).stats().blocks, 4u);
}

} // namespace
} // namespace fluxtrace::prog
