// Workload generators: determinism and the distribution shapes the
// benches rely on.
#include <gtest/gtest.h>

#include "fluxtrace/apps/minidb_app.hpp"
#include "fluxtrace/prog/workload.hpp"

namespace fluxtrace {
namespace {

TEST(MiniDbWorkload, DeterministicInSeed) {
  const auto a = apps::MiniDbApp::make_mixed_workload(500, 7, 4096);
  const auto b = apps::MiniDbApp::make_mixed_workload(500, 7, 4096);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].type, b[i].type);
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].limit, b[i].limit);
  }
  const auto c = apps::MiniDbApp::make_mixed_workload(500, 8, 4096);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_diff |= a[i].type != c[i].type || a[i].key != c[i].key;
  }
  EXPECT_TRUE(any_diff) << "different seeds must differ";
}

TEST(MiniDbWorkload, MixMatchesConfiguredShares) {
  const auto wl = apps::MiniDbApp::make_mixed_workload(5000, 3, 4096);
  std::size_t point = 0, range = 0, insert = 0;
  for (const auto& q : wl) {
    switch (q.type) {
      case apps::DbQueryType::Point: ++point; break;
      case apps::DbQueryType::Range: ++range; break;
      case apps::DbQueryType::Insert: ++insert; break;
    }
  }
  // ~70 / 20 / 10 with sampling noise.
  EXPECT_NEAR(static_cast<double>(point) / 5000.0, 0.70, 0.03);
  EXPECT_NEAR(static_cast<double>(insert) / 5000.0, 0.20, 0.03);
  EXPECT_NEAR(static_cast<double>(range) / 5000.0, 0.10, 0.03);
}

TEST(MiniDbWorkload, IdsAreSequential) {
  const auto wl = apps::MiniDbApp::make_mixed_workload(100, 1, 4096);
  for (std::size_t i = 0; i < wl.size(); ++i) {
    EXPECT_EQ(wl[i].id, i + 1);
  }
}

TEST(SpecWorkloads, DistinctUopRates) {
  // Fig. 4's precondition: the three kernels retire uops at clearly
  // different rates.
  const auto rate = [](prog::Workload (*make)(SymbolTable&)) {
    SymbolTable symtab;
    const prog::Workload wl = make(symtab);
    sim::Machine m(symtab);
    prog::WorkloadTask t(wl, 500);
    m.attach(0, t);
    const auto r = m.run();
    return static_cast<double>(
               m.cpu(0).stats().events.get(HwEvent::UopsRetired)) /
           static_cast<double>(r.end_tsc);
  };
  const double astar = rate(prog::make_astar);
  const double bzip2 = rate(prog::make_bzip2);
  const double gcc = rate(prog::make_gcc);
  EXPECT_GT(bzip2, 1.5 * gcc);
  EXPECT_GT(gcc, 1.2 * astar);
}

TEST(SpecWorkloads, TaskRunsExactIterations) {
  SymbolTable symtab;
  const prog::Workload wl = prog::make_bzip2(symtab);
  sim::Machine m(symtab);
  prog::WorkloadTask t(wl, 10);
  m.attach(0, t);
  m.run();
  EXPECT_EQ(t.remaining(), 0u);
  EXPECT_EQ(m.cpu(0).stats().events.get(HwEvent::UopsRetired),
            10 * wl.uops_per_iteration());
}

} // namespace
} // namespace fluxtrace
