// The Figure 2 motivation experiment: estimate per-request elapsed time of
// each web-server function the way the paper does (perf-style cycle
// profile, then t_f = T_request × c_f / c_a) and confirm the premise that
// most functions take only a few microseconds per request.
#include <gtest/gtest.h>

#include "fluxtrace/apps/webserver_model.hpp"
#include "fluxtrace/core/integrator.hpp"

namespace fluxtrace {
namespace {

struct WebRun {
  SymbolTable symtab;
  std::unique_ptr<apps::WebServerModel> model;
  std::unique_ptr<sim::Machine> machine;
  Tsc busy = 0;
  std::uint64_t requests = 0;

  explicit WebRun(std::uint64_t n_requests = 400, bool instrument = false) {
    apps::WebServerConfig cfg;
    cfg.total_requests = n_requests;
    cfg.instrument = instrument;
    model = std::make_unique<apps::WebServerModel>(symtab, cfg);
    machine = std::make_unique<sim::Machine>(symtab);
    model->attach(*machine, 0);
    const auto r = machine->run();
    EXPECT_TRUE(r.all_done);
    busy = machine->cpu(0).stats().busy_cycles;
    requests = model->processed();
  }

  /// Paper Fig. 2 estimator: per-request time of f = T_req × c_f / c_a.
  double per_request_us(SymbolId fn) const {
    const auto& st = machine->cpu(0).stats();
    const double share = static_cast<double>(st.fn_time(fn)) /
                         static_cast<double>(busy);
    const double t_req_us =
        machine->spec().us(busy) / static_cast<double>(requests);
    return share * t_req_us;
  }
};

TEST(WebServerModel, ProcessesAllRequests) {
  WebRun run(100);
  EXPECT_EQ(run.requests, 100u);
  EXPECT_GT(run.busy, 0u);
}

TEST(WebServerModel, MostFunctionsAreBelowFourMicroseconds) {
  WebRun run;
  std::size_t below_4us = 0;
  std::size_t below_1us = 0;
  for (const auto& f : run.model->functions()) {
    const double us = run.per_request_us(f.sym);
    EXPECT_GT(us, 0.0);
    if (us < 4.0) ++below_4us;
    if (us < 1.0) ++below_1us;
  }
  const std::size_t total = run.model->functions().size();
  // Fig. 2's point: "many functions take less than 4 us".
  EXPECT_GE(below_4us * 10, total * 7) << below_4us << "/" << total;
  EXPECT_GE(below_1us, 3u);
}

TEST(WebServerModel, PerRequestBusyTimeIsTensOfMicroseconds) {
  // NGINX-scale requests: a few tens of µs of CPU per request (the
  // paper's 149 µs wall time per request includes event-loop waits).
  WebRun run;
  const double t_req_us =
      run.machine->spec().us(run.busy) / static_cast<double>(run.requests);
  EXPECT_GT(t_req_us, 15.0);
  EXPECT_LT(t_req_us, 80.0);
}

TEST(WebServerModel, JitterVariesRequestsButProfileCannotSeeIt) {
  // Two runs are deterministic; within a run, requests differ (jitter) —
  // which the averaged profile hides. Verify via instrumented windows.
  WebRun run(200, /*instrument=*/true);
  const auto windows = core::TraceIntegrator::windows_from_markers(
      run.machine->marker_log().markers());
  ASSERT_EQ(windows.size(), 200u);
  Tsc min_w = ~Tsc{0}, max_w = 0;
  for (const auto& w : windows) {
    min_w = std::min(min_w, w.length());
    max_w = std::max(max_w, w.length());
  }
  EXPECT_GT(max_w, min_w + min_w / 10) << "per-request variation exists";
}

TEST(WebServerModel, DeterministicAcrossRuns) {
  WebRun a(150), b(150);
  EXPECT_EQ(a.busy, b.busy);
  for (const auto& f : a.model->functions()) {
    // Same symbol ids in both runs (same registration order).
    EXPECT_EQ(a.machine->cpu(0).stats().fn_time(f.sym),
              b.machine->cpu(0).stats().fn_time(f.sym));
  }
}

} // namespace
} // namespace fluxtrace
