// The timer-switching web server (NGINX's architecture) traced with
// register-carried request ids.
#include <gtest/gtest.h>

#include "fluxtrace/apps/timer_web_server.hpp"
#include "fluxtrace/core/integrator.hpp"
#include "fluxtrace/core/regid.hpp"

namespace fluxtrace {
namespace {

struct WebRun {
  SymbolTable symtab;
  std::unique_ptr<apps::TimerWebServer> server;
  std::unique_ptr<sim::Machine> machine;
  core::TraceTable trace;

  explicit WebRun(apps::TimerWebServerConfig cfg = {}) {
    server = std::make_unique<apps::TimerWebServer>(symtab, cfg);
    machine = std::make_unique<sim::Machine>(symtab);
    sim::PebsConfig pc;
    pc.reset = 2000;
    pc.buffer_capacity = 1u << 16;
    machine->cpu(0).enable_pebs(pc);
    server->attach(*machine, 0);
    const auto r = machine->run();
    EXPECT_TRUE(r.all_done);
    machine->flush_samples();
    core::TraceIntegrator integ(symtab, core::IntegratorConfig{true});
    trace = integ.integrate({}, machine->pebs_driver().samples());
  }
};

TEST(TimerWebServer, AllRequestsComplete) {
  apps::TimerWebServerConfig cfg;
  cfg.requests = 30;
  WebRun run(cfg);
  EXPECT_EQ(run.server->scheduler().completed(), 30u);
  EXPECT_GT(run.server->scheduler().context_switches(), 30u)
      << "heavy requests must be preempted many times";
}

TEST(TimerWebServer, WorkAttributesToTheRightFunctionPerRequest) {
  apps::TimerWebServerConfig cfg;
  cfg.requests = 24;
  WebRun run(cfg);
  const CpuSpec& spec = run.machine->spec();
  for (ItemId id = 1; id <= 24; ++id) {
    const auto work_us = [&](SymbolId fn) {
      return spec.us(
          spec.uop_cycles(run.trace.sample_count(id, fn) * 2000));
    };
    if (run.server->is_heavy(id)) {
      EXPECT_GT(work_us(run.server->sendfile()), 40.0) << "request " << id;
      EXPECT_LT(work_us(run.server->run_handler()), 2.0) << "request " << id;
    } else {
      EXPECT_GT(work_us(run.server->run_handler()), 2.0) << "request " << id;
      EXPECT_EQ(run.trace.sample_count(id, run.server->sendfile()), 0u)
          << "request " << id;
    }
  }
}

TEST(TimerWebServer, LightRequestsFinishBeforeConcurrentHeavyOnes) {
  // The defining property of the timer-switching architecture (§III-C).
  apps::TimerWebServerConfig cfg;
  cfg.requests = 16;
  cfg.heavy_every = 16; // request 16 is the only heavy one... make it 8
  cfg.heavy_every = 8;
  WebRun run(cfg);
  Tsc heavy_leave = 0, later_light_leave = 0;
  for (const Marker& m : run.machine->marker_log().markers()) {
    if (m.kind != MarkerKind::Leave) continue;
    if (m.item == 8) heavy_leave = m.tsc;
    if (m.item == 9) later_light_leave = m.tsc;
  }
  ASSERT_GT(heavy_leave, 0u);
  ASSERT_GT(later_light_leave, 0u);
  EXPECT_LT(later_light_leave, heavy_leave)
      << "a light request submitted after the heavy one finishes first";
}

} // namespace
} // namespace fluxtrace
