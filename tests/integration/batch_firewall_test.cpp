// End-to-end batch-mode firewall (§IV-C2 future work): the ACL thread
// marks bursts instead of packets; BatchIntegrator recovers per-item
// estimates.
#include <gtest/gtest.h>

#include "fluxtrace/acl/ruleset.hpp"
#include "fluxtrace/apps/acl_firewall_app.hpp"
#include "fluxtrace/core/batch.hpp"
#include "fluxtrace/net/trafficgen.hpp"

namespace fluxtrace {
namespace {

struct BatchRun {
  SymbolTable symtab;
  std::unique_ptr<apps::AclFirewallApp> app;
  std::unique_ptr<net::TrafficGen> tg;
  std::unique_ptr<sim::Machine> machine;

  explicit BatchRun(std::uint32_t batch_size, std::uint64_t packets = 120) {
    const acl::RuleSet rules = acl::make_paper_ruleset();
    apps::AclFirewallConfig cfg;
    cfg.batch_size = batch_size;
    app = std::make_unique<apps::AclFirewallApp>(symtab, rules, cfg);
    machine = std::make_unique<sim::Machine>(symtab);
    net::TrafficGenConfig tgc;
    tgc.total_packets = packets;
    tgc.inter_packet_gap_ns = 3000; // bursty: packets queue up
    const acl::PaperPackets pk;
    tg = std::make_unique<net::TrafficGen>(
        tgc, app->rx_nic(), app->tx_nic(),
        std::vector<FlowKey>{pk.type_a, pk.type_b, pk.type_c});
    sim::PebsConfig pc;
    pc.reset = 4000;
    pc.buffer_capacity = 1u << 16;
    machine->cpu(2).enable_pebs(pc);
    app->expect_packets(packets);
    machine->attach(0, *tg);
    app->attach(*machine, 1, 2, 3);
    const auto r = machine->run();
    EXPECT_TRUE(r.all_done);
    machine->flush_samples();
  }
};

TEST(BatchFirewallIntegration, BurstsFormAndMembersAreRegistered) {
  BatchRun run(/*batch_size=*/8);
  const core::BatchTable& bt = run.app->batch_table();
  EXPECT_GT(bt.size(), 0u);
  EXPECT_LT(bt.size(), 120u) << "batching must actually coalesce";
  // Markers: exactly two per batch, none per packet.
  EXPECT_EQ(run.machine->marker_log().size(), 2 * bt.size());
}

TEST(BatchFirewallIntegration, EveryPacketRecoveredExactlyOnce) {
  BatchRun run(8);
  core::BatchIntegrator integ(run.symtab, run.app->batch_table());
  const auto est = integ.integrate(run.machine->marker_log().markers(),
                                   run.machine->pebs_driver().samples(),
                                   core::BatchPolicy::SubWindows);
  std::vector<bool> seen(121, false);
  for (const auto& e : est) {
    ASSERT_LT(e.item, 121u);
    EXPECT_FALSE(seen[e.item]) << "duplicate item " << e.item;
    seen[e.item] = true;
  }
  std::size_t total = 0;
  for (const bool b : seen) total += b ? 1 : 0;
  EXPECT_EQ(total, 120u);
}

TEST(BatchFirewallIntegration, PooledTotalsMatchBatchWork) {
  BatchRun run(4);
  core::BatchIntegrator integ(run.symtab, run.app->batch_table());
  const SymbolId clf = run.app->classify_symbol();

  const auto pooled = integ.integrate(run.machine->marker_log().markers(),
                                      run.machine->pebs_driver().samples(),
                                      core::BatchPolicy::Pooled);
  // Within one batch all members get identical pooled estimates.
  std::map<ItemId, std::vector<Tsc>> per_batch;
  for (const auto& e : pooled) per_batch[e.batch].push_back(e.elapsed(clf));
  for (const auto& [batch, vals] : per_batch) {
    for (const Tsc v : vals) EXPECT_EQ(v, vals.front());
  }
}

TEST(BatchFirewallIntegration, BatchModeIsCheaperPerPacket) {
  BatchRun per_item(1), batched(8);
  const auto markers_per_pkt = [](BatchRun& r) {
    return static_cast<double>(r.machine->cpu(2).stats().marker_count) /
           120.0;
  };
  EXPECT_LT(markers_per_pkt(batched), markers_per_pkt(per_item) / 2);
}

} // namespace
} // namespace fluxtrace
