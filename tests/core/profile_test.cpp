#include "fluxtrace/core/profile.hpp"

#include <gtest/gtest.h>

namespace fluxtrace::core {
namespace {

struct ProfileFixture : ::testing::Test {
  ProfileFixture() {
    fa = symtab.add("fa", 0x100);
    fb = symtab.add("fb", 0x100);
    fc = symtab.add("fc", 0x100);
  }

  PebsSample at(SymbolId fn) {
    PebsSample s;
    s.ip = symtab.ip_at(fn, 0.5);
    return s;
  }

  SymbolTable symtab;
  SymbolId fa, fb, fc;
};

TEST_F(ProfileFixture, SharesAndEstimatesFollowTnOverN) {
  // §V-B1: t(f) = T · n / N.
  std::vector<PebsSample> ss;
  for (int i = 0; i < 6; ++i) ss.push_back(at(fa));
  for (int i = 0; i < 3; ++i) ss.push_back(at(fb));
  for (int i = 0; i < 1; ++i) ss.push_back(at(fc));

  const Profile p = Profile::from_samples(symtab, ss, /*total_time=*/1000);
  EXPECT_EQ(p.total_samples(), 10u);
  EXPECT_EQ(p.est_time(fa), 600u);
  EXPECT_EQ(p.est_time(fb), 300u);
  EXPECT_EQ(p.est_time(fc), 100u);
  EXPECT_EQ(p.samples(fa), 6u);
}

TEST_F(ProfileFixture, EntriesSortedByDescendingTime) {
  std::vector<PebsSample> ss;
  ss.push_back(at(fc));
  for (int i = 0; i < 5; ++i) ss.push_back(at(fb));
  for (int i = 0; i < 2; ++i) ss.push_back(at(fa));
  const Profile p = Profile::from_samples(symtab, ss, 800);
  ASSERT_EQ(p.entries().size(), 3u);
  EXPECT_EQ(p.entries()[0].fn, fb);
  EXPECT_EQ(p.entries()[1].fn, fa);
  EXPECT_EQ(p.entries()[2].fn, fc);
}

TEST_F(ProfileFixture, UnresolvedIpsCounted) {
  std::vector<PebsSample> ss = {at(fa)};
  PebsSample bogus;
  bogus.ip = 1;
  ss.push_back(bogus);
  const Profile p = Profile::from_samples(symtab, ss, 100);
  EXPECT_EQ(p.unresolved(), 1u);
  EXPECT_EQ(p.total_samples(), 1u);
  EXPECT_EQ(p.est_time(fa), 100u); // share computed over resolved only
}

TEST_F(ProfileFixture, EmptyStream) {
  const Profile p = Profile::from_samples(symtab, {}, 100);
  EXPECT_TRUE(p.entries().empty());
  EXPECT_EQ(p.est_time(fa), 0u);
}

TEST_F(ProfileFixture, ProfileEstimatesShortFunctionsTracesCannot) {
  // A function that only ever collects one sample per item cannot be
  // estimated by a trace, but across many items the profile share still
  // converges (the §V-B1 contrast).
  std::vector<PebsSample> ss;
  for (int item = 0; item < 100; ++item) {
    ss.push_back(at(fa)); // one fa sample per "item"
    for (int i = 0; i < 9; ++i) ss.push_back(at(fb));
  }
  const Profile p = Profile::from_samples(symtab, ss, 10000);
  EXPECT_EQ(p.est_time(fa), 1000u); // 10% of the run
}

} // namespace
} // namespace fluxtrace::core
