// Error-injection and degenerate-input behaviour of the integration step:
// malformed marker streams, pathological timestamps, zero-length windows.
// A tracer's analysis path sees hostile data (truncated dumps, lost
// buffers), so none of these may crash or mis-attribute silently.
#include <gtest/gtest.h>

#include "fluxtrace/core/integrator.hpp"

namespace fluxtrace::core {
namespace {

struct EdgeFixture : ::testing::Test {
  EdgeFixture() { fn = symtab.add("fn", 0x100); }

  PebsSample sample(Tsc t, std::uint32_t core = 0) {
    PebsSample s;
    s.tsc = t;
    s.core = core;
    s.ip = symtab.ip_at(fn, 0.5);
    return s;
  }

  SymbolTable symtab;
  SymbolId fn;
};

TEST_F(EdgeFixture, ZeroLengthWindowStillCatchesCoincidentSample) {
  const std::vector<Marker> ms = {
      Marker{100, 1, 0, MarkerKind::Enter},
      Marker{100, 1, 0, MarkerKind::Leave}, // enter == leave
  };
  const std::vector<PebsSample> ss = {sample(100)};
  TraceIntegrator integ(symtab);
  const TraceTable t = integ.integrate(ms, ss);
  EXPECT_EQ(t.sample_count(1, fn), 1u);
  EXPECT_EQ(t.item_window_total(1), 0u);
  EXPECT_EQ(t.elapsed(1, fn), 0u) << "one sample is never estimable";
}

TEST_F(EdgeFixture, DuplicateEnterLeavePairsForSameItem) {
  // The same item re-enters a core later (e.g. request retried): both
  // windows are kept and the spans merge per (item, fn, core) bucket.
  const std::vector<Marker> ms = {
      Marker{100, 1, 0, MarkerKind::Enter},
      Marker{200, 1, 0, MarkerKind::Leave},
      Marker{300, 1, 0, MarkerKind::Enter},
      Marker{400, 1, 0, MarkerKind::Leave},
  };
  const std::vector<PebsSample> ss = {sample(150), sample(350)};
  TraceIntegrator integ(symtab);
  const TraceTable t = integ.integrate(ms, ss);
  EXPECT_EQ(t.sample_count(1, fn), 2u);
  EXPECT_EQ(t.item_window_total(1), 200u); // both windows summed
}

TEST_F(EdgeFixture, LeaveBeforeEnterTimestampsProduceNoWindow) {
  // A corrupt stream where the pair's timestamps are inverted after a
  // partial dump: pairing is positional per id, so the "window" would be
  // negative — windows_from_markers pairs Enter→Leave in arrival order,
  // and the inverted pair yields leave < enter; the integrator must not
  // attribute anything to it.
  const std::vector<Marker> ms = {
      Marker{500, 1, 0, MarkerKind::Enter},
      Marker{100, 1, 0, MarkerKind::Leave},
  };
  const std::vector<PebsSample> ss = {sample(300)};
  TraceIntegrator integ(symtab);
  const TraceTable t = integ.integrate(ms, ss);
  // Sorted internally by tsc: Leave(100) arrives first (dropped as
  // unmatched), Enter(500) never closes (dropped).
  EXPECT_EQ(t.windows().size(), 0u);
  EXPECT_EQ(t.unmatched_item(), 1u);
}

TEST_F(EdgeFixture, InterleavedItemsOnOneCoreSelfSwitchingStyle) {
  // a enters, a leaves, b enters, b leaves with zero gaps: boundary
  // samples at the exact switch go to the window whose edge they touch
  // (enter of the later window wins via innermost-cover).
  const std::vector<Marker> ms = {
      Marker{100, 1, 0, MarkerKind::Enter},
      Marker{200, 1, 0, MarkerKind::Leave},
      Marker{200, 2, 0, MarkerKind::Enter},
      Marker{300, 2, 0, MarkerKind::Leave},
  };
  const std::vector<PebsSample> ss = {sample(200)};
  TraceIntegrator integ(symtab);
  const TraceTable t = integ.integrate(ms, ss);
  EXPECT_EQ(t.sample_count(2, fn), 1u);
  EXPECT_EQ(t.sample_count(1, fn), 0u);
}

TEST_F(EdgeFixture, ManyIdenticalTimestampSamples) {
  const std::vector<Marker> ms = {
      Marker{100, 1, 0, MarkerKind::Enter},
      Marker{300, 1, 0, MarkerKind::Leave},
  };
  std::vector<PebsSample> ss;
  for (int i = 0; i < 50; ++i) ss.push_back(sample(200));
  TraceIntegrator integ(symtab);
  const TraceTable t = integ.integrate(ms, ss);
  EXPECT_EQ(t.sample_count(1, fn), 50u);
  EXPECT_EQ(t.elapsed(1, fn), 0u) << "zero span despite many samples";
}

TEST_F(EdgeFixture, SamplesOnlyNoMarkers) {
  std::vector<PebsSample> ss = {sample(100), sample(200)};
  TraceIntegrator integ(symtab);
  const TraceTable t = integ.integrate({}, ss);
  EXPECT_EQ(t.unmatched_item(), 2u);
  EXPECT_TRUE(t.items().empty());
}

TEST_F(EdgeFixture, MarkersOnlyNoSamples) {
  const std::vector<Marker> ms = {
      Marker{100, 1, 0, MarkerKind::Enter},
      Marker{200, 1, 0, MarkerKind::Leave},
  };
  TraceIntegrator integ(symtab);
  const TraceTable t = integ.integrate(ms, {});
  EXPECT_EQ(t.item_window_total(1), 100u)
      << "service-level window survives with zero samples";
  EXPECT_EQ(t.item_estimated_total(1), 0u);
}

TEST_F(EdgeFixture, HugeTimestampsDoNotOverflow) {
  const Tsc base = ~Tsc{0} - 10000;
  const std::vector<Marker> ms = {
      Marker{base, 1, 0, MarkerKind::Enter},
      Marker{base + 5000, 1, 0, MarkerKind::Leave},
  };
  const std::vector<PebsSample> ss = {sample(base + 100), sample(base + 4900)};
  TraceIntegrator integ(symtab);
  const TraceTable t = integ.integrate(ms, ss);
  EXPECT_EQ(t.elapsed(1, fn), 4800u);
}

} // namespace
} // namespace fluxtrace::core
