#include "fluxtrace/core/diagnosis.hpp"

#include <gtest/gtest.h>

namespace fluxtrace::core {
namespace {

struct DiagFixture : ::testing::Test {
  DiagFixture() {
    fast_fn = symtab.add("fast_fn", 0x100);
    slow_fn = symtab.add("slow_fn", 0x100);
  }

  /// Add an item whose window is `len` with samples in `fn` spanning
  /// most of it.
  void add_item(TraceTable& t, ItemId id, Tsc start, Tsc len, SymbolId fn) {
    t.add_window(ItemWindow{id, 0, start, start + len});
    t.add_sample(id, fn, 0, start + 5);
    t.add_sample(id, fn, 0, start + len - 5);
  }

  SymbolTable symtab;
  SymbolId fast_fn, slow_fn;
};

TEST_F(DiagFixture, FlagsTheOutlierAndNamesTheDominantFunction) {
  TraceTable t;
  Tsc at = 0;
  for (ItemId id = 1; id <= 30; ++id) {
    add_item(t, id, at, 1000 + (id % 4) * 10, fast_fn);
    at += 2000;
  }
  add_item(t, 31, at, 50000, slow_fn); // the fluctuation

  const CpuSpec spec;
  const DiagnosisReport rep = diagnose(t, spec);
  EXPECT_EQ(rep.items, 31u);
  ASSERT_EQ(rep.outliers.size(), 1u);
  EXPECT_EQ(rep.outliers[0].item, 31u);
  EXPECT_GT(rep.outliers[0].sigmas, 3.0);
  EXPECT_EQ(rep.outliers[0].dominant_fn, slow_fn);
  EXPECT_GT(rep.outliers[0].dominant_share, 0.9);

  const std::string text = rep.str(symtab);
  EXPECT_NE(text.find("item #31"), std::string::npos);
  EXPECT_NE(text.find("slow_fn"), std::string::npos);
}

TEST_F(DiagFixture, NoOutliersInSteadyTraffic) {
  TraceTable t;
  Tsc at = 0;
  for (ItemId id = 1; id <= 40; ++id) {
    add_item(t, id, at, 1000 + (id % 5) * 8, fast_fn);
    at += 2000;
  }
  const DiagnosisReport rep = diagnose(t, CpuSpec{});
  EXPECT_TRUE(rep.outliers.empty());
  EXPECT_NE(rep.str(symtab).find("no outliers"), std::string::npos);
}

TEST_F(DiagFixture, DistributionStatsAreRight) {
  TraceTable t;
  Tsc at = 0;
  // 10 items of exactly 3000 cycles = 1 us at 3 GHz.
  for (ItemId id = 1; id <= 10; ++id) {
    add_item(t, id, at, 3000, fast_fn);
    at += 5000;
  }
  const DiagnosisReport rep = diagnose(t, CpuSpec{});
  EXPECT_DOUBLE_EQ(rep.mean_us, 1.0);
  EXPECT_DOUBLE_EQ(rep.stddev_us, 0.0);
  EXPECT_DOUBLE_EQ(rep.p99_us, 1.0);
}

TEST_F(DiagFixture, MaxOutliersBounded) {
  TraceTable t;
  Tsc at = 0;
  for (ItemId id = 1; id <= 40; ++id) {
    add_item(t, id, at, 1000 + (id % 3), fast_fn);
    at += 2000;
  }
  // Many spikes, growing in size.
  for (ItemId id = 41; id <= 60; ++id) {
    add_item(t, id, at, 20000 + id * 1000, slow_fn);
    at += 40000;
  }
  DiagnosisConfig cfg;
  cfg.max_outliers = 5;
  const DiagnosisReport rep = diagnose(t, CpuSpec{}, cfg);
  EXPECT_EQ(rep.outliers.size(), 5u);
  // Most deviant first.
  for (std::size_t i = 1; i < rep.outliers.size(); ++i) {
    EXPECT_GE(rep.outliers[i - 1].sigmas, rep.outliers[i].sigmas);
  }
}

TEST_F(DiagFixture, EmptyTable) {
  const DiagnosisReport rep = diagnose(TraceTable{}, CpuSpec{});
  EXPECT_EQ(rep.items, 0u);
  EXPECT_TRUE(rep.outliers.empty());
}

} // namespace
} // namespace fluxtrace::core
