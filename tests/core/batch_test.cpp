#include "fluxtrace/core/batch.hpp"

#include <gtest/gtest.h>

namespace fluxtrace::core {
namespace {

struct BatchFixture : ::testing::Test {
  BatchFixture() {
    fa = symtab.add("fa", 0x100);
    fb = symtab.add("fb", 0x100);
  }

  PebsSample sample(Tsc t, SymbolId fn, std::uint32_t core = 0) {
    PebsSample s;
    s.tsc = t;
    s.core = core;
    s.ip = symtab.ip_at(fn, 0.5);
    return s;
  }

  SymbolTable symtab;
  SymbolId fa, fb;
};

TEST(BatchTable, RegistersAndResolvesBatches) {
  BatchTable t;
  const ItemId b1 = t.new_batch({1, 2, 3});
  const ItemId b2 = t.new_batch({4});
  EXPECT_TRUE(BatchTable::is_batch_id(b1));
  EXPECT_TRUE(BatchTable::is_batch_id(b2));
  EXPECT_NE(b1, b2);
  EXPECT_FALSE(BatchTable::is_batch_id(3));
  ASSERT_NE(t.members(b1), nullptr);
  EXPECT_EQ(t.members(b1)->size(), 3u);
  EXPECT_EQ(t.members(99), nullptr);
  EXPECT_EQ(t.size(), 2u);
}

TEST_F(BatchFixture, PooledDividesEvenly) {
  BatchTable bt;
  const ItemId batch = bt.new_batch({10, 11, 12});
  const std::vector<Marker> ms = {
      Marker{1000, batch, 0, MarkerKind::Enter},
      Marker{4000, batch, 0, MarkerKind::Leave},
  };
  // fa spans 2400 cycles within the batch window.
  const std::vector<PebsSample> ss = {
      sample(1200, fa), sample(2000, fa), sample(3600, fa)};

  BatchIntegrator integ(symtab, bt);
  const auto est = integ.integrate(ms, ss, BatchPolicy::Pooled);
  ASSERT_EQ(est.size(), 3u);
  for (const auto& e : est) {
    EXPECT_EQ(e.batch, batch);
    EXPECT_EQ(e.window_share, 1000u);
    EXPECT_EQ(e.elapsed(fa), 800u); // 2400 / 3
  }
  EXPECT_EQ(est[0].item, 10u);
  EXPECT_EQ(est[2].item, 12u);
}

TEST_F(BatchFixture, SubWindowsAttributeByTimeSlice) {
  BatchTable bt;
  const ItemId batch = bt.new_batch({20, 21});
  const std::vector<Marker> ms = {
      Marker{0, batch, 0, MarkerKind::Enter},
      Marker{1000, batch, 0, MarkerKind::Leave},
  };
  // Member 20 owns [0, 500), member 21 owns [500, 1000].
  const std::vector<PebsSample> ss = {
      sample(100, fa), sample(400, fa), // item 20's slice
      sample(600, fb), sample(900, fb), // item 21's slice
  };
  BatchIntegrator integ(symtab, bt);
  const auto est = integ.integrate(ms, ss, BatchPolicy::SubWindows);
  ASSERT_EQ(est.size(), 2u);
  EXPECT_EQ(est[0].item, 20u);
  EXPECT_EQ(est[0].elapsed(fa), 300u);
  EXPECT_EQ(est[0].elapsed(fb), 0u);
  EXPECT_EQ(est[1].item, 21u);
  EXPECT_EQ(est[1].elapsed(fb), 300u);
  EXPECT_EQ(est[1].elapsed(fa), 0u);
}

TEST_F(BatchFixture, NonBatchMarkersIgnored) {
  BatchTable bt;
  const std::vector<Marker> ms = {
      Marker{0, 5, 0, MarkerKind::Enter}, // plain item id, not a batch
      Marker{100, 5, 0, MarkerKind::Leave},
  };
  const std::vector<PebsSample> ss = {sample(10, fa), sample(90, fa)};
  BatchIntegrator integ(symtab, bt);
  EXPECT_TRUE(integ.integrate(ms, ss, BatchPolicy::Pooled).empty());
}

TEST_F(BatchFixture, SamplesOutsideWindowExcluded) {
  BatchTable bt;
  const ItemId batch = bt.new_batch({1});
  const std::vector<Marker> ms = {
      Marker{100, batch, 0, MarkerKind::Enter},
      Marker{200, batch, 0, MarkerKind::Leave},
  };
  const std::vector<PebsSample> ss = {
      sample(50, fa), sample(120, fa), sample(180, fa), sample(250, fa)};
  BatchIntegrator integ(symtab, bt);
  const auto est = integ.integrate(ms, ss, BatchPolicy::Pooled);
  ASSERT_EQ(est.size(), 1u);
  EXPECT_EQ(est[0].elapsed(fa), 60u); // only the two inside [100, 200]
}

TEST_F(BatchFixture, SingleMemberBatchEqualsPlainAttribution) {
  BatchTable bt;
  const ItemId batch = bt.new_batch({7});
  const std::vector<Marker> ms = {
      Marker{0, batch, 0, MarkerKind::Enter},
      Marker{1000, batch, 0, MarkerKind::Leave},
  };
  const std::vector<PebsSample> ss = {sample(100, fa), sample(900, fa)};
  BatchIntegrator integ(symtab, bt);
  for (const auto policy : {BatchPolicy::Pooled, BatchPolicy::SubWindows}) {
    const auto est = integ.integrate(ms, ss, policy);
    ASSERT_EQ(est.size(), 1u);
    EXPECT_EQ(est[0].item, 7u);
    EXPECT_EQ(est[0].elapsed(fa), 800u);
  }
}

TEST_F(BatchFixture, HeterogeneousBatchPooledBlursButConservesTotal) {
  // A heavy member next to light ones: pooled attribution divides the
  // heavy member's time across everyone, but the per-batch total is
  // conserved — the honest statement of the policy's accuracy.
  BatchTable bt;
  const ItemId batch = bt.new_batch({1, 2});
  const std::vector<Marker> ms = {
      Marker{0, batch, 0, MarkerKind::Enter},
      Marker{3000, batch, 0, MarkerKind::Leave},
  };
  // fa runs only in member 1's (first) half, for 1400 cycles.
  const std::vector<PebsSample> ss = {sample(100, fa), sample(1500, fa)};
  BatchIntegrator integ(symtab, bt);
  const auto est = integ.integrate(ms, ss, BatchPolicy::Pooled);
  ASSERT_EQ(est.size(), 2u);
  EXPECT_EQ(est[0].elapsed(fa) + est[1].elapsed(fa), 1400u);
  EXPECT_EQ(est[0].elapsed(fa), est[1].elapsed(fa)); // blurred evenly
}

} // namespace
} // namespace fluxtrace::core
