#include "fluxtrace/core/planner.hpp"

#include <gtest/gtest.h>

namespace fluxtrace::core {
namespace {

TEST(ResetValuePlanner, RecoversExactLinearRelation) {
  ResetValuePlanner p;
  // interval = 0.133 ns/event × R + 40 ns.
  for (const std::uint64_t r : {1000u, 2000u, 4000u, 8000u, 16000u}) {
    p.add(r, 0.133 * static_cast<double>(r) + 40.0);
  }
  const LinearFit f = p.fit();
  EXPECT_NEAR(f.a, 0.133, 1e-9);
  EXPECT_NEAR(f.b, 40.0, 1e-6);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
  EXPECT_NEAR(p.predict_interval_ns(12000), 0.133 * 12000 + 40.0, 1e-6);
}

TEST(ResetValuePlanner, FitWithNoiseKeepsHighR2) {
  ResetValuePlanner p;
  const double noise[] = {+3, -2, +1, -4, +2, 0};
  int i = 0;
  for (const std::uint64_t r : {1000u, 2000u, 4000u, 8000u, 16000u, 24000u}) {
    p.add(r, 0.1 * static_cast<double>(r) + 50.0 + noise[i++]);
  }
  const LinearFit f = p.fit();
  EXPECT_GT(f.r2, 0.999) << "§V-C: strong linearity with small deviations";
  EXPECT_NEAR(f.a, 0.1, 0.01);
}

TEST(ResetValuePlanner, TooFewPointsGiveNullFit) {
  ResetValuePlanner p;
  EXPECT_EQ(p.fit().a, 0.0);
  p.add(1000, 150.0);
  EXPECT_EQ(p.fit().a, 0.0);
}

TEST(ResetValuePlanner, IdenticalResetValuesGiveNullFit) {
  ResetValuePlanner p;
  p.add(1000, 150.0);
  p.add(1000, 160.0);
  EXPECT_EQ(p.fit().a, 0.0);
}

TEST(ResetValuePlanner, RecommendForOverheadInvertsTheModel) {
  ResetValuePlanner p;
  for (const std::uint64_t r : {1000u, 8000u, 16000u}) {
    p.add(r, 0.125 * static_cast<double>(r)); // no intercept
  }
  // overhead = 250 / (0.125 R) <= 0.02  ⇒  R >= 100000.
  const std::uint64_t r = p.recommend_for_overhead(0.02, 250.0);
  EXPECT_EQ(r, 100000u);
  EXPECT_LE(p.predict_overhead(r, 250.0), 0.02 + 1e-12);
  // A slightly smaller reset value must violate the budget.
  EXPECT_GT(p.predict_overhead(r - 1000, 250.0), 0.02);
}

TEST(ResetValuePlanner, RecommendForInterval) {
  ResetValuePlanner p;
  for (const std::uint64_t r : {1000u, 8000u, 16000u}) {
    p.add(r, 0.125 * static_cast<double>(r) + 30.0);
  }
  const std::uint64_t r = p.recommend_for_interval(1030.0); // 1 µs + b
  EXPECT_EQ(r, 8000u);
  // Unreachable target (below the intercept) → 0.
  EXPECT_EQ(p.recommend_for_interval(10.0), 0u);
}

TEST(ResetValuePlanner, DegenerateBudgetsHandled) {
  ResetValuePlanner p;
  p.add(1000, 100.0);
  p.add(2000, 200.0);
  EXPECT_EQ(p.recommend_for_overhead(0.0), 0u);
  EXPECT_GE(p.recommend_for_overhead(1.0), 1u); // any R works; clamps at 1
}

} // namespace
} // namespace fluxtrace::core
