// Robustness fuzz for the streaming pipeline: randomized windows and
// samples delivered in randomized drain batches must always agree with
// the offline integrator, item for item.
#include <gtest/gtest.h>

#include <algorithm>

#include "fluxtrace/core/integrator.hpp"
#include "fluxtrace/core/online.hpp"

namespace fluxtrace::core {
namespace {

class OnlineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OnlineFuzz, BatchedDeliveryMatchesOffline) {
  std::uint64_t state = GetParam();
  auto rnd = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 16;
  };

  SymbolTable symtab;
  std::vector<SymbolId> fns;
  for (int i = 0; i < 6; ++i) {
    fns.push_back(symtab.add("fn" + std::to_string(i), 0x200));
  }

  // Two cores, randomized disjoint windows and in-window samples.
  std::vector<Marker> markers;
  std::vector<PebsSample> samples_by_core[2];
  ItemId next_id = 1;
  for (int core = 0; core < 2; ++core) {
    Tsc t = 100;
    const int items = 25 + static_cast<int>(rnd() % 25);
    for (int i = 0; i < items; ++i) {
      const ItemId id = next_id++;
      const Tsc enter = t;
      const Tsc leave = enter + 30 + rnd() % 400;
      markers.push_back(
          Marker{enter, id, static_cast<std::uint32_t>(core),
                 MarkerKind::Enter});
      markers.push_back(
          Marker{leave, id, static_cast<std::uint32_t>(core),
                 MarkerKind::Leave});
      const int n = static_cast<int>(rnd() % 8);
      for (int s = 0; s < n; ++s) {
        PebsSample smp;
        smp.core = static_cast<std::uint32_t>(core);
        smp.tsc = enter + rnd() % (leave - enter + 1);
        smp.ip = symtab.ip_at(fns[rnd() % fns.size()],
                              static_cast<double>(rnd() % 97) / 97.0);
        samples_by_core[core].push_back(smp);
      }
      // Occasionally a stray sample between windows.
      if (rnd() % 4 == 0) {
        PebsSample stray;
        stray.core = static_cast<std::uint32_t>(core);
        stray.tsc = leave + 1 + rnd() % 10;
        stray.ip = symtab.ip_at(fns[0], 0.5);
        samples_by_core[core].push_back(stray);
      }
      t = leave + 12 + rnd() % 60;
    }
    std::sort(samples_by_core[core].begin(), samples_by_core[core].end(),
              [](const PebsSample& a, const PebsSample& b) {
                return a.tsc < b.tsc;
              });
  }

  // Online: markers in global time order; samples per core in random-size
  // batches, interleaved across cores (as independent drains would be).
  OnlineTracerConfig cfg;
  cfg.keep_results = 1u << 12;
  OnlineTracer ot(symtab, cfg);
  std::sort(markers.begin(), markers.end(),
            [](const Marker& a, const Marker& b) { return a.tsc < b.tsc; });
  for (const Marker& m : markers) ot.on_marker(m);
  std::size_t pos[2] = {0, 0};
  while (pos[0] < samples_by_core[0].size() ||
         pos[1] < samples_by_core[1].size()) {
    const int core = static_cast<int>(rnd() % 2);
    const std::size_t batch = 1 + rnd() % 16;
    for (std::size_t i = 0; i < batch && pos[core] < samples_by_core[core].size();
         ++i) {
      ot.on_sample(samples_by_core[core][pos[core]++]);
    }
  }
  ot.finish();

  // Offline oracle.
  std::vector<PebsSample> all;
  for (int core = 0; core < 2; ++core) {
    all.insert(all.end(), samples_by_core[core].begin(),
               samples_by_core[core].end());
  }
  TraceIntegrator integ(symtab);
  const TraceTable offline = integ.integrate(markers, all);

  EXPECT_EQ(ot.items_completed(), static_cast<std::uint64_t>(next_id - 1));
  for (const OnlineResult& r : ot.recent()) {
    EXPECT_EQ(r.window, offline.item_window_total(r.item)) << r.item;
    for (const SymbolId fn : fns) {
      EXPECT_EQ(r.elapsed(fn), offline.elapsed(r.item, fn))
          << "item " << r.item << " fn " << fn;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OnlineFuzz,
                         ::testing::Values(7, 21, 63, 189, 567, 1701));

} // namespace
} // namespace fluxtrace::core
