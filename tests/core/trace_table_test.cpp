#include "fluxtrace/core/trace_table.hpp"

#include <gtest/gtest.h>

namespace fluxtrace::core {
namespace {

TEST(BucketStat, ElapsedNeedsTwoSamples) {
  BucketStat b;
  EXPECT_FALSE(b.estimable());
  b.add(100);
  EXPECT_FALSE(b.estimable());
  EXPECT_EQ(b.elapsed(), 0u); // §V-B1: one sample ⇒ no estimate
  b.add(300);
  EXPECT_TRUE(b.estimable());
  EXPECT_EQ(b.elapsed(), 200u);
}

TEST(BucketStat, FirstLastTrackExtremes) {
  BucketStat b;
  b.add(200);
  b.add(100);
  b.add(350);
  EXPECT_EQ(b.first, 100u);
  EXPECT_EQ(b.last, 350u);
  EXPECT_EQ(b.samples, 3u);
  EXPECT_EQ(b.elapsed(), 250u);
}

TEST(TraceTable, ElapsedPerItemAndFunction) {
  TraceTable t;
  t.add_sample(1, 10, 0, 100);
  t.add_sample(1, 10, 0, 180);
  t.add_sample(1, 20, 0, 200);
  t.add_sample(1, 20, 0, 260);
  t.add_sample(2, 10, 0, 500);
  t.add_sample(2, 10, 0, 510);
  EXPECT_EQ(t.elapsed(1, 10), 80u);
  EXPECT_EQ(t.elapsed(1, 20), 60u);
  EXPECT_EQ(t.elapsed(2, 10), 10u);
  EXPECT_EQ(t.elapsed(2, 20), 0u);
  EXPECT_EQ(t.elapsed(3, 10), 0u);
}

TEST(TraceTable, SampleCounts) {
  TraceTable t;
  t.add_sample(1, 10, 0, 100);
  t.add_sample(1, 10, 0, 110);
  t.add_sample(1, 10, 0, 120);
  EXPECT_EQ(t.sample_count(1, 10), 3u);
  EXPECT_EQ(t.sample_count(1, 11), 0u);
  EXPECT_EQ(t.total_samples(), 3u);
}

TEST(TraceTable, PerCoreSpansDoNotMergeAcrossCores) {
  // One item, same function id, on two cores whose TSC regions interleave:
  // the per-core spans (50 and 60) must be summed, not fused into one
  // 100..560 span.
  TraceTable t;
  t.add_sample(1, 10, /*core=*/0, 100);
  t.add_sample(1, 10, /*core=*/0, 150);
  t.add_sample(1, 10, /*core=*/1, 500);
  t.add_sample(1, 10, /*core=*/1, 560);
  EXPECT_EQ(t.elapsed(1, 10), 50u + 60u);
}

TEST(TraceTable, ItemsSortedFromSamplesAndWindows) {
  TraceTable t;
  t.add_sample(5, 10, 0, 100);
  t.add_sample(2, 10, 0, 200);
  t.add_window(ItemWindow{9, 0, 0, 10});
  const auto items = t.items();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0], 2u);
  EXPECT_EQ(items[1], 5u);
  EXPECT_EQ(items[2], 9u);
}

TEST(TraceTable, FunctionsForItem) {
  TraceTable t;
  t.add_sample(1, 30, 0, 100);
  t.add_sample(1, 10, 0, 110);
  t.add_sample(1, 10, 1, 120);
  const auto fns = t.functions(1);
  ASSERT_EQ(fns.size(), 2u);
  EXPECT_EQ(fns[0], 10u);
  EXPECT_EQ(fns[1], 30u);
  EXPECT_TRUE(t.functions(99).empty());
}

TEST(TraceTable, ItemTotals) {
  TraceTable t;
  t.add_sample(1, 10, 0, 100);
  t.add_sample(1, 10, 0, 150);
  t.add_sample(1, 20, 0, 160);
  t.add_sample(1, 20, 0, 200);
  EXPECT_EQ(t.item_estimated_total(1), 50u + 40u);

  t.add_window(ItemWindow{1, 0, 90, 210});
  t.add_window(ItemWindow{1, 1, 300, 320});
  EXPECT_EQ(t.item_window_total(1), 120u + 20u);
}

TEST(TraceTable, UnmatchedCounters) {
  TraceTable t;
  t.count_unmatched_item();
  t.count_unmatched_item();
  t.count_unmatched_symbol();
  EXPECT_EQ(t.unmatched_item(), 2u);
  EXPECT_EQ(t.unmatched_symbol(), 1u);
}

} // namespace
} // namespace fluxtrace::core
