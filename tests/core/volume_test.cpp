#include "fluxtrace/core/volume.hpp"

#include <gtest/gtest.h>

namespace fluxtrace::core {
namespace {

TEST(DataVolumeModel, MbpsAtInterval) {
  DataVolumeModel m;
  // One 96-byte record every 1 µs = 96 MB/s.
  EXPECT_NEAR(m.mbps_at_interval(1000.0), 96.0, 1e-9);
  // Twice the rate, twice the volume.
  EXPECT_NEAR(m.mbps_at_interval(500.0), 192.0, 1e-9);
  EXPECT_EQ(m.mbps_at_interval(0.0), 0.0);
}

TEST(DataVolumeModel, VolumeScalesInverselyWithReset) {
  // §IV-C3's table shape: the reported MB/s fall roughly as 1/R
  // (270 → 106 MB/s for 8K → 24K).
  DataVolumeModel m;
  const double at_8k = m.mbps_at_interval(1000.0);
  const double at_24k = m.mbps_at_interval(3000.0);
  EXPECT_NEAR(at_8k / at_24k, 3.0, 1e-9);
}

TEST(DataVolumeModel, MeasuredMbps) {
  DataVolumeModel m;
  CpuSpec spec; // 3 GHz
  // 1000 samples over 3e6 cycles (1 ms) → 96 kB / ms = 96 MB/s.
  EXPECT_NEAR(m.measured_mbps(1000, 3000000, spec), 96.0, 1e-9);
  EXPECT_EQ(m.measured_mbps(1000, 0, spec), 0.0);
}

TEST(DataVolumeModel, PerCpuAggregation) {
  DataVolumeModel m; // 16 cores
  EXPECT_NEAR(m.per_cpu_gbps(270.0), 4.32, 1e-9); // the paper's 4.3 GB/s
}

TEST(DataVolumeModel, MembwFractionUnderFourPercent) {
  // The paper's argument: 4.3 GB/s is < 4% of 127.8 GB/s.
  DataVolumeModel m;
  const double frac = m.membw_fraction(m.per_cpu_gbps(270.0));
  EXPECT_LT(frac, 0.04);
  EXPECT_GT(frac, 0.03);
}

} // namespace
} // namespace fluxtrace::core
