// core::SessionSupervisor: the capture-session state machine. These
// tests drive the supervisor with a synthetic clock and scripted sinks,
// so every transition — escalate under backlog, de-escalate after calm,
// stall detection, halt on dead sinks — is deterministic.
#include "fluxtrace/core/session.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "fluxtrace/io/chunked.hpp"

namespace fluxtrace::core {
namespace {

/// Always-accepting in-memory sink (the healthy disk).
struct CollectSink final : io::SpoolSink {
  std::string bytes;
  io::SinkResult write(const char* d, std::size_t n) override {
    bytes.append(d, n);
    return {io::SinkStatus::Ok, n};
  }
  bool sync() override { return true; }
  [[nodiscard]] std::string describe() const override { return "collect"; }
};

/// Always-failing sink with a switchable verdict.
struct BrokenSink final : io::SpoolSink {
  io::SinkStatus verdict = io::SinkStatus::Transient;
  io::SinkResult write(const char*, std::size_t) override {
    return {verdict, 0};
  }
  bool sync() override { return false; }
  [[nodiscard]] std::string describe() const override { return "broken"; }
};

Marker mk(MarkerKind kind, Tsc tsc, ItemId item, std::uint32_t core = 1) {
  Marker m;
  m.kind = kind;
  m.tsc = tsc;
  m.item = item;
  m.core = core;
  return m;
}

PebsSample smp(Tsc tsc, std::uint32_t core = 1) {
  PebsSample s;
  s.tsc = tsc;
  s.ip = 0x1000;
  s.core = core;
  return s;
}

struct Fixture {
  SymbolTable symtab;
  OnlineTracer tracer;
  std::unique_ptr<io::ResilientWriter> writer;
  CollectSink* sink = nullptr;

  explicit Fixture(OnlineTracerConfig ocfg = {},
                   io::ResilientWriterConfig wcfg = {})
      : tracer(symtab, ocfg) {
    auto s = std::make_unique<CollectSink>();
    sink = s.get();
    writer = std::make_unique<io::ResilientWriter>(wcfg, std::move(s));
  }
};

TEST(SessionSupervisor, EscalatesUnderBacklogAndRestoresAfterCalm) {
  OnlineTracerConfig ocfg;
  ocfg.shed_backlog = 8;
  Fixture fx(ocfg);

  std::vector<std::uint64_t> reprogrammed;
  AdaptiveResetConfig acfg;
  acfg.min_reset = 64;
  acfg.max_reset = 1u << 20;
  AdaptiveReset ar(acfg, 1000, CpuSpec{},
                   [&](std::uint64_t r) { reprogrammed.push_back(r); });

  SessionSupervisorConfig scfg;
  scfg.backlog_high = 8;
  scfg.backlog_low = 2;
  scfg.queue_high = 48;
  scfg.queue_low = 8;
  scfg.escalate_gap_ns = 100;
  scfg.calm_hold_ns = 1000;
  scfg.max_shed_steps = 3;
  SessionSupervisor sup(fx.tracer, *fx.writer, scfg, &ar);

  // Pile up closed-but-unfinalized items (samples lagging far behind
  // markers — the drain-falling-behind shape).
  std::uint64_t now = 0;
  for (ItemId i = 1; i <= 20; ++i) {
    now = i * 100;
    sup.on_marker(mk(MarkerKind::Enter, now, i), now);
    sup.on_marker(mk(MarkerKind::Leave, now + 50, i), now + 50);
    sup.tick(now + 60);
  }
  EXPECT_EQ(sup.shed_steps(), 3u); // capped at max_shed_steps
  EXPECT_EQ(ar.current_reset(), 8000u);
  EXPECT_EQ(sup.state(), SessionState::Shedding);

  // One late sample whose watermark finalizes everything: backlog clears.
  now = 10'000;
  sup.on_sample(smp(now), now);
  EXPECT_EQ(fx.tracer.max_backlog(), 0u);

  // Calm watchdog ticks restore R one step per calm_hold window —
  // bounded recovery, no operator action.
  for (int k = 0; k < 5; ++k) {
    now += scfg.calm_hold_ns + 1;
    sup.tick(now);
  }
  EXPECT_EQ(sup.shed_steps(), 0u);
  EXPECT_EQ(ar.current_reset(), 1000u);
  EXPECT_EQ(sup.state(), SessionState::Healthy);
  ASSERT_EQ(reprogrammed.size(), 6u);
  const std::vector<std::uint64_t> expect = {2000, 4000, 8000,
                                             4000, 2000, 1000};
  EXPECT_EQ(reprogrammed, expect);

  // Transitions walked through shedding and back.
  const auto report = sup.finish(now + 1);
  EXPECT_EQ(report.final_state, SessionState::Healthy);
  EXPECT_EQ(report.escalations, 3u);
  EXPECT_EQ(report.deescalations, 3u);
  EXPECT_TRUE(report.reconciled);
  bool saw_shedding = false;
  for (const auto& t : report.transitions) {
    saw_shedding |= t.to == SessionState::Shedding;
  }
  EXPECT_TRUE(saw_shedding);
}

TEST(SessionSupervisor, WatchdogFlagsStalledSinkViaDeadlineMiss) {
  io::ResilientWriterConfig wcfg;
  wcfg.records_per_chunk = 2;
  SymbolTable symtab;
  OnlineTracer tracer(symtab);
  auto broken = std::make_unique<BrokenSink>();
  io::ResilientWriter writer(wcfg, std::move(broken));

  AdaptiveReset ar({}, 1000, CpuSpec{}, nullptr);
  SessionSupervisorConfig scfg;
  scfg.stall_deadline_ns = 1000;
  scfg.escalate_gap_ns = 100;
  SessionSupervisor sup(tracer, writer, scfg, &ar);

  // Stage work the wedged sink will never take.
  std::vector<Marker> ms = {mk(MarkerKind::Enter, 1, 1),
                            mk(MarkerKind::Leave, 2, 1)};
  writer.add_markers(ms.data(), ms.size(), 0);

  std::uint64_t now = 0;
  for (int i = 0; i < 10; ++i) {
    now += 500;
    sup.tick(now);
  }
  EXPECT_GE(sup.stalls(), 1u);
  EXPECT_GT(sup.shed_steps(), 0u); // stall pressure sheds rate first
  EXPECT_TRUE(sup.state() == SessionState::Shedding ||
              sup.state() == SessionState::Backpressured);
}

TEST(SessionSupervisor, HaltsWhenEverySinkIsDead) {
  io::ResilientWriterConfig wcfg;
  wcfg.records_per_chunk = 2;
  SymbolTable symtab;
  OnlineTracer tracer(symtab);
  auto broken = std::make_unique<BrokenSink>();
  broken->verdict = io::SinkStatus::Fatal;
  io::ResilientWriter writer(wcfg, std::move(broken));
  SessionSupervisor sup(tracer, writer, {}, nullptr);

  std::vector<Marker> ms = {mk(MarkerKind::Enter, 1, 1),
                            mk(MarkerKind::Leave, 2, 1)};
  writer.add_markers(ms.data(), ms.size(), 0);
  sup.tick(100);
  EXPECT_EQ(sup.state(), SessionState::Halted);

  // Even a halted session's ledger adds up: everything is counted lost.
  const auto report = sup.finish(200);
  EXPECT_EQ(report.final_state, SessionState::Halted);
  EXPECT_TRUE(report.reconciled);
  EXPECT_EQ(report.writer.records_lost_sink, 2u);
  EXPECT_FALSE(report.writer.closed_clean);
}

TEST(SessionSupervisor, AnomalousItemsAreSpooledWithTheirMarkers) {
  OnlineTracerConfig ocfg;
  ocfg.detector = DetectorConfig{3.0, 8};
  io::ResilientWriterConfig wcfg;
  wcfg.records_per_chunk = 2;
  Fixture fx(ocfg, wcfg);
  SessionSupervisor sup(fx.tracer, *fx.writer, {}, nullptr);

  // A stable-but-not-constant window population (the detector needs
  // sd > 0 to flag), then one enormous outlier.
  std::uint64_t now = 0;
  for (ItemId i = 1; i <= 20; ++i) {
    now = i * 1000;
    const Tsc width = 50 + i % 5;
    sup.on_marker(mk(MarkerKind::Enter, now, i), now);
    sup.on_marker(mk(MarkerKind::Leave, now + width, i), now + width);
  }
  const ItemId outlier = 21;
  now = 21'000;
  sup.on_marker(mk(MarkerKind::Enter, now, outlier), now);
  sup.on_marker(mk(MarkerKind::Leave, now + 5000, outlier), now + 5000);
  // Watermark far beyond: everything finalizes through the live path.
  sup.on_sample(smp(40'000), 40'000);
  sup.tick(41'000);

  const auto report = sup.finish(42'000);
  EXPECT_TRUE(report.reconciled);
  ASSERT_GE(report.writer.records_committed, 2u);

  // The spool is a clean v2 file holding the outlier's marker pair.
  const io::SalvageReport rep =
      io::salvage_trace(std::string_view(fx.sink->bytes));
  EXPECT_TRUE(rep.clean());
  bool enter_seen = false;
  bool leave_seen = false;
  for (const Marker& m : rep.data.markers) {
    if (m.item == outlier && m.kind == MarkerKind::Enter &&
        m.tsc == 21'000u) {
      enter_seen = true;
    }
    if (m.item == outlier && m.kind == MarkerKind::Leave &&
        m.tsc == 26'000u) {
      leave_seen = true;
    }
  }
  EXPECT_TRUE(enter_seen);
  EXPECT_TRUE(leave_seen);
}

TEST(SessionSupervisor, FollowerAlertBoostsFidelityThenDecays) {
  Fixture fx;
  std::vector<std::uint64_t> reprogrammed;
  AdaptiveResetConfig acfg;
  acfg.min_reset = 64;
  acfg.max_reset = 1u << 20;
  AdaptiveReset ar(acfg, 1000, CpuSpec{},
                   [&](std::uint64_t r) { reprogrammed.push_back(r); });

  SessionSupervisorConfig scfg;
  scfg.alert_boost_factor = 0.5;
  scfg.max_alert_boosts = 2;
  scfg.alert_hold_ns = 1000;
  SessionSupervisor sup(fx.tracer, *fx.writer, scfg, &ar);

  // A live follower flags items 7 and 3: R halves per alert, at most
  // max_alert_boosts deep, and the flagged range is recorded.
  sup.on_follower_alert({7, 0x400, 100}, 100);
  EXPECT_EQ(ar.current_reset(), 500u);
  EXPECT_EQ(sup.alert_boost_steps(), 1u);
  sup.on_follower_alert({3, 0x400, 200}, 200);
  EXPECT_EQ(ar.current_reset(), 250u);
  sup.on_follower_alert({5, 0x400, 300}, 300); // capped: no third step
  EXPECT_EQ(ar.current_reset(), 250u);
  EXPECT_EQ(sup.alert_boost_steps(), 2u);

  // Without fresh alerts the boosts decay one step per hold interval.
  sup.tick(300 + scfg.alert_hold_ns);
  EXPECT_EQ(ar.current_reset(), 500u);
  EXPECT_EQ(sup.alert_boost_steps(), 1u);
  sup.tick(300 + 2 * scfg.alert_hold_ns);
  EXPECT_EQ(ar.current_reset(), 1000u);
  EXPECT_EQ(sup.alert_boost_steps(), 0u);

  const auto report = sup.finish(10'000);
  EXPECT_EQ(report.alerts_received, 3u);
  EXPECT_EQ(report.alert_boosts, 2u);
  EXPECT_EQ(report.alert_restores, 2u);
  EXPECT_EQ(report.alert_item_lo, 3u);
  EXPECT_EQ(report.alert_item_hi, 7u);
  const std::string s = report.summary();
  EXPECT_NE(s.find("alerts: received=3"), std::string::npos) << s;
  EXPECT_NE(s.find("items=[3, 7]"), std::string::npos) << s;
}

TEST(SessionSupervisor, AlertsSuppressedUnderShedPressure) {
  OnlineTracerConfig ocfg;
  ocfg.shed_backlog = 8;
  Fixture fx(ocfg);
  AdaptiveResetConfig acfg;
  acfg.min_reset = 64;
  acfg.max_reset = 1u << 20;
  AdaptiveReset ar(acfg, 1000, CpuSpec{}, nullptr);

  SessionSupervisorConfig scfg;
  scfg.backlog_high = 8;
  scfg.backlog_low = 2;
  scfg.escalate_gap_ns = 100;
  SessionSupervisor sup(fx.tracer, *fx.writer, scfg, &ar);

  // Build up backlog until the session sheds.
  std::uint64_t now = 0;
  for (ItemId i = 1; i <= 20; ++i) {
    now = i * 100;
    sup.on_marker(mk(MarkerKind::Enter, now, i), now);
    sup.on_marker(mk(MarkerKind::Leave, now + 50, i), now + 50);
    sup.tick(now + 60);
  }
  ASSERT_EQ(sup.state(), SessionState::Shedding);
  const std::uint64_t shed_reset = ar.current_reset();

  // Pressure relief wins over fidelity: the alert must not touch R.
  sup.on_follower_alert({9, 0x400, now}, now);
  EXPECT_EQ(ar.current_reset(), shed_reset);
  EXPECT_EQ(sup.alert_boost_steps(), 0u);
  const auto report = sup.finish(now + 1);
  EXPECT_EQ(report.alerts_suppressed, 1u);
  EXPECT_EQ(report.alert_boosts, 0u);
}

TEST(SessionSupervisor, EscalationUnwindsAlertBoostsFirst) {
  OnlineTracerConfig ocfg;
  ocfg.shed_backlog = 8;
  Fixture fx(ocfg);
  std::vector<std::uint64_t> reprogrammed;
  AdaptiveResetConfig acfg;
  acfg.min_reset = 64;
  acfg.max_reset = 1u << 20;
  AdaptiveReset ar(acfg, 1000, CpuSpec{},
                   [&](std::uint64_t r) { reprogrammed.push_back(r); });

  SessionSupervisorConfig scfg;
  scfg.backlog_high = 8;
  scfg.backlog_low = 2;
  scfg.escalate_gap_ns = 100;
  scfg.alert_hold_ns = 1u << 30; // no decay in this test
  SessionSupervisor sup(fx.tracer, *fx.writer, scfg, &ar);

  // Healthy session takes one fidelity boost: R 1000 -> 500.
  sup.on_follower_alert({4, 0x400, 10}, 10);
  ASSERT_EQ(ar.current_reset(), 500u);

  // Backlog pressure arrives: escalation must first restore the boost
  // (back to 1000) and then shed from the *planned* R, never from the
  // boosted one.
  std::uint64_t now = 100;
  for (ItemId i = 1; i <= 20; ++i) {
    now += 100;
    sup.on_marker(mk(MarkerKind::Enter, now, i), now);
    sup.on_marker(mk(MarkerKind::Leave, now + 50, i), now + 50);
    sup.tick(now + 60);
  }
  EXPECT_EQ(sup.alert_boost_steps(), 0u);
  EXPECT_GT(sup.shed_steps(), 0u);
  EXPECT_GE(ar.current_reset(), 2000u); // shed applied on top of 1000
  const auto report = sup.finish(now + 1);
  EXPECT_EQ(report.alert_restores, 1u);
}

} // namespace
} // namespace fluxtrace::core
