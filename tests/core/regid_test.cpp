#include "fluxtrace/core/regid.hpp"

#include <gtest/gtest.h>

namespace fluxtrace::core {
namespace {

PebsSample sample(Tsc t, ItemId reg_id, std::uint32_t core = 0) {
  PebsSample s;
  s.tsc = t;
  s.core = core;
  s.regs.set(kItemIdReg, reg_id);
  return s;
}

TEST(RegisterIdMapper, GroupsByRegisterValue) {
  RegisterIdMapper m;
  const std::vector<PebsSample> ss = {
      sample(10, 1), sample(20, 2), sample(30, 1), sample(40, kNoItem)};
  const auto g = m.group(ss);
  ASSERT_EQ(g.size(), 2u);
  EXPECT_EQ(g.at(1).size(), 2u);
  EXPECT_EQ(g.at(2).size(), 1u);
  EXPECT_EQ(g.count(kNoItem), 0u);
}

TEST(RegisterIdMapper, CustomRegister) {
  RegisterIdMapper m(Reg::R12);
  PebsSample s;
  s.regs.set(Reg::R12, 5);
  s.regs.set(Reg::R13, 9);
  EXPECT_EQ(m.item_of(s), 5u);
}

TEST(RegisterIdMapper, ComparisonCountsDisagreements) {
  // Windows say item 1 occupies [100, 300] on core 0, but preemption put
  // item 2 on the core for part of that span — its samples carry 2 in R13.
  const std::vector<Marker> ms = {
      Marker{100, 1, 0, MarkerKind::Enter},
      Marker{300, 1, 0, MarkerKind::Leave},
  };
  const std::vector<PebsSample> ss = {
      sample(120, 1), // both agree
      sample(200, 2), // window says 1, register says 2 → disagreement
      sample(280, 2), // disagreement
      sample(400, 3), // outside window: register-only
  };
  RegisterIdMapper m;
  const auto c = m.compare_with_windows(ss, ms);
  EXPECT_EQ(c.total, 4u);
  EXPECT_EQ(c.by_register, 4u);
  EXPECT_EQ(c.by_window, 3u);
  EXPECT_EQ(c.disagree, 2u);
}

TEST(RegisterIdMapper, NoMarkersMeansNoWindowAttribution) {
  RegisterIdMapper m;
  const std::vector<PebsSample> ss = {sample(10, 1), sample(20, 2)};
  const auto c = m.compare_with_windows(ss, {});
  EXPECT_EQ(c.by_register, 2u);
  EXPECT_EQ(c.by_window, 0u);
  EXPECT_EQ(c.disagree, 0u);
}

} // namespace
} // namespace fluxtrace::core
