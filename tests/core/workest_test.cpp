#include "fluxtrace/core/workest.hpp"

#include <gtest/gtest.h>

namespace fluxtrace::core {
namespace {

TEST(WorkEstimator, CountTimesReset) {
  TraceTable t;
  for (int i = 0; i < 5; ++i) t.add_sample(1, 7, 0, 100 + i * 10);
  WorkEstimator est{8000, CpuSpec{}};
  EXPECT_EQ(est.events(t, 1, 7), 40000u);
  EXPECT_EQ(est.work_cycles(t, 1, 7), CpuSpec{}.uop_cycles(40000));
  EXPECT_EQ(est.events(t, 1, 8), 0u);
  EXPECT_EQ(est.events(t, 2, 7), 0u);
}

TEST(WorkEstimator, AgreesWithSpanUnderRunToCompletion) {
  // Uninterrupted execution at the base rate: the span estimate and the
  // count estimate converge (within one interval of quantization).
  CpuSpec spec;
  const std::uint64_t reset = 1000;
  const Tsc interval = spec.uop_cycles(reset);
  TraceTable t;
  for (int i = 1; i <= 50; ++i) {
    t.add_sample(1, 3, 0, static_cast<Tsc>(i) * interval);
  }
  WorkEstimator est{reset, spec};
  const Tsc span = t.elapsed(1, 3);
  const Tsc work = est.work_cycles(t, 1, 3);
  EXPECT_NEAR(static_cast<double>(span), static_cast<double>(work),
              static_cast<double>(interval) + 1);
}

} // namespace
} // namespace fluxtrace::core
