#include "fluxtrace/core/detector.hpp"

#include <gtest/gtest.h>

namespace fluxtrace::core {
namespace {

TEST(FluctuationDetector, NoFlagsDuringWarmup) {
  FluctuationDetector d(DetectorConfig{3.0, 8});
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(d.observe(i, 1, 100 + (i % 2))); // warming up
  }
  EXPECT_TRUE(d.anomalies().empty());
}

TEST(FluctuationDetector, FlagsOutlierAfterWarmup) {
  FluctuationDetector d(DetectorConfig{3.0, 8});
  for (int i = 0; i < 20; ++i) d.observe(i, 1, 100 + (i % 3));
  EXPECT_TRUE(d.observe(99, 1, 500));
  ASSERT_EQ(d.anomalies().size(), 1u);
  const Anomaly& a = d.anomalies()[0];
  EXPECT_EQ(a.item, 99u);
  EXPECT_EQ(a.fn, 1u);
  EXPECT_EQ(a.elapsed, 500u);
  EXPECT_GT(a.deviation(), 3.0);
}

TEST(FluctuationDetector, InlierNotFlagged) {
  FluctuationDetector d(DetectorConfig{3.0, 4});
  for (int i = 0; i < 20; ++i) d.observe(i, 1, 100 + (i % 10));
  EXPECT_FALSE(d.observe(100, 1, 104));
}

TEST(FluctuationDetector, StatsPerFunctionAreIndependent) {
  FluctuationDetector d;
  for (int i = 0; i < 10; ++i) {
    d.observe(i, 1, 100);
    d.observe(i, 2, 10000);
  }
  EXPECT_DOUBLE_EQ(d.mean(1), 100.0);
  EXPECT_DOUBLE_EQ(d.mean(2), 10000.0);
  EXPECT_EQ(d.count(1), 10u);
  EXPECT_EQ(d.count(99), 0u);
}

TEST(FluctuationDetector, WelfordMeanAndSigmaAreAccurate) {
  FluctuationDetector d;
  // 10, 20, ..., 100: mean 55, sample stddev ≈ 30.28.
  for (int i = 1; i <= 10; ++i) d.observe(i, 7, i * 10);
  EXPECT_NEAR(d.mean(7), 55.0, 1e-9);
  EXPECT_NEAR(d.sigma(7), 30.2765, 1e-3);
}

TEST(FluctuationDetector, ZeroVarianceNeverFlags) {
  FluctuationDetector d(DetectorConfig{3.0, 2});
  for (int i = 0; i < 10; ++i) d.observe(i, 1, 100);
  // Identical history: sigma is 0; even a big jump is not a k-sigma
  // event (it would divide by zero) — the caller sees it next time once
  // variance exists.
  EXPECT_FALSE(d.observe(11, 1, 100));
}

TEST(FluctuationDetector, ColdCacheScenario) {
  // The sample app's pattern: first item slow (cache cold), later items
  // with the same n fast. Feeding the fast ones first lets the detector
  // flag a subsequent slow occurrence online.
  FluctuationDetector d(DetectorConfig{3.0, 4});
  for (int i = 0; i < 12; ++i) d.observe(i, 3, 1000 + (i % 5));
  EXPECT_TRUE(d.observe(50, 3, 60000)) << "cold-cache item must be flagged";
}

} // namespace
} // namespace fluxtrace::core
