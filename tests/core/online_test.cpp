#include "fluxtrace/core/online.hpp"

#include <gtest/gtest.h>

#include "fluxtrace/core/integrator.hpp"

namespace fluxtrace::core {
namespace {

struct OnlineFixture : ::testing::Test {
  OnlineFixture() {
    fa = symtab.add("fa", 0x100);
    fb = symtab.add("fb", 0x100);
  }

  Marker enter(Tsc t, ItemId id, std::uint32_t core = 0) {
    return Marker{t, id, core, MarkerKind::Enter};
  }
  Marker leave(Tsc t, ItemId id, std::uint32_t core = 0) {
    return Marker{t, id, core, MarkerKind::Leave};
  }
  PebsSample sample(Tsc t, SymbolId fn, std::uint32_t core = 0) {
    PebsSample s;
    s.tsc = t;
    s.core = core;
    s.ip = symtab.ip_at(fn, 0.5);
    return s;
  }

  SymbolTable symtab;
  SymbolId fa, fb;
};

TEST_F(OnlineFixture, FinalizesOnWatermark) {
  OnlineTracer ot(symtab);
  ot.on_marker(enter(100, 1));
  ot.on_marker(leave(200, 1));
  ot.on_sample(sample(120, fa));
  ot.on_sample(sample(180, fa));
  EXPECT_EQ(ot.items_completed(), 0u) << "cannot finalize before proof";
  ot.on_sample(sample(250, fa)); // watermark passes item 1's leave
  EXPECT_EQ(ot.items_completed(), 1u);
  ASSERT_EQ(ot.recent().size(), 1u);
  const OnlineResult& r = ot.recent().front();
  EXPECT_EQ(r.item, 1u);
  EXPECT_EQ(r.window, 100u);
  EXPECT_EQ(r.elapsed(fa), 60u);
}

TEST_F(OnlineFixture, FinishFlushesPending) {
  OnlineTracer ot(symtab);
  ot.on_marker(enter(100, 1));
  ot.on_marker(leave(200, 1));
  ot.on_sample(sample(150, fa));
  ot.finish();
  EXPECT_EQ(ot.items_completed(), 1u);
}

TEST_F(OnlineFixture, DelayedBatchesStillAttributeCorrectly) {
  // Samples arrive long after the markers (buffer drain), but in time
  // order — the real system's arrival pattern.
  OnlineTracer ot(symtab);
  for (ItemId id = 1; id <= 5; ++id) {
    ot.on_marker(enter(id * 1000, id));
    ot.on_marker(leave(id * 1000 + 500, id));
  }
  for (ItemId id = 1; id <= 5; ++id) {
    ot.on_sample(sample(id * 1000 + 100, fa));
    ot.on_sample(sample(id * 1000 + 400, fa));
  }
  ot.finish();
  EXPECT_EQ(ot.items_completed(), 5u);
  EXPECT_EQ(ot.samples_unmatched(), 0u);
  for (const OnlineResult& r : ot.recent()) {
    EXPECT_EQ(r.elapsed(fa), 300u) << "item " << r.item;
  }
}

TEST_F(OnlineFixture, MatchesOfflineIntegrator) {
  // Property: the streaming pipeline must agree with the offline
  // TraceIntegrator on a randomized stream.
  std::uint64_t state = 99;
  auto rnd = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 16;
  };
  std::vector<Marker> markers;
  std::vector<PebsSample> samples;
  Tsc t = 0;
  for (ItemId id = 1; id <= 40; ++id) {
    t += 20 + rnd() % 50;
    const Tsc e = t;
    t += 50 + rnd() % 200;
    const Tsc l = t;
    markers.push_back(enter(e, id));
    markers.push_back(leave(l, id));
    const int n = 2 + static_cast<int>(rnd() % 6);
    for (int i = 0; i < n; ++i) {
      samples.push_back(
          sample(e + 1 + rnd() % (l - e), rnd() % 2 == 0 ? fa : fb));
    }
  }
  std::sort(samples.begin(), samples.end(),
            [](const PebsSample& a, const PebsSample& b) {
              return a.tsc < b.tsc;
            });

  OnlineTracerConfig cfg;
  cfg.keep_results = 100;
  OnlineTracer ot(symtab, cfg);
  for (const Marker& m : markers) ot.on_marker(m);
  for (const PebsSample& s : samples) ot.on_sample(s);
  ot.finish();

  TraceIntegrator integ(symtab);
  const TraceTable offline = integ.integrate(markers, samples);

  EXPECT_EQ(ot.items_completed(), 40u);
  for (const OnlineResult& r : ot.recent()) {
    EXPECT_EQ(r.elapsed(fa), offline.elapsed(r.item, fa)) << r.item;
    EXPECT_EQ(r.elapsed(fb), offline.elapsed(r.item, fb)) << r.item;
    EXPECT_EQ(r.window, offline.item_window_total(r.item));
  }
}

TEST_F(OnlineFixture, AnomalyTriggersDumpWithRawSamples) {
  OnlineTracerConfig cfg;
  cfg.detector = DetectorConfig{3.0, 4};
  OnlineTracer ot(symtab, cfg);

  std::vector<std::pair<ItemId, std::size_t>> dumped;
  ot.set_dump_callback([&](const OnlineResult& r, const SampleVec& raw) {
    dumped.emplace_back(r.item, raw.size());
  });

  // 20 ordinary items (with natural jitter, so sigma > 0), then one with
  // a 10x window and fa span.
  Tsc t = 0;
  for (ItemId id = 1; id <= 21; ++id) {
    const Tsc len = id == 21 ? 5000u : 500u + (id % 5) * 8u;
    ot.on_marker(enter(t, id));
    ot.on_sample(sample(t + 10, fa));
    ot.on_sample(sample(t + len - 10, fa));
    ot.on_marker(leave(t + len, id));
    t += len + 100;
  }
  ot.finish();

  ASSERT_EQ(dumped.size(), 1u);
  EXPECT_EQ(dumped[0].first, 21u);
  EXPECT_EQ(dumped[0].second, 2u); // its two raw samples
  EXPECT_EQ(ot.dumps(), 1u);
  EXPECT_EQ(ot.bytes_dumped(), 2 * kPebsRecordBytes);
  EXPECT_EQ(ot.bytes_seen(), 42 * kPebsRecordBytes);
}

TEST_F(OnlineFixture, UnmatchedSamplesCounted) {
  OnlineTracer ot(symtab);
  ot.on_marker(enter(100, 1));
  ot.on_marker(leave(200, 1));
  ot.on_sample(sample(50, fa));  // before any window
  ot.on_sample(sample(250, fa)); // between windows (finalizes item 1)
  ot.finish();
  EXPECT_EQ(ot.samples_unmatched(), 2u);
  EXPECT_EQ(ot.items_completed(), 1u);
}

TEST_F(OnlineFixture, MalformedMarkersDropped) {
  OnlineTracer ot(symtab);
  ot.on_marker(leave(50, 9));   // Leave without Enter
  ot.on_marker(enter(100, 1));  // shadowed by the next Enter
  ot.on_marker(enter(150, 2));
  ot.on_marker(leave(250, 2));
  ot.on_marker(enter(300, 3));  // never closed
  ot.finish();
  EXPECT_EQ(ot.items_completed(), 1u);
  EXPECT_EQ(ot.markers_dropped(), 3u);
}

TEST_F(OnlineFixture, CoresAreIndependent) {
  OnlineTracer ot(symtab);
  ot.on_marker(enter(100, 1, 0));
  ot.on_marker(enter(100, 2, 1));
  ot.on_marker(leave(300, 1, 0));
  ot.on_marker(leave(300, 2, 1));
  ot.on_sample(sample(150, fa, 0));
  ot.on_sample(sample(250, fa, 0));
  ot.on_sample(sample(150, fb, 1));
  ot.on_sample(sample(250, fb, 1));
  ot.finish();
  EXPECT_EQ(ot.items_completed(), 2u);
  for (const OnlineResult& r : ot.recent()) {
    if (r.item == 1) {
      EXPECT_EQ(r.elapsed(fa), 100u);
    }
    if (r.item == 2) {
      EXPECT_EQ(r.elapsed(fb), 100u);
    }
  }
}

TEST_F(OnlineFixture, KeepResultsBounded) {
  OnlineTracerConfig cfg;
  cfg.keep_results = 3;
  OnlineTracer ot(symtab, cfg);
  Tsc t = 0;
  for (ItemId id = 1; id <= 10; ++id) {
    ot.on_marker(enter(t, id));
    ot.on_marker(leave(t + 100, id));
    t += 200;
  }
  ot.finish();
  EXPECT_EQ(ot.items_completed(), 10u);
  ASSERT_EQ(ot.recent().size(), 3u);
  EXPECT_EQ(ot.recent().back().item, 10u);
}

} // namespace
} // namespace fluxtrace::core
