#include "fluxtrace/core/integrator.hpp"

#include <gtest/gtest.h>

namespace fluxtrace::core {
namespace {

struct IntegratorFixture : ::testing::Test {
  IntegratorFixture() {
    fa = symtab.add("fa", 0x100);
    fb = symtab.add("fb", 0x100);
  }

  Marker marker(std::uint32_t core, Tsc t, ItemId item, MarkerKind k) {
    return Marker{t, item, core, k};
  }
  PebsSample sample(std::uint32_t core, Tsc t, SymbolId fn,
                    double frac = 0.5) {
    PebsSample s;
    s.core = core;
    s.tsc = t;
    s.ip = symtab.ip_at(fn, frac);
    return s;
  }

  SymbolTable symtab;
  SymbolId fa, fb;
};

TEST_F(IntegratorFixture, WindowsFromBalancedMarkers) {
  const std::vector<Marker> ms = {
      marker(0, 100, 1, MarkerKind::Enter),
      marker(0, 200, 1, MarkerKind::Leave),
      marker(0, 300, 2, MarkerKind::Enter),
      marker(0, 450, 2, MarkerKind::Leave),
  };
  const auto ws = TraceIntegrator::windows_from_markers(ms);
  ASSERT_EQ(ws.size(), 2u);
  EXPECT_EQ(ws[0].item, 1u);
  EXPECT_EQ(ws[0].enter, 100u);
  EXPECT_EQ(ws[0].leave, 200u);
  EXPECT_EQ(ws[1].length(), 150u);
}

TEST_F(IntegratorFixture, MalformedMarkersAreDropped) {
  const std::vector<Marker> ms = {
      marker(0, 50, 7, MarkerKind::Leave),   // Leave without Enter
      marker(0, 100, 1, MarkerKind::Enter),  // Enter shadowed by next Enter
      marker(0, 150, 2, MarkerKind::Enter),
      marker(0, 200, 2, MarkerKind::Leave),
      marker(0, 300, 3, MarkerKind::Enter),  // Enter without Leave at end
  };
  const auto ws = TraceIntegrator::windows_from_markers(ms);
  ASSERT_EQ(ws.size(), 1u);
  EXPECT_EQ(ws[0].item, 2u);
}

TEST_F(IntegratorFixture, WindowsPerCoreAreIndependent) {
  const std::vector<Marker> ms = {
      marker(0, 100, 1, MarkerKind::Enter),
      marker(1, 120, 1, MarkerKind::Enter), // same item, other core
      marker(1, 180, 1, MarkerKind::Leave),
      marker(0, 200, 1, MarkerKind::Leave),
  };
  const auto ws = TraceIntegrator::windows_from_markers(ms);
  EXPECT_EQ(ws.size(), 2u);
}

TEST_F(IntegratorFixture, SamplesMapToWindowsByTimestamp) {
  // The paper's Fig. 6 walkthrough: t0 < ta < t1 ⇒ sample ta → item #0.
  const std::vector<Marker> ms = {
      marker(0, 100, 10, MarkerKind::Enter),
      marker(0, 200, 10, MarkerKind::Leave),
      marker(0, 250, 11, MarkerKind::Enter),
      marker(0, 400, 11, MarkerKind::Leave),
  };
  const std::vector<PebsSample> ss = {
      sample(0, 120, fa), sample(0, 190, fa),  // item 10, fa
      sample(0, 300, fa), sample(0, 390, fa),  // item 11, fa
      sample(0, 320, fb), sample(0, 360, fb),  // item 11, fb
      sample(0, 220, fa),                      // between windows: unmatched
  };
  TraceIntegrator integ(symtab);
  const TraceTable t = integ.integrate(ms, ss);
  EXPECT_EQ(t.elapsed(10, fa), 70u);
  EXPECT_EQ(t.elapsed(11, fa), 90u);
  EXPECT_EQ(t.elapsed(11, fb), 40u);
  EXPECT_EQ(t.unmatched_item(), 1u);
  EXPECT_EQ(t.total_samples(), 6u);
}

TEST_F(IntegratorFixture, WindowBoundariesAreInclusive) {
  const std::vector<Marker> ms = {
      marker(0, 100, 1, MarkerKind::Enter),
      marker(0, 200, 1, MarkerKind::Leave),
  };
  const std::vector<PebsSample> ss = {
      sample(0, 100, fa), // exactly at enter
      sample(0, 200, fa), // exactly at leave
      sample(0, 99, fa),  // just before: unmatched
      sample(0, 201, fa), // just after: unmatched
  };
  TraceIntegrator integ(symtab);
  const TraceTable t = integ.integrate(ms, ss);
  EXPECT_EQ(t.sample_count(1, fa), 2u);
  EXPECT_EQ(t.unmatched_item(), 2u);
}

TEST_F(IntegratorFixture, SamplesOnOtherCoresDoNotLeakIn) {
  const std::vector<Marker> ms = {
      marker(0, 100, 1, MarkerKind::Enter),
      marker(0, 200, 1, MarkerKind::Leave),
  };
  const std::vector<PebsSample> ss = {
      sample(1, 150, fa), // right time, wrong core
  };
  TraceIntegrator integ(symtab);
  const TraceTable t = integ.integrate(ms, ss);
  EXPECT_EQ(t.sample_count(1, fa), 0u);
  EXPECT_EQ(t.unmatched_item(), 1u);
}

TEST_F(IntegratorFixture, UnresolvableIpCountsAsUnmatchedSymbol) {
  const std::vector<Marker> ms = {
      marker(0, 100, 1, MarkerKind::Enter),
      marker(0, 200, 1, MarkerKind::Leave),
  };
  PebsSample s;
  s.core = 0;
  s.tsc = 150;
  s.ip = 0x10; // below the text base
  TraceIntegrator integ(symtab);
  const TraceTable t = integ.integrate(ms, {&s, 1});
  EXPECT_EQ(t.unmatched_symbol(), 1u);
  EXPECT_EQ(t.total_samples(), 0u);
}

TEST_F(IntegratorFixture, OutOfOrderInputIsSortedInternally) {
  std::vector<Marker> ms = {
      marker(0, 250, 2, MarkerKind::Enter),
      marker(0, 100, 1, MarkerKind::Enter),
      marker(0, 400, 2, MarkerKind::Leave),
      marker(0, 200, 1, MarkerKind::Leave),
  };
  const std::vector<PebsSample> ss = {
      sample(0, 300, fa), sample(0, 350, fa),
      sample(0, 150, fb), sample(0, 160, fb),
  };
  TraceIntegrator integ(symtab);
  const TraceTable t = integ.integrate(ms, ss);
  EXPECT_EQ(t.elapsed(2, fa), 50u);
  EXPECT_EQ(t.elapsed(1, fb), 10u);
}

TEST_F(IntegratorFixture, RegisterModeIgnoresWindows) {
  // §V-A: item ids come from R13; no markers needed at all.
  std::vector<PebsSample> ss;
  for (const Tsc t : {100u, 150u, 200u}) {
    PebsSample s = sample(0, t, fa);
    s.regs.set(kItemIdReg, 42);
    ss.push_back(s);
  }
  PebsSample idle = sample(0, 300, fa);
  idle.regs.set(kItemIdReg, kNoItem);
  ss.push_back(idle);

  TraceIntegrator integ(symtab, IntegratorConfig{true, kItemIdReg});
  const TraceTable t = integ.integrate({}, ss);
  EXPECT_EQ(t.elapsed(42, fa), 100u);
  EXPECT_EQ(t.unmatched_item(), 1u);
}

TEST_F(IntegratorFixture, EmptyInputsYieldEmptyTable) {
  TraceIntegrator integ(symtab);
  const TraceTable t = integ.integrate({}, {});
  EXPECT_TRUE(t.items().empty());
  EXPECT_EQ(t.total_samples(), 0u);
}

// Property: brute-force oracle over randomized windows and samples.
class IntegratorOracleTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntegratorOracleTest, MatchesBruteForceAttribution) {
  std::uint64_t state = GetParam();
  auto rnd = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 16;
  };
  SymbolTable symtab;
  std::vector<SymbolId> fns;
  for (int i = 0; i < 4; ++i) {
    fns.push_back(symtab.add("fn" + std::to_string(i), 0x100));
  }

  // Non-overlapping windows per core, random gaps.
  std::vector<Marker> ms;
  std::vector<ItemWindow> ws;
  for (std::uint32_t core = 0; core < 2; ++core) {
    Tsc t = 0;
    for (ItemId item = 1; item <= 20; ++item) {
      t += 10 + rnd() % 50;
      const Tsc enter = t;
      t += 20 + rnd() % 100;
      const Tsc leave = t;
      ms.push_back(Marker{enter, item * 100 + core, core, MarkerKind::Enter});
      ms.push_back(Marker{leave, item * 100 + core, core, MarkerKind::Leave});
      ws.push_back(ItemWindow{item * 100 + core, core, enter, leave});
    }
  }

  std::vector<PebsSample> ss;
  for (int i = 0; i < 600; ++i) {
    PebsSample s;
    s.core = rnd() % 2;
    s.tsc = rnd() % 3000;
    s.ip = symtab.ip_at(fns[rnd() % fns.size()],
                        static_cast<double>(rnd() % 100) / 100.0);
    ss.push_back(s);
  }

  TraceIntegrator integ(symtab);
  const TraceTable got = integ.integrate(ms, ss);

  // Brute force.
  TraceTable want;
  for (const PebsSample& s : ss) {
    const ItemWindow* hit = nullptr;
    for (const ItemWindow& w : ws) {
      if (w.core == s.core && s.tsc >= w.enter && s.tsc <= w.leave) {
        hit = &w;
        break;
      }
    }
    if (hit == nullptr) continue;
    want.add_sample(hit->item, *symtab.resolve(s.ip), s.core, s.tsc);
  }

  for (const ItemWindow& w : ws) {
    for (const SymbolId fn : fns) {
      EXPECT_EQ(got.elapsed(w.item, fn), want.elapsed(w.item, fn))
          << "item " << w.item << " fn " << fn;
      EXPECT_EQ(got.sample_count(w.item, fn), want.sample_count(w.item, fn));
    }
  }
  EXPECT_EQ(got.total_samples(), want.total_samples());
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntegratorOracleTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

} // namespace
} // namespace fluxtrace::core
