#include "fluxtrace/core/tracediff.hpp"

#include <gtest/gtest.h>

namespace fluxtrace::core {
namespace {

TraceTable make(std::initializer_list<std::tuple<ItemId, SymbolId, Tsc, Tsc>>
                    buckets) {
  TraceTable t;
  for (const auto& [item, fn, first, last] : buckets) {
    t.add_sample(item, fn, 0, first);
    t.add_sample(item, fn, 0, last);
  }
  return t;
}

TEST(TraceDiff, DetectsRegression) {
  // fn 1 doubled from A to B; fn 2 unchanged.
  const TraceTable a = make({{1, 1, 0, 100}, {2, 1, 0, 100},
                             {1, 2, 0, 50}, {2, 2, 0, 50}});
  const TraceTable b = make({{1, 1, 0, 200}, {2, 1, 0, 200},
                             {1, 2, 0, 50}, {2, 2, 0, 50}});
  const TraceDiff d = diff_traces(a, b);
  EXPECT_EQ(d.matched_items, 2u);
  ASSERT_EQ(d.functions.size(), 2u);
  // Largest delta first.
  EXPECT_EQ(d.functions[0].fn, 1u);
  EXPECT_DOUBLE_EQ(d.functions[0].mean_a, 100.0);
  EXPECT_DOUBLE_EQ(d.functions[0].mean_b, 200.0);
  EXPECT_DOUBLE_EQ(d.functions[0].ratio(), 2.0);
  const FnDelta* f2 = d.find(2);
  ASSERT_NE(f2, nullptr);
  EXPECT_DOUBLE_EQ(f2->delta(), 0.0);
}

TEST(TraceDiff, UnmatchedItemsCounted) {
  const TraceTable a = make({{1, 1, 0, 10}, {2, 1, 0, 10}, {3, 1, 0, 10}});
  const TraceTable b = make({{2, 1, 0, 10}, {9, 1, 0, 10}});
  const TraceDiff d = diff_traces(a, b);
  EXPECT_EQ(d.matched_items, 1u);
  EXPECT_EQ(d.only_in_a, 2u);
  EXPECT_EQ(d.only_in_b, 1u);
}

TEST(TraceDiff, FunctionMissingInOneRunShowsAsDrop) {
  const TraceTable a = make({{1, 5, 0, 80}});
  const TraceTable b = make({{1, 6, 0, 80}}); // fn 5 vanished, fn 6 appeared
  const TraceDiff d = diff_traces(a, b);
  const FnDelta* gone = d.find(5);
  ASSERT_NE(gone, nullptr);
  EXPECT_DOUBLE_EQ(gone->mean_b, 0.0);
  const FnDelta* born = d.find(6);
  ASSERT_NE(born, nullptr);
  EXPECT_DOUBLE_EQ(born->mean_a, 0.0);
  EXPECT_DOUBLE_EQ(born->ratio(), 0.0) << "ratio undefined when A is 0";
}

TEST(TraceDiff, EmptyIntersection) {
  const TraceTable a = make({{1, 1, 0, 10}});
  const TraceTable b = make({{2, 1, 0, 10}});
  const TraceDiff d = diff_traces(a, b);
  EXPECT_EQ(d.matched_items, 0u);
  EXPECT_TRUE(d.functions.empty());
}

} // namespace
} // namespace fluxtrace::core
