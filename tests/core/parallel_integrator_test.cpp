// ParallelIntegrator's whole contract is one sentence: whatever the
// thread count, the result is structurally identical (TraceTable
// operator==) to the sequential TraceIntegrator over the same input.
// The suite checks that across thread counts {1,2,4,8}, on clean and
// 20%-loss degraded traces, with and without register-carried item ids,
// including the one genuinely cross-core case: orphan samples on a core
// that never saw a marker, salvageable only because another core's
// markers knew the item.
#include "fluxtrace/core/parallel_integrator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace fluxtrace::core {
namespace {

struct Trace {
  std::vector<Marker> markers;
  SampleVec samples;
  std::vector<SampleLoss> losses;
};

// Multi-core trace shaped like the simulator's output: per-core monotone
// times, overlapping item windows across cores, R13 carrying the item
// id. `loss_pct` drops that share of samples into the loss stream
// (capture overflow), which is what degraded mode exists for.
Trace make_trace(std::size_t n_cores, std::size_t items_per_core,
                 unsigned loss_pct, std::uint64_t seed) {
  auto rnd = [state = seed]() mutable {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 17;
  };
  Trace t;
  ItemId next_item = 1;
  for (std::uint32_t core = 0; core < n_cores; ++core) {
    Tsc now = 1000 + core * 37;
    for (std::size_t k = 0; k < items_per_core; ++k) {
      const ItemId item = next_item++;
      const Tsc enter = now;
      const Tsc leave = enter + 4000 + rnd() % 20000;
      t.markers.push_back(Marker{enter, item, core, MarkerKind::Enter});
      // Every third item loses its Leave marker: degraded mode has to
      // synthesize the edge, sequentially and in every shard alike.
      if (k % 3 != 2) {
        t.markers.push_back(Marker{leave, item, core, MarkerKind::Leave});
      }
      for (Tsc st = enter + 100; st < leave; st += 900 + rnd() % 400) {
        if (loss_pct != 0 && rnd() % 100 < loss_pct) {
          t.losses.push_back(SampleLoss{core, st});
          continue;
        }
        PebsSample s;
        s.tsc = st;
        s.core = core;
        s.ip = 0x400000 + rnd() % 0x3000;
        s.regs.set(kItemIdReg, item);
        t.samples.push_back(s);
      }
      now = leave + 200 + rnd() % 800;
    }
  }
  return t;
}

SymbolTable three_functions() {
  SymbolTable symtab;
  symtab.add("fn_a", 0x1000);
  symtab.add("fn_b", 0x1000);
  symtab.add("fn_c", 0x1000);
  return symtab;
}

void expect_equivalent_at_all_thread_counts(const Trace& t,
                                            IntegratorConfig cfg) {
  const SymbolTable symtab = three_functions();
  const TraceTable seq =
      TraceIntegrator(symtab, cfg).integrate(t.markers, t.samples, t.losses);
  for (const unsigned n : {1u, 2u, 4u, 8u}) {
    const TraceTable par = ParallelIntegrator(symtab, cfg, n)
                               .integrate(t.markers, t.samples, t.losses);
    EXPECT_EQ(par, seq) << "threads=" << n;
  }
}

TEST(ParallelIntegrator, MatchesSequentialOnCleanTrace) {
  expect_equivalent_at_all_thread_counts(make_trace(8, 6, 0, 1), {});
}

TEST(ParallelIntegrator, MatchesSequentialWithRegisterIds) {
  IntegratorConfig cfg;
  cfg.use_register_ids = true;
  expect_equivalent_at_all_thread_counts(make_trace(8, 6, 0, 2), cfg);
}

TEST(ParallelIntegrator, MatchesSequentialOnDegradedTrace) {
  IntegratorConfig cfg;
  cfg.degraded = true;
  expect_equivalent_at_all_thread_counts(make_trace(8, 6, 20, 3), cfg);
}

TEST(ParallelIntegrator, MatchesSequentialDegradedWithRegisterIds) {
  IntegratorConfig cfg;
  cfg.degraded = true;
  cfg.use_register_ids = true;
  expect_equivalent_at_all_thread_counts(make_trace(8, 6, 20, 4), cfg);
}

TEST(ParallelIntegrator, MatchesSequentialAcrossSeeds) {
  IntegratorConfig cfg;
  cfg.degraded = true;
  for (const std::uint64_t seed : {7ull, 42ull, 1234ull}) {
    expect_equivalent_at_all_thread_counts(make_trace(4, 10, 20, seed), cfg);
  }
}

TEST(ParallelIntegrator, EmptyInput) {
  const SymbolTable symtab = three_functions();
  const TraceTable par = ParallelIntegrator(symtab, {}, 4).integrate({}, {});
  EXPECT_EQ(par, TraceIntegrator(symtab).integrate({}, {}));
  EXPECT_EQ(par.total_samples(), 0u);
}

TEST(ParallelIntegrator, SingleCoreDegeneratesToSequential) {
  expect_equivalent_at_all_thread_counts(make_trace(1, 12, 0, 5), {});
}

TEST(ParallelIntegrator, MoreThreadsThanCores) {
  const Trace t = make_trace(2, 4, 0, 6);
  const SymbolTable symtab = three_functions();
  const TraceTable seq =
      TraceIntegrator(symtab).integrate(t.markers, t.samples);
  EXPECT_EQ(ParallelIntegrator(symtab, {}, 64).integrate(t.markers, t.samples),
            seq);
}

TEST(ParallelIntegrator, CrossCoreOrphanSalvageMatchesSequential) {
  // The one coupling between shards: core 3 has samples but not a single
  // marker, and their R13 names an item only core 0's markers know. The
  // sequential pass salvages them (the item is in its global window set);
  // a naive per-core shard would see no windows on core 3 and count the
  // samples as unattributed. ParallelIntegrator must inject the global
  // item set so both agree.
  Trace t;
  t.markers.push_back(Marker{1000, 77, 0, MarkerKind::Enter});
  t.markers.push_back(Marker{9000, 77, 0, MarkerKind::Leave});
  for (Tsc st = 2000; st < 8000; st += 500) {
    PebsSample s;
    s.tsc = st;
    s.core = 3; // markerless core
    s.ip = 0x400100;
    s.regs.set(kItemIdReg, 77);
    t.samples.push_back(s);
  }
  IntegratorConfig cfg;
  cfg.degraded = true;
  const SymbolTable symtab = three_functions();
  const TraceTable seq =
      TraceIntegrator(symtab, cfg).integrate(t.markers, t.samples);
  ASSERT_GT(seq.quality(77).samples_salvaged, 0u)
      << "test premise: the sequential pass must salvage the orphans";
  for (const unsigned n : {2u, 4u}) {
    EXPECT_EQ(ParallelIntegrator(symtab, cfg, n)
                  .integrate(t.markers, t.samples),
              seq)
        << "threads=" << n;
  }
}

TEST(ParallelIntegrator, CallerProvidedSalvageItemsAreRespected) {
  // A caller can already pin salvage_items (e.g. replaying a known item
  // universe); the parallel run must not overwrite it.
  Trace t;
  t.markers.push_back(Marker{1000, 5, 0, MarkerKind::Enter});
  t.markers.push_back(Marker{4000, 5, 0, MarkerKind::Leave});
  PebsSample s;
  s.tsc = 2000;
  s.core = 1;
  s.ip = 0x400100;
  s.regs.set(kItemIdReg, 999); // not a marker item
  t.samples.push_back(s);

  const std::set<ItemId> pinned{999};
  IntegratorConfig cfg;
  cfg.degraded = true;
  cfg.salvage_items = &pinned;
  const SymbolTable symtab = three_functions();
  const TraceTable seq =
      TraceIntegrator(symtab, cfg).integrate(t.markers, t.samples);
  const TraceTable par =
      ParallelIntegrator(symtab, cfg, 4).integrate(t.markers, t.samples);
  EXPECT_EQ(par, seq);
  EXPECT_GT(seq.quality(999).samples_salvaged, 0u);
}

} // namespace
} // namespace fluxtrace::core
