// Degraded integration: a lossy capture pipeline must yield flagged
// estimates, never silently clean (or silently missing) ones.
#include <gtest/gtest.h>

#include "fluxtrace/apps/query_cache_app.hpp"
#include "fluxtrace/core/adaptive.hpp"
#include "fluxtrace/core/integrator.hpp"
#include "fluxtrace/core/online.hpp"
#include "fluxtrace/sim/fault.hpp"
#include "fluxtrace/sim/machine.hpp"

namespace fluxtrace::core {
namespace {

Marker marker(std::uint32_t core, Tsc t, ItemId item, MarkerKind k) {
  return Marker{t, item, core, k};
}

// --- window synthesis --------------------------------------------------

TEST(DegradedWindows, BalancedMarkersStayClean) {
  const std::vector<Marker> ms = {
      marker(0, 100, 1, MarkerKind::Enter),
      marker(0, 200, 1, MarkerKind::Leave),
  };
  const auto ws = TraceIntegrator::windows_from_markers_degraded(ms, {});
  ASSERT_EQ(ws.size(), 1u);
  EXPECT_FALSE(ws[0].synthesized());
  EXPECT_EQ(ws[0].enter, 100u);
  EXPECT_EQ(ws[0].leave, 200u);
}

TEST(DegradedWindows, LostLeaveClosedAtNextEnter) {
  const std::vector<Marker> ms = {
      marker(0, 100, 1, MarkerKind::Enter), // Leave for item 1 lost
      marker(0, 300, 2, MarkerKind::Enter),
      marker(0, 400, 2, MarkerKind::Leave),
  };
  const auto ws = TraceIntegrator::windows_from_markers_degraded(ms, {});
  ASSERT_EQ(ws.size(), 2u);
  EXPECT_EQ(ws[0].item, 1u);
  EXPECT_EQ(ws[0].leave, 300u); // bounded by the self-switching invariant
  EXPECT_EQ(ws[0].synth, ItemWindow::kSynthLeave);
  EXPECT_FALSE(ws[1].synthesized());
}

TEST(DegradedWindows, LostEnterOpensAtPreviousEdge) {
  const std::vector<Marker> ms = {
      marker(0, 100, 1, MarkerKind::Enter),
      marker(0, 200, 1, MarkerKind::Leave),
      marker(0, 400, 2, MarkerKind::Leave), // its Enter was lost
  };
  const auto ws = TraceIntegrator::windows_from_markers_degraded(ms, {});
  ASSERT_EQ(ws.size(), 2u);
  EXPECT_EQ(ws[1].item, 2u);
  EXPECT_EQ(ws[1].enter, 200u); // no earlier than the previous edge
  EXPECT_EQ(ws[1].leave, 400u);
  EXPECT_EQ(ws[1].synth, ItemWindow::kSynthEnter);
}

TEST(DegradedWindows, OpenAtEndClosedAtWatermark) {
  const std::vector<Marker> ms = {
      marker(0, 100, 1, MarkerKind::Enter), // stream ends here
  };
  const auto ws =
      TraceIntegrator::windows_from_markers_degraded(ms, {{0u, Tsc{900}}});
  ASSERT_EQ(ws.size(), 1u);
  EXPECT_EQ(ws[0].leave, 900u);
  EXPECT_EQ(ws[0].synth, ItemWindow::kSynthLeave);
}

TEST(DegradedWindows, DoubleLossEmitsBothTaggedWindows) {
  // Item 1's Leave AND item 2's Enter lost: both get the joint span.
  const std::vector<Marker> ms = {
      marker(0, 100, 1, MarkerKind::Enter),
      marker(0, 500, 2, MarkerKind::Leave),
  };
  const auto ws = TraceIntegrator::windows_from_markers_degraded(ms, {});
  ASSERT_EQ(ws.size(), 2u);
  EXPECT_EQ(ws[0].item, 1u);
  EXPECT_EQ(ws[0].synth, ItemWindow::kSynthLeave);
  EXPECT_EQ(ws[1].item, 2u);
  EXPECT_EQ(ws[1].synth, ItemWindow::kSynthEnter);
  EXPECT_EQ(ws[0].enter, ws[1].enter);
  EXPECT_EQ(ws[0].leave, ws[1].leave);
}

// --- integration with loss accounting ---------------------------------

struct DegradedFixture : ::testing::Test {
  DegradedFixture() { fa = symtab.add("fa", 0x100); }

  PebsSample sample(std::uint32_t core, Tsc t) {
    PebsSample s;
    s.core = core;
    s.tsc = t;
    s.ip = symtab.ip_at(fa, 0.5);
    return s;
  }

  SymbolTable symtab;
  SymbolId fa;
};

TEST_F(DegradedFixture, LossesDegradeTheCoveringItem) {
  const std::vector<Marker> ms = {
      marker(0, 100, 1, MarkerKind::Enter),
      marker(0, 200, 1, MarkerKind::Leave),
      marker(0, 300, 2, MarkerKind::Enter),
      marker(0, 400, 2, MarkerKind::Leave),
  };
  const std::vector<PebsSample> ss = {sample(0, 120), sample(0, 190),
                                      sample(0, 310), sample(0, 390)};
  const std::vector<SampleLoss> losses = {{0, 150}, {0, 160}, {0, 999}};

  IntegratorConfig cfg;
  cfg.degraded = true;
  TraceIntegrator integ(symtab, cfg);
  const TraceTable table = integ.integrate(ms, ss, losses);

  EXPECT_EQ(table.quality(1).samples_lost, 2u);
  EXPECT_EQ(table.quality(1).confidence, Confidence::Degraded);
  EXPECT_TRUE(table.quality(2).clean());
  EXPECT_EQ(table.unattributed_loss(), 1u); // tsc=999 covered by nothing
  EXPECT_EQ(table.degraded_items(), std::vector<ItemId>{1u});
  // Estimates still exist for both items.
  EXPECT_GT(table.elapsed(1, fa), 0u);
  EXPECT_GT(table.elapsed(2, fa), 0u);
}

TEST_F(DegradedFixture, SynthesizedWindowMeansReconstructed) {
  const std::vector<Marker> ms = {
      marker(0, 100, 1, MarkerKind::Enter), // Leave lost
      marker(0, 300, 2, MarkerKind::Enter),
      marker(0, 400, 2, MarkerKind::Leave),
  };
  IntegratorConfig cfg;
  cfg.degraded = true;
  TraceIntegrator integ(symtab, cfg);
  const TraceTable table = integ.integrate(ms, {}, {});
  EXPECT_EQ(table.quality(1).confidence, Confidence::Reconstructed);
  EXPECT_EQ(table.quality(1).markers_synthesized, 1u);
  EXPECT_EQ(table.windows_synthesized(), 1u);
  EXPECT_TRUE(table.quality(2).clean());
}

TEST_F(DegradedFixture, OrphanSamplesSalvagedThroughIdRegister) {
  const std::vector<Marker> ms = {
      marker(0, 100, 1, MarkerKind::Enter),
      marker(0, 200, 1, MarkerKind::Leave),
  };
  // A sample after the window (its covering markers were lost entirely)
  // whose R13 still names item 1 — and one naming an unknown item.
  PebsSample orphan = sample(0, 500);
  orphan.regs.set(kItemIdReg, 1);
  PebsSample stranger = sample(0, 600);
  stranger.regs.set(kItemIdReg, 77);
  const std::vector<PebsSample> ss = {sample(0, 150), orphan, stranger};

  IntegratorConfig cfg;
  cfg.degraded = true;
  TraceIntegrator integ(symtab, cfg);
  const TraceTable table = integ.integrate(ms, ss, {});
  EXPECT_EQ(table.quality(1).samples_salvaged, 1u);
  EXPECT_EQ(table.sample_count(1, fa), 2u); // in-window + salvaged
  EXPECT_EQ(table.unmatched_item(), 1u);    // the unknown item stays orphan

  // Strict mode leaves both orphans unmatched.
  TraceIntegrator strict(symtab);
  const TraceTable st = strict.integrate(ms, ss, {});
  EXPECT_EQ(st.sample_count(1, fa), 1u);
  EXPECT_EQ(st.unmatched_item(), 2u);
}

// --- the ISSUE acceptance scenario ------------------------------------

struct FaultedQueryRun {
  SymbolTable symtab;
  apps::QueryCacheApp app{symtab};
  sim::Machine machine{symtab};
  sim::FaultPlan plan;
  TraceTable table;

  explicit FaultedQueryRun(sim::FaultPlanConfig fcfg,
                           IntegratorConfig icfg = [] {
                             IntegratorConfig c;
                             c.degraded = true;
                             return c;
                           }())
      : plan(fcfg) {
    sim::PebsConfig pc;
    pc.reset = 8000;
    machine.cpu(1).enable_pebs(pc);
    plan.attach(machine);
    app.submit(apps::QueryCacheApp::paper_queries());
    app.attach(machine, /*rx_core=*/0, /*worker_core=*/1);
    EXPECT_TRUE(machine.run().all_done);
    machine.flush_samples();
    TraceIntegrator integ(symtab, icfg);
    table = integ.integrate(machine.marker_log().markers(),
                            machine.pebs_driver().samples(),
                            machine.pebs_driver().losses());
  }
};

TEST(DegradedAcceptance, TwentyPctSampleFivePctMarkerLoss) {
  sim::FaultPlanConfig fcfg;
  fcfg.seed = 42;
  fcfg.sample_loss_rate = 0.20;
  fcfg.marker_loss_rate = 0.05;
  FaultedQueryRun run(fcfg);

  EXPECT_GT(run.plan.samples_dropped(), 0u);

  // Every one of the 10 queries still gets an estimate.
  const auto items = run.table.items();
  ASSERT_EQ(items.size(), 10u);
  for (const ItemId item : items) {
    EXPECT_GT(run.table.item_window_total(item), 0u) << "item " << item;
  }

  // Items hit by loss are marked, never silently clean: a degraded item
  // exists, and every known loss is either attributed to an item's
  // quality record or counted as unattributed.
  EXPECT_FALSE(run.table.degraded_items().empty());
  std::uint64_t attributed = 0;
  for (const ItemId item : items) {
    attributed += run.table.quality(item).samples_lost;
  }
  EXPECT_EQ(attributed + run.table.unattributed_loss(),
            run.machine.pebs_driver().losses().size());

  // Any item whose quality says loss/synthesis is non-Clean.
  for (const ItemId item : items) {
    const ItemQuality& q = run.table.quality(item);
    if (q.samples_lost > 0 || q.markers_synthesized > 0) {
      EXPECT_FALSE(q.clean()) << "item " << item;
    }
  }
}

TEST(DegradedAcceptance, MarkerBurstStillYieldsAllItems) {
  // Wipe out every marker in a mid-run window; synthesis must still
  // produce a window for each query that survives in the stream.
  sim::FaultPlanConfig fcfg;
  fcfg.marker_loss_rate = 0.3;
  fcfg.seed = 7;
  FaultedQueryRun run(fcfg);
  EXPECT_GT(run.plan.markers_dropped(), 0u);
  EXPECT_FALSE(run.table.items().empty());
  EXPECT_GT(run.table.windows_synthesized(), 0u);
  for (const ItemId item : run.table.items()) {
    EXPECT_GT(run.table.item_window_total(item), 0u) << "item " << item;
  }
}

TEST(DegradedAcceptance, EstimationErrorGrowsButStaysFlagged) {
  FaultedQueryRun clean{sim::FaultPlanConfig{}};
  sim::FaultPlanConfig lossy;
  lossy.sample_loss_rate = 0.4;
  FaultedQueryRun degraded(lossy);

  // The cold query's estimate survives heavy loss to within 2x…
  const double est_clean =
      static_cast<double>(clean.table.item_estimated_total(1));
  const double est_lossy =
      static_cast<double>(degraded.table.item_estimated_total(1));
  EXPECT_GT(est_lossy, 0.0);
  EXPECT_GT(est_lossy, est_clean * 0.5);
  // …and the affected items say so. (A fault-free capture can still have
  // natural disarm-window losses, so compare against that baseline.)
  EXPECT_FALSE(degraded.table.degraded_items().empty());
  EXPECT_GE(degraded.table.degraded_items().size(),
            clean.table.degraded_items().size());
  std::uint64_t lost_clean = 0, lost_faulted = 0;
  for (const ItemId item : clean.table.items()) {
    lost_clean += clean.table.quality(item).samples_lost;
  }
  for (const ItemId item : degraded.table.items()) {
    lost_faulted += degraded.table.quality(item).samples_lost;
  }
  EXPECT_GT(lost_faulted, lost_clean);
}

// --- online degraded mode ---------------------------------------------

struct OnlineDegradedFixture : ::testing::Test {
  OnlineDegradedFixture() { fa = symtab.add("fa", 0x100); }

  PebsSample sample(Tsc t, std::uint32_t core = 0) {
    PebsSample s;
    s.core = core;
    s.tsc = t;
    s.ip = symtab.ip_at(fa, 0.5);
    return s;
  }

  SymbolTable symtab;
  SymbolId fa;
};

TEST_F(OnlineDegradedFixture, SynthesizesLostLeave) {
  OnlineTracerConfig cfg;
  cfg.synthesize_markers = true;
  OnlineTracer tracer(symtab, cfg);
  tracer.on_marker(marker(0, 100, 1, MarkerKind::Enter)); // Leave lost
  tracer.on_sample(sample(150));
  tracer.on_marker(marker(0, 300, 2, MarkerKind::Enter));
  tracer.on_marker(marker(0, 400, 2, MarkerKind::Leave));
  tracer.finish();

  EXPECT_EQ(tracer.items_completed(), 2u);
  EXPECT_EQ(tracer.markers_synthesized(), 1u);
  EXPECT_EQ(tracer.markers_dropped(), 0u);
  ASSERT_EQ(tracer.recent().size(), 2u);
  const OnlineResult& r1 = tracer.recent()[0];
  EXPECT_EQ(r1.item, 1u);
  EXPECT_EQ(r1.confidence, Confidence::Reconstructed);
  EXPECT_EQ(r1.markers_synthesized, 1u);
  EXPECT_EQ(r1.window, 200u); // closed at item 2's Enter
  EXPECT_FALSE(tracer.recent()[1].degraded());
}

TEST_F(OnlineDegradedFixture, OpenItemAtFinishClosesAtWatermark) {
  OnlineTracerConfig cfg;
  cfg.synthesize_markers = true;
  OnlineTracer tracer(symtab, cfg);
  tracer.on_marker(marker(0, 100, 1, MarkerKind::Enter));
  tracer.on_sample(sample(700));
  tracer.finish();
  ASSERT_EQ(tracer.recent().size(), 1u);
  EXPECT_EQ(tracer.recent()[0].window, 600u); // watermark 700 - enter 100
  EXPECT_TRUE(tracer.recent()[0].degraded());
}

TEST_F(OnlineDegradedFixture, LossEventsAttributedToPendingItems) {
  OnlineTracerConfig cfg;
  cfg.synthesize_markers = true;
  OnlineTracer tracer(symtab, cfg);
  tracer.on_marker(marker(0, 100, 1, MarkerKind::Enter));
  tracer.on_sample_lost(SampleLoss{0, 150});
  tracer.on_sample_lost(SampleLoss{3, 150}); // core with no pending item
  tracer.on_marker(marker(0, 200, 1, MarkerKind::Leave));
  tracer.finish();
  EXPECT_EQ(tracer.samples_lost(), 2u);
  EXPECT_EQ(tracer.losses_unattributed(), 1u);
  ASSERT_EQ(tracer.recent().size(), 1u);
  EXPECT_EQ(tracer.recent()[0].samples_lost, 1u);
  EXPECT_EQ(tracer.recent()[0].confidence, Confidence::Degraded);
}

TEST_F(OnlineDegradedFixture, BacklogTriggersShedOnceUntilDrained) {
  OnlineTracerConfig cfg;
  cfg.synthesize_markers = true;
  cfg.shed_backlog = 4;
  OnlineTracer tracer(symtab, cfg);
  std::vector<std::size_t> backlogs;
  tracer.set_shed_callback([&](std::uint32_t core, std::size_t backlog) {
    EXPECT_EQ(core, 0u);
    backlogs.push_back(backlog);
  });

  // Markers race ahead of samples: backlog builds to the threshold.
  Tsc t = 100;
  for (ItemId id = 1; id <= 6; ++id) {
    tracer.on_marker(marker(0, t, id, MarkerKind::Enter));
    tracer.on_marker(marker(0, t + 50, id, MarkerKind::Leave));
    t += 100;
  }
  ASSERT_EQ(backlogs.size(), 1u); // edge-triggered, fires exactly once
  EXPECT_GE(backlogs[0], 4u);
  EXPECT_EQ(tracer.shed_events(), 1u);

  // A late sample drains everything; the trigger re-arms.
  tracer.on_sample(sample(10000));
  EXPECT_LE(tracer.backlog(0), 1u);
  for (ItemId id = 7; id <= 12; ++id) {
    tracer.on_marker(marker(0, t, id, MarkerKind::Enter));
    tracer.on_marker(marker(0, t + 50, id, MarkerKind::Leave));
    t += 100;
  }
  EXPECT_EQ(tracer.shed_events(), 2u);
}

TEST_F(OnlineDegradedFixture, ShedCallbackWiredToAdaptiveResetRaisesR) {
  CpuSpec spec;
  AdaptiveResetConfig acfg;
  std::uint64_t programmed = 0;
  AdaptiveReset ar(acfg, 8000, spec,
                   [&](std::uint64_t r) { programmed = r; });

  OnlineTracerConfig cfg;
  cfg.synthesize_markers = true;
  cfg.shed_backlog = 2;
  OnlineTracer tracer(symtab, cfg);
  tracer.set_shed_callback(
      [&](std::uint32_t, std::size_t) { ar.nudge(2.0); });

  tracer.on_marker(marker(0, 100, 1, MarkerKind::Enter));
  tracer.on_marker(marker(0, 200, 1, MarkerKind::Leave));
  tracer.on_marker(marker(0, 300, 2, MarkerKind::Enter));
  EXPECT_EQ(ar.current_reset(), 16000u); // R doubled: load shed
  EXPECT_EQ(programmed, 16000u);
}

TEST(AdaptiveNudge, ClampsToConfiguredRange) {
  CpuSpec spec;
  AdaptiveResetConfig cfg;
  cfg.min_reset = 1000;
  cfg.max_reset = 20000;
  std::uint64_t calls = 0;
  AdaptiveReset ar(cfg, 8000, spec, [&](std::uint64_t) { ++calls; });

  ar.nudge(100.0);
  EXPECT_EQ(ar.current_reset(), 20000u);
  ar.nudge(100.0); // already at max: no change, no reprogram
  EXPECT_EQ(calls, 1u);
  ar.nudge(0.0001);
  EXPECT_EQ(ar.current_reset(), 1000u);
  EXPECT_EQ(ar.adjustments(), 2u);
}

} // namespace
} // namespace fluxtrace::core
