#include "fluxtrace/core/adaptive.hpp"

#include <gtest/gtest.h>

namespace fluxtrace::core {
namespace {

/// Feed `n` samples spaced `gap_ns` apart starting at `t0` (cycles).
Tsc feed(AdaptiveReset& ar, const CpuSpec& spec, Tsc t0, double gap_ns,
         std::uint64_t n) {
  Tsc t = t0;
  for (std::uint64_t i = 0; i < n; ++i) {
    PebsSample s;
    s.tsc = t;
    ar.on_sample(s);
    t += spec.cycles(gap_ns);
  }
  return t;
}

struct AdaptiveFixture : ::testing::Test {
  CpuSpec spec;
  std::uint64_t programmed = 0;
  std::uint64_t calls = 0;

  AdaptiveReset make(double target_ns, std::uint64_t initial,
                     std::uint64_t window = 64) {
    AdaptiveResetConfig cfg;
    cfg.target_interval_ns = target_ns;
    cfg.window = window;
    return AdaptiveReset(cfg, initial, spec, [this](std::uint64_t r) {
      programmed = r;
      ++calls;
    });
  }
};

TEST_F(AdaptiveFixture, NoAdjustmentWhenOnTarget) {
  AdaptiveReset ar = make(1000.0, 8000);
  feed(ar, spec, 0, 1000.0, 200);
  EXPECT_EQ(ar.adjustments(), 0u);
  EXPECT_EQ(ar.current_reset(), 8000u);
}

TEST_F(AdaptiveFixture, ScalesUpWhenSamplingTooFast) {
  // Achieved 250 ns vs target 1000 ns → R should grow ~4x.
  AdaptiveReset ar = make(1000.0, 2000);
  feed(ar, spec, 0, 250.0, 64);
  EXPECT_EQ(ar.adjustments(), 1u);
  EXPECT_NEAR(static_cast<double>(ar.current_reset()), 8000.0, 200.0);
  EXPECT_EQ(programmed, ar.current_reset());
}

TEST_F(AdaptiveFixture, ScalesDownWhenSamplingTooSlow) {
  AdaptiveReset ar = make(1000.0, 32000);
  feed(ar, spec, 0, 4000.0, 64);
  EXPECT_NEAR(static_cast<double>(ar.current_reset()), 8000.0, 200.0);
}

TEST_F(AdaptiveFixture, ConvergesAcrossAPhaseChange) {
  // Workload phase 1: intervals on target at R=8000. Phase 2: the uop
  // rate halves (intervals double); the controller must settle back.
  AdaptiveReset ar = make(1000.0, 8000);
  Tsc t = feed(ar, spec, 0, 1000.0, 128);
  EXPECT_EQ(ar.adjustments(), 0u);

  // Model: interval scales with R and with the (halved) uop rate:
  // gap_ns = R / 8000 * 2000ns during phase 2.
  for (int rounds = 0; rounds < 6; ++rounds) {
    const double gap =
        static_cast<double>(ar.current_reset()) / 8000.0 * 2000.0;
    t = feed(ar, spec, t, gap, 64);
  }
  // Settled near R = 4000 (half), achieving ~1000 ns again.
  EXPECT_NEAR(static_cast<double>(ar.current_reset()), 4000.0, 400.0);
  EXPECT_NEAR(ar.last_measured_interval_ns(), 1000.0, 150.0);
}

TEST_F(AdaptiveFixture, RespectsClampBounds) {
  AdaptiveResetConfig cfg;
  cfg.target_interval_ns = 1000.0;
  cfg.window = 32;
  cfg.min_reset = 1000;
  cfg.max_reset = 16000;
  AdaptiveReset ar(cfg, 8000, spec, {});
  // Absurdly slow sampling → wants enormous R → clamped.
  feed(ar, spec, 0, 10.0, 32);
  EXPECT_EQ(ar.current_reset(), 16000u);
  // Absurdly fast → clamped at the bottom.
  feed(ar, spec, 1u << 30, 100000.0, 32);
  EXPECT_EQ(ar.current_reset(), 1000u);
}

TEST_F(AdaptiveFixture, NudgeClampsAtBothBoundsWithoutPhantomReprograms) {
  AdaptiveResetConfig cfg;
  cfg.target_interval_ns = 1000.0;
  cfg.min_reset = 1000;
  cfg.max_reset = 16000;
  AdaptiveReset ar(cfg, 8000, spec, [this](std::uint64_t r) {
    programmed = r;
    ++calls;
  });

  ar.nudge(2.0); // 8000 → 16000: hits the ceiling exactly
  EXPECT_EQ(ar.current_reset(), 16000u);
  EXPECT_EQ(calls, 1u);

  ar.nudge(2.0); // would be 32000 → clamped back to 16000: a no-op
  EXPECT_EQ(ar.current_reset(), 16000u);
  EXPECT_EQ(calls, 1u); // no reprogram when the value didn't change
  EXPECT_EQ(ar.adjustments(), 1u);

  ar.nudge(1.0 / 64.0); // 250 → clamped up to the floor
  EXPECT_EQ(ar.current_reset(), 1000u);
  EXPECT_EQ(calls, 2u);
  ar.nudge(0.5); // 500 → still the floor: another no-op
  EXPECT_EQ(ar.current_reset(), 1000u);
  EXPECT_EQ(calls, 2u);
}

TEST_F(AdaptiveFixture, MidWindowNudgeIsNotUndoneByStaleIntervals) {
  // 32 too-fast samples accumulate mid-window, then a backlogged consumer
  // nudges R up. The stale 250 ns intervals must not feed a later windowed
  // adjustment — post-nudge sampling is on target, so R must hold.
  AdaptiveReset ar = make(1000.0, 2000);
  Tsc t = feed(ar, spec, 0, 250.0, 32);
  ar.nudge(2.0);
  EXPECT_EQ(ar.current_reset(), 4000u);
  EXPECT_EQ(ar.adjustments(), 1u);

  t = feed(ar, spec, t, 1000.0, 64); // a full on-target window post-nudge
  EXPECT_EQ(ar.current_reset(), 4000u) << "stale pre-nudge intervals "
                                          "leaked into the adjustment";
  EXPECT_EQ(ar.adjustments(), 1u);
}

TEST_F(AdaptiveFixture, DeadBandSuppressesJitter) {
  AdaptiveReset ar = make(1000.0, 8000);
  feed(ar, spec, 0, 1030.0, 64); // 3% off: inside the 5% dead-band
  EXPECT_EQ(ar.adjustments(), 0u);
  feed(ar, spec, 1u << 28, 1100.0, 64); // 10% off: corrected
  EXPECT_EQ(ar.adjustments(), 1u);
}

} // namespace
} // namespace fluxtrace::core
