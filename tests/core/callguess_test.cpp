#include "fluxtrace/core/callguess.hpp"

#include <gtest/gtest.h>

namespace fluxtrace::core {
namespace {

struct CallGuessFixture : ::testing::Test {
  CallGuessFixture() {
    f1 = symtab.add("f1", 0x100);
    f2 = symtab.add("f2", 0x100);
    util = symtab.add("util", 0x100);
  }

  PebsSample at(Tsc t, SymbolId fn, std::uint32_t core = 0) {
    PebsSample s;
    s.tsc = t;
    s.core = core;
    s.ip = symtab.ip_at(fn, 0.5);
    return s;
  }

  SymbolTable symtab;
  SymbolId f1, f2, util;
};

TEST_F(CallGuessFixture, AttributesToNearestPrecedingFunction) {
  const std::vector<PebsSample> ss = {
      at(10, f1), at(20, util), at(30, f2), at(40, util), at(50, util)};
  const CallerGuess g = guess_callers(symtab, ss, util);
  EXPECT_EQ(g.utility_samples, 3u);
  EXPECT_EQ(g.attributed_to(f1), 1u);
  EXPECT_EQ(g.attributed_to(f2), 2u);
  EXPECT_EQ(g.unattributed, 0u);
}

TEST_F(CallGuessFixture, LeadingUtilitySamplesUnattributed) {
  const std::vector<PebsSample> ss = {at(5, util), at(6, util), at(10, f1)};
  const CallerGuess g = guess_callers(symtab, ss, util);
  EXPECT_EQ(g.unattributed, 2u);
}

TEST_F(CallGuessFixture, CoresDoNotLeakContext) {
  const std::vector<PebsSample> ss = {
      at(10, f1, 0),
      at(20, util, 1), // core 1 has no prior context
  };
  const CallerGuess g = guess_callers(symtab, ss, util);
  EXPECT_EQ(g.unattributed, 1u);
  EXPECT_EQ(g.attributed_to(f1), 0u);
}

TEST_F(CallGuessFixture, SortsOutOfOrderInput) {
  const std::vector<PebsSample> ss = {at(40, util), at(10, f2), at(20, util),
                                      at(30, f1)};
  const CallerGuess g = guess_callers(symtab, ss, util);
  EXPECT_EQ(g.attributed_to(f2), 1u); // sample at 20
  EXPECT_EQ(g.attributed_to(f1), 1u); // sample at 40
}

TEST_F(CallGuessFixture, TheStaleNeighbourFailureMode) {
  // §V-B2's warning, in miniature: f2 calls util, but the last sampled
  // function before the util sample was f1 (the sampler skipped f2's
  // short body entirely) — the guess is wrong by construction.
  const std::vector<PebsSample> ss = {at(10, f1), at(50, util)};
  const CallerGuess g = guess_callers(symtab, ss, util);
  EXPECT_EQ(g.attributed_to(f1), 1u) << "heuristic can only guess f1";
}

} // namespace
} // namespace fluxtrace::core
