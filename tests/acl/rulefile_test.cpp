#include "fluxtrace/acl/rulefile.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "fluxtrace/acl/classifier.hpp"

namespace fluxtrace::acl {
namespace {

TEST(RuleFile, ParsesDpdkStyleLines) {
  const RuleSet rules = parse_rules(
      "# firewall rules\n"
      "@192.168.10.0/24 192.168.11.0/24 1:666 1:750 drop\n"
      "\n"
      "@0.0.0.0/0 0.0.0.0/0 0:65535 0:65535 permit  # default\n");
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0].src_addr, ipv4("192.168.10.0"));
  EXPECT_EQ(rules[0].src_len, 24);
  EXPECT_EQ(rules[0].sport_lo, 1);
  EXPECT_EQ(rules[0].sport_hi, 666);
  EXPECT_EQ(rules[0].dport_hi, 750);
  EXPECT_EQ(rules[0].action, Action::Drop);
  EXPECT_EQ(rules[1].action, Action::Permit);
  // Earlier line wins.
  EXPECT_GT(rules[0].priority, rules[1].priority);
}

TEST(RuleFile, EarlierLinesWinInClassification) {
  const RuleSet rules = parse_rules(
      "@10.0.0.0/8 0.0.0.0/0 0:65535 0:65535 drop\n"
      "@0.0.0.0/0 0.0.0.0/0 0:65535 0:65535 permit\n");
  const LinearScanClassifier clf(rules);
  const auto hit = clf.classify(FlowKey{ipv4("10.1.2.3"), 1, 2, 3});
  ASSERT_TRUE(hit.matched);
  EXPECT_EQ(hit.action, Action::Drop);
  const auto fallthrough = clf.classify(FlowKey{ipv4("11.1.2.3"), 1, 2, 3});
  ASSERT_TRUE(fallthrough.matched);
  EXPECT_EQ(fallthrough.action, Action::Permit);
}

TEST(RuleFile, ActionSynonyms) {
  const RuleSet rules = parse_rules(
      "@1.1.1.1/32 2.2.2.2/32 1:1 1:1 DENY\n"
      "@1.1.1.1/32 2.2.2.2/32 2:2 2:2 Accept\n"
      "@1.1.1.1/32 2.2.2.2/32 3:3 3:3 allow\n");
  EXPECT_EQ(rules[0].action, Action::Drop);
  EXPECT_EQ(rules[1].action, Action::Permit);
  EXPECT_EQ(rules[2].action, Action::Permit);
}

TEST(RuleFile, RejectsMalformedLines) {
  for (const char* bad : {
           "192.168.1.0/24 0.0.0.0/0 1:2 1:2 drop\n", // no @
           "@192.168.1.0 0.0.0.0/0 1:2 1:2 drop\n",   // no /len
           "@192.168.1.0/24 0.0.0.0/0 1 1:2 drop\n",  // bad port range
           "@192.168.1.0/24 0.0.0.0/0 5:2 1:2 drop\n",// inverted range
           "@192.168.1.0/24 0.0.0.0/0 1:2 1:2 frobnicate\n", // bad action
           "@192.168.1.0/24 0.0.0.0/0 1:2 1:2\n",     // missing action
           "@192.168.1.0/33 0.0.0.0/0 1:2 1:2 drop\n",// bad prefix len
           "@192.168.1.0/24 0.0.0.0/0 1:2 1:99999 drop\n", // port overflow
           "@1.1.1.1/32 2.2.2.2/32 1:1 1:1 drop extra\n",  // trailing token
       }) {
    EXPECT_THROW((void)parse_rules(std::string(bad)), RuleParseError) << bad;
  }
}

TEST(RuleFile, ErrorNamesTheLine) {
  try {
    (void)parse_rules("@1.1.1.1/32 2.2.2.2/32 1:1 1:1 drop\nbogus\n");
    FAIL() << "expected RuleParseError";
  } catch (const RuleParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(RuleFile, RoundTrip) {
  const RuleSet original = parse_rules(
      "@192.168.10.0/24 192.168.11.0/24 1:666 1:750 drop\n"
      "@10.0.0.0/8 172.16.0.0/12 80:80 1024:65535 permit\n"
      "@0.0.0.0/0 0.0.0.0/0 0:65535 0:65535 drop\n");
  std::ostringstream os;
  write_rules(os, original);
  const RuleSet back = parse_rules(os.str());
  ASSERT_EQ(back.size(), original.size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i].src_addr, original[i].src_addr) << i;
    EXPECT_EQ(back[i].src_len, original[i].src_len) << i;
    EXPECT_EQ(back[i].sport_lo, original[i].sport_lo) << i;
    EXPECT_EQ(back[i].dport_hi, original[i].dport_hi) << i;
    EXPECT_EQ(back[i].action, original[i].action) << i;
    EXPECT_EQ(back[i].priority, original[i].priority) << i;
  }
}

TEST(RuleFile, ParsedRulesDriveTheClassifier) {
  // A rule file equivalent of a mini Table III feeds the multi-trie path.
  std::ostringstream src;
  for (int sp = 1; sp <= 20; ++sp) {
    src << "@192.168.10.0/24 192.168.11.0/24 " << sp << ':' << sp
        << " 1:750 drop\n";
  }
  const RuleSet rules = parse_rules(src.str());
  const MultiTrieClassifier clf(rules, MultiTrieConfig{5, 0});
  EXPECT_EQ(clf.num_tries(), 4u);
  const auto r = clf.classify(
      FlowKey{ipv4("192.168.10.4"), ipv4("192.168.11.5"), 10, 300});
  ASSERT_TRUE(r.matched);
  EXPECT_EQ(r.action, Action::Drop);
}

} // namespace
} // namespace fluxtrace::acl
