#include "fluxtrace/acl/classifier.hpp"

#include <gtest/gtest.h>

#include "fluxtrace/acl/ruleset.hpp"
#include "fluxtrace/base/time.hpp"

namespace fluxtrace::acl {
namespace {

TEST(MultiTrieClassifier, DerivesTrieCountFromMaxTries) {
  const RuleSet rules = make_random_ruleset(100, 7);
  MultiTrieClassifier c(rules, MultiTrieConfig{0, 8});
  EXPECT_LE(c.num_tries(), 8u);
  EXPECT_EQ(c.num_rules(), 100u);
}

TEST(MultiTrieClassifier, RulesPerTrieTakesPrecedence) {
  const RuleSet rules = make_random_ruleset(100, 7);
  MultiTrieClassifier c(rules, MultiTrieConfig{10, 0});
  EXPECT_EQ(c.num_tries(), 10u);
}

TEST(MultiTrieClassifier, EmptyRuleSet) {
  MultiTrieClassifier c(RuleSet{}, MultiTrieConfig{});
  EXPECT_EQ(c.num_tries(), 0u);
  const auto r = c.classify(FlowKey{1, 2, 3, 4});
  EXPECT_FALSE(r.matched);
  EXPECT_EQ(r.nodes_visited, 0u);
}

TEST(MultiTrieClassifier, AgreesWithLinearScan) {
  const RuleSet rules = make_random_ruleset(200, 99);
  MultiTrieClassifier trie(rules, MultiTrieConfig{25, 0});
  LinearScanClassifier lin(rules);

  std::uint64_t state = 0xabcdef;
  auto rnd = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 16;
  };
  for (int i = 0; i < 500; ++i) {
    const FlowKey k{static_cast<std::uint32_t>(rnd()),
                    static_cast<std::uint32_t>(rnd()),
                    static_cast<std::uint16_t>(rnd()),
                    static_cast<std::uint16_t>(rnd())};
    const auto a = trie.classify(k);
    const auto b = lin.classify(k);
    ASSERT_EQ(a.matched, b.matched) << "i=" << i;
    if (a.matched) {
      EXPECT_EQ(a.priority, b.priority);
      EXPECT_EQ(a.action, b.action);
    }
  }
}

TEST(MultiTrieClassifier, VisitsScaleWithTrieCount) {
  const RuleSet rules = make_paper_ruleset();
  const PaperPackets pk;
  MultiTrieClassifier few(rules, MultiTrieConfig{0, kVanillaMaxTries});
  MultiTrieClassifier many(rules, MultiTrieConfig{kPaperRulesPerTrie, 0});
  const auto rf = few.classify(pk.type_a);
  const auto rm = many.classify(pk.type_a);
  EXPECT_EQ(rf.tries_walked, few.num_tries());
  EXPECT_EQ(rm.tries_walked, many.num_tries());
  EXPECT_GT(rm.nodes_visited, 10 * rf.nodes_visited);
}

// --- the Table III / Table IV workload ---------------------------------

struct PaperFixture : ::testing::Test {
  static void SetUpTestSuite() {
    rules = new RuleSet(make_paper_ruleset());
    clf = new MultiTrieClassifier(*rules,
                                  MultiTrieConfig{kPaperRulesPerTrie, 0});
  }
  static void TearDownTestSuite() {
    delete clf;
    delete rules;
    clf = nullptr;
    rules = nullptr;
  }
  static RuleSet* rules;
  static MultiTrieClassifier* clf;
};

RuleSet* PaperFixture::rules = nullptr;
MultiTrieClassifier* PaperFixture::clf = nullptr;

TEST_F(PaperFixture, HasExactly50000Rules) {
  // 666 × 750 + 500 (Table III).
  EXPECT_EQ(rules->size(), 50000u);
}

TEST_F(PaperFixture, BuildsTo247Tries) {
  EXPECT_EQ(clf->num_tries(), 247u); // ceil(50000 / 203)
}

TEST_F(PaperFixture, AllTestPacketTypesPassTheFirewall) {
  // Table IV packets match no Drop rule (their ports are 10001/10002,
  // outside every installed rule), so all three types are forwarded.
  const PaperPackets pk;
  for (const FlowKey& k : {pk.type_a, pk.type_b, pk.type_c}) {
    EXPECT_FALSE(clf->classify(k).matched);
  }
}

TEST_F(PaperFixture, InstalledPortPairsAreDropped) {
  const FlowKey in_rules{ipv4("192.168.10.4"), ipv4("192.168.11.5"), 50, 300};
  const auto r = clf->classify(in_rules);
  ASSERT_TRUE(r.matched);
  EXPECT_EQ(r.action, Action::Drop);

  const FlowKey tail{ipv4("192.168.10.4"), ipv4("192.168.11.5"), 67, 500};
  EXPECT_TRUE(clf->classify(tail).matched);
  const FlowKey past_tail{ipv4("192.168.10.4"), ipv4("192.168.11.5"), 67, 501};
  EXPECT_FALSE(clf->classify(past_tail).matched);
}

TEST_F(PaperFixture, TraversalDepthOrdersTheThreeTypes) {
  const PaperPackets pk;
  const auto a = clf->classify(pk.type_a);
  const auto b = clf->classify(pk.type_b);
  const auto c = clf->classify(pk.type_c);
  // Every trie contains the same src/24 and dst/24, so all tries walk
  // deep for type A and shallow for type C.
  EXPECT_EQ(a.nodes_visited, 9u * 247u);
  EXPECT_EQ(b.nodes_visited, 7u * 247u);
  EXPECT_EQ(c.nodes_visited, 3u * 247u);
}

TEST_F(PaperFixture, CostModelYieldsPaperLatencyBand) {
  // With the default cost model and the ~3 GHz CpuSpec, type C should
  // take ~6 µs and type A ~12–14 µs inside rte_acl_classify (Fig. 9).
  const PaperPackets pk;
  const AclCostModel cost;
  const CpuSpec spec; // 3 GHz, 0.4 cycles/uop
  const double us_a = spec.us(spec.uop_cycles(cost.uops(clf->classify(pk.type_a))));
  const double us_b = spec.us(spec.uop_cycles(cost.uops(clf->classify(pk.type_b))));
  const double us_c = spec.us(spec.uop_cycles(cost.uops(clf->classify(pk.type_c))));
  EXPECT_GT(us_a, 11.0);
  EXPECT_LT(us_a, 15.0);
  EXPECT_GT(us_c, 5.0);
  EXPECT_LT(us_c, 7.0);
  EXPECT_GT(us_b, us_c);
  EXPECT_LT(us_b, us_a);
  // The headline: >100% fluctuation between identical-looking packets.
  EXPECT_GT(us_a / us_c, 2.0);
}

TEST_F(PaperFixture, LinearScanOracleAgreesOnPaperPackets) {
  LinearScanClassifier lin(*rules);
  const PaperPackets pk;
  for (const FlowKey& k : {pk.type_a, pk.type_b, pk.type_c}) {
    EXPECT_EQ(clf->classify(k).matched, lin.classify(k).matched);
  }
  const FlowKey dropped{ipv4("192.168.10.1"), ipv4("192.168.11.1"), 5, 5};
  EXPECT_EQ(clf->classify(dropped).matched, lin.classify(dropped).matched);
  EXPECT_TRUE(lin.classify(dropped).matched);
}

TEST(LinearScanClassifier, PriorityTiebreak) {
  RuleSet rules;
  AclRule lo, hi;
  lo.priority = 1;
  lo.action = Action::Permit;
  hi.priority = 2;
  hi.action = Action::Drop;
  rules.push_back(lo);
  rules.push_back(hi);
  LinearScanClassifier c(std::move(rules));
  const auto r = c.classify(FlowKey{1, 1, 1, 1});
  ASSERT_TRUE(r.matched);
  EXPECT_EQ(r.priority, 2);
  EXPECT_EQ(r.action, Action::Drop);
}

} // namespace
} // namespace fluxtrace::acl
