#include "fluxtrace/acl/prefix.hpp"

#include <gtest/gtest.h>

#include "fluxtrace/base/flow.hpp"

namespace fluxtrace::acl {
namespace {

TEST(DecomposeRange, ExactValueIsOnePrefix) {
  const auto p = decompose_range(80, 80);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0].value, 80u);
  EXPECT_EQ(p[0].len, 16u);
}

TEST(DecomposeRange, FullRangeIsZeroPrefix) {
  const auto p = decompose_range(0, 0xffff);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0].value, 0u);
  EXPECT_EQ(p[0].len, 0u);
}

TEST(DecomposeRange, AlignedBlock) {
  const auto p = decompose_range(256, 511); // exactly 256..511 = 256/8
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0].value, 256u);
  EXPECT_EQ(p[0].len, 8u);
}

TEST(DecomposeRange, PaperDportRange) {
  // Table III uses destination-port ranges [1, 750] and [1, 500].
  for (const std::uint16_t hi : {750, 500}) {
    const auto ps = decompose_range(1, hi);
    // Coverage must be exact and disjoint.
    std::uint32_t covered = 0;
    std::uint32_t expect_next = 1;
    for (const Prefix16& p : ps) {
      EXPECT_EQ(p.lo(), expect_next);
      covered += static_cast<std::uint32_t>(p.hi()) - p.lo() + 1;
      expect_next = static_cast<std::uint32_t>(p.hi()) + 1;
    }
    EXPECT_EQ(covered, static_cast<std::uint32_t>(hi));
  }
}

struct RangeParam {
  std::uint16_t lo, hi;
};

class DecomposeRangeProperty : public ::testing::TestWithParam<RangeParam> {};

TEST_P(DecomposeRangeProperty, PrefixesTileTheRangeExactly) {
  const auto [lo, hi] = GetParam();
  const auto ps = decompose_range(lo, hi);
  ASSERT_FALSE(ps.empty());
  EXPECT_LE(ps.size(), 30u); // theoretical bound for 16-bit ranges
  std::uint32_t next = lo;
  for (const Prefix16& p : ps) {
    EXPECT_EQ(p.lo(), next) << "gap or overlap";
    // Alignment: value has its low (16-len) bits clear.
    if (p.len < 16) {
      EXPECT_EQ(p.value & ((1u << (16 - p.len)) - 1), 0u);
    }
    next = static_cast<std::uint32_t>(p.hi()) + 1;
  }
  EXPECT_EQ(next, static_cast<std::uint32_t>(hi) + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, DecomposeRangeProperty,
    ::testing::Values(RangeParam{0, 0}, RangeParam{0xffff, 0xffff},
                      RangeParam{1, 750}, RangeParam{1, 500},
                      RangeParam{1, 65534}, RangeParam{1000, 2000},
                      RangeParam{4095, 4097}, RangeParam{32767, 32769},
                      RangeParam{3, 3}, RangeParam{0, 1}));

TEST(PrefixBytes, ExactPortSplitsIntoTwoExactBytes) {
  const auto [hi, lo] = prefix_bytes(Prefix16{10001, 16});
  EXPECT_EQ(hi.lo, 10001 >> 8);
  EXPECT_EQ(hi.hi, 10001 >> 8);
  EXPECT_EQ(lo.lo, 10001 & 0xff);
  EXPECT_EQ(lo.hi, 10001 & 0xff);
}

TEST(PrefixBytes, ShortPrefixFreesLowByte) {
  // 0x1200/7 covers 0x1200..0x13ff: high byte in [0x12,0x13], low free.
  const auto [hi, lo] = prefix_bytes(Prefix16{0x1200, 7});
  EXPECT_EQ(hi.lo, 0x12);
  EXPECT_EQ(hi.hi, 0x13);
  EXPECT_EQ(lo.lo, 0x00);
  EXPECT_EQ(lo.hi, 0xff);
}

TEST(PrefixBytes, MidPrefixConstrainsLowByteRange) {
  // 0x1240/10 covers 0x1240..0x127f.
  const auto [hi, lo] = prefix_bytes(Prefix16{0x1240, 10});
  EXPECT_EQ(hi.lo, 0x12);
  EXPECT_EQ(hi.hi, 0x12);
  EXPECT_EQ(lo.lo, 0x40);
  EXPECT_EQ(lo.hi, 0x7f);
}

TEST(Ipv4PrefixBytes, Slash24) {
  const auto b = ipv4_prefix_bytes(ipv4("192.168.10.0"), 24);
  EXPECT_EQ(b[0].lo, 192);
  EXPECT_EQ(b[0].hi, 192);
  EXPECT_EQ(b[1].lo, 168);
  EXPECT_EQ(b[1].hi, 168);
  EXPECT_EQ(b[2].lo, 10);
  EXPECT_EQ(b[2].hi, 10);
  EXPECT_EQ(b[3].lo, 0);
  EXPECT_EQ(b[3].hi, 255);
}

TEST(Ipv4PrefixBytes, Slash20PartialByte) {
  // 10.0.16.0/20 → third byte in [16, 31].
  const auto b = ipv4_prefix_bytes(ipv4("10.0.16.0"), 20);
  EXPECT_EQ(b[1].lo, 0);
  EXPECT_EQ(b[1].hi, 0);
  EXPECT_EQ(b[2].lo, 16);
  EXPECT_EQ(b[2].hi, 31);
  EXPECT_EQ(b[3].lo, 0);
  EXPECT_EQ(b[3].hi, 255);
}

TEST(Ipv4PrefixBytes, Slash0MatchesEverything) {
  const auto b = ipv4_prefix_bytes(0, 0);
  for (const auto& br : b) {
    EXPECT_EQ(br.lo, 0);
    EXPECT_EQ(br.hi, 255);
  }
}

TEST(Ipv4PrefixBytes, Slash32IsExact) {
  const auto b = ipv4_prefix_bytes(ipv4("192.168.10.4"), 32);
  EXPECT_EQ(b[3].lo, 4);
  EXPECT_EQ(b[3].hi, 4);
}

} // namespace
} // namespace fluxtrace::acl
