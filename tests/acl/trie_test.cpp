#include "fluxtrace/acl/trie.hpp"

#include <gtest/gtest.h>

#include "fluxtrace/acl/classifier.hpp"
#include "fluxtrace/acl/ruleset.hpp"

namespace fluxtrace::acl {
namespace {

AclRule rule(const char* src, std::uint8_t slen, const char* dst,
             std::uint8_t dlen, std::uint16_t sp_lo, std::uint16_t sp_hi,
             std::uint16_t dp_lo, std::uint16_t dp_hi, std::int32_t prio,
             Action act = Action::Drop) {
  AclRule r;
  r.src_addr = ipv4(src);
  r.src_len = slen;
  r.dst_addr = ipv4(dst);
  r.dst_len = dlen;
  r.sport_lo = sp_lo;
  r.sport_hi = sp_hi;
  r.dport_lo = dp_lo;
  r.dport_hi = dp_hi;
  r.priority = prio;
  r.action = act;
  return r;
}

TEST(ByteTrie, EmptyTrieMatchesNothingAndExitsImmediately) {
  ByteTrie t;
  const FlowKey k{ipv4("1.2.3.4"), ipv4("5.6.7.8"), 1, 2};
  const auto r = t.lookup(k.key_bytes());
  EXPECT_FALSE(r.matched);
  EXPECT_EQ(r.nodes_visited, 1u); // root lookup only
}

TEST(ByteTrie, ExactRuleMatches) {
  ByteTrie t;
  t.insert(rule("192.168.10.0", 24, "192.168.11.0", 24, 5, 5, 7, 7, 1));
  const FlowKey hit{ipv4("192.168.10.9"), ipv4("192.168.11.200"), 5, 7};
  const auto r = t.lookup(hit.key_bytes());
  EXPECT_TRUE(r.matched);
  EXPECT_EQ(r.priority, 1);
  EXPECT_EQ(r.action, Action::Drop);
  EXPECT_EQ(r.nodes_visited, 12u); // full key consumed
}

TEST(ByteTrie, EarlyExitDepthsMatchPacketTypes) {
  // The §IV-C1 mechanism: traversal depth depends on how much of the key
  // prefix any rule can match.
  ByteTrie t;
  t.insert(rule("192.168.10.0", 24, "192.168.11.0", 24, 5, 5, 7, 7, 1));
  const PaperPackets pk;

  const auto a = t.lookup(pk.type_a.key_bytes());
  const auto b = t.lookup(pk.type_b.key_bytes());
  const auto c = t.lookup(pk.type_c.key_bytes());
  EXPECT_FALSE(a.matched);
  EXPECT_FALSE(b.matched);
  EXPECT_FALSE(c.matched);
  // Type A: src+dst match, dies in the port part (byte 9: sport high
  // byte 0x27 vs installed 0x00).
  EXPECT_EQ(a.nodes_visited, 9u);
  // Type B: src matches, dst dies at its third byte (22 vs 11) → 7 lookups.
  EXPECT_EQ(b.nodes_visited, 7u);
  // Type C: src dies at its third byte (12 vs 10) → 3 lookups.
  EXPECT_EQ(c.nodes_visited, 3u);
  EXPECT_GT(a.nodes_visited, b.nodes_visited);
  EXPECT_GT(b.nodes_visited, c.nodes_visited);
}

TEST(ByteTrie, HighestPriorityWinsAtSameLeaf) {
  ByteTrie t;
  t.insert(rule("10.0.0.0", 8, "0.0.0.0", 0, 0, 0xffff, 0, 0xffff, 3,
                Action::Permit));
  t.insert(rule("10.0.0.0", 8, "0.0.0.0", 0, 0, 0xffff, 0, 0xffff, 9,
                Action::Drop));
  const FlowKey k{ipv4("10.1.2.3"), ipv4("9.9.9.9"), 1, 1};
  const auto r = t.lookup(k.key_bytes());
  ASSERT_TRUE(r.matched);
  EXPECT_EQ(r.priority, 9);
  EXPECT_EQ(r.action, Action::Drop);
}

TEST(ByteTrie, OverlappingRangesSplitWithoutCorruption) {
  ByteTrie t;
  // Wide rule first, then a narrow overlapping rule with higher priority.
  t.insert(rule("0.0.0.0", 0, "0.0.0.0", 0, 0, 0xffff, 0, 0xffff, 1,
                Action::Permit));
  t.insert(rule("0.0.0.0", 0, "0.0.0.0", 0, 100, 200, 0, 0xffff, 5,
                Action::Drop));

  const auto at = [&](std::uint16_t sp) {
    const FlowKey k{1, 2, sp, 3};
    return t.lookup(k.key_bytes());
  };
  EXPECT_EQ(at(99).priority, 1);
  EXPECT_EQ(at(99).action, Action::Permit);
  EXPECT_EQ(at(100).priority, 5);
  EXPECT_EQ(at(150).priority, 5);
  EXPECT_EQ(at(200).priority, 5);
  EXPECT_EQ(at(201).priority, 1);
  EXPECT_EQ(at(0xffff).priority, 1);
}

TEST(ByteTrie, NarrowThenWideInsertOrder) {
  ByteTrie t;
  t.insert(rule("0.0.0.0", 0, "0.0.0.0", 0, 100, 200, 0, 0xffff, 5,
                Action::Drop));
  t.insert(rule("0.0.0.0", 0, "0.0.0.0", 0, 0, 0xffff, 0, 0xffff, 1,
                Action::Permit));
  const auto at = [&](std::uint16_t sp) {
    const FlowKey k{1, 2, sp, 3};
    return t.lookup(k.key_bytes());
  };
  EXPECT_EQ(at(99).priority, 1);
  EXPECT_EQ(at(150).priority, 5); // narrow rule still wins inside overlap
  EXPECT_EQ(at(201).priority, 1);
}

TEST(ByteTrie, CountsRulesAndNodes) {
  ByteTrie t;
  EXPECT_EQ(t.num_rules(), 0u);
  EXPECT_EQ(t.num_nodes(), 1u); // root
  t.insert(rule("1.2.3.4", 32, "5.6.7.8", 32, 1, 1, 2, 2, 1));
  EXPECT_EQ(t.num_rules(), 1u);
  EXPECT_EQ(t.num_nodes(), 13u); // root + 12 levels
}

// --- property test: trie vs linear-scan oracle on random rule sets ------

class TrieOracleTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrieOracleTest, AgreesWithLinearScanOnRandomKeys) {
  const std::uint64_t seed = GetParam();
  const RuleSet rules = make_random_ruleset(60, seed);
  ByteTrie trie;
  for (const AclRule& r : rules) trie.insert(r);
  const LinearScanClassifier oracle(rules);

  // Probe keys: random plus targeted probes around every rule's corners.
  std::uint64_t state = seed ^ 0x1234567890abcdefull;
  auto rnd = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 16;
  };
  std::vector<FlowKey> keys;
  for (int i = 0; i < 300; ++i) {
    keys.push_back(FlowKey{static_cast<std::uint32_t>(rnd()),
                           static_cast<std::uint32_t>(rnd()),
                           static_cast<std::uint16_t>(rnd()),
                           static_cast<std::uint16_t>(rnd())});
  }
  for (const AclRule& r : rules) {
    keys.push_back(FlowKey{r.src_addr, r.dst_addr, r.sport_lo, r.dport_lo});
    keys.push_back(FlowKey{r.src_addr, r.dst_addr, r.sport_hi, r.dport_hi});
    keys.push_back(FlowKey{r.src_addr + 1, r.dst_addr, r.sport_hi,
                           static_cast<std::uint16_t>(r.dport_hi + 1)});
  }

  for (const FlowKey& k : keys) {
    const auto want = oracle.classify(k);
    const auto got = trie.lookup(k.key_bytes());
    ASSERT_EQ(got.matched, want.matched)
        << "seed=" << seed << " key=" << ipv4_to_string(k.src_addr) << "→"
        << ipv4_to_string(k.dst_addr) << " sp=" << k.src_port
        << " dp=" << k.dst_port;
    if (want.matched) {
      EXPECT_EQ(got.priority, want.priority);
      EXPECT_EQ(got.action, want.action);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieOracleTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

} // namespace
} // namespace fluxtrace::acl
