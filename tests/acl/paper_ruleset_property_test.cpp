// Exhaustive-boundary properties of the Table III rule set on the
// multi-trie classifier: every installed (sport, dport) pair must drop,
// every just-outside neighbour must pass, and the match must agree with
// the linear-scan oracle at every probed corner.
#include <gtest/gtest.h>

#include "fluxtrace/acl/classifier.hpp"
#include "fluxtrace/acl/ruleset.hpp"

namespace fluxtrace::acl {
namespace {

struct PaperProperty : ::testing::Test {
  static void SetUpTestSuite() {
    rules = new RuleSet(make_paper_ruleset());
    clf = new MultiTrieClassifier(*rules,
                                  MultiTrieConfig{kPaperRulesPerTrie, 0});
    lin = new LinearScanClassifier(*rules);
  }
  static void TearDownTestSuite() {
    delete lin;
    delete clf;
    delete rules;
    lin = nullptr;
    clf = nullptr;
    rules = nullptr;
  }

  static FlowKey key(std::uint16_t sp, std::uint16_t dp) {
    return FlowKey{ipv4("192.168.10.200"), ipv4("192.168.11.1"), sp, dp};
  }

  static RuleSet* rules;
  static MultiTrieClassifier* clf;
  static LinearScanClassifier* lin;
};

RuleSet* PaperProperty::rules = nullptr;
MultiTrieClassifier* PaperProperty::clf = nullptr;
LinearScanClassifier* PaperProperty::lin = nullptr;

TEST_F(PaperProperty, EveryInstalledCornerDrops) {
  // Corners of the rule grid (sports 1..66 x dports 1..750, plus the
  // 67/1..500 tail) — probe the extremes and a diagonal.
  const std::uint16_t sps[] = {1, 2, 33, 65, 66};
  const std::uint16_t dps[] = {1, 2, 375, 749, 750};
  for (const std::uint16_t sp : sps) {
    for (const std::uint16_t dp : dps) {
      const auto r = clf->classify(key(sp, dp));
      ASSERT_TRUE(r.matched) << sp << ":" << dp;
      EXPECT_EQ(r.action, Action::Drop) << sp << ":" << dp;
    }
  }
  EXPECT_TRUE(clf->classify(key(67, 1)).matched);
  EXPECT_TRUE(clf->classify(key(67, 500)).matched);
}

TEST_F(PaperProperty, JustOutsideNeighboursPass) {
  EXPECT_FALSE(clf->classify(key(0, 1)).matched);    // sport below
  EXPECT_FALSE(clf->classify(key(68, 1)).matched);   // sport above tail
  EXPECT_FALSE(clf->classify(key(1, 0)).matched);    // dport below
  EXPECT_FALSE(clf->classify(key(1, 751)).matched);  // dport above
  EXPECT_FALSE(clf->classify(key(67, 501)).matched); // tail dport above
  // Outside the address prefixes entirely:
  EXPECT_FALSE(clf->classify(FlowKey{ipv4("192.168.9.200"),
                                     ipv4("192.168.11.1"), 1, 1})
                   .matched);
  EXPECT_FALSE(clf->classify(FlowKey{ipv4("192.168.10.200"),
                                     ipv4("192.168.12.1"), 1, 1})
                   .matched);
}

class PaperDiagonal : public PaperProperty,
                      public ::testing::WithParamInterface<int> {};

TEST_P(PaperDiagonal, TrieAgreesWithOracleOnRandomProbes) {
  std::uint64_t state = static_cast<std::uint64_t>(GetParam());
  auto rnd = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 16;
  };
  for (int i = 0; i < 400; ++i) {
    // Concentrate probes around the rule boundaries.
    const auto sp = static_cast<std::uint16_t>(rnd() % 90);
    const auto dp = static_cast<std::uint16_t>(rnd() % 800);
    const FlowKey k = key(sp, dp);
    const auto a = clf->classify(k);
    const auto b = lin->classify(k);
    ASSERT_EQ(a.matched, b.matched) << sp << ":" << dp;
    if (a.matched) {
      EXPECT_EQ(a.priority, b.priority) << sp << ":" << dp;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PaperDiagonal, ::testing::Values(1, 2, 3, 4));

TEST_F(PaperProperty, AddressWildcardByteWithinPrefix) {
  // The /24 leaves the last address byte free: any host in the subnets
  // behaves identically.
  for (const std::uint8_t host : {0, 1, 100, 255}) {
    const FlowKey k{ipv4("192.168.10.0") + host, ipv4("192.168.11.0") + host,
                    5, 5};
    EXPECT_TRUE(clf->classify(k).matched) << int(host);
  }
}

} // namespace
} // namespace fluxtrace::acl
