// Smoke tests for the command-line tools: generate a real trace + symbol
// file, run each tool as a subprocess, and check exit codes and key
// output. Tool paths come from the build system (FLXT_TOOL_DIR).
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

#include "fluxtrace/apps/query_cache_app.hpp"
#include "fluxtrace/io/symbols_file.hpp"
#include "fluxtrace/io/trace_file.hpp"

#ifndef FLXT_TOOL_DIR
#error "FLXT_TOOL_DIR must be defined by the build"
#endif

namespace fluxtrace {
namespace {

std::string run_capture(const std::string& cmd, int* rc) {
  std::array<char, 4096> buf{};
  std::string out;
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr) {
    *rc = -1;
    return out;
  }
  while (fgets(buf.data(), static_cast<int>(buf.size()), pipe) != nullptr) {
    out += buf.data();
  }
  *rc = pclose(pipe);
  return out;
}

struct ToolsFixture : ::testing::Test {
  static void SetUpTestSuite() {
    trace_path = ::testing::TempDir() + "/tools_smoke.flxt";
    syms_path = ::testing::TempDir() + "/tools_smoke.syms";
    compact_path = ::testing::TempDir() + "/tools_smoke.flxz";

    SymbolTable symtab;
    apps::QueryCacheApp app(symtab);
    sim::Machine m(symtab);
    sim::PebsConfig pc;
    pc.reset = 8000;
    m.cpu(1).enable_pebs(pc);
    app.submit(apps::QueryCacheApp::paper_queries());
    app.attach(m, 0, 1);
    m.run();
    m.flush_samples();
    io::save_trace(trace_path,
                   {m.marker_log().markers(), m.pebs_driver().samples()});
    io::save_symbols(syms_path, symtab);
  }

  static std::string tool(const std::string& name) {
    return std::string(FLXT_TOOL_DIR) + "/" + name;
  }

  static std::string trace_path, syms_path, compact_path;
};

std::string ToolsFixture::trace_path;
std::string ToolsFixture::syms_path;
std::string ToolsFixture::compact_path;

TEST_F(ToolsFixture, DumpSummarizes) {
  int rc = -1;
  const std::string out = run_capture(tool("flxt_dump") + " " + trace_path, &rc);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("20 markers"), std::string::npos) << out;
  EXPECT_NE(out.find("enter"), std::string::npos);
}

TEST_F(ToolsFixture, DumpCsvStreams) {
  int rc = -1;
  const std::string out =
      run_capture(tool("flxt_dump") + " " + trace_path + " --csv markers", &rc);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("tsc,item,core,kind"), std::string::npos);
}

TEST_F(ToolsFixture, ReportTableNamesFunctions) {
  int rc = -1;
  const std::string out = run_capture(
      tool("flxt_report") + " " + trace_path + " " + syms_path, &rc);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("sample_app::f3_transform"), std::string::npos);
}

TEST_F(ToolsFixture, ReportDiagnoseFindsTheColdQueries) {
  int rc = -1;
  const std::string out = run_capture(
      tool("flxt_report") + " " + trace_path + " " + syms_path + " --diagnose",
      &rc);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("item #1"), std::string::npos) << out;
  EXPECT_NE(out.find("f3_transform"), std::string::npos);
}

TEST_F(ToolsFixture, ReportFoldedAndGanttModes) {
  int rc = -1;
  const std::string folded = run_capture(
      tool("flxt_report") + " " + trace_path + " " + syms_path + " --folded",
      &rc);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(folded.find("item_1;"), std::string::npos);
  const std::string gantt = run_capture(
      tool("flxt_report") + " " + trace_path + " " + syms_path + " --gantt",
      &rc);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(gantt.find("core1"), std::string::npos);
}

TEST_F(ToolsFixture, ReportTableCsvMode) {
  int rc = -1;
  const std::string out = run_capture(
      tool("flxt_report") + " " + trace_path + " " + syms_path +
          " --table-csv",
      &rc);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("item,function,samples,elapsed_us,window_us"),
            std::string::npos);
  EXPECT_NE(out.find("sample_app::f3_transform"), std::string::npos);
}

TEST_F(ToolsFixture, ConvertRoundTrip) {
  int rc = -1;
  run_capture(tool("flxt_convert") + " " + trace_path + " " + compact_path +
                  " --to-compact",
              &rc);
  EXPECT_EQ(rc, 0);
  const std::string back_path = ::testing::TempDir() + "/tools_smoke_back.flxt";
  run_capture(tool("flxt_convert") + " " + compact_path + " " + back_path +
                  " --to-full",
              &rc);
  EXPECT_EQ(rc, 0);
  const io::TraceData back = io::load_trace(back_path);
  EXPECT_EQ(back.markers.size(), 20u);
}

TEST_F(ToolsFixture, BadArgumentsExitNonZero) {
  int rc = 0;
  run_capture(tool("flxt_dump"), &rc);
  EXPECT_NE(rc, 0);
  run_capture(tool("flxt_report") + " /nonexistent.trace " + syms_path, &rc);
  EXPECT_NE(rc, 0);
  run_capture(tool("flxt_convert") + " a b --to-nothing", &rc);
  EXPECT_NE(rc, 0);
}

} // namespace
} // namespace fluxtrace
