// Smoke tests for the command-line tools: generate a real trace + symbol
// file, run each tool as a subprocess, and check exit codes and key
// output. Tool paths come from the build system (FLXT_TOOL_DIR).
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

#include <fstream>

#include <sys/stat.h>
#include <unistd.h>

#include "fluxtrace/apps/query_cache_app.hpp"
#include "fluxtrace/io/chunked.hpp"
#include "fluxtrace/io/symbols_file.hpp"
#include "fluxtrace/io/trace_reader.hpp"

#ifndef FLXT_TOOL_DIR
#error "FLXT_TOOL_DIR must be defined by the build"
#endif

namespace fluxtrace {
namespace {

std::string run_capture(const std::string& cmd, int* rc) {
  std::array<char, 4096> buf{};
  std::string out;
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr) {
    *rc = -1;
    return out;
  }
  while (fgets(buf.data(), static_cast<int>(buf.size()), pipe) != nullptr) {
    out += buf.data();
  }
  *rc = pclose(pipe);
  return out;
}

/// A directory no earlier run of this binary has touched — catalogs are
/// stateful, so hub tests must not inherit a previous run's manifest.
std::string fresh_dir(const char* tag) {
  static int n = 0;
  const std::string dir = ::testing::TempDir() + "/tools_" + tag + "_" +
                          std::to_string(::getpid()) + "_" +
                          std::to_string(n++);
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

struct ToolsFixture : ::testing::Test {
  static void SetUpTestSuite() {
    trace_path = ::testing::TempDir() + "/tools_smoke.flxt";
    syms_path = ::testing::TempDir() + "/tools_smoke.syms";
    compact_path = ::testing::TempDir() + "/tools_smoke.flxz";

    SymbolTable symtab;
    apps::QueryCacheApp app(symtab);
    sim::Machine m(symtab);
    sim::PebsConfig pc;
    pc.reset = 8000;
    m.cpu(1).enable_pebs(pc);
    app.submit(apps::QueryCacheApp::paper_queries());
    app.attach(m, 0, 1);
    m.run();
    m.flush_samples();
    io::save_trace(trace_path,
                   {m.marker_log().markers(), m.pebs_driver().samples()});
    io::save_symbols(syms_path, symtab);
  }

  static std::string tool(const std::string& name) {
    return std::string(FLXT_TOOL_DIR) + "/" + name;
  }

  static std::string trace_path, syms_path, compact_path;
};

std::string ToolsFixture::trace_path;
std::string ToolsFixture::syms_path;
std::string ToolsFixture::compact_path;

TEST_F(ToolsFixture, DumpSummarizes) {
  int rc = -1;
  const std::string out = run_capture(tool("flxt_dump") + " " + trace_path, &rc);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("20 markers"), std::string::npos) << out;
  EXPECT_NE(out.find("enter"), std::string::npos);
}

TEST_F(ToolsFixture, DumpCsvStreams) {
  int rc = -1;
  const std::string out =
      run_capture(tool("flxt_dump") + " " + trace_path + " --csv markers", &rc);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("tsc,item,core,kind"), std::string::npos);
}

TEST_F(ToolsFixture, ReportTableNamesFunctions) {
  int rc = -1;
  const std::string out = run_capture(
      tool("flxt_report") + " " + trace_path + " " + syms_path, &rc);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("sample_app::f3_transform"), std::string::npos);
}

TEST_F(ToolsFixture, ReportDiagnoseFindsTheColdQueries) {
  int rc = -1;
  const std::string out = run_capture(
      tool("flxt_report") + " " + trace_path + " " + syms_path + " --diagnose",
      &rc);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("item #1"), std::string::npos) << out;
  EXPECT_NE(out.find("f3_transform"), std::string::npos);
}

TEST_F(ToolsFixture, ReportFoldedAndGanttModes) {
  int rc = -1;
  const std::string folded = run_capture(
      tool("flxt_report") + " " + trace_path + " " + syms_path + " --folded",
      &rc);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(folded.find("item_1;"), std::string::npos);
  const std::string gantt = run_capture(
      tool("flxt_report") + " " + trace_path + " " + syms_path + " --gantt",
      &rc);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(gantt.find("core1"), std::string::npos);
}

TEST_F(ToolsFixture, ReportTableCsvMode) {
  int rc = -1;
  const std::string out = run_capture(
      tool("flxt_report") + " " + trace_path + " " + syms_path +
          " --table-csv",
      &rc);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("item,function,samples,elapsed_us,window_us"),
            std::string::npos);
  EXPECT_NE(out.find("sample_app::f3_transform"), std::string::npos);
}

TEST_F(ToolsFixture, ConvertRoundTrip) {
  int rc = -1;
  run_capture(tool("flxt_convert") + " " + trace_path + " " + compact_path +
                  " --to-compact",
              &rc);
  EXPECT_EQ(rc, 0);
  const std::string back_path = ::testing::TempDir() + "/tools_smoke_back.flxt";
  run_capture(tool("flxt_convert") + " " + compact_path + " " + back_path +
                  " --to-full",
              &rc);
  EXPECT_EQ(rc, 0);
  const io::TraceData back = io::open_trace(back_path).read();
  EXPECT_EQ(back.markers.size(), 20u);
}

TEST_F(ToolsFixture, ConvertToV2RoundTrip) {
  int rc = -1;
  const std::string v2_path = ::testing::TempDir() + "/tools_smoke_conv.flxt2";
  run_capture(tool("flxt_convert") + " " + trace_path + " " + v2_path +
                  " --to-v2",
              &rc);
  EXPECT_EQ(rc, 0);
  const io::TraceReader reader = io::open_trace(v2_path);
  EXPECT_EQ(reader.format(), io::TraceFormat::FlxtV2);
  EXPECT_EQ(reader.read(), io::open_trace(trace_path).read());
}

TEST_F(ToolsFixture, BadArgumentsExitNonZero) {
  int rc = 0;
  run_capture(tool("flxt_dump"), &rc);
  EXPECT_NE(rc, 0);
  run_capture(tool("flxt_report") + " /nonexistent.trace " + syms_path, &rc);
  EXPECT_NE(rc, 0);
  run_capture(tool("flxt_convert") + " a b --to-nothing", &rc);
  EXPECT_NE(rc, 0);
  run_capture(tool("flxt_recover"), &rc);
  EXPECT_NE(rc, 0);
}

TEST_F(ToolsFixture, InvalidFlagValuesRejectedWithUsage) {
  int rc = 0;
  std::string out =
      run_capture(tool("flxt_dump") + " " + trace_path + " --head banana", &rc);
  EXPECT_NE(rc, 0);
  EXPECT_NE(out.find("usage:"), std::string::npos) << out;
  out = run_capture(tool("flxt_report") + " " + trace_path + " " + syms_path +
                        " --freq zero",
                    &rc);
  EXPECT_NE(rc, 0);
  EXPECT_NE(out.find("usage:"), std::string::npos) << out;
  out = run_capture(tool("flxt_report") + " " + trace_path + " " + syms_path +
                        " --freq -1",
                    &rc);
  EXPECT_NE(rc, 0);
}

TEST_F(ToolsFixture, ToolsSurviveGarbageInputFiles) {
  const std::string garbage = ::testing::TempDir() + "/tools_garbage.bin";
  {
    std::ofstream os(garbage, std::ios::binary);
    os << std::string(512, '\x5a');
  }
  int rc = 0;
  std::string out = run_capture(tool("flxt_dump") + " " + garbage, &rc);
  EXPECT_NE(rc, 0);
  EXPECT_NE(out.find("error:"), std::string::npos) << out;
  out = run_capture(tool("flxt_report") + " " + garbage + " " + syms_path, &rc);
  EXPECT_NE(rc, 0);
  EXPECT_NE(out.find("error:"), std::string::npos) << out;
  out = run_capture(
      tool("flxt_convert") + " " + garbage + " /tmp/x.out --to-compact", &rc);
  EXPECT_NE(rc, 0);
  EXPECT_NE(out.find("error:"), std::string::npos) << out;
}

TEST_F(ToolsFixture, ReportDegradedModeAddsConfidence) {
  int rc = -1;
  const std::string out = run_capture(tool("flxt_report") + " " + trace_path +
                                          " " + syms_path + " --degraded",
                                      &rc);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("confidence"), std::string::npos) << out;
  EXPECT_NE(out.find("degraded items"), std::string::npos) << out;
}

TEST_F(ToolsFixture, ReportThreadsFlagMatchesSequentialOutput) {
  // --threads must never change what the analysis prints.
  int rc = -1;
  const std::string seq = run_capture(
      tool("flxt_report") + " " + trace_path + " " + syms_path, &rc);
  EXPECT_EQ(rc, 0) << seq;
  const std::string par = run_capture(
      tool("flxt_report") + " " + trace_path + " " + syms_path +
          " --threads 4",
      &rc);
  EXPECT_EQ(rc, 0) << par;
  EXPECT_EQ(seq, par);
  const std::string dump = run_capture(
      tool("flxt_dump") + " " + trace_path + " --threads 4", &rc);
  EXPECT_EQ(rc, 0) << dump;
  EXPECT_NE(dump.find("20 markers"), std::string::npos) << dump;
}

TEST_F(ToolsFixture, DumpPrintsSummaryFooter) {
  int rc = -1;
  const std::string out =
      run_capture(tool("flxt_dump") + " " + trace_path, &rc);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("summary:"), std::string::npos) << out;
  // 20 markers = 10 fully paired items on this clean trace.
  EXPECT_NE(out.find("items:    10 (10 windows paired, 0 enters "
                     "unterminated, 0 orphan leaves)"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("quality:  10 clean"), std::string::npos) << out;
  EXPECT_NE(out.find("tsc span:"), std::string::npos) << out;
}

TEST_F(ToolsFixture, TelemetryFlagWritesChromeTraceJson) {
  const std::string tel_path = ::testing::TempDir() + "/tools_smoke_tel.json";
  int rc = -1;
  const std::string out = run_capture(tool("flxt_report") + " " + trace_path +
                                          " " + syms_path + " --threads 2" +
                                          " --telemetry " + tel_path +
                                          " --metrics",
                                      &rc);
  EXPECT_EQ(rc, 0) << out;
  // --metrics dumps the registry as Prometheus text on stderr.
  EXPECT_NE(out.find("# TYPE fluxtrace_io_reads counter"), std::string::npos)
      << out;
  EXPECT_NE(out.find("fluxtrace_rt_pool_tasks_executed"), std::string::npos)
      << out;

  std::ifstream is(tel_path);
  ASSERT_TRUE(is.good());
  std::ostringstream buf;
  buf << is.rdbuf();
  const std::string json = std::move(buf).str();
  // Structural spot-checks; the exhaustive JSON validity test lives in
  // tests/obs/span_trace_test.cpp.
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("io.read_parallel"), std::string::npos) << json;
  EXPECT_NE(json.find("core.integrate"), std::string::npos) << json;
}

TEST_F(ToolsFixture, TelemetryToUnwritablePathFails) {
  int rc = -1;
  const std::string out = run_capture(
      tool("flxt_report") + " " + trace_path + " " + syms_path +
          " --telemetry /nonexistent_dir/out.json",
      &rc);
  EXPECT_NE(rc, 0);
  EXPECT_NE(out.find("cannot write telemetry file"), std::string::npos) << out;
}

TEST_F(ToolsFixture, RecoverSalvagesATruncatedV2File) {
  // Write a v2 trace, tear off the tail, and recover it.
  const io::TraceData full = io::open_trace(trace_path).read();
  const std::string v2_path = ::testing::TempDir() + "/tools_smoke_v2.flxt";
  io::save_trace_v2(v2_path, full, /*records_per_chunk=*/64);

  std::string bytes;
  {
    std::ifstream is(v2_path, std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    bytes = std::move(buf).str();
  }
  const std::string torn_path = ::testing::TempDir() + "/tools_smoke_torn.flxt";
  {
    std::ofstream os(torn_path, std::ios::binary);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size() * 2 / 3));
  }

  // The strict reader refuses the torn file…
  int rc = 0;
  std::string out = run_capture(tool("flxt_dump") + " " + torn_path, &rc);
  EXPECT_NE(rc, 0);

  // …--salvage reads what is intact…
  out = run_capture(tool("flxt_dump") + " " + torn_path + " --salvage", &rc);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("salvage:"), std::string::npos) << out;

  // …and flxt_recover writes a clean v2 file from it.
  const std::string rec_path = ::testing::TempDir() + "/tools_smoke_rec.flxt";
  out = run_capture(
      tool("flxt_recover") + " " + torn_path + " " + rec_path, &rc);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("recovered"), std::string::npos) << out;

  const io::TraceData rec = io::open_trace(rec_path).read();
  EXPECT_FALSE(rec.markers.empty());
  EXPECT_LE(rec.markers.size(), full.markers.size());
  // Recovered records are an exact prefix of the original streams.
  for (std::size_t i = 0; i < rec.markers.size(); ++i) {
    EXPECT_EQ(rec.markers[i], full.markers[i]);
  }
  for (std::size_t i = 0; i < rec.samples.size(); ++i) {
    EXPECT_EQ(rec.samples[i], full.samples[i]);
  }

  // A fully destroyed file exits 1.
  const std::string dead_path = ::testing::TempDir() + "/tools_smoke_dead.flxt";
  {
    std::ofstream os(dead_path, std::ios::binary);
    os << std::string(64, '\x11');
  }
  run_capture(tool("flxt_recover") + " " + dead_path, &rc);
  EXPECT_NE(rc, 0);
}

TEST_F(ToolsFixture, ConvertSalvageRecoversADamagedV2File) {
  // A torn v2 file converts end-to-end with --salvage: whatever the
  // chunk scan recovers comes out as a clean v1 file.
  const io::TraceData full = io::open_trace(trace_path).read();
  const std::string v2_path = ::testing::TempDir() + "/tools_smoke_cs.flxt2";
  io::save_trace_v2(v2_path, full, /*records_per_chunk=*/64);
  std::string bytes;
  {
    std::ifstream is(v2_path, std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    bytes = std::move(buf).str();
  }
  const std::string torn_path = ::testing::TempDir() + "/tools_smoke_cs_torn";
  {
    std::ofstream os(torn_path, std::ios::binary);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size() * 2 / 3));
  }

  const std::string out_path = ::testing::TempDir() + "/tools_smoke_cs_out";
  int rc = -1;
  // Without --salvage the conversion refuses the damaged input…
  std::string out = run_capture(tool("flxt_convert") + " " + torn_path + " " +
                                    out_path + " --to-full",
                                &rc);
  EXPECT_NE(rc, 0);
  EXPECT_NE(out.find("error:"), std::string::npos) << out;
  // …with it, the recovered prefix converts cleanly.
  out = run_capture(tool("flxt_convert") + " " + torn_path + " " + out_path +
                        " --to-full --salvage",
                    &rc);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("salvage:"), std::string::npos) << out;

  const io::TraceData back = io::open_trace(out_path).read();
  EXPECT_FALSE(back.markers.empty());
  for (std::size_t i = 0; i < back.markers.size(); ++i) {
    EXPECT_EQ(back.markers[i], full.markers[i]);
  }
}

TEST_F(ToolsFixture, SessionHealsUnderChaosAndReconciles) {
  const std::string spool = ::testing::TempDir() + "/tools_session.flxt";
  const std::string second = ::testing::TempDir() + "/tools_session_2nd.flxt";
  int rc = -1;
  const std::string out = run_capture(
      tool("flxt_session") + " " + spool + " --secondary " + second +
          " --queries 150 --drain-loss 0.2 --sink-transient 0.1"
          " --stuck-at 5 --stuck-for 8",
      &rc);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("session: final="), std::string::npos) << out;
  EXPECT_NE(out.find("reconciled: exact"), std::string::npos) << out;
  EXPECT_NE(out.find("clean-close=yes"), std::string::npos) << out;
  // Faulted writes really happened and were retried, not ignored.
  EXPECT_EQ(out.find("retries=0 "), std::string::npos) << out;

  // The spool survived the chaos as a well-formed v2 trace.
  const std::string dump = run_capture(tool("flxt_dump") + " " + spool, &rc);
  EXPECT_EQ(rc, 0) << dump;
}

TEST_F(ToolsFixture, SessionRejectsInvalidNumericFlags) {
  const std::string spool = ::testing::TempDir() + "/tools_session_bad.flxt";
  int rc = 0;
  // Zero where only a positive count makes sense.
  std::string out =
      run_capture(tool("flxt_session") + " " + spool + " --queries 0", &rc);
  EXPECT_NE(rc, 0);
  EXPECT_NE(out.find("positive whole number"), std::string::npos) << out;
  // Negative values must not wrap through strtoull.
  out = run_capture(tool("flxt_session") + " " + spool + " --reset -5", &rc);
  EXPECT_NE(rc, 0);
  EXPECT_NE(out.find("error:"), std::string::npos) << out;
  // Overflow is reported as out of range, not silently truncated.
  out = run_capture(
      tool("flxt_session") + " " + spool + " --queue 99999999999999999999999",
      &rc);
  EXPECT_NE(rc, 0);
  EXPECT_NE(out.find("out of range"), std::string::npos) << out;
  // Rates live in [0, 1].
  out = run_capture(
      tool("flxt_session") + " " + spool + " --drain-loss 1.5", &rc);
  EXPECT_NE(rc, 0);
  EXPECT_NE(out.find("rate in [0, 1]"), std::string::npos) << out;
  // Unknown overflow policies name the valid set.
  out = run_capture(
      tool("flxt_session") + " " + spool + " --policy sideways", &rc);
  EXPECT_NE(rc, 0);
  EXPECT_NE(out.find("block|drop-oldest|drop-newest"), std::string::npos)
      << out;
}

TEST_F(ToolsFixture, EveryToolAnswersVersion) {
  // --version works argument-free, prints the one version string from
  // base/version.hpp, and exits 0 — same flag, same source, all tools.
  for (const char* name : {"flxt_dump", "flxt_report", "flxt_convert",
                           "flxt_recover", "flxt_session", "flxt_query",
                           "flxt_hub"}) {
    int rc = -1;
    const std::string out = run_capture(tool(name) + " --version", &rc);
    EXPECT_EQ(rc, 0) << name << ": " << out;
    EXPECT_NE(out.find(std::string(name) + " "), std::string::npos) << out;
    EXPECT_NE(out.find("0.5.0"), std::string::npos) << out;
  }
}

TEST_F(ToolsFixture, QueryGroupByAndFilter) {
  int rc = -1;
  const std::string out = run_capture(
      tool("flxt_query") + " " + trace_path + " " + syms_path +
          " 'group func: count | top 1 by count' --stats",
      &rc);
  EXPECT_EQ(rc, 0) << out;
  // The paper workload's hottest function dominates the samples.
  EXPECT_NE(out.find("sample_app::f3_transform"), std::string::npos) << out;
  EXPECT_NE(out.find("rows 145 matched 145"), std::string::npos) << out;

  const std::string filtered = run_capture(
      tool("flxt_query") + " " + trace_path + " " + syms_path +
          " 'filter item == 1 | group func: count' --csv",
      &rc);
  EXPECT_EQ(rc, 0) << filtered;
  EXPECT_NE(filtered.find("func,count"), std::string::npos) << filtered;
}

TEST_F(ToolsFixture, QueryJsonShape) {
  int rc = -1;
  const std::string out = run_capture(
      tool("flxt_query") + " " + trace_path + " " + syms_path +
          " 'group core: count' --json",
      &rc);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("{\"columns\":[\"core\",\"count\"]"), std::string::npos)
      << out;
}

TEST_F(ToolsFixture, QueryReplRunsFromAPipe) {
  int rc = -1;
  const std::string out = run_capture(
      "printf 'group core: count\\nquit\\n' | " + tool("flxt_query") + " " +
          trace_path + " " + syms_path + " --repl --csv",
      &rc);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("core,count"), std::string::npos) << out;
}

TEST_F(ToolsFixture, QueryErrorsExitTwoWithOffset) {
  int rc = 0;
  std::string out = run_capture(tool("flxt_query") + " " + trace_path + " " +
                                    syms_path + " 'group bogus: count'",
                                &rc);
  EXPECT_NE(rc, 0);
  EXPECT_NE(out.find("error:"), std::string::npos) << out;
  EXPECT_NE(out.find("at offset"), std::string::npos) << out;
  // One-shot query and --repl are mutually exclusive; neither is also
  // an error.
  run_capture(tool("flxt_query") + " " + trace_path + " " + syms_path +
                  " 'select ts' --repl",
              &rc);
  EXPECT_NE(rc, 0);
  run_capture(tool("flxt_query") + " " + trace_path + " " + syms_path, &rc);
  EXPECT_NE(rc, 0);
  run_capture(tool("flxt_query") + " " + trace_path + " " + syms_path +
                  " 'select ts' --csv --json",
              &rc);
  EXPECT_NE(rc, 0);
}

TEST_F(ToolsFixture, ReportFilterFlagsComposeAndReject) {
  int rc = -1;
  // --item N is sugar for --filter 'item == N': identical output.
  const std::string sugar = run_capture(
      tool("flxt_report") + " " + trace_path + " " + syms_path + " --item 1",
      &rc);
  EXPECT_EQ(rc, 0) << sugar;
  const std::string spelled = run_capture(
      tool("flxt_report") + " " + trace_path + " " + syms_path +
          " --filter 'item == 1'",
      &rc);
  EXPECT_EQ(rc, 0);
  EXPECT_EQ(sugar, spelled);
  EXPECT_NE(sugar.find("#1"), std::string::npos) << sugar;
  EXPECT_EQ(sugar.find("#2"), std::string::npos) << sugar;

  // --func keeps only that function's buckets in the folded export.
  const std::string folded = run_capture(
      tool("flxt_report") + " " + trace_path + " " + syms_path +
          " --folded --func sample_app::f1_parse",
      &rc);
  EXPECT_EQ(rc, 0) << folded;
  EXPECT_NE(folded.find("f1_parse"), std::string::npos) << folded;
  EXPECT_EQ(folded.find("f3_transform"), std::string::npos) << folded;

  // A filter over columns the report cannot bind is rejected cleanly.
  std::string out = run_capture(tool("flxt_report") + " " + trace_path + " " +
                                    syms_path + " --filter 'ts > 100'",
                                &rc);
  EXPECT_NE(rc, 0);
  EXPECT_NE(out.find("bad filter"), std::string::npos) << out;
  // And so are modes the filter does not apply to.
  out = run_capture(tool("flxt_report") + " " + trace_path + " " + syms_path +
                        " --diagnose --item 1",
                    &rc);
  EXPECT_NE(rc, 0);
  out = run_capture(tool("flxt_report") + " " + trace_path + " " + syms_path +
                        " --filter 'item =='",
                    &rc);
  EXPECT_NE(rc, 0);
  EXPECT_NE(out.find("bad filter"), std::string::npos) << out;
}

TEST_F(ToolsFixture, ConvertChunkRecordsControlsV2Granularity) {
  int rc = -1;
  const std::string fine = ::testing::TempDir() + "/tools_smoke_fine.flxt2";
  const std::string coarse = ::testing::TempDir() + "/tools_smoke_coarse.flxt2";
  run_capture(tool("flxt_convert") + " " + trace_path + " " + fine +
                  " --to-v2 --chunk-records 8",
              &rc);
  EXPECT_EQ(rc, 0);
  run_capture(tool("flxt_convert") + " " + trace_path + " " + coarse +
                  " --to-v2",
              &rc);
  EXPECT_EQ(rc, 0);
  // Same records, more chunk headers.
  std::ifstream fa(fine, std::ios::binary | std::ios::ate);
  std::ifstream fb(coarse, std::ios::binary | std::ios::ate);
  EXPECT_GT(fa.tellg(), fb.tellg());
  EXPECT_EQ(io::open_trace(fine).read(), io::open_trace(coarse).read());
}

TEST_F(ToolsFixture, SessionCrashLeavesRecoverableSpool) {
  // Simulated kill -9 mid-capture: no close, no eof sentinel. The
  // fsync-per-chunk discipline means flxt_recover salvages every
  // committed chunk with zero CRC failures.
  const std::string spool = ::testing::TempDir() + "/tools_session_crash.flxt";
  int rc = 0;
  std::string out = run_capture(
      tool("flxt_session") + " " + spool +
          " --queries 200 --chunk-records 16 --crash-after 5",
      &rc);
  EXPECT_NE(rc, 0) << out; // the "kill" exits 137
  EXPECT_NE(out.find("crash-after reached"), std::string::npos) << out;

  const std::string rec = ::testing::TempDir() + "/tools_session_rec.flxt";
  out = run_capture(tool("flxt_recover") + " " + spool + " " + rec, &rc);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("0 corrupt"), std::string::npos) << out;
  EXPECT_NE(out.find("recovered"), std::string::npos) << out;

  // The recovered file reads strictly clean.
  out = run_capture(tool("flxt_dump") + " " + rec, &rc);
  EXPECT_EQ(rc, 0) << out;
}

TEST_F(ToolsFixture, QueryFollowCleanTraceEndsWithExactLedger) {
  // A finished v2 trace is the degenerate live case: the follower sees
  // the eof sentinel on its first poll and exits 0 with an exact ledger.
  const std::string v2_path = ::testing::TempDir() + "/tools_follow.flxt2";
  int rc = -1;
  run_capture(tool("flxt_convert") + " " + trace_path + " " + v2_path +
                  " --to-v2 --chunk-records 16",
              &rc);
  ASSERT_EQ(rc, 0);

  const std::string out = run_capture(
      tool("flxt_query") + " " + v2_path + " " + syms_path +
          " 'group func: count' --follow --csv",
      &rc);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("finish=clean-eof"), std::string::npos) << out;
  EXPECT_NE(out.find("(exact)"), std::string::npos) << out;
  EXPECT_NE(out.find("window item="), std::string::npos) << out;
  // The final snapshot is the same table a batch run would print.
  EXPECT_NE(out.find("func,count"), std::string::npos) << out;
  EXPECT_NE(out.find("sample_app::f3_transform"), std::string::npos) << out;
}

TEST_F(ToolsFixture, QueryFollowSurvivesProducerKill9) {
  // The satellite kill-9 leg: flxt_session dies mid-capture via
  // --crash-after (std::_Exit, no close, no eof sentinel). Following the
  // abandoned spool must end in a producer-death salvage with exit 0 and
  // an exact ledger — a dead writer is a degraded ending, not an error.
  const std::string spool = ::testing::TempDir() + "/tools_follow_crash.flxt";
  int rc = 0;
  std::string out = run_capture(
      tool("flxt_session") + " " + spool +
          " --queries 200 --chunk-records 16 --crash-after 5",
      &rc);
  EXPECT_NE(rc, 0) << out; // the "kill" exits 137

  out = run_capture(tool("flxt_query") + " " + spool + " " + syms_path +
                        " 'group item: count' --follow --poll-ms 20"
                        " --death-timeout-ms 200 --csv",
                    &rc);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("finish=producer-death"), std::string::npos) << out;
  // Every committed chunk was consumed whole — nothing torn, nothing
  // decoded from the crash-cut tail.
  EXPECT_NE(out.find("torn=0 (exact)"), std::string::npos) << out;
}

TEST_F(ToolsFixture, QueryFollowMaxPollsStopsCleanly) {
  // --max-polls bounds a follow of a live (eof-less) spool: the stop is
  // a salvage pass, the ledger still reconciles, exit 0.
  const std::string spool = ::testing::TempDir() + "/tools_follow_open.flxt";
  int rc = 0;
  run_capture(tool("flxt_session") + " " + spool +
                  " --queries 100 --chunk-records 16 --crash-after 3",
              &rc);
  EXPECT_NE(rc, 0);

  std::string out = run_capture(
      tool("flxt_query") + " " + spool + " " + syms_path +
          " 'select ts' --follow --poll-ms 10 --max-polls 2"
          " --death-timeout-ms 60000 --csv",
      &rc);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("finish=stopped"), std::string::npos) << out;
  EXPECT_NE(out.find("(exact)"), std::string::npos) << out;
}

TEST_F(ToolsFixture, QueryFollowSigintPrintsLedgerAndExitsZero) {
  // Satellite: Ctrl-C during --follow must not leave a half-written
  // table — the handler turns the poll loop into a final salvage pass
  // and the partial-window ledger still prints, exit 0.
  const std::string spool = ::testing::TempDir() + "/tools_follow_int.flxt";
  int rc = 0;
  run_capture(tool("flxt_session") + " " + spool +
                  " --queries 100 --chunk-records 16 --crash-after 3",
              &rc);
  EXPECT_NE(rc, 0);

  std::string out = run_capture(
      "timeout --preserve-status -s INT 1 " + tool("flxt_query") + " " +
          spool + " " + syms_path + " 'group core: count' --follow"
          " --poll-ms 50 --death-timeout-ms 60000 --csv",
      &rc);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("finish=stopped"), std::string::npos) << out;
  EXPECT_NE(out.find("(exact)"), std::string::npos) << out;
  EXPECT_NE(out.find("core,count"), std::string::npos) << out;
}

TEST_F(ToolsFixture, QueryReplSigintExitsCleanly) {
  // Ctrl-C at the REPL prompt: no half-written table, clean exit.
  int rc = -1;
  const std::string out = run_capture(
      "{ printf 'group core: count\\n'; sleep 2; } | "
      "timeout --preserve-status -s INT 1 " +
          tool("flxt_query") + " " + trace_path + " " + syms_path +
          " --repl --csv",
      &rc);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("core,count"), std::string::npos) << out;
  EXPECT_NE(out.find("interrupted"), std::string::npos) << out;
}

TEST_F(ToolsFixture, QueryFollowFlagValidation) {
  int rc = 0;
  // --repl and --follow are exclusive.
  std::string out = run_capture(tool("flxt_query") + " " + trace_path + " " +
                                    syms_path + " --repl --follow",
                                &rc);
  EXPECT_NE(rc, 0);
  EXPECT_NE(out.find("exclusive"), std::string::npos) << out;
  // --follow needs a query.
  run_capture(tool("flxt_query") + " " + trace_path + " " + syms_path +
                  " --follow",
              &rc);
  EXPECT_NE(rc, 0);
  // A bad pipeline in follow mode is a parse error (exit 2), reported
  // before any polling starts.
  out = run_capture(tool("flxt_query") + " " + trace_path + " " + syms_path +
                        " 'group bogus: count' --follow",
                    &rc);
  EXPECT_NE(rc, 0);
  EXPECT_NE(out.find("at offset"), std::string::npos) << out;
}

TEST_F(ToolsFixture, HubIngestStatusVerifyAndFederatedQuery) {
  // The catalog round trip as an operator drives it: drop a v2 trace
  // into the tree, ingest, audit, then run a federated query whose
  // answer matches the plain single-trace evaluation bit for bit.
  const std::string dir = fresh_dir("hub_cat");
  int rc = -1;
  run_capture(tool("flxt_convert") + " " + trace_path + " " + dir +
                  "/m1.flxt --to-v2 --chunk-records 16",
              &rc);
  ASSERT_EQ(rc, 0);

  std::string out =
      run_capture(tool("flxt_hub") + " ingest " + dir + " " + syms_path, &rc);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("1 registered"), std::string::npos) << out;

  out = run_capture(tool("flxt_hub") + " status " + dir + " " + syms_path,
                    &rc);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("1 ok, 0 salvaged, 0 quarantined"), std::string::npos)
      << out;
  EXPECT_NE(out.find("indexed"), std::string::npos) << out;

  out = run_capture(tool("flxt_hub") + " verify " + dir + " " + syms_path,
                    &rc);
  EXPECT_EQ(rc, 0) << out;

  // run_capture merges stderr; a subshell keeps the ledger out of the
  // comparison so only the answers themselves are compared.
  const std::string plain = run_capture(
      "( " + tool("flxt_query") + " " + trace_path + " " + syms_path +
          " 'group func: count' --csv 2>/dev/null )",
      &rc);
  EXPECT_EQ(rc, 0);
  out = run_capture("( " + tool("flxt_query") + " " + dir + " " + syms_path +
                        " 'group func: count' --catalog --csv 2>/dev/null )",
                    &rc);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_EQ(out, plain);
  // The ledger goes to stderr, not into the answer.
  out = run_capture(tool("flxt_query") + " " + dir + " " + syms_path +
                        " 'group func: count' --catalog --csv",
                    &rc);
  EXPECT_NE(out.find("traces: 1 ok, 0 salvaged"), std::string::npos) << out;

  // A second ingest of the same tree is a no-op, not a re-register.
  out = run_capture(tool("flxt_hub") + " ingest " + dir + " " + syms_path,
                    &rc);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("1 unchanged"), std::string::npos) << out;
}

TEST_F(ToolsFixture, HubCrashMidIngestLeavesRecoverableCatalog) {
  // kill -9 at the first durability checkpoint: the journal replays on
  // the next open and the interrupted ingest simply runs again.
  const std::string dir = fresh_dir("hub_crash");
  int rc = -1;
  run_capture(tool("flxt_convert") + " " + trace_path + " " + dir +
                  "/m1.flxt --to-v2 --chunk-records 16",
              &rc);
  ASSERT_EQ(rc, 0);

  std::string out = run_capture(tool("flxt_hub") + " ingest " + dir + " " +
                                    syms_path + " --crash-after 1",
                                &rc);
  EXPECT_NE(rc, 0) << out; // the "kill" exits 137

  out = run_capture(tool("flxt_hub") + " ingest " + dir + " " + syms_path,
                    &rc);
  EXPECT_EQ(rc, 0) << out;
  out = run_capture(tool("flxt_hub") + " verify " + dir + " " + syms_path,
                    &rc);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("1 checked, 0 missing, 0 drifted"), std::string::npos)
      << out;
}

TEST_F(ToolsFixture, RecoverRebuildIndexRefreshesSidecar) {
  const std::string v2_path = fresh_dir("rebuild") + "/trace.flxt";
  int rc = -1;
  run_capture(tool("flxt_convert") + " " + trace_path + " " + v2_path +
                  " --to-v2 --chunk-records 16",
              &rc);
  ASSERT_EQ(rc, 0);

  std::string out = run_capture(tool("flxt_recover") + " " + v2_path + " " +
                                    syms_path + " --rebuild-index",
                                &rc);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("rebuilt"), std::string::npos) << out;
  EXPECT_TRUE(std::ifstream(v2_path + ".flxi").good());

  // A second pass finds the sidecar current and leaves it alone.
  out = run_capture(tool("flxt_recover") + " " + v2_path + " " + syms_path +
                        " --rebuild-index",
                    &rc);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("fresh"), std::string::npos) << out;

  // Rebuild mode needs both the trace and the symbols.
  run_capture(tool("flxt_recover") + " " + v2_path + " --rebuild-index", &rc);
  EXPECT_NE(rc, 0);
}

TEST_F(ToolsFixture, BytesFlagsParseSuffixesAndRejectOverflow) {
  const std::string dir = fresh_dir("hub_bytes");
  int rc = -1;
  // Suffixed byte counts parse (an empty catalog retains nothing).
  std::string out = run_capture(tool("flxt_hub") + " retain " + dir + " " +
                                    syms_path + " --retain-bytes 512M",
                                &rc);
  EXPECT_EQ(rc, 0) << out;
  out = run_capture(tool("flxt_hub") + " compact " + dir + " " + syms_path +
                        " --compact-under 4G",
                    &rc);
  EXPECT_EQ(rc, 0) << out;
  // Overflow is rejected up front, not wrapped into a tiny budget.
  out = run_capture(tool("flxt_hub") + " retain " + dir + " " + syms_path +
                        " --retain-bytes 99999999999G",
                    &rc);
  EXPECT_NE(rc, 0);
  EXPECT_NE(out.find("out of range"), std::string::npos) << out;
  // And so is a malformed suffix.
  out = run_capture(tool("flxt_hub") + " retain " + dir + " " + syms_path +
                        " --retain-bytes 12Q",
                    &rc);
  EXPECT_NE(rc, 0);
  EXPECT_NE(out.find("byte count"), std::string::npos) << out;
}

} // namespace
} // namespace fluxtrace
