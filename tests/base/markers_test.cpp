#include "fluxtrace/base/markers.hpp"

#include <gtest/gtest.h>

namespace fluxtrace {
namespace {

TEST(MarkerLog, RecordsInOrder) {
  MarkerLog log;
  log.record(0, 100, 1, MarkerKind::Enter);
  log.record(0, 200, 1, MarkerKind::Leave);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.markers()[0].tsc, 100u);
  EXPECT_EQ(log.markers()[0].kind, MarkerKind::Enter);
  EXPECT_EQ(log.markers()[1].kind, MarkerKind::Leave);
}

TEST(MarkerLog, ForCoreFilters) {
  MarkerLog log;
  log.record(0, 10, 1, MarkerKind::Enter);
  log.record(1, 20, 2, MarkerKind::Enter);
  log.record(0, 30, 1, MarkerKind::Leave);
  const auto c0 = log.for_core(0);
  ASSERT_EQ(c0.size(), 2u);
  EXPECT_EQ(c0[0].item, 1u);
  EXPECT_EQ(c0[1].tsc, 30u);
  EXPECT_EQ(log.for_core(1).size(), 1u);
  EXPECT_TRUE(log.for_core(7).empty());
}

TEST(MarkerLog, Clear) {
  MarkerLog log;
  log.record(0, 10, 1, MarkerKind::Enter);
  log.clear();
  EXPECT_TRUE(log.empty());
}

} // namespace
} // namespace fluxtrace
