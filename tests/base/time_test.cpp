#include "fluxtrace/base/time.hpp"

#include <gtest/gtest.h>

namespace fluxtrace {
namespace {

TEST(CpuSpec, CyclesFromNsAtThreeGhz) {
  CpuSpec s;
  s.freq_ghz = 3.0;
  EXPECT_EQ(s.cycles(1000.0), 3000u); // 1 us = 3000 cycles
  EXPECT_EQ(s.cycles(250.0), 750u);   // one PEBS assist
  EXPECT_EQ(s.cycles(0.0), 0u);
}

TEST(CpuSpec, NsRoundTrip) {
  CpuSpec s;
  s.freq_ghz = 3.0;
  EXPECT_DOUBLE_EQ(s.ns(3000), 1000.0);
  EXPECT_DOUBLE_EQ(s.us(3000), 1.0);
}

TEST(CpuSpec, CyclesRoundsToNearest) {
  CpuSpec s;
  s.freq_ghz = 2.0;
  EXPECT_EQ(s.cycles(0.3), 1u); // 0.6 cycles rounds up
  EXPECT_EQ(s.cycles(0.2), 0u); // 0.4 cycles rounds down
}

TEST(CpuSpec, UopCycles) {
  CpuSpec s;
  s.cycles_per_uop = 0.4;
  EXPECT_EQ(s.uop_cycles(10), 4u);
  EXPECT_EQ(s.uop_cycles(8000), 3200u); // the paper's R=8000 at ~1.07 us
  EXPECT_EQ(s.uop_cycles(0), 0u);
}

TEST(CpuSpec, UopCyclesRounds) {
  CpuSpec s;
  s.cycles_per_uop = 0.4;
  EXPECT_EQ(s.uop_cycles(1), 0u); // 0.4 rounds down
  EXPECT_EQ(s.uop_cycles(2), 1u); // 0.8 rounds up
}

class CpuSpecFreqTest : public ::testing::TestWithParam<double> {};

TEST_P(CpuSpecFreqTest, NsCyclesInverse) {
  CpuSpec s;
  s.freq_ghz = GetParam();
  for (const double ns : {1.0, 250.0, 1000.0, 9500.0, 1e6}) {
    const Tsc c = s.cycles(ns);
    EXPECT_NEAR(s.ns(c), ns, 1.0 / s.freq_ghz + 1e-9)
        << "freq=" << s.freq_ghz << " ns=" << ns;
  }
}

INSTANTIATE_TEST_SUITE_P(Frequencies, CpuSpecFreqTest,
                         ::testing::Values(1.0, 2.0, 2.6, 3.0, 3.7, 4.2));

} // namespace
} // namespace fluxtrace
