#include "fluxtrace/base/flow.hpp"

#include <gtest/gtest.h>

namespace fluxtrace {
namespace {

TEST(Ipv4, ParsesDottedQuad) {
  EXPECT_EQ(ipv4("192.168.10.4"), 0xc0a80a04u);
  EXPECT_EQ(ipv4("0.0.0.1"), 1u);
  EXPECT_EQ(ipv4("255.255.255.255"), 0xffffffffu);
}

TEST(Ipv4, ParseIsConstexpr) {
  static_assert(ipv4("10.0.0.1") == 0x0a000001u);
  SUCCEED();
}

TEST(Ipv4, RejectsMalformed) {
  EXPECT_EQ(ipv4("256.1.1.1"), 0u);
  EXPECT_EQ(ipv4("1.2.3"), 0u);
  EXPECT_EQ(ipv4("1.2.3.4.5"), 0u);
  EXPECT_EQ(ipv4("a.b.c.d"), 0u);
}

TEST(Ipv4, FormatRoundTrip) {
  for (const char* s : {"192.168.10.4", "10.0.0.1", "172.16.254.3"}) {
    EXPECT_EQ(ipv4_to_string(ipv4(s)), s);
  }
}

TEST(FlowKey, KeyBytesLayout) {
  // §IV-C1 design (3): src addr (4B), dst addr (4B), src+dst ports (4B).
  const FlowKey k{ipv4("192.168.10.4"), ipv4("192.168.11.5"), 10001, 10002};
  const auto b = k.key_bytes();
  EXPECT_EQ(b[0], 192);
  EXPECT_EQ(b[1], 168);
  EXPECT_EQ(b[2], 10);
  EXPECT_EQ(b[3], 4);
  EXPECT_EQ(b[4], 192);
  EXPECT_EQ(b[5], 168);
  EXPECT_EQ(b[6], 11);
  EXPECT_EQ(b[7], 5);
  EXPECT_EQ((b[8] << 8) | b[9], 10001);
  EXPECT_EQ((b[10] << 8) | b[11], 10002);
}

TEST(FlowKey, Equality) {
  const FlowKey a{1, 2, 3, 4};
  FlowKey b = a;
  EXPECT_EQ(a, b);
  b.dst_port = 5;
  EXPECT_NE(a, b);
}

} // namespace
} // namespace fluxtrace
