#include "fluxtrace/base/symbols.hpp"

#include <gtest/gtest.h>

namespace fluxtrace {
namespace {

TEST(SymbolTable, AddAssignsContiguousRanges) {
  SymbolTable t;
  const SymbolId a = t.add("f1", 0x100);
  const SymbolId b = t.add("f2", 0x200);
  EXPECT_EQ(t[a].lo, SymbolTable::kTextBase);
  EXPECT_EQ(t[a].hi, SymbolTable::kTextBase + 0x100);
  EXPECT_EQ(t[b].lo, t[a].hi);
  EXPECT_EQ(t[b].size(), 0x200u);
}

TEST(SymbolTable, ResolveInsideRange) {
  SymbolTable t;
  const SymbolId a = t.add("f1", 0x100);
  const SymbolId b = t.add("f2", 0x100);
  EXPECT_EQ(t.resolve(t[a].lo), a);
  EXPECT_EQ(t.resolve(t[a].hi - 1), a);
  EXPECT_EQ(t.resolve(t[b].lo), b);
  EXPECT_EQ(t.resolve(t[b].hi - 1), b);
}

TEST(SymbolTable, ResolveOutsideAnyRange) {
  SymbolTable t;
  t.add("f1", 0x100);
  EXPECT_FALSE(t.resolve(0).has_value());
  EXPECT_FALSE(t.resolve(SymbolTable::kTextBase - 1).has_value());
  EXPECT_FALSE(t.resolve(SymbolTable::kTextBase + 0x100).has_value());
}

TEST(SymbolTable, ResolveOnEmptyTable) {
  SymbolTable t;
  EXPECT_TRUE(t.empty());
  EXPECT_FALSE(t.resolve(SymbolTable::kTextBase).has_value());
}

TEST(SymbolTable, FindByName) {
  SymbolTable t;
  t.add("alpha");
  const SymbolId b = t.add("beta");
  EXPECT_EQ(t.find("beta"), b);
  EXPECT_FALSE(t.find("gamma").has_value());
}

TEST(SymbolTable, FindReturnsFirstOfDuplicates) {
  SymbolTable t;
  const SymbolId first = t.add("dup");
  t.add("dup");
  EXPECT_EQ(t.find("dup"), first);
}

TEST(SymbolTable, IpAtFractions) {
  SymbolTable t;
  const SymbolId a = t.add("f", 0x1000);
  EXPECT_EQ(t.ip_at(a, 0.0), t[a].lo);
  EXPECT_EQ(t.ip_at(a, 0.5), t[a].lo + 0x800);
  // frac >= 1 clamps inside the range.
  EXPECT_LT(t.ip_at(a, 1.0), t[a].hi);
  EXPECT_GE(t.ip_at(a, 1.0), t[a].lo);
  // Negative clamps to the start.
  EXPECT_EQ(t.ip_at(a, -0.5), t[a].lo);
}

TEST(SymbolTable, IpAtAlwaysResolvesBack) {
  SymbolTable t;
  const SymbolId a = t.add("f1", 0x37);  // odd sizes
  const SymbolId b = t.add("f2", 0x211);
  const SymbolId c = t.add("f3", 0x1);
  for (const SymbolId id : {a, b, c}) {
    for (const double frac : {0.0, 0.25, 0.5, 0.75, 0.999, 1.0}) {
      EXPECT_EQ(t.resolve(t.ip_at(id, frac)), id)
          << "id=" << id << " frac=" << frac;
    }
  }
}

class SymbolTableScaleTest : public ::testing::TestWithParam<int> {};

TEST_P(SymbolTableScaleTest, ManySymbolsResolveCorrectly) {
  const int n = GetParam();
  SymbolTable t;
  std::vector<SymbolId> ids;
  for (int i = 0; i < n; ++i) {
    ids.push_back(t.add("fn_" + std::to_string(i), 0x10 + (i % 7) * 0x30));
  }
  EXPECT_EQ(t.size(), static_cast<std::size_t>(n));
  for (const SymbolId id : ids) {
    EXPECT_EQ(t.resolve(t[id].lo), id);
    EXPECT_EQ(t.resolve(t[id].hi - 1), id);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SymbolTableScaleTest,
                         ::testing::Values(1, 2, 10, 100, 1000));

} // namespace
} // namespace fluxtrace
