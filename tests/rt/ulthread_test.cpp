#include "fluxtrace/rt/ulthread.hpp"

#include <gtest/gtest.h>

namespace fluxtrace::rt {
namespace {

struct UlFixture : ::testing::Test {
  UlFixture() {
    f = symtab.add("work_fn", 0x1000);
    sched = symtab.add("ul_sched_switch", 0x200);
  }

  UlWork work(ItemId id, std::uint64_t uops) {
    return UlWork{id, {sim::ExecBlock{f, uops, 0, {}}}};
  }

  SymbolTable symtab;
  SymbolId f, sched;
};

TEST_F(UlFixture, SingleShortItemRunsToCompletion) {
  sim::Machine m(symtab);
  UlSchedulerConfig cfg;
  cfg.timeslice = 10000;
  cfg.scheduler_symbol = sched;
  UlScheduler s(cfg);
  s.submit(work(1, 100)); // 40 cycles ≪ timeslice
  m.attach(0, s);
  const auto r = m.run();
  EXPECT_TRUE(r.all_done);
  EXPECT_EQ(s.completed(), 1u);
  EXPECT_EQ(s.context_switches(), 0u);
}

TEST_F(UlFixture, LongItemIsPreempted) {
  sim::Machine m(symtab);
  UlSchedulerConfig cfg;
  cfg.timeslice = 1000; // 2500 uops per slice at 0.4 c/uop
  cfg.scheduler_symbol = sched;
  UlScheduler s(cfg);
  s.submit(work(1, 10000)); // needs 4 slices
  m.attach(0, s);
  m.run();
  EXPECT_EQ(s.completed(), 1u);
  EXPECT_GE(s.context_switches(), 3u);
}

TEST_F(UlFixture, LightItemFinishesBeforeHeavyOne) {
  // The defining property of timer-switching (§III-C): a light item can
  // complete while a heavy one is still in flight.
  sim::Machine m(symtab);
  UlSchedulerConfig cfg;
  cfg.timeslice = 1000;
  cfg.scheduler_symbol = sched;
  UlScheduler s(cfg);
  s.submit(work(1, 50000)); // heavy, submitted first
  s.submit(work(2, 500));   // light
  m.attach(0, s);
  m.run();

  // Light item's Leave marker must precede the heavy item's.
  Tsc leave_heavy = 0, leave_light = 0;
  for (const Marker& mk : m.marker_log().markers()) {
    if (mk.kind != MarkerKind::Leave) continue;
    if (mk.item == 1) leave_heavy = mk.tsc;
    if (mk.item == 2) leave_light = mk.tsc;
  }
  ASSERT_GT(leave_heavy, 0u);
  ASSERT_GT(leave_light, 0u);
  EXPECT_LT(leave_light, leave_heavy);
}

TEST_F(UlFixture, R13CarriesTheItemIdThroughSwitches) {
  sim::Machine m(symtab);
  sim::PebsConfig pc;
  pc.reset = 500;
  pc.sample_cost_ns = 0.0;
  m.cpu(0).enable_pebs(pc);

  UlSchedulerConfig cfg;
  cfg.timeslice = 800;
  cfg.scheduler_symbol = sched;
  UlScheduler s(cfg);
  s.submit(work(11, 20000));
  s.submit(work(22, 20000));
  m.attach(0, s);
  m.run();
  m.flush_samples();

  // Every sample inside work_fn must carry one of the two item ids in
  // R13; samples inside the scheduler must carry the no-item sentinel.
  std::size_t work_samples = 0;
  for (const PebsSample& smp : m.pebs_driver().samples()) {
    const auto sym = symtab.resolve(smp.ip);
    ASSERT_TRUE(sym.has_value());
    const ItemId id = smp.regs.get(kItemIdReg);
    if (*sym == f) {
      EXPECT_TRUE(id == 11 || id == 22) << "ip in work_fn, R13=" << id;
      ++work_samples;
    } else if (*sym == sched) {
      EXPECT_EQ(id, kNoItem);
    }
  }
  EXPECT_GT(work_samples, 10u);
}

TEST_F(UlFixture, InterleavingAttributesWorkToBothItems) {
  sim::Machine m(symtab);
  sim::PebsConfig pc;
  pc.reset = 200;
  pc.sample_cost_ns = 0.0;
  m.cpu(0).enable_pebs(pc);

  UlSchedulerConfig cfg;
  cfg.timeslice = 500;
  cfg.scheduler_symbol = sched;
  UlScheduler s(cfg);
  s.submit(work(1, 15000));
  s.submit(work(2, 15000));
  m.attach(0, s);
  m.run();
  m.flush_samples();

  std::size_t item1 = 0, item2 = 0;
  for (const PebsSample& smp : m.pebs_driver().samples()) {
    if (smp.regs.get(kItemIdReg) == 1) ++item1;
    if (smp.regs.get(kItemIdReg) == 2) ++item2;
  }
  // Equal work → roughly equal sample counts.
  EXPECT_GT(item1, 20u);
  EXPECT_GT(item2, 20u);
  const double ratio = static_cast<double>(item1) / static_cast<double>(item2);
  EXPECT_GT(ratio, 0.7);
  EXPECT_LT(ratio, 1.4);
}

TEST_F(UlFixture, MemoryBlocksSplitProportionally) {
  // A preempted block must touch its remaining addresses when resumed,
  // not restart from the beginning.
  sim::Machine m(symtab);
  UlSchedulerConfig cfg;
  cfg.timeslice = 2000;
  cfg.scheduler_symbol = sched;
  UlScheduler s(cfg);
  UlWork w;
  w.item = 5;
  w.blocks = {sim::ExecBlock{f, 40000, 0, sim::MemPattern{0x100000, 400, 64}}};
  s.submit(std::move(w));
  m.attach(0, s);
  m.run();
  // All 400 distinct lines were loaded exactly once → 400 cold misses.
  EXPECT_EQ(m.cpu(0).stats().events.get(HwEvent::LoadsRetired), 400u);
  EXPECT_EQ(m.cpu(0).stats().events.get(HwEvent::CacheMisses), 400u);
}

TEST_F(UlFixture, MarkersOverlapUnderPreemption) {
  // The failure mode §V-A fixes: with preemption, marker windows of
  // different items overlap in time on one core.
  sim::Machine m(symtab);
  UlSchedulerConfig cfg;
  cfg.timeslice = 500;
  cfg.scheduler_symbol = sched;
  UlScheduler s(cfg);
  s.submit(work(1, 20000));
  s.submit(work(2, 20000));
  m.attach(0, s);
  m.run();

  Tsc enter1 = 0, leave1 = 0, enter2 = 0, leave2 = 0;
  for (const Marker& mk : m.marker_log().markers()) {
    if (mk.item == 1 && mk.kind == MarkerKind::Enter) enter1 = mk.tsc;
    if (mk.item == 1 && mk.kind == MarkerKind::Leave) leave1 = mk.tsc;
    if (mk.item == 2 && mk.kind == MarkerKind::Enter) enter2 = mk.tsc;
    if (mk.item == 2 && mk.kind == MarkerKind::Leave) leave2 = mk.tsc;
  }
  // Item 2 entered before item 1 left, and vice versa: overlapping windows.
  EXPECT_LT(enter2, leave1);
  EXPECT_LT(enter1, leave2);
}

} // namespace
} // namespace fluxtrace::rt
