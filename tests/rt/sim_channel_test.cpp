#include "fluxtrace/rt/sim_channel.hpp"

#include <gtest/gtest.h>

namespace fluxtrace::rt {
namespace {

TEST(SimChannel, GatesOnPushTime) {
  SimChannel<int> ch(8);
  EXPECT_TRUE(ch.push(42, /*now=*/1000));
  // A consumer whose clock has not reached the push time sees nothing —
  // this is what keeps the discrete-event schedule causal.
  EXPECT_FALSE(ch.pop(999).has_value());
  EXPECT_FALSE(ch.empty());
  const auto v = ch.pop(1000);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
}

TEST(SimChannel, FifoWithMonotoneTimes) {
  SimChannel<int> ch(8);
  ch.push(1, 10);
  ch.push(2, 20);
  ch.push(3, 30);
  EXPECT_EQ(ch.size(), 3u);
  EXPECT_EQ(ch.pop(100), 1);
  EXPECT_EQ(ch.pop(100), 2);
  EXPECT_EQ(ch.pop(100), 3);
  EXPECT_TRUE(ch.empty());
}

TEST(SimChannel, HeadBlocksTail) {
  SimChannel<int> ch(8);
  ch.push(1, 1000);
  ch.push(2, 10); // pushed "later" in ring order despite smaller stamp
  // FIFO order is preserved: the head's gate applies first.
  EXPECT_FALSE(ch.pop(500).has_value());
  EXPECT_EQ(ch.pop(1000), 1);
  EXPECT_EQ(ch.pop(1000), 2);
}

TEST(SimChannel, HeadReady) {
  SimChannel<int> ch(8);
  EXPECT_FALSE(ch.head_ready().has_value());
  ch.push(7, 123);
  EXPECT_EQ(ch.head_ready(), 123u);
}

TEST(SimChannel, CapacityBound) {
  SimChannel<int> ch(2);
  std::size_t pushed = 0;
  while (ch.push(1, 0)) ++pushed;
  EXPECT_EQ(pushed, ch.capacity());
}

} // namespace
} // namespace fluxtrace::rt
