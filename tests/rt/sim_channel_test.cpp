#include "fluxtrace/rt/sim_channel.hpp"

#include <gtest/gtest.h>

namespace fluxtrace::rt {
namespace {

TEST(SimChannel, GatesOnPushTime) {
  SimChannel<int> ch(8);
  EXPECT_TRUE(ch.push(42, /*now=*/1000));
  // A consumer whose clock has not reached the push time sees nothing —
  // this is what keeps the discrete-event schedule causal.
  EXPECT_FALSE(ch.pop(999).has_value());
  EXPECT_FALSE(ch.empty());
  const auto v = ch.pop(1000);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
}

TEST(SimChannel, FifoWithMonotoneTimes) {
  SimChannel<int> ch(8);
  ch.push(1, 10);
  ch.push(2, 20);
  ch.push(3, 30);
  EXPECT_EQ(ch.size(), 3u);
  EXPECT_EQ(ch.pop(100), 1);
  EXPECT_EQ(ch.pop(100), 2);
  EXPECT_EQ(ch.pop(100), 3);
  EXPECT_TRUE(ch.empty());
}

TEST(SimChannel, HeadBlocksTail) {
  SimChannel<int> ch(8);
  ch.push(1, 1000);
  ch.push(2, 10); // pushed "later" in ring order despite smaller stamp
  // FIFO order is preserved: the head's gate applies first.
  EXPECT_FALSE(ch.pop(500).has_value());
  EXPECT_EQ(ch.pop(1000), 1);
  EXPECT_EQ(ch.pop(1000), 2);
}

TEST(SimChannel, HeadReady) {
  SimChannel<int> ch(8);
  EXPECT_FALSE(ch.head_ready().has_value());
  ch.push(7, 123);
  EXPECT_EQ(ch.head_ready(), 123u);
}

TEST(SimChannel, CapacityBound) {
  SimChannel<int> ch(2);
  std::size_t pushed = 0;
  while (ch.push(1, 0)) ++pushed;
  EXPECT_EQ(pushed, ch.capacity());
}

// --- wait-edge probe (ISSUE 8) ----------------------------------------

TEST(SimChannel, WaitProbeRecordsFullEpisodeAtVirtualTime) {
  WaitLog log;
  SimChannel<int> ch(2);
  ch.set_wait_probe(ChannelWaitProbe{&log, /*resource=*/11,
                                     /*producer_core=*/1,
                                     /*consumer_core=*/2});
  std::size_t fill = 0;
  while (ch.push(1, /*now=*/fill)) ++fill;
  // The terminating failed push opened the episode at its own time.
  EXPECT_TRUE(log.edges().empty());
  EXPECT_FALSE(ch.push(9, 50, /*item=*/5)); // still the same episode
  ASSERT_TRUE(ch.pop(100).has_value());
  EXPECT_TRUE(ch.push(9, 120)); // closes
  ASSERT_EQ(log.edges().size(), 1u);
  const WaitEdge& e = log.edges()[0];
  EXPECT_EQ(e.enter, fill) << "episode opened by the first rejection";
  EXPECT_EQ(e.leave, 120u);
  EXPECT_EQ(e.item, kNoItem) << "first rejection carried no item";
  EXPECT_EQ(e.waiter_core, 1u);
  EXPECT_EQ(e.holder_core, 2u);
  EXPECT_EQ(e.resource, 11u);
  EXPECT_EQ(e.cause, WaitCause::RingFull);
}

TEST(SimChannel, WaitProbeCountsTimeGatedPopAsStarvation) {
  WaitLog log;
  SimChannel<int> ch(8);
  ch.set_wait_probe(ChannelWaitProbe{&log, 4, 1, 2});
  ch.push(42, /*now=*/1000);
  // The element exists but is not yet visible at consumer time 500 — to
  // the consumer that is the same starvation as an empty ring.
  EXPECT_FALSE(ch.pop(500).has_value());
  EXPECT_FALSE(ch.pop(700).has_value());
  ASSERT_TRUE(ch.pop(1000).has_value());
  ASSERT_EQ(log.edges().size(), 1u);
  const WaitEdge& e = log.edges()[0];
  EXPECT_EQ(e.enter, 500u);
  EXPECT_EQ(e.leave, 1000u);
  EXPECT_EQ(e.waiter_core, 2u);
  EXPECT_EQ(e.holder_core, 1u);
  EXPECT_EQ(e.cause, WaitCause::RingEmpty);
}

TEST(SimChannel, WaitProbeDoesNotDoubleCountThroughInnerRing) {
  // The channel tracks its own episodes against virtual time; the inner
  // ring's probe stays uninstalled, so one stall yields exactly one edge.
  WaitLog log;
  SimChannel<int> ch(2);
  ch.set_wait_probe(ChannelWaitProbe{&log, 1, 0, 0});
  Tsc t = 10;
  while (ch.push(1, t)) t += 10; // fill, then one rejection opens full
  ASSERT_TRUE(ch.pop(100).has_value());
  EXPECT_TRUE(ch.push(1, 101)); // closes the full episode
  while (ch.pop(101).has_value()) {
  } // the terminating failed pop opens the empty episode
  EXPECT_FALSE(ch.pop(150).has_value()); // same episode: no reopen
  EXPECT_TRUE(ch.push(2, 160));
  ASSERT_TRUE(ch.pop(170).has_value()); // closes the empty episode
  EXPECT_EQ(log.edges().size(), 2u); // one full + one empty, nothing more
}

} // namespace
} // namespace fluxtrace::rt
