// rt::ThreadPool: the work-stealing pool under ParallelIntegrator and
// the parallel trace decoders. The contract under test: every submitted
// task runs exactly once, results and exceptions travel through the
// futures, parallel_for covers every index, and destruction drains the
// queue instead of dropping work.
#include "fluxtrace/rt/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace fluxtrace::rt {
namespace {

TEST(ThreadPool, ReportsRequestedSize) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ZeroThreadsPicksHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, SubmitReturnsValueThroughFuture) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto fut = pool.submit([]() -> int {
    throw std::runtime_error("task failed");
  });
  EXPECT_THROW((void)fut.get(), std::runtime_error);
}

TEST(ThreadPool, ManySmallTasksAllRunExactlyOnce) {
  constexpr int kTasks = 10000;
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4);
    std::vector<std::future<void>> futs;
    futs.reserve(kTasks);
    for (int i = 0; i < kTasks; ++i) {
      futs.push_back(pool.submit([&ran] {
        ran.fetch_add(1, std::memory_order_relaxed);
      }));
    }
    for (auto& f : futs) f.get();
  }
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 5000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForEmptyRangeIsANoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ParallelForRethrowsAfterAllTasksFinish) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.parallel_for(64,
                        [&](std::size_t i) {
                          ran.fetch_add(1, std::memory_order_relaxed);
                          if (i == 13) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The failing iteration must not abandon its siblings mid-flight: all
  // 64 bodies ran before the rethrow.
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, DestructorDrainsQueuedWork) {
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futs;
  {
    ThreadPool pool(1); // one worker: tasks certainly queue up
    for (int i = 0; i < 100; ++i) {
      futs.push_back(pool.submit([&ran] {
        ran.fetch_add(1, std::memory_order_relaxed);
      }));
    }
  } // destructor runs here
  for (auto& f : futs) f.get(); // every future must be satisfied
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, NestedSubmitFromWorkerCompletes) {
  ThreadPool pool(2);
  auto outer = pool.submit([&pool] {
    return pool.submit([] { return 7; }).get();
  });
  EXPECT_EQ(outer.get(), 7);
}

} // namespace
} // namespace fluxtrace::rt
