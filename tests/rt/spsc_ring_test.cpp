#include "fluxtrace/rt/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <numeric>
#include <thread>
#include <vector>

namespace fluxtrace::rt {
namespace {

TEST(SpscRing, StartsEmpty) {
  SpscRing<int> r(8);
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.size(), 0u);
  EXPECT_FALSE(r.pop().has_value());
  EXPECT_EQ(r.front(), nullptr);
}

TEST(SpscRing, PushPopFifo) {
  SpscRing<int> r(8);
  EXPECT_TRUE(r.push(1));
  EXPECT_TRUE(r.push(2));
  EXPECT_TRUE(r.push(3));
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(r.pop(), 1);
  EXPECT_EQ(r.pop(), 2);
  EXPECT_EQ(r.pop(), 3);
  EXPECT_TRUE(r.empty());
}

TEST(SpscRing, FrontPeeksWithoutDequeue) {
  SpscRing<int> r(8);
  r.push(42);
  ASSERT_NE(r.front(), nullptr);
  EXPECT_EQ(*r.front(), 42);
  EXPECT_EQ(r.size(), 1u);
}

TEST(SpscRing, CapacityIsAtLeastRequested) {
  for (const std::size_t want : {1u, 2u, 3u, 100u, 1000u, 1024u}) {
    SpscRing<int> r(want);
    EXPECT_GE(r.capacity(), want) << "requested " << want;
  }
}

TEST(SpscRing, FullRejectsPush) {
  SpscRing<int> r(4);
  std::size_t pushed = 0;
  while (r.push(static_cast<int>(pushed))) ++pushed;
  EXPECT_EQ(pushed, r.capacity());
  EXPECT_FALSE(r.push(999));
  // Popping one frees one slot.
  EXPECT_TRUE(r.pop().has_value());
  EXPECT_TRUE(r.push(999));
}

TEST(SpscRing, WrapsAroundManyTimes) {
  SpscRing<int> r(4);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(r.push(i));
    ASSERT_EQ(r.pop(), i);
  }
}

TEST(SpscRing, MoveOnlyPayload) {
  SpscRing<std::unique_ptr<int>> r(4);
  r.push(std::make_unique<int>(5));
  auto p = r.pop();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(**p, 5);
}

// Model-based test: a random single-threaded op sequence must behave like
// a bounded std::deque.
class SpscRingModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpscRingModelTest, MatchesDequeModel) {
  std::uint64_t state = GetParam();
  auto rnd = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  SpscRing<int> ring(16);
  std::deque<int> model;
  const std::size_t cap = ring.capacity();
  for (int i = 0; i < 20000; ++i) {
    if (rnd() % 2 == 0) {
      const int v = static_cast<int>(rnd() % 1000);
      const bool ok = ring.push(v);
      EXPECT_EQ(ok, model.size() < cap);
      if (ok) model.push_back(v);
    } else {
      const auto v = ring.pop();
      if (model.empty()) {
        EXPECT_FALSE(v.has_value());
      } else {
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(*v, model.front());
        model.pop_front();
      }
    }
    EXPECT_EQ(ring.size(), model.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpscRingModelTest,
                         ::testing::Values(1, 42, 0xdeadbeef, 777, 31337));

TEST(SpscRing, BurstPushPop) {
  SpscRing<int> r(16);
  const int src[5] = {1, 2, 3, 4, 5};
  EXPECT_EQ(r.push_burst(src, 5), 5u);
  int dst[8] = {};
  EXPECT_EQ(r.pop_burst(dst, 8), 5u); // partial burst: all available
  for (int i = 0; i < 5; ++i) EXPECT_EQ(dst[i], src[i]);
  EXPECT_TRUE(r.empty());
}

TEST(SpscRing, BurstPushRespectsCapacity) {
  SpscRing<int> r(4);
  std::vector<int> src(100, 7);
  const std::size_t pushed = r.push_burst(src.data(), src.size());
  EXPECT_EQ(pushed, r.capacity());
  EXPECT_EQ(r.size(), r.capacity());
  // A second burst push fits nothing.
  EXPECT_EQ(r.push_burst(src.data(), 1), 0u);
}

TEST(SpscRing, BurstInterleavesWithSingleOps) {
  SpscRing<int> r(8);
  r.push(1);
  const int src[2] = {2, 3};
  EXPECT_EQ(r.push_burst(src, 2), 2u);
  EXPECT_EQ(r.pop(), 1);
  int dst[2];
  EXPECT_EQ(r.pop_burst(dst, 2), 2u);
  EXPECT_EQ(dst[0], 2);
  EXPECT_EQ(dst[1], 3);
}

TEST(SpscRing, BurstWrapsAround) {
  SpscRing<int> r(4);
  int dst[4];
  for (int round = 0; round < 50; ++round) {
    const int src[3] = {round, round + 1, round + 2};
    ASSERT_EQ(r.push_burst(src, 3), 3u);
    ASSERT_EQ(r.pop_burst(dst, 3), 3u);
    for (int i = 0; i < 3; ++i) ASSERT_EQ(dst[i], round + i);
  }
}

// Overflow accounting: every rejected element lands in dropped(), the
// ledger a supervising watchdog reconciles unrecorded samples against.
TEST(SpscRing, DroppedCountsEachRejectedPush) {
  SpscRing<int> r(4);
  EXPECT_EQ(r.dropped(), 0u);
  while (r.push(1)) {
  }
  EXPECT_EQ(r.dropped(), 1u); // the terminating failed push
  for (int i = 0; i < 9; ++i) EXPECT_FALSE(r.push(i));
  EXPECT_EQ(r.dropped(), 10u);
  // Accepted pushes never touch the counter.
  ASSERT_TRUE(r.pop().has_value());
  EXPECT_TRUE(r.push(2));
  EXPECT_EQ(r.dropped(), 10u);
}

TEST(SpscRing, DroppedCountsBurstShortfall) {
  SpscRing<int> r(4);
  std::vector<int> src(10, 7);
  const std::size_t cap = r.capacity();
  EXPECT_EQ(r.push_burst(src.data(), src.size()), cap);
  EXPECT_EQ(r.dropped(), 10u - cap);
  // A full burst into a full ring charges everything.
  EXPECT_EQ(r.push_burst(src.data(), 3), 0u);
  EXPECT_EQ(r.dropped(), 10u - cap + 3u);
  // A burst that fits exactly charges nothing.
  int dst[8];
  EXPECT_EQ(r.pop_burst(dst, 8), cap);
  EXPECT_EQ(r.push_burst(src.data(), cap), cap);
  EXPECT_EQ(r.dropped(), 10u - cap + 3u);
}

// With a stalled consumer the drop counter is monotone and, combined
// with what was accepted, accounts for every offered element.
TEST(SpscRing, StalledConsumerOverflowLedgerReconciles) {
  SpscRing<int> r(8);
  std::uint64_t offered = 0;
  std::uint64_t accepted = 0;
  std::uint64_t last_dropped = 0;
  for (int round = 0; round < 100; ++round) {
    const int burst[3] = {round, round, round};
    offered += 3;
    accepted += r.push_burst(burst, 3);
    const std::uint64_t d = r.dropped();
    ASSERT_GE(d, last_dropped) << "drop counter went backwards";
    last_dropped = d;
    ASSERT_EQ(accepted + d, offered) << "unaccounted overflow";
  }
  EXPECT_EQ(accepted, r.capacity());
  EXPECT_EQ(r.dropped(), offered - r.capacity());
}

// Two real threads: producer hammers a tiny ring while the consumer
// drains slowly; dropped() read from the consumer side must reconcile.
// (Also the TSan exercise for the relaxed single-writer counter.)
TEST(SpscRing, TwoThreadsDropAccountingReconciles) {
  constexpr std::uint64_t kOffered = 100000;
  SpscRing<int> ring(16);
  std::atomic<bool> done{false};
  std::uint64_t consumed = 0;

  std::thread consumer([&ring, &done, &consumed] {
    int dst[8];
    while (!done.load(std::memory_order_acquire) || !ring.empty()) {
      consumed += ring.pop_burst(dst, 8);
    }
  });
  std::uint64_t accepted = 0;
  for (std::uint64_t i = 0; i < kOffered; ++i) {
    if (ring.push(static_cast<int>(i))) ++accepted;
  }
  done.store(true, std::memory_order_release);
  consumer.join();

  EXPECT_EQ(consumed, accepted);
  EXPECT_EQ(accepted + ring.dropped(), kOffered);
}

// Concurrency property: with one real producer thread and one real
// consumer thread, every value arrives exactly once, in order.
TEST(SpscRing, TwoThreadsBurstPreserveOrderAndCount) {
  constexpr int kN = 100000;
  SpscRing<int> ring(1024);
  std::vector<int> received;
  received.reserve(kN);

  std::thread producer([&ring] {
    int next = 0;
    int batch[64];
    while (next < kN) {
      int n = 0;
      while (n < 64 && next + n < kN) {
        batch[n] = next + n;
        ++n;
      }
      std::size_t sent = 0;
      while (sent < static_cast<std::size_t>(n)) {
        sent += ring.push_burst(batch + sent, static_cast<std::size_t>(n) - sent);
        if (sent < static_cast<std::size_t>(n)) std::this_thread::yield();
      }
      next += n;
    }
  });
  std::thread consumer([&ring, &received] {
    int batch[64];
    while (static_cast<int>(received.size()) < kN) {
      const std::size_t got = ring.pop_burst(batch, 64);
      for (std::size_t i = 0; i < got; ++i) received.push_back(batch[i]);
      if (got == 0) std::this_thread::yield();
    }
  });
  producer.join();
  consumer.join();

  ASSERT_EQ(received.size(), static_cast<std::size_t>(kN));
  for (int i = 0; i < kN; ++i) {
    ASSERT_EQ(received[static_cast<std::size_t>(i)], i) << "at index " << i;
  }
}

TEST(SpscRing, TwoThreadsPreserveOrderAndCount) {
  constexpr int kN = 200000;
  SpscRing<int> ring(1024);
  std::vector<int> received;
  received.reserve(kN);

  std::thread producer([&ring] {
    for (int i = 0; i < kN; ++i) {
      while (!ring.push(i)) {
        std::this_thread::yield();
      }
    }
  });
  std::thread consumer([&ring, &received] {
    while (static_cast<int>(received.size()) < kN) {
      if (auto v = ring.pop()) {
        received.push_back(*v);
      } else {
        std::this_thread::yield();
      }
    }
  });
  producer.join();
  consumer.join();

  ASSERT_EQ(received.size(), static_cast<std::size_t>(kN));
  for (int i = 0; i < kN; ++i) {
    ASSERT_EQ(received[static_cast<std::size_t>(i)], i) << "at index " << i;
  }
}

// --- wait-edge probe (ISSUE 8) ----------------------------------------

/// Deterministic test clock for the probe's `now` function pointer.
std::atomic<std::uint64_t> g_probe_clock{0};
Tsc probe_now() { return g_probe_clock.load(std::memory_order_relaxed); }
/// Monotone unique stamps for the two-thread test.
Tsc probe_tick() { return g_probe_clock.fetch_add(1); }

TEST(SpscRing, WaitProbeClosesOneFullEpisodePerStall) {
  WaitLog log;
  SpscRing<int> r(2);
  r.set_wait_probe(RingWaitProbe{&log, &probe_now, /*resource=*/7,
                                 /*producer_core=*/1, /*consumer_core=*/2});
  g_probe_clock = 0;
  for (std::size_t i = 0; i < r.capacity(); ++i) ASSERT_TRUE(r.push(1));
  EXPECT_TRUE(log.edges().empty()) << "accepted pushes record nothing";

  g_probe_clock = 10;
  EXPECT_FALSE(r.push(9, /*item=*/42)); // opens the episode, item captured
  g_probe_clock = 20;
  EXPECT_FALSE(r.push(9, /*item=*/43)); // same episode: no reopen
  ASSERT_TRUE(r.pop().has_value());
  g_probe_clock = 30;
  EXPECT_TRUE(r.push(9)); // the close records exactly one edge
  ASSERT_EQ(log.edges().size(), 1u);
  const WaitEdge& e = log.edges()[0];
  EXPECT_EQ(e.enter, 10u);
  EXPECT_EQ(e.leave, 30u);
  EXPECT_EQ(e.item, 42u) << "first blocked item names the episode";
  EXPECT_EQ(e.waiter_core, 1u);
  EXPECT_EQ(e.holder_core, 2u);
  EXPECT_EQ(e.resource, 7u);
  EXPECT_EQ(e.cause, WaitCause::RingFull);
  EXPECT_EQ(e.blocked(), 20u);
}

TEST(SpscRing, WaitProbeClosesOneEmptyEpisodePerStall) {
  WaitLog log;
  SpscRing<int> r(4);
  r.set_wait_probe(RingWaitProbe{&log, &probe_now, 3, 1, 2});
  g_probe_clock = 5;
  EXPECT_FALSE(r.pop().has_value()); // opens
  g_probe_clock = 9;
  EXPECT_FALSE(r.pop().has_value()); // same episode
  EXPECT_TRUE(r.push(7));
  g_probe_clock = 12;
  ASSERT_TRUE(r.pop().has_value()); // closes
  ASSERT_EQ(log.edges().size(), 1u);
  const WaitEdge& e = log.edges()[0];
  EXPECT_EQ(e.enter, 5u);
  EXPECT_EQ(e.leave, 12u);
  EXPECT_EQ(e.item, kNoItem) << "empty-ring episodes are not item-bound";
  EXPECT_EQ(e.waiter_core, 2u) << "consumer waits on an empty ring";
  EXPECT_EQ(e.holder_core, 1u);
  EXPECT_EQ(e.cause, WaitCause::RingEmpty);
}

TEST(SpscRing, WaitProbeBurstsOnlyOpenOnFullRejection) {
  WaitLog log;
  SpscRing<int> r(4);
  r.set_wait_probe(RingWaitProbe{&log, &probe_now, 1, 0, 0});
  std::vector<int> src(r.capacity() + 5, 7);
  g_probe_clock = 10;
  // Partial progress is progress: no episode opens.
  EXPECT_EQ(r.push_burst(src.data(), src.size()), r.capacity());
  EXPECT_TRUE(log.edges().empty());
  // A fully rejected burst opens; the next accepted element closes.
  g_probe_clock = 20;
  EXPECT_EQ(r.push_burst(src.data(), 2), 0u);
  int dst[8];
  EXPECT_EQ(r.pop_burst(dst, 8), r.capacity());
  g_probe_clock = 25;
  EXPECT_EQ(r.push_burst(src.data(), 2), 2u);
  ASSERT_EQ(log.edges().size(), 1u);
  EXPECT_EQ(log.edges()[0].enter, 20u);
  EXPECT_EQ(log.edges()[0].leave, 25u);
  EXPECT_EQ(log.edges()[0].cause, WaitCause::RingFull);
}

TEST(SpscRing, WaitProbeNullClockRecordsZeroDurationEdges) {
  WaitLog log;
  SpscRing<int> r(2);
  r.set_wait_probe(RingWaitProbe{&log, nullptr, 0, 0, 0});
  while (r.push(1)) {
  }
  ASSERT_TRUE(r.pop().has_value());
  EXPECT_TRUE(r.push(1));
  ASSERT_EQ(log.edges().size(), 1u);
  EXPECT_EQ(log.edges()[0].blocked(), 0u);
}

// Two real threads under the probe (the TSan exercise for the episode
// state riding each endpoint's private cache-line group): each thread
// counts its own stall→success transitions, and the shared log must
// reconcile *exactly* — one ring-full edge per producer transition, one
// ring-empty edge per consumer transition, nothing else.
TEST(SpscRing, TwoThreadsWaitEdgeLedgerReconciles) {
  constexpr int kN = 50000;
  WaitLog log;
  SpscRing<int> ring(16);
  ring.set_wait_probe(RingWaitProbe{&log, &probe_tick, /*resource=*/9,
                                    /*producer_core=*/1,
                                    /*consumer_core=*/2});
  g_probe_clock = 0;

  std::uint64_t full_closes = 0;
  std::uint64_t empty_closes = 0;
  std::thread consumer([&ring, &empty_closes] {
    int received = 0;
    bool stalled = false;
    while (received < kN) {
      if (ring.pop().has_value()) {
        if (stalled) ++empty_closes;
        stalled = false;
        ++received;
      } else {
        stalled = true;
      }
    }
  });
  bool stalled = false;
  for (int i = 0; i < kN; ++i) {
    while (!ring.push(i, static_cast<ItemId>(i))) stalled = true;
    if (stalled) ++full_closes;
    stalled = false;
  }
  consumer.join();

  std::uint64_t full_edges = 0;
  std::uint64_t empty_edges = 0;
  for (const WaitEdge& e : log.edges()) {
    ASSERT_GE(e.leave, e.enter);
    ASSERT_EQ(e.resource, 9u);
    if (e.cause == WaitCause::RingFull) {
      ASSERT_EQ(e.waiter_core, 1u);
      ASSERT_EQ(e.holder_core, 2u);
      ++full_edges;
    } else {
      ASSERT_EQ(e.cause, WaitCause::RingEmpty);
      ASSERT_EQ(e.waiter_core, 2u);
      ASSERT_EQ(e.holder_core, 1u);
      ASSERT_EQ(e.item, kNoItem);
      ++empty_edges;
    }
  }
  EXPECT_EQ(full_edges, full_closes) << "unaccounted ring-full episode";
  EXPECT_EQ(empty_edges, empty_closes) << "unaccounted ring-empty episode";
  EXPECT_EQ(full_edges + empty_edges, log.edges().size());
}

} // namespace
} // namespace fluxtrace::rt
