// §V-B2: the hardware records no call graph, so a sample inside a small
// utility g can only be attributed to its caller by guessing from the
// nearest preceding sample. This bench measures the guess's accuracy on a
// worker where two parents call the same utility with very different
// frequencies — the exact situation the paper warns about.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "fluxtrace/core/callguess.hpp"
#include "fluxtrace/report/table.hpp"
#include "fluxtrace/sim/machine.hpp"

using namespace fluxtrace;

namespace {

/// Alternates f1 and f2 phases. f1 calls the utility once per phase; f2
/// calls it eight times — but each call is tiny, so most utility samples
/// fall with *stale* neighbours at coarse sampling rates.
class TwoParentWorker final : public sim::Task {
 public:
  TwoParentWorker(SymbolId f1, SymbolId f2, SymbolId util, int phases)
      : f1_(f1), f2_(f2), util_(util), remaining_(phases) {}

  sim::StepStatus step(sim::Cpu& cpu) override {
    if (remaining_ == 0) return sim::StepStatus::Done;
    // f1 phase: long body, one short utility call.
    cpu.exec(f1_, 20000);
    cpu.exec(util_, 1500);
    truth_f1_ += 1500;
    // f2 phase: short bodies interleaved with eight utility calls.
    for (int i = 0; i < 8; ++i) {
      cpu.exec(f2_, 1000);
      cpu.exec(util_, 1500);
      truth_f2_ += 1500;
    }
    --remaining_;
    return remaining_ == 0 ? sim::StepStatus::Done
                           : sim::StepStatus::Progress;
  }

  [[nodiscard]] double true_f2_share() const {
    return static_cast<double>(truth_f2_) /
           static_cast<double>(truth_f1_ + truth_f2_);
  }

 private:
  SymbolId f1_, f2_, util_;
  int remaining_;
  std::uint64_t truth_f1_ = 0, truth_f2_ = 0;
};

} // namespace

int main() {
  const CpuSpec spec;
  bench::banner("ext_call_graph",
                "§V-B2 — caller guessing without hardware call graphs: "
                "accuracy vs sampling rate",
                spec);

  report::Table tab({"reset", "util samples", "guessed f1", "guessed f2",
                     "guessed f2 share", "true f2 share"});

  double true_share = 0;
  for (const std::uint64_t reset : {400u, 1500u, 6000u, 24000u}) {
    SymbolTable symtab;
    const SymbolId f1 = symtab.add("parse_config", 0x1000);
    const SymbolId f2 = symtab.add("eval_rules", 0x1000);
    const SymbolId util = symtab.add("hash_lookup", 0x200);

    sim::Machine m(symtab);
    sim::PebsConfig pc;
    pc.reset = reset;
    pc.buffer_capacity = 1u << 16;
    m.cpu(0).enable_pebs(pc);
    TwoParentWorker worker(f1, f2, util, 400);
    m.attach(0, worker);
    m.run();
    m.flush_samples();
    true_share = worker.true_f2_share();

    const core::CallerGuess g = core::guess_callers(
        symtab, m.pebs_driver().samples(), util);
    const double f2_share =
        g.utility_samples > g.unattributed
            ? static_cast<double>(g.attributed_to(f2)) /
                  static_cast<double>(g.utility_samples - g.unattributed)
            : 0.0;
    tab.row({report::Table::num(reset), report::Table::num(g.utility_samples),
             report::Table::num(g.attributed_to(f1)),
             report::Table::num(g.attributed_to(f2)),
             report::Table::num(f2_share * 100, 1) + "%",
             report::Table::num(true_share * 100, 1) + "%"});
  }
  tab.print(std::cout);

  std::printf(
      "\nAt fine sampling rates the nearest-preceding-sample guess tracks\n"
      "the truth; once the interval exceeds the utility-call spacing the\n"
      "guess collapses toward whichever parent's *body* dominates the\n"
      "sample stream — the \"wrong understanding\" §V-B2 warns about when\n"
      "a small utility is called many times. LBR-style hardware call\n"
      "stacks, not PEBS, would be needed to resolve it.\n");
  return 0;
}
