// Machine-readable benchmark results (ISSUE 3, satellite). Every entry
// is {name, iters, ns_per_op, p99_ns}; p99_ns is null when the bench
// has no per-iteration latency distribution to quote. The file lands in
// the working directory as BENCH_<name>.json so CI and scripts can diff
// runs without scraping console tables.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace fluxtrace::bench {

class BenchJson {
 public:
  /// Results will be written to "BENCH_<name>.json".
  explicit BenchJson(const std::string& name)
      : path_("BENCH_" + name + ".json") {}

  /// `p99_ns < 0` means "not measured" and serializes as null.
  void add(const std::string& name, double iters, double ns_per_op,
           double p99_ns = -1.0) {
    entries_.push_back(Entry{name, iters, ns_per_op, p99_ns});
  }

  /// Write the file; false (with a stderr note) on I/O failure.
  bool write() const {
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path_.c_str());
      return false;
    }
    std::fprintf(f, "{\"benchmarks\":[\n");
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      std::fprintf(f, "  {\"name\":\"%s\",\"iters\":%.0f,\"ns_per_op\":%.3f,",
                   escaped(e.name).c_str(), e.iters, e.ns_per_op);
      if (e.p99_ns < 0) {
        std::fprintf(f, "\"p99_ns\":null}");
      } else {
        std::fprintf(f, "\"p99_ns\":%.3f}", e.p99_ns);
      }
      std::fprintf(f, i + 1 < entries_.size() ? ",\n" : "\n");
    }
    std::fprintf(f, "]}\n");
    const bool ok = std::fclose(f) == 0;
    if (ok) std::fprintf(stderr, "wrote %s\n", path_.c_str());
    return ok;
  }

 private:
  struct Entry {
    std::string name;
    double iters;
    double ns_per_op;
    double p99_ns;
  };

  static std::string escaped(const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }

  std::string path_;
  std::vector<Entry> entries_;
};

} // namespace fluxtrace::bench
