// Ablation: frequency throttling as a fluctuation source ("other
// factors", §I). A thermal governor drops the worker core to 60% clock
// for periodic windows; identical warm queries inside the window inflate.
// The diagnostic signature differs from cache effects: under DVFS *every*
// function inflates by the same ratio, whereas a cold cache inflates only
// the memory-touching function — the per-function trace tells the two
// root causes apart.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "fluxtrace/apps/query_cache_app.hpp"
#include "fluxtrace/core/integrator.hpp"
#include "fluxtrace/report/table.hpp"

using namespace fluxtrace;

namespace {

/// Thermal governor: throttles the worker core on a fixed duty cycle.
class Governor final : public sim::Task {
 public:
  Governor(sim::Cpu& victim, Tsc period, Tsc throttled_part)
      : victim_(victim), period_(period), hot_(throttled_part) {}

  sim::StepStatus step(sim::Cpu& cpu) override {
    const Tsc phase = cpu.now() % period_;
    victim_.set_speed(phase < hot_ ? 0.6 : 1.0);
    // Re-evaluate at the next phase boundary.
    cpu.advance(phase < hot_ ? hot_ - phase : period_ - phase);
    return sim::StepStatus::Progress;
  }
  [[nodiscard]] std::string_view name() const override { return "governor"; }

 private:
  sim::Cpu& victim_;
  Tsc period_, hot_;
};

} // namespace

int main() {
  const CpuSpec spec;
  bench::banner("abl_dvfs",
                "ablation — frequency throttling as a fluctuation source, "
                "and its all-functions-inflate signature",
                spec);

  SymbolTable symtab;
  apps::QueryCacheApp app(symtab);

  // All-warm queries: pre-warm with n=5, then 40 repeats of n=5.
  std::vector<apps::Query> queries;
  for (ItemId id = 1; id <= 41; ++id) queries.push_back(apps::Query{id, 5});

  sim::Machine m(symtab);
  sim::PebsConfig pc;
  pc.reset = 2000;
  pc.buffer_capacity = 1u << 16;
  m.cpu(1).enable_pebs(pc);
  app.submit(queries);
  app.attach(m, 0, 1);

  // Throttle the worker (core 1) for 40 us out of every 120 us.
  Governor gov(m.cpu(1), spec.cycles(120000.0), spec.cycles(40000.0));
  m.attach(2, gov);
  m.run(spec.cycles(2e6)); // the governor never finishes; bound the run
  m.flush_samples();

  core::TraceIntegrator integ(symtab);
  const core::TraceTable table = integ.integrate(
      m.marker_log().markers(), m.pebs_driver().samples());

  // Partition warm queries into throttled vs full-speed by their length.
  report::Table tab(
      {"query class", "n", "total [us]", "f1 [us]", "f2 [us]", "f1 ratio",
       "f2 ratio"});
  double fast_total = 0, fast_f1 = 0, fast_f2 = 0;
  double slow_total = 0, slow_f1 = 0, slow_f2 = 0;
  int n_fast = 0, n_slow = 0;
  std::vector<double> totals;
  for (ItemId id = 2; id <= 41; ++id) {
    totals.push_back(spec.us(table.item_window_total(id)));
  }
  std::sort(totals.begin(), totals.end());
  const double median = totals[totals.size() / 2];
  for (ItemId id = 2; id <= 41; ++id) {
    const double t = spec.us(table.item_window_total(id));
    const double f1 = spec.us(table.elapsed(id, app.f1()));
    const double f2 = spec.us(table.elapsed(id, app.f2()));
    if (t <= median) {
      fast_total += t;
      fast_f1 += f1;
      fast_f2 += f2;
      ++n_fast;
    } else {
      slow_total += t;
      slow_f1 += f1;
      slow_f2 += f2;
      ++n_slow;
    }
  }
  tab.row({"full speed", report::Table::num(n_fast),
           report::Table::num(fast_total / n_fast),
           report::Table::num(fast_f1 / n_fast),
           report::Table::num(fast_f2 / n_fast), "1.00", "1.00"});
  tab.row({"throttled window", report::Table::num(n_slow),
           report::Table::num(slow_total / n_slow),
           report::Table::num(slow_f1 / n_slow),
           report::Table::num(slow_f2 / n_slow),
           report::Table::num((slow_f1 / n_slow) / (fast_f1 / n_fast)),
           report::Table::num((slow_f2 / n_slow) / (fast_f2 / n_fast))});
  tab.print(std::cout);

  std::printf(
      "\nIdentical warm queries fluctuate purely with the clock. The\n"
      "signature: f1 and f2 inflate by the SAME ratio (~1/0.6), unlike\n"
      "abl_contention where only the memory-touching f2 moved — the\n"
      "per-function trace distinguishes DVFS from cache root causes.\n");
  return 0;
}
