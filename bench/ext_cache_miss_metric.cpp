// §V-D: measuring other metrics. Configuring PEBS to count cache misses
// instead of retired uops turns the same integration machinery into a
// per-{function, data-item} cache-miss profile: the number of samples in
// bucket {f, #M} times the reset value approximates the misses f incurred
// for item #M. Run on the sample app, this shows f3's misses fluctuate
// with cache warmth exactly as its time does.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "fluxtrace/apps/query_cache_app.hpp"
#include "fluxtrace/core/integrator.hpp"
#include "fluxtrace/report/table.hpp"

using namespace fluxtrace;

int main() {
  const CpuSpec spec;
  bench::banner("ext_cache_miss_metric",
                "§V-D — per-data-item cache-miss counts via the PEBS "
                "event choice (sample app)",
                spec);

  SymbolTable symtab;
  apps::QueryCacheApp app(symtab);
  sim::Machine m(symtab);

  sim::PebsConfig pc;
  pc.event = HwEvent::CacheMisses; // the only change vs Fig. 8
  pc.reset = 16;
  pc.buffer_capacity = 4096;
  m.cpu(1).enable_pebs(pc);

  const auto queries = apps::QueryCacheApp::paper_queries();
  app.submit(queries);
  app.attach(m, 0, 1);
  m.run();
  m.flush_samples();

  core::TraceIntegrator integ(symtab);
  const auto table = integ.integrate(m.marker_log().markers(),
                                     m.pebs_driver().samples());

  const std::uint64_t true_misses =
      m.cpu(1).stats().events.get(HwEvent::CacheMisses);

  report::Table tab({"query", "n", "f2 est. misses", "f3 est. misses"});
  std::uint64_t est_total = 0;
  for (const apps::Query& q : queries) {
    const std::uint64_t f2 =
        table.sample_count(q.id, app.f2()) * pc.reset;
    const std::uint64_t f3 =
        table.sample_count(q.id, app.f3()) * pc.reset;
    est_total += f2 + f3;
    tab.row({"#" + std::to_string(q.id), std::to_string(q.n),
             report::Table::num(f2), report::Table::num(f3)});
  }
  tab.print(std::cout);

  std::printf("\nestimated misses (samples x R): %llu, PMU ground truth on "
              "the worker core: %llu\n",
              static_cast<unsigned long long>(est_total),
              static_cast<unsigned long long>(true_misses));
  std::printf(
      "\nQueries 1 and 5 show large f3 miss counts (their points were not\n"
      "cached — neither in the app cache nor in the CPU caches); warm\n"
      "repeats show ~0. The same integration pipeline works for any\n"
      "per-core precise event (branch mispredictions, loads, ...).\n");
  return 0;
}
