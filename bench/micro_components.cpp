// Component micro-benchmarks (google-benchmark): the real-time cost of
// the library's hot paths — ring operations, trie classification, trace
// integration, detector updates, cache-model accesses.
//
// Besides the console table, every run is teed into BENCH_results.json
// ({name, iters, ns_per_op, p99_ns}) so CI can diff runs numerically;
// the heavyweight benchmarks also time each iteration into an
// obs::Histogram and report its p99.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "fluxtrace/acl/classifier.hpp"
#include "fluxtrace/acl/ruleset.hpp"
#include "fluxtrace/core/detector.hpp"
#include "fluxtrace/core/integrator.hpp"
#include "fluxtrace/core/online.hpp"
#include "fluxtrace/core/parallel_integrator.hpp"
#include "fluxtrace/io/trace_reader.hpp"
#include "fluxtrace/obs/metrics.hpp"
#include "fluxtrace/obs/span.hpp"
#include "json_out.hpp"
#include "fluxtrace/db/btree.hpp"
#include "fluxtrace/db/bufferpool.hpp"
#include "fluxtrace/rt/sim_channel.hpp"
#include "fluxtrace/rt/spsc_ring.hpp"
#include "fluxtrace/sim/cache.hpp"

using namespace fluxtrace;

namespace {

void BM_SpscRingPushPop(benchmark::State& state) {
  rt::SpscRing<std::uint64_t> ring(1024);
  std::uint64_t v = 0;
  for (auto _ : state) {
    ring.push(++v);
    benchmark::DoNotOptimize(ring.pop());
  }
}
BENCHMARK(BM_SpscRingPushPop);

void BM_SimChannelPushPop(benchmark::State& state) {
  rt::SimChannel<std::uint64_t> ch(1024);
  std::uint64_t v = 0;
  for (auto _ : state) {
    ++v;
    ch.push(v, v);
    benchmark::DoNotOptimize(ch.pop(v));
  }
}
BENCHMARK(BM_SimChannelPushPop);

void BM_TrieClassifyPaperPacket(benchmark::State& state) {
  static const acl::RuleSet rules = acl::make_paper_ruleset();
  static const acl::MultiTrieClassifier clf(
      rules, acl::MultiTrieConfig{acl::kPaperRulesPerTrie, 0});
  const acl::PaperPackets pk;
  const FlowKey keys[3] = {pk.type_a, pk.type_b, pk.type_c};
  const FlowKey key = keys[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    benchmark::DoNotOptimize(clf.classify(key));
  }
}
BENCHMARK(BM_TrieClassifyPaperPacket)->Arg(0)->Arg(1)->Arg(2);

void BM_LinearScanClassify(benchmark::State& state) {
  static const acl::LinearScanClassifier clf(acl::make_paper_ruleset());
  const acl::PaperPackets pk;
  for (auto _ : state) {
    benchmark::DoNotOptimize(clf.classify(pk.type_a));
  }
}
BENCHMARK(BM_LinearScanClassify);

void BM_IntegrateSamples(benchmark::State& state) {
  SymbolTable symtab;
  std::vector<SymbolId> fns;
  for (int i = 0; i < 8; ++i) {
    fns.push_back(symtab.add("fn" + std::to_string(i), 0x400));
  }
  const std::int64_t n = state.range(0);
  std::vector<Marker> markers;
  std::vector<PebsSample> samples;
  Tsc t = 0;
  for (std::int64_t item = 0; item < n / 10; ++item) {
    markers.push_back(
        Marker{t, static_cast<ItemId>(item), 0, MarkerKind::Enter});
    for (int s = 0; s < 10; ++s) {
      PebsSample smp;
      smp.tsc = t + 10 + static_cast<Tsc>(s) * 30;
      smp.ip = symtab.ip_at(fns[static_cast<std::size_t>(s) % fns.size()], 0.5);
      samples.push_back(smp);
    }
    t += 400;
    markers.push_back(
        Marker{t, static_cast<ItemId>(item), 0, MarkerKind::Leave});
    t += 50;
  }
  core::TraceIntegrator integ(symtab);
  obs::Histogram lat;
  for (auto _ : state) {
    const std::uint64_t t0 = obs::steady_now_ns();
    benchmark::DoNotOptimize(integ.integrate(markers, samples));
    lat.observe(obs::steady_now_ns() - t0);
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["p99_ns"] = lat.snapshot().quantile(0.99);
}
BENCHMARK(BM_IntegrateSamples)->Arg(1000)->Arg(10000);

// End-to-end analysis pipeline: open + decode + integrate a one-million
// sample, 8-core FLXT v2 trace through the io::TraceReader facade and
// core::ParallelIntegrator. Built once; the fixture also asserts, once,
// that the 4-thread pipeline produces bit-identical TraceData and
// TraceTable to the sequential one — a benchmark of a wrong answer would
// be worthless.
struct EndToEndTrace {
  SymbolTable symtab;
  std::string v2_bytes;
  std::int64_t n_samples = 0;
};

const EndToEndTrace& end_to_end_trace() {
  static const EndToEndTrace fx = [] {
    EndToEndTrace f;
    std::vector<SymbolId> fns;
    for (int i = 0; i < 8; ++i) {
      fns.push_back(f.symtab.add("fn" + std::to_string(i), 0x400));
    }
    constexpr std::uint32_t kCores = 8;
    constexpr std::size_t kItemsPerCore = 5000;
    constexpr std::size_t kSamplesPerItem = 25; // 8 * 5000 * 25 = 1M samples
    io::TraceData d;
    ItemId item = 1;
    for (std::uint32_t core = 0; core < kCores; ++core) {
      Tsc t = 1000 + core;
      for (std::size_t k = 0; k < kItemsPerCore; ++k, ++item) {
        d.markers.push_back(Marker{t, item, core, MarkerKind::Enter});
        for (std::size_t s = 0; s < kSamplesPerItem; ++s) {
          PebsSample smp;
          smp.tsc = t + 10 + static_cast<Tsc>(s) * 30;
          smp.core = core;
          smp.ip = f.symtab.ip_at(fns[(k + s) % fns.size()], 0.5);
          d.samples.push_back(smp);
        }
        t += 10 + kSamplesPerItem * 30;
        d.markers.push_back(Marker{t, item, core, MarkerKind::Leave});
        t += 50;
      }
    }
    f.n_samples = static_cast<std::int64_t>(d.samples.size());
    std::ostringstream os;
    io::write_trace_v2(os, d);
    f.v2_bytes = std::move(os).str();

    const io::TraceReader r = io::open_trace_bytes(std::string(f.v2_bytes));
    const io::TraceData seq = r.read();
    if (!(r.read_parallel(4) == seq)) {
      std::fprintf(stderr, "FATAL: parallel v2 decode != sequential decode\n");
      std::abort();
    }
    const core::TraceTable table_seq =
        core::TraceIntegrator(f.symtab).integrate(seq.markers, seq.samples);
    const core::TraceTable table_par =
        core::ParallelIntegrator(f.symtab, {}, 4)
            .integrate(seq.markers, seq.samples);
    if (!(table_par == table_seq)) {
      std::fprintf(stderr,
                   "FATAL: ParallelIntegrator result != sequential result\n");
      std::abort();
    }
    return f;
  }();
  return fx;
}

void BM_TraceReadEndToEnd(benchmark::State& state) {
  const EndToEndTrace& fx = end_to_end_trace();
  const unsigned threads = static_cast<unsigned>(state.range(0));
  obs::Histogram lat;
  for (auto _ : state) {
    const std::uint64_t t0 = obs::steady_now_ns();
    const io::TraceReader reader =
        io::open_trace_bytes(std::string(fx.v2_bytes));
    const io::TraceData data = reader.read_parallel(threads);
    core::ParallelIntegrator integ(fx.symtab, {}, threads);
    benchmark::DoNotOptimize(integ.integrate(data.markers, data.samples));
    lat.observe(obs::steady_now_ns() - t0);
  }
  state.SetItemsProcessed(state.iterations() * fx.n_samples);
  state.counters["p99_ns"] = lat.snapshot().quantile(0.99);
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(fx.v2_bytes.size()));
}
BENCHMARK(BM_TraceReadEndToEnd)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_DetectorObserve(benchmark::State& state) {
  core::FluctuationDetector det;
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(det.observe(i, i % 16, 1000 + (i % 37)));
    ++i;
  }
}
BENCHMARK(BM_DetectorObserve);

void BM_CacheHierarchyAccess(benchmark::State& state) {
  sim::CacheHierarchy cache;
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(addr));
    addr += 64;
    if (addr > (1u << 22)) addr = 0;
  }
}
BENCHMARK(BM_CacheHierarchyAccess);

void BM_TrieBuildPaperRuleset(benchmark::State& state) {
  const acl::RuleSet rules = acl::make_paper_ruleset();
  for (auto _ : state) {
    acl::MultiTrieClassifier clf(
        rules, acl::MultiTrieConfig{acl::kPaperRulesPerTrie, 0});
    benchmark::DoNotOptimize(clf.num_tries());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(rules.size()));
}
BENCHMARK(BM_TrieBuildPaperRuleset)->Unit(benchmark::kMillisecond);

void BM_BTreeFind(benchmark::State& state) {
  static const auto tree = [] {
    db::BTree t(64);
    for (std::uint64_t k = 0; k < 100000; ++k) t.insert(k, k);
    return t;
  }();
  std::uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.find(k));
    k = (k + 7919) % 100000;
  }
}
BENCHMARK(BM_BTreeFind);

void BM_BTreeInsert(benchmark::State& state) {
  db::BTree t(64);
  std::uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.insert(k, k));
    ++k;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(k));
}
BENCHMARK(BM_BTreeInsert);

void BM_BufferPoolFetch(benchmark::State& state) {
  db::BufferPool pool(1024);
  std::uint64_t page = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.fetch(page));
    page = (page + 97) % 2048; // 50% hit rate steady state
  }
}
BENCHMARK(BM_BufferPoolFetch);

void BM_OnlineTracerPerItem(benchmark::State& state) {
  SymbolTable symtab;
  const SymbolId fn = symtab.add("fn", 0x400);
  core::OnlineTracer ot(symtab);
  Tsc t = 0;
  ItemId id = 0;
  for (auto _ : state) {
    ot.on_marker(Marker{t, ++id, 0, MarkerKind::Enter});
    for (int i = 0; i < 4; ++i) {
      PebsSample s;
      s.tsc = t + 10 + static_cast<Tsc>(i) * 20;
      s.ip = symtab.ip_at(fn, 0.5);
      ot.on_sample(s);
    }
    ot.on_marker(Marker{t + 100, id, 0, MarkerKind::Leave});
    t += 150;
  }
}
BENCHMARK(BM_OnlineTracerPerItem);

// Console output plus BENCH_results.json: each finished run is teed to
// the JSON sink with its cpu ns/op and, when the benchmark measured one,
// its p99_ns user counter.
class TeeReporter : public benchmark::ConsoleReporter {
 public:
  explicit TeeReporter(bench::BenchJson& out) : out_(out) {}
  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const double iters = static_cast<double>(run.iterations);
      const double ns_per_op =
          iters > 0 ? run.cpu_accumulated_time * 1e9 / iters : 0.0;
      const auto p99 = run.counters.find("p99_ns");
      out_.add(run.benchmark_name(), iters, ns_per_op,
               p99 != run.counters.end() ? p99->second.value : -1.0);
    }
  }

 private:
  bench::BenchJson& out_;
};

} // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  bench::BenchJson json("results");
  TeeReporter reporter(json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  json.write();
  return 0;
}
