// Extension: graceful degradation under injected capture loss. Sweeps the
// sample-loss rate 0–50% (plus a marker-loss component) on the Fig. 8
// query workload and compares degraded-mode estimates against the
// fault-free run. The point: estimation error grows smoothly with loss —
// no cliff — and every affected item is *flagged* (non-clean confidence),
// never silently wrong.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "fluxtrace/apps/query_cache_app.hpp"
#include "fluxtrace/core/integrator.hpp"
#include "fluxtrace/report/table.hpp"
#include "fluxtrace/sim/fault.hpp"

using namespace fluxtrace;

namespace {

struct RunResult {
  core::TraceTable table;
  std::uint64_t samples_kept = 0;
  std::uint64_t samples_dropped = 0;
  std::uint64_t markers_dropped = 0;
};

RunResult run_with_faults(double sample_loss, double marker_loss,
                          std::uint64_t seed) {
  SymbolTable symtab;
  apps::QueryCacheApp app(symtab);
  sim::Machine m(symtab);
  sim::PebsConfig pc;
  pc.reset = 8000;
  m.cpu(1).enable_pebs(pc);

  sim::FaultPlanConfig fcfg;
  fcfg.seed = seed;
  fcfg.sample_loss_rate = sample_loss;
  fcfg.marker_loss_rate = marker_loss;
  sim::FaultPlan plan(fcfg);
  plan.attach(m);

  app.submit(apps::QueryCacheApp::paper_queries());
  app.attach(m, 0, 1);
  m.run();
  m.flush_samples();

  core::IntegratorConfig icfg;
  icfg.degraded = true;
  core::TraceIntegrator integ(symtab, icfg);
  RunResult r;
  r.table = integ.integrate(m.marker_log().markers(),
                            m.pebs_driver().samples(),
                            m.pebs_driver().losses());
  r.samples_kept = m.pebs_driver().samples().size();
  r.samples_dropped = plan.samples_dropped();
  r.markers_dropped = plan.markers_dropped();
  return r;
}

} // namespace

int main() {
  const CpuSpec spec;
  bench::banner("ext_fault_tolerance",
                "Graceful degradation: estimation error and flagging vs "
                "injected capture loss (Fig. 8 workload, R = 8000)",
                spec);

  const RunResult baseline = run_with_faults(0.0, 0.0, 1);
  const auto queries = apps::QueryCacheApp::paper_queries();

  report::Table tab({"sample loss", "marker loss", "kept", "mean err",
                     "max err", "items est.", "flagged", "synth"});
  for (const double loss : {0.0, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50}) {
    const double marker_loss = loss / 4.0; // markers are hardier in practice
    const RunResult r = run_with_faults(loss, marker_loss, 42);

    // Per-item relative error of the estimated total vs the fault-free
    // run (items the degraded table still estimates).
    double err_sum = 0.0, err_max = 0.0;
    int estimated = 0;
    for (const apps::Query& q : queries) {
      const double ref =
          static_cast<double>(baseline.table.item_estimated_total(q.id));
      const double got =
          static_cast<double>(r.table.item_estimated_total(q.id));
      if (ref <= 0.0) continue;
      ++estimated;
      const double err = std::fabs(got - ref) / ref;
      err_sum += err;
      err_max = std::max(err_max, err);
    }
    const double err_mean = estimated > 0 ? err_sum / estimated : 0.0;

    tab.row({report::Table::num(loss * 100.0, 0) + "%",
             report::Table::num(marker_loss * 100.0, 1) + "%",
             report::Table::num(r.samples_kept),
             report::Table::num(err_mean * 100.0, 1) + "%",
             report::Table::num(err_max * 100.0, 1) + "%",
             report::Table::num(estimated),
             report::Table::num(r.table.degraded_items().size()),
             report::Table::num(r.table.windows_synthesized())});
  }
  tab.print(std::cout);

  std::printf(
      "\nEvery sweep point still estimates all %zu queries: synthesized\n"
      "windows stand in for lost markers and known losses degrade item\n"
      "confidence instead of vanishing. Error grows smoothly with the loss\n"
      "rate (first/last-sample spans shrink as edge samples drop out), and\n"
      "the 'flagged' column shows the affected items are marked — the\n"
      "contract is honesty, not immunity.\n",
      queries.size());
  return 0;
}
