// §V-B1: limitation of sampling-based traces. A function shorter than the
// sample interval collects at most one sample per data-item, so its
// per-item elapsed time cannot be estimated from a trace — but a profile
// (T x n / N over many items) can still estimate its mean.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "fluxtrace/core/integrator.hpp"
#include "fluxtrace/core/profile.hpp"
#include "fluxtrace/report/table.hpp"
#include "fluxtrace/sim/machine.hpp"

using namespace fluxtrace;

namespace {

/// Each item runs a long function (8 us) and a short one (0.4 us).
class TwoFnServer final : public sim::Task {
 public:
  TwoFnServer(SymbolId long_fn, SymbolId short_fn, int items)
      : long_fn_(long_fn), short_fn_(short_fn), remaining_(items) {}

  sim::StepStatus step(sim::Cpu& cpu) override {
    if (remaining_ == 0) return sim::StepStatus::Done;
    const ItemId id = ++next_;
    cpu.mark_enter(id);
    cpu.exec(long_fn_, 60000); // 8 us
    cpu.exec(short_fn_, 3000); // 0.4 us
    cpu.mark_leave(id);
    --remaining_;
    return remaining_ == 0 ? sim::StepStatus::Done
                           : sim::StepStatus::Progress;
  }

 private:
  SymbolId long_fn_, short_fn_;
  int remaining_;
  ItemId next_ = 0;
};

} // namespace

int main() {
  const CpuSpec spec;
  bench::banner("ext_short_functions",
                "§V-B1 — functions shorter than the sample interval: "
                "trace vs profile estimability",
                spec);

  constexpr int kItems = 400;
  const double true_short_us = spec.us(spec.uop_cycles(3000));
  const double true_long_us = spec.us(spec.uop_cycles(60000));
  std::printf("true per-item times: long_fn %.2f us, short_fn %.2f us; "
              "%d items\n\n",
              true_long_us, true_short_us, kItems);

  report::Table tab({"reset", "interval [us]", "short: items estimable",
                     "short: trace mean [us]", "short: profile [us]",
                     "long: trace mean [us]"});

  for (const std::uint64_t reset : {500u, 2000u, 8000u, 32000u}) {
    SymbolTable symtab;
    const SymbolId lf = symtab.add("long_fn", 0x800);
    const SymbolId sf = symtab.add("short_fn", 0x200);
    sim::Machine m(symtab);
    sim::PebsConfig pc;
    pc.reset = reset;
    pc.buffer_capacity = 4096;
    m.cpu(0).enable_pebs(pc);
    TwoFnServer server(lf, sf, kItems);
    m.attach(0, server);
    const auto run = m.run();
    m.flush_samples();

    core::TraceIntegrator integ(symtab);
    const auto table = integ.integrate(m.marker_log().markers(),
                                       m.pebs_driver().samples());

    int estimable = 0;
    double short_sum = 0, long_sum = 0;
    int long_n = 0;
    for (ItemId id = 1; id <= kItems; ++id) {
      if (table.sample_count(id, sf) >= 2) {
        ++estimable;
        short_sum += spec.us(table.elapsed(id, sf));
      }
      if (table.sample_count(id, lf) >= 2) {
        long_sum += spec.us(table.elapsed(id, lf));
        ++long_n;
      }
    }
    const core::Profile prof = core::Profile::from_samples(
        symtab, m.pebs_driver().samples(), run.end_tsc);
    // Profile: mean per-item time of short_fn = share × total / items.
    const double prof_short =
        spec.us(prof.est_time(sf)) / static_cast<double>(kItems);
    const double interval =
        spec.us(run.end_tsc) /
        static_cast<double>(std::max<std::uint64_t>(1, table.total_samples()));

    tab.row({report::Table::num(reset),
             report::Table::num(interval),
             std::to_string(estimable) + "/" + std::to_string(kItems),
             estimable > 0
                 ? report::Table::num(short_sum / estimable)
                 : "n/a",
             report::Table::num(prof_short),
             long_n > 0 ? report::Table::num(long_sum / long_n) : "n/a"});
  }
  tab.print(std::cout);

  std::printf(
      "\nOnce the interval exceeds the short function's length, almost no\n"
      "item collects the >= 2 samples a trace needs — while the profile's\n"
      "T x n / N estimate of its mean stays accurate at every rate. The\n"
      "sampling rate must therefore be high enough to cover functions that\n"
      "are potential bottlenecks.\n");
  return 0;
}
