// Ablation: shared-resource contention, the other fluctuation source the
// paper's introduction cites (Dobrescu et al.: a software packet platform
// loses 27% worst-case to shared-cache contention). A co-runner thrashing
// the shared L3 on another core slows the query worker's *warm* queries —
// no code path changed, purely non-functional state — and the hybrid
// trace attributes the inflation to the functions touching memory.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "fluxtrace/apps/query_cache_app.hpp"
#include "fluxtrace/core/integrator.hpp"
#include "fluxtrace/core/tracediff.hpp"
#include "fluxtrace/report/stats.hpp"
#include "fluxtrace/report/table.hpp"

using namespace fluxtrace;

namespace {

/// A streaming co-runner with high memory-level parallelism: it pulls
/// ~one new cache line every 10 cycles (≈ 19 GB/s at 3 GHz), cycling
/// through a 24 MiB buffer — the classic shared-LLC aggressor. Its loads
/// are driven straight through the shared hierarchy; its own time is
/// advanced in bulk (its latency is hidden by MLP, which the serial
/// cache model cannot express per-access).
class L3Thrasher final : public sim::Task {
 public:
  explicit L3Thrasher(SymbolId fn) : fn_(fn) {}

  sim::StepStatus step(sim::Cpu& cpu) override {
    constexpr std::uint64_t kBase = 0x700000000ull;
    constexpr std::uint64_t kBuf = 24ull * 1024 * 1024;
    constexpr std::uint32_t kLines = 2000;
    for (std::uint32_t i = 0; i < kLines; ++i) {
      cpu.cache().access(kBase + (offset_ + i * 64ull) % kBuf);
    }
    offset_ = (offset_ + kLines * 64ull) % kBuf;
    cpu.exec(fn_, kLines * 10); // ~10 cycles of streaming work per line
    return sim::StepStatus::Progress;
  }
  [[nodiscard]] std::string_view name() const override { return "thrasher"; }

 private:
  SymbolId fn_;
  std::uint64_t offset_ = 0;
};

struct RunOut {
  double warm_mean_us = 0;
  double warm_p99_us = 0;
  double f2_mean_us = 0;
  double f3_mean_us = 0;
  core::TraceTable table;
  SymbolId f2 = kInvalidSymbol;
};

RunOut run(bool with_corunner) {
  SymbolTable symtab;
  apps::QueryCacheAppConfig qcfg;
  // A warm working set larger than the private L2 (1 MiB) but inside the
  // shared L3 (8 MiB): 5 × 4000 index entries × 64 B = 1.28 MiB. Warm
  // queries then depend on L3 residency — the contended resource.
  qcfg.points_per_n = 4000;
  qcfg.index_stride = 64; // cache-line-sized index entries
  apps::QueryCacheApp app(symtab, qcfg);

  // One warm-up query (n = 5) then 30 warm repeats.
  std::vector<apps::Query> queries;
  queries.push_back(apps::Query{1, 5});
  for (ItemId id = 2; id <= 31; ++id) {
    queries.push_back(apps::Query{id, 5});
  }

  const SymbolId stream_fn = symtab.add("stream_copy", 0x400);

  sim::Machine m(symtab);
  sim::PebsConfig pc;
  pc.reset = 8000;
  pc.buffer_capacity = 4096;
  m.cpu(1).enable_pebs(pc);

  app.submit(queries);
  app.attach(m, /*rx=*/0, /*worker=*/1);
  L3Thrasher corunner(stream_fn);
  if (with_corunner) m.attach(2, corunner);

  // The co-runner never finishes on its own; bound the run (the worker
  // is long done by then).
  m.run(m.spec().cycles(60e6));

  m.flush_samples();
  core::TraceIntegrator integ(symtab);
  const core::TraceTable table = integ.integrate(
      m.marker_log().markers(), m.pebs_driver().samples());

  const CpuSpec& spec = m.spec();
  report::Distribution warm;
  double f2 = 0, f3 = 0;
  int n = 0;
  for (ItemId id = 2; id <= 31; ++id) { // skip the cold warm-up query
    warm.add(spec.us(table.item_window_total(id)));
    f2 += spec.us(table.elapsed(id, app.f2()));
    f3 += spec.us(table.elapsed(id, app.f3()));
    ++n;
  }
  RunOut out;
  out.warm_mean_us = warm.mean();
  out.warm_p99_us = warm.percentile(99);
  out.f2_mean_us = f2 / n;
  out.f3_mean_us = f3 / n;
  out.table = std::move(table);
  out.f2 = app.f2();
  return out;
}

} // namespace

int main() {
  const CpuSpec spec;
  bench::banner("abl_contention",
                "ablation — shared-L3 contention as a fluctuation source "
                "(cf. Dobrescu et al., cited in §I)",
                spec);

  RunOut alone = run(false);
  RunOut contended = run(true);

  report::Table tab({"configuration", "warm query mean [us]", "p99 [us]",
                     "f2 mean [us]", "f3 mean [us]"});
  tab.row({"worker alone", report::Table::num(alone.warm_mean_us),
           report::Table::num(alone.warm_p99_us),
           report::Table::num(alone.f2_mean_us),
           report::Table::num(alone.f3_mean_us)});
  tab.row({"+ L3 thrasher on core 2",
           report::Table::num(contended.warm_mean_us),
           report::Table::num(contended.warm_p99_us),
           report::Table::num(contended.f2_mean_us),
           report::Table::num(contended.f3_mean_us)});
  tab.print(std::cout);

  // A/B comparison via the diff utility: which functions moved?
  const core::TraceDiff diff =
      core::diff_traces(alone.table, contended.table);
  std::printf("\ntrace diff (alone -> contended), top movers:\n");
  std::printf("  %-30s %10s %12s %8s\n", "function", "alone [us]",
              "contended [us]", "ratio");
  for (std::size_t i = 0; i < diff.functions.size() && i < 3; ++i) {
    const core::FnDelta& d = diff.functions[i];
    std::printf("  fn#%-27u %10.2f %14.2f %7.2fx\n", d.fn,
                spec.us(static_cast<Tsc>(d.mean_a)),
                spec.us(static_cast<Tsc>(d.mean_b)), d.ratio());
  }
  const core::FnDelta* f2d = diff.find(alone.f2);
  if (f2d != nullptr) {
    std::printf("  (fn#%u is sample_app::f2_cache_lookup)\n", alone.f2);
  }

  std::printf(
      "\nslowdown: %.0f%% on identical warm queries — nothing about the\n"
      "queries changed, only the shared cache's state. The per-function\n"
      "trace shows the inflation sits in the memory-touching functions\n"
      "(f2's index probes), which is how a diagnosis distinguishes\n"
      "contention from, e.g., an algorithmic slow path in f3.\n",
      100.0 * (contended.warm_mean_us / alone.warm_mean_us - 1.0));
  return 0;
}
