// Closed-loop reset control across a workload phase change — §V-C beyond
// the paper: instead of picking R from an offline calibration, hold the
// target sample interval online. The traced program switches from a
// compute-dense phase (bzip2-like) to a memory/branch-bound one
// (astar-like); a fixed R's interval drifts with the uop rate, the
// controller's does not.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "fluxtrace/core/adaptive.hpp"
#include "fluxtrace/prog/workload.hpp"
#include "fluxtrace/report/table.hpp"

using namespace fluxtrace;

namespace {

struct PhaseResult {
  double interval_us[2]; // achieved mean interval per phase
  std::uint64_t final_reset;
  std::uint64_t adjustments;
};

/// Runs one workload then another on the same core (a phase change).
class TwoPhaseTask final : public sim::Task {
 public:
  TwoPhaseTask(prog::Workload a, prog::Workload b, std::uint64_t iters)
      : a_(std::move(a), iters), b_(std::move(b), iters) {}

  sim::StepStatus step(sim::Cpu& cpu) override {
    if (a_.remaining() > 0) {
      if (phase_boundary_ == 0 && a_.remaining() == 1) {
        phase_boundary_ = cpu.now(); // approx: set at last step
      }
      return a_.step(cpu) == sim::StepStatus::Done ? sim::StepStatus::Progress
                                                   : sim::StepStatus::Progress;
    }
    if (phase_boundary_ == 0) phase_boundary_ = cpu.now();
    return b_.step(cpu);
  }

  [[nodiscard]] Tsc phase_boundary() const { return phase_boundary_; }

 private:
  prog::WorkloadTask a_, b_;
  Tsc phase_boundary_ = 0;
};

PhaseResult run_two_phase(bool adaptive, double target_ns) {
  SymbolTable symtab;
  const prog::Workload fast = prog::make_bzip2(symtab);
  const prog::Workload slow = prog::make_astar(symtab);
  sim::Machine m(symtab);

  sim::PebsConfig pc;
  pc.reset = 8000;
  // A small buffer so drains deliver samples to the controller *during*
  // the run (a controller only sees what reaches software).
  pc.buffer_capacity = 256;
  m.cpu(0).enable_pebs(pc);

  core::AdaptiveReset controller(
      core::AdaptiveResetConfig{target_ns, 128, 1.05, 64, 1u << 22}, pc.reset,
      m.spec(), [&m](std::uint64_t r) { m.cpu(0).pebs().set_reset(r); });
  if (adaptive) {
    m.pebs_driver().set_sink(
        [&controller](const PebsSample& s) { controller.on_sample(s); });
  }

  TwoPhaseTask task(fast, slow, 2500);
  m.attach(0, task);
  m.run();
  m.flush_samples();

  const Tsc boundary = task.phase_boundary();
  std::size_t n0 = 0, n1 = 0;
  Tsc last0 = 0, first1 = ~Tsc{0}, last1 = 0, first0 = ~Tsc{0};
  for (const PebsSample& s : m.pebs_driver().samples()) {
    if (s.tsc < boundary) {
      ++n0;
      first0 = std::min(first0, s.tsc);
      last0 = std::max(last0, s.tsc);
    } else {
      ++n1;
      first1 = std::min(first1, s.tsc);
      last1 = std::max(last1, s.tsc);
    }
  }
  PhaseResult out{};
  out.interval_us[0] =
      m.spec().us(last0 - first0) / static_cast<double>(n0 - 1);
  out.interval_us[1] =
      m.spec().us(last1 - first1) / static_cast<double>(n1 - 1);
  out.final_reset = controller.current_reset();
  out.adjustments = controller.adjustments();
  return out;
}

} // namespace

int main() {
  const CpuSpec spec;
  bench::banner("ext_adaptive_reset",
                "§V-C extended — closed-loop reset control across a "
                "workload phase change (bzip2-like -> astar-like)",
                spec);

  const double target_ns = 2000.0;
  const PhaseResult fixed = run_two_phase(false, target_ns);
  const PhaseResult adaptive = run_two_phase(true, target_ns);

  report::Table tab({"mode", "phase-1 interval [us]", "phase-2 interval [us]",
                     "final R", "adjustments"});
  tab.row({"fixed R = 8000", report::Table::num(fixed.interval_us[0]),
           report::Table::num(fixed.interval_us[1]), "8000", "0"});
  tab.row({"adaptive (target 2.0 us)",
           report::Table::num(adaptive.interval_us[0]),
           report::Table::num(adaptive.interval_us[1]),
           report::Table::num(adaptive.final_reset),
           report::Table::num(adaptive.adjustments)});
  tab.print(std::cout);

  std::printf(
      "\nWith a fixed reset value the achieved interval tracks the\n"
      "workload's uop rate (phase 2 runs ~3x slower per uop, so sampling\n"
      "slows ~3x); the controller holds the interval near the target by\n"
      "scaling R through the §V-C linearity — no offline recalibration.\n");
  return 0;
}
