// Extension: wait-edge capture overhead and the waiting-dependency
// graph build (ISSUE 8). Three claims are measured and *asserted*:
//
//   1. a RingWaitProbe on the hot SPSC path (ring never full, so the
//      probe is one predicted branch per op) costs <= 5% single-thread
//      push/pop throughput;
//   2. the same bound holds for a real two-thread producer/consumer
//      pair, where genuine stall episodes open and close;
//   3. querying the captured edges is sane: WaitGraph observe + the
//      critical_path finish stay under 10 us/edge even on a loaded
//      shared runner (the interesting guarantees are the ratios).
//
// Results land in BENCH_waitgraph.json so CI can diff runs; the
// committed copy lives in results/.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common.hpp"
#include "fluxtrace/base/wait.hpp"
#include "fluxtrace/query/waitgraph.hpp"
#include "fluxtrace/rt/spsc_ring.hpp"
#include "json_out.hpp"

using namespace fluxtrace;

namespace {

constexpr std::size_t kHotOps = 20'000'000;
constexpr std::size_t kPairItems = 1'000'000;
constexpr int kReps = 5;
constexpr double kMaxOverhead = 1.05; // <= 5%

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

void require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "ASSERTION FAILED: %s\n", what);
    std::exit(1);
  }
}

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

/// Hot path: the ring never fills, so the probe never opens an episode —
/// its whole cost is the stall-state branch on each push/pop.
double hot_path_ms(bool probed, WaitLog& log) {
  rt::SpscRing<std::uint64_t> ring(64);
  if (probed) {
    ring.set_wait_probe(rt::RingWaitProbe{&log, nullptr, 1, 0, 1});
  }
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t sink = 0;
  for (std::size_t i = 0; i < kHotOps; ++i) {
    (void)ring.push(i);
    auto v = ring.pop();
    if (v.has_value()) sink += *v;
  }
  const double ms = ms_since(t0);
  if (sink == 42) std::printf("!"); // defeat dead-code elimination
  return ms;
}

/// Fixed per-item work (a serial multiply chain the compiler cannot
/// collapse) so both sides of the pair run at a matched, realistic pace.
std::uint64_t spin_work(std::uint64_t seed) {
  std::uint64_t acc = seed | 1;
  for (int k = 0; k < 64; ++k) {
    acc = acc * 6364136223846793005ull + 1442695040888963407ull;
  }
  return acc;
}

/// Two real threads through a deep ring, matched per-item work on both
/// sides: the ring's slack absorbs steady-state jitter, so stall
/// episodes are what they are in a healthy pipeline — occasional (an OS
/// scheduling hiccup on either side), not per-item. This is the regime
/// the <= 5% capture claim is about; a saturated ring would stall every
/// item by design and measure the stall, not the probe.
double pair_ms(bool probed, WaitLog& log) {
  rt::SpscRing<std::uint64_t> ring(4096);
  if (probed) {
    ring.set_wait_probe(rt::RingWaitProbe{&log, nullptr, 2, 0, 1});
  }
  std::atomic<bool> go{false};
  std::uint64_t sink = 0;
  std::thread consumer([&] {
    while (!go.load(std::memory_order_acquire)) {
    }
    std::size_t got = 0;
    while (got < kPairItems) {
      auto v = ring.pop();
      if (v.has_value()) {
        sink += spin_work(*v);
        ++got;
      }
    }
  });
  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (std::size_t i = 0; i < kPairItems; ++i) {
    const std::uint64_t v = spin_work(i);
    while (!ring.push(v)) {
    }
  }
  consumer.join();
  const double ms = ms_since(t0);
  if (sink == 42) std::printf("!");
  return ms;
}

} // namespace

int main() {
  bench::banner("ext_waitgraph: wait-edge capture overhead + graph build",
                "ISSUE 8 (wait edges, waiting-dependency graphs, "
                "critical_path)");

  bench::BenchJson json("waitgraph");
  WaitLog log;

  // ---- 1. hot-path overhead ------------------------------------------
  std::vector<double> plain_hot, probed_hot;
  for (int r = 0; r < kReps; ++r) {
    plain_hot.push_back(hot_path_ms(false, log));
    probed_hot.push_back(hot_path_ms(true, log));
  }
  const double hot_off = median(plain_hot);
  const double hot_on = median(probed_hot);
  const double hot_ratio = hot_on / hot_off;
  std::printf("hot push/pop   : off %7.1f ms, probed %7.1f ms  "
              "(%.1f ns/op, ratio %.3f)\n",
              hot_off, hot_on, hot_on * 1e6 / static_cast<double>(kHotOps),
              hot_ratio);
  json.add("hot_path_unprobed", static_cast<double>(kHotOps),
           hot_off * 1e6 / static_cast<double>(kHotOps));
  json.add("hot_path_probed", static_cast<double>(kHotOps),
           hot_on * 1e6 / static_cast<double>(kHotOps));
  require(hot_ratio <= kMaxOverhead,
          "hot-path probe overhead <= 5% (median of 5)");

  // ---- 2. two-thread overhead, with real episodes --------------------
  std::vector<double> plain_pair, probed_pair;
  std::size_t edges_captured = 0;
  for (int r = 0; r < kReps; ++r) {
    plain_pair.push_back(pair_ms(false, log));
    log.clear();
    probed_pair.push_back(pair_ms(true, log));
    edges_captured = log.size();
  }
  const double pair_off = median(plain_pair);
  const double pair_on = median(probed_pair);
  const double pair_ratio = pair_on / pair_off;
  std::printf("2-thread pair  : off %7.1f ms, probed %7.1f ms  "
              "(ratio %.3f, %zu edges in last rep)\n",
              pair_off, pair_on, pair_ratio, edges_captured);
  json.add("pair_unprobed", static_cast<double>(kPairItems),
           pair_off * 1e6 / static_cast<double>(kPairItems));
  json.add("pair_probed", static_cast<double>(kPairItems),
           pair_on * 1e6 / static_cast<double>(kPairItems));
  require(pair_ratio <= kMaxOverhead,
          "two-thread probe overhead <= 5% (median of 5)");

  // ---- 3. graph build + finish over 1M edges -------------------------
  constexpr std::size_t kEdges = 500'000;
  std::vector<WaitEdge> edges;
  edges.reserve(kEdges);
  std::uint64_t s = 0x9e3779b97f4a7c15ull;
  const auto next = [&s]() {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return s >> 33;
  };
  for (std::size_t i = 0; i < kEdges; ++i) {
    WaitEdge e;
    e.enter = next() % 1000000;
    e.leave = e.enter + 1 + next() % 2000;
    e.item = next() % 4 == 0 ? kNoItem : next() % 4096;
    e.waiter_core = static_cast<std::uint32_t>(next() % 8);
    e.holder_core = static_cast<std::uint32_t>(next() % 8);
    e.resource = static_cast<std::uint32_t>(next() % 32);
    e.cause = static_cast<WaitCause>(next() % kNumWaitCauses);
    edges.push_back(e);
  }
  const auto t0 = std::chrono::steady_clock::now();
  query::WaitGraph g;
  for (const WaitEdge& e : edges) g.observe(e);
  const query::QueryResult cp = query::finish_critical_path(std::move(g));
  const double build_ms = ms_since(t0);
  const double ns_per_edge = build_ms * 1e6 / static_cast<double>(kEdges);
  std::printf("graph build    : %zu edges -> %zu items in %7.1f ms "
              "(%.0f ns/edge)\n",
              kEdges, cp.rows.size(), build_ms, ns_per_edge);
  json.add("graph_build_finish", static_cast<double>(kEdges), ns_per_edge);
  require(!cp.rows.empty(), "critical_path produced rows");
  // Sanity bound only (shared CI runners wobble on absolute time);
  // the hard guarantees are the two overhead ratios above.
  require(ns_per_edge <= 10000.0, "graph build + finish <= 10 us/edge");

  json.write();
  std::printf("\nall assertions held: probe overhead <= 5%% on the hot path "
              "and under real\ntwo-thread stalls, graph build + "
              "critical_path finish <= 10 us/edge.\n");
  return 0;
}
