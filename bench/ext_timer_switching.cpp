// §V-A extension: the timer-switching architecture. A user-level
// scheduler preempts data-items mid-flight, so marker windows overlap and
// window-based mapping mis-attributes samples; carrying the item id in
// R13 (swapped by the user-level context switch) fixes attribution.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "fluxtrace/core/integrator.hpp"
#include "fluxtrace/core/regid.hpp"
#include "fluxtrace/report/table.hpp"
#include "fluxtrace/rt/ulthread.hpp"

using namespace fluxtrace;

int main() {
  const CpuSpec spec;
  bench::banner("ext_timer_switching",
                "§V-A — register-carried item ids under a preemptive "
                "user-level scheduler",
                spec);

  SymbolTable symtab;
  const SymbolId fn_a = symtab.add("handle_type_a", 0x800);
  const SymbolId fn_b = symtab.add("handle_type_b", 0x800);
  const SymbolId sched_fn = symtab.add("ul_context_switch", 0x100);

  sim::Machine m(symtab);
  sim::PebsConfig pc;
  pc.reset = 1000;
  m.cpu(0).enable_pebs(pc);

  rt::UlSchedulerConfig cfg;
  cfg.timeslice = 3000; // 1 us slices
  cfg.scheduler_symbol = sched_fn;
  rt::UlScheduler sched(cfg);
  // Four items of two kinds interleave; items 1/3 run fn_a, 2/4 run fn_b.
  sched.submit(rt::UlWork{1, {sim::ExecBlock{fn_a, 120000, 0, {}}}});
  sched.submit(rt::UlWork{2, {sim::ExecBlock{fn_b, 120000, 0, {}}}});
  sched.submit(rt::UlWork{3, {sim::ExecBlock{fn_a, 60000, 0, {}}}});
  sched.submit(rt::UlWork{4, {sim::ExecBlock{fn_b, 60000, 0, {}}}});
  m.attach(0, sched);
  m.run();
  m.flush_samples();

  std::printf("context switches: %llu, items completed: %llu\n\n",
              static_cast<unsigned long long>(sched.context_switches()),
              static_cast<unsigned long long>(sched.completed()));

  // How the two mappings compare sample-by-sample.
  core::RegisterIdMapper mapper;
  const auto cmp = mapper.compare_with_windows(
      m.pebs_driver().samples(), m.marker_log().markers());
  std::printf("samples: %llu | window-attributed: %llu | "
              "register-attributed: %llu | disagreements: %llu (%.1f%%)\n\n",
              static_cast<unsigned long long>(cmp.total),
              static_cast<unsigned long long>(cmp.by_window),
              static_cast<unsigned long long>(cmp.by_register),
              static_cast<unsigned long long>(cmp.disagree),
              100.0 * static_cast<double>(cmp.disagree) /
                  static_cast<double>(cmp.total));

  // Per-item attribution: with register ids, each item's samples land
  // only in its own function; window mode bleeds across items.
  core::TraceIntegrator by_window(symtab);
  core::TraceIntegrator by_reg(symtab, core::IntegratorConfig{true});
  const auto wt = by_window.integrate(m.marker_log().markers(),
                                      m.pebs_driver().samples());
  const auto rt_ = by_reg.integrate(m.marker_log().markers(),
                                    m.pebs_driver().samples());

  report::Table tab({"item", "true fn", "win: own-fn", "win: other-fn",
                     "reg: own-fn", "reg: other-fn"});
  for (ItemId id = 1; id <= 4; ++id) {
    const SymbolId own = (id % 2 == 1) ? fn_a : fn_b;
    const SymbolId other = (id % 2 == 1) ? fn_b : fn_a;
    tab.row({"#" + std::to_string(id), std::string(symtab.name(own)),
             report::Table::num(wt.sample_count(id, own)),
             report::Table::num(wt.sample_count(id, other)),
             report::Table::num(rt_.sample_count(id, own)),
             report::Table::num(rt_.sample_count(id, other))});
  }
  tab.print(std::cout);

  std::printf(
      "\nWindow-based mapping attributes other items' samples to whichever\n"
      "window happens to cover the timestamp ('other-fn' > 0); the R13-\n"
      "carried id attributes every sample to the right item (0 leakage).\n"
      "The paper verified Linux + glibc build and run with R13 reserved.\n");
  return 0;
}
