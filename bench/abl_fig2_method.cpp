// Ablation of Figure 2's own methodology. The paper estimates NGINX's
// per-request function times as T_request × c_f / c_a from a whole-run
// cycle profile — an *average* that presumes every request is alike. The
// hybrid method measures the same quantity per request. This bench runs
// both on the same workload and shows what the averaged estimate hides:
// the per-request spread that is the paper's whole subject.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "fluxtrace/apps/webserver_model.hpp"
#include "fluxtrace/core/integrator.hpp"
#include "fluxtrace/report/stats.hpp"
#include "fluxtrace/report/table.hpp"

using namespace fluxtrace;

int main() {
  const CpuSpec spec;
  bench::banner("abl_fig2_method",
                "ablation — Fig. 2's averaged estimate vs the hybrid "
                "method's per-request measurement, same workload",
                spec);

  SymbolTable symtab;
  apps::WebServerConfig cfg;
  cfg.total_requests = 800;
  cfg.instrument = true; // hybrid markers on
  apps::WebServerModel model(symtab, cfg);

  sim::Machine m(symtab);
  sim::PebsConfig pc;
  pc.reset = 2000;
  pc.buffer_capacity = 1u << 15;
  m.cpu(0).enable_pebs(pc);
  model.attach(m, 0);
  m.run();
  m.flush_samples();

  const auto& st = m.cpu(0).stats();
  const double t_req_us =
      spec.us(st.busy_cycles) / static_cast<double>(model.processed());

  core::TraceIntegrator integ(symtab);
  const core::TraceTable table = integ.integrate(
      m.marker_log().markers(), m.pebs_driver().samples());

  // Compare for the three biggest functions.
  report::Table tab({"function", "Fig.2 estimate [us]", "hybrid mean [us]",
                     "hybrid p01 [us]", "hybrid p99 [us]", "p99/p01"});
  int shown = 0;
  for (const auto& f : model.functions()) {
    const double share = static_cast<double>(st.fn_time(f.sym)) /
                         static_cast<double>(st.busy_cycles);
    const double fig2_est = share * t_req_us;
    if (fig2_est < 2.0) continue; // focus on the large functions
    report::Distribution d;
    for (ItemId req = 0; req < cfg.total_requests; ++req) {
      const Tsc e = table.elapsed(req, f.sym);
      if (e > 0) d.add(spec.us(e));
    }
    if (d.count() < cfg.total_requests / 2) continue;
    tab.row({std::string(symtab.name(f.sym)),
             report::Table::num(fig2_est), report::Table::num(d.mean()),
             report::Table::num(d.percentile(1)),
             report::Table::num(d.percentile(99)),
             report::Table::num(d.percentile(99) / d.percentile(1))});
    ++shown;
  }
  tab.print(std::cout);

  std::printf(
      "\nThe averaged estimate (what perf's cycle profile gives) tracks\n"
      "the hybrid mean's shape (the hybrid spans sit ~30%% higher because\n"
      "they include the 250 ns assists this aggressive R=2000 injects —\n"
      "the very overhead/accuracy trade-off of Figs. 9/10). What the\n"
      "average cannot show at any R is the per-request spread: the same\n"
      "function varies by the p99/p01 factor shown, visible only in the\n"
      "per-data-item trace. Fig. 2 is right for its purpose — sizing the\n"
      "instrumentation overhead — and blind to the fluctuations.\n");
  return shown > 0 ? 0 : 1;
}
