// Multi-core simultaneous tracing. §III-D notes the procedure "is
// executed on every core of a multi-core CPU — PEBS supports sampling
// core-related events for every core simultaneously". With all three
// worker threads instrumented and sampled, each packet gets one marker
// window per core it crosses, and the integration yields a full pipeline
// breakdown: RX handling, queue wait, classification, another queue wait,
// TX handling — per packet.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "fluxtrace/acl/ruleset.hpp"
#include "fluxtrace/apps/acl_firewall_app.hpp"
#include "fluxtrace/core/integrator.hpp"
#include "fluxtrace/net/trafficgen.hpp"
#include "fluxtrace/report/gantt.hpp"
#include "fluxtrace/report/table.hpp"

using namespace fluxtrace;

int main() {
  const CpuSpec spec;
  bench::banner("ext_multicore_pipeline",
                "§III-D — tracing every pipeline core simultaneously: "
                "per-packet breakdown across RX/ACL/TX + queue waits",
                spec);

  const acl::RuleSet rules = acl::make_paper_ruleset();
  SymbolTable symtab;
  apps::AclFirewallConfig cfg;
  cfg.instrument_rx_tx = true;
  apps::AclFirewallApp app(symtab, rules, cfg);

  sim::Machine m(symtab);
  net::TrafficGenConfig tgc;
  tgc.total_packets = 900;
  tgc.inter_packet_gap_ns = 20000;
  const acl::PaperPackets pk;
  net::TrafficGen tg(tgc, app.rx_nic(), app.tx_nic(),
                     {pk.type_a, pk.type_b, pk.type_c});

  // PEBS on all three pipeline cores at once.
  for (const std::uint32_t core : {1u, 2u, 3u}) {
    sim::PebsConfig pc;
    pc.reset = 8000;
    m.cpu(core).enable_pebs(pc);
  }
  app.expect_packets(tgc.total_packets);
  m.attach(0, tg);
  app.attach(m, 1, 2, 3);
  m.run();
  m.flush_samples();

  core::TraceIntegrator integ(symtab);
  const core::TraceTable table = integ.integrate(
      m.marker_log().markers(), m.pebs_driver().samples());

  // Per-type means of each pipeline stage.
  struct Acc {
    double rx = 0, q1 = 0, acl = 0, q2 = 0, tx = 0;
    int n = 0;
  } acc[3];
  for (const auto& rec : tg.records()) {
    const core::ItemWindow* w_rx = table.window_of(rec.id, 1);
    const core::ItemWindow* w_acl = table.window_of(rec.id, 2);
    const core::ItemWindow* w_tx = table.window_of(rec.id, 3);
    if (w_rx == nullptr || w_acl == nullptr || w_tx == nullptr) continue;
    Acc& a = acc[rec.flow_idx % 3];
    a.rx += spec.us(w_rx->length());
    a.q1 += spec.us(w_acl->enter - w_rx->leave);
    a.acl += spec.us(w_acl->length());
    a.q2 += spec.us(w_tx->enter - w_acl->leave);
    a.tx += spec.us(w_tx->length());
    ++a.n;
  }

  report::Table tab({"type", "rx [us]", "wait rx->acl [us]", "acl [us]",
                     "wait acl->tx [us]", "tx [us]"});
  const char* names[3] = {"A", "B", "C"};
  for (int f = 0; f < 3; ++f) {
    const Acc& a = acc[f];
    tab.row({names[f], report::Table::num(a.rx / a.n),
             report::Table::num(a.q1 / a.n), report::Table::num(a.acl / a.n),
             report::Table::num(a.q2 / a.n),
             report::Table::num(a.tx / a.n)});
  }
  tab.print(std::cout);

  // One packet of each type, drawn across the pipeline.
  std::printf("\ntimeline of three consecutive packets (one per type):\n");
  report::Gantt gantt(70);
  const char glyphs[3] = {'A', 'B', 'C'};
  Tsc lo = ~Tsc{0}, hi = 0;
  for (ItemId id = 30; id <= 32; ++id) { // ids 30..32 = types A,B,C
    for (std::uint32_t core = 1; core <= 3; ++core) {
      const core::ItemWindow* w = table.window_of(id, core);
      if (w == nullptr) continue;
      lo = std::min(lo, w->enter);
      hi = std::max(hi, w->leave);
    }
  }
  gantt.set_range(lo, hi);
  for (ItemId id = 30; id <= 32; ++id) {
    for (std::uint32_t core = 1; core <= 3; ++core) {
      const core::ItemWindow* w = table.window_of(id, core);
      if (w == nullptr) continue;
      const char* names[4] = {"", "rx ", "acl", "tx "};
      gantt.span(names[core], w->enter, w->leave,
                 glyphs[(id - 30) % 3]);
    }
  }
  gantt.print(std::cout);

  std::printf("\nPEBS samples collected across the three cores: %zu "
              "(drains: %llu)\n",
              m.pebs_driver().samples().size(),
              static_cast<unsigned long long>(m.pebs_driver().drains()));
  std::printf(
      "\nThe fluctuation lives entirely in the ACL stage; RX/TX handling\n"
      "and the queue hops are type-independent. In a diagnosis this rules\n"
      "out queueing (a load problem) and pins the cause inside\n"
      "rte_acl_classify — per packet, across cores, from one trace.\n");
  return 0;
}
