// Figure 1: a trace (left) vs a profile (right) of an imaginary web
// server with three functions. The profile shows only accumulated
// ("averaged") results and cannot reveal that function A took 90 us for
// request #1 but only 10 us for request #2 — the trace can.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "fluxtrace/core/integrator.hpp"
#include "fluxtrace/core/profile.hpp"
#include "fluxtrace/report/table.hpp"
#include "fluxtrace/sim/machine.hpp"

using namespace fluxtrace;

namespace {

/// Scripted toy server: request #1 hits a cold path in A (90 us); every
/// other request spends 10 us in A. B and C are constant.
class ToyServer final : public sim::Task {
 public:
  ToyServer(SymbolId a, SymbolId b, SymbolId c, int requests)
      : a_(a), b_(b), c_(c), remaining_(requests) {}

  sim::StepStatus step(sim::Cpu& cpu) override {
    if (remaining_ == 0) return sim::StepStatus::Done;
    const ItemId id = ++next_id_;
    cpu.mark_enter(id);
    const bool cold = id == 1;
    cpu.exec(a_, cold ? 675000 : 75000); // 90 us vs 10 us at 3 GHz
    cpu.exec(b_, 30000);                 // 4 us
    cpu.exec(c_, 22500);                 // 3 us
    cpu.mark_leave(id);
    --remaining_;
    return remaining_ == 0 ? sim::StepStatus::Done
                           : sim::StepStatus::Progress;
  }

 private:
  SymbolId a_, b_, c_;
  int remaining_;
  ItemId next_id_ = 0;
};

} // namespace

int main() {
  const CpuSpec spec;
  bench::banner("fig01_trace_vs_profile",
                "Fig. 1 — a trace vs a profile of a 3-function server",
                spec);

  SymbolTable symtab;
  const SymbolId a = symtab.add("funcA", 0x400);
  const SymbolId b = symtab.add("funcB", 0x400);
  const SymbolId c = symtab.add("funcC", 0x400);

  sim::Machine m(symtab);
  sim::PebsConfig pc;
  pc.reset = 8000; // ~1 us interval: plenty of samples, modest overhead
  m.cpu(0).enable_pebs(pc);

  ToyServer server(a, b, c, 50);
  m.attach(0, server);
  const auto run = m.run();
  m.flush_samples();

  core::TraceIntegrator integ(symtab);
  const core::TraceTable table = integ.integrate(
      m.marker_log().markers(), m.pebs_driver().samples());

  std::printf("--- Trace: per-request, per-function elapsed time ---\n");
  report::Table trace({"request", "funcA [us]", "funcB [us]", "funcC [us]"});
  for (const ItemId id : {1u, 2u, 3u, 49u, 50u}) {
    trace.row({"#" + std::to_string(id),
               report::Table::num(spec.us(table.elapsed(id, a))),
               report::Table::num(spec.us(table.elapsed(id, b))),
               report::Table::num(spec.us(table.elapsed(id, c)))});
  }
  trace.print(std::cout);

  std::printf("\n--- Profile: total time per function over the run ---\n");
  const core::Profile prof = core::Profile::from_samples(
      symtab, m.pebs_driver().samples(), run.end_tsc);
  report::Table ptab({"function", "samples", "share", "total time [us]"});
  for (const auto& e : prof.entries()) {
    ptab.row({std::string(symtab.name(e.fn)), report::Table::num(e.samples),
              report::Table::num(e.share * 100.0, 1) + "%",
              report::Table::num(spec.us(e.est_time))});
  }
  ptab.print(std::cout);

  std::printf(
      "\nThe profile averages away the fluctuation; the trace shows that\n"
      "funcA took %.0f us for request #1 but only %.0f us for request #2\n"
      "(scripted: 90 us vs 10 us, plus sampling overhead inside the spans).\n",
      spec.us(table.elapsed(1, a)), spec.us(table.elapsed(2, a)));
  return 0;
}
