// Ablation: PEBS buffer size and drain strategy. The paper's prototype
// dumps each full buffer synchronously to SSD and names double buffering
// as the obvious future-work optimization (§III-E). This bench quantifies
// the choice: tester-observed overhead across buffer capacities, with and
// without double buffering.
#include <cstdio>
#include <iostream>

#include "acl_common.hpp"
#include "fluxtrace/report/table.hpp"

using namespace fluxtrace;
using namespace fluxtrace::bench;

int main() {
  const CpuSpec spec;
  banner("abl_buffering",
         "ablation — PEBS buffer capacity x drain strategy (sync SSD dump "
         "vs double buffering), ACL case study at R = 8000",
         spec);

  const acl::RuleSet rules = acl::make_paper_ruleset();

  AclRunConfig off;
  off.app.instrument = false;
  const double l_star = overall_latency_us(run_acl_case_study(rules, off));
  std::printf("L* (no profiling): %.2f us\n\n", l_star);

  report::Table tab({"buffer [samples]", "strategy", "drains",
                     "IRQ stall [us total]", "samples lost",
                     "overhead [us/pkt]"});
  for (const std::uint32_t buf : {128u, 512u, 2048u}) {
    for (const bool db : {false, true}) {
      AclRunConfig cfg;
      cfg.pebs_reset = 8000;
      cfg.pebs_buffer = buf;
      cfg.driver.double_buffering = db;
      cfg.packets = 1500;
      const AclRunResult r = run_acl_case_study(rules, cfg);
      tab.row({report::Table::num(buf),
               db ? "double-buffer" : "sync SSD dump",
               report::Table::num(r.pebs_drains),
               report::Table::num(spec.us(r.drain_stall)),
               report::Table::num(r.pebs_lost),
               report::Table::num(overall_latency_us(r) - l_star)});
    }
  }
  tab.print(std::cout);

  std::printf(
      "\nWith the prototype's synchronous SSD dump, PEBS stays disarmed\n"
      "while the helper saves each full buffer, losing samples (blind\n"
      "windows in the trace). The lost fraction is set by the sampling\n"
      "data rate vs the SSD bandwidth — note it is nearly independent of\n"
      "the buffer size — so only double buffering, which dumps in the\n"
      "background and disarms just for a buffer swap, eliminates it.\n"
      "Buffer size instead trades IRQ frequency against loss burstiness.\n");
  return 0;
}
