// The database case study, end to end. §II-A's motivating quote (Huang et
// al., SIGMOD'17, on TPC-C over MySQL/Postgres/VoltDB): "the standard
// deviation was twice the mean" and "the 99th percentile was an order of
// magnitude greater than the mean". This bench runs a TPC-C-flavoured
// mixed workload on the mini storage engine, reproduces the distribution
// shape, and — the paper's contribution — shows the per-item,
// per-function trace separating the three tail causes (cold buffer pool,
// group commit, index splits) that a profile would smear together.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <map>

#include "common.hpp"
#include "fluxtrace/apps/minidb_app.hpp"
#include "fluxtrace/core/integrator.hpp"
#include "fluxtrace/report/stats.hpp"
#include "fluxtrace/report/table.hpp"

using namespace fluxtrace;

int main() {
  const CpuSpec spec;
  bench::banner("ext_db_fluctuation",
                "§II-A motivation, database edition — per-query latency "
                "distribution and per-function tail attribution",
                spec);

  SymbolTable symtab;
  apps::MiniDbApp app(symtab);
  app.preload(4096); // 128 heap pages; the pool holds 96

  const auto queries = apps::MiniDbApp::make_mixed_workload(3000, 11, 4096);
  app.submit(queries);

  sim::Machine m(symtab);
  sim::PebsConfig pc;
  pc.reset = 2000;
  pc.buffer_capacity = 1u << 16;
  m.cpu(1).enable_pebs(pc);
  app.attach(m, 0, 1);
  m.run();
  m.flush_samples();

  core::TraceIntegrator integ(symtab);
  const core::TraceTable table = integ.integrate(
      m.marker_log().markers(), m.pebs_driver().samples());

  // ---- distribution per query type, and overall -----------------------
  const char* type_names[3] = {"point", "range", "insert"};
  report::Distribution per_type[3];
  report::Distribution all;
  for (const apps::DbQuery& q : queries) {
    const double us = spec.us(table.item_window_total(q.id));
    per_type[static_cast<int>(q.type)].add(us);
    all.add(us);
  }

  report::Table tab({"queries", "n", "mean [us]", "stddev", "p50", "p99",
                     "max", "sd/mean", "p99/mean"});
  const auto row = [&](const char* name, report::Distribution& d) {
    tab.row({name, report::Table::num(d.count()),
             report::Table::num(d.mean()), report::Table::num(d.stddev()),
             report::Table::num(d.percentile(50)),
             report::Table::num(d.percentile(99)),
             report::Table::num(d.max()),
             report::Table::num(d.stddev() / d.mean()),
             report::Table::num(d.p99_over_mean())});
  };
  row("all", all);
  for (int t = 0; t < 3; ++t) row(type_names[t], per_type[t]);
  tab.print(std::cout);

  std::printf("\npaper reference (Huang et al. on TPC-C): sd/mean ~ 2, "
              "p99/mean ~ 10x\n");

  // ---- tail attribution: which function carries each slow query? ------
  const double p99 = all.percentile(99);
  std::map<SymbolId, double> tail_by_fn;
  double tail_total = 0;
  int tail_n = 0;
  for (const apps::DbQuery& q : queries) {
    const double us = spec.us(table.item_window_total(q.id));
    if (us < p99) continue;
    ++tail_n;
    for (const SymbolId fn : table.functions(q.id)) {
      tail_by_fn[fn] += spec.us(table.elapsed(q.id, fn));
      tail_total += spec.us(table.elapsed(q.id, fn));
    }
  }
  std::printf("\ntail (>= p99, n = %d) per-function attribution:\n", tail_n);
  report::Table ttab({"function", "share of tail time"});
  for (const auto& [fn, us] : tail_by_fn) {
    ttab.row({std::string(symtab.name(fn)),
              report::Table::num(100.0 * us / tail_total, 1) + "%"});
  }
  ttab.print(std::cout);

  // ---- the same-query fluctuation, explicitly -------------------------
  // Find a hot key queried many times; show its fastest and slowest
  // instances with breakdown.
  std::map<std::uint64_t, std::vector<ItemId>> by_key;
  for (const apps::DbQuery& q : queries) {
    if (q.type == apps::DbQueryType::Point) by_key[q.key].push_back(q.id);
  }
  // Among keys queried several times, show the one with the widest
  // fast-vs-slow spread (the key whose page got evicted mid-run).
  std::uint64_t best_key = 0;
  std::size_t best_n = 0;
  double best_ratio = 0;
  for (const auto& [key, ids] : by_key) {
    if (ids.size() < 4) continue;
    Tsc lo = ~Tsc{0}, hi = 0;
    for (const ItemId id : ids) {
      const Tsc t = table.item_window_total(id);
      lo = std::min(lo, t);
      hi = std::max(hi, t);
    }
    const double ratio = static_cast<double>(hi) / static_cast<double>(lo);
    if (ratio > best_ratio) {
      best_ratio = ratio;
      best_key = key;
      best_n = ids.size();
    }
  }
  ItemId fast = 0, slow = 0;
  Tsc fast_t = ~Tsc{0}, slow_t = 0;
  for (const ItemId id : by_key[best_key]) {
    const Tsc t = table.item_window_total(id);
    if (t < fast_t) {
      fast_t = t;
      fast = id;
    }
    if (t > slow_t) {
      slow_t = t;
      slow = id;
    }
  }
  std::printf("\nidentical query point(%llu), issued %zu times:\n",
              static_cast<unsigned long long>(best_key), best_n);
  std::printf("  fastest (#%llu): %.2f us | fetch_rows %.2f us\n",
              static_cast<unsigned long long>(fast), spec.us(fast_t),
              spec.us(table.elapsed(fast, app.fetch_rows())));
  std::printf("  slowest (#%llu): %.2f us | fetch_rows %.2f us\n",
              static_cast<unsigned long long>(slow), spec.us(slow_t),
              spec.us(table.elapsed(slow, app.fetch_rows())));
  std::printf(
      "\nThe slow instance's time sits in fetch_rows — its heap page had\n"
      "been evicted by an interleaved scan. Group-commit spikes show under\n"
      "wal_flush instead. One trace separates all the tail causes.\n");
  return 0;
}
