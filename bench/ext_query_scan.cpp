// Extension: the trace query engine over a 1M-sample FLXT v2 trace.
// Five claims are measured and *asserted*, not just printed:
//
//   1. the cold full scan (decode + columnar build + batch scan) holds
//      the ISSUE 7 budget: >= 5x faster than the recorded per-row
//      engine's 1161.188 ns/row, i.e. <= 232.2 ns/row;
//   2. a selective query on a reopened trace prunes chunks through the
//      FLXI sidecar — strictly fewer chunks read than the full scan —
//      and skips blocks through the zone maps;
//   3. the pruned result is byte-identical to the index-free result;
//   4. the vectorized batch kernels are bit-identical to the portable
//      scalar interpreter (EngineOptions::portable_eval) on every
//      query shape tried;
//   5. the parallel scan is bit-identical to the sequential one at
//      every thread count tried, and scales when the host has cores to
//      scale onto (graduated by std::thread::hardware_concurrency()).
//
// Results land in BENCH_query.json (full scan, pruned scan, parallel
// sweep) so CI can diff runs.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>

#include "common.hpp"
#include "fluxtrace/io/chunked.hpp"
#include "fluxtrace/query/engine.hpp"
#include "json_out.hpp"

using namespace fluxtrace;

namespace {

constexpr std::size_t kItems = 1000;
constexpr std::size_t kSamplesPerItem = 1000; // 1M samples total
constexpr std::size_t kRecordsPerChunk = 4096;

// ISSUE 7 acceptance: the recorded per-row engine measured
// 1161.188 ns/row cold; the batch engine must be >= 5x faster.
constexpr double kColdBudgetNsPerRow = 1161.188 / 5.0;

struct Workload {
  SymbolTable symtab;
  io::TraceData data;
};

/// Synthetic but structured: each item is one marker window on one of 8
/// cores; sample ips spread over 16 functions with a stable hot one.
Workload make_workload() {
  Workload w;
  std::vector<SymbolId> fns;
  for (int i = 0; i < 16; ++i) {
    fns.push_back(w.symtab.add("svc::fn_" + std::to_string(i), 0x400));
  }
  auto rnd = [state = 0x9e3779b97f4a7c15ull]() mutable {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 11;
  };
  w.data.samples.reserve(kItems * kSamplesPerItem);
  for (std::size_t i = 0; i < kItems; ++i) {
    const auto core = static_cast<std::uint32_t>(i % 8);
    const Tsc t0 = 100000 * (i + 1);
    const Tsc t1 = t0 + 90000;
    w.data.markers.push_back({t0, i, core, MarkerKind::Enter});
    for (std::size_t s = 0; s < kSamplesPerItem; ++s) {
      PebsSample smp;
      smp.tsc = t0 + 1 + (s * 89000) / kSamplesPerItem;
      smp.core = core;
      // Zipf-ish: half the samples in fn_0, the rest spread.
      smp.ip = w.symtab.ip_at(fns[rnd() % 2 == 0 ? 0 : rnd() % 16], 0.5);
      w.data.samples.push_back(smp);
    }
    w.data.markers.push_back({t1, i, core, MarkerKind::Leave});
  }
  return w;
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

void require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "ASSERTION FAILED: %s\n", what);
    std::exit(1);
  }
}

} // namespace

int main() {
  bench::banner("ext_query_scan: batch columnar queries + FLXI pruning",
                "ISSUE 7 (batch scan API over the §IV trace container)");

  const Workload w = make_workload();
  const std::string path = "/tmp/fluxtrace_bench_query.flxt";
  std::remove(query::flxi_path(path).c_str());
  io::save_trace_v2(path, w.data, kRecordsPerChunk);
  std::printf("trace: %zu samples, %zu items, %zu records/chunk\n\n",
              w.data.samples.size(), kItems, kRecordsPerChunk);

  bench::BenchJson json("query");
  const double n_rows = static_cast<double>(w.data.samples.size());
  const std::string selective =
      "filter item == 500 | group func: count, sum(ts)";

  // ---- 1. cold full scan (no sidecar yet) — group-by over everything --
  query::QueryResult full_group;
  {
    query::EngineOptions opts;
    opts.threads = 1;
    query::QueryEngine eng = query::QueryEngine::open(path, w.symtab, opts);
    const auto t0 = std::chrono::steady_clock::now();
    full_group = eng.run("group func: count, sum(dur), p99(ts)");
    const double ms = ms_since(t0);
    const double ns_per_row = ms * 1e6 / n_rows;
    require(full_group.stats.index_written, "cold scan persists the sidecar");
    require(!full_group.stats.index_used, "cold scan cannot use a sidecar");
    std::printf("full scan  : %8.1f ms  (%.2f ns/row, %zu chunks read, "
                "group func -> %zu rows)\n",
                ms, ns_per_row, full_group.stats.chunks_read,
                full_group.rows.size());
    require(ns_per_row <= kColdBudgetNsPerRow,
            "cold full scan >= 5x faster than the recorded 1161.188 ns/row");
    json.add("full_scan_group_by", n_rows, ns_per_row);
  }

  // ---- 2. reopened engine: FLXI prunes the selective query -----------
  query::QueryResult pruned;
  {
    query::EngineOptions opts;
    opts.threads = 1;
    query::QueryEngine eng = query::QueryEngine::open(path, w.symtab, opts);
    const auto t0 = std::chrono::steady_clock::now();
    pruned = eng.run(selective);
    const double ms = ms_since(t0);
    require(pruned.stats.index_used, "reopen uses the sidecar");
    require(pruned.stats.chunks_read < pruned.stats.chunks_total,
            "pruned scan reads fewer chunks than the trace holds");
    require(pruned.stats.chunks_pruned > 0, "pruning skipped chunks");
    std::printf("pruned scan: %8.1f ms  (%zu of %zu chunks read, %zu "
                "pruned, %zu of %zu blocks zone-skipped)\n",
                ms, pruned.stats.chunks_read, pruned.stats.chunks_total,
                pruned.stats.chunks_pruned, pruned.stats.blocks_skipped,
                pruned.stats.blocks_total);
    json.add("pruned_selective_scan", n_rows, ms * 1e6 / n_rows);
  }

  // ---- 3. the pruned result is identical to the index-free one -------
  {
    query::EngineOptions opts;
    opts.threads = 1;
    opts.use_index = false;
    opts.write_index = false;
    query::QueryEngine eng = query::QueryEngine::open(path, w.symtab, opts);
    const query::QueryResult unpruned = eng.run(selective);
    require(!unpruned.stats.index_used, "index disabled");
    require(unpruned.rows == pruned.rows && unpruned.columns == pruned.columns,
            "pruned result identical to the full-scan result");
    std::printf("identity   : pruned == full-scan result (%zu rows)\n",
                pruned.rows.size());
  }

  // ---- 4. vectorized kernels == portable scalar interpreter ----------
  {
    const char* queries[] = {
        "group func: count, sum(dur), p99(ts)",
        "filter ts % 5 != 0 && item >= 0 | group core: count, sum(ts)",
        "filter item * 3 - ts / 7 > 0 | select item, func, ts | limit 5000",
        "filter dur > 0 | outliers k=2.5",
    };
    for (const bool portable : {false, true}) {
      query::EngineOptions opts;
      opts.threads = 1;
      opts.use_index = false;
      opts.write_index = false;
      opts.portable_eval = portable;
      query::QueryEngine eng = query::QueryEngine::open(path, w.symtab, opts);
      static std::map<std::string, query::QueryResult> ref;
      for (const char* q : queries) {
        query::QueryResult res = eng.run(q);
        if (!portable) {
          ref[q] = std::move(res);
        } else {
          require(res.rows == ref[q].rows && res.columns == ref[q].columns,
                  "portable scalar result bit-identical to vectorized");
        }
      }
    }
    std::printf("portable   : scalar interpreter == vectorized kernels "
                "(4 query shapes)\n");
  }

  // ---- 5. parallel sweep: bit-identical at every thread count --------
  std::printf("\nparallel scan sweep (filter + group, no index):\n");
  query::QueryResult seq_ref;
  std::map<unsigned, double> sweep_ms;
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    query::EngineOptions opts;
    opts.threads = threads;
    opts.use_index = false;
    opts.write_index = false;
    query::QueryEngine eng = query::QueryEngine::open(path, w.symtab, opts);
    const std::string q =
        "filter ts % 5 != 0 | group core: count, sum(ts), p95(ts)";
    (void)eng.run(q); // warm the columnar cache; time the scan alone
    const auto t0 = std::chrono::steady_clock::now();
    const query::QueryResult res = eng.run(q);
    const double ms = ms_since(t0);
    if (threads == 1) {
      seq_ref = res;
    } else {
      require(res.rows == seq_ref.rows && res.columns == seq_ref.columns,
              "parallel scan bit-identical to sequential");
    }
    std::printf("  threads=%u: %7.1f ms (%.2f ns/row)\n", threads, ms,
                ms * 1e6 / n_rows);
    sweep_ms[threads] = ms;
    json.add("scan_threads_" + std::to_string(threads), n_rows,
             ms * 1e6 / n_rows);
  }

  // Scaling is asserted only as hard as the host can deliver: a 2-core
  // runner cannot prove an 8-thread speedup, and a 1-core host cannot
  // prove any — there the sweep only proves bit-identity.
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw >= 8) {
    std::printf("  scaling  : %u hw threads, threads=8 speedup %.2fx "
                "(need >= 4x)\n",
                hw, sweep_ms[1] / sweep_ms[8]);
    require(sweep_ms[1] / sweep_ms[8] >= 4.0,
            "threads=8 scan >= 4x faster than threads=1");
  } else if (hw >= 4) {
    std::printf("  scaling  : %u hw threads, threads=4 speedup %.2fx "
                "(need >= 2x)\n",
                hw, sweep_ms[1] / sweep_ms[4]);
    require(sweep_ms[1] / sweep_ms[4] >= 2.0,
            "threads=4 scan >= 2x faster than threads=1");
  } else if (hw >= 2) {
    std::printf("  scaling  : %u hw threads, threads=2 speedup %.2fx "
                "(need >= 1.3x)\n",
                hw, sweep_ms[1] / sweep_ms[2]);
    require(sweep_ms[1] / sweep_ms[2] >= 1.3,
            "threads=2 scan >= 1.3x faster than threads=1");
  } else {
    std::printf("  scaling  : SINGLE-CORE HOST — speedup not measurable "
                "here, asserting bit-identity only\n");
  }

  json.write();
  std::remove(path.c_str());
  std::remove(query::flxi_path(path).c_str());
  std::printf("\nall assertions held: cold scan within the 5x budget, "
              "pruning reads fewer\nchunks, results identical, portable == "
              "vectorized, parallel == sequential\nat every thread count.\n");
  return 0;
}
