// Ablation: the number of tries. DPDK vanilla caps the rule set at 8
// tries; the paper patches the cap so 50,000 rules land in 247 tries.
// Because each trie is walked for every packet and the early exit
// happens per trie, the A-vs-C fluctuation is amplified linearly by the
// trie count — this bench sweeps it.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "fluxtrace/acl/classifier.hpp"
#include "fluxtrace/acl/ruleset.hpp"
#include "fluxtrace/report/table.hpp"

using namespace fluxtrace;

int main() {
  const CpuSpec spec;
  bench::banner("abl_trie_count",
                "ablation — trie count vs fluctuation magnitude "
                "(Table III rules, Table IV packets)",
                spec);

  const acl::RuleSet rules = acl::make_paper_ruleset();
  const acl::PaperPackets pk;
  const acl::AclCostModel cost;

  report::Table tab({"tries", "rules/trie", "A [us]", "B [us]", "C [us]",
                     "A/C ratio", "trie nodes"});

  const std::uint32_t trie_counts[] = {1, 8, 32, 64, 128, 247};
  for (const std::uint32_t n_tries : trie_counts) {
    const auto per_trie = static_cast<std::uint32_t>(
        (rules.size() + n_tries - 1) / n_tries);
    const acl::MultiTrieClassifier clf(rules,
                                       acl::MultiTrieConfig{per_trie, 0});
    const auto us_of = [&](const FlowKey& k) {
      return spec.us(spec.uop_cycles(cost.uops(clf.classify(k))));
    };
    const double a = us_of(pk.type_a);
    const double b = us_of(pk.type_b);
    const double c = us_of(pk.type_c);
    tab.row({report::Table::num(clf.num_tries()),
             report::Table::num(per_trie), report::Table::num(a),
             report::Table::num(b), report::Table::num(c),
             report::Table::num(a / c), report::Table::num(clf.total_nodes())});
  }
  tab.print(std::cout);

  std::printf(
      "\nWith few tries the fixed per-packet cost dominates and the\n"
      "fluctuation is mild; at the paper's 247 tries the per-trie early-\n"
      "exit difference dominates and type A costs >2x type C — the\n"
      "\"specific condition\" (§IV-C1) under which the fluctuation appears.\n"
      "(Memory cost of the split shows in the node count.)\n");
  return 0;
}
