// The motivation experiment (§II-A): tail latency amplification. Huang et
// al. measured "the standard deviation was twice the mean" and "the 99th
// percentile was an order of magnitude greater than the mean" on TPC-C.
// This bench reproduces the phenomenon on the query-cache app — cache
// warmth makes identical queries take wildly different times — and shows
// the per-function trace attributing the tail to f3.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "fluxtrace/apps/query_cache_app.hpp"
#include "fluxtrace/core/integrator.hpp"
#include "fluxtrace/report/stats.hpp"
#include "fluxtrace/report/table.hpp"

using namespace fluxtrace;

int main() {
  const CpuSpec spec;
  bench::banner("ext_tail_latency",
                "§II-A motivation — tail-latency amplification from cache "
                "warmth, and its per-function attribution",
                spec);

  // Workload: a long production-like stream where every 40th query jumps
  // beyond the cache high-water mark (new data arriving), resetting the
  // warmth for part of its points.
  std::vector<apps::Query> queries;
  std::uint32_t frontier = 3;
  for (ItemId id = 1; id <= 600; ++id) {
    std::uint32_t n = 2 + static_cast<std::uint32_t>(id % 3);
    if (id % 40 == 0) n = ++frontier; // touches never-seen points
    queries.push_back(apps::Query{id, n});
  }

  SymbolTable symtab;
  apps::QueryCacheAppConfig qcfg;
  apps::QueryCacheApp app(symtab, qcfg);
  sim::Machine m(symtab);
  sim::PebsConfig pc;
  pc.reset = 8000;
  pc.buffer_capacity = 4096;
  m.cpu(1).enable_pebs(pc);
  app.submit(queries);
  app.attach(m, 0, 1);
  m.run();
  m.flush_samples();

  core::TraceIntegrator integ(symtab);
  const core::TraceTable table = integ.integrate(
      m.marker_log().markers(), m.pebs_driver().samples());

  report::Distribution lat;
  report::Distribution f3_share_tail;
  for (const apps::Query& q : queries) {
    lat.add(spec.us(table.item_window_total(q.id)));
  }

  report::Table tab({"metric", "value [us]"});
  tab.row({"mean", report::Table::num(lat.mean())});
  tab.row({"stddev", report::Table::num(lat.stddev())});
  tab.row({"p50", report::Table::num(lat.percentile(50))});
  tab.row({"p90", report::Table::num(lat.percentile(90))});
  tab.row({"p99", report::Table::num(lat.percentile(99))});
  tab.row({"p99.9", report::Table::num(lat.percentile(99.9))});
  tab.row({"max", report::Table::num(lat.max())});
  tab.print(std::cout);

  std::printf("\nstddev/mean = %.2f   p99/mean = %.2f\n",
              lat.stddev() / lat.mean(), lat.p99_over_mean());

  std::printf("\nlatency histogram (us):\n");
  report::Histogram hist(0.0, lat.percentile(99.9) * 1.05, 12);
  for (const double x : lat.values()) hist.add(x);
  hist.print(std::cout);

  // Attribute the tail: among the p99 items, which function dominates?
  const double p99 = lat.percentile(99);
  double f3_sum = 0, total_sum = 0;
  int tail_items = 0;
  for (const apps::Query& q : queries) {
    const double w = spec.us(table.item_window_total(q.id));
    if (w < p99) continue;
    ++tail_items;
    f3_sum += spec.us(table.elapsed(q.id, app.f3()));
    total_sum += w;
  }
  std::printf("\ntail attribution (items >= p99, n = %d): f3 accounts for "
              "%.0f%% of their time\n",
              tail_items, 100.0 * f3_sum / total_sum);
  std::printf(
      "— the per-item, per-function trace pins the tail on the recompute\n"
      "path, information neither a profile nor service-level logs provide.\n");
  return 0;
}
