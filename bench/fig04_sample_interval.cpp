// Figure 4: achieved sample interval vs configured reset value for PEBS
// (hardware-based) and perf on the traditional counters (software-based),
// against the ideal line, for three SPEC CPU 2006-like workloads. The
// paper's result: PEBS tracks the ideal down to ~1 us; the software
// sampler cannot get below ~10 us no matter the configured rate, because
// each sample suspends the program for an OS interrupt.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "fluxtrace/prog/workload.hpp"
#include "fluxtrace/report/table.hpp"

using namespace fluxtrace;

namespace {

double mean_interval_us(const SampleVec& samples, const CpuSpec& spec) {
  if (samples.size() < 2) return 0.0;
  const Tsc span = samples.back().tsc - samples.front().tsc;
  return spec.us(span) / static_cast<double>(samples.size() - 1);
}

struct Row {
  std::uint64_t reset;
  double pebs_us;
  double sw_us;
  double ideal_us;
};

} // namespace

int main() {
  const CpuSpec spec;
  bench::banner("fig04_sample_interval",
                "Fig. 4 — sample interval vs reset value: PEBS vs perf "
                "(UOPS_RETIRED.ALL, throttling disabled)",
                spec);

  const std::uint64_t resets[] = {1000,  2000,  4000,   8000,
                                  16000, 32000, 64000, 128000};
  const std::uint64_t iterations = 2500;

  using Factory = prog::Workload (*)(SymbolTable&);
  const Factory factories[] = {prog::make_astar, prog::make_bzip2,
                               prog::make_gcc};

  for (const Factory make : factories) {
    // Calibration run (no sampling) for the workload's uop rate → ideal.
    SymbolTable symtab;
    const prog::Workload wl = make(symtab);
    double ns_per_uop = 0.0;
    {
      sim::Machine m(symtab);
      prog::WorkloadTask t(wl, iterations);
      m.attach(0, t);
      const auto r = m.run();
      ns_per_uop =
          spec.ns(r.end_tsc) /
          static_cast<double>(m.cpu(0).stats().events.get(HwEvent::UopsRetired));
    }

    std::printf("--- workload: %s (uop rate %.2f uops/ns) ---\n",
                wl.name.c_str(), 1.0 / ns_per_uop);
    report::Table tab(
        {"reset", "PEBS [us]", "perf [us]", "ideal [us]"});
    for (const std::uint64_t reset : resets) {
      Row row{reset, 0, 0, 0};
      row.ideal_us = ns_per_uop * static_cast<double>(reset) / 1000.0;
      {
        sim::Machine m(symtab);
        sim::PebsConfig pc;
        pc.reset = reset;
        pc.buffer_capacity = 4096;
        m.cpu(0).enable_pebs(pc);
        prog::WorkloadTask t(wl, iterations);
        m.attach(0, t);
        m.run();
        m.flush_samples();
        row.pebs_us = mean_interval_us(
            m.pebs_driver().samples_sorted_by_time(), spec);
      }
      {
        sim::Machine m(symtab);
        sim::SwSamplerConfig sc;
        sc.reset = reset;
        m.cpu(0).enable_sw_sampler(sc);
        prog::WorkloadTask t(wl, iterations);
        m.attach(0, t);
        m.run();
        row.sw_us = mean_interval_us(m.cpu(0).sw_sampler().samples(), spec);
      }
      tab.row({report::Table::num(row.reset),
               report::Table::num(row.pebs_us),
               report::Table::num(row.sw_us),
               report::Table::num(row.ideal_us)});
    }
    tab.print(std::cout);
    std::printf("\n");
  }

  std::printf(
      "PEBS follows the ideal 1/R line down to ~1 us; the software sampler\n"
      "floors near 10 us (the per-sample interrupt cost), matching Fig. 4.\n");
  return 0;
}
