// §V-C: choosing the reset value. PEBS cannot be configured with a time
// interval, but interval(R) is strongly linear in R for a given workload
// and the overhead is predictable from the sample count (~250 ns each),
// so one can calibrate with a few runs, fit the line, and invert it for a
// target overhead budget. This bench performs the calibration on the ACL
// case study, prints the fit, and validates the recommendation.
#include <cstdio>
#include <iostream>

#include "acl_common.hpp"
#include "fluxtrace/core/planner.hpp"
#include "fluxtrace/report/table.hpp"

using namespace fluxtrace;
using namespace fluxtrace::bench;

int main() {
  const CpuSpec spec;
  banner("ext_reset_planner",
         "§V-C — reset-value planning: interval(R) linearity and "
         "overhead-budget inversion",
         spec);

  const acl::RuleSet rules = acl::make_paper_ruleset();
  core::ResetValuePlanner planner;

  report::Table cal({"reset", "measured interval [us]", "samples"});
  for (const std::uint64_t reset : {4000u, 8000u, 16000u, 24000u, 32000u}) {
    AclRunConfig cfg;
    cfg.pebs_reset = reset;
    cfg.packets = 1500;
    const AclRunResult r = run_acl_case_study(rules, cfg);
    // Interval over the ACL core's busy time (PEBS only counts while the
    // program retires events).
    const double interval_ns =
        spec.ns(r.acl_busy) / static_cast<double>(r.pebs_samples);
    planner.add(reset, interval_ns);
    cal.row({report::Table::num(reset), report::Table::num(interval_ns / 1000),
             report::Table::num(r.pebs_samples)});
  }
  cal.print(std::cout);

  const core::LinearFit fit = planner.fit();
  std::printf("\nlinear fit: interval(R) = %.4f ns x R + %.1f ns,  "
              "R^2 = %.6f\n",
              fit.a, fit.b, fit.r2);
  std::printf("(the paper: \"the sample intervals have a strong linearity "
              "with the reset values and the deviations are very small\")\n\n");

  report::Table rec({"overhead budget", "recommended R",
                     "predicted interval [us]", "predicted overhead"});
  for (const double budget : {0.20, 0.10, 0.05, 0.02}) {
    const std::uint64_t r = planner.recommend_for_overhead(budget);
    rec.row({report::Table::num(budget * 100, 0) + "%",
             report::Table::num(r),
             report::Table::num(planner.predict_interval_ns(r) / 1000.0),
             report::Table::num(planner.predict_overhead(r) * 100.0, 1) + "%"});
  }
  rec.print(std::cout);

  // Validate one recommendation against an actual run.
  const std::uint64_t r10 = planner.recommend_for_overhead(0.10);
  AclRunConfig cfg;
  cfg.pebs_reset = r10;
  cfg.packets = 1500;
  const AclRunResult v = run_acl_case_study(rules, cfg);
  const double achieved =
      static_cast<double>(v.assist_cycles) /
      static_cast<double>(v.acl_busy + v.assist_cycles);
  std::printf("\nvalidation at R = %llu: achieved assist overhead %.1f%% "
              "(budget 10%%)\n",
              static_cast<unsigned long long>(r10), achieved * 100.0);
  return 0;
}
