// §IV-C3's amortization argument, implemented: "one can estimate the
// elapsed time of each function online and dump raw samples only when the
// estimation diverges from the average by a threshold". The OnlineTracer
// consumes the marker and sample streams live (samples at buffer-drain
// time), finalizes items as watermarks pass, and persists raw samples
// only for flagged items.
//
// Workload: the firewall under mostly type-C traffic with a rare type-A
// packet (1 in 25) — the "specific non-functional state" showing up
// sporadically in production.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "fluxtrace/acl/ruleset.hpp"
#include "fluxtrace/apps/acl_firewall_app.hpp"
#include "fluxtrace/core/online.hpp"
#include "fluxtrace/net/trafficgen.hpp"
#include "fluxtrace/report/table.hpp"

using namespace fluxtrace;

int main() {
  const CpuSpec spec;
  bench::banner("ext_online_tracer",
                "§IV-C3 — online estimation with anomaly-triggered raw "
                "dumps (rare slow packets in production traffic)",
                spec);

  const acl::RuleSet rules = acl::make_paper_ruleset();
  SymbolTable symtab;
  apps::AclFirewallApp app(symtab, rules);
  sim::Machine m(symtab);

  // 1 type-A packet per 24 type-C packets.
  const acl::PaperPackets pk;
  std::vector<FlowKey> flows(24, pk.type_c);
  flows.push_back(pk.type_a);
  net::TrafficGenConfig tgc;
  tgc.total_packets = 2000;
  tgc.inter_packet_gap_ns = 20000;
  net::TrafficGen tg(tgc, app.rx_nic(), app.tx_nic(), flows);

  sim::PebsConfig pc;
  pc.reset = 8000;
  m.cpu(2).enable_pebs(pc);

  // Wire the live pipeline: markers at marking time, samples at drain time.
  core::OnlineTracerConfig ocfg;
  ocfg.detector = core::DetectorConfig{3.0, 16};
  core::OnlineTracer tracer(symtab, ocfg);
  std::uint64_t dumped_a = 0, dumped_other = 0;
  tracer.set_dump_callback(
      [&](const core::OnlineResult& r, const SampleVec&) {
        // Packet ids cycle through the flow list; index 24 is type A.
        if (r.item % 25 == 24) {
          ++dumped_a;
        } else {
          ++dumped_other;
        }
      });
  m.marker_log().set_sink([&](const Marker& mk) { tracer.on_marker(mk); });
  m.pebs_driver().set_sink(
      [&](const PebsSample& s) { tracer.on_sample(s); });

  app.expect_packets(tgc.total_packets);
  m.attach(0, tg);
  app.attach(m, 1, 2, 3);
  m.run();
  m.flush_samples();
  tracer.finish();

  const std::uint64_t type_a_sent = tgc.total_packets / 25;
  report::Table tab({"metric", "value"});
  tab.align(1, report::Align::Right);
  tab.row({"packets traced", report::Table::num(tracer.items_completed())});
  tab.row({"type-A packets (the rare slow path)",
           report::Table::num(type_a_sent)});
  tab.row({"items flagged + dumped", report::Table::num(tracer.dumps())});
  tab.row({"  ... of which type A", report::Table::num(dumped_a)});
  tab.row({"  ... false positives", report::Table::num(dumped_other)});
  tab.row({"raw bytes seen", report::Table::num(tracer.bytes_seen())});
  tab.row({"raw bytes persisted", report::Table::num(tracer.bytes_dumped())});
  tab.row({"persisted fraction",
           report::Table::num(100.0 * static_cast<double>(tracer.bytes_dumped()) /
                                  static_cast<double>(tracer.bytes_seen()),
                              2) +
               "%"});
  tab.print(std::cout);

  std::printf(
      "\nInstead of writing the full raw stream to storage (the prototype's\n"
      "behaviour, 100s of MB/s per core at production rates), the online\n"
      "pipeline persists only the flagged items' samples — catching the\n"
      "rare deep-trie packets while writing a tiny fraction of the bytes.\n");
  return 0;
}
