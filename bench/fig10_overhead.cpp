// Figure 10: overhead of the hybrid method for each reset value, measured
// the way the paper measures it — as the increase in mean packet latency
// observed by the hardware tester: overhead(R) = L_R − L*, where L* is
// the latency with no profiling at all.
#include <cstdio>
#include <iostream>

#include "acl_common.hpp"
#include "fluxtrace/report/chart.hpp"
#include "fluxtrace/report/table.hpp"
#include "json_out.hpp"

using namespace fluxtrace;
using namespace fluxtrace::bench;

int main() {
  const CpuSpec spec;
  banner("fig10_overhead",
         "Fig. 10 — tracing overhead (latency increase) vs reset value, "
         "measured by the GNET-style tester",
         spec);

  const acl::RuleSet rules = acl::make_paper_ruleset();

  // L*: no instrumentation, no sampling.
  AclRunConfig off;
  off.app.instrument = false;
  const double l_star = overall_latency_us(run_acl_case_study(rules, off));
  std::printf("L* (no profiling): %.2f us mean latency\n\n", l_star);

  report::Table tab({"reset", "latency [us]", "overhead [us]",
                     "samples/pkt", "drain stalls [us total]"});
  report::BarChart chart("us overhead", 40);
  BenchJson json("fig10_overhead");
  json.add("baseline_no_profiling", /*iters=*/AclRunConfig{}.packets,
           l_star * 1000.0);
  for (const std::uint64_t reset : {8000u, 12000u, 16000u, 20000u, 24000u}) {
    AclRunConfig cfg;
    cfg.pebs_reset = reset;
    const AclRunResult r = run_acl_case_study(rules, cfg);
    const double lat = overall_latency_us(r);
    const double oh = lat - l_star;
    // ns_per_op is the tester-observed mean per-packet latency; the
    // overhead is recoverable as ns_per_op - baseline's.
    json.add("reset_" + std::to_string(reset / 1000) + "K", cfg.packets,
             lat * 1000.0);
    tab.row({report::Table::num(reset / 1000) + "K",
             report::Table::num(lat), report::Table::num(oh),
             report::Table::num(static_cast<double>(r.pebs_samples) /
                                    static_cast<double>(cfg.packets),
                                1),
             report::Table::num(spec.us(r.drain_stall))});
    chart.bar(report::Table::num(reset / 1000) + "K", oh);
  }
  tab.print(std::cout);
  std::printf("\n");
  chart.print(std::cout);

  std::printf(
      "\nOverhead falls as the reset value grows (fewer 250 ns assists and\n"
      "fewer SSD-dump buffer drains per packet) — together with Fig. 9,\n"
      "a moderate reset value (the paper suggests 16K) gives both accurate\n"
      "estimation and acceptable overhead.\n");
  json.write();
  return 0;
}
