// Figure 9: estimated per-packet elapsed time of rte_acl_classify for
// each packet type (Table IV) at reset values 8K..24K, against the
// instrumentation-only baseline. The paper's findings: the performance
// fluctuates by more than 100% (type A ≈ 12–14 us vs type C ≈ 6 us), and
// the estimates track the baseline well for moderate reset values.
#include <cstdio>
#include <iostream>

#include "acl_common.hpp"
#include "fluxtrace/report/table.hpp"

using namespace fluxtrace;
using namespace fluxtrace::bench;

int main() {
  const CpuSpec spec;
  banner("fig09_acl_estimation",
         "Fig. 9 — estimated per-packet rte_acl_classify time vs reset "
         "value (50,000 rules in 247 tries, Table IV packets)",
         spec);

  const acl::RuleSet rules = acl::make_paper_ruleset();
  std::printf("rules: %zu, test packets per configuration: 3000 "
              "(1000 per type)\n\n",
              rules.size());

  // Baseline: instrumentation around the classify call, no sampling.
  AclRunConfig base_cfg;
  const AclRunResult baseline = run_acl_case_study(rules, base_cfg);

  report::Table tab({"reset", "A mean [us]", "A sd", "B mean [us]", "B sd",
                     "C mean [us]", "C sd"});
  tab.row({"baseline", report::Table::num(baseline.window_us[0].mean),
           report::Table::num(baseline.window_us[0].stddev),
           report::Table::num(baseline.window_us[1].mean),
           report::Table::num(baseline.window_us[1].stddev),
           report::Table::num(baseline.window_us[2].mean),
           report::Table::num(baseline.window_us[2].stddev)});

  for (const std::uint64_t reset : {8000u, 12000u, 16000u, 20000u, 24000u}) {
    AclRunConfig cfg;
    cfg.pebs_reset = reset;
    const AclRunResult r = run_acl_case_study(rules, cfg);
    tab.row({report::Table::num(reset / 1000) + "K",
             report::Table::num(r.est_us[0].mean),
             report::Table::num(r.est_us[0].stddev),
             report::Table::num(r.est_us[1].mean),
             report::Table::num(r.est_us[1].stddev),
             report::Table::num(r.est_us[2].mean),
             report::Table::num(r.est_us[2].stddev)});
  }
  tab.print(std::cout);

  const double ratio =
      baseline.window_us[0].mean / baseline.window_us[2].mean;
  std::printf(
      "\nType A vs type C: %.2fx — the >100%% fluctuation between nearly\n"
      "identical packets the paper reports. Estimates sit below the\n"
      "baseline by up to ~2 sample intervals (first/last-sample span) and\n"
      "approach it as the reset value shrinks.\n",
      ratio);
  return 0;
}
