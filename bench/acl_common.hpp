// Shared machinery for the ACL case-study benches (Figs. 9 & 10, the
// data-volume table, and the ablations): run the firewall pipeline under
// one tracing configuration and collect per-packet-type statistics.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "common.hpp"
#include "fluxtrace/acl/ruleset.hpp"
#include "fluxtrace/apps/acl_firewall_app.hpp"
#include "fluxtrace/core/integrator.hpp"
#include "fluxtrace/net/trafficgen.hpp"

namespace fluxtrace::bench {

inline constexpr const char* kTypeNames[3] = {"A", "B", "C"};

struct AclRunConfig {
  std::uint64_t pebs_reset = 0; ///< 0 = tracing off (baseline)
  std::uint64_t packets = 3000; ///< total, split round-robin over A/B/C
  double gap_ns = 20000.0;
  apps::AclFirewallConfig app{};
  sim::PebsDriverConfig driver{};
  std::uint32_t pebs_buffer = 512;
};

struct AclRunResult {
  /// Hybrid estimate of rte_acl_classify per packet type [us].
  MeanStd est_us[3];
  /// Instrumented baseline (marker-window length) per type [us].
  MeanStd window_us[3];
  /// Tester-measured end-to-end latency per type [us].
  MeanStd latency_us[3];
  std::uint64_t pebs_samples = 0;
  std::uint64_t pebs_bytes = 0;
  std::uint64_t pebs_drains = 0;
  std::uint64_t pebs_lost = 0;
  Tsc acl_busy = 0;       ///< ACL core busy cycles
  Tsc acl_total = 0;      ///< ACL core final TSC
  Tsc drain_stall = 0;    ///< cycles the ACL core lost to buffer drains
  Tsc assist_cycles = 0;  ///< cycles lost to per-record assists
};

inline AclRunResult run_acl_case_study(const acl::RuleSet& rules,
                                       const AclRunConfig& cfg) {
  SymbolTable symtab;
  apps::AclFirewallApp app(symtab, rules, cfg.app);

  sim::MachineConfig mc;
  mc.driver = cfg.driver;
  sim::Machine m(symtab, mc);

  net::TrafficGenConfig tgc;
  tgc.total_packets = cfg.packets;
  tgc.inter_packet_gap_ns = cfg.gap_ns;
  const acl::PaperPackets pk;
  net::TrafficGen tg(tgc, app.rx_nic(), app.tx_nic(),
                     {pk.type_a, pk.type_b, pk.type_c});

  if (cfg.pebs_reset > 0) {
    sim::PebsConfig pc;
    pc.reset = cfg.pebs_reset;
    pc.buffer_capacity = cfg.pebs_buffer;
    m.cpu(2).enable_pebs(pc);
  }
  app.expect_packets(cfg.packets);
  m.attach(0, tg);
  app.attach(m, 1, 2, 3);
  m.run();
  m.flush_samples();

  core::TraceIntegrator integ(symtab);
  const core::TraceTable table = integ.integrate(
      m.marker_log().markers(), m.pebs_driver().samples());

  const CpuSpec& spec = m.spec();
  std::vector<double> est[3], win[3], lat[3];
  for (const auto& rec : tg.records()) {
    const std::uint32_t f = rec.flow_idx % 3;
    est[f].push_back(spec.us(table.elapsed(rec.id, app.classify_symbol())));
    win[f].push_back(spec.us(table.item_window_total(rec.id)));
    lat[f].push_back(spec.us(rec.latency()));
  }

  AclRunResult out;
  for (int f = 0; f < 3; ++f) {
    out.est_us[f] = mean_std(est[f]);
    out.window_us[f] = mean_std(win[f]);
    out.latency_us[f] = mean_std(lat[f]);
  }
  out.pebs_samples = m.pebs_driver().samples().size();
  out.pebs_lost = m.cpu(2).pebs().samples_lost();
  out.pebs_bytes = m.pebs_driver().bytes_collected();
  out.pebs_drains = m.pebs_driver().drains();
  out.acl_busy = m.cpu(2).stats().busy_cycles;
  out.acl_total = m.cpu(2).now();
  out.drain_stall = m.cpu(2).stats().drain_stall;
  out.assist_cycles = m.cpu(2).stats().pebs_assist;
  return out;
}

/// Mean latency over the three types (what the hardware tester reports).
inline double overall_latency_us(const AclRunResult& r) {
  return (r.latency_us[0].mean + r.latency_us[1].mean +
          r.latency_us[2].mean) /
         3.0;
}

} // namespace fluxtrace::bench
