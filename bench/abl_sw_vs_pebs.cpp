// Ablation: what if the hybrid method used software sampling instead of
// PEBS? Fig. 4 shows the interval floor; this bench shows the consequence
// at the application level (§II-C's argument completed): with perf-style
// per-sample interrupts on the ACL core, the overhead is an order of
// magnitude larger and the per-packet estimates collapse, while PEBS at
// the same rate is both cheap and accurate.
#include <cstdio>
#include <iostream>
#include <map>
#include <vector>

#include "common.hpp"
#include "fluxtrace/acl/ruleset.hpp"
#include "fluxtrace/apps/acl_firewall_app.hpp"
#include "fluxtrace/core/integrator.hpp"
#include "fluxtrace/net/trafficgen.hpp"
#include "fluxtrace/report/table.hpp"

using namespace fluxtrace;
using namespace fluxtrace::bench;

namespace {

struct Out {
  double overhead_us = 0;
  double est_a = 0, est_c = 0;
  double samples_per_pkt = 0;
};

Out run(const acl::RuleSet& rules, bool use_pebs, bool use_sw,
        std::uint64_t reset, double baseline_us) {
  SymbolTable symtab;
  apps::AclFirewallApp app(symtab, rules);
  sim::Machine m(symtab);
  net::TrafficGenConfig tgc;
  tgc.total_packets = 600;
  tgc.inter_packet_gap_ns = 60000; // wide gaps: sw-sampled runs are slow
  const acl::PaperPackets pk;
  net::TrafficGen tg(tgc, app.rx_nic(), app.tx_nic(),
                     {pk.type_a, pk.type_b, pk.type_c});
  if (use_pebs) {
    sim::PebsConfig pc;
    pc.reset = reset;
    m.cpu(2).enable_pebs(pc);
  }
  if (use_sw) {
    sim::SwSamplerConfig sc;
    sc.reset = reset;
    m.cpu(2).enable_sw_sampler(sc);
  }
  app.expect_packets(tgc.total_packets);
  m.attach(0, tg);
  app.attach(m, 1, 2, 3);
  m.run();
  m.flush_samples();

  // Integrate whichever sample stream exists.
  SampleVec samples = m.pebs_driver().samples();
  if (use_sw) samples = m.cpu(2).sw_sampler().samples();

  core::TraceIntegrator integ(symtab);
  const core::TraceTable table =
      integ.integrate(m.marker_log().markers(), samples);

  const CpuSpec& spec = m.spec();
  std::map<std::uint32_t, double> est, cnt;
  double lat = 0;
  for (const auto& rec : tg.records()) {
    est[rec.flow_idx] +=
        spec.us(table.elapsed(rec.id, app.classify_symbol()));
    cnt[rec.flow_idx] += 1;
    lat += spec.us(rec.latency());
  }
  Out out;
  out.overhead_us =
      lat / static_cast<double>(tg.records().size()) - baseline_us;
  out.est_a = est[0] / cnt[0];
  out.est_c = est[2] / cnt[2];
  out.samples_per_pkt = static_cast<double>(samples.size()) /
                        static_cast<double>(tgc.total_packets);
  return out;
}

} // namespace

int main() {
  const CpuSpec spec;
  banner("abl_sw_vs_pebs",
         "ablation — the hybrid method on software sampling instead of "
         "PEBS (the §II-C argument, application level)",
         spec);

  const acl::RuleSet rules = acl::make_paper_ruleset();
  const Out off = run(rules, false, false, 0, 0.0);
  const double baseline = off.overhead_us; // = mean latency with no tracing
  std::printf("untraced mean latency: %.2f us (baseline A ~12us / C ~6us "
              "inside classify)\n\n",
              baseline);

  report::Table tab({"sampler", "reset", "samples/pkt", "overhead [us/pkt]",
                     "A est [us]", "C est [us]"});
  for (const std::uint64_t reset : {8000u, 32000u}) {
    const Out p = run(rules, true, false, reset, baseline);
    tab.row({"PEBS", report::Table::num(reset),
             report::Table::num(p.samples_per_pkt, 1),
             report::Table::num(p.overhead_us), report::Table::num(p.est_a),
             report::Table::num(p.est_c)});
    const Out s = run(rules, false, true, reset, baseline);
    tab.row({"perf (software)", report::Table::num(reset),
             report::Table::num(s.samples_per_pkt, 1),
             report::Table::num(s.overhead_us), report::Table::num(s.est_a),
             report::Table::num(s.est_c)});
  }
  tab.print(std::cout);

  std::printf(
      "\nAt the same configured rate, each software sample suspends the\n"
      "target for ~9.5 us — the per-packet overhead exceeds the function\n"
      "being measured, and the measured 'estimates' are inflated by the\n"
      "interrupts themselves. The paper's conclusion (§III-B) holds at the\n"
      "application level: only hardware-based sampling can trace\n"
      "microsecond-scale functions per data-item.\n");
  return 0;
}
