// Ablation: the hardware prefetcher as a fluctuation factor. The L2
// streamer hides cold-cache penalties for *sequential* access patterns —
// the query app's point arrays — but does nothing for pointer-chasing.
// The same cold query costs visibly different amounts depending on a
// machine configuration bit (BIOS/MSR-controlled on real hardware): one
// more piece of non-functional state a diagnosis must be able to see.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "fluxtrace/apps/query_cache_app.hpp"
#include "fluxtrace/core/integrator.hpp"
#include "fluxtrace/report/table.hpp"

using namespace fluxtrace;

namespace {

struct Out {
  double cold_us = 0;
  double warm_us = 0;
  double f3_cold_us = 0;
  std::uint64_t prefetches = 0;
};

Out run(bool prefetch) {
  SymbolTable symtab;
  apps::QueryCacheApp app(symtab);
  sim::MachineConfig mc;
  mc.cache.next_line_prefetch = prefetch;
  sim::Machine m(symtab, mc);
  sim::PebsConfig pc;
  pc.reset = 8000;
  m.cpu(1).enable_pebs(pc);
  app.submit(apps::QueryCacheApp::paper_queries());
  app.attach(m, 0, 1);
  m.run();
  m.flush_samples();

  core::TraceIntegrator integ(symtab);
  const core::TraceTable t = integ.integrate(m.marker_log().markers(),
                                             m.pebs_driver().samples());
  Out out;
  const CpuSpec& spec = m.spec();
  out.cold_us = spec.us(t.item_window_total(1)); // query #1, cold
  out.warm_us = spec.us(t.item_window_total(2)); // same n, warm
  out.f3_cold_us = spec.us(t.elapsed(1, app.f3()));
  out.prefetches = m.cpu(1).cache().prefetches();
  return out;
}

} // namespace

int main() {
  const CpuSpec spec;
  bench::banner("abl_prefetch",
                "ablation — the L2 next-line prefetcher halves the cold "
                "query's memory penalty (sequential point arrays)",
                spec);

  const Out off = run(false);
  const Out on = run(true);

  report::Table tab({"prefetcher", "cold #1 [us]", "warm #2 [us]",
                     "f3 cold [us]", "prefetch fills"});
  tab.row({"off", report::Table::num(off.cold_us),
           report::Table::num(off.warm_us), report::Table::num(off.f3_cold_us),
           report::Table::num(off.prefetches)});
  tab.row({"on", report::Table::num(on.cold_us),
           report::Table::num(on.warm_us), report::Table::num(on.f3_cold_us),
           report::Table::num(on.prefetches)});
  tab.print(std::cout);

  std::printf(
      "\nThe cold query's f3 walks its points sequentially, so the\n"
      "streamer prefetches roughly every other line: the cold penalty\n"
      "shrinks by ~%.0f%% while warm queries are untouched. On real\n"
      "machines this is a BIOS/MSR switch — the kind of configuration\n"
      "state that makes 'identical' machines fluctuate differently.\n",
      100.0 * (1.0 - (on.cold_us - on.warm_us) /
                         (off.cold_us - off.warm_us)));
  return 0;
}
