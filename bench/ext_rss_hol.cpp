// RSS scaling and head-of-line blocking: with two ACL workers and
// round-robin dispatch, every type-A (heavy) packet lands on worker 0, so
// type-C packets on worker 0 queue behind 12 µs classifications while
// identical type-C packets on worker 1 sail through. The per-core windows
// separate time-before-worker (queue wait) from classify time, which is
// how a diagnosis distinguishes load imbalance from a slow code path —
// the classify times are identical, only the waits differ.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "fluxtrace/acl/ruleset.hpp"
#include "fluxtrace/apps/rss_firewall_app.hpp"
#include "fluxtrace/core/integrator.hpp"
#include "fluxtrace/net/trafficgen.hpp"
#include "fluxtrace/report/stats.hpp"
#include "fluxtrace/report/table.hpp"

using namespace fluxtrace;

int main() {
  CpuSpec spec;
  spec.num_cores = 5; // tester, rx, 2 workers, tx
  bench::banner("ext_rss_hol",
                "RSS multi-worker scaling — head-of-line blocking as a "
                "fluctuation, diagnosed via per-core windows",
                spec);

  const acl::RuleSet rules = acl::make_paper_ruleset();
  SymbolTable symtab;
  apps::RssFirewallConfig cfg;
  cfg.num_workers = 2;
  cfg.dispatch = apps::RssDispatch::RoundRobin;
  apps::RssFirewallApp app(symtab, rules, cfg);

  sim::MachineConfig mc;
  mc.spec = spec;
  sim::Machine m(symtab, mc);

  // 1 heavy type-A packet per 3 type-C packets, arriving fast enough that
  // worker 0 (which round-robin hands every A) stays ~85% loaded.
  net::TrafficGenConfig tgc;
  tgc.total_packets = 2000;
  tgc.inter_packet_gap_ns = 5500;
  const acl::PaperPackets pk;
  net::TrafficGen tg(tgc, app.rx_nic(), app.tx_nic(),
                     {pk.type_a, pk.type_c, pk.type_c, pk.type_c});

  // The same procedure on both worker cores simultaneously.
  for (const std::uint32_t core : {2u, 3u}) {
    sim::PebsConfig pc;
    pc.reset = 8000;
    pc.buffer_capacity = 4096;
    m.cpu(core).enable_pebs(pc);
  }
  app.expect_packets(tgc.total_packets);
  m.attach(0, tg);
  app.attach(m, /*rx=*/1, /*first_acl=*/2, /*tx=*/4);
  m.run();
  m.flush_samples();

  core::TraceIntegrator integ(symtab);
  const core::TraceTable table = integ.integrate(
      m.marker_log().markers(), m.pebs_driver().samples());

  // Split the *identical* type-C packets by the worker they landed on.
  const Tsc wire = spec.cycles(500.0);
  report::Distribution wait[2], classify[2], e2e[2];
  for (const auto& rec : tg.records()) {
    if (rec.flow_idx == 0) continue; // skip type A
    const std::uint32_t w = app.worker_of(rec.id);
    if (w > 1) continue;
    const core::ItemWindow* win = table.window_of(rec.id, 2 + w);
    if (win == nullptr) continue;
    wait[w].add(spec.us(win->enter - rec.sent - wire));
    classify[w].add(spec.us(win->length()));
    e2e[w].add(spec.us(rec.latency()));
  }

  report::Table tab({"type-C packets on", "n", "pre-worker wait [us]",
                     "classify window [us]", "e2e latency [us]",
                     "e2e p99 [us]"});
  for (int w = 0; w < 2; ++w) {
    tab.row({std::string("worker ") + std::to_string(w) +
                 (w == 0 ? " (shares with A)" : " (C only)"),
             report::Table::num(wait[w].count()),
             report::Table::num(wait[w].mean()),
             report::Table::num(classify[w].mean()),
             report::Table::num(e2e[w].mean()),
             report::Table::num(e2e[w].percentile(99))});
  }
  tab.print(std::cout);

  std::printf("\n(with RssDispatch::FlowHash the A-flow pins to one worker\n"
              "permanently — per-flow ordering preserved, same HOL exposure;\n"
              "see tests/integration/rss_firewall_test.cpp)\n");
  std::printf("\nper-worker packets classified: %llu / %llu\n",
              static_cast<unsigned long long>(app.classified(0)),
              static_cast<unsigned long long>(app.classified(1)));
  std::printf(
      "\nIdentical type-C packets fluctuate purely by queue assignment:\n"
      "the classify windows match across workers (same code, same rules),\n"
      "but worker 0's packets wait behind type-A classifications. The\n"
      "trace's separation of wait vs work rules out the classifier and\n"
      "points at dispatch imbalance — actionable (flow-hash or heavier\n"
      "RSS spreading), where a latency log alone would mislead.\n");
  return 0;
}
