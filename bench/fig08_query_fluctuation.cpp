// Figure 8: per-data-item elapsed time of each function of the sample
// application, obtained by the hybrid approach (UOPS_RETIRED.ALL,
// reset value 8000). Queries 1 and 5 take much longer than other queries
// with the same n because of cache warmth, and the per-function breakdown
// shows f3 — the recompute path — is responsible.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "fluxtrace/apps/query_cache_app.hpp"
#include "fluxtrace/core/integrator.hpp"
#include "fluxtrace/report/chart.hpp"
#include "fluxtrace/report/table.hpp"

using namespace fluxtrace;

int main() {
  const CpuSpec spec;
  bench::banner("fig08_query_fluctuation",
                "Fig. 8 — per-data-item elapsed time of f1/f2/f3 in the "
                "sample app (PEBS, R = 8000)",
                spec);

  SymbolTable symtab;
  apps::QueryCacheApp app(symtab);
  sim::Machine m(symtab);
  sim::PebsConfig pc;
  pc.reset = 8000;
  m.cpu(1).enable_pebs(pc); // Thread 1, the worker

  const auto queries = apps::QueryCacheApp::paper_queries();
  app.submit(queries);
  app.attach(m, 0, 1);
  m.run();
  m.flush_samples();

  core::TraceIntegrator integ(symtab);
  const core::TraceTable table = integ.integrate(
      m.marker_log().markers(), m.pebs_driver().samples());

  report::Table tab({"query", "n", "f1 [us]", "f2 [us]", "f3 [us]",
                     "sum [us]", "window [us]"});
  report::StackedBarChart chart("us", 60);
  chart.series("f1");
  chart.series("f2");
  chart.series("f3");

  for (const apps::Query& q : queries) {
    const double f1 = spec.us(table.elapsed(q.id, app.f1()));
    const double f2 = spec.us(table.elapsed(q.id, app.f2()));
    const double f3 = spec.us(table.elapsed(q.id, app.f3()));
    tab.row({"#" + std::to_string(q.id), std::to_string(q.n),
             report::Table::num(f1), report::Table::num(f2),
             report::Table::num(f3), report::Table::num(f1 + f2 + f3),
             report::Table::num(spec.us(table.item_window_total(q.id)))});
    chart.bar("#" + std::to_string(q.id) + " (n=" + std::to_string(q.n) + ")",
              {f1, f2, f3});
  }
  tab.print(std::cout);
  std::printf("\n");
  chart.print(std::cout);

  std::printf(
      "\nQueries 1 and 5 fluctuate against queries with the same n (2/4/8\n"
      "and 7/9): their points were not yet cached, and the breakdown shows\n"
      "f3 (recompute), not f1, is where the time goes — the knowledge a\n"
      "service-level log cannot provide (per §IV-B).\n");
  return 0;
}
