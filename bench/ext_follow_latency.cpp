// Extension: live-follow detection latency and follower overhead
// (ISSUE 6). Two claims are measured and *asserted*, not just printed:
//
//   1. an outlier window planted mid-stream is alerted on within ONE
//      poll interval of its marker window becoming durable — for every
//      poll interval in the sweep, with the writer appending under an
//      active fault plan the whole time;
//   2. following a finished trace chunk-by-chunk through
//      io::TraceFollower + query::StreamingQuery costs the same order
//      of work as the offline batch scan (the per-row overhead ratio is
//      printed and bounded).
//
// The writer/follower pair runs on one virtual ns clock, so "latency"
// is exact simulated time, not scheduler noise. Results land in
// BENCH_follow.json.
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "fluxtrace/io/follower.hpp"
#include "fluxtrace/io/resilient.hpp"
#include "fluxtrace/query/engine.hpp"
#include "fluxtrace/query/stream.hpp"
#include "fluxtrace/sim/fault.hpp"
#include "json_out.hpp"

using namespace fluxtrace;

namespace {

constexpr std::size_t kWindows = 400;
constexpr std::size_t kSamplesPerWindow = 8;
constexpr std::size_t kOutlierAt = 300; // window index of the planted spike
constexpr std::uint64_t kWindowGapNs = 200'000; // one window every 200 us

void require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "ASSERTION FAILED: %s\n", what);
    std::exit(1);
  }
}

struct Workload {
  SymbolTable symtab;
  SymbolId fn = kInvalidSymbol;
};

/// One window's records: Enter, samples spread over `span`, Leave.
void window_records(const Workload& w, std::size_t i, Tsc span,
                    std::vector<Marker>& ms, std::vector<PebsSample>& ss) {
  const Tsc t0 = 100'000 * (i + 1);
  ms.push_back({t0, i, 0, MarkerKind::Enter});
  for (std::size_t s = 0; s < kSamplesPerWindow; ++s) {
    PebsSample smp;
    smp.tsc = t0 + 1 + (s * span) / (kSamplesPerWindow - 1);
    smp.core = 0;
    smp.ip = w.symtab.ip_at(w.fn, 0.5);
    ss.push_back(smp);
  }
  ms.push_back({t0 + span + 10, i, 0, MarkerKind::Leave});
}

struct LatencyPoint {
  std::uint64_t poll_ns;
  std::uint64_t latency_ns; ///< leave durable -> alert surfaced
  io::TraceFollower::Stats stats;
};

/// Writer appends one window per kWindowGapNs under a fault plan; the
/// follower polls every poll_ns on the same virtual clock. Returns the
/// detection latency for the planted outlier window.
LatencyPoint run_follow(std::uint64_t poll_ns, double fault_rate) {
  const std::string path = "/tmp/fluxtrace_bench_follow.flxt";
  std::remove(path.c_str());

  Workload w;
  w.fn = w.symtab.add("svc::handle", 0x400);

  sim::FaultPlanConfig fcfg;
  fcfg.seed = 7;
  fcfg.sink_transient_rate = fault_rate;
  fcfg.read_transient_rate = fault_rate / 2;
  sim::FaultPlan plan(fcfg);

  io::ResilientWriterConfig wcfg;
  // One marker chunk per Enter/Leave pair: a window is durable the
  // moment its pair commits, which pins the latency reference point.
  wcfg.records_per_chunk = 2;
  wcfg.backoff_base_ns = 1'000;
  wcfg.backoff_cap_ns = 50'000;
  auto sink = std::make_unique<io::FaultableSink>(
      std::make_unique<io::FileSpoolSink>(path), [&plan](std::size_t bytes) {
        switch (plan.sink_fault(bytes)) {
          case sim::SinkFaultKind::Transient: return io::SinkFault::Transient;
          case sim::SinkFaultKind::Stuck: return io::SinkFault::Stuck;
          case sim::SinkFaultKind::NoSpace: return io::SinkFault::NoSpace;
          case sim::SinkFaultKind::None: break;
        }
        return io::SinkFault::None;
      });
  io::ResilientWriter writer(wcfg, std::move(sink));

  io::TraceFollowerConfig rcfg;
  rcfg.liveness_timeout_ns = 1'000'000'000;
  auto source = std::make_unique<io::FaultableByteSource>(
      std::make_unique<io::FileByteSource>(path),
      [&plan]() {
        switch (plan.read_fault()) {
          case sim::ReadFaultKind::Transient: return io::ReadFault::Transient;
          case sim::ReadFaultKind::Short: return io::ReadFault::Short;
          case sim::ReadFaultKind::None: break;
        }
        return io::ReadFault::None;
      },
      nullptr);
  io::TraceFollower follower(rcfg, std::move(source));

  // A poll boundary can land between a window's sample chunks and its
  // marker chunk; slack must keep those samples pending until the
  // markers arrive in the next poll.
  query::StreamOptions sopts;
  sopts.attribution_slack = 1'000'000;
  query::StreamingQuery sq(
      query::parse_query("outliers k=3.0 warmup=8", &w.symtab), w.symtab,
      sopts);

  std::uint64_t now = 0;
  std::uint64_t next_poll = poll_ns;
  std::uint64_t leave_durable_at = 0;
  std::uint64_t alert_at = 0;
  std::size_t emitted = 0;
  bool closed = false;

  const auto poll_once = [&]() {
    auto pr = follower.poll(now);
    if (pr.data.markers.empty() && pr.data.samples.empty()) return;
    for (const query::WindowResult& wr : sq.ingest(pr.data)) {
      if (!wr.alerts.empty() && alert_at == 0) alert_at = now;
    }
  };

  while (alert_at == 0) {
    if (emitted < kWindows) {
      // Ordinary windows take ~4 us; the planted one takes 80 us.
      const Tsc span = emitted == kOutlierAt ? 80'000 : 4'000 + emitted % 7;
      std::vector<Marker> ms;
      std::vector<PebsSample> ss;
      window_records(w, emitted, span, ms, ss);
      writer.add_samples(ss.data(), ss.size(), now);
      writer.add_markers(ms.data(), ms.size(), now);
      ++emitted;
    } else if (!closed) {
      writer.close(now);
      closed = true;
    }
    writer.pump(now);
    if (leave_durable_at == 0 &&
        writer.stats().chunks_committed > 0 && emitted > kOutlierAt) {
      // The outlier's marker chunk is the (kOutlierAt+1)-th marker
      // chunk; with one marker chunk per window and sample chunks
      // interleaved, committing all records of the first kOutlierAt+1
      // windows means the leave is durable.
      const std::uint64_t need =
          (kOutlierAt + 1) * (2 + kSamplesPerWindow);
      if (writer.stats().records_committed >= need) leave_durable_at = now;
    }
    if (now >= next_poll) {
      poll_once();
      next_poll += poll_ns;
    }
    now += kWindowGapNs;
    require(now < 60'000'000'000ull, "alert fired within the run");
  }
  require(leave_durable_at != 0, "durability reference point recorded");
  require(alert_at >= leave_durable_at, "alert cannot precede durability");

  // Drain to the end so the ledger settles, then check it.
  while (!follower.finished()) {
    if (emitted < kWindows) {
      const Tsc span = 4'000 + emitted % 7;
      std::vector<Marker> ms;
      std::vector<PebsSample> ss;
      window_records(w, emitted, span, ms, ss);
      writer.add_samples(ss.data(), ss.size(), now);
      writer.add_markers(ms.data(), ms.size(), now);
      ++emitted;
    } else if (!closed) {
      writer.close(now);
      closed = true;
    }
    writer.pump(now);
    poll_once();
    now += poll_ns;
  }
  require(follower.stats().reconciled(), "follower ledger reconciles");
  require(writer.stats().chunks_committed ==
              follower.stats().chunks_consumed +
                  follower.stats().chunks_salvaged +
                  (follower.stats().eof_seen ? 1 : 0),
          "writer and follower ledgers reconcile");

  std::remove(path.c_str());
  return LatencyPoint{poll_ns, alert_at - leave_durable_at,
                      follower.stats()};
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

} // namespace

int main() {
  bench::banner("ext_follow_latency — live-follow detection + overhead",
                "ISSUE 6 (crash-consistent following, continuous alerts)");

  bench::BenchJson json("follow");

  // ---- 1. detection latency sweep: alert within one poll interval ----
  std::printf("detection latency (leave durable -> alert), writer under "
              "10%% sink faults:\n");
  std::printf("%10s | %12s %8s\n", "poll (us)", "latency (us)", "polls");
  for (const std::uint64_t poll_us : {500ull, 2'000ull, 10'000ull}) {
    const LatencyPoint p = run_follow(poll_us * 1'000, 0.10);
    std::printf("%10" PRIu64 " | %12.1f %8" PRIu64 "\n", poll_us,
                static_cast<double>(p.latency_ns) / 1000.0, p.stats.polls);
    require(p.latency_ns <= p.poll_ns,
            "alert within one poll interval of the window closing");
    json.add("detect_latency_poll_" + std::to_string(poll_us) + "us", 1,
             static_cast<double>(p.latency_ns));
  }

  // ---- 2. follower overhead vs the offline batch scan ----------------
  Workload w;
  w.fn = w.symtab.add("svc::handle", 0x400);
  io::TraceData data;
  for (std::size_t i = 0; i < kWindows; ++i) {
    std::vector<Marker> ms;
    std::vector<PebsSample> ss;
    window_records(w, i, 4'000 + i % 7, ms, ss);
    data.markers.insert(data.markers.end(), ms.begin(), ms.end());
    data.samples.insert(data.samples.end(), ss.begin(), ss.end());
  }
  const std::string path = "/tmp/fluxtrace_bench_follow_scan.flxt";
  io::save_trace_v2(path, data, 256);
  const double n_rows = static_cast<double>(data.samples.size());
  const char* q = "group func: count, sum(dur), p95(ts)";

  double follow_ms = 0.0;
  query::QueryResult live;
  {
    const auto t0 = std::chrono::steady_clock::now();
    io::TraceFollowerConfig rcfg;
    io::TraceFollower f = io::TraceFollower::open(path, rcfg);
    query::StreamOptions sopts;
    sopts.attribution_slack = 1'000'000'000;
    query::StreamingQuery sq(query::parse_query(q, &w.symtab), w.symtab,
                             sopts);
    std::uint64_t vnow = 0;
    while (!f.finished()) {
      auto pr = f.poll(vnow);
      vnow += 1'000'000;
      if (!pr.data.markers.empty() || !pr.data.samples.empty()) {
        (void)sq.ingest(pr.data);
      }
    }
    (void)sq.flush();
    live = sq.snapshot();
    follow_ms = ms_since(t0);
    require(f.stats().reconciled(), "scan-leg follower ledger reconciles");
  }

  double offline_ms = 0.0;
  query::QueryResult batch;
  {
    query::EngineOptions opts;
    opts.threads = 1;
    opts.use_index = false;
    opts.write_index = false;
    const auto t0 = std::chrono::steady_clock::now();
    query::QueryEngine eng = query::QueryEngine::open(path, w.symtab, opts);
    batch = eng.run(q);
    offline_ms = ms_since(t0);
  }
  require(live.rows == batch.rows && live.columns == batch.columns,
          "streamed snapshot identical to the offline result");

  const double ratio = follow_ms / offline_ms;
  std::printf("\nfollower overhead over %0.f rows:\n", n_rows);
  std::printf("  streamed follow: %7.1f ms (%.1f ns/row)\n", follow_ms,
              follow_ms * 1e6 / n_rows);
  std::printf("  offline scan   : %7.1f ms (%.1f ns/row)\n", offline_ms,
              offline_ms * 1e6 / n_rows);
  std::printf("  ratio          : %7.2fx\n", ratio);
  json.add("follow_scan", n_rows, follow_ms * 1e6 / n_rows);
  json.add("offline_scan", n_rows, offline_ms * 1e6 / n_rows);

  json.write();
  std::remove(path.c_str());
  std::printf("\nall assertions held: alerts within one poll interval, "
              "ledgers exact,\nstreamed snapshot == offline result.\n");
  return 0;
}
