// §IV-C2 future work, implemented and quantified: tracing *batched*
// data-items. The paper paces packets so DPDK never batches them, because
// one marker window per burst has no per-item ids. With the BatchTable +
// BatchIntegrator extension the burst is marked once and expanded back to
// items afterwards. This bench measures what that buys and what it costs:
// marker overhead per packet vs per-item attribution error, for bursty
// traffic that mixes fast (C) and slow (A) packets.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <map>

#include "common.hpp"
#include "fluxtrace/acl/ruleset.hpp"
#include "fluxtrace/apps/acl_firewall_app.hpp"
#include "fluxtrace/core/batch.hpp"
#include "fluxtrace/core/integrator.hpp"
#include "fluxtrace/net/trafficgen.hpp"
#include "fluxtrace/report/table.hpp"

using namespace fluxtrace;

namespace {

struct RunStats {
  double marker_calls_per_pkt = 0;
  double mean_abs_err_us[3] = {0, 0, 0}; ///< |estimate − truth| per type
  double est_us[3] = {0, 0, 0};
};

RunStats run_mode(const acl::RuleSet& rules, std::uint32_t batch_size,
                  std::uint64_t packets) {
  SymbolTable symtab;
  apps::AclFirewallConfig cfg;
  cfg.batch_size = batch_size;
  apps::AclFirewallApp app(symtab, rules, cfg);
  sim::Machine m(symtab);

  // Bursty arrivals: 6 packets back-to-back, then a gap — the pattern
  // that makes DPDK batch.
  net::TrafficGenConfig tgc;
  tgc.total_packets = packets;
  tgc.burst_size = 6;
  tgc.inter_packet_gap_ns = 80000;
  tgc.intra_burst_gap_ns = 200;
  const acl::PaperPackets pk;
  net::TrafficGen tg(tgc, app.rx_nic(), app.tx_nic(),
                     {pk.type_a, pk.type_b, pk.type_c});

  sim::PebsConfig pc;
  pc.reset = 4000;
  pc.buffer_capacity = 4096;
  m.cpu(2).enable_pebs(pc);
  app.expect_packets(packets);
  m.attach(0, tg);
  app.attach(m, 1, 2, 3);
  m.run();
  m.flush_samples();

  // Ground truth per type from the cost model.
  const acl::AclCostModel cost;
  const CpuSpec& spec = m.spec();
  double truth[3];
  const FlowKey flows[3] = {pk.type_a, pk.type_b, pk.type_c};
  for (int f = 0; f < 3; ++f) {
    truth[f] = spec.us(
        spec.uop_cycles(cost.uops(app.classifier().classify(flows[f]))));
  }

  const SymbolId clf = app.classify_symbol();
  std::map<std::uint32_t, std::vector<double>> est;
  if (batch_size <= 1) {
    core::TraceIntegrator integ(symtab);
    const core::TraceTable table = integ.integrate(
        m.marker_log().markers(), m.pebs_driver().samples());
    for (const auto& rec : tg.records()) {
      est[rec.flow_idx].push_back(spec.us(table.elapsed(rec.id, clf)));
    }
  } else {
    core::BatchIntegrator integ(symtab, app.batch_table());
    const auto items = integ.integrate(m.marker_log().markers(),
                                       m.pebs_driver().samples(),
                                       core::BatchPolicy::SubWindows);
    for (const auto& e : items) {
      est[static_cast<std::uint32_t>(e.item % 3)].push_back(
          spec.us(e.elapsed(clf)));
    }
  }

  RunStats out;
  out.marker_calls_per_pkt =
      static_cast<double>(m.cpu(2).stats().marker_count) /
      static_cast<double>(packets);
  for (int f = 0; f < 3; ++f) {
    double err = 0, sum = 0;
    for (const double e : est[static_cast<std::uint32_t>(f)]) {
      err += std::abs(e - truth[f]);
      sum += e;
    }
    const auto n = static_cast<double>(est[static_cast<std::uint32_t>(f)].size());
    out.mean_abs_err_us[f] = n > 0 ? err / n : 0;
    out.est_us[f] = n > 0 ? sum / n : 0;
  }
  return out;
}

} // namespace

int main() {
  const CpuSpec spec;
  bench::banner("ext_batching",
                "§IV-C2 future work — tracing batched data-items: marker "
                "overhead vs attribution error",
                spec);

  const acl::RuleSet rules = acl::make_paper_ruleset();
  constexpr std::uint64_t kPackets = 1200;

  report::Table tab({"mode", "markers/pkt", "A est [us]", "A |err|",
                     "B est [us]", "B |err|", "C est [us]", "C |err|"});
  for (const std::uint32_t batch : {1u, 4u, 8u}) {
    const RunStats r = run_mode(rules, batch, kPackets);
    tab.row({batch == 1 ? "per-item" : "batch x" + std::to_string(batch),
             report::Table::num(r.marker_calls_per_pkt, 2),
             report::Table::num(r.est_us[0]),
             report::Table::num(r.mean_abs_err_us[0]),
             report::Table::num(r.est_us[1]),
             report::Table::num(r.mean_abs_err_us[1]),
             report::Table::num(r.est_us[2]),
             report::Table::num(r.mean_abs_err_us[2])});
  }
  tab.print(std::cout);

  std::printf(
      "\nBatch marking amortizes the instrumentation (markers per packet\n"
      "drop with the burst size) but per-item attribution degrades for\n"
      "mixed bursts: the equal-time sub-window split cannot know that a\n"
      "type-A member used more of the window than a type-C one. That\n"
      "accuracy/overhead trade-off is why the paper left batching as\n"
      "future work; the register-carried-id extension (§V-A) is the\n"
      "principled fix, since every sample then names its item directly.\n");
  return 0;
}
