// Shared helpers for the figure-reproduction benches: the Table II-style
// environment banner and a couple of small statistics utilities.
#pragma once

#include <cmath>
#include <cstdio>
#include <string_view>
#include <vector>

#include "fluxtrace/base/time.hpp"

namespace fluxtrace::bench {

/// Print the simulated evaluation environment (the stand-in for the
/// paper's Table II) plus which experiment this binary regenerates.
inline void banner(std::string_view experiment, std::string_view paper_ref,
                   const CpuSpec& spec = {}) {
  std::printf("================================================================\n");
  std::printf("fluxtrace bench: %.*s\n", static_cast<int>(experiment.size()),
              experiment.data());
  std::printf("reproduces:      %.*s\n", static_cast<int>(paper_ref.size()),
              paper_ref.data());
  std::printf("simulated CPU:   %u cores @ %.1f GHz, %.2f cycles/uop "
              "(Skylake-like), PEBS assist 250 ns\n",
              spec.num_cores, spec.freq_ghz, spec.cycles_per_uop);
  std::printf("================================================================\n\n");
}

struct MeanStd {
  double mean = 0.0;
  double stddev = 0.0;
  std::size_t n = 0;
};

inline MeanStd mean_std(const std::vector<double>& xs) {
  MeanStd out;
  out.n = xs.size();
  if (xs.empty()) return out;
  double s = 0;
  for (const double x : xs) s += x;
  out.mean = s / static_cast<double>(xs.size());
  if (xs.size() >= 2) {
    double ss = 0;
    for (const double x : xs) ss += (x - out.mean) * (x - out.mean);
    out.stddev = std::sqrt(ss / static_cast<double>(xs.size() - 1));
  }
  return out;
}

} // namespace fluxtrace::bench
