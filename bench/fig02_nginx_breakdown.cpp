// Figure 2: per-request elapsed time of each function of NGINX, estimated
// the paper's way — run many requests, count cycles per function with the
// PMU (perf-style), then attribute T_request × c_f / c_a to function f.
// The figure's point: many functions take less than ~4 us per request, so
// instrumenting every function is far too heavy at this scale.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "fluxtrace/apps/webserver_model.hpp"
#include "fluxtrace/report/chart.hpp"
#include "fluxtrace/report/table.hpp"

using namespace fluxtrace;

int main() {
  const CpuSpec spec;
  bench::banner("fig02_nginx_breakdown",
                "Fig. 2 — per-request elapsed time of NGINX functions "
                "(ApacheBench, 300K requests, 1 worker)",
                spec);

  SymbolTable symtab;
  apps::WebServerConfig cfg;
  cfg.total_requests = 3000;
  apps::WebServerModel model(symtab, cfg);

  sim::Machine m(symtab);
  model.attach(m, 0);
  m.run();

  const auto& st = m.cpu(0).stats();
  const double busy_us = spec.us(st.busy_cycles);
  const double t_req_us = busy_us / static_cast<double>(model.processed());

  struct Row {
    std::string name;
    double us;
  };
  std::vector<Row> rows;
  std::size_t below_4 = 0, below_1 = 0;
  for (const auto& f : model.functions()) {
    const double share =
        static_cast<double>(st.fn_time(f.sym)) /
        static_cast<double>(st.busy_cycles);
    const double us = share * t_req_us;
    rows.push_back({std::string(symtab.name(f.sym)), us});
    if (us < 4.0) ++below_4;
    if (us < 1.0) ++below_1;
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.us > b.us; });

  std::printf("requests: %llu   CPU time per request: %.1f us\n\n",
              static_cast<unsigned long long>(model.processed()), t_req_us);

  report::BarChart chart("us/request", 50);
  for (const Row& r : rows) chart.bar(r.name, r.us);
  chart.print(std::cout);

  std::printf(
      "\n%zu of %zu functions take < 4 us per request (%zu take < 1 us):\n"
      "instrumenting every function (~2 calls x ~100 ns each per function\n"
      "per request) would be a large fraction of the function time itself.\n",
      below_4, rows.size(), below_1);
  return 0;
}
