// Extension: the fleet catalog (ISSUE 9) end to end — ingest, journal
// replay, federated query, compaction — with the identity claims
// *asserted*, not just printed:
//
//   1. ingest registers every member of a clean fleet: zero failed,
//      zero quarantined, and a reopen replays the journal to exactly
//      the same entry set;
//   2. the federated answer is bit-identical to one engine evaluating
//      the concatenated records, for every pipeline tried;
//   3. the fan-out thread count is never observable in the answer;
//   4. compacting the whole fleet into one segment changes the files
//      on disk but not one byte of any query answer, and verify()
//      stays clean afterwards — zero unaccounted traces.
//
// Results land in BENCH_catalog.json (ingest, replay, federated scan
// seq/parallel, compaction) so CI can diff runs.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common.hpp"
#include "fluxtrace/hub/catalog.hpp"
#include "fluxtrace/io/chunked.hpp"
#include "fluxtrace/query/engine.hpp"
#include "fluxtrace/query/federated.hpp"
#include "fluxtrace/query/render.hpp"
#include "json_out.hpp"

using namespace fluxtrace;

namespace {

constexpr std::size_t kMembers = 16;
constexpr std::size_t kItemsPerMember = 400;

struct Fleet {
  SymbolTable symtab;
  io::TraceData concat; ///< member records in member (path) order
  std::size_t rows = 0;
};

/// Each member is a distinct capture session: disjoint item ids and
/// time ranges — the precondition for federated merge identity.
Fleet make_fleet(const std::string& dir) {
  Fleet f;
  std::vector<SymbolId> fns;
  for (int i = 0; i < 8; ++i) {
    fns.push_back(f.symtab.add("svc::fn_" + std::to_string(i), 0x400));
  }
  auto rnd = [state = 0x9e3779b97f4a7c15ull]() mutable {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 11;
  };
  for (std::size_t m = 0; m < kMembers; ++m) {
    io::TraceData d;
    for (std::size_t i = 0; i < kItemsPerMember; ++i) {
      const std::size_t item = m * 100000 + i;
      const auto core = static_cast<std::uint32_t>(i % 8);
      const Tsc t0 = 1'000'000'000ull * (m + 1) + 50'000 * i;
      const Tsc t1 = t0 + 40'000;
      d.markers.push_back({t0, item, core, MarkerKind::Enter});
      const std::size_t n = 6 + rnd() % 8;
      for (std::size_t s = 0; s < n; ++s) {
        PebsSample smp;
        smp.tsc = t0 + 1 + (s * 39'000) / n;
        smp.core = core;
        smp.ip = f.symtab.ip_at(fns[rnd() % 2 == 0 ? 0 : rnd() % 8], 0.5);
        d.samples.push_back(smp);
      }
      d.markers.push_back({t1, item, core, MarkerKind::Leave});
    }
    char name[32];
    std::snprintf(name, sizeof name, "/member_%02zu.flxt", m);
    io::save_trace_v2(dir + name, d, 1024);
    f.rows += d.samples.size();
    f.concat.markers.insert(f.concat.markers.end(), d.markers.begin(),
                            d.markers.end());
    f.concat.samples.insert(f.concat.samples.end(), d.samples.begin(),
                            d.samples.end());
  }
  return f;
}

/// Wipe every regular file in dir so reruns start from an empty catalog.
void wipe_dir(const std::string& dir) {
  ::mkdir(dir.c_str(), 0755);
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  while (dirent* ent = ::readdir(d)) {
    const std::string name = ent->d_name;
    if (name != "." && name != "..") ::unlink((dir + "/" + name).c_str());
  }
  ::closedir(d);
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

std::string csv_of(const query::QueryResult& r) {
  std::ostringstream os;
  query::print_csv(os, r);
  return std::move(os).str();
}

void require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "ASSERTION FAILED: %s\n", what);
    std::exit(1);
  }
}

const char* const kPipelines[] = {
    "group func: count, sum(dur), p95(dur)",
    "filter item % 2 == 0 | group core: count, max(ts)",
    "group item: count | top 10 by count",
};

} // namespace

int main() {
  bench::banner("ext_catalog: fleet catalog ingest + federated query",
                "ISSUE 9 (crash-consistent trace catalog over §IV traces)");

  const std::string dir = "/tmp/fluxtrace_bench_catalog";
  wipe_dir(dir);
  const Fleet f = make_fleet(dir);
  const auto n_rows = static_cast<double>(f.rows);
  std::printf("fleet: %zu members, %zu samples total\n\n", kMembers, f.rows);

  bench::BenchJson json("catalog");
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  // ---- 1. ingest + replay ------------------------------------------
  {
    hub::CatalogOptions o;
    o.threads = hw;
    hub::Catalog cat = hub::Catalog::open(dir, f.symtab, o);
    const auto t0 = std::chrono::steady_clock::now();
    const hub::IngestReport rep = cat.ingest();
    const double ms = ms_since(t0);
    require(rep.registered == kMembers && rep.failed == 0 &&
                rep.quarantined == 0,
            "clean fleet ingests whole: every member registered");
    std::printf("ingest     : %8.1f ms  (%zu members, %.2f ns/row, "
                "sidecars built)\n",
                ms, rep.registered, ms * 1e6 / n_rows);
    json.add("ingest", n_rows, ms * 1e6 / n_rows);
  }
  {
    const auto t0 = std::chrono::steady_clock::now();
    hub::Catalog cat = hub::Catalog::open(dir, f.symtab, {});
    const double ms = ms_since(t0);
    require(cat.manifest().entries().size() == kMembers,
            "journal replay restores exactly the ingested entry set");
    require(!cat.open_report().replay.truncated &&
                !cat.open_report().replay.recreated,
            "clean shutdown leaves a clean journal");
    std::printf("replay     : %8.3f ms  (%zu journal records)\n", ms,
                cat.manifest().journal_records());
    json.add("replay", static_cast<double>(kMembers),
             ms * 1e6 / static_cast<double>(kMembers));
  }

  // ---- 2+3. federated == concatenated, at any fan-out --------------
  std::vector<std::string> before;
  {
    query::EngineOptions eo;
    eo.threads = 1;
    query::QueryEngine whole =
        query::QueryEngine::from_data(f.concat, f.symtab, eo);
    hub::Catalog cat = hub::Catalog::open(dir, f.symtab, {});
    const std::vector<query::FederatedTrace> members = cat.query_members();
    require(members.size() == kMembers, "every live member is queryable");
    for (const char* q : kPipelines) {
      const std::string expected = csv_of(whole.run(q));
      query::FederatedOptions seq;
      seq.fanout_threads = 1;
      seq.engine.threads = 1;
      auto t0 = std::chrono::steady_clock::now();
      const query::FederatedResult rs =
          query::run_federated(members, f.symtab, q, seq);
      const double seq_ms = ms_since(t0);
      query::FederatedOptions par;
      par.fanout_threads = hw;
      t0 = std::chrono::steady_clock::now();
      const query::FederatedResult rp =
          query::run_federated(members, f.symtab, q, par);
      const double par_ms = ms_since(t0);
      require(csv_of(rs.result) == expected,
              "federated answer bit-identical to concatenated evaluation");
      require(csv_of(rp.result) == expected,
              "fan-out thread count never observable in the answer");
      require(rs.ledger.count(query::TraceDisposition::Ok) == kMembers,
              "ledger accounts every member as ok");
      before.push_back(expected);
      std::printf("federated  : seq %7.1f ms, fanout=%u %7.1f ms   %s\n",
                  seq_ms, hw, par_ms, q);
      json.add(std::string("federated_seq: ") + q, n_rows,
               seq_ms * 1e6 / n_rows);
      json.add(std::string("federated_par: ") + q, n_rows,
               par_ms * 1e6 / n_rows);
    }
  }

  // ---- 4. compaction changes files, not answers --------------------
  {
    hub::Catalog cat = hub::Catalog::open(dir, f.symtab, {});
    const auto t0 = std::chrono::steady_clock::now();
    const hub::CompactReport rep =
        cat.compact(/*threshold_bytes=*/1ull << 40, /*min_members=*/2);
    const double ms = ms_since(t0);
    require(rep.errors.empty() && rep.segments_written == 1 &&
                rep.members_merged == kMembers,
            "whole fleet compacts into one segment");
    require(cat.verify().clean(), "verify stays clean after compaction");
    const std::vector<query::FederatedTrace> members = cat.query_members();
    require(members.size() == 1, "one live segment after compaction");
    for (std::size_t i = 0; i < std::size(kPipelines); ++i) {
      const query::FederatedResult fr = query::run_federated(
          members, f.symtab, kPipelines[i], query::FederatedOptions{});
      require(csv_of(fr.result) == before[i],
              "compaction changes no byte of any query answer");
    }
    std::printf("compaction : %8.1f ms  (%zu members -> %s, answers "
                "unchanged)\n",
                ms, rep.members_merged, rep.segment_path.c_str());
    json.add("compact", n_rows, ms * 1e6 / n_rows);
  }

  json.write();
  std::printf("\nall assertions held: clean fleet ingests whole, replay "
              "restores it,\nfederated == concatenated at every fan-out, "
              "and compaction rewrites the\nfiles without changing one "
              "byte of any answer.\n");
  return 0;
}
