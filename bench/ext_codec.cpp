// Extension: the FLXT v3 compressed columnar container (ISSUE 10).
// Three claims are measured and *asserted*, not just printed:
//
//   1. on a structured 1M-sample trace the v3 file is at most 50% of
//      the v2 file — dictionary'd func/item ids, delta+zigzag+varint
//      timestamps, and FoR bit-packed core/dur/ip have to earn their
//      complexity in bytes;
//   2. the cold open (mmap + chunk-parallel decode straight into the
//      columnar store) is >= 2x faster than the v2 sequential
//      baseline — graduated by std::thread::hardware_concurrency():
//      a host under 4 cores cannot prove the parallel half of that
//      claim, so there the bench asserts bit-identity only;
//   3. the decoded trace is bit-identical to the v2 decode, record for
//      record, and so is every column of the built store.
//
// Results land in BENCH_codec.json (encode, per-path cold opens, size
// ratio) so CI can diff runs.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "common.hpp"
#include "fluxtrace/io/chunked.hpp"
#include "fluxtrace/io/trace_reader.hpp"
#include "fluxtrace/io/v3.hpp"
#include "fluxtrace/query/columnar.hpp"
#include "json_out.hpp"

using namespace fluxtrace;

namespace {

constexpr std::size_t kItems = 1000;
constexpr std::size_t kSamplesPerItem = 1000; // 1M samples total
constexpr std::size_t kRecordsPerChunk = 4096;
constexpr int kTimedRuns = 3; // best-of, to shrug off scheduler noise

struct Workload {
  SymbolTable symtab;
  io::TraceData data;
};

/// Structured the way real captures are: near-monotonic timestamps,
/// a small working set of functions, 8 cores, a wait edge per item.
Workload make_workload() {
  Workload w;
  std::vector<SymbolId> fns;
  for (int i = 0; i < 16; ++i) {
    fns.push_back(w.symtab.add("svc::fn_" + std::to_string(i), 0x400));
  }
  auto rnd = [state = 0x9e3779b97f4a7c15ull]() mutable {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 11;
  };
  w.data.samples.reserve(kItems * kSamplesPerItem);
  for (std::size_t i = 0; i < kItems; ++i) {
    const auto core = static_cast<std::uint32_t>(i % 8);
    const Tsc t0 = 100000 * (i + 1);
    const Tsc t1 = t0 + 90000;
    w.data.markers.push_back({t0, i, core, MarkerKind::Enter});
    for (std::size_t s = 0; s < kSamplesPerItem; ++s) {
      PebsSample smp;
      smp.tsc = t0 + 1 + (s * 89000) / kSamplesPerItem + rnd() % 16;
      smp.core = core;
      smp.ip = w.symtab.ip_at(fns[rnd() % 2 == 0 ? 0 : rnd() % 16], 0.5);
      w.data.samples.push_back(smp);
    }
    WaitEdge e;
    e.enter = t0 + 100;
    e.leave = t0 + 300 + rnd() % 500;
    e.item = i;
    e.waiter_core = core;
    e.holder_core = (core + 1) % 8;
    e.resource = static_cast<std::uint32_t>(i % 4);
    e.cause = static_cast<WaitCause>(rnd() % kNumWaitCauses);
    w.data.wait_edges.push_back(e);
    w.data.markers.push_back({t1, i, core, MarkerKind::Leave});
  }
  return w;
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

void require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "ASSERTION FAILED: %s\n", what);
    std::exit(1);
  }
}

std::uint64_t file_bytes(const std::string& path) {
  const io::TraceReader r = io::open_trace(path);
  return r.size_bytes();
}

/// Best-of-N cold columnar open: every run reopens the file and
/// rebuilds the store from scratch (no engine-level caching involved).
double cold_open_ms(const std::string& path, const SymbolTable& symtab,
                    unsigned threads, std::size_t* rows_out) {
  double best = 1e30;
  for (int run = 0; run < kTimedRuns; ++run) {
    const auto t0 = std::chrono::steady_clock::now();
    const query::ColumnarTrace ct =
        query::ColumnarTrace::open(path, symtab, {}, threads);
    best = std::min(best, ms_since(t0));
    require(!ct.salvaged(), "cold open of an undamaged file never salvages");
    *rows_out = ct.rows();
  }
  return best;
}

} // namespace

int main() {
  bench::banner("ext_codec: FLXT v3 compressed columnar container",
                "ISSUE 10 (codec subsystem over the §IV trace container)");

  const Workload w = make_workload();
  const std::string p2 = "/tmp/fluxtrace_bench_codec.flxt2";
  const std::string p3 = "/tmp/fluxtrace_bench_codec.flxt3";
  const double n_rows = static_cast<double>(w.data.samples.size());

  bench::BenchJson json("codec");

  // ---- encode both containers, account the bytes ---------------------
  {
    const auto t0 = std::chrono::steady_clock::now();
    io::save_trace_v2(p2, w.data, kRecordsPerChunk);
    const double v2_ms = ms_since(t0);
    const auto t1 = std::chrono::steady_clock::now();
    io::save_trace_v3(p3, w.data, kRecordsPerChunk);
    const double v3_ms = ms_since(t1);
    std::printf("encode: v2 %.1f ms, v3 %.1f ms (%zu samples, %zu "
                "records/chunk)\n",
                v2_ms, v3_ms, w.data.samples.size(), kRecordsPerChunk);
    json.add("encode_v2", n_rows, v2_ms * 1e6 / n_rows);
    json.add("encode_v3", n_rows, v3_ms * 1e6 / n_rows);
  }

  // ---- 1. size: v3 <= 50% of v2 --------------------------------------
  const std::uint64_t b2 = file_bytes(p2);
  const std::uint64_t b3 = file_bytes(p3);
  const double ratio = static_cast<double>(b3) / static_cast<double>(b2);
  std::printf("size  : v2 %8.2f MiB, v3 %8.2f MiB -> ratio %.3f "
              "(need <= 0.50)\n",
              b2 / 1048576.0, b3 / 1048576.0, ratio);
  require(ratio <= 0.50, "v3 file <= 50% of the v2 file on typical data");
  json.add("size_ratio_v3_over_v2", 1, ratio);

  // ---- 3. bit-identity: records and columns --------------------------
  {
    const io::TraceReader r2 = io::open_trace(p2);
    const io::TraceReader r3 = io::open_trace(p3);
    require(r3.mapped(), "v3 opens through the mmap path");
    require(r3.format() == io::TraceFormat::FlxtV3, "v3 autodetected");
    const io::TraceData d2 = r2.read();
    const io::TraceData d3 = r3.read();
    require(d2 == d3, "v3 decode bit-identical to v2 decode");
    require(d3 == w.data, "v3 decode bit-identical to the recorded data");
    std::printf("ident : v3 records == v2 records == recorded "
                "(%zu samples, %zu markers, %zu wait edges)\n",
                d3.samples.size(), d3.markers.size(), d3.wait_edges.size());
  }

  // ---- 2. cold columnar open: v3 parallel vs. v2 sequential ----------
  const unsigned hw = std::thread::hardware_concurrency();
  std::size_t rows2 = 0;
  std::size_t rows3 = 0;
  const double v2_seq_ms = cold_open_ms(p2, w.symtab, 1, &rows2);
  const double v3_par_ms = cold_open_ms(p3, w.symtab, hw ? hw : 1, &rows3);
  const double speedup = v2_seq_ms / v3_par_ms;
  require(rows2 == rows3 && rows2 == w.data.samples.size(),
          "both paths build every row");
  {
    // Column-level identity of the two stores.
    const query::ColumnarTrace c2 =
        query::ColumnarTrace::open(p2, w.symtab, {}, 1);
    const query::ColumnarTrace c3 =
        query::ColumnarTrace::open(p3, w.symtab, {}, hw ? hw : 1);
    for (std::size_t f = 0; f < query::kNumFields; ++f) {
      const auto a = c2.col(static_cast<query::Field>(f));
      const auto b = c3.col(static_cast<query::Field>(f));
      require(std::equal(a.begin(), a.end(), b.begin(), b.end()),
              "every column of the v3 store == the v2 store");
    }
  }
  std::printf("cold  : v2 seq %7.1f ms (%.2f ns/row), v3 mmap+parallel "
              "%7.1f ms (%.2f ns/row) -> %.2fx\n",
              v2_seq_ms, v2_seq_ms * 1e6 / n_rows, v3_par_ms,
              v3_par_ms * 1e6 / n_rows, speedup);
  json.add("cold_open_v2_seq", n_rows, v2_seq_ms * 1e6 / n_rows);
  json.add("cold_open_v3_parallel", n_rows, v3_par_ms * 1e6 / n_rows);
  json.add("cold_open_speedup", 1, speedup);

  // The parallel half of the claim needs cores to run on; a thin runner
  // proves bit-identity above and reports the (unasserted) number.
  if (hw >= 4) {
    std::printf("        %u hw threads: asserting >= 2x\n", hw);
    require(speedup >= 2.0,
            "v3 cold open >= 2x faster than the v2 sequential baseline");
  } else {
    std::printf("        %u hw threads (< 4): speedup not provable here, "
                "asserting identity only\n", hw);
  }

  json.write();
  std::remove(p2.c_str());
  std::remove(p3.c_str());
  std::printf("\nall assertions held: v3 within the 50%% size budget, "
              "decode and store\nbit-identical to v2, cold open within the "
              "2x budget (graduated by core count).\n");
  return 0;
}
