// Extension: resilient spooling under sink chaos. Sweeps the overflow
// policy against the sink transient-failure rate and shows the robustness
// contract of io::ResilientWriter: throughput degrades smoothly, every
// record that does not reach the spool is attributed to a counted cause
// (queue drop vs sink loss), and the ledger reconciles exactly at every
// point of the sweep — there is no fault rate at which records silently
// vanish.
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "fluxtrace/io/resilient.hpp"
#include "fluxtrace/sim/fault.hpp"

using namespace fluxtrace;

namespace {

/// In-memory spool device: byte-accurate, failure-free. Faults are layered
/// on top with io::FaultableSink so the sweep is filesystem-independent.
struct MemorySink final : io::SpoolSink {
  std::string bytes;
  io::SinkResult write(const char* d, std::size_t n) override {
    bytes.append(d, n);
    return {io::SinkStatus::Ok, n};
  }
  bool sync() override { return true; }
  [[nodiscard]] std::string describe() const override { return "mem"; }
};

struct SweepPoint {
  const char* policy;
  double fault_rate;
  io::ResilientWriter::Stats stats;
  bool reconciled;
};

SweepPoint run_point(io::OverflowPolicy policy, const char* policy_name,
                     double fault_rate) {
  sim::FaultPlanConfig fcfg;
  fcfg.seed = 42;
  fcfg.sink_transient_rate = fault_rate;
  sim::FaultPlan plan(fcfg);

  io::ResilientWriterConfig wcfg;
  wcfg.queue_chunks = 16;
  wcfg.overflow = policy;
  wcfg.records_per_chunk = 64;
  wcfg.max_attempts = 4;
  wcfg.backoff_base_ns = 1'000;
  wcfg.backoff_cap_ns = 100'000;
  auto primary = std::make_unique<io::FaultableSink>(
      std::make_unique<MemorySink>(), [&plan](std::size_t bytes) {
        switch (plan.sink_fault(bytes)) {
          case sim::SinkFaultKind::Transient: return io::SinkFault::Transient;
          case sim::SinkFaultKind::Stuck: return io::SinkFault::Stuck;
          case sim::SinkFaultKind::NoSpace: return io::SinkFault::NoSpace;
          case sim::SinkFaultKind::None: break;
        }
        return io::SinkFault::None;
      });
  io::ResilientWriter w(wcfg, std::move(primary));

  // 20k samples arriving in drain-sized batches, one pump per batch —
  // the cadence a supervised capture session drives the writer at.
  constexpr std::size_t kTotal = 20'000;
  constexpr std::size_t kBatch = 128;
  std::vector<PebsSample> batch(kBatch);
  std::uint64_t now = 0;
  for (std::size_t off = 0; off < kTotal; off += kBatch) {
    for (std::size_t i = 0; i < kBatch; ++i) {
      batch[i].tsc = off + i;
      batch[i].core = 1;
      batch[i].ip = 0x400000 + i;
    }
    now += 10'000; // 10 us between drains
    w.add_samples(batch.data(), kBatch, now);
    w.pump(now);
  }
  w.close(now + 1'000'000'000);

  return SweepPoint{policy_name, fault_rate, w.stats(),
                    w.stats().reconciled()};
}

} // namespace

int main() {
  bench::banner("ext_resilient_spool — overflow policy x sink fault sweep",
                "extension of §III-E (loss accounting) + §IV-C3 (spooling)");

  const std::pair<io::OverflowPolicy, const char*> policies[] = {
      {io::OverflowPolicy::Block, "block"},
      {io::OverflowPolicy::DropOldest, "drop-oldest"},
      {io::OverflowPolicy::DropNewest, "drop-newest"},
  };
  const double rates[] = {0.0, 0.1, 0.3, 0.5};

  std::printf("%-12s %6s | %9s %9s %9s %8s %9s | %s\n", "policy", "fault",
              "committed", "q-dropped", "sink-lost", "retries", "backoff-us",
              "ledger");
  bool all_reconciled = true;
  for (const auto& [policy, name] : policies) {
    for (const double rate : rates) {
      const SweepPoint p = run_point(policy, name, rate);
      all_reconciled = all_reconciled && p.reconciled;
      std::printf("%-12s %5.0f%% | %9" PRIu64 " %9" PRIu64 " %9" PRIu64
                  " %8" PRIu64 " %9" PRIu64 " | %s\n",
                  p.policy, rate * 100.0, p.stats.records_committed,
                  p.stats.records_dropped_queue, p.stats.records_lost_sink,
                  p.stats.retries, p.stats.backoff_ns / 1000,
                  p.reconciled ? "exact" : "MISMATCH");
    }
    std::printf("\n");
  }

  std::printf("every point reconciled: %s\n", all_reconciled ? "yes" : "NO");
  return all_reconciled ? 0 : 1;
}
