// Figure 6, executed: the paper's procedure diagram as a live walkthrough
// on a two-item toy — (1) markers record t0/t1/t2 at the data-item
// switches while PEBS samples ta/tb/...; (2) each sample is placed in a
// window by timestamp and in a function by ip; (3) elapsed times come out
// per {function, item}. Every intermediate artifact is printed.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "fluxtrace/core/integrator.hpp"
#include "fluxtrace/prog/builder.hpp"
#include "fluxtrace/report/gantt.hpp"
#include "fluxtrace/report/table.hpp"
#include "fluxtrace/sim/machine.hpp"

using namespace fluxtrace;

namespace {

class TwoItemWorker final : public sim::Task {
 public:
  TwoItemWorker(const prog::ProgramBuilder& prog) : prog_(prog) {}

  sim::StepStatus step(sim::Cpu& cpu) override {
    if (done_) return sim::StepStatus::Done;
    for (const ItemId item : {0u, 1u}) {
      cpu.mark_enter(item); // records t0 (and later t1 as enter of #1)
      prog_.run_on(cpu);
      cpu.mark_leave(item);
    }
    done_ = true;
    return sim::StepStatus::Done;
  }

 private:
  const prog::ProgramBuilder& prog_;
  bool done_ = false;
};

} // namespace

int main() {
  const CpuSpec spec;
  bench::banner("fig06_procedure",
                "Fig. 6 — the hybrid procedure, step by step on two "
                "data-items", spec);

  SymbolTable symtab;
  auto prog = prog::ProgramBuilder(symtab)
                  .fn("f1").uops(18000)   // ~2.4 us
                  .fn("f2").uops(30000);  // ~4 us

  sim::Machine m(symtab);
  sim::PebsConfig pc;
  pc.reset = 6000; // ~0.8 us interval: a handful of samples per function
  pc.sample_cost_ns = 0.0;
  m.cpu(0).enable_pebs(pc);
  TwoItemWorker worker(prog);
  m.attach(0, worker);
  m.run();
  m.flush_samples();

  // --- step 1: the two raw streams -------------------------------------
  std::printf("step 1a — markers (instrumentation, at data-item switches):\n");
  report::Table mt({"tsc [us]", "item", "kind"});
  for (const Marker& mk : m.marker_log().markers()) {
    mt.row({report::Table::num(spec.us(mk.tsc)),
            std::to_string(mk.item),
            mk.kind == MarkerKind::Enter ? "enter" : "leave"});
  }
  mt.print(std::cout);

  std::printf("\nstep 1b — PEBS samples (hardware, every %llu uops):\n",
              static_cast<unsigned long long>(pc.reset));
  report::Table st({"tsc [us]", "ip", "-> function"});
  for (const PebsSample& s : m.pebs_driver().samples()) {
    const auto fn = symtab.resolve(s.ip);
    char ipbuf[32];
    std::snprintf(ipbuf, sizeof ipbuf, "0x%llx",
                  static_cast<unsigned long long>(s.ip));
    st.row({report::Table::num(spec.us(s.tsc)), ipbuf,
            fn ? std::string(symtab.name(*fn)) : "?"});
  }
  st.print(std::cout);

  // --- step 2: integrate ------------------------------------------------
  core::TraceIntegrator integ(symtab);
  const core::TraceTable table = integ.integrate(
      m.marker_log().markers(), m.pebs_driver().samples());

  std::printf("\nstep 2 — samples placed into item windows:\n");
  report::Gantt g(64);
  for (const core::ItemWindow& w : table.windows()) {
    g.span("items", w.enter, w.leave, w.item == 0 ? '0' : '1');
  }
  for (const PebsSample& s : m.pebs_driver().samples()) {
    g.span("samples", s.tsc, s.tsc, '|');
  }
  g.print(std::cout);

  // --- step 3: per-{function, item} elapsed -----------------------------
  std::printf("\nstep 3 — elapsed time per function per data-item:\n");
  report::Table et({"item", "f1 [us]", "f2 [us]", "f1 samples", "f2 samples"});
  const SymbolId f1 = prog.symbol("f1");
  const SymbolId f2 = prog.symbol("f2");
  for (const ItemId item : table.items()) {
    et.row({"#" + std::to_string(item),
            report::Table::num(spec.us(table.elapsed(item, f1))),
            report::Table::num(spec.us(table.elapsed(item, f2))),
            report::Table::num(table.sample_count(item, f1)),
            report::Table::num(table.sample_count(item, f2))});
  }
  et.print(std::cout);

  std::printf(
      "\n(True per-item times: f1 = %.2f us, f2 = %.2f us; estimates are\n"
      "first-to-last sample spans, short by up to ~2 sample intervals.)\n",
      spec.us(spec.uop_cycles(18000)), spec.us(spec.uop_cycles(30000)));
  return 0;
}
