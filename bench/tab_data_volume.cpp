// §IV-C3's data-volume numbers: the PEBS sample stream was 270/194/153/
// 125/106 MB/s for reset values 8K..24K; across a 16-core CPU that is
// 4.3..1.7 GB/s — still under 4% of a Skylake socket's memory bandwidth,
// which is the argument for processing samples online rather than dumping
// them all to storage.
#include <cstdio>
#include <iostream>

#include "acl_common.hpp"
#include "fluxtrace/core/volume.hpp"
#include "fluxtrace/report/table.hpp"

using namespace fluxtrace;
using namespace fluxtrace::bench;

int main() {
  const CpuSpec spec;
  banner("tab_data_volume",
         "§IV-C3 — PEBS raw-sample data volume vs reset value "
         "(ACL case study, per traced core and per 16-core CPU)",
         spec);

  const acl::RuleSet rules = acl::make_paper_ruleset();
  const core::DataVolumeModel model;

  report::Table tab({"reset", "samples", "MB/s per core", "GB/s per CPU(16c)",
                     "% of mem BW"});
  for (const std::uint64_t reset : {8000u, 12000u, 16000u, 20000u, 24000u}) {
    AclRunConfig cfg;
    cfg.pebs_reset = reset;
    // Saturate the ACL core harder than Figs. 9/10 so the per-core rate
    // reflects a busy core, as in the paper's measurement.
    cfg.gap_ns = 14000.0;
    const AclRunResult r = run_acl_case_study(rules, cfg);
    const double mbps = model.measured_mbps(r.pebs_samples, r.acl_total, spec);
    const double gbps = model.per_cpu_gbps(mbps);
    tab.row({report::Table::num(reset / 1000) + "K",
             report::Table::num(r.pebs_samples),
             report::Table::num(mbps, 1), report::Table::num(gbps, 2),
             report::Table::num(model.membw_fraction(gbps) * 100.0, 2)});
  }
  tab.print(std::cout);

  std::printf(
      "\npaper reference: 270 / 194 / 153 / 125 / 106 MB/s for the same\n"
      "reset values; absolute rates differ with the simulated core's uop\n"
      "rate, but the 1/R shape and the <4%%-of-memory-bandwidth argument\n"
      "hold (Xeon Platinum 8153: 127.8 GB/s with DDR4-2666 x 6).\n");
  return 0;
}
