// Single-producer / single-consumer lock-free ring, the software queue of
// the paper's target architecture (Fig. 5): pinned worker threads pass
// data-items to each other through queues like DPDK's rte_ring. The
// implementation is a real wait-free SPSC ring (acquire/release atomics,
// power-of-two capacity, cache-line-separated indices); the simulator uses
// it single-threadedly but tests exercise it from two real threads.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <optional>
#include <vector>

#include "fluxtrace/base/wait.hpp"

namespace fluxtrace::rt {

/// Destructive-interference distance, pinned to 64 (x86-64) so the ABI
/// does not drift with compiler tuning flags.
inline constexpr std::size_t kCacheLine = 64;

/// Opt-in wait-edge capture for one ring (ISSUE 8). When `log` is set,
/// the ring tracks stall *episodes* on both endpoints: the first failed
/// push opens a ring-full episode and the next successful push closes it
/// into one WaitEdge (waiter = producer core, holder = consumer core);
/// pop mirrors this for ring-empty (waiter = consumer, holder =
/// producer). `now` supplies timestamps (virtual TSC in simulation, any
/// monotonic counter in threaded tests); a null `now` records
/// zero-duration edges, which still count. The probe is a plain struct
/// copied in — installation is not thread-safe, do it before the
/// endpoints start.
struct RingWaitProbe {
  WaitLog* log = nullptr;
  Tsc (*now)() = nullptr;
  std::uint32_t resource = 0;
  std::uint32_t producer_core = 0;
  std::uint32_t consumer_core = 0;
};

/// Wait-free bounded SPSC queue. Capacity is rounded up to a power of two;
/// one slot is sacrificed to distinguish full from empty.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t min_capacity = 1024)
      : mask_(round_up_pow2(min_capacity + 1) - 1),
        slots_(mask_ + 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Install (or clear) the wait-edge probe. Call while both endpoints
  /// are quiescent; the probe fields are read unlocked from both sides.
  void set_wait_probe(const RingWaitProbe& probe) { probe_ = probe; }

  /// Producer side. Returns false when the ring is full (the rejection
  /// is counted in dropped()). `item` annotates a ring-full wait edge
  /// with the data-item that was blocked, when the caller knows it.
  bool push(T value, ItemId item = kNoItem) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t next = (head + 1) & mask_;
    if (next == tail_.load(std::memory_order_acquire)) {
      if (probe_.log != nullptr && !push_stalled_) {
        push_stalled_ = true;
        push_stall_enter_ = probe_.now != nullptr ? probe_.now() : 0;
        push_stall_item_ = item;
      }
      drops_.store(drops_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
      return false; // full
    }
    slots_[head] = std::move(value);
    head_.store(next, std::memory_order_release);
    if (push_stalled_) close_push_stall();
    return true;
  }

  /// Consumer side. Returns nullopt when the ring is empty.
  std::optional<T> pop() {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) {
      if (probe_.log != nullptr && !pop_stalled_) {
        pop_stalled_ = true;
        pop_stall_enter_ = probe_.now != nullptr ? probe_.now() : 0;
      }
      return std::nullopt; // empty
    }
    T value = std::move(slots_[tail]);
    tail_.store((tail + 1) & mask_, std::memory_order_release);
    if (pop_stalled_) close_pop_stall();
    return value;
  }

  /// Producer side, burst variant (rte_ring-style): enqueue up to
  /// `count` elements from `src`; returns how many were enqueued (all or
  /// as many as fit). Elements that did not fit are counted in dropped().
  std::size_t push_burst(const T* src, std::size_t count) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t free_slots = mask_ - ((head - tail) & mask_);
    const std::size_t n = count < free_slots ? count : free_slots;
    for (std::size_t i = 0; i < n; ++i) {
      slots_[(head + i) & mask_] = src[i];
    }
    head_.store((head + n) & mask_, std::memory_order_release);
    if (n < count) {
      // Episode semantics for bursts: only a fully rejected burst opens
      // a stall (partial progress is progress), and any accepted element
      // closes one.
      if (n == 0 && probe_.log != nullptr && !push_stalled_) {
        push_stalled_ = true;
        push_stall_enter_ = probe_.now != nullptr ? probe_.now() : 0;
        push_stall_item_ = kNoItem;
      }
      drops_.store(drops_.load(std::memory_order_relaxed) + (count - n),
                   std::memory_order_relaxed);
    }
    if (n > 0 && push_stalled_) close_push_stall();
    return n;
  }

  /// Consumer side, burst variant: dequeue up to `count` elements into
  /// `dst`; returns how many were dequeued.
  std::size_t pop_burst(T* dst, std::size_t count) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t avail = (head - tail) & mask_;
    const std::size_t n = count < avail ? count : avail;
    if (n == 0 && count > 0 && probe_.log != nullptr && !pop_stalled_) {
      pop_stalled_ = true;
      pop_stall_enter_ = probe_.now != nullptr ? probe_.now() : 0;
    }
    for (std::size_t i = 0; i < n; ++i) {
      dst[i] = std::move(slots_[(tail + i) & mask_]);
    }
    tail_.store((tail + n) & mask_, std::memory_order_release);
    if (n > 0 && pop_stalled_) close_pop_stall();
    return n;
  }

  /// Consumer-side peek without dequeue.
  [[nodiscard]] const T* front() const {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) return nullptr;
    return &slots_[tail];
  }

  [[nodiscard]] bool empty() const {
    return tail_.load(std::memory_order_acquire) ==
           head_.load(std::memory_order_acquire);
  }

  /// Number of queued elements (racy across threads; exact when called
  /// from a quiescent state or from the simulator's single thread).
  [[nodiscard]] std::size_t size() const {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return (head - tail) & mask_;
  }

  /// Usable capacity (slots minus the full/empty sentinel).
  [[nodiscard]] std::size_t capacity() const { return mask_; }

  /// Elements rejected because the ring was full — the overflow ledger a
  /// supervising watchdog reconciles against (§III-E loss accounting).
  /// Monotone; written only by the producer (plain load+store is a
  /// single-writer increment, so no RMW is needed on the hot path),
  /// readable from any thread.
  [[nodiscard]] std::uint64_t dropped() const {
    return drops_.load(std::memory_order_relaxed);
  }

 private:
  static std::size_t round_up_pow2(std::size_t v) {
    std::size_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  void close_push_stall() {
    WaitEdge e;
    e.enter = push_stall_enter_;
    e.leave = probe_.now != nullptr ? probe_.now() : push_stall_enter_;
    e.item = push_stall_item_;
    e.waiter_core = probe_.producer_core;
    e.holder_core = probe_.consumer_core;
    e.resource = probe_.resource;
    e.cause = WaitCause::RingFull;
    probe_.log->record(e);
    push_stalled_ = false;
    push_stall_item_ = kNoItem;
  }

  void close_pop_stall() {
    WaitEdge e;
    e.enter = pop_stall_enter_;
    e.leave = probe_.now != nullptr ? probe_.now() : pop_stall_enter_;
    e.waiter_core = probe_.consumer_core;
    e.holder_core = probe_.producer_core;
    e.resource = probe_.resource;
    e.cause = WaitCause::RingEmpty;
    probe_.log->record(e);
    pop_stalled_ = false;
  }

  alignas(kCacheLine) std::atomic<std::size_t> head_{0}; // producer writes
  // Producer-private episode state rides the producer's line group.
  bool push_stalled_ = false;
  Tsc push_stall_enter_ = 0;
  ItemId push_stall_item_ = kNoItem;
  alignas(kCacheLine) std::atomic<std::uint64_t> drops_{0}; // producer writes
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0}; // consumer writes
  // Consumer-private episode state rides the consumer's line group.
  bool pop_stalled_ = false;
  Tsc pop_stall_enter_ = 0;
  const std::size_t mask_;
  std::vector<T> slots_;
  RingWaitProbe probe_; ///< read-only after set_wait_probe()
};

} // namespace fluxtrace::rt
