#include "fluxtrace/rt/ulthread.hpp"

#include <algorithm>
#include <cassert>

namespace fluxtrace::rt {

UlScheduler::UlScheduler(UlSchedulerConfig cfg) : cfg_(cfg) {
  assert(cfg_.timeslice > 0 && "timer-switching requires a timeslice");
}

void UlScheduler::submit(UlWork work) {
  UlThread t;
  t.work = std::move(work);
  t.regs.set(kItemIdReg, t.work.item);
  threads_.push_back(std::move(t));
}

bool UlScheduler::run_slice(sim::Cpu& cpu, UlThread& t) {
  const Tsc slice_end = cpu.now() + cfg_.timeslice;
  const double cpu_per_uop = cpu.spec().cycles_per_uop;

  while (t.block_idx < t.work.blocks.size()) {
    const sim::ExecBlock& b = t.work.blocks[t.block_idx];
    const std::uint64_t uops_left = b.uops - t.uops_done;

    const Tsc remaining = slice_end > cpu.now() ? slice_end - cpu.now() : 0;
    const auto fit = static_cast<std::uint64_t>(
        static_cast<double>(remaining) / cpu_per_uop);
    if (fit == 0) return false; // timeslice exhausted mid-item → preempt

    const std::uint64_t run_uops = std::min(uops_left, fit);

    // Partial block: run a proportional slice, including a proportional
    // window of its memory accesses so cache behaviour is preserved.
    sim::ExecBlock part = b;
    part.uops = run_uops;
    part.branch_misses =
        b.uops == 0 ? 0 : b.branch_misses * run_uops / b.uops;
    if (b.mem.count > 0 && b.uops > 0) {
      const auto c0 = static_cast<std::uint32_t>(
          static_cast<std::uint64_t>(b.mem.count) * t.uops_done / b.uops);
      const auto c1 = static_cast<std::uint32_t>(
          static_cast<std::uint64_t>(b.mem.count) * (t.uops_done + run_uops) /
          b.uops);
      part.mem.count = c1 - c0;
      part.mem.base =
          b.mem.base + static_cast<std::uint64_t>(c0) * b.mem.stride;
    }
    cpu.run(part);

    t.uops_done += run_uops;
    if (t.uops_done >= b.uops) {
      ++t.block_idx;
      t.uops_done = 0;
    }
    if (cpu.now() >= slice_end) {
      return t.block_idx >= t.work.blocks.size();
    }
  }
  return true;
}

sim::StepStatus UlScheduler::step(sim::Cpu& cpu) {
  if (threads_.empty()) return sim::StepStatus::Done;

  UlThread t = std::move(threads_.front());
  threads_.pop_front();

  // Context-switch into the thread: the scheduler's own code runs first
  // (with no item on the core), then the thread's register file — with
  // R13 = its item id — is restored.
  cpu.set_reg(kItemIdReg, kNoItem);
  if (cfg_.scheduler_symbol != kInvalidSymbol) {
    cpu.exec(cfg_.scheduler_symbol, cfg_.switch_uops);
  }
  cpu.regs() = t.regs;

  if (!t.started && cfg_.record_markers) {
    cpu.mark_enter(t.work.item);
  }
  t.started = true;

  const bool finished = run_slice(cpu, t);

  if (finished) {
    if (cfg_.record_markers) cpu.mark_leave(t.work.item);
    ++completed_;
  } else {
    t.regs = cpu.regs(); // save context (R13 still holds the item id)
    threads_.push_back(std::move(t));
    ++switches_;
  }

  // Back in the scheduler: no data-item is on the core.
  cpu.set_reg(kItemIdReg, kNoItem);

  return sim::StepStatus::Progress;
}

} // namespace fluxtrace::rt
