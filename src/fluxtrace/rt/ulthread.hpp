// User-level threading for the *timer-switching* architecture (paper
// §III-C type 2 and §V-A): a scheduler on one core forcibly switches
// between data-items when a timeslice expires, so a light item can finish
// before a heavy one. Marker windows then no longer delimit items — the
// paper's proposed fix is to dedicate a general-purpose register (R13) to
// the current data-item id: the user-level context switch swaps register
// files, so every PEBS sample automatically carries the right id.
#pragma once

#include <cstdint>
#include <deque>
#include <string_view>
#include <vector>

#include "fluxtrace/base/markers.hpp"
#include "fluxtrace/base/symbols.hpp"
#include "fluxtrace/sim/machine.hpp"

namespace fluxtrace::rt {

/// The work one user-level thread performs for one data-item.
struct UlWork {
  ItemId item = kNoItem;
  std::vector<sim::ExecBlock> blocks;
};

struct UlSchedulerConfig {
  Tsc timeslice = 0;            ///< cycles before a forced switch (required)
  SymbolId scheduler_symbol = kInvalidSymbol; ///< context-switch code
  std::uint64_t switch_uops = 600;            ///< cost of one switch
  bool record_markers = true;   ///< also emit enter/leave markers (so the
                                ///< failure of marker-window mapping under
                                ///< preemption can be demonstrated)
};

/// Round-robin preemptive user-level scheduler, itself a pinned Task.
/// Each submitted UlWork runs as one user-level thread; R13 always holds
/// the id of the item currently on the core.
class UlScheduler final : public sim::Task {
 public:
  explicit UlScheduler(UlSchedulerConfig cfg);

  void submit(UlWork work);

  sim::StepStatus step(sim::Cpu& cpu) override;
  [[nodiscard]] std::string_view name() const override {
    return "ul-scheduler";
  }

  [[nodiscard]] std::size_t pending() const { return threads_.size(); }
  [[nodiscard]] std::uint64_t context_switches() const { return switches_; }
  [[nodiscard]] std::uint64_t completed() const { return completed_; }

 private:
  struct UlThread {
    UlWork work;
    std::size_t block_idx = 0;      ///< next block to (continue) executing
    std::uint64_t uops_done = 0;    ///< progress inside blocks[block_idx]
    bool started = false;
    RegisterFile regs;              ///< saved register file (R13 = item id)
  };

  /// Run the current thread for at most one timeslice; returns true when
  /// the thread completed all its work.
  bool run_slice(sim::Cpu& cpu, UlThread& t);

  UlSchedulerConfig cfg_;
  std::deque<UlThread> threads_;
  std::uint64_t switches_ = 0;
  std::uint64_t completed_ = 0;
};

} // namespace fluxtrace::rt
