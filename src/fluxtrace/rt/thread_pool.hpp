// Small work-stealing thread pool for the *analysis* side of fluxtrace.
// The deterministic simulator (sim::Machine, rt::ULThread) stays strictly
// single-threaded; recorded-trace analysis is the one layer that may use
// real std::threads without perturbing test determinism, and this pool is
// what it runs on (io::TraceReader::read_parallel, core::ParallelIntegrator).
//
// Design: one deque per worker. submit() distributes round-robin; an idle
// worker pops its own deque back-to-front (LIFO, cache-warm) and steals
// from the other deques front-to-back (FIFO, oldest first). Tasks here are
// multi-millisecond shard decodes and integrations, so the simple
// mutex-per-deque arrangement is nowhere near contended.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace fluxtrace::rt {

class ThreadPool {
 public:
  /// n_threads == 0 picks std::thread::hardware_concurrency() (at least 1).
  explicit ThreadPool(unsigned n_threads = 0);

  /// Joins the workers after running every task already submitted, so
  /// futures obtained from submit() are always satisfied.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Schedule fn() on the pool; the future carries its result or its
  /// exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    enqueue([task] { (*task)(); });
    return fut;
  }

  /// Run fn(i) for every i in [0, n) across the pool and wait for all of
  /// them. The first exception thrown (in index order) is rethrown after
  /// every call has finished.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& fn);

 private:
  struct Deque {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void enqueue(std::function<void()> task);
  bool try_take(std::size_t id, std::function<void()>& out);
  void worker_loop(std::size_t id);

  std::vector<std::unique_ptr<Deque>> queues_;
  std::vector<std::thread> workers_;

  std::mutex wake_mu_;
  std::condition_variable wake_;
  std::size_t pending_ = 0; ///< queued-but-untaken tasks (guards the wait)
  bool stop_ = false;
  std::size_t next_ = 0; ///< round-robin submit cursor (guarded by wake_mu_)
};

} // namespace fluxtrace::rt
