#include "fluxtrace/rt/thread_pool.hpp"

#include <algorithm>

#include "fluxtrace/obs/metrics.hpp"
#include "fluxtrace/obs/span.hpp"

namespace fluxtrace::rt {

namespace {

// Self-telemetry (ISSUE 3): one set of process-wide pool metrics —
// pools are created per read_parallel()/integrate() call, so per-pool
// metrics would fragment the registry. Resolved once, kept forever.
struct PoolMetrics {
  obs::Counter& tasks = obs::metrics().counter("rt.pool.tasks_executed");
  obs::Counter& steals = obs::metrics().counter("rt.pool.steals");
  obs::Gauge& depth = obs::metrics().gauge("rt.pool.queue_depth");
  obs::Histogram& task_ns = obs::metrics().histogram("rt.pool.task_ns");

  static PoolMetrics& get() {
    static PoolMetrics m;
    return m;
  }
};

} // namespace

ThreadPool::ThreadPool(unsigned n_threads) {
  if (n_threads == 0) {
    n_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  queues_.reserve(n_threads);
  for (unsigned i = 0; i < n_threads; ++i) {
    queues_.push_back(std::make_unique<Deque>());
  }
  workers_.reserve(n_threads);
  for (unsigned i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  std::size_t target;
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    target = next_++ % queues_.size();
    ++pending_;
  }
  {
    std::lock_guard<std::mutex> lk(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
  }
  PoolMetrics::get().depth.add(1);
  wake_.notify_one();
}

bool ThreadPool::try_take(std::size_t id, std::function<void()>& out) {
  // Own deque first, newest task (LIFO keeps the cache warm for
  // producer-consumer chains)…
  {
    Deque& q = *queues_[id];
    std::lock_guard<std::mutex> lk(q.mu);
    if (!q.tasks.empty()) {
      out = std::move(q.tasks.back());
      q.tasks.pop_back();
      return true;
    }
  }
  // …then steal the oldest task from anyone else.
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    Deque& q = *queues_[(id + k) % queues_.size()];
    std::lock_guard<std::mutex> lk(q.mu);
    if (!q.tasks.empty()) {
      out = std::move(q.tasks.front());
      q.tasks.pop_front();
      PoolMetrics::get().steals.inc();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t id) {
  for (;;) {
    std::function<void()> task;
    if (try_take(id, task)) {
      {
        std::lock_guard<std::mutex> lk(wake_mu_);
        --pending_;
      }
      PoolMetrics& pm = PoolMetrics::get();
      pm.depth.sub(1);
      if (obs::enabled()) {
        const std::uint64_t t0 = obs::steady_now_ns();
        task();
        pm.task_ns.observe(obs::steady_now_ns() - t0);
      } else {
        task();
      }
      pm.tasks.inc();
      continue;
    }
    std::unique_lock<std::mutex> lk(wake_mu_);
    wake_.wait(lk, [this] { return stop_ || pending_ > 0; });
    if (pending_ > 0) continue; // go race for it
    if (stop_) return;          // stopped and drained
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futs;
  futs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futs.push_back(submit([&fn, i] { fn(i); }));
  }
  // Wait for everything before rethrowing: `fn` is borrowed by every
  // task, so no task may outlive this frame.
  std::exception_ptr first;
  for (std::future<void>& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

} // namespace fluxtrace::rt
