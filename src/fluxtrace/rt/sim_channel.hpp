// Time-gated SPSC channel for simulated inter-thread queues. The machine
// steps whole exec blocks at a time, so a producer's TSC can be far ahead
// of a consumer's when an element lands in the underlying ring; gating
// visibility on the producer's push timestamp keeps the discrete-event
// schedule causal (a consumer can never observe data "before" it was
// produced in simulated time).
#pragma once

#include <optional>
#include <utility>

#include "fluxtrace/base/time.hpp"
#include "fluxtrace/rt/spsc_ring.hpp"

namespace fluxtrace::rt {

template <typename T>
class SimChannel {
 public:
  explicit SimChannel(std::size_t min_capacity = 1024)
      : ring_(min_capacity) {}

  /// Producer side: enqueue at producer-time `now`.
  bool push(T value, Tsc now) {
    return ring_.push(Stamped{std::move(value), now});
  }

  /// Consumer side: dequeue the head only once consumer-time `now` has
  /// reached its push time.
  std::optional<T> pop(Tsc now) {
    const Stamped* head = ring_.front();
    if (head == nullptr || head->ready > now) return std::nullopt;
    auto v = ring_.pop();
    return std::optional<T>(std::move(v->value));
  }

  /// True when nothing is queued at all (regardless of readiness).
  [[nodiscard]] bool empty() const { return ring_.empty(); }
  [[nodiscard]] std::size_t size() const { return ring_.size(); }
  [[nodiscard]] std::size_t capacity() const { return ring_.capacity(); }

  /// Push time of the head element, if any (for schedulers/tests).
  [[nodiscard]] std::optional<Tsc> head_ready() const {
    const Stamped* head = ring_.front();
    if (head == nullptr) return std::nullopt;
    return head->ready;
  }

 private:
  struct Stamped {
    T value;
    Tsc ready;
  };
  SpscRing<Stamped> ring_;
};

} // namespace fluxtrace::rt
