// Time-gated SPSC channel for simulated inter-thread queues. The machine
// steps whole exec blocks at a time, so a producer's TSC can be far ahead
// of a consumer's when an element lands in the underlying ring; gating
// visibility on the producer's push timestamp keeps the discrete-event
// schedule causal (a consumer can never observe data "before" it was
// produced in simulated time).
#pragma once

#include <optional>
#include <utility>

#include "fluxtrace/base/time.hpp"
#include "fluxtrace/rt/spsc_ring.hpp"

namespace fluxtrace::rt {

/// Wait-edge capture for one SimChannel (ISSUE 8). The channel tracks
/// its own episodes against the *caller-supplied virtual clocks* (the
/// inner ring's probe stays uninstalled — double counting would follow):
/// a failed push opens a ring-full episode at producer time, the next
/// successful push closes it; a pop that comes back empty (or time-gated
/// not-ready, which to the consumer is the same starvation) opens a
/// ring-empty episode at consumer time.
struct ChannelWaitProbe {
  WaitLog* log = nullptr;
  std::uint32_t resource = 0;
  std::uint32_t producer_core = 0;
  std::uint32_t consumer_core = 0;
};

template <typename T>
class SimChannel {
 public:
  explicit SimChannel(std::size_t min_capacity = 1024)
      : ring_(min_capacity) {}

  /// Install (or clear) the wait-edge probe. The simulator is
  /// single-threaded, so any quiescent point will do.
  void set_wait_probe(const ChannelWaitProbe& probe) { probe_ = probe; }

  /// Producer side: enqueue at producer-time `now`. `item` annotates a
  /// ring-full wait edge with the blocked data-item when known.
  bool push(T value, Tsc now, ItemId item = kNoItem) {
    if (!ring_.push(Stamped{std::move(value), now})) {
      if (probe_.log != nullptr && !push_stalled_) {
        push_stalled_ = true;
        push_stall_enter_ = now;
        push_stall_item_ = item;
      }
      return false;
    }
    if (push_stalled_) {
      WaitEdge e;
      e.enter = push_stall_enter_;
      e.leave = now;
      e.item = push_stall_item_;
      e.waiter_core = probe_.producer_core;
      e.holder_core = probe_.consumer_core;
      e.resource = probe_.resource;
      e.cause = WaitCause::RingFull;
      probe_.log->record(e);
      push_stalled_ = false;
      push_stall_item_ = kNoItem;
    }
    return true;
  }

  /// Consumer side: dequeue the head only once consumer-time `now` has
  /// reached its push time.
  std::optional<T> pop(Tsc now) {
    const Stamped* head = ring_.front();
    if (head == nullptr || head->ready > now) {
      if (probe_.log != nullptr && !pop_stalled_) {
        pop_stalled_ = true;
        pop_stall_enter_ = now;
      }
      return std::nullopt;
    }
    auto v = ring_.pop();
    if (pop_stalled_) {
      WaitEdge e;
      e.enter = pop_stall_enter_;
      e.leave = now;
      e.waiter_core = probe_.consumer_core;
      e.holder_core = probe_.producer_core;
      e.resource = probe_.resource;
      e.cause = WaitCause::RingEmpty;
      probe_.log->record(e);
      pop_stalled_ = false;
    }
    return std::optional<T>(std::move(v->value));
  }

  /// True when nothing is queued at all (regardless of readiness).
  [[nodiscard]] bool empty() const { return ring_.empty(); }
  [[nodiscard]] std::size_t size() const { return ring_.size(); }
  [[nodiscard]] std::size_t capacity() const { return ring_.capacity(); }

  /// Push time of the head element, if any (for schedulers/tests).
  [[nodiscard]] std::optional<Tsc> head_ready() const {
    const Stamped* head = ring_.front();
    if (head == nullptr) return std::nullopt;
    return head->ready;
  }

 private:
  struct Stamped {
    T value;
    Tsc ready;
  };
  SpscRing<Stamped> ring_;
  ChannelWaitProbe probe_;
  bool push_stalled_ = false;
  Tsc push_stall_enter_ = 0;
  ItemId push_stall_item_ = kNoItem;
  bool pop_stalled_ = false;
  Tsc pop_stall_enter_ = 0;
};

} // namespace fluxtrace::rt
