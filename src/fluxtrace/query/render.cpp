#include "fluxtrace/query/render.hpp"

#include <cstdio>
#include <ostream>

#include "fluxtrace/report/csv.hpp"
#include "fluxtrace/report/table.hpp"

namespace fluxtrace::query {

void print_table(std::ostream& os, const QueryResult& res) {
  report::Table table(res.columns);
  // Right-align any column that is numeric in every row; name-bearing
  // columns (func) stay left.
  for (std::size_t c = 0; c < res.columns.size(); ++c) {
    bool numeric = true;
    for (const auto& row : res.rows) {
      if (row[c].kind == Cell::Kind::Text) {
        numeric = false;
        break;
      }
    }
    if (numeric) table.align(c, report::Align::Right);
  }
  for (const auto& row : res.rows) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (const Cell& cell : row) cells.push_back(cell.str());
    table.row(std::move(cells));
  }
  table.print(os);
}

void print_csv(std::ostream& os, const QueryResult& res) {
  report::CsvWriter csv(os);
  csv.header(res.columns);
  for (const auto& row : res.rows) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (const Cell& cell : row) cells.push_back(cell.str());
    csv.row(cells);
  }
}

namespace {

void json_escape(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

} // namespace

void print_json(std::ostream& os, const QueryResult& res) {
  os << "{\"columns\":[";
  for (std::size_t c = 0; c < res.columns.size(); ++c) {
    if (c != 0) os << ',';
    json_escape(os, res.columns[c]);
  }
  os << "],\"rows\":[";
  for (std::size_t r = 0; r < res.rows.size(); ++r) {
    if (r != 0) os << ',';
    os << '[';
    for (std::size_t c = 0; c < res.rows[r].size(); ++c) {
      if (c != 0) os << ',';
      const Cell& cell = res.rows[r][c];
      if (cell.kind == Cell::Kind::Text) {
        json_escape(os, cell.s);
      } else {
        os << cell.str();
      }
    }
    os << ']';
  }
  os << "]}\n";
}

void print_stats(std::ostream& os, const ScanStats& stats) {
  if (stats.wait_stage) {
    // Wait-edge scans have no chunk/block machinery to report; the edge
    // count is the whole story.
    os << "wait edges " << stats.wait_edges << " matched "
       << stats.rows_matched;
    if (stats.salvaged) os << " (salvaged)";
    os << ", threads " << stats.threads << "\n";
    return;
  }
  os << "rows " << stats.rows_scanned << " matched " << stats.rows_matched
     << ", chunks " << stats.chunks_total << " read " << stats.chunks_read
     << " pruned " << stats.chunks_pruned;
  if (stats.chunks_pruned_compressed > 0) {
    // Compressed (v3) chunks skipped without ever being inflated — the
    // zone hint or sidecar ruled them out from the frame bytes alone.
    os << " (" << stats.chunks_pruned_compressed << " compressed, no decode)";
  }
  if (stats.index_used) os << " (index)";
  if (stats.index_written) os << " (index written)";
  if (stats.salvaged) os << " (salvaged)";
  os << ", blocks " << stats.blocks_total << " skipped "
     << stats.blocks_skipped;
  os << ", threads " << stats.threads << "\n";
}

} // namespace fluxtrace::query
