// BatchEvaluator: the vectorized expression kernels (ISSUE 7).
//
// One AST walk per block. Every node produces either a broadcast
// constant (literals and constant subtrees fold for free) or a vector of
// block.rows values in a reusable scratch slot; each operator then runs
// as one tight loop over contiguous int64 — no per-row dispatch, no
// FieldVals gather, nothing the compiler cannot auto-vectorize (the
// wrapping arithmetic and comparisons all lower to plain SIMD; only
// Div/Mod keep their zero-divisor branches). Semantics are exactly
// Expr::eval's: both route through detail::wrap_*/safe_* (expr.hpp), and
// eager &&/|| matches short-circuit because evaluation is total and
// side-effect free. tests/query/batch_eval_test.cpp fuzzes the
// equivalence over random trees x random data, including INT64_MIN/MAX
// wrap, div0, and kNoItem edges.
#include <algorithm>

#include "fluxtrace/query/expr.hpp"

namespace fluxtrace::query {

namespace {

// Dispatches to op-specific loops with the operand shape (vector/vector,
// vector/const, const/vector) resolved outside the loop, so each
// instantiation is a branch-free kernel over contiguous memory.
template <typename F>
void apply_binary(std::size_t n, const std::int64_t* a, std::int64_t ac,
                  const std::int64_t* b, std::int64_t bc, std::int64_t* out,
                  F f) {
  if (a != nullptr && b != nullptr) {
    for (std::size_t i = 0; i < n; ++i) out[i] = f(a[i], b[i]);
  } else if (a != nullptr) {
    for (std::size_t i = 0; i < n; ++i) out[i] = f(a[i], bc);
  } else {
    for (std::size_t i = 0; i < n; ++i) out[i] = f(ac, b[i]);
  }
}

std::int64_t scalar_binary(Expr::Op op, std::int64_t a, std::int64_t b) {
  using Op = Expr::Op;
  switch (op) {
    case Op::Add: return detail::wrap_add(a, b);
    case Op::Sub: return detail::wrap_sub(a, b);
    case Op::Mul: return detail::wrap_mul(a, b);
    case Op::Div: return detail::safe_div(a, b);
    case Op::Mod: return detail::safe_mod(a, b);
    case Op::Eq: return a == b ? 1 : 0;
    case Op::Ne: return a != b ? 1 : 0;
    case Op::Lt: return a < b ? 1 : 0;
    case Op::Le: return a <= b ? 1 : 0;
    case Op::Gt: return a > b ? 1 : 0;
    case Op::Ge: return a >= b ? 1 : 0;
    case Op::And: return (a != 0 && b != 0) ? 1 : 0;
    case Op::Or: return (a != 0 || b != 0) ? 1 : 0;
    case Op::Not:
    case Op::Neg: break;
  }
  return 0;
}

// Upper bound on scratch slots an evaluation can hold live at once: one
// per AST node that computes a vector.
std::size_t count_nodes(const Expr& e) {
  std::size_t n = 1;
  if (e.lhs) n += count_nodes(*e.lhs);
  if (e.rhs) n += count_nodes(*e.rhs);
  return n;
}

} // namespace

BatchEvaluator::BatchEvaluator(const Expr& e, bool portable)
    : expr_(&e), portable_(portable) {
  if (!portable_) scratch_.reserve(count_nodes(e));
}

std::int64_t* BatchEvaluator::slot() {
  if (next_slot_ == scratch_.size()) scratch_.emplace_back();
  std::vector<std::int64_t>& v = scratch_[next_slot_++];
  if (v.size() < n_) v.resize(n_);
  return v.data();
}

BatchEvaluator::Operand BatchEvaluator::eval_node(const Expr& e,
                                                  const ColumnBlock& block) {
  using Kind = Expr::Kind;
  using Op = Expr::Op;
  switch (e.kind) {
    case Kind::Lit:
      return {nullptr, e.lit};
    case Kind::FieldRef:
      return {block.col[static_cast<std::size_t>(e.field)].data(), 0};
    case Kind::FuncMatch: {
      const std::int64_t* f =
          block.col[static_cast<std::size_t>(Field::Func)].data();
      std::int64_t* out = slot();
      const SymbolId* lo = e.func_ids.data();
      const SymbolId* hi = lo + e.func_ids.size();
      const std::int64_t miss = e.negate ? 1 : 0;
      for (std::size_t i = 0; i < n_; ++i) {
        const bool in = f[i] >= 0 && std::binary_search(
                                         lo, hi,
                                         static_cast<SymbolId>(f[i]));
        out[i] = in ? 1 - miss : miss;
      }
      return {out, 0};
    }
    case Kind::Unary: {
      const Operand a = eval_node(*e.lhs, block);
      if (a.data == nullptr) {
        return {nullptr, e.op == Op::Not ? (a.c == 0 ? 1 : 0)
                                         : detail::wrap_neg(a.c)};
      }
      std::int64_t* out = slot();
      const std::int64_t* in = a.data;
      if (e.op == Op::Not) {
        for (std::size_t i = 0; i < n_; ++i) out[i] = in[i] == 0 ? 1 : 0;
      } else {
        for (std::size_t i = 0; i < n_; ++i) out[i] = detail::wrap_neg(in[i]);
      }
      return {out, 0};
    }
    case Kind::Binary: {
      const Operand a = eval_node(*e.lhs, block);
      const Operand b = eval_node(*e.rhs, block);
      if (a.data == nullptr && b.data == nullptr) {
        return {nullptr, scalar_binary(e.op, a.c, b.c)};
      }
      std::int64_t* out = slot();
      switch (e.op) {
        // Each op gets its own lambda (not a shared function pointer) so
        // every kernel instantiates separately and inlines fully.
        case Op::Add:
          apply_binary(n_, a.data, a.c, b.data, b.c, out,
                       [](std::int64_t x, std::int64_t y) {
                         return detail::wrap_add(x, y);
                       });
          break;
        case Op::Sub:
          apply_binary(n_, a.data, a.c, b.data, b.c, out,
                       [](std::int64_t x, std::int64_t y) {
                         return detail::wrap_sub(x, y);
                       });
          break;
        case Op::Mul:
          apply_binary(n_, a.data, a.c, b.data, b.c, out,
                       [](std::int64_t x, std::int64_t y) {
                         return detail::wrap_mul(x, y);
                       });
          break;
        case Op::Div:
          apply_binary(n_, a.data, a.c, b.data, b.c, out,
                       [](std::int64_t x, std::int64_t y) {
                         return detail::safe_div(x, y);
                       });
          break;
        case Op::Mod:
          apply_binary(n_, a.data, a.c, b.data, b.c, out,
                       [](std::int64_t x, std::int64_t y) {
                         return detail::safe_mod(x, y);
                       });
          break;
        case Op::Eq:
          apply_binary(n_, a.data, a.c, b.data, b.c, out,
                       [](std::int64_t x, std::int64_t y) -> std::int64_t {
                         return x == y ? 1 : 0;
                       });
          break;
        case Op::Ne:
          apply_binary(n_, a.data, a.c, b.data, b.c, out,
                       [](std::int64_t x, std::int64_t y) -> std::int64_t {
                         return x != y ? 1 : 0;
                       });
          break;
        case Op::Lt:
          apply_binary(n_, a.data, a.c, b.data, b.c, out,
                       [](std::int64_t x, std::int64_t y) -> std::int64_t {
                         return x < y ? 1 : 0;
                       });
          break;
        case Op::Le:
          apply_binary(n_, a.data, a.c, b.data, b.c, out,
                       [](std::int64_t x, std::int64_t y) -> std::int64_t {
                         return x <= y ? 1 : 0;
                       });
          break;
        case Op::Gt:
          apply_binary(n_, a.data, a.c, b.data, b.c, out,
                       [](std::int64_t x, std::int64_t y) -> std::int64_t {
                         return x > y ? 1 : 0;
                       });
          break;
        case Op::Ge:
          apply_binary(n_, a.data, a.c, b.data, b.c, out,
                       [](std::int64_t x, std::int64_t y) -> std::int64_t {
                         return x >= y ? 1 : 0;
                       });
          break;
        case Op::And:
          // Eager & of the truth values — identical to short-circuit
          // because evaluating the rhs can neither fault nor observe
          // anything (total, pure semantics).
          apply_binary(n_, a.data, a.c, b.data, b.c, out,
                       [](std::int64_t x, std::int64_t y) -> std::int64_t {
                         return static_cast<std::int64_t>((x != 0) & (y != 0));
                       });
          break;
        case Op::Or:
          apply_binary(n_, a.data, a.c, b.data, b.c, out,
                       [](std::int64_t x, std::int64_t y) -> std::int64_t {
                         return static_cast<std::int64_t>((x != 0) | (y != 0));
                       });
          break;
        case Op::Not:
        case Op::Neg:
          break;
      }
      return {out, 0};
    }
  }
  return {nullptr, 0};
}

void BatchEvaluator::eval(const ColumnBlock& block, std::int64_t* out) {
  n_ = block.rows;
  next_slot_ = 0;
  if (portable_) {
    FieldVals row;
    for (std::size_t i = 0; i < n_; ++i) {
      for (std::size_t f = 0; f < kNumFields; ++f) row.v[f] = block.col[f][i];
      out[i] = expr_->eval(row);
    }
    return;
  }
  const Operand r = eval_node(*expr_, block);
  if (r.data == nullptr) {
    std::fill(out, out + n_, r.c);
  } else {
    std::copy(r.data, r.data + n_, out);
  }
}

std::size_t BatchEvaluator::select(const ColumnBlock& block,
                                   std::uint32_t* out_idx) {
  n_ = block.rows;
  next_slot_ = 0;
  std::size_t m = 0;
  if (portable_) {
    FieldVals row;
    for (std::size_t i = 0; i < n_; ++i) {
      for (std::size_t f = 0; f < kNumFields; ++f) row.v[f] = block.col[f][i];
      if (expr_->test(row)) out_idx[m++] = static_cast<std::uint32_t>(i);
    }
    return m;
  }
  const Operand r = eval_node(*expr_, block);
  if (r.data == nullptr) {
    if (r.c == 0) return 0;
    for (std::size_t i = 0; i < n_; ++i) {
      out_idx[i] = static_cast<std::uint32_t>(i);
    }
    return n_;
  }
  for (std::size_t i = 0; i < n_; ++i) {
    if (r.data[i] != 0) out_idx[m++] = static_cast<std::uint32_t>(i);
  }
  return m;
}

} // namespace fluxtrace::query
