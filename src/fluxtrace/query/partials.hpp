// Commutative aggregate partials — the merge algebra behind every
// count/sum/min/max/p* column (the enabling refactor the ROADMAP calls
// out for live streaming queries).
//
// An AggPartial is a bounded summary of the values one aggregate column
// has seen so far. Its contract is what makes both executors correct:
//
//   observe(a, x₁); observe(a, x₂); …          — fold values in, any order
//   merge(a, other)                            — combine two partials
//   finish(a, count)                           — emit the final cell
//
// observe/merge are commutative and associative (sums wrap through
// uint64 like all query arithmetic; min/max are lattice joins;
// percentiles collect exact values and rank them only at finish), so the
// batch engine can merge per-block partials in block order and get
// bit-identical results regardless of thread count, and the streaming
// executor (stream.hpp) can fold per-window partials into running ones
// and snapshot at any poll with exactly the semantics a cold batch run
// over the same rows would have produced.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

namespace fluxtrace::query {

struct Aggregate; // engine.hpp; only Kind/field are consulted here

/// Nearest-rank percentile over a sorted, non-empty vector.
[[nodiscard]] std::int64_t percentile_sorted(
    const std::vector<std::int64_t>& sorted, unsigned p);

/// Per-group accumulator for one aggregate column. Only the slots the
/// aggregate kind uses are touched; sums wrap through uint64 like all
/// query arithmetic, so observe/merge order cannot matter.
struct AggPartial {
  std::uint64_t sum = 0;
  std::int64_t mn = std::numeric_limits<std::int64_t>::max();
  std::int64_t mx = std::numeric_limits<std::int64_t>::min();
  std::vector<std::int64_t> coll; ///< percentile collections

  void observe(const Aggregate& a, std::int64_t v);
  void merge(const Aggregate& a, AggPartial&& other);
  /// Destructive (sorts percentile collections in place): call once, or
  /// on a copy when snapshotting a live stream.
  [[nodiscard]] std::int64_t finish(const Aggregate& a, std::uint64_t count);
};

/// One group's row count plus its aggregate columns, in query order.
struct GroupPartial {
  std::uint64_t count = 0;
  std::vector<AggPartial> aggs;

  void merge(const std::vector<Aggregate>& spec, GroupPartial&& other);
};

} // namespace fluxtrace::query
