// The trace query engine (ISSUE 5): parse a pipeline of stages over the
// columnar store and execute it with a block-parallel scan whose result
// is bit-identical to the sequential one.
//
// Pipeline grammar (stages separated by `|`, each at most once, in this
// order; `select`, `group` and `outliers` are mutually exclusive):
//
//   query  := [stage ('|' stage)*]
//   stage  := 'filter' expr
//           | 'select' field (',' field)*
//           | 'group' field (',' field)* ':' agg (',' agg)*
//           | 'outliers' [('k' '=' number) | ('warmup' '=' integer)]*
//           | 'top' integer 'by' column
//           | 'limit' integer
//   agg    := 'count' | fn '(' field ')'        fn := sum min max p50 p95 p99
//
// Execution semantics:
//   * filter — rows where the predicate (expr.hpp) is nonzero.
//   * select — project columns; without select/group, all six columns.
//   * group  — one output row per distinct key tuple, sorted by key;
//     aggregate columns are named count / sum_dur / p95_dur / ….
//     Percentiles are nearest-rank over the exact matched values; sums
//     wrap like every other query arithmetic.
//   * outliers — replay the matched rows' {item, func} elapsed estimates
//     (the dur column) through core::FluctuationDetector in (item, func)
//     order and emit the anomalies (item, func, elapsed, mean, sigma,
//     sigmas). Statistics are cross-item per function, which is why this
//     stage disables chunk pruning entirely.
//   * top N by col — stable sort descending on an output column, keep N.
//   * limit N — keep the first N rows.
//
// Determinism: scans run over fixed 64Ki-row blocks regardless of thread
// count; per-block partials merge in block order, and every aggregate is
// order-independent (wrapping sums, min/max, percentiles over sorted
// collected values) — so `threads=1` and `threads=N` produce the same
// bytes, which the test suite asserts on fuzzed traces. Each scan worker
// runs a BatchEvaluator (expr.hpp) over whole blocks — the vectorized
// kernels are proven bit-identical to the scalar interpreter, so the
// batch rewrite changed no result byte either.
//
// Zone maps: the columnar store carries per-block min/max bounds for
// every column, built at the engine's block size so zones and scan
// blocks coincide. Before a block is evaluated the engine checks the
// filter's prune hints against its zone map and skips blocks that
// provably match nothing. Unlike FLXI chunk pruning this is sound for
// *every* query shape — outliers and dur-queries included — because the
// rows are already decoded and attributed; a skipped block only skips
// rows the filter rejects.
//
// FLXI pruning: when a valid sidecar (flxi.hpp) is available and the
// query's prune hints are selective, sample chunks whose zone maps
// cannot satisfy the filter are never decoded. Soundness rules:
//   * the `outliers` stage disables all pruning;
//   * a query that outputs or references `dur` disables ts-pruning
//     (a time-sliced chunk set would truncate the first-to-last spans
//     dur derives from), while item/func pruning stays on — those hints
//     only ever drop *whole* {item, func} buckets of rows the filter
//     already rejects;
//   * marker chunks are always decoded (attribution needs all windows).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "fluxtrace/base/symbols.hpp"
#include "fluxtrace/base/wait.hpp"
#include "fluxtrace/core/detector.hpp"
#include "fluxtrace/io/trace_reader.hpp"
#include "fluxtrace/query/columnar.hpp"
#include "fluxtrace/query/expr.hpp"
#include "fluxtrace/query/flxi.hpp"
#include "fluxtrace/query/partials.hpp"

namespace fluxtrace::rt {
class ThreadPool;
}

namespace fluxtrace::query {

/// One aggregate column of a `group` stage.
struct Aggregate {
  enum class Kind : std::uint8_t { Count, Sum, Min, Max, P50, P95, P99 };
  Kind kind = Kind::Count;
  Field field = Field::Dur; ///< ignored for Count

  /// Output column name: "count", "sum_dur", "p95_dur", …
  [[nodiscard]] std::string name() const;
};

struct TopK {
  std::uint64_t n = 0;
  std::string by; ///< output column name, resolved at execution
};

struct OutliersSpec {
  core::DetectorConfig config;
};

/// A parsed pipeline. Build with parse_query(); immutable afterwards.
struct Query {
  std::string text; ///< original query string
  std::unique_ptr<Expr> filter;  ///< null when no filter stage
  std::vector<Field> select;     ///< empty = all columns (row mode)
  std::vector<Field> group_keys; ///< group mode when aggs is non-empty
  std::vector<Aggregate> aggs;
  std::optional<OutliersSpec> outliers;
  /// Wait-edge stages (ISSUE 8): scan the trace's wait-edge stream
  /// instead of the sample columns. A filter (over item/core/ts/dur,
  /// mapped onto waiter item/waiter core/enter/blocked) and top/limit
  /// still compose; select/group/outliers do not (same rank).
  bool critical_path = false;
  bool blocked_by = false;
  std::optional<TopK> topk;
  std::optional<std::uint64_t> limit;

  /// Bitmask of every column the query reads or outputs.
  [[nodiscard]] unsigned fields_used() const;
  /// True when any part of the result depends on the dur column.
  [[nodiscard]] bool references_dur() const;
};

/// Parse one pipeline. `symtab` resolves `func == "name"`; pass nullptr
/// to reject string comparisons. Throws ParseError.
[[nodiscard]] Query parse_query(std::string_view text,
                                const SymbolTable* symtab);

/// One result cell. Int carries ids/cycles/counts; Real carries detector
/// statistics; Text carries resolved function names.
struct Cell {
  enum class Kind : std::uint8_t { Int, Real, Text };
  Kind kind = Kind::Int;
  std::int64_t i = 0;
  double d = 0.0;
  std::string s;

  [[nodiscard]] static Cell of_int(std::int64_t v);
  [[nodiscard]] static Cell of_real(double v);
  [[nodiscard]] static Cell of_text(std::string v);

  /// Canonical printable form (Real uses %.6g).
  [[nodiscard]] std::string str() const;
  /// Ordering for `top by` (descending sort): Int/Real by value, Text
  /// lexicographic; mixed kinds order Int < Real < Text.
  [[nodiscard]] bool less(const Cell& other) const;

  friend bool operator==(const Cell&, const Cell&) = default;
};

/// Where the rows came from, for `--stats` and the pruning assertions in
/// bench/ext_query_scan.
struct ScanStats {
  std::size_t chunks_total = 0;  ///< sample chunks in the trace (0: not v2)
  std::size_t chunks_read = 0;   ///< sample chunks actually decoded
  std::size_t chunks_pruned = 0; ///< skipped via the FLXI zone maps
  /// of chunks_pruned: compressed (v3) chunks skipped without ever
  /// being inflated — via the in-payload zone hint or the sidecar.
  std::size_t chunks_pruned_compressed = 0;
  std::size_t rows_scanned = 0;  ///< rows the filter was evaluated over
  std::size_t rows_matched = 0;
  std::size_t blocks_total = 0;   ///< scan blocks in the loaded rows
  std::size_t blocks_skipped = 0; ///< skipped via in-memory zone maps
  bool index_used = false;    ///< a valid FLXI sidecar pruned this scan
  bool index_written = false; ///< this run persisted a fresh sidecar
  bool salvaged = false;      ///< strict read failed; rows are best-effort
  unsigned threads = 1;
  std::size_t wait_edges = 0; ///< wait edges scanned (wait stages only)
  bool wait_stage = false;    ///< this run was critical_path / blocked_by
};

struct QueryResult {
  std::vector<std::string> columns;
  std::vector<std::vector<Cell>> rows;
  ScanStats stats;
};

/// A mergeable intermediate result: one trace's contribution to a query,
/// stopped just before the order-sensitive tail (group rendering,
/// outliers detection, top/limit). Exactly one of the three payloads is
/// populated, by query mode:
///
///   * row mode      — `rows`, already rendered (rendering is per-row
///     pure, so per-trace rendering then concatenation equals
///     concatenation then rendering);
///   * group mode    — `groups`, keyed partials in the commutative
///     AggPartial algebra (partials.hpp), mergeable in any grouping but
///     finished in member order for byte determinism;
///   * outliers mode — `buckets`, the {item, func} → dur map the
///     detector replays. Sound to merge only when the member traces'
///     {item, func} buckets are disjoint (distinct sessions) — the
///     federated executor uses concatenation for this mode instead.
///
/// finish_partials() over a single partial is bit-identical to
/// QueryEngine::run(); over many, it is the federated merge.
struct ExecPartial {
  std::vector<std::vector<Cell>> rows;
  std::map<std::vector<std::int64_t>, GroupPartial> groups;
  std::map<std::pair<std::int64_t, std::int64_t>, std::int64_t> buckets;
  ScanStats stats;
};

struct EngineOptions {
  unsigned threads = 0;           ///< scan workers; 0 = hardware, 1 = sequential
  std::size_t block_rows = 65536; ///< fixed scan block (determinism unit)
  bool use_register_ids = false;  ///< columnar BuildOptions passthrough
  bool use_index = true;          ///< consult a FLXI sidecar for pruning
  bool write_index = true;        ///< persist FLXI after a clean full scan
  /// Route filter evaluation through the per-row scalar interpreter
  /// instead of the vector kernels (bit-identical by construction; the
  /// CI portable leg builds with this as the default).
  bool portable_eval = kPortableEvalDefault;
};

/// A trace opened for querying. Holds the raw file image (via
/// io::TraceReader), the symbol table, and a cache of the fully decoded
/// columnar store plus its FLXI index, so a REPL session pays the full
/// decode at most once and prunes afterwards.
class QueryEngine {
 public:
  /// Open a trace file (any format TraceReader detects). Throws
  /// TraceIoError only when the file cannot be read at all; damaged
  /// content is salvaged at query time, never fatal here.
  [[nodiscard]] static QueryEngine open(const std::string& path,
                                        SymbolTable symtab,
                                        EngineOptions opts = {});

  /// Query an in-memory trace (tests, live captures). The data is
  /// re-encoded into the v2 chunked image internally so pruning and the
  /// in-memory index behave exactly as for an on-disk trace.
  [[nodiscard]] static QueryEngine from_data(const io::TraceData& data,
                                             SymbolTable symtab,
                                             EngineOptions opts = {});

  /// Parse + execute. Throws ParseError on a bad query; execution itself
  /// never throws on trace damage (it salvages).
  QueryResult run(std::string_view query_text);
  QueryResult run(const Query& q);

  /// Scan this trace and stop before the order-sensitive tail — the
  /// federated seam (see ExecPartial). Precondition: `q` is a sample
  /// scan (not critical_path/blocked_by); run() routes wait stages to
  /// their own executor.
  ExecPartial run_partial(const Query& q);

  /// Merge per-trace partials (in member order) and finish the query:
  /// group finish + rendering, outliers detection, top/limit. Static —
  /// it touches no trace, only the shared symbol table that rendered or
  /// will render func ids. `run(q)` is exactly
  /// `finish_partials(q, symtab(), {run_partial(q)})`.
  [[nodiscard]] static QueryResult finish_partials(
      const Query& q, const SymbolTable& symtab,
      std::vector<ExecPartial> parts);

  [[nodiscard]] const SymbolTable& symtab() const { return symtab_; }
  [[nodiscard]] const io::TraceReader& reader() const { return reader_; }
  [[nodiscard]] const EngineOptions& options() const { return opts_; }

  QueryEngine(QueryEngine&&) noexcept;
  QueryEngine& operator=(QueryEngine&&) noexcept;
  ~QueryEngine();

 private:
  QueryEngine(io::TraceReader reader, SymbolTable symtab, EngineOptions opts);

  struct Loaded {
    const ColumnarTrace* table = nullptr; ///< full_ or &pruned scratch
    ScanStats stats;
  };

  /// Decode (full or FLXI-pruned) the rows this query needs. `scratch`
  /// owns the pruned build when one happens.
  Loaded load_for(const Query& q, std::optional<ColumnarTrace>& scratch);
  void ensure_full_loaded();
  void try_build_index();
  rt::ThreadPool& pool(unsigned n_threads);
  /// Wait-edge stages scan wait_edges_, not the sample columns.
  QueryResult run_wait(const Query& q);
  void ensure_wait_edges_loaded();

  io::TraceReader reader_;
  SymbolTable symtab_;
  EngineOptions opts_;

  std::optional<ColumnarTrace> full_; ///< cached full decode
  bool full_salvaged_ = false;
  std::vector<WaitEdge> wait_edges_;  ///< cached wait-edge stream (v2)
  bool wait_loaded_ = false;
  bool wait_salvaged_ = false;
  std::optional<FlxiIndex> index_;    ///< cached/validated sidecar
  bool index_load_tried_ = false;     ///< sidecar file probed once per open
  bool index_written_ = false;
  std::size_t chunks_total_ = 0;      ///< sample chunks (0: not clean v2)
  /// Scan workers, created once and reused across run() calls — spawning
  /// a pool per query was one of the thread-scaling plateau's causes.
  std::unique_ptr<rt::ThreadPool> pool_;
  unsigned pool_threads_ = 0;
  // CRC of the trace image, computed once at construction: the bytes
  // are immutable for the engine's lifetime, and both the sidecar
  // validate and the sidecar write path pin them — re-hashing a
  // multi-hundred-MB image on each path doubled cold-open time.
  std::uint32_t trace_crc_ = 0;
};

} // namespace fluxtrace::query
