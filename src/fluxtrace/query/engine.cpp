#include "fluxtrace/query/engine.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <map>
#include <sstream>
#include <thread>
#include <utility>

#include "fluxtrace/io/chunked.hpp"
#include "fluxtrace/io/v3.hpp"
#include "fluxtrace/obs/metrics.hpp"
#include "fluxtrace/obs/span.hpp"
#include "fluxtrace/query/lex.hpp"
#include "fluxtrace/query/partials.hpp"
#include "fluxtrace/query/waitgraph.hpp"
#include "fluxtrace/rt/thread_pool.hpp"

namespace fluxtrace::query {

namespace {

using detail::Lexer;
using detail::Tok;
using detail::Token;

// Self-telemetry: what the engine scans and what the index saves it.
struct QueryMetrics {
  obs::Counter& runs = obs::metrics().counter("query.runs");
  obs::Counter& rows_scanned = obs::metrics().counter("query.rows_scanned");
  obs::Counter& rows_matched = obs::metrics().counter("query.rows_matched");
  obs::Counter& chunks_pruned = obs::metrics().counter("query.chunks_pruned");
  obs::Counter& chunks_pruned_compressed =
      obs::metrics().counter("query.chunks_pruned_compressed");
  obs::Counter& blocks_skipped =
      obs::metrics().counter("query.blocks_skipped");
  obs::Counter& index_hits = obs::metrics().counter("query.index_hits");
  obs::Counter& index_writes = obs::metrics().counter("query.index_writes");

  static QueryMetrics& get() {
    static QueryMetrics m;
    return m;
  }
};

} // namespace

// --- pipeline parsing ---------------------------------------------------

std::string Aggregate::name() const {
  switch (kind) {
    case Kind::Count: return "count";
    case Kind::Sum: return "sum_" + std::string(to_string(field));
    case Kind::Min: return "min_" + std::string(to_string(field));
    case Kind::Max: return "max_" + std::string(to_string(field));
    case Kind::P50: return "p50_" + std::string(to_string(field));
    case Kind::P95: return "p95_" + std::string(to_string(field));
    case Kind::P99: return "p99_" + std::string(to_string(field));
  }
  return "?";
}

unsigned Query::fields_used() const {
  unsigned bits = filter ? filter->fields_used() : 0;
  for (const Field f : select) bits |= field_bit(f);
  for (const Field f : group_keys) bits |= field_bit(f);
  for (const Aggregate& a : aggs) {
    if (a.kind != Aggregate::Kind::Count) bits |= field_bit(a.field);
  }
  if (outliers.has_value()) {
    bits |= field_bit(Field::Item) | field_bit(Field::Func) |
            field_bit(Field::Dur);
  }
  // Row mode with no projection outputs every column.
  if (select.empty() && aggs.empty() && !outliers.has_value()) {
    bits = kAllFields;
  }
  return bits;
}

bool Query::references_dur() const {
  return (fields_used() & field_bit(Field::Dur)) != 0;
}

namespace {

Field expect_field(Lexer& lex) {
  const Token t = lex.expect(Tok::Ident, "a column name");
  const auto f = field_from_name(t.text);
  if (!f.has_value()) {
    throw ParseError("unknown column '" + t.text +
                         "' (have: item func core ts dur ip)",
                     t.pos);
  }
  return *f;
}

std::vector<Field> parse_field_list(Lexer& lex) {
  std::vector<Field> out;
  out.push_back(expect_field(lex));
  while (lex.accept(Tok::Comma)) out.push_back(expect_field(lex));
  return out;
}

Aggregate parse_agg(Lexer& lex) {
  const Token t = lex.expect(Tok::Ident, "an aggregate (count/sum/min/max/"
                                         "p50/p95/p99)");
  Aggregate a;
  if (t.text == "count") {
    a.kind = Aggregate::Kind::Count;
    return a;
  }
  if (t.text == "sum") a.kind = Aggregate::Kind::Sum;
  else if (t.text == "min") a.kind = Aggregate::Kind::Min;
  else if (t.text == "max") a.kind = Aggregate::Kind::Max;
  else if (t.text == "p50") a.kind = Aggregate::Kind::P50;
  else if (t.text == "p95") a.kind = Aggregate::Kind::P95;
  else if (t.text == "p99") a.kind = Aggregate::Kind::P99;
  else {
    throw ParseError("unknown aggregate '" + t.text +
                         "' (have: count sum min max p50 p95 p99)",
                     t.pos);
  }
  lex.expect(Tok::LParen, "'(' after the aggregate name");
  a.field = expect_field(lex);
  lex.expect(Tok::RParen, "')'");
  return a;
}

std::uint64_t expect_count(Lexer& lex, const char* what) {
  const Token t = lex.expect(Tok::Number, what);
  if (t.is_float || t.num <= 0) {
    throw ParseError(std::string("expected a positive integer for ") + what,
                     t.pos);
  }
  return static_cast<std::uint64_t>(t.num);
}

} // namespace

Query parse_query(std::string_view text, const SymbolTable* symtab) {
  Query q;
  q.text = std::string(text);
  Lexer lex(text);
  if (lex.at(Tok::End)) return q; // empty query: every row, every column

  // Canonical stage order, each at most once: filter < one of
  // select/group/outliers < top < limit.
  int last_rank = -1;
  for (;;) {
    const Token t = lex.expect(
        Tok::Ident, "a stage (filter/select/group/outliers/critical_path/"
                    "blocked_by/top/limit)");
    int rank = -1;
    if (t.text == "filter") {
      rank = 0;
      q.filter = detail::parse_expr_tokens(lex, symtab);
    } else if (t.text == "select") {
      rank = 1;
      q.select = parse_field_list(lex);
    } else if (t.text == "group") {
      rank = 1;
      q.group_keys = parse_field_list(lex);
      lex.expect(Tok::Colon, "':' between group keys and aggregates");
      q.aggs.push_back(parse_agg(lex));
      while (lex.accept(Tok::Comma)) q.aggs.push_back(parse_agg(lex));
    } else if (t.text == "critical_path") {
      rank = 1;
      q.critical_path = true;
    } else if (t.text == "blocked_by") {
      rank = 1;
      q.blocked_by = true;
    } else if (t.text == "outliers") {
      rank = 1;
      OutliersSpec spec;
      while (lex.at(Tok::Ident)) {
        const Token p = lex.next();
        lex.expect(Tok::Assign, "'=' after the outliers parameter");
        const Token v = lex.expect(Tok::Number, "a parameter value");
        if (p.text == "k") {
          if (v.fnum <= 0.0) {
            throw ParseError("outliers k must be positive", v.pos);
          }
          spec.config.k_sigma = v.fnum;
        } else if (p.text == "warmup") {
          if (v.is_float || v.num < 0) {
            throw ParseError("outliers warmup must be a non-negative integer",
                             v.pos);
          }
          spec.config.warmup = static_cast<std::uint64_t>(v.num);
        } else {
          throw ParseError("unknown outliers parameter '" + p.text +
                               "' (have: k warmup)",
                           p.pos);
        }
      }
      q.outliers = spec;
    } else if (t.text == "top") {
      rank = 2;
      TopK tk;
      tk.n = expect_count(lex, "the top-N count");
      const Token by = lex.expect(Tok::Ident, "'by'");
      if (by.text != "by") {
        throw ParseError("expected 'by' after the top-N count", by.pos);
      }
      tk.by = lex.expect(Tok::Ident, "an output column name").text;
      q.topk = tk;
    } else if (t.text == "limit") {
      rank = 3;
      q.limit = expect_count(lex, "the limit count");
    } else {
      throw ParseError("unknown stage '" + t.text +
                           "' (have: filter select group outliers "
                           "critical_path blocked_by top limit)",
                       t.pos);
    }
    if (rank <= last_rank) {
      throw ParseError(
          "stage '" + t.text +
              "' out of order (filter | select/group/outliers/critical_path/"
              "blocked_by | top | limit, each at most once)",
          t.pos);
    }
    last_rank = rank;
    if (lex.accept(Tok::Pipe)) continue;
    if (lex.at(Tok::End)) break;
    throw ParseError("expected '|' or end of query at '" +
                         Lexer::describe(lex.peek()) + "'",
                     lex.peek().pos);
  }
  if ((q.critical_path || q.blocked_by) && q.filter) {
    // Wait-edge scans have no func/ip column; the remaining names map
    // onto the edge: item = waiter item, core = waiter core, ts = enter,
    // dur = blocked duration.
    q.filter->bind_check(field_bit(Field::Item) | field_bit(Field::Core) |
                             field_bit(Field::Ts) | field_bit(Field::Dur),
                         "a wait-edge stage");
  }
  return q;
}

// --- cells --------------------------------------------------------------

Cell Cell::of_int(std::int64_t v) {
  Cell c;
  c.kind = Kind::Int;
  c.i = v;
  return c;
}

Cell Cell::of_real(double v) {
  Cell c;
  c.kind = Kind::Real;
  c.d = v;
  return c;
}

Cell Cell::of_text(std::string v) {
  Cell c;
  c.kind = Kind::Text;
  c.s = std::move(v);
  return c;
}

std::string Cell::str() const {
  switch (kind) {
    case Kind::Int: return std::to_string(i);
    case Kind::Real: {
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.6g", d);
      return buf;
    }
    case Kind::Text: return s;
  }
  return {};
}

bool Cell::less(const Cell& other) const {
  if (kind != other.kind) return kind < other.kind;
  switch (kind) {
    case Kind::Int: return i < other.i;
    case Kind::Real: return d < other.d;
    case Kind::Text: return s < other.s;
  }
  return false;
}

// --- engine -------------------------------------------------------------

QueryEngine::QueryEngine(io::TraceReader reader, SymbolTable symtab,
                         EngineOptions opts)
    : reader_(std::move(reader)), symtab_(std::move(symtab)), opts_(opts) {
  if (opts_.block_rows == 0) opts_.block_rows = 65536;
  trace_crc_ = io::crc32(reader_.bytes().data(), reader_.bytes().size());
}

// Out of line so unique_ptr<rt::ThreadPool> works with the forward
// declaration in the header.
QueryEngine::QueryEngine(QueryEngine&&) noexcept = default;
QueryEngine& QueryEngine::operator=(QueryEngine&&) noexcept = default;
QueryEngine::~QueryEngine() = default;

rt::ThreadPool& QueryEngine::pool(unsigned n_threads) {
  if (!pool_ || pool_threads_ != n_threads) {
    pool_.reset(); // join the old workers before spawning new ones
    pool_ = std::make_unique<rt::ThreadPool>(n_threads);
    pool_threads_ = n_threads;
  }
  return *pool_;
}

QueryEngine QueryEngine::open(const std::string& path, SymbolTable symtab,
                              EngineOptions opts) {
  return QueryEngine(io::open_trace(path), std::move(symtab), opts);
}

QueryEngine QueryEngine::from_data(const io::TraceData& data,
                                   SymbolTable symtab, EngineOptions opts) {
  std::ostringstream os;
  io::write_trace_v2(os, data);
  return QueryEngine(io::open_trace_bytes(std::move(os).str()),
                     std::move(symtab), opts);
}

void QueryEngine::ensure_full_loaded() {
  if (full_.has_value()) return;
  OBS_SPAN("query.load_full");
  // from_reader takes the column-direct decode path for clean v2 images
  // (no TraceData materialization) and salvages damaged files itself.
  full_ = ColumnarTrace::from_reader(
      reader_, symtab_, BuildOptions{opts_.use_register_ids, opts_.block_rows},
      opts_.threads);
  full_salvaged_ = full_->salvaged();
  try_build_index();
}

void QueryEngine::try_build_index() {
  // The index construction itself lives in flxi.cpp (build_flxi), shared
  // with the standalone refresh path (`flxt_recover --rebuild-index`,
  // the hub's ingest); this wrapper only adds the engine's caching and
  // the opportunistic sidecar write.
  if (index_.has_value() || full_salvaged_ || !full_.has_value()) return;
  auto idx =
      build_flxi(reader_, *full_, symtab_, opts_.use_register_ids, trace_crc_);
  if (!idx.has_value()) return;
  chunks_total_ = idx->chunks.size();
  index_ = std::move(*idx);

  if (opts_.write_index && !reader_.path().empty() && !index_written_) {
    if (save_flxi(flxi_path(reader_.path()), *index_)) {
      index_written_ = true;
      QueryMetrics::get().index_writes.inc();
    }
  }
}

QueryEngine::Loaded QueryEngine::load_for(const Query& q,
                                          std::optional<ColumnarTrace>& scratch) {
  OBS_SPAN("query.load");
  Loaded out;
  out.stats.threads = opts_.threads == 0
                          ? std::max(1u, std::thread::hardware_concurrency())
                          : opts_.threads;

  const PruneHints hints =
      q.filter ? extract_prune_hints(*q.filter) : PruneHints{};
  const bool may_prune = opts_.use_index && !q.outliers.has_value() &&
                         io::is_chunked_format(reader_.format()) &&
                         hints.selective() && !full_.has_value();

  if (may_prune && !index_.has_value() && !index_load_tried_ &&
      !reader_.path().empty()) {
    index_load_tried_ = true;
    if (auto idx = load_flxi(flxi_path(reader_.path()))) {
      // min/max item in the sidecar are *attributed* ids, which differ
      // entirely between marker-window and register-id attribution, so
      // a mode mismatch is as stale as a CRC mismatch: full scan, then
      // rewrite under the current mode.
      const bool fresh =
          idx->trace_size == reader_.bytes().size() &&
          idx->trace_crc == trace_crc_ &&
          idx->symtab_crc == query::symtab_crc(symtab_) &&
          (idx->flags & kFlxiFlagRegisterIds) ==
              (opts_.use_register_ids ? kFlxiFlagRegisterIds : 0u);
      if (fresh) {
        chunks_total_ = idx->chunks.size();
        index_ = std::move(*idx);
        index_written_ = true; // already on disk, do not rewrite
      }
    }
  }

  if (may_prune && index_.has_value()) {
    const bool no_ts_prune = q.references_dur();
    std::vector<io::V2ChunkRef> refs;
    bool layout_ok = true;
    try {
      refs = io::index_trace_v2(reader_.bytes());
    } catch (const io::TraceIoError&) {
      layout_ok = false;
    }
    // The validated index must describe exactly the sample chunks the
    // walk sees; anything else means it lied and a full scan is safer.
    std::vector<const io::V2ChunkRef*> sample_refs;
    if (layout_ok) {
      for (const io::V2ChunkRef& r : refs) {
        if (io::is_sample_chunk_type(r.type)) sample_refs.push_back(&r);
      }
      if (sample_refs.size() != index_->chunks.size()) layout_ok = false;
      for (std::size_t i = 0; layout_ok && i < sample_refs.size(); ++i) {
        if (sample_refs[i]->offset != index_->chunks[i].offset) {
          layout_ok = false;
        }
      }
    }
    if (layout_ok) {
      io::TraceData subset;
      bool decode_ok = true;
      std::size_t kept = 0;
      std::size_t pruned_compressed = 0;
      try {
        for (const io::V2ChunkRef& r : refs) {
          if (io::is_marker_chunk_type(r.type)) {
            io::decode_trace_v2_chunk(reader_.bytes(), r, subset);
          }
        }
        for (std::size_t i = 0; i < sample_refs.size(); ++i) {
          const FlxiChunk& c = index_->chunks[i];
          bool keep = c.n_records > 0;
          if (keep && !no_ts_prune && !hints.ts.full()) {
            keep = !hints.ts.empty() &&
                   hints.ts.intersects(c.min_ts, c.max_ts);
          }
          if (keep && !hints.item.full()) {
            keep = !hints.item.empty() &&
                   hints.item.intersects(c.min_item, c.max_item);
          }
          if (keep && hints.funcs.has_value()) {
            bool any = false;
            auto it = hints.funcs->begin();
            for (const auto& [fn, cnt] : c.func_counts) {
              while (it != hints.funcs->end() && *it < fn) ++it;
              if (it == hints.funcs->end()) break;
              if (*it == fn) {
                any = true;
                break;
              }
            }
            keep = any;
          }
          if (!keep) {
            if (io::is_compressed_chunk_type(sample_refs[i]->type)) {
              ++pruned_compressed;
            }
            continue;
          }
          ++kept;
          io::decode_trace_v2_chunk(reader_.bytes(), *sample_refs[i],
                                    subset);
        }
      } catch (const io::TraceIoError&) {
        decode_ok = false; // index was stale after all: full scan below
      }
      if (decode_ok) {
        scratch = ColumnarTrace::build(
            subset, symtab_,
            BuildOptions{opts_.use_register_ids, opts_.block_rows});
        out.table = &*scratch;
        out.stats.chunks_total = index_->chunks.size();
        out.stats.chunks_read = kept;
        out.stats.chunks_pruned = index_->chunks.size() - kept;
        out.stats.chunks_pruned_compressed = pruned_compressed;
        out.stats.index_used = true;
        QueryMetrics::get().index_hits.inc();
        QueryMetrics::get().chunks_pruned.inc(out.stats.chunks_pruned);
        QueryMetrics::get().chunks_pruned_compressed.inc(pruned_compressed);
        return out;
      }
    }
  }

  // Sidecar-free pruning: v3 compressed chunks carry an encode-time
  // min/max ts hint at a fixed payload offset (v3.hpp), so a ts-selective
  // query can skip chunks without inflating them even before any FLXI
  // sidecar exists. The hint covers only the time column, so it is
  // useless for item/func predicates, and like FLXI ts pruning it is
  // unsound once the query references dur (durations attribute across
  // chunk boundaries). A chunk whose payload fails the frame CRC reports
  // hint.ok == false and is decoded the hard way instead.
  if (may_prune && !index_.has_value() &&
      reader_.format() == io::TraceFormat::FlxtV3 && !q.references_dur() &&
      !hints.ts.full()) {
    bool walk_ok = true;
    std::vector<io::V2ChunkRef> refs;
    try {
      refs = io::index_trace_v2(reader_.bytes());
    } catch (const io::TraceIoError&) {
      walk_ok = false;
    }
    if (walk_ok) {
      io::TraceData subset;
      std::size_t total = 0;
      std::size_t kept = 0;
      std::size_t pruned_compressed = 0;
      try {
        for (const io::V2ChunkRef& r : refs) {
          if (io::is_marker_chunk_type(r.type)) {
            io::decode_trace_v2_chunk(reader_.bytes(), r, subset);
            continue;
          }
          if (!io::is_sample_chunk_type(r.type)) continue;
          ++total;
          if (io::is_compressed_chunk_type(r.type)) {
            const io::V3ZoneHint hint =
                io::read_v3_zone_hint(reader_.bytes(), r);
            if (hint.ok && (hints.ts.empty() ||
                            !hints.ts.intersects(hint.min_ts, hint.max_ts))) {
              ++pruned_compressed;
              continue;
            }
          }
          ++kept;
          io::decode_trace_v2_chunk(reader_.bytes(), r, subset);
        }
      } catch (const io::TraceIoError&) {
        walk_ok = false; // damage: the full scan below salvages
      }
      if (walk_ok) {
        scratch = ColumnarTrace::build(
            subset, symtab_,
            BuildOptions{opts_.use_register_ids, opts_.block_rows});
        out.table = &*scratch;
        out.stats.chunks_total = total;
        out.stats.chunks_read = kept;
        out.stats.chunks_pruned = total - kept;
        out.stats.chunks_pruned_compressed = pruned_compressed;
        QueryMetrics::get().chunks_pruned.inc(out.stats.chunks_pruned);
        QueryMetrics::get().chunks_pruned_compressed.inc(pruned_compressed);
        return out;
      }
    }
  }

  ensure_full_loaded();
  out.table = &*full_;
  out.stats.chunks_total = chunks_total_;
  out.stats.chunks_read = chunks_total_;
  out.stats.salvaged = full_salvaged_;
  out.stats.index_written = index_written_;
  return out;
}

// --- execution ----------------------------------------------------------

namespace {

// The aggregate merge algebra lives in partials.hpp now, shared verbatim
// with the streaming executor (stream.hpp) so `--follow` snapshots and
// cold batch runs can never disagree on what p95_dur means.
using GroupAcc = GroupPartial;

/// One scan block's private results; merged in block-index order so the
/// final result is independent of which thread ran which block.
struct BlockOut {
  std::size_t matched = 0;
  std::vector<std::uint32_t> rows; ///< row mode: matched in-block offsets
  std::map<std::vector<std::int64_t>, GroupAcc> groups;
  /// outliers mode: {item, func} -> dur (identical for every row of a
  /// bucket, so last-write-wins is deterministic)
  std::map<std::pair<std::int64_t, std::int64_t>, std::int64_t> buckets;
};

enum class Mode : std::uint8_t { Rows, Group, Outliers };

/// Can any row of a zone satisfy the filter's prune hints? False means
/// the whole block is provably filtered out. Sound in every mode —
/// unlike FLXI chunk pruning, the dur column is already attributed over
/// the full row set, so skipping here only skips rows the filter itself
/// would reject.
bool zone_may_match(const PruneHints& h, const ZoneMap& z) {
  if (!h.ts.full() &&
      (h.ts.empty() ||
       !h.ts.intersects(z.min_of(Field::Ts), z.max_of(Field::Ts)))) {
    return false;
  }
  if (!h.item.full() &&
      (h.item.empty() ||
       !h.item.intersects(z.min_of(Field::Item), z.max_of(Field::Item)))) {
    return false;
  }
  if (h.funcs.has_value()) {
    const std::int64_t lo = z.min_of(Field::Func);
    const std::int64_t hi = z.max_of(Field::Func);
    bool any = false;
    for (const SymbolId id : *h.funcs) {
      const auto v = static_cast<std::int64_t>(id);
      if (v >= lo && v <= hi) {
        any = true;
        break;
      }
    }
    if (!any) return false;
  }
  return true;
}

/// Batch scan of rows [begin, end): one BatchEvaluator::select() for the
/// filter, then mode-specific accumulation over the matched offsets via
/// raw column pointers. Results build in `local` state and move into
/// `out` once at the end, so concurrent blocks never write the shared
/// parts array per-row (the old per-row writes false-shared cache lines
/// between adjacent blocks).
void scan_block(const Query& q, const ColumnarTrace& t, Mode mode,
                bool portable, std::size_t begin, std::size_t end,
                BlockOut& out) {
  BlockOut local;
  const ColumnBlock block = t.block(begin, end);
  const std::size_t rows = block.rows;

  // Matched in-block offsets. With no filter every row matches and the
  // index buffer is skipped entirely.
  std::vector<std::uint32_t> sel;
  std::size_t m = rows;
  if (q.filter) {
    sel.resize(rows);
    BatchEvaluator ev(*q.filter, portable);
    m = ev.select(block, sel.data());
  }
  local.matched = m;
  const auto offset_at = [&](std::size_t k) {
    return q.filter ? static_cast<std::size_t>(sel[k]) : k;
  };

  switch (mode) {
    case Mode::Rows: {
      if (q.filter) {
        sel.resize(m);
        local.rows = std::move(sel);
      } else {
        local.rows.resize(rows);
        for (std::size_t k = 0; k < rows; ++k) {
          local.rows[k] = static_cast<std::uint32_t>(k);
        }
      }
      break;
    }
    case Mode::Group: {
      const std::size_t nk = q.group_keys.size();
      const std::size_t na = q.aggs.size();
      // Column base pointers resolved once; the row loop is loads only.
      std::vector<const std::int64_t*> key_col(nk);
      for (std::size_t k = 0; k < nk; ++k) {
        key_col[k] = block[q.group_keys[k]].data();
      }
      std::vector<const std::int64_t*> agg_col(na);
      for (std::size_t a = 0; a < na; ++a) {
        agg_col[a] = block[q.aggs[a].field].data();
      }
      // The scratch key is reused every row; a map node allocates only
      // when a new group appears (the old code heap-allocated a key
      // vector per matched row — the hottest allocation in the profile).
      std::vector<std::int64_t> key(nk);
      auto last = local.groups.end();
      for (std::size_t k = 0; k < m; ++k) {
        const std::size_t i = offset_at(k);
        for (std::size_t c = 0; c < nk; ++c) key[c] = key_col[c][i];
        // Rows are time-ordered and items arrive in runs, so the last
        // group repeats far more often than not.
        if (last == local.groups.end() || last->first != key) {
          last = local.groups.find(key);
          if (last == local.groups.end()) {
            last = local.groups.emplace(key, GroupAcc{}).first;
            last->second.aggs.resize(na);
          }
        }
        GroupAcc& g = last->second;
        ++g.count;
        for (std::size_t a = 0; a < na; ++a) {
          g.aggs[a].observe(q.aggs[a], agg_col[a][i]);
        }
      }
      break;
    }
    case Mode::Outliers: {
      const std::int64_t* items = block[Field::Item].data();
      const std::int64_t* fns = block[Field::Func].data();
      const std::int64_t* durs = block[Field::Dur].data();
      for (std::size_t k = 0; k < m; ++k) {
        const std::size_t i = offset_at(k);
        const std::int64_t item = items[i];
        const std::int64_t fn = fns[i];
        if (item >= 0 && fn >= 0) local.buckets[{item, fn}] = durs[i];
      }
      break;
    }
  }
  out = std::move(local);
}

} // namespace

QueryResult QueryEngine::run(std::string_view query_text) {
  return run(parse_query(query_text, &symtab_));
}

QueryResult QueryEngine::run(const Query& q) {
  OBS_SPAN("query.run");
  QueryMetrics::get().runs.inc();

  if (q.critical_path || q.blocked_by) return run_wait(q);

  std::vector<ExecPartial> parts;
  parts.push_back(run_partial(q));
  return finish_partials(q, symtab_, std::move(parts));
}

ExecPartial QueryEngine::run_partial(const Query& q) {
  std::optional<ColumnarTrace> scratch;
  Loaded loaded = load_for(q, scratch);
  const ColumnarTrace& t = *loaded.table;

  const Mode mode = q.outliers.has_value() ? Mode::Outliers
                    : !q.aggs.empty()      ? Mode::Group
                                           : Mode::Rows;

  // Fixed-size blocks, merged in block order: the thread count never
  // shows in the result bytes.
  const std::size_t n = t.rows();
  const std::size_t block = opts_.block_rows;
  const std::size_t n_blocks = n == 0 ? 0 : (n + block - 1) / block;

  // Zone-map block skipping: when the store's zones line up with the
  // scan blocks and the filter yields selective hints, blocks whose
  // bounds cannot satisfy the predicate are never evaluated. The skip
  // set is computed up front, deterministically, before any thread runs.
  std::vector<char> skip(n_blocks, 0);
  std::size_t blocks_skipped = 0;
  std::size_t rows_skipped = 0;
  if (q.filter && t.zone_rows() == block && t.zones().size() == n_blocks) {
    const PruneHints hints = extract_prune_hints(*q.filter);
    if (hints.selective()) {
      for (std::size_t b = 0; b < n_blocks; ++b) {
        if (!zone_may_match(hints, t.zones()[b])) {
          skip[b] = 1;
          ++blocks_skipped;
          rows_skipped += std::min(n, (b + 1) * block) - b * block;
        }
      }
    }
  }

  std::vector<BlockOut> blocks(n_blocks);
  {
    OBS_SPAN("query.scan");
    const auto run_block = [&](std::size_t b) {
      if (skip[b]) return;
      const std::size_t begin = b * block;
      const std::size_t end = std::min(n, begin + block);
      scan_block(q, t, mode, opts_.portable_eval, begin, end, blocks[b]);
    };
    if (loaded.stats.threads > 1 && n_blocks - blocks_skipped > 1) {
      pool(loaded.stats.threads).parallel_for(n_blocks, run_block);
    } else {
      for (std::size_t b = 0; b < n_blocks; ++b) run_block(b);
    }
  }

  ExecPartial part;
  part.stats = loaded.stats;
  part.stats.rows_scanned = n - rows_skipped;
  part.stats.blocks_total = n_blocks;
  part.stats.blocks_skipped = blocks_skipped;
  for (const BlockOut& p : blocks) part.stats.rows_matched += p.matched;
  QueryMetrics::get().rows_scanned.inc(n - rows_skipped);
  QueryMetrics::get().rows_matched.inc(part.stats.rows_matched);
  QueryMetrics::get().blocks_skipped.inc(blocks_skipped);

  switch (mode) {
    case Mode::Rows: {
      // Render straight to cells here (per-row pure, so per-trace
      // rendering then concatenation is the concatenated rendering).
      const auto func_cell = [&](std::int64_t id) {
        if (id >= 0 && static_cast<std::size_t>(id) < symtab_.size()) {
          return Cell::of_text(
              std::string(symtab_.name(static_cast<SymbolId>(id))));
        }
        return Cell::of_int(id);
      };
      const std::vector<Field> cols =
          q.select.empty()
              ? std::vector<Field>{Field::Item, Field::Func, Field::Core,
                                   Field::Ts,   Field::Dur,  Field::Ip}
              : q.select;
      std::vector<std::span<const std::int64_t>> proj;
      proj.reserve(cols.size());
      for (const Field f : cols) proj.push_back(t.col(f));
      for (std::size_t b = 0; b < n_blocks; ++b) {
        const std::size_t base = b * block;
        for (const std::uint32_t off : blocks[b].rows) {
          const std::size_t i = base + off;
          std::vector<Cell> row;
          row.reserve(cols.size());
          for (std::size_t c = 0; c < cols.size(); ++c) {
            row.push_back(cols[c] == Field::Func
                              ? func_cell(proj[c][i])
                              : Cell::of_int(proj[c][i]));
          }
          part.rows.push_back(std::move(row));
        }
      }
      break;
    }
    case Mode::Group: {
      for (BlockOut& p : blocks) {
        for (auto& [key, acc] : p.groups) {
          auto [it, inserted] = part.groups.try_emplace(key, std::move(acc));
          if (!inserted) {
            it->second.count += acc.count;
            for (std::size_t a = 0; a < q.aggs.size(); ++a) {
              it->second.aggs[a].merge(q.aggs[a], std::move(acc.aggs[a]));
            }
          }
        }
      }
      break;
    }
    case Mode::Outliers: {
      for (BlockOut& p : blocks) part.buckets.merge(p.buckets);
      break;
    }
  }
  return part;
}

QueryResult QueryEngine::finish_partials(const Query& q,
                                         const SymbolTable& symtab,
                                         std::vector<ExecPartial> parts) {
  const Mode mode = q.outliers.has_value() ? Mode::Outliers
                    : !q.aggs.empty()      ? Mode::Group
                                           : Mode::Rows;

  QueryResult res;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const ScanStats& s = parts[i].stats;
    if (i == 0) {
      res.stats = s;
      continue;
    }
    res.stats.chunks_total += s.chunks_total;
    res.stats.chunks_read += s.chunks_read;
    res.stats.chunks_pruned += s.chunks_pruned;
    res.stats.chunks_pruned_compressed += s.chunks_pruned_compressed;
    res.stats.rows_scanned += s.rows_scanned;
    res.stats.rows_matched += s.rows_matched;
    res.stats.blocks_total += s.blocks_total;
    res.stats.blocks_skipped += s.blocks_skipped;
    res.stats.wait_edges += s.wait_edges;
    res.stats.index_used = res.stats.index_used || s.index_used;
    res.stats.index_written = res.stats.index_written || s.index_written;
    res.stats.salvaged = res.stats.salvaged || s.salvaged;
    res.stats.wait_stage = res.stats.wait_stage || s.wait_stage;
    res.stats.threads = std::max(res.stats.threads, s.threads);
  }

  // Render func ids as names so results read like flxt_report output;
  // unresolved ids (-1) stay numeric.
  const auto func_cell = [&](std::int64_t id) {
    if (id >= 0 && static_cast<std::size_t>(id) < symtab.size()) {
      return Cell::of_text(
          std::string(symtab.name(static_cast<SymbolId>(id))));
    }
    return Cell::of_int(id);
  };
  const auto field_cell = [&](Field f, std::int64_t v) {
    return f == Field::Func ? func_cell(v) : Cell::of_int(v);
  };

  switch (mode) {
    case Mode::Rows: {
      const std::vector<Field> cols =
          q.select.empty()
              ? std::vector<Field>{Field::Item, Field::Func, Field::Core,
                                   Field::Ts,   Field::Dur,  Field::Ip}
              : q.select;
      for (const Field f : cols) {
        res.columns.emplace_back(to_string(f));
      }
      for (ExecPartial& p : parts) {
        for (std::vector<Cell>& row : p.rows) {
          res.rows.push_back(std::move(row));
        }
      }
      break;
    }
    case Mode::Group: {
      for (const Field f : q.group_keys) {
        res.columns.emplace_back(to_string(f));
      }
      for (const Aggregate& a : q.aggs) res.columns.push_back(a.name());
      std::map<std::vector<std::int64_t>, GroupAcc> merged;
      for (ExecPartial& p : parts) {
        for (auto& [key, acc] : p.groups) {
          auto [it, inserted] = merged.try_emplace(key, std::move(acc));
          if (!inserted) {
            it->second.count += acc.count;
            for (std::size_t a = 0; a < q.aggs.size(); ++a) {
              it->second.aggs[a].merge(q.aggs[a], std::move(acc.aggs[a]));
            }
          }
        }
      }
      for (auto& [key, acc] : merged) {
        std::vector<Cell> row;
        row.reserve(key.size() + q.aggs.size());
        for (std::size_t k = 0; k < key.size(); ++k) {
          row.push_back(field_cell(q.group_keys[k], key[k]));
        }
        for (std::size_t a = 0; a < q.aggs.size(); ++a) {
          row.push_back(Cell::of_int(acc.aggs[a].finish(q.aggs[a],
                                                        acc.count)));
        }
        res.rows.push_back(std::move(row));
      }
      break;
    }
    case Mode::Outliers: {
      res.columns = {"item", "func", "elapsed", "mean", "sigma", "sigmas"};
      std::map<std::pair<std::int64_t, std::int64_t>, std::int64_t> merged;
      for (ExecPartial& p : parts) merged.merge(p.buckets);
      core::FluctuationDetector det(q.outliers->config);
      for (const auto& [key, dur] : merged) {
        det.observe(static_cast<ItemId>(key.first),
                    static_cast<SymbolId>(key.second),
                    static_cast<Tsc>(dur));
      }
      for (const core::Anomaly& a : det.anomalies()) {
        std::vector<Cell> row;
        row.push_back(Cell::of_int(static_cast<std::int64_t>(a.item)));
        row.push_back(func_cell(static_cast<std::int64_t>(a.fn)));
        row.push_back(Cell::of_int(static_cast<std::int64_t>(a.elapsed)));
        row.push_back(Cell::of_real(a.mean));
        row.push_back(Cell::of_real(a.sigma));
        row.push_back(Cell::of_real(a.deviation()));
        res.rows.push_back(std::move(row));
      }
      break;
    }
  }

  if (q.topk.has_value()) {
    const auto it =
        std::find(res.columns.begin(), res.columns.end(), q.topk->by);
    if (it == res.columns.end()) {
      throw ParseError("top: unknown output column '" + q.topk->by + "'", 0);
    }
    const std::size_t ci = static_cast<std::size_t>(it - res.columns.begin());
    std::stable_sort(res.rows.begin(), res.rows.end(),
                     [ci](const std::vector<Cell>& x,
                          const std::vector<Cell>& y) {
                       return y[ci].less(x[ci]);
                     });
    if (res.rows.size() > q.topk->n) res.rows.resize(q.topk->n);
  }
  if (q.limit.has_value() && res.rows.size() > *q.limit) {
    res.rows.resize(*q.limit);
  }
  return res;
}

void QueryEngine::ensure_wait_edges_loaded() {
  if (wait_loaded_) return;
  wait_loaded_ = true;
  // Wait edges only exist in the chunked containers (v2 raw, v3
  // compressed); v1/FLXZ traces simply have none (an empty graph, not an
  // error).
  if (!io::is_chunked_format(reader_.format())) return;
  const std::string_view bytes = reader_.bytes();
  try {
    io::TraceData scratch;
    for (const io::V2ChunkRef& ref : io::index_trace_v2(bytes)) {
      if (!io::is_wait_chunk_type(ref.type)) continue;
      io::decode_trace_v2_chunk(bytes, ref, scratch);
    }
    wait_edges_ = std::move(scratch.wait_edges);
  } catch (const io::TraceIoError&) {
    wait_edges_ = io::salvage_trace(bytes).data.wait_edges;
    wait_salvaged_ = true;
  }
}

QueryResult QueryEngine::run_wait(const Query& q) {
  OBS_SPAN("query.wait_scan");
  ensure_wait_edges_loaded();

  const unsigned threads = opts_.threads == 0
                               ? std::max(1u, std::thread::hardware_concurrency())
                               : opts_.threads;

  // Fixed-size blocks folded into WaitGraph partials and merged in block
  // order — the same determinism discipline as the sample scan, so the
  // thread count never shows in the result bytes.
  const std::size_t n = wait_edges_.size();
  const std::size_t block = opts_.block_rows;
  const std::size_t n_blocks = n == 0 ? 0 : (n + block - 1) / block;

  struct WaitBlockOut {
    WaitGraph graph;
    std::size_t matched = 0;
  };
  std::vector<WaitBlockOut> parts(n_blocks);
  const auto run_block = [&](std::size_t b) {
    const std::size_t begin = b * block;
    const std::size_t end = std::min(n, begin + block);
    WaitBlockOut out;
    for (std::size_t i = begin; i < end; ++i) {
      const WaitEdge& e = wait_edges_[i];
      if (q.filter) {
        FieldVals fv;
        fv.set(Field::Item, static_cast<std::int64_t>(e.item));
        fv.set(Field::Core, e.waiter_core);
        fv.set(Field::Ts, static_cast<std::int64_t>(e.enter));
        fv.set(Field::Dur, static_cast<std::int64_t>(e.blocked()));
        if (!q.filter->test(fv)) continue;
      }
      out.graph.observe(e);
      ++out.matched;
    }
    parts[b] = std::move(out);
  };
  if (threads > 1 && n_blocks > 1) {
    pool(threads).parallel_for(n_blocks, run_block);
  } else {
    for (std::size_t b = 0; b < n_blocks; ++b) run_block(b);
  }

  WaitGraph graph;
  for (WaitBlockOut& p : parts) graph.merge(std::move(p.graph));

  QueryResult res = q.critical_path ? finish_critical_path(std::move(graph))
                                    : finish_blocked_by(graph);
  res.stats.wait_stage = true;
  res.stats.wait_edges = n;
  res.stats.rows_scanned = n;
  for (const WaitBlockOut& p : parts) res.stats.rows_matched += p.matched;
  res.stats.salvaged = wait_salvaged_;
  res.stats.threads = threads;

  if (q.topk.has_value()) {
    const auto it =
        std::find(res.columns.begin(), res.columns.end(), q.topk->by);
    if (it == res.columns.end()) {
      throw ParseError("top: unknown output column '" + q.topk->by + "'", 0);
    }
    const std::size_t ci = static_cast<std::size_t>(it - res.columns.begin());
    std::stable_sort(res.rows.begin(), res.rows.end(),
                     [ci](const std::vector<Cell>& x,
                          const std::vector<Cell>& y) {
                       return y[ci].less(x[ci]);
                     });
    if (res.rows.size() > q.topk->n) res.rows.resize(q.topk->n);
  }
  if (q.limit.has_value() && res.rows.size() > *q.limit) {
    res.rows.resize(*q.limit);
  }
  return res;
}

} // namespace fluxtrace::query
