#include "fluxtrace/query/waitgraph.hpp"

#include <algorithm>
#include <string>

namespace fluxtrace::query {

namespace {

/// Length of the union of half-open [enter, leave) intervals.
/// Destructive: sorts `iv` in place.
std::uint64_t union_length(
    std::vector<std::pair<std::uint64_t, std::uint64_t>>& iv) {
  std::sort(iv.begin(), iv.end());
  std::uint64_t total = 0;
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  bool open = false;
  for (const auto& [b, e] : iv) {
    if (!open || b > hi) {
      if (open) total += hi - lo;
      lo = b;
      hi = e;
      open = true;
    } else if (e > hi) {
      hi = e;
    }
  }
  if (open) total += hi - lo;
  return total;
}

Cell cause_cell(std::uint8_t cause) {
  return Cell::of_text(std::string(to_string(static_cast<WaitCause>(cause))));
}

} // namespace

void WaitGraph::observe(const WaitEdge& e) {
  const auto item = static_cast<std::int64_t>(e.item);
  const std::uint64_t d = e.blocked();
  const WaitKey k{static_cast<std::uint8_t>(e.cause), e.resource,
                  e.holder_core};
  ItemWait& it = items[item];
  it.intervals.emplace_back(e.enter, e.leave);
  it.by_blocker[k] += d;
  ++it.edges;
  BlockerAgg& b = blockers[k];
  ++b.edges;
  b.blocked += d;
  if (d > b.max) b.max = d;
  ++edges_;
}

void WaitGraph::merge(WaitGraph&& other) {
  for (auto& [item, part] : other.items) {
    ItemWait& it = items[item];
    it.intervals.insert(it.intervals.end(), part.intervals.begin(),
                        part.intervals.end());
    for (const auto& [k, d] : part.by_blocker) it.by_blocker[k] += d;
    it.edges += part.edges;
  }
  for (const auto& [k, agg] : other.blockers) {
    BlockerAgg& b = blockers[k];
    b.edges += agg.edges;
    b.blocked += agg.blocked;
    if (agg.max > b.max) b.max = agg.max;
  }
  edges_ += other.edges_;
  other = WaitGraph{};
}

QueryResult finish_critical_path(WaitGraph g) {
  QueryResult r;
  r.columns = {"item", "blocked", "edges", "cause", "resource", "holder"};

  struct Row {
    std::int64_t item = 0;
    std::uint64_t blocked = 0;
    std::uint64_t edges = 0;
    WaitKey dominant;
  };
  std::vector<Row> rows;
  rows.reserve(g.items.size());
  for (auto& [item, part] : g.items) {
    Row row;
    row.item = item;
    row.blocked = union_length(part.intervals);
    row.edges = part.edges;
    // Dominant blocker: largest summed blocking time; ties go to the
    // smallest key, which map order hands us for free.
    std::uint64_t best = 0;
    bool first = true;
    for (const auto& [k, d] : part.by_blocker) {
      if (first || d > best) {
        row.dominant = k;
        best = d;
        first = false;
      }
    }
    rows.push_back(row);
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.blocked != b.blocked) return a.blocked > b.blocked;
    return a.item < b.item;
  });

  r.rows.reserve(rows.size());
  for (const Row& row : rows) {
    r.rows.push_back({Cell::of_int(row.item),
                      Cell::of_int(static_cast<std::int64_t>(row.blocked)),
                      Cell::of_int(static_cast<std::int64_t>(row.edges)),
                      cause_cell(row.dominant.cause),
                      Cell::of_int(row.dominant.resource),
                      Cell::of_int(row.dominant.holder)});
  }
  return r;
}

QueryResult finish_blocked_by(const WaitGraph& g) {
  QueryResult r;
  r.columns = {"cause", "resource", "holder", "edges", "blocked", "max"};
  r.rows.reserve(g.blockers.size());
  for (const auto& [k, agg] : g.blockers) {
    r.rows.push_back({cause_cell(k.cause), Cell::of_int(k.resource),
                      Cell::of_int(k.holder),
                      Cell::of_int(static_cast<std::int64_t>(agg.edges)),
                      Cell::of_int(static_cast<std::int64_t>(agg.blocked)),
                      Cell::of_int(static_cast<std::int64_t>(agg.max))});
  }
  return r;
}

} // namespace fluxtrace::query
