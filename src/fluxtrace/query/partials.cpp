#include "fluxtrace/query/partials.hpp"

#include <algorithm>

#include "fluxtrace/query/engine.hpp"

namespace fluxtrace::query {

std::int64_t percentile_sorted(const std::vector<std::int64_t>& sorted,
                               unsigned p) {
  const std::size_t n = sorted.size();
  std::size_t rank = (static_cast<std::size_t>(p) * n + 99) / 100;
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return sorted[rank - 1];
}

void AggPartial::observe(const Aggregate& a, std::int64_t v) {
  switch (a.kind) {
    case Aggregate::Kind::Count: break;
    case Aggregate::Kind::Sum: sum += static_cast<std::uint64_t>(v); break;
    case Aggregate::Kind::Min: mn = std::min(mn, v); break;
    case Aggregate::Kind::Max: mx = std::max(mx, v); break;
    case Aggregate::Kind::P50:
    case Aggregate::Kind::P95:
    case Aggregate::Kind::P99: coll.push_back(v); break;
  }
}

void AggPartial::merge(const Aggregate& a, AggPartial&& other) {
  switch (a.kind) {
    case Aggregate::Kind::Count: break;
    case Aggregate::Kind::Sum: sum += other.sum; break;
    case Aggregate::Kind::Min: mn = std::min(mn, other.mn); break;
    case Aggregate::Kind::Max: mx = std::max(mx, other.mx); break;
    case Aggregate::Kind::P50:
    case Aggregate::Kind::P95:
    case Aggregate::Kind::P99:
      coll.insert(coll.end(), other.coll.begin(), other.coll.end());
      break;
  }
}

std::int64_t AggPartial::finish(const Aggregate& a, std::uint64_t count) {
  switch (a.kind) {
    case Aggregate::Kind::Count:
      return static_cast<std::int64_t>(count);
    case Aggregate::Kind::Sum: return static_cast<std::int64_t>(sum);
    case Aggregate::Kind::Min: return mn;
    case Aggregate::Kind::Max: return mx;
    case Aggregate::Kind::P50:
    case Aggregate::Kind::P95:
    case Aggregate::Kind::P99: {
      const unsigned p = a.kind == Aggregate::Kind::P50   ? 50
                         : a.kind == Aggregate::Kind::P95 ? 95
                                                          : 99;
      const std::size_t n = coll.size();
      if (n == 0) return 0;
      // Nearest-rank selection: nth_element places exactly the value a
      // full sort would leave at rank-1, in O(n) instead of O(n log n).
      std::size_t rank = (static_cast<std::size_t>(p) * n + 99) / 100;
      if (rank == 0) rank = 1;
      if (rank > n) rank = n;
      const auto nth = coll.begin() + static_cast<std::ptrdiff_t>(rank - 1);
      std::nth_element(coll.begin(), nth, coll.end());
      return *nth;
    }
  }
  return 0;
}

void GroupPartial::merge(const std::vector<Aggregate>& spec,
                         GroupPartial&& other) {
  count += other.count;
  if (aggs.empty()) aggs.resize(spec.size());
  for (std::size_t a = 0; a < spec.size() && a < other.aggs.size(); ++a) {
    aggs[a].merge(spec[a], std::move(other.aggs[a]));
  }
}

} // namespace fluxtrace::query
