#include "fluxtrace/query/partials.hpp"

#include "fluxtrace/query/engine.hpp"

namespace fluxtrace::query {

std::int64_t percentile_sorted(const std::vector<std::int64_t>& sorted,
                               unsigned p) {
  const std::size_t n = sorted.size();
  std::size_t rank = (static_cast<std::size_t>(p) * n + 99) / 100;
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return sorted[rank - 1];
}

void AggPartial::observe(const Aggregate& a, std::int64_t v) {
  switch (a.kind) {
    case Aggregate::Kind::Count: break;
    case Aggregate::Kind::Sum: sum += static_cast<std::uint64_t>(v); break;
    case Aggregate::Kind::Min: mn = std::min(mn, v); break;
    case Aggregate::Kind::Max: mx = std::max(mx, v); break;
    case Aggregate::Kind::P50:
    case Aggregate::Kind::P95:
    case Aggregate::Kind::P99: coll.push_back(v); break;
  }
}

void AggPartial::merge(const Aggregate& a, AggPartial&& other) {
  switch (a.kind) {
    case Aggregate::Kind::Count: break;
    case Aggregate::Kind::Sum: sum += other.sum; break;
    case Aggregate::Kind::Min: mn = std::min(mn, other.mn); break;
    case Aggregate::Kind::Max: mx = std::max(mx, other.mx); break;
    case Aggregate::Kind::P50:
    case Aggregate::Kind::P95:
    case Aggregate::Kind::P99:
      coll.insert(coll.end(), other.coll.begin(), other.coll.end());
      break;
  }
}

std::int64_t AggPartial::finish(const Aggregate& a, std::uint64_t count) {
  switch (a.kind) {
    case Aggregate::Kind::Count:
      return static_cast<std::int64_t>(count);
    case Aggregate::Kind::Sum: return static_cast<std::int64_t>(sum);
    case Aggregate::Kind::Min: return mn;
    case Aggregate::Kind::Max: return mx;
    case Aggregate::Kind::P50:
    case Aggregate::Kind::P95:
    case Aggregate::Kind::P99: {
      std::sort(coll.begin(), coll.end());
      const unsigned p = a.kind == Aggregate::Kind::P50   ? 50
                         : a.kind == Aggregate::Kind::P95 ? 95
                                                          : 99;
      return coll.empty() ? 0 : percentile_sorted(coll, p);
    }
  }
  return 0;
}

void GroupPartial::merge(const std::vector<Aggregate>& spec,
                         GroupPartial&& other) {
  count += other.count;
  if (aggs.empty()) aggs.resize(spec.size());
  for (std::size_t a = 0; a < spec.size() && a < other.aggs.size(); ++a) {
    aggs[a].merge(spec[a], std::move(other.aggs[a]));
  }
}

} // namespace fluxtrace::query
