#include "fluxtrace/query/stream.hpp"

#include <algorithm>

#include "fluxtrace/obs/metrics.hpp"

namespace fluxtrace::query {

namespace {

// Self-telemetry for the continuous path: the alert counter is the one
// the follow-chaos CI job asserts on.
struct StreamMetrics {
  obs::Counter& windows = obs::metrics().counter("query.stream.windows");
  obs::Counter& rows = obs::metrics().counter("query.stream.rows_matched");
  obs::Counter& alerts = obs::metrics().counter("query.stream.alerts");

  static StreamMetrics& get() {
    static StreamMetrics m;
    return m;
  }
};

} // namespace

StreamingQuery::StreamingQuery(Query q, SymbolTable symtab, StreamOptions opts)
    : query_(std::move(q)), symtab_(std::move(symtab)), opts_(opts) {
  if (query_.outliers.has_value()) {
    detector_.emplace(query_.outliers->config);
  }
  if (query_.filter) {
    filter_eval_.emplace(*query_.filter, opts_.portable_eval);
  }
}

void StreamingQuery::fold_matched(std::size_t row, WindowResult& w) {
  const auto at = [&](Field f) {
    return wincols_[static_cast<std::size_t>(f)][row];
  };
  ++w.rows_matched;
  ++stats_.rows_matched;
  StreamMetrics::get().rows.inc();

  if (!query_.aggs.empty()) {
    std::vector<std::int64_t> key;
    key.reserve(query_.group_keys.size());
    for (const Field f : query_.group_keys) key.push_back(at(f));
    GroupPartial& g = groups_[std::move(key)];
    if (g.aggs.empty()) g.aggs.resize(query_.aggs.size());
    ++g.count;
    for (std::size_t a = 0; a < query_.aggs.size(); ++a) {
      g.aggs[a].observe(query_.aggs[a], at(query_.aggs[a].field));
    }
  } else if (!query_.outliers.has_value()) {
    // Row mode: keep the live tail for snapshot().
    const std::vector<Field> cols =
        query_.select.empty()
            ? std::vector<Field>{Field::Item, Field::Func, Field::Core,
                                 Field::Ts,  Field::Dur,  Field::Ip}
            : query_.select;
    std::vector<Cell> row_cells;
    row_cells.reserve(cols.size());
    for (const Field f : cols) {
      const std::int64_t v = at(f);
      if (f == Field::Func && v >= 0 &&
          static_cast<std::size_t>(v) < symtab_.size()) {
        row_cells.push_back(
            Cell::of_text(std::string(symtab_.name(static_cast<SymbolId>(v)))));
      } else {
        row_cells.push_back(Cell::of_int(v));
      }
    }
    row_tail_.push_back(std::move(row_cells));
    if (row_tail_.size() > opts_.row_tail) row_tail_.pop_front();
  }
}

void StreamingQuery::emit_window(std::uint32_t core, ItemId item, Tsc enter,
                                 Tsc leave, CoreState& cs,
                                 std::vector<WindowResult>& out) {
  WindowResult w;
  w.item = item;
  w.core = core;
  w.enter = enter;
  w.leave = leave;

  // Pull this window's samples out of the pending buffer. Nested windows
  // seal innermost-first (earlier leave), so an inner window has already
  // consumed its rows by the time the outer one gets here — the same
  // innermost-cover rule the batch columnar build applies.
  //
  // Rows gather into the per-window column buffers in fold order —
  // unresolved-ip rows first (pending order, func = -1, dur = 0), then
  // per-function ascending — and the filter evaluates once over the
  // whole window as one column block.
  struct FnSpan {
    Tsc first = 0;
    Tsc last = 0;
    std::vector<PendingSample> rows;
  };
  std::map<SymbolId, FnSpan> by_fn;

  for (auto& c : wincols_) c.clear();
  const auto push_row = [&](std::int64_t fn, std::int64_t ts, std::int64_t dur,
                            std::int64_t ip) {
    wincols_[static_cast<std::size_t>(Field::Item)].push_back(
        static_cast<std::int64_t>(item));
    wincols_[static_cast<std::size_t>(Field::Func)].push_back(fn);
    wincols_[static_cast<std::size_t>(Field::Core)].push_back(
        static_cast<std::int64_t>(core));
    wincols_[static_cast<std::size_t>(Field::Ts)].push_back(ts);
    wincols_[static_cast<std::size_t>(Field::Dur)].push_back(dur);
    wincols_[static_cast<std::size_t>(Field::Ip)].push_back(ip);
  };

  for (auto it = cs.pending.begin(); it != cs.pending.end();) {
    if (it->tsc >= enter && it->tsc <= leave) {
      ++w.rows;
      const auto fn = symtab_.resolve(it->ip);
      if (fn.has_value()) {
        FnSpan& sp = by_fn[*fn];
        if (sp.rows.empty()) {
          sp.first = it->tsc;
          sp.last = it->tsc;
        } else {
          sp.first = std::min(sp.first, it->tsc);
          sp.last = std::max(sp.last, it->tsc);
        }
        sp.rows.push_back(*it);
      } else {
        // Unresolvable ip: the row still exists (func = -1, dur = 0).
        push_row(-1, static_cast<std::int64_t>(it->tsc), 0,
                 static_cast<std::int64_t>(it->ip));
      }
      it = cs.pending.erase(it);
    } else {
      ++it;
    }
  }

  // Detector observations fire after the owning function's rows fold, in
  // by_fn order — `end` marks where each function's rows stop.
  struct FnMark {
    SymbolId fn = kInvalidSymbol;
    Tsc span = 0;
    std::size_t end = 0;
  };
  std::vector<FnMark> marks;
  marks.reserve(by_fn.size());
  for (const auto& [fn, sp] : by_fn) {
    const Tsc span = sp.last - sp.first;
    for (const PendingSample& s : sp.rows) {
      push_row(static_cast<std::int64_t>(fn),
               static_cast<std::int64_t>(s.tsc),
               static_cast<std::int64_t>(span),
               static_cast<std::int64_t>(s.ip));
    }
    marks.push_back(
        {fn, span, wincols_[static_cast<std::size_t>(Field::Item)].size()});
  }

  const std::size_t n = wincols_[static_cast<std::size_t>(Field::Item)].size();
  if (filter_eval_.has_value() && n > 0) {
    filter_mask_.resize(n);
    ColumnBlock blk;
    blk.rows = n;
    for (std::size_t f = 0; f < kNumFields; ++f) {
      blk.col[f] = std::span<const std::int64_t>(wincols_[f]);
    }
    filter_eval_->eval(blk, filter_mask_.data());
  }

  std::size_t next_mark = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!filter_eval_.has_value() || filter_mask_[i] != 0) fold_matched(i, w);
    while (next_mark < marks.size() && marks[next_mark].end == i + 1) {
      const FnMark& mk = marks[next_mark++];
      if (!detector_.has_value()) continue;
      // Continuous outliers: one {item, func} elapsed estimate per
      // window, flagged against the function's running statistics in
      // the very call that closed the window.
      if (detector_->observe(item, mk.fn, mk.span)) {
        StreamAlert a;
        a.item = item;
        a.func = mk.fn;
        a.core = core;
        a.window_enter = enter;
        a.window_leave = leave;
        a.elapsed = mk.span;
        a.mean = detector_->mean(mk.fn);
        a.sigma = detector_->sigma(mk.fn);
        a.sigmas = a.sigma > 0.0
                       ? (static_cast<double>(mk.span) - a.mean) / a.sigma
                       : 0.0;
        w.alerts.push_back(a);
        ++stats_.alerts;
        StreamMetrics::get().alerts.inc();
      }
    }
  }

  ++stats_.windows_closed;
  StreamMetrics::get().windows.inc();
  out.push_back(std::move(w));
}

void StreamingQuery::seal_ready_windows(std::uint32_t core, CoreState& cs,
                                        bool force,
                                        std::vector<WindowResult>& out) {
  // Innermost-first: ascending leave edge.
  std::sort(cs.closed.begin(), cs.closed.end(),
            [](const CoreState::ClosedWindow& a,
               const CoreState::ClosedWindow& b) { return a.leave < b.leave; });
  std::size_t sealed = 0;
  for (const CoreState::ClosedWindow& c : cs.closed) {
    if (!force && c.leave > cs.watermark) break;
    emit_window(core, c.item, c.enter, c.leave, cs, out);
    ++sealed;
  }
  cs.closed.erase(cs.closed.begin(),
                  cs.closed.begin() + static_cast<std::ptrdiff_t>(sealed));

  // Age out samples that can no longer match any window: older than the
  // watermark (minus slack) and below every boundary still in play.
  Tsc floor = cs.watermark > opts_.attribution_slack
                  ? cs.watermark - opts_.attribution_slack
                  : 0;
  for (const OpenWindow& o : cs.open) floor = std::min(floor, o.enter);
  for (const CoreState::ClosedWindow& c : cs.closed) {
    floor = std::min(floor, c.enter);
  }
  while (!cs.pending.empty() && cs.pending.front().tsc < floor) {
    ++stats_.rows_unattributed;
    cs.pending.pop_front();
  }
}

std::vector<WindowResult> StreamingQuery::ingest(const io::TraceData& batch) {
  ++stats_.batches;
  std::vector<WindowResult> out;

  // Wait-edge stages fold the batch's edge stream and nothing else: the
  // marker-window machinery attributes samples, which these stages never
  // read. Filter semantics match QueryEngine::run_wait exactly.
  if (query_.critical_path || query_.blocked_by) {
    for (const WaitEdge& e : batch.wait_edges) {
      ++stats_.wait_edges;
      if (query_.filter) {
        FieldVals fv;
        fv.set(Field::Item, static_cast<std::int64_t>(e.item));
        fv.set(Field::Core, e.waiter_core);
        fv.set(Field::Ts, static_cast<std::int64_t>(e.enter));
        fv.set(Field::Dur, static_cast<std::int64_t>(e.blocked()));
        if (!query_.filter->test(fv)) continue;
      }
      wait_graph_.observe(e);
      ++stats_.rows_matched;
    }
    return out;
  }

  for (const Marker& m : batch.markers) {
    ++stats_.markers;
    CoreState& cs = cores_[m.core];
    cs.watermark = std::max(cs.watermark, m.tsc);
    if (m.kind == MarkerKind::Enter) {
      cs.open.push_back(OpenWindow{m.item, m.tsc});
    } else {
      // Match the innermost open window for this item; an unmatched
      // Leave (its Enter was lost) is dropped, as in the batch pairing.
      for (auto it = cs.open.rbegin(); it != cs.open.rend(); ++it) {
        if (it->item == m.item) {
          cs.closed.push_back(
              CoreState::ClosedWindow{it->item, it->enter, m.tsc});
          cs.open.erase(std::next(it).base());
          break;
        }
      }
    }
  }
  for (const PebsSample& s : batch.samples) {
    ++stats_.samples;
    CoreState& cs = cores_[s.core];
    cs.watermark = std::max(cs.watermark, s.tsc);
    // Keep per-core pending sorted by time (drain order is near-sorted,
    // so the tail insertion is almost always O(1)).
    PendingSample p{s.tsc, s.ip};
    auto pos = cs.pending.end();
    while (pos != cs.pending.begin() && std::prev(pos)->tsc > p.tsc) --pos;
    cs.pending.insert(pos, p);
  }

  for (auto& [core, cs] : cores_) {
    seal_ready_windows(core, cs, /*force=*/false, out);
  }

  std::sort(out.begin(), out.end(),
            [](const WindowResult& a, const WindowResult& b) {
              return a.leave != b.leave ? a.leave < b.leave : a.core < b.core;
            });
  return out;
}

std::vector<WindowResult> StreamingQuery::flush() {
  std::vector<WindowResult> out;
  for (auto& [core, cs] : cores_) {
    // Still-open windows close at the core watermark: the synthetic
    // leave the degraded batch pairing would give them.
    for (const OpenWindow& o : cs.open) {
      ++stats_.enters_unmatched;
      cs.closed.push_back(
          CoreState::ClosedWindow{o.item, o.enter,
                                  std::max(cs.watermark, o.enter)});
    }
    cs.open.clear();
    seal_ready_windows(core, cs, /*force=*/true, out);
    stats_.rows_unattributed += cs.pending.size();
    cs.pending.clear();
  }
  std::sort(out.begin(), out.end(),
            [](const WindowResult& a, const WindowResult& b) {
              return a.leave != b.leave ? a.leave < b.leave : a.core < b.core;
            });
  return out;
}

QueryResult StreamingQuery::snapshot() const {
  if (query_.critical_path || query_.blocked_by) {
    WaitGraph copy = wait_graph_; // finish_critical_path is destructive
    QueryResult res = query_.critical_path
                          ? finish_critical_path(std::move(copy))
                          : finish_blocked_by(copy);
    res.stats.wait_stage = true;
    res.stats.wait_edges = stats_.wait_edges;
    res.stats.rows_scanned = stats_.wait_edges;
    res.stats.rows_matched = stats_.rows_matched;
    res.stats.threads = 1;
    if (query_.topk.has_value()) {
      const auto it =
          std::find(res.columns.begin(), res.columns.end(), query_.topk->by);
      if (it != res.columns.end()) {
        const std::size_t ci =
            static_cast<std::size_t>(it - res.columns.begin());
        std::stable_sort(res.rows.begin(), res.rows.end(),
                         [ci](const std::vector<Cell>& x,
                              const std::vector<Cell>& y) {
                           return y[ci].less(x[ci]);
                         });
        if (res.rows.size() > query_.topk->n) res.rows.resize(query_.topk->n);
      }
    }
    if (query_.limit.has_value() && res.rows.size() > *query_.limit) {
      res.rows.resize(*query_.limit);
    }
    return res;
  }

  QueryResult res;
  res.stats.rows_scanned = stats_.samples;
  res.stats.rows_matched = stats_.rows_matched;
  res.stats.threads = 1;

  const auto func_cell = [&](std::int64_t id) {
    if (id >= 0 && static_cast<std::size_t>(id) < symtab_.size()) {
      return Cell::of_text(
          std::string(symtab_.name(static_cast<SymbolId>(id))));
    }
    return Cell::of_int(id);
  };

  if (!query_.aggs.empty()) {
    for (const Field f : query_.group_keys) {
      res.columns.emplace_back(to_string(f));
    }
    for (const Aggregate& a : query_.aggs) res.columns.push_back(a.name());
    for (const auto& [key, acc] : groups_) {
      std::vector<Cell> row;
      row.reserve(key.size() + query_.aggs.size());
      for (std::size_t k = 0; k < key.size(); ++k) {
        row.push_back(query_.group_keys[k] == Field::Func
                          ? func_cell(key[k])
                          : Cell::of_int(key[k]));
      }
      for (std::size_t a = 0; a < query_.aggs.size(); ++a) {
        AggPartial copy = acc.aggs[a]; // finish() is destructive
        row.push_back(Cell::of_int(copy.finish(query_.aggs[a], acc.count)));
      }
      res.rows.push_back(std::move(row));
    }
  } else if (query_.outliers.has_value()) {
    res.columns = {"item", "func", "elapsed", "mean", "sigma", "sigmas"};
    if (detector_.has_value()) {
      for (const core::Anomaly& a : detector_->anomalies()) {
        std::vector<Cell> row;
        row.push_back(Cell::of_int(static_cast<std::int64_t>(a.item)));
        row.push_back(func_cell(static_cast<std::int64_t>(a.fn)));
        row.push_back(Cell::of_int(static_cast<std::int64_t>(a.elapsed)));
        row.push_back(Cell::of_real(a.mean));
        row.push_back(Cell::of_real(a.sigma));
        row.push_back(Cell::of_real(a.deviation()));
        res.rows.push_back(std::move(row));
      }
    }
  } else {
    const std::vector<Field> cols =
        query_.select.empty()
            ? std::vector<Field>{Field::Item, Field::Func, Field::Core,
                                 Field::Ts,  Field::Dur,  Field::Ip}
            : query_.select;
    for (const Field f : cols) res.columns.emplace_back(to_string(f));
    for (const auto& row : row_tail_) res.rows.push_back(row);
  }

  if (query_.topk.has_value()) {
    const auto it =
        std::find(res.columns.begin(), res.columns.end(), query_.topk->by);
    if (it != res.columns.end()) {
      const std::size_t ci =
          static_cast<std::size_t>(it - res.columns.begin());
      std::stable_sort(res.rows.begin(), res.rows.end(),
                       [ci](const std::vector<Cell>& x,
                            const std::vector<Cell>& y) {
                         return y[ci].less(x[ci]);
                       });
      if (res.rows.size() > query_.topk->n) res.rows.resize(query_.topk->n);
    }
  }
  if (query_.limit.has_value() && res.rows.size() > *query_.limit) {
    res.rows.resize(*query_.limit);
  }
  return res;
}

} // namespace fluxtrace::query
