// The columnar in-memory store the query engine scans (ISSUE 5): one row
// per PEBS sample, struct-of-arrays so a scan touches only the columns
// the query references. Attribution happens at build time, mirroring
// core::TraceIntegrator exactly:
//
//   item — the innermost marker window covering (core, ts), or the
//          sampled id register in use_register_ids mode; kNoItem → -1
//   func — SymbolTable::resolve(ip); unresolved → -1
//   dur  — the elapsed-time estimate of the row's {item, func} bucket
//          (first-to-last sample per core, summed over cores, exactly
//          core::TraceTable::elapsed); rows in unestimable buckets
//          (fewer than two samples on every core) carry 0
//
// All columns are int64 so expression evaluation (expr.hpp) indexes them
// uniformly; ItemId 2^64-1 (kNoItem) reads back as -1, which is also how
// a query spells it.
#pragma once

#include <cstdint>
#include <vector>

#include "fluxtrace/base/symbols.hpp"
#include "fluxtrace/io/trace_file.hpp"
#include "fluxtrace/query/expr.hpp"

namespace fluxtrace::query {

struct BuildOptions {
  /// Take item ids from the sampled register (§V-A timer-switching
  /// architecture) instead of locating samples in marker windows.
  bool use_register_ids = false;
};

class ColumnarTrace {
 public:
  /// Attribute and columnarize `data`. Marker records are consumed for
  /// window construction only; rows correspond 1:1, in order, to
  /// data.samples.
  static ColumnarTrace build(const io::TraceData& data,
                             const SymbolTable& symtab,
                             const BuildOptions& opts = {});

  [[nodiscard]] std::size_t rows() const { return ts_.size(); }

  [[nodiscard]] std::int64_t field(Field f, std::size_t i) const {
    switch (f) {
      case Field::Item: return item_[i];
      case Field::Func: return func_[i];
      case Field::Core: return core_[i];
      case Field::Ts: return ts_[i];
      case Field::Dur: return dur_[i];
      case Field::Ip: return ip_[i];
    }
    return 0;
  }

  /// Fill one row's FieldVals (all six fields).
  void row(std::size_t i, FieldVals& out) const {
    out.set(Field::Item, item_[i]);
    out.set(Field::Func, func_[i]);
    out.set(Field::Core, core_[i]);
    out.set(Field::Ts, ts_[i]);
    out.set(Field::Dur, dur_[i]);
    out.set(Field::Ip, ip_[i]);
  }

  [[nodiscard]] const std::vector<std::int64_t>& items() const {
    return item_;
  }
  [[nodiscard]] const std::vector<std::int64_t>& funcs() const {
    return func_;
  }
  [[nodiscard]] const std::vector<std::int64_t>& tss() const { return ts_; }

 private:
  std::vector<std::int64_t> item_, func_, core_, ts_, dur_, ip_;
};

} // namespace fluxtrace::query
